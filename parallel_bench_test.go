package s4bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

// BenchmarkParallelThroughput measures drive ops/sec under concurrent
// clients — the workload the fine-grained locking work targets. Unlike
// the figure benchmarks (virtual time, simulated spindle), this one
// runs on the wall clock with an untimed memory disk so it measures
// the drive's own synchronization, not the disk model. Client count is
// imposed by pinning GOMAXPROCS for the duration of the sub-benchmark,
// so b.RunParallel spawns exactly `clients` worker goroutines.
//
// Modes:
//   - read:    random 4KB reads of the live version (cache-hot)
//   - write:   512B overwrites at offset 0 of a per-client object
//   - sync:    512B overwrite + Drive.Sync per iteration (the NFSv2
//     commit pattern of §4.1.2 — the group-commit pipeline's target)
//   - history: time-parameterized reads of a superseded version
func BenchmarkParallelThroughput(b *testing.B) {
	for _, mode := range []string{"read", "write", "sync", "history"} {
		for _, clients := range []int{1, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode, clients), func(b *testing.B) {
				benchParallel(b, mode, clients)
			})
		}
	}
}

const (
	ptObjects   = 64
	ptObjBlocks = 16 // 64KB per object
)

// reclaimRetry runs op, and on ErrNoSpace cleans and retries. Overwrite
// workloads generate history at memory speed, so a long timed run can
// outpace the detection window: superseded versions are not reclaimable
// until they age past it. When a cleaning pass frees nothing the retry
// briefly sleeps to let history age instead of spinning, which makes
// long runs settle at the disk's sustainable rate rather than failing.
func reclaimRetry(drv *core.Drive, op func() error) error {
	err := op()
	for retry := 0; err == types.ErrNoSpace && retry < 500; retry++ {
		cs, cerr := drv.CleanOnce()
		if cerr != nil && cerr != types.ErrNoSpace {
			return cerr
		}
		if cs.SegmentsFreed == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		err = op()
	}
	return err
}

func benchParallel(b *testing.B, mode string, clients int) {
	window := time.Hour
	if mode == "write" || mode == "sync" {
		// Writes deprecate their predecessors; a short window plus
		// opportunistic cleaning keeps long runs from filling the log.
		window = 100 * time.Millisecond
	}
	dev := disk.New(disk.SmallDisk(512<<20), nil)
	drv, err := core.Format(dev, core.Options{
		Clock:  vclock.Wall{},
		Window: window,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer drv.Close()

	// World-writable objects so every synthetic client can touch any of
	// them (history recovery included).
	acl := []types.ACLEntry{{User: types.EveryoneID, Perm: types.PermAll}}
	owner := types.Cred{User: 100, Client: 1}
	ids := make([]types.ObjectID, ptObjects)
	block := make([]byte, types.BlockSize)
	for i := range block {
		block[i] = byte(i)
	}
	for i := range ids {
		id, err := drv.Create(owner, acl, nil)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
		for blk := 0; blk < ptObjBlocks; blk++ {
			if err := drv.Write(owner, id, uint64(blk)*types.BlockSize, block); err != nil {
				b.Fatal(err)
			}
		}
	}
	// A second round of writes gives the history mode a superseded
	// version to reconstruct: atHist falls between the rounds.
	var atHist types.Timestamp
	if mode == "history" {
		time.Sleep(5 * time.Millisecond)
		atHist = drv.Now()
		time.Sleep(5 * time.Millisecond)
		for _, id := range ids {
			for blk := 0; blk < ptObjBlocks; blk += 4 {
				if err := drv.Write(owner, id, uint64(blk)*types.BlockSize, block); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	if err := drv.Sync(owner); err != nil {
		b.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(clients)
	defer runtime.GOMAXPROCS(prev)

	// Overwrite modes run the cleaner alongside foreground traffic, as
	// a deployed drive would (§5.1.3): superseded versions age out of
	// the short window continuously instead of only when a client
	// trips ErrNoSpace, so long timed runs settle into a steady state
	// rather than filling the log.
	if window < time.Hour {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				cs, err := drv.CleanOnce()
				if err != nil && err != types.ErrNoSpace {
					return
				}
				if cs.SegmentsFreed == 0 {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
		defer func() { close(stop); <-done }()
	}

	var clientSeq atomic.Int64
	forces0 := drv.GetStats().DeviceForces
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := clientSeq.Add(1)
		cred := types.Cred{User: types.UserID(100 + n), Client: types.ClientID(n)}
		rng := rand.New(rand.NewSource(n))
		payload := block[:512]
		myObj := ids[int(n)%len(ids)]
		for pb.Next() {
			switch mode {
			case "read":
				id := ids[rng.Intn(len(ids))]
				off := uint64(rng.Intn(ptObjBlocks)) * types.BlockSize
				if _, err := drv.Read(cred, id, off, types.BlockSize, types.TimeNowest); err != nil {
					b.Fatal(err)
				}
			case "write", "sync":
				err := reclaimRetry(drv, func() error {
					return drv.Write(cred, myObj, 0, payload)
				})
				if err != nil {
					b.Fatal(err)
				}
				if mode == "sync" {
					if err := reclaimRetry(drv, func() error { return drv.Sync(cred) }); err != nil {
						b.Fatal(err)
					}
				}
			case "history":
				id := ids[rng.Intn(len(ids))]
				off := uint64(rng.Intn(ptObjBlocks)) * types.BlockSize
				if _, err := drv.Read(cred, id, off, types.BlockSize, atHist); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	if mode == "sync" {
		forces := drv.GetStats().DeviceForces - forces0
		b.ReportMetric(float64(forces)/float64(b.N), "forces/op")
	}
}
