package s4fs

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/fsys"
	"s4/internal/types"
	"s4/internal/vclock"
)

func newFS(t *testing.T) (*FS, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual()
	dev := disk.New(disk.SmallDisk(128<<20), clk)
	drv, err := core.Format(dev, core.Options{
		Clock: clk, SegBlocks: 32, CheckpointBlocks: 64,
		Window: time.Hour, BlockCacheBytes: 8 << 20, ObjectCacheCount: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = drv.Close() })
	fs, err := Mkfs(drv, Options{
		Cred:       types.Cred{User: 1000, Client: 1},
		SyncEachOp: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs, clk
}

func TestConformance(t *testing.T) {
	fsys.RunConformance(t, func(t *testing.T) fsys.FileSys {
		fs, _ := newFS(t)
		return fs
	})
}

func TestMountExisting(t *testing.T) {
	fs, _ := newFS(t)
	h, _, err := fs.Create(fs.Root(), "persist", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(h, 0, []byte("mounted")); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Drive(), fs.opts)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := fs2.Lookup(fs2.Root(), "persist")
	if err != nil || h2 != h {
		t.Fatal(h2, err)
	}
	got, err := fs2.Read(h2, 0, 16)
	if err != nil || string(got) != "mounted" {
		t.Fatal(got, err)
	}
}

func TestTimeTravelView(t *testing.T) {
	fs, clk := newFS(t)
	h, _, err := fs.Create(fs.Root(), "syslog", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(h, 0, []byte("intruder logged in from evil.example\n")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	tBefore := types.TS(clk.Now())
	clk.Advance(time.Second)

	// The intruder scrubs the log and removes a second file.
	if err := fs.Write(h, 0, bytes.Repeat([]byte{' '}, 37)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Create(fs.Root(), "exploit.sh", 0755); err != nil {
		t.Fatal(err)
	}
	eh, _, _ := fs.Lookup(fs.Root(), "exploit.sh")
	if err := fs.Write(eh, 0, []byte("#!/bin/sh\n# payload")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	tDuring := types.TS(clk.Now())
	clk.Advance(time.Second)
	if err := fs.Remove(fs.Root(), "exploit.sh"); err != nil {
		t.Fatal(err)
	}

	// Administrator views: before the intrusion the log is intact.
	adminFS := fs.WithCred(types.AdminCred())
	past := adminFS.AtTime(tBefore)
	ph, _, err := past.Lookup(past.Root(), "syslog")
	if err != nil {
		t.Fatal(err)
	}
	got, err := past.Read(ph, 0, 64)
	if err != nil || !bytes.Contains(got, []byte("evil.example")) {
		t.Fatalf("pre-intrusion log = %q err=%v", got, err)
	}
	// The deleted exploit tool is recoverable from the during-intrusion
	// view (§3.1: exploit tools can be recovered).
	during := adminFS.AtTime(tDuring)
	xh, _, err := during.Lookup(during.Root(), "exploit.sh")
	if err != nil {
		t.Fatal(err)
	}
	tool, err := during.Read(xh, 0, 64)
	if err != nil || !bytes.Contains(tool, []byte("payload")) {
		t.Fatalf("exploit tool = %q err=%v", tool, err)
	}
	// In the current view it is gone.
	if _, _, err := fs.Lookup(fs.Root(), "exploit.sh"); !errors.Is(err, fsys.ErrNotFound) {
		t.Fatalf("exploit in current view: %v", err)
	}
	// Historical views reject mutation.
	if _, _, err := past.Create(past.Root(), "x", 0644); !errors.Is(err, fsys.ErrPerm) {
		t.Fatalf("mutation on view: %v", err)
	}
	if err := past.Write(ph, 0, []byte("x")); !errors.Is(err, fsys.ErrPerm) {
		t.Fatalf("write on view: %v", err)
	}
}

func TestDirCacheSurvivesChurn(t *testing.T) {
	fs, _ := newFS(t)
	d, _, err := fs.Mkdir(fs.Root(), "churn", 0755)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave creates and removes; cache slots must stay coherent
	// with the swap-last on-disk layout.
	for round := 0; round < 5; round++ {
		for i := 0; i < 40; i++ {
			name := string(rune('a'+round)) + string(rune('0'+i%10)) + string(rune('0'+i/10))
			if _, _, err := fs.Create(d, name, 0644); err != nil {
				t.Fatalf("round %d create %s: %v", round, name, err)
			}
		}
		ents, err := fs.ReadDir(d)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range ents {
			if i%2 == 0 {
				if err := fs.Remove(d, e.Name); err != nil {
					t.Fatalf("remove %s: %v", e.Name, err)
				}
			}
		}
	}
	// Fresh mount (cold cache) must agree with the cached view.
	fs2, err := Mount(fs.Drive(), fs.opts)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := fs2.Lookup(fs2.Root(), "churn")
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := fs.ReadDir(d)
	cold, _ := fs2.ReadDir(d2)
	if len(warm) != len(cold) {
		t.Fatalf("cache divergence: warm=%d cold=%d", len(warm), len(cold))
	}
	coldSet := map[string]bool{}
	for _, e := range cold {
		coldSet[e.Name] = true
	}
	for _, e := range warm {
		if !coldSet[e.Name] {
			t.Fatalf("entry %q in cache but not on disk", e.Name)
		}
	}
}

func TestNameTooLong(t *testing.T) {
	fs, _ := newFS(t)
	long := string(bytes.Repeat([]byte{'n'}, maxNameLen+1))
	if _, _, err := fs.Create(fs.Root(), long, 0644); !errors.Is(err, types.ErrNameTooLong) {
		t.Fatalf("long name: %v", err)
	}
}

// TestConformanceFileBackend runs the same conformance battery with
// the drive on a real preallocated file in a tempdir, so the
// filesystem layer's contract holds on the backend production runs on
// (DESIGN.md §14.3), not just the simulated device.
func TestConformanceFileBackend(t *testing.T) {
	fsys.RunConformance(t, func(t *testing.T) fsys.FileSys {
		dev, err := disk.OpenFile(filepath.Join(t.TempDir(), "s4fs.img"), 128<<20)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = dev.Close() })
		drv, err := core.Format(dev, core.Options{
			Clock: vclock.NewVirtual(), SegBlocks: 32, CheckpointBlocks: 64,
			Window: time.Hour, BlockCacheBytes: 8 << 20, ObjectCacheCount: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = drv.Close() })
		fs, err := Mkfs(drv, Options{
			Cred:       types.Cred{User: 1000, Client: 1},
			SyncEachOp: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}
