package s4fs_test

// The Fig. 1a deployment test: the S4 client translator running over an
// authenticated network session to a remote drive, exercised through
// the shared file system conformance suite. (External test package to
// avoid an import cycle with internal/s4rpc.)

import (
	"net"
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/fsys"
	"s4/internal/s4fs"
	"s4/internal/s4rpc"
	"s4/internal/types"
)

func startRemoteDrive(t *testing.T) string {
	t.Helper()
	dev := disk.New(disk.SmallDisk(128<<20), nil)
	drv, err := core.Format(dev, core.Options{SegBlocks: 32, CheckpointBlocks: 32, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	keys := s4rpc.NewKeyring([]byte("adm"))
	keys.AddClient(7, []byte("workstation-key"))
	srv := s4rpc.NewServer(drv, keys)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = drv.Close()
	})
	return ln.Addr().String()
}

func TestConformanceOverNetworkBackend(t *testing.T) {
	fsys.RunConformance(t, func(t *testing.T) fsys.FileSys {
		addr := startRemoteDrive(t)
		c, err := s4rpc.Dial(addr, 7, 1000, []byte("workstation-key"), false)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		fs, err := s4fs.MkfsBackend(c, s4fs.Options{
			Cred:       types.Cred{User: 1000, Client: 7},
			SyncEachOp: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestRemoteMountSeesExistingTree(t *testing.T) {
	addr := startRemoteDrive(t)
	c, err := s4rpc.Dial(addr, 7, 1000, []byte("workstation-key"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	opts := s4fs.Options{Cred: types.Cred{User: 1000, Client: 7}, SyncEachOp: true}
	fs1, err := s4fs.MkfsBackend(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := fs1.Create(fs1.Root(), "over-the-wire", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs1.Write(h, 0, []byte("fig 1a works")); err != nil {
		t.Fatal(err)
	}
	// A second session mounts the same partition.
	c2, err := s4rpc.Dial(addr, 7, 1000, []byte("workstation-key"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fs2, err := s4fs.MountBackend(c2, opts)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := fs2.Lookup(fs2.Root(), "over-the-wire")
	if err != nil || h2 != h {
		t.Fatal(h2, err)
	}
	got, err := fs2.Read(h2, 0, 64)
	if err != nil || string(got) != "fig 1a works" {
		t.Fatal(string(got), err)
	}
}
