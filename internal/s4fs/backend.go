package s4fs

import (
	"s4/internal/core"
	"s4/internal/types"
)

// Backend is the slice of the S4 command set the translator uses. A
// backend is already bound to a session credential, matching the two
// deployments of the paper's Fig. 1:
//
//   - Fig. 1a: the translator runs on the client host and the backend is
//     an authenticated *s4rpc.Client session to a network-attached
//     drive (it satisfies this interface as-is).
//   - Fig. 1b: the translator is fused with the drive and the backend is
//     a LocalBackend around the in-process *core.Drive.
type Backend interface {
	Create(acl []types.ACLEntry, attr []byte) (types.ObjectID, error)
	Delete(obj types.ObjectID) error
	Read(obj types.ObjectID, off, n uint64, at types.Timestamp) ([]byte, error)
	Write(obj types.ObjectID, off uint64, data []byte) error
	Truncate(obj types.ObjectID, size uint64) error
	GetAttr(obj types.ObjectID, at types.Timestamp) (core.AttrInfo, error)
	SetAttr(obj types.ObjectID, attr []byte) error
	PCreate(name string, obj types.ObjectID) error
	PMount(name string, at types.Timestamp) (types.ObjectID, error)
	Sync() error
	Status() (core.StatusInfo, error)
}

// LocalBackend binds an in-process drive to one credential.
type LocalBackend struct {
	Drv  *core.Drive
	Cred types.Cred
}

var _ Backend = (*LocalBackend)(nil)

// Create makes an object.
func (b *LocalBackend) Create(acl []types.ACLEntry, attr []byte) (types.ObjectID, error) {
	return b.Drv.Create(b.Cred, acl, attr)
}

// Delete removes an object (into the history pool).
func (b *LocalBackend) Delete(obj types.ObjectID) error { return b.Drv.Delete(b.Cred, obj) }

// Read returns object bytes as of `at`.
func (b *LocalBackend) Read(obj types.ObjectID, off, n uint64, at types.Timestamp) ([]byte, error) {
	return b.Drv.Read(b.Cred, obj, off, n, at)
}

// Write stores bytes at off.
func (b *LocalBackend) Write(obj types.ObjectID, off uint64, data []byte) error {
	return b.Drv.Write(b.Cred, obj, off, data)
}

// Truncate sets the object length.
func (b *LocalBackend) Truncate(obj types.ObjectID, size uint64) error {
	return b.Drv.Truncate(b.Cred, obj, size)
}

// GetAttr fetches attributes as of `at`.
func (b *LocalBackend) GetAttr(obj types.ObjectID, at types.Timestamp) (core.AttrInfo, error) {
	return b.Drv.GetAttr(b.Cred, obj, at)
}

// SetAttr replaces the opaque attribute blob.
func (b *LocalBackend) SetAttr(obj types.ObjectID, attr []byte) error {
	return b.Drv.SetAttr(b.Cred, obj, attr)
}

// PCreate binds a partition name.
func (b *LocalBackend) PCreate(name string, obj types.ObjectID) error {
	return b.Drv.PCreate(b.Cred, name, obj)
}

// PMount resolves a partition name as of `at`.
func (b *LocalBackend) PMount(name string, at types.Timestamp) (types.ObjectID, error) {
	return b.Drv.PMount(b.Cred, name, at)
}

// Sync forces acknowledged modifications durable.
func (b *LocalBackend) Sync() error { return b.Drv.Sync(b.Cred) }

// Status reports drive occupancy.
func (b *LocalBackend) Status() (core.StatusInfo, error) { return b.Drv.Status(), nil }
