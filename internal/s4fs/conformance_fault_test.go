package s4fs

import (
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/fsys"
	"s4/internal/types"
	"s4/internal/vclock"
)

// TestConformanceOverFaultDisk runs the shared fsys contract against
// s4fs built on the torture harness's fault-injection device with all
// faults disarmed. The fault layer must be a transparent pass-through:
// any conformance divergence here but not in TestConformance means the
// fault device itself distorts I/O, which would invalidate every
// crash-consistency result derived from it.
func TestConformanceOverFaultDisk(t *testing.T) {
	fsys.RunConformance(t, func(t *testing.T) fsys.FileSys {
		clk := vclock.NewVirtual()
		dev := disk.NewFault(128 << 20)
		drv, err := core.Format(dev, core.Options{
			Clock: clk, SegBlocks: 32, CheckpointBlocks: 64,
			Window: time.Hour, BlockCacheBytes: 8 << 20, ObjectCacheCount: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = drv.Close() })
		fs, err := Mkfs(drv, Options{
			Cred:       types.Cred{User: 1000, Client: 1},
			SyncEachOp: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}
