package s4fs

import (
	"errors"
	"testing"
	"time"

	"s4/internal/fsys"
	"s4/internal/types"
)

func TestWithCredEnforcesDriveACLs(t *testing.T) {
	fs, _ := newFS(t) // owner: user 1000
	h, _, err := fs.Create(fs.Root(), "private", 0600)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(h, 0, []byte("owner data")); err != nil {
		t.Fatal(err)
	}
	// A stranger's view of the same tree is refused by the drive ACLs
	// (objects were created with owner+admin entries only).
	mallory := fs.WithCred(types.Cred{User: 666, Client: 9})
	if _, err := mallory.Read(h, 0, 10); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("stranger read: %v", err)
	}
	if err := mallory.Write(h, 0, []byte("x")); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("stranger write: %v", err)
	}
	// The administrator's view reads everything.
	admin := fs.WithCred(types.AdminCred())
	got, err := admin.Read(h, 0, 16)
	if err != nil || string(got) != "owner data" {
		t.Fatal(string(got), err)
	}
}

func TestWithCredAdminSeesHistoryAfterRecoveryFlagCleared(t *testing.T) {
	fs, clk := newFS(t)
	h, _, err := fs.Create(fs.Root(), "doc", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(h, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	tV1 := types.TS(clk.Now())
	clk.Advance(time.Second)
	if err := fs.Write(h, 0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	admin := fs.WithCred(types.AdminCred()).AtTime(tV1)
	got, err := admin.Read(h, 0, 2)
	if err != nil || string(got) != "v1" {
		t.Fatal(string(got), err)
	}
	// Historical views list the old directory state too.
	ents, err := admin.ReadDir(admin.Root())
	if err != nil || len(ents) != 1 || ents[0].Name != "doc" {
		t.Fatalf("historical readdir: %v %v", ents, err)
	}
	var _ fsys.FileSys = admin
}
