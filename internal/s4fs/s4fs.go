// Package s4fs is the "S4 client" of OSDI '00 §4.1.2: a user-level
// translator that overlays an NFS-style file system onto the S4 drive's
// flat object namespace.
//
//   - Every file, directory, and symlink is one S4 object; the NFS file
//     handle is the ObjectID.
//   - Directory objects hold fixed-size records (name → ObjectID, type);
//     creates append a record, removes swap the last record into the
//     hole — one or two small object writes per namespace operation,
//     like a conventional file system touching one directory block.
//   - The Unix attribute set (type, mode, uid, gid, nlink) lives in the
//     object's opaque attribute space; size and mtime come from the
//     drive's own metadata.
//   - To honor NFSv2's synchronous semantics, every mutating operation
//     ends with an S4 Sync RPC (§4.1.2); SyncEachOp can relax that for
//     experiments.
//   - The translator aggressively caches directory contents (the paper's
//     "attribute and directory caches") so repeated lookups cost no disk
//     I/O.
//
// AtTime returns a read-only view of the entire tree as it existed at a
// past instant — the foundation for the paper's "time-enhanced" ls and
// cp recovery tools (§3.6).
package s4fs

import (
	"encoding/binary"
	"fmt"
	"sync"

	"s4/internal/core"
	"s4/internal/fsys"
	"s4/internal/types"
)

// Directory record layout (128 bytes).
const (
	recSize    = 128
	maxNameLen = 117
)

type dirRec struct {
	name string
	obj  types.ObjectID
	typ  fsys.FileType
	slot uint64 // record index within the directory object (cache only)
}

func encodeRec(r dirRec) []byte {
	buf := make([]byte, recSize)
	buf[0] = byte(len(r.name))
	copy(buf[1:1+maxNameLen], r.name)
	buf[118] = byte(r.typ)
	binary.LittleEndian.PutUint64(buf[119:], uint64(r.obj))
	return buf
}

func decodeRec(buf []byte) (dirRec, bool) {
	n := int(buf[0])
	if n == 0 || n > maxNameLen {
		return dirRec{}, false
	}
	return dirRec{
		name: string(buf[1 : 1+n]),
		typ:  fsys.FileType(buf[118]),
		obj:  types.ObjectID(binary.LittleEndian.Uint64(buf[119:])),
	}, true
}

// ParseDirData decodes a directory object's raw contents (as read via
// the S4 protocol, possibly with a time parameter) into entries. It is
// what lets recovery tools implement the paper's "time-enhanced ls"
// (§3.6) over the wire without mounting the file system.
func ParseDirData(data []byte) []fsys.DirEntry {
	var out []fsys.DirEntry
	for p := 0; p+recSize <= len(data); p += recSize {
		if r, ok := decodeRec(data[p : p+recSize]); ok {
			out = append(out, fsys.DirEntry{Name: r.name, Handle: fsys.Handle(r.obj), Type: r.typ})
		}
	}
	return out
}

// ParseAttrBlob decodes the Unix attribute blob a node stores in its
// object's opaque attribute space.
func ParseAttrBlob(b []byte) (typ fsys.FileType, mode, uid, gid, nlink uint32, ok bool) {
	return decodeAttrBlob(b)
}

// Unix attribute blob stored in the object's opaque attribute space.
const attrBlobLen = 17

func encodeAttrBlob(typ fsys.FileType, mode, uid, gid, nlink uint32) []byte {
	b := make([]byte, attrBlobLen)
	b[0] = byte(typ)
	binary.LittleEndian.PutUint32(b[1:], mode)
	binary.LittleEndian.PutUint32(b[5:], uid)
	binary.LittleEndian.PutUint32(b[9:], gid)
	binary.LittleEndian.PutUint32(b[13:], nlink)
	return b
}

func decodeAttrBlob(b []byte) (typ fsys.FileType, mode, uid, gid, nlink uint32, ok bool) {
	if len(b) < attrBlobLen {
		return 0, 0, 0, 0, 0, false
	}
	return fsys.FileType(b[0]),
		binary.LittleEndian.Uint32(b[1:]),
		binary.LittleEndian.Uint32(b[5:]),
		binary.LittleEndian.Uint32(b[9:]),
		binary.LittleEndian.Uint32(b[13:]),
		true
}

// Options configures the translator.
type Options struct {
	// Cred is the credential attached to every drive request.
	Cred types.Cred
	// Partition is the named object anchoring the root directory.
	Partition string
	// SyncEachOp issues an S4 Sync after every mutating operation
	// (NFSv2 semantics, the default configuration in the paper).
	SyncEachOp bool
}

// FS is an S4-backed file system. It implements fsys.FileSys.
type FS struct {
	be   Backend
	drv  *core.Drive // non-nil only for local (Fig. 1b) deployments
	opts Options
	root types.ObjectID
	at   types.Timestamp // TimeNowest for the live view

	mu   sync.Mutex
	dirs map[types.ObjectID]map[string]dirRec // directory cache (live view only)
}

var _ fsys.FileSys = (*FS)(nil)

// Mkfs initializes a fresh file system on an in-process drive (the
// Fig. 1b deployment): it creates the root directory object and binds
// it to the partition name.
func Mkfs(drv *core.Drive, opts Options) (*FS, error) {
	fs, err := MkfsBackend(&LocalBackend{Drv: drv, Cred: opts.Cred}, opts)
	if err != nil {
		return nil, err
	}
	fs.drv = drv
	return fs, nil
}

// MkfsBackend initializes a fresh file system over any Backend — an
// authenticated *s4rpc.Client session gives the Fig. 1a deployment
// (translator on the client host, drive network-attached).
func MkfsBackend(be Backend, opts Options) (*FS, error) {
	if opts.Partition == "" {
		opts.Partition = "root"
	}
	fs := &FS{be: be, opts: opts, at: types.TimeNowest, dirs: make(map[types.ObjectID]map[string]dirRec)}
	rootID, err := be.Create(fs.defaultACL(), encodeAttrBlob(fsys.TypeDir, 0755, uint32(opts.Cred.User), 0, 2))
	if err != nil {
		return nil, err
	}
	if err := be.PCreate(opts.Partition, rootID); err != nil {
		return nil, err
	}
	fs.root = rootID
	return fs, fs.maybeSync()
}

// Mount attaches to an existing file system on an in-process drive.
func Mount(drv *core.Drive, opts Options) (*FS, error) {
	fs, err := MountBackend(&LocalBackend{Drv: drv, Cred: opts.Cred}, opts)
	if err != nil {
		return nil, err
	}
	fs.drv = drv
	return fs, nil
}

// MountBackend attaches to an existing file system over any Backend.
func MountBackend(be Backend, opts Options) (*FS, error) {
	if opts.Partition == "" {
		opts.Partition = "root"
	}
	rootID, err := be.PMount(opts.Partition, types.TimeNowest)
	if err != nil {
		return nil, err
	}
	return &FS{
		be: be, opts: opts, root: rootID, at: types.TimeNowest,
		dirs: make(map[types.ObjectID]map[string]dirRec),
	}, nil
}

func (fs *FS) defaultACL() []types.ACLEntry {
	return []types.ACLEntry{
		{User: fs.opts.Cred.User, Perm: types.PermAll},
		{User: types.AdminUser, Perm: types.PermAll},
	}
}

// AtTime returns a read-only view of the file system as of ts. Mutating
// operations on the view fail; reads resolve every object at ts, so the
// whole tree — names, attributes, data — is the historical one.
func (fs *FS) AtTime(ts types.Timestamp) *FS {
	return &FS{be: fs.be, drv: fs.drv, opts: fs.opts, root: fs.root, at: ts}
}

// WithCred returns a view of the same tree operating under a different
// credential — how the administrator's recovery tools (§3.6) open a
// user's file system with history-recovery rights.
// WithCred requires a local (in-process) drive; network sessions are
// bound to their credential at Dial time.
func (fs *FS) WithCred(cred types.Cred) *FS {
	if fs.drv == nil {
		panic("s4fs: WithCred requires a local drive backend")
	}
	opts := fs.opts
	opts.Cred = cred
	return &FS{
		be: &LocalBackend{Drv: fs.drv, Cred: cred}, drv: fs.drv,
		opts: opts, root: fs.root, at: fs.at,
		dirs: make(map[types.ObjectID]map[string]dirRec),
	}
}

// Drive exposes the underlying in-process drive (recovery tooling needs
// it); nil when the backend is a network session.
func (fs *FS) Drive() *core.Drive { return fs.drv }

func (fs *FS) readOnly() bool { return fs.at != types.TimeNowest }

func (fs *FS) maybeSync() error {
	if fs.opts.SyncEachOp {
		return fs.be.Sync()
	}
	return nil
}

// ---- directory cache ----

// loadDir returns the live-view cached entries of dir, loading from the
// drive on first touch.
func (fs *FS) loadDir(dir types.ObjectID) (map[string]dirRec, error) {
	fs.mu.Lock()
	if m, ok := fs.dirs[dir]; ok {
		fs.mu.Unlock()
		return m, nil
	}
	fs.mu.Unlock()
	m, err := fs.readDirRecords(dir, fs.at)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fs.dirs[dir] = m
	fs.mu.Unlock()
	return m, nil
}

// readDirRecords reads a directory object's records at time ts.
func (fs *FS) readDirRecords(dir types.ObjectID, ts types.Timestamp) (map[string]dirRec, error) {
	ai, err := fs.be.GetAttr(dir, ts)
	if err != nil {
		return nil, err
	}
	typ, _, _, _, _, ok := decodeAttrBlob(ai.Attr)
	if !ok || typ != fsys.TypeDir {
		return nil, fsys.ErrNotDir
	}
	m := make(map[string]dirRec, ai.Size/recSize)
	for off := uint64(0); off < ai.Size; off += types.MaxIO {
		n := uint64(types.MaxIO)
		if off+n > ai.Size {
			n = ai.Size - off
		}
		data, err := fs.be.Read(dir, off, n, ts)
		if err != nil {
			return nil, err
		}
		for p := 0; p+recSize <= len(data); p += recSize {
			if r, ok := decodeRec(data[p : p+recSize]); ok {
				r.slot = (off + uint64(p)) / recSize
				m[r.name] = r
			}
		}
	}
	return m, nil
}

// addEntry appends one record to the directory object and cache. Slots
// stay dense (removal swaps the last record into the hole), so the next
// free slot is simply the entry count.
func (fs *FS) addEntry(dir types.ObjectID, r dirRec) error {
	m, err := fs.loadDir(dir)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	if _, exists := m[r.name]; exists {
		fs.mu.Unlock()
		return fsys.ErrExist
	}
	r.slot = uint64(len(m))
	fs.mu.Unlock()
	if err := fs.be.Write(dir, r.slot*recSize, encodeRec(r)); err != nil {
		return err
	}
	fs.mu.Lock()
	m[r.name] = r
	fs.mu.Unlock()
	return nil
}

// dropEntry removes name from the directory by swapping the last record
// into its slot and truncating — one read, at most one write, and one
// truncate, like a conventional file system touching one directory
// block.
func (fs *FS) dropEntry(dir types.ObjectID, name string) (dirRec, error) {
	m, err := fs.loadDir(dir)
	if err != nil {
		return dirRec{}, err
	}
	fs.mu.Lock()
	victim, ok := m[name]
	slots := uint64(len(m))
	fs.mu.Unlock()
	if !ok {
		return dirRec{}, fsys.ErrNotFound
	}
	if victim.slot != slots-1 {
		data, err := fs.be.Read(dir, (slots-1)*recSize, recSize, types.TimeNowest)
		if err != nil {
			return dirRec{}, err
		}
		lastRec, ok := decodeRec(data)
		if !ok {
			return dirRec{}, fmt.Errorf("s4fs: undecodable tail record in %v: %w", dir, types.ErrCorrupt)
		}
		if err := fs.be.Write(dir, victim.slot*recSize, encodeRec(lastRec)); err != nil {
			return dirRec{}, err
		}
		fs.mu.Lock()
		lastRec.slot = victim.slot
		m[lastRec.name] = lastRec
		fs.mu.Unlock()
	}
	if err := fs.be.Truncate(dir, (slots-1)*recSize); err != nil {
		return dirRec{}, err
	}
	fs.mu.Lock()
	delete(m, name)
	fs.mu.Unlock()
	return victim, nil
}

// ---- attribute helpers ----

func (fs *FS) attrOf(id types.ObjectID) (fsys.Attr, error) {
	ai, err := fs.be.GetAttr(id, fs.at)
	if err != nil {
		return fsys.Attr{}, mapErr(err)
	}
	typ, mode, uid, gid, nlink, ok := decodeAttrBlob(ai.Attr)
	if !ok {
		return fsys.Attr{}, fsys.ErrStale
	}
	return fsys.Attr{
		Type: typ, Mode: mode, UID: uid, GID: gid, Nlink: nlink,
		Size: ai.Size, Mtime: ai.ModTime, Ctime: ai.CreateTime,
	}, nil
}

func (fs *FS) setAttrBlob(id types.ObjectID, typ fsys.FileType, mode, uid, gid, nlink uint32) error {
	return fs.be.SetAttr(id, encodeAttrBlob(typ, mode, uid, gid, nlink))
}

func mapErr(err error) error { return err }

// ---- fsys.FileSys implementation ----

// Root returns the root directory handle.
func (fs *FS) Root() fsys.Handle { return fsys.Handle(fs.root) }

// Lookup resolves name in dir.
func (fs *FS) Lookup(dir fsys.Handle, name string) (fsys.Handle, fsys.Attr, error) {
	m, err := fs.dirView(types.ObjectID(dir))
	if err != nil {
		return 0, fsys.Attr{}, err
	}
	r, ok := m[name]
	if !ok {
		return 0, fsys.Attr{}, fsys.ErrNotFound
	}
	a, err := fs.attrOf(r.obj)
	if err != nil {
		return 0, fsys.Attr{}, err
	}
	return fsys.Handle(r.obj), a, nil
}

// dirView returns directory entries honoring the view's time.
func (fs *FS) dirView(dir types.ObjectID) (map[string]dirRec, error) {
	if fs.readOnly() {
		return fs.readDirRecords(dir, fs.at)
	}
	return fs.loadDir(dir)
}

// GetAttr returns h's attributes.
func (fs *FS) GetAttr(h fsys.Handle) (fsys.Attr, error) {
	return fs.attrOf(types.ObjectID(h))
}

// SetAttr applies a partial update; Size triggers truncate.
func (fs *FS) SetAttr(h fsys.Handle, sa fsys.SetAttr) (fsys.Attr, error) {
	if fs.readOnly() {
		return fsys.Attr{}, fsys.ErrPerm
	}
	id := types.ObjectID(h)
	a, err := fs.attrOf(id)
	if err != nil {
		return fsys.Attr{}, err
	}
	if sa.Mode != nil || sa.UID != nil || sa.GID != nil {
		mode, uid, gid := a.Mode, a.UID, a.GID
		if sa.Mode != nil {
			mode = *sa.Mode
		}
		if sa.UID != nil {
			uid = *sa.UID
		}
		if sa.GID != nil {
			gid = *sa.GID
		}
		if err := fs.setAttrBlob(id, a.Type, mode, uid, gid, a.Nlink); err != nil {
			return fsys.Attr{}, err
		}
	}
	if sa.Size != nil && *sa.Size != a.Size {
		if a.Type == fsys.TypeDir {
			return fsys.Attr{}, fsys.ErrIsDir
		}
		if err := fs.be.Truncate(id, *sa.Size); err != nil {
			return fsys.Attr{}, err
		}
	}
	if err := fs.maybeSync(); err != nil {
		return fsys.Attr{}, err
	}
	return fs.attrOf(id)
}

func (fs *FS) makeNode(dir fsys.Handle, name string, typ fsys.FileType, mode uint32, data []byte) (fsys.Handle, fsys.Attr, error) {
	if fs.readOnly() {
		return 0, fsys.Attr{}, fsys.ErrPerm
	}
	if len(name) == 0 || len(name) > maxNameLen {
		return 0, fsys.Attr{}, types.ErrNameTooLong
	}
	if _, err := fs.loadDir(types.ObjectID(dir)); err != nil {
		return 0, fsys.Attr{}, err
	}
	nlink := uint32(1)
	if typ == fsys.TypeDir {
		nlink = 2
	}
	id, err := fs.be.Create(fs.defaultACL(), encodeAttrBlob(typ, mode, uint32(fs.opts.Cred.User), 0, nlink))
	if err != nil {
		return 0, fsys.Attr{}, err
	}
	if len(data) > 0 {
		if err := fs.be.Write(id, 0, data); err != nil {
			return 0, fsys.Attr{}, err
		}
	}
	if err := fs.addEntry(types.ObjectID(dir), dirRec{name: name, obj: id, typ: typ}); err != nil {
		// Roll the orphan object back into the history pool.
		_ = fs.be.Delete(id)
		return 0, fsys.Attr{}, err
	}
	if err := fs.maybeSync(); err != nil {
		return 0, fsys.Attr{}, err
	}
	a, err := fs.attrOf(id)
	return fsys.Handle(id), a, err
}

// Create makes a regular file.
func (fs *FS) Create(dir fsys.Handle, name string, mode uint32) (fsys.Handle, fsys.Attr, error) {
	return fs.makeNode(dir, name, fsys.TypeReg, mode, nil)
}

// Mkdir makes a directory.
func (fs *FS) Mkdir(dir fsys.Handle, name string, mode uint32) (fsys.Handle, fsys.Attr, error) {
	return fs.makeNode(dir, name, fsys.TypeDir, mode, nil)
}

// Symlink makes a symbolic link.
func (fs *FS) Symlink(dir fsys.Handle, name, target string) (fsys.Handle, error) {
	h, _, err := fs.makeNode(dir, name, fsys.TypeSymlink, 0777, []byte(target))
	return h, err
}

// ReadLink returns a symlink's target.
func (fs *FS) ReadLink(h fsys.Handle) (string, error) {
	a, err := fs.attrOf(types.ObjectID(h))
	if err != nil {
		return "", err
	}
	if a.Type != fsys.TypeSymlink {
		return "", fsys.ErrInval
	}
	data, err := fs.be.Read(types.ObjectID(h), 0, a.Size, fs.at)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Remove unlinks a non-directory; the object is deleted when its last
// link goes (its versions stay in the drive's history pool).
func (fs *FS) Remove(dir fsys.Handle, name string) error {
	if fs.readOnly() {
		return fsys.ErrPerm
	}
	m, err := fs.loadDir(types.ObjectID(dir))
	if err != nil {
		return err
	}
	r, ok := m[name]
	if !ok {
		return fsys.ErrNotFound
	}
	if r.typ == fsys.TypeDir {
		return fsys.ErrIsDir
	}
	if _, err := fs.dropEntry(types.ObjectID(dir), name); err != nil {
		return err
	}
	a, err := fs.attrOf(r.obj)
	if err == nil && a.Nlink > 1 {
		err = fs.setAttrBlob(r.obj, a.Type, a.Mode, a.UID, a.GID, a.Nlink-1)
	} else {
		err = fs.be.Delete(r.obj)
	}
	if err != nil {
		return err
	}
	return fs.maybeSync()
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(dir fsys.Handle, name string) error {
	if fs.readOnly() {
		return fsys.ErrPerm
	}
	m, err := fs.loadDir(types.ObjectID(dir))
	if err != nil {
		return err
	}
	r, ok := m[name]
	if !ok {
		return fsys.ErrNotFound
	}
	if r.typ != fsys.TypeDir {
		return fsys.ErrNotDir
	}
	sub, err := fs.loadDir(r.obj)
	if err != nil {
		return err
	}
	if len(sub) > 0 {
		return fsys.ErrNotEmpty
	}
	if _, err := fs.dropEntry(types.ObjectID(dir), name); err != nil {
		return err
	}
	if err := fs.be.Delete(r.obj); err != nil {
		return err
	}
	fs.mu.Lock()
	delete(fs.dirs, r.obj)
	fs.mu.Unlock()
	return fs.maybeSync()
}

// Rename moves an entry, replacing any existing non-directory target
// (or an empty directory when the source is a directory).
func (fs *FS) Rename(fromDir fsys.Handle, fromName string, toDir fsys.Handle, toName string) error {
	if fs.readOnly() {
		return fsys.ErrPerm
	}
	srcDir := types.ObjectID(fromDir)
	dstDir := types.ObjectID(toDir)
	sm, err := fs.loadDir(srcDir)
	if err != nil {
		return err
	}
	src, ok := sm[fromName]
	if !ok {
		return fsys.ErrNotFound
	}
	dm, err := fs.loadDir(dstDir)
	if err != nil {
		return err
	}
	if dst, exists := dm[toName]; exists {
		switch {
		case dst.typ == fsys.TypeDir && src.typ != fsys.TypeDir:
			return fsys.ErrIsDir
		case dst.typ == fsys.TypeDir:
			if err := fs.Rmdir(toDir, toName); err != nil {
				return err
			}
		default:
			if err := fs.Remove(toDir, toName); err != nil {
				return err
			}
		}
	}
	if _, err := fs.dropEntry(srcDir, fromName); err != nil {
		return err
	}
	if err := fs.addEntry(dstDir, dirRec{name: toName, obj: src.obj, typ: src.typ}); err != nil {
		return err
	}
	return fs.maybeSync()
}

// Link makes a hard link to a regular file.
func (fs *FS) Link(h fsys.Handle, dir fsys.Handle, name string) error {
	if fs.readOnly() {
		return fsys.ErrPerm
	}
	id := types.ObjectID(h)
	a, err := fs.attrOf(id)
	if err != nil {
		return err
	}
	if a.Type == fsys.TypeDir {
		return fsys.ErrIsDir
	}
	if err := fs.addEntry(types.ObjectID(dir), dirRec{name: name, obj: id, typ: a.Type}); err != nil {
		return err
	}
	if err := fs.setAttrBlob(id, a.Type, a.Mode, a.UID, a.GID, a.Nlink+1); err != nil {
		return err
	}
	return fs.maybeSync()
}

// Read returns up to n bytes at off, honoring the view's time.
func (fs *FS) Read(h fsys.Handle, off uint64, n int) ([]byte, error) {
	var out []byte
	for n > 0 {
		chunk := n
		if chunk > types.MaxIO {
			chunk = types.MaxIO
		}
		data, err := fs.be.Read(types.ObjectID(h), off, uint64(chunk), fs.at)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		if len(data) < chunk {
			break
		}
		off += uint64(len(data))
		n -= len(data)
	}
	return out, nil
}

// Write stores data at off.
func (fs *FS) Write(h fsys.Handle, off uint64, data []byte) error {
	if fs.readOnly() {
		return fsys.ErrPerm
	}
	for len(data) > 0 {
		chunk := len(data)
		if chunk > types.MaxIO {
			chunk = types.MaxIO
		}
		if err := fs.be.Write(types.ObjectID(h), off, data[:chunk]); err != nil {
			return err
		}
		off += uint64(chunk)
		data = data[chunk:]
	}
	return fs.maybeSync()
}

// ReadDir lists dir.
func (fs *FS) ReadDir(dir fsys.Handle) ([]fsys.DirEntry, error) {
	m, err := fs.dirView(types.ObjectID(dir))
	if err != nil {
		return nil, err
	}
	out := make([]fsys.DirEntry, 0, len(m))
	for _, r := range m {
		out = append(out, fsys.DirEntry{Name: r.name, Handle: fsys.Handle(r.obj), Type: r.typ})
	}
	return out, nil
}

// StatFS reports drive capacity.
func (fs *FS) StatFS() (fsys.Stat, error) {
	st, err := fs.be.Status()
	if err != nil {
		return fsys.Stat{}, err
	}
	blockBytes := uint64(types.BlockSize)
	return fsys.Stat{
		TotalBytes: uint64(st.TotalSegments) * 63 * blockBytes,
		FreeBytes:  uint64(st.FreeSegments) * 63 * blockBytes,
	}, nil
}

// Sync forces everything durable.
func (fs *FS) Sync() error { return fs.be.Sync() }
