package s4rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"s4/internal/harness/leakcheck"
	"s4/internal/types"
)

// hostileFrames are wire prefixes a hostile or corrupted peer might
// deliver in place of a well-formed frame.
func hostileFrames(t testing.TB) map[string][]byte {
	// A valid frame to mutate.
	var buf frameBuffer
	if err := gob.NewEncoder(&buf).Encode(&Request{Op: types.OpStatus}); err != nil {
		t.Fatal(err)
	}
	valid := make([]byte, 4+len(buf.b))
	binary.BigEndian.PutUint32(valid, uint32(len(buf.b)))
	copy(valid[4:], buf.b)

	truncated := append([]byte(nil), valid[:len(valid)-3]...)

	overflow := make([]byte, 8)
	binary.BigEndian.PutUint32(overflow, 0xFFFFFFFF) // 4 GiB "frame"
	maxPlus := make([]byte, 8)
	binary.BigEndian.PutUint32(maxPlus, uint32(MaxFrame)+1)

	garbage := make([]byte, 4+64)
	binary.BigEndian.PutUint32(garbage, 64)
	for i := range garbage[4:] {
		garbage[4+i] = byte(i*37 + 11) // not a gob stream
	}

	short := []byte{0x00, 0x01} // half a header

	return map[string][]byte{
		"truncated-payload": truncated,
		"length-4GiB":       overflow,
		"length-maxframe+1": maxPlus,
		"garbage-gob":       garbage,
		"torn-header":       short,
	}
}

// TestServerSurvivesHostileFrames feeds each hostile frame to an
// authenticated connection and requires the server to drop that
// connection cleanly — no panic, no hang, no worker consumed — while
// continuing to serve a healthy client.
func TestServerSurvivesHostileFrames(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	addr, _ := startServerTuned(t, func(s *Server) {
		s.SetWorkers(1)
		s.SetIOTimeout(300 * time.Millisecond)
	})
	healthy := dialUser(t, addr, 100)

	for name, frame := range hostileFrames(t) {
		t.Run(name, func(t *testing.T) {
			conn := rawHandshake(t, addr, 0)
			defer conn.Close()
			if _, err := conn.Write(frame); err != nil {
				t.Fatal(err)
			}
			// The server must close the connection (hostile frames are
			// never answered) within the I/O deadline.
			conn.SetReadDeadline(time.Now().Add(3 * time.Second))
			var resp Response
			err := readGobFrame(conn, &resp)
			if err == nil && name != "truncated-payload" && name != "torn-header" {
				t.Fatalf("server answered a hostile frame: %+v", resp)
			}
			if errors.Is(err, io.ErrShortBuffer) {
				t.Fatalf("unexpected error class: %v", err)
			}
			// The healthy session rides on, proving the hostile peer
			// neither crashed the server nor captured its one worker.
			if _, err := healthy.Status(); err != nil {
				t.Fatalf("healthy client broken after %s: %v", name, err)
			}
		})
	}
}

// TestClientSurvivesHostileReplies runs a fake server that answers the
// handshake and then serves each hostile frame as the "reply". The
// client must fail the call with an error — never panic or hang — and
// MaxAttempts: 1 keeps it from retrying into the same trap.
func TestClientSurvivesHostileReplies(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	for name, frame := range hostileFrames(t) {
		frame := frame
		t.Run(name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			srvDone := make(chan struct{})
			go func() {
				defer close(srvDone)
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				nonce := make([]byte, nonceLen)
				_ = writeFrame(conn, nonce)
				var h Hello
				_ = readGobFrame(conn, &h)
				_ = writeGobFrame(conn, &HelloReply{OK: true})
				if _, err := readRequest(conn, time.Second); err != nil {
					return
				}
				_, _ = conn.Write(frame)
			}()
			c, err := DialConfig(Config{
				Addr: ln.Addr().String(), Client: 1, User: 100, Key: clientKey,
				CallTimeout: 500 * time.Millisecond, MaxAttempts: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Status(); err == nil {
				t.Fatalf("hostile reply %s accepted", name)
			}
			ln.Close()
			<-srvDone
		})
	}
}

// TestHandshakeGarbage aims hostile bytes at the pre-auth surface: the
// server must shed them without letting the connection past the
// handshake.
func TestHandshakeGarbage(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	addr, _ := startServerTuned(t, func(s *Server) {
		s.SetIOTimeout(200 * time.Millisecond)
	})
	for name, frame := range hostileFrames(t) {
		t.Run(name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := readFrame(conn); err != nil { // nonce
				t.Fatal(err)
			}
			if _, err := conn.Write(frame); err != nil {
				t.Fatal(err)
			}
			// Whatever happens next, it must not be a granted session:
			// either the connection closes or the handshake is refused.
			conn.SetReadDeadline(time.Now().Add(3 * time.Second))
			var rep HelloReply
			if err := readGobFrame(conn, &rep); err == nil && rep.OK {
				t.Fatalf("garbage handshake %s authenticated", name)
			}
		})
	}
}

// FuzzFrameRequest hammers the server-side request decoder with
// arbitrary frame payloads: any outcome but a clean error or a valid
// request is a crash.
func FuzzFrameRequest(f *testing.F) {
	var buf frameBuffer
	_ = gob.NewEncoder(&buf).Encode(&Request{Op: types.OpWrite, Obj: 3, ID: 9, Data: []byte("seed")})
	f.Add(buf.b)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxFrame {
			return // the framing layer rejects these before decode
		}
		var req Request
		_ = gob.NewDecoder(&frameReader{b: payload}).Decode(&req)
	})
}

// FuzzFrameResponse does the same for the client-side reply decoder.
func FuzzFrameResponse(f *testing.F) {
	var buf frameBuffer
	_ = gob.NewEncoder(&buf).Encode(&Response{ID: 9, Data: []byte("seed")})
	f.Add(buf.b)
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x01, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxFrame {
			return
		}
		var resp Response
		_ = gob.NewDecoder(&frameReader{b: payload}).Decode(&resp)
	})
}

// FuzzFrameHeader fuzzes the full framed read path — header included —
// against a one-shot in-memory stream, proving length-prefix handling
// never over-allocates past MaxFrame or panics.
func FuzzFrameHeader(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		payload, err := readFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("readFrame returned %d bytes, above MaxFrame", len(payload))
		}
	})
}
