package s4rpc

import (
	"time"

	"s4/internal/audit"
	"s4/internal/core"
	"s4/internal/types"
)

// Backend is the op surface the RPC server dispatches against: exactly
// the method set of core.Drive that Table 1 (plus the recovery and
// status extensions) reaches. A *core.Drive satisfies it directly; the
// shard router (internal/shard) satisfies it by routing per-object
// operations through its consistent-hash ring and scatter-gathering
// whole-drive operations across its shards. Keeping the interface here
// — rather than in internal/shard — lets the server depend on one name
// while the router depends on s4rpc for its wire backends without an
// import cycle.
type Backend interface {
	Create(cred types.Cred, acl []types.ACLEntry, attr []byte) (types.ObjectID, error)
	CreateWithID(cred types.Cred, id types.ObjectID, acl []types.ACLEntry, attr []byte) error
	Delete(cred types.Cred, id types.ObjectID) error
	Read(cred types.Cred, id types.ObjectID, off, n uint64, at types.Timestamp) ([]byte, error)
	Write(cred types.Cred, id types.ObjectID, off uint64, data []byte) error
	Append(cred types.Cred, id types.ObjectID, data []byte) (uint64, error)
	Truncate(cred types.Cred, id types.ObjectID, size uint64) error
	GetAttr(cred types.Cred, id types.ObjectID, at types.Timestamp) (core.AttrInfo, error)
	SetAttr(cred types.Cred, id types.ObjectID, attr []byte) error
	GetACLByUser(cred types.Cred, id types.ObjectID, user types.UserID, at types.Timestamp) (types.ACLEntry, error)
	GetACLByIndex(cred types.Cred, id types.ObjectID, idx int, at types.Timestamp) (types.ACLEntry, error)
	SetACL(cred types.Cred, id types.ObjectID, idx int, e types.ACLEntry) error
	PCreate(cred types.Cred, name string, id types.ObjectID) error
	PDelete(cred types.Cred, name string) error
	PList(cred types.Cred, at types.Timestamp) ([]core.PartEntry, error)
	PMount(cred types.Cred, name string, at types.Timestamp) (types.ObjectID, error)
	Sync(cred types.Cred) error
	SyncObj(cred types.Cred, id types.ObjectID) error
	Flush(cred types.Cred, from, to types.Timestamp) error
	FlushO(cred types.Cred, id types.ObjectID, from, to types.Timestamp) error
	SetWindow(cred types.Cred, w time.Duration) error
	SetPolicy(cred types.Cred, id types.ObjectID, p types.Policy) error
	GetPolicy(cred types.Cred, id types.ObjectID) (types.Policy, bool, error)
	ListVersions(cred types.Cred, id types.ObjectID) ([]core.VersionInfo, error)
	Revert(cred types.Cred, id types.ObjectID, at types.Timestamp) error
	AuditRead(cred types.Cred, fromSeq uint64, max int) ([]audit.Record, error)
	Status() core.StatusInfo
	GetStats() core.Stats
}

// ShardStatser is the optional interface a multi-shard Backend
// implements so OpStats can carry both the summed counters and the
// per-shard breakdown, and so a down shard surfaces as an error
// instead of silently zeroed counters.
type ShardStatser interface {
	// ShardStats returns the aggregate counters, the per-shard
	// breakdown in ring order, and any fan-out error (a down shard
	// yields a typed per-shard error; reachable shards still report).
	ShardStats() (core.Stats, []core.Stats, error)
}

// StatusErrer is the optional interface a Backend implements when its
// Status can fail (a remote or fanned-out backend). The server prefers
// it over the infallible Status so a down shard yields a wire error
// rather than a silently truncated summary.
type StatusErrer interface {
	StatusErr() (core.StatusInfo, error)
}

// Scrubber is the optional interface behind OpScrub: an on-demand
// integrity sweep over every sealed segment (core.Drive, the shard
// router, and remote shard stubs all implement it; a Backend without it
// answers OpScrub with ErrUnimplProto). Admin-only — the implementation
// must reject non-admin credentials.
type Scrubber interface {
	Scrub(cred types.Cred) (core.ScrubResult, error)
}
