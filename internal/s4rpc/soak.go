package s4rpc

import (
	"fmt"
	"net"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/netfault"
	"s4/internal/types"
	"s4/internal/vclock"
)

// SoakConfig parameterizes one network-fault soak run (RunFaultSoak).
type SoakConfig struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// Ops is the number of marker appends the client attempts.
	Ops int
	// Workers bounds the server's dispatch pool (0 = default).
	Workers int
	// IOTimeout is the server's per-frame deadline (0 = none).
	IOTimeout time.Duration
	// Fault is the injection schedule for the server's listener. The
	// Seed field here is overridden by SoakConfig.Seed.
	Fault netfault.Config
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// SoakResult reports what one soak run did and survived.
type SoakResult struct {
	Attempted int // marker appends issued
	Acked     int // appends acknowledged to the client
	Present   int // markers found in the object afterward
	Client    Stats
	Fault     netfault.Stats
}

// soakMarker is the marker format: fixed-width so content parsing is
// trivial and any torn or duplicated append is unmissable.
func soakMarker(i int) string { return fmt.Sprintf("|op%06d", i) }

// RunFaultSoak is the end-to-end exactly-once proof. It formats a
// fresh in-memory drive, serves it through a fault-injecting listener
// (cuts mid-frame, silent drops, latency spikes), and has one client
// append ordered markers while its retry machinery fights the faults.
// It then verifies the ground truth against an oracle:
//
//   - every acknowledged append appears in the object exactly once;
//   - no marker — acked or not — appears more than once, despite every
//     retransmission (a lost reply may leave an unacked marker behind:
//     at-most-once is the strongest claim possible for unacked ops);
//   - markers appear in issue order (the session serializes);
//   - the audit log records exactly one successful append per present
//     marker — duplicate suppression left no phantom evidence (§3.3);
//   - the version history has exactly one version per present marker;
//   - core.CheckInvariants passes, and after a crash-equivalent close
//     and recovery replay the object still reads back identically.
//
// Any violation returns a non-nil error describing it.
func RunFaultSoak(cfg SoakConfig) (SoakResult, error) {
	var res SoakResult
	if cfg.Ops <= 0 {
		cfg.Ops = 200
	}
	cfg.Fault.Seed = cfg.Seed
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	opts := core.Options{
		Clock: vclock.Wall{}, SegBlocks: 16, CheckpointBlocks: 16,
		Window: time.Hour, SurfaceThrottle: true,
	}
	dev := disk.New(disk.SmallDisk(64<<20), nil)
	drv, err := core.Format(dev, opts)
	if err != nil {
		return res, err
	}
	defer func() {
		if drv != nil {
			_ = drv.Close()
		}
	}()

	keys := NewKeyring([]byte("soak-admin-key"))
	clientKey := []byte("soak-client-key")
	keys.AddClient(1, clientKey)
	srv := NewServer(drv, keys)
	if cfg.Workers > 0 {
		srv.SetWorkers(cfg.Workers)
	}
	if cfg.IOTimeout > 0 {
		srv.SetIOTimeout(cfg.IOTimeout)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	fl := netfault.Wrap(ln, cfg.Fault)
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = srv.Serve(fl) }()
	defer func() { _ = srv.Close(); <-serveDone }()

	// The client's one session rides across every reconnect; short
	// timeouts keep the soak brisk, many attempts let it outlast any
	// streak of cut or blackholed connections.
	ccfg := Config{
		Addr: fl.Addr().String(), Client: 1, User: 100, Key: clientKey,
		DialTimeout: 250 * time.Millisecond, CallTimeout: 300 * time.Millisecond,
		MaxAttempts: 60, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
	}
	var c *Client
	for attempt := 0; ; attempt++ {
		c, err = DialConfig(ccfg)
		if err == nil {
			break
		}
		if attempt > 100 {
			return res, fmt.Errorf("soak: cannot establish first session: %w", err)
		}
	}
	defer c.Close()

	cred := types.Cred{User: 100, Client: 1}
	acl := []types.ACLEntry{{User: 100, Perm: types.PermRead | types.PermWrite}}
	obj, err := c.Create(acl, nil)
	if err != nil {
		return res, fmt.Errorf("soak: create: %w", err)
	}

	acked := make([]bool, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		res.Attempted++
		if _, err := c.Append(obj, []byte(soakMarker(i))); err == nil {
			acked[i] = true
			res.Acked++
		}
		if i%50 == 49 {
			st := c.Stats()
			logf("soak: %d/%d ops, %d acked, %d retries, %d reconnects",
				i+1, cfg.Ops, res.Acked, st.Retries, st.Reconnects)
		}
	}
	res.Client = c.Stats()
	res.Fault = fl.Stats()
	_ = c.Close()

	// ---- oracle: verify against the drive directly, under the faults'
	// reach no longer (the wire is out of the loop from here). ----
	verify := func(d *core.Drive) error {
		ai, err := d.GetAttr(cred, obj, types.TimeNowest)
		if err != nil {
			return fmt.Errorf("oracle getattr: %w", err)
		}
		data, err := d.Read(cred, obj, 0, ai.Size, types.TimeNowest)
		if err != nil {
			return fmt.Errorf("oracle read: %w", err)
		}
		mlen := len(soakMarker(0))
		if len(data)%mlen != 0 {
			return fmt.Errorf("object size %d not a whole number of markers (torn append)", len(data))
		}
		seen := make(map[int]int)
		prev := -1
		var present int
		for p := 0; p < len(data); p += mlen {
			var i int
			if _, err := fmt.Sscanf(string(data[p:p+mlen]), "|op%06d", &i); err != nil {
				return fmt.Errorf("garbage marker %q at %d", data[p:p+mlen], p)
			}
			seen[i]++
			if seen[i] > 1 {
				return fmt.Errorf("marker %d appears %d times: duplicate execution", i, seen[i])
			}
			if i <= prev {
				return fmt.Errorf("marker %d after %d: ordering violated", i, prev)
			}
			prev = i
			present++
		}
		for i, ok := range acked {
			if ok && seen[i] == 0 {
				return fmt.Errorf("acked marker %d missing: lost acknowledged write", i)
			}
		}
		res.Present = present

		// Audit log: one successful append record per present marker —
		// suppressed duplicates must leave no second evidence entry.
		admin := types.AdminCred()
		recs, err := d.AuditRead(admin, 0, 1<<20)
		if err != nil {
			return fmt.Errorf("oracle audit read: %w", err)
		}
		var okAppends int
		for _, r := range recs {
			if r.Op == types.OpAppend && r.Obj == obj && r.OK {
				okAppends++
			}
		}
		if okAppends != present {
			return fmt.Errorf("audit shows %d successful appends, object holds %d markers", okAppends, present)
		}

		// Version history: exactly one write version per executed append
		// (creation and ACL setup journal under their own entry types).
		vs, err := d.ListVersions(admin, obj)
		if err != nil {
			return fmt.Errorf("oracle versions: %w", err)
		}
		var writes int
		for _, v := range vs {
			if v.Op == "write" {
				writes++
			}
		}
		if writes != present {
			return fmt.Errorf("%d write versions for %d present markers", writes, present)
		}
		return d.CheckInvariants()
	}
	if err := verify(drv); err != nil {
		return res, err
	}

	// Recovery finale: force durability, tear the drive down, and
	// replay — the exactly-once story must survive a restart.
	if err := drv.Sync(types.AdminCred()); err != nil {
		return res, fmt.Errorf("soak sync: %w", err)
	}
	if err := drv.Close(); err != nil {
		drv = nil
		return res, fmt.Errorf("soak close: %w", err)
	}
	drv = nil
	reopened, err := core.Open(dev, opts)
	if err != nil {
		return res, fmt.Errorf("soak recovery open: %w", err)
	}
	drv = reopened
	if err := verify(reopened); err != nil {
		return res, fmt.Errorf("after recovery replay: %w", err)
	}
	logf("soak: %d attempted, %d acked, %d present, %d retries, %d reconnects, faults %+v",
		res.Attempted, res.Acked, res.Present, res.Client.Retries, res.Client.Reconnects, res.Fault)
	return res, nil
}
