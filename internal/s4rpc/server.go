package s4rpc

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"s4/internal/core"
	"s4/internal/types"
)

// Keyring maps principals to their session keys. The drive owner loads
// it at startup; it lives inside the security perimeter.
type Keyring struct {
	mu      sync.RWMutex
	clients map[types.ClientID][]byte
	admin   []byte
}

// NewKeyring creates an empty keyring with the given administrator key.
func NewKeyring(adminKey []byte) *Keyring {
	return &Keyring{clients: make(map[types.ClientID][]byte), admin: adminKey}
}

// AddClient registers a client machine's secret.
func (k *Keyring) AddClient(c types.ClientID, key []byte) {
	k.mu.Lock()
	k.clients[c] = append([]byte(nil), key...)
	k.mu.Unlock()
}

func (k *Keyring) verify(h *Hello, nonce []byte) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key := k.clients[h.Client]
	if h.Admin {
		key = k.admin
	}
	if len(key) == 0 {
		return false
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(nonce)
	return hmac.Equal(mac.Sum(nil), h.MAC)
}

// busyRetryAfter is the wait hint attached to a shed (ErrBusy) reply.
const busyRetryAfter = 20 * time.Millisecond

// defaultMaxSessions bounds the duplicate-reply cache (one last-reply
// entry per live session).
const defaultMaxSessions = 4096

// Server exposes a core.Drive over TCP. Requests from all connections
// are dispatched on a bounded worker pool (SetWorkers) with a bounded
// queue (SetQueueDepth): a flood of connections cannot spawn an
// unbounded number of drive operations, and once the queue is full
// further requests are shed with a retryable ErrBusy instead of parked.
// Per-frame I/O deadlines (SetIOTimeout) evict stalled and slowloris
// connections, and a per-session duplicate-reply cache gives retrying
// clients exactly-once execution (see proto.go).
type Server struct {
	drv  Backend
	keys *Keyring

	mu        sync.Mutex
	ln        net.Listener
	lnClosed  bool
	conns     map[net.Conn]struct{}
	shutdown  bool
	workers   int
	queue     int
	connLimit int
	ioTimeout time.Duration
	tasks     chan task
	serving   bool

	draining atomic.Bool

	sessMu      sync.Mutex
	sessions    map[sessionKey]*session
	maxSessions int

	done     chan struct{} // closed by Close: unblocks queued submitters
	stopped  chan struct{} // closed when Serve has fully torn down
	workerWG sync.WaitGroup

	// testDispatchDelay, when set (tests only), runs before each
	// dispatched request so tests can hold worker slots deterministically.
	testDispatchDelay func(op types.Op)
}

type task struct {
	cred types.Cred
	req  *Request
	resp chan *Response
}

// sessionKey identifies one client session across reconnects. The
// ClientID component comes from the authenticated handshake, so one
// principal can never read or poison another principal's reply cache.
type sessionKey struct {
	client  types.ClientID
	session uint64
}

// session is the duplicate-suppression state for one (Client, Session)
// pair: the last executed request ID and its reply. Because the client
// issues one request at a time per session, caching a single reply
// suffices — request n's arrival proves the reply to n-1 was received,
// which is the cache's eviction rule.
type session struct {
	mu       sync.Mutex
	lastID   uint64
	lastResp *Response
	lastUsed atomic.Int64 // unix nanos, for registry eviction
}

// NewServer wraps drv — a single drive or a shard router — with the
// given keyring.
func NewServer(drv Backend, keys *Keyring) *Server {
	return &Server{
		drv: drv, keys: keys,
		conns:       make(map[net.Conn]struct{}),
		sessions:    make(map[sessionKey]*session),
		maxSessions: defaultMaxSessions,
		done:        make(chan struct{}),
		stopped:     make(chan struct{}),
	}
}

// SetWorkers bounds the request-dispatch pool. Call before Serve;
// n <= 0 (the default) selects GOMAXPROCS.
func (s *Server) SetWorkers(n int) {
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
}

// SetQueueDepth bounds how many accepted requests may wait for a free
// worker before further requests are shed with ErrBusy. Call before
// Serve; n <= 0 (the default) selects 4x the worker count.
func (s *Server) SetQueueDepth(n int) {
	s.mu.Lock()
	s.queue = n
	s.mu.Unlock()
}

// SetConnLimit caps concurrent connections; over-limit connections are
// closed before the handshake (clients see a retryable connect
// failure). Zero (the default) means unlimited. Call before Serve.
func (s *Server) SetConnLimit(n int) {
	s.mu.Lock()
	s.connLimit = n
	s.mu.Unlock()
}

// SetIOTimeout sets the per-frame I/O deadline: the handshake must
// complete within it, a started request frame must finish arriving
// within it, and a reply write must complete within it. An idle
// session between frames is not evicted. Zero (the default) disables
// deadlines. Call before Serve.
func (s *Server) SetIOTimeout(d time.Duration) {
	s.mu.Lock()
	s.ioTimeout = d
	s.mu.Unlock()
}

// Serve accepts connections on ln until Close. It blocks, and does not
// return until every connection handler and pool worker has exited —
// shutdown leaves no goroutines behind.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.serving = true
	n := s.workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	q := s.queue
	if q <= 0 {
		q = 4 * n
	}
	s.tasks = make(chan task, q)
	for i := 0; i < n; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.mu.Unlock()

	var connWG sync.WaitGroup
	var retErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.shutdown
			s.mu.Unlock()
			if !done && !s.draining.Load() {
				retErr = err
			}
			break
		}
		s.mu.Lock()
		if s.shutdown || s.draining.Load() {
			s.mu.Unlock()
			_ = conn.Close()
			break
		}
		if s.connLimit > 0 && len(s.conns) >= s.connLimit {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			s.serveConn(conn)
		}()
	}
	connWG.Wait()
	close(s.tasks)
	s.workerWG.Wait()
	close(s.stopped)
	return retErr
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		if s.testDispatchDelay != nil {
			s.testDispatchDelay(t.req.Op)
		}
		t.resp <- s.dispatch(t.cred, t.req)
	}
}

// submit runs one request on the pool. When the worker queue is full
// the request is shed with a retryable ErrBusy and a retry-after hint
// — it did not execute, so the client may safely reissue it. The
// second return value reports whether the request executed (only
// executed requests enter the duplicate-reply cache).
func (s *Server) submit(cred types.Cred, req *Request) (*Response, bool) {
	t := task{cred: cred, req: req, resp: make(chan *Response, 1)}
	select {
	case s.tasks <- t:
		return <-t.resp, true
	case <-s.done:
		return &Response{Errno: wireErrno(types.ErrDriveStopped)}, false
	default:
		return &Response{Errno: wireErrno(types.ErrBusy), RetryAfter: busyRetryAfter}, false
	}
}

// lookupSession finds or creates the duplicate-suppression state for
// one handshake. A full registry evicts the least recently used
// session; the cost of a wrong eviction is bounded — at worst, one
// retransmission from a session idle longer than every other live
// session re-executes instead of hitting the cache.
func (s *Server) lookupSession(c types.ClientID, id uint64) *session {
	if id == 0 {
		return nil
	}
	key := sessionKey{client: c, session: id}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if sess, ok := s.sessions[key]; ok {
		sess.lastUsed.Store(time.Now().UnixNano())
		return sess
	}
	if len(s.sessions) >= s.maxSessions {
		var oldestKey sessionKey
		oldest := int64(math.MaxInt64)
		for k, v := range s.sessions {
			if u := v.lastUsed.Load(); u < oldest {
				oldest, oldestKey = u, k
			}
		}
		delete(s.sessions, oldestKey)
	}
	sess := &session{}
	sess.lastUsed.Store(time.Now().UnixNano())
	s.sessions[key] = sess
	return sess
}

// Close stops the listener, drops every connection immediately, and —
// if Serve is running — waits for its handlers and workers to finish.
// In-flight requests complete against the drive but their replies are
// lost with the connections; Shutdown drains them gracefully first.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.shutdown
	s.shutdown = true
	if !already {
		close(s.done)
	}
	ln := s.ln
	lnClosed := s.lnClosed
	s.lnClosed = true
	for c := range s.conns {
		_ = c.Close()
	}
	serving := s.serving
	s.mu.Unlock()
	var err error
	if ln != nil && !lnClosed {
		err = ln.Close()
	}
	if serving {
		<-s.stopped
	}
	return err
}

// Shutdown drains the server gracefully: the listener stops accepting,
// idle connections are evicted, and connections with a request in
// flight finish executing it and receive their reply before their
// handler exits. Connections still busy after timeout are
// force-closed. Like Close, it does not return until Serve has fully
// torn down.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	lnClosed := s.lnClosed
	s.lnClosed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	serving := s.serving
	s.mu.Unlock()
	if ln != nil && !lnClosed {
		_ = ln.Close()
	}
	// Boot idle readers: a connection parked between frames returns
	// from its blocking read immediately and its handler exits; one
	// mid-request finishes and notices the drain after its reply.
	now := time.Now()
	for _, c := range conns {
		_ = c.SetReadDeadline(now)
	}
	if serving {
		select {
		case <-s.stopped:
		case <-time.After(timeout):
		}
	}
	return s.Close()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	s.mu.Lock()
	iot := s.ioTimeout
	s.mu.Unlock()
	// The whole handshake runs under one deadline: a stalled
	// (slowloris) handshake is evicted, never parked.
	if iot > 0 {
		_ = conn.SetDeadline(time.Now().Add(iot))
	}
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return
	}
	if err := writeFrame(conn, nonce); err != nil {
		return
	}
	hello, err := readHello(conn)
	if err != nil {
		return
	}
	ok := s.keys.verify(hello, nonce)
	if err := writeGobFrame(conn, &HelloReply{OK: ok, Errno: errnoOf(ok)}); err != nil || !ok {
		return
	}
	if iot > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	cred := types.Cred{User: hello.User, Client: hello.Client, Admin: hello.Admin}
	sess := s.lookupSession(cred.Client, hello.Session)
	for {
		if s.draining.Load() {
			return
		}
		req, err := readRequest(conn, iot)
		if err != nil {
			return
		}
		resp := s.process(sess, cred, req)
		if iot > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(iot))
		}
		if err := writeGobFrame(conn, resp); err != nil {
			return
		}
		if s.draining.Load() {
			return
		}
	}
}

// readRequest reads one request frame. The wait for the first byte may
// block indefinitely — idle sessions are legal — but once a frame has
// begun, the rest must arrive within timeout: a mid-frame stall is a
// broken or hostile peer and the connection is evicted rather than
// holding drive resources hostage (§3.2).
func readRequest(conn net.Conn, timeout time.Duration) (*Request, error) {
	var hdr [4]byte
	if timeout > 0 {
		_ = conn.SetReadDeadline(time.Time{})
	}
	if _, err := io.ReadFull(conn, hdr[:1]); err != nil {
		return nil, err
	}
	if timeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
	}
	if _, err := io.ReadFull(conn, hdr[1:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("s4rpc: frame of %d bytes: %w", n, types.ErrTooLarge)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	var req Request
	if err := gob.NewDecoder(&frameReader{b: buf}).Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// process executes one request with duplicate suppression. The session
// mutex is held across execution: if a zombie handler (an older, dying
// connection of the same session) is still executing this request, the
// retransmission blocks here and then finds the cached reply instead
// of executing — and auditing — the command twice.
func (s *Server) process(sess *session, cred types.Cred, req *Request) *Response {
	if sess == nil || req.ID == 0 {
		resp, _ := s.submit(cred, req)
		resp.ID = req.ID
		return resp
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.lastUsed.Store(time.Now().UnixNano())
	switch {
	case req.ID == sess.lastID && sess.lastResp != nil:
		// Retransmission of the last executed request — its reply was
		// lost on the wire. Serve the cached reply; the command does not
		// execute again and leaves no second audit record.
		return sess.lastResp
	case req.ID < sess.lastID:
		// Older than the cache: the client violated the one-in-flight
		// protocol, or someone is replaying captured traffic. Refuse.
		return &Response{ID: req.ID, Errno: wireErrno(types.ErrInval)}
	}
	resp, executed := s.submit(cred, req)
	resp.ID = req.ID
	if executed {
		// The arrival of ID n proves the reply to n-1 was received;
		// that is the cache's eviction rule. Shed (ErrBusy) replies are
		// not cached — the request never executed, so an identical
		// reissue must be allowed to run.
		sess.lastID, sess.lastResp = req.ID, resp
	}
	return resp
}

func errnoOf(ok bool) uint8 {
	if ok {
		return 0
	}
	return 15 // ErrAuthFailed's wire code
}

// dispatch executes one request (or batch) against the drive.
func (s *Server) dispatch(cred types.Cred, req *Request) *Response {
	// A request may narrow the user within the authenticated client
	// session (the NFS gateway forwards per-request uids); it can never
	// escalate to admin.
	if req.User != 0 && !cred.Admin {
		cred.User = req.User
	}
	resp := &Response{}
	fail := func(err error) *Response {
		resp.Errno = wireErrno(err)
		if after, ok := types.RetryAfterHint(err); ok {
			resp.RetryAfter = after
		}
		return resp
	}
	switch req.Op {
	case types.OpBatch:
		for i := range req.Batch {
			sub := s.dispatch(cred, &req.Batch[i])
			resp.Batch = append(resp.Batch, *sub)
		}
	case types.OpCreate:
		// Obj != 0 selects explicit-ID creation (no separate op code:
		// audit blocks persist op codes, and a plain Create never
		// carries an object). The shard router and gate use it so the
		// ring — not the shard — owns ID allocation.
		var id types.ObjectID
		var err error
		if req.Obj != 0 {
			id, err = req.Obj, s.drv.CreateWithID(cred, req.Obj, req.ACL, req.Attr)
		} else {
			id, err = s.drv.Create(cred, req.ACL, req.Attr)
		}
		if err != nil {
			return fail(err)
		}
		resp.Obj = id
	case types.OpDelete:
		return fail(s.drv.Delete(cred, req.Obj))
	case types.OpRead:
		data, err := s.drv.Read(cred, req.Obj, req.Offset, req.Length, req.At)
		if err != nil {
			return fail(err)
		}
		resp.Data = data
	case types.OpWrite:
		return fail(s.drv.Write(cred, req.Obj, req.Offset, req.Data))
	case types.OpAppend:
		off, err := s.drv.Append(cred, req.Obj, req.Data)
		if err != nil {
			return fail(err)
		}
		resp.Offset = off
	case types.OpTruncate:
		return fail(s.drv.Truncate(cred, req.Obj, req.Length))
	case types.OpGetAttr:
		ai, err := s.drv.GetAttr(cred, req.Obj, req.At)
		if err != nil {
			return fail(err)
		}
		resp.Attr = ai
	case types.OpSetAttr:
		return fail(s.drv.SetAttr(cred, req.Obj, req.Attr))
	case types.OpGetACLByUser:
		e, err := s.drv.GetACLByUser(cred, req.Obj, types.UserID(req.Offset), req.At)
		if err != nil {
			return fail(err)
		}
		resp.ACL = e
	case types.OpGetACLByIndex:
		e, err := s.drv.GetACLByIndex(cred, req.Obj, req.ACLIdx, req.At)
		if err != nil {
			return fail(err)
		}
		resp.ACL = e
	case types.OpSetACL:
		if len(req.ACL) != 1 {
			return fail(types.ErrInval)
		}
		return fail(s.drv.SetACL(cred, req.Obj, req.ACLIdx, req.ACL[0]))
	case types.OpPCreate:
		return fail(s.drv.PCreate(cred, req.Name, req.Obj))
	case types.OpPDelete:
		return fail(s.drv.PDelete(cred, req.Name))
	case types.OpPList:
		ps, err := s.drv.PList(cred, req.At)
		if err != nil {
			return fail(err)
		}
		resp.Parts = ps
	case types.OpPMount:
		id, err := s.drv.PMount(cred, req.Name, req.At)
		if err != nil {
			return fail(err)
		}
		resp.Obj = id
	case types.OpSync:
		// Obj != 0 narrows the sync to one object so a shard router can
		// route it to a single shard instead of broadcasting.
		if req.Obj != 0 {
			return fail(s.drv.SyncObj(cred, req.Obj))
		}
		return fail(s.drv.Sync(cred))
	case types.OpFlush:
		return fail(s.drv.Flush(cred, req.From, req.To))
	case types.OpFlushO:
		return fail(s.drv.FlushO(cred, req.Obj, req.From, req.To))
	case types.OpSetWindow:
		return fail(s.drv.SetWindow(cred, req.Window))
	case types.OpSetPolicy:
		return fail(s.drv.SetPolicy(cred, req.Obj, req.Policy))
	case types.OpGetPolicy:
		p, own, err := s.drv.GetPolicy(cred, req.Obj)
		if err != nil {
			return fail(err)
		}
		resp.Policy, resp.PolicyOwn = p, own
	case types.OpListVersions:
		vs, err := s.drv.ListVersions(cred, req.Obj)
		if err != nil {
			return fail(err)
		}
		if req.Max > 0 && len(vs) > req.Max {
			vs = vs[:req.Max]
		}
		resp.Versions = vs
	case types.OpRevert:
		return fail(s.drv.Revert(cred, req.Obj, req.At))
	case types.OpAuditRead:
		recs, err := s.drv.AuditRead(cred, req.Seq, req.Max)
		if err != nil {
			return fail(err)
		}
		resp.Records = recs
	case types.OpStatus:
		if b, ok := s.drv.(StatusErrer); ok {
			st, err := b.StatusErr()
			if err != nil {
				return fail(err)
			}
			resp.Status = st
		} else {
			resp.Status = s.drv.Status()
		}
	case types.OpStats:
		if b, ok := s.drv.(ShardStatser); ok {
			agg, per, err := b.ShardStats()
			if err != nil {
				return fail(err)
			}
			resp.Stats, resp.ShardStats = agg, per
		} else {
			resp.Stats = s.drv.GetStats()
		}
	case types.OpScrub:
		b, ok := s.drv.(Scrubber)
		if !ok {
			return fail(types.ErrUnimplProto)
		}
		sr, err := b.Scrub(cred)
		if err != nil {
			return fail(err)
		}
		resp.Scrub = sr
	default:
		return fail(types.ErrUnimplProto)
	}
	return resp
}

func wireErrno(err error) uint8 {
	if err == nil {
		return 0
	}
	for code := uint8(1); code < 32; code++ {
		if e := core.ErrnoToError(code); e != nil && errors.Is(err, e) {
			return code
		}
	}
	return 255
}

// ---- framing ----

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("s4rpc: frame of %d bytes: %w", n, types.ErrTooLarge)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeGobFrame(w io.Writer, v any) error {
	var buf frameBuffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return writeFrame(w, buf.b)
}

func readGobFrame(r io.Reader, v any) error {
	payload, err := readFrame(r)
	if err != nil {
		return err
	}
	return gob.NewDecoder(&frameReader{b: payload}).Decode(v)
}

func readHello(r io.Reader) (*Hello, error) {
	var h Hello
	if err := readGobFrame(r, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

type frameBuffer struct{ b []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

type frameReader struct {
	b []byte
	i int
}

func (f *frameReader) Read(p []byte) (int, error) {
	if f.i >= len(f.b) {
		return 0, io.EOF
	}
	n := copy(p, f.b[f.i:])
	f.i += n
	return n, nil
}
