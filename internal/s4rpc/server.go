package s4rpc

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"s4/internal/core"
	"s4/internal/types"
)

// Keyring maps principals to their session keys. The drive owner loads
// it at startup; it lives inside the security perimeter.
type Keyring struct {
	mu      sync.RWMutex
	clients map[types.ClientID][]byte
	admin   []byte
}

// NewKeyring creates an empty keyring with the given administrator key.
func NewKeyring(adminKey []byte) *Keyring {
	return &Keyring{clients: make(map[types.ClientID][]byte), admin: adminKey}
}

// AddClient registers a client machine's secret.
func (k *Keyring) AddClient(c types.ClientID, key []byte) {
	k.mu.Lock()
	k.clients[c] = append([]byte(nil), key...)
	k.mu.Unlock()
}

func (k *Keyring) verify(h *Hello, nonce []byte) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key := k.clients[h.Client]
	if h.Admin {
		key = k.admin
	}
	if len(key) == 0 {
		return false
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(nonce)
	return hmac.Equal(mac.Sum(nil), h.MAC)
}

// Server exposes a core.Drive over TCP. Requests from all connections
// are dispatched on a bounded worker pool (SetWorkers), so a flood of
// connections cannot spawn an unbounded number of drive operations;
// with the drive's fine-grained locking, pool workers are what actually
// run in parallel.
type Server struct {
	drv  *core.Drive
	keys *Keyring

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool
	workers  int
	tasks    chan task
	serving  bool

	done     chan struct{} // closed by Close: unblocks queued submitters
	stopped  chan struct{} // closed when Serve has fully torn down
	workerWG sync.WaitGroup
}

type task struct {
	cred types.Cred
	req  *Request
	resp chan *Response
}

// NewServer wraps drv with the given keyring.
func NewServer(drv *core.Drive, keys *Keyring) *Server {
	return &Server{
		drv: drv, keys: keys,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
}

// SetWorkers bounds the request-dispatch pool. Call before Serve;
// n <= 0 (the default) selects GOMAXPROCS.
func (s *Server) SetWorkers(n int) {
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
}

// Serve accepts connections on ln until Close. It blocks, and does not
// return until every connection handler and pool worker has exited —
// shutdown leaves no goroutines behind.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.serving = true
	n := s.workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.tasks = make(chan task)
	for i := 0; i < n; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.mu.Unlock()

	var connWG sync.WaitGroup
	var retErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.shutdown
			s.mu.Unlock()
			if !done {
				retErr = err
			}
			break
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			_ = conn.Close()
			break
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			s.serveConn(conn)
		}()
	}
	connWG.Wait()
	close(s.tasks)
	s.workerWG.Wait()
	close(s.stopped)
	return retErr
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		t.resp <- s.dispatch(t.cred, t.req)
	}
}

// submit runs one request on the pool, blocking until a worker picks it
// up (backpressure) or the server shuts down.
func (s *Server) submit(cred types.Cred, req *Request) *Response {
	t := task{cred: cred, req: req, resp: make(chan *Response, 1)}
	select {
	case s.tasks <- t:
		return <-t.resp
	case <-s.done:
		return &Response{Errno: wireErrno(types.ErrDriveStopped)}
	}
}

// Close stops the listener, drops every connection, and — if Serve is
// running — waits for its handlers and workers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.shutdown
	s.shutdown = true
	if !already {
		close(s.done)
	}
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	serving := s.serving
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if serving {
		<-s.stopped
	}
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	// Challenge.
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return
	}
	if err := writeFrame(conn, nonce); err != nil {
		return
	}
	hello, err := readHello(conn)
	if err != nil {
		return
	}
	ok := s.keys.verify(hello, nonce)
	if err := writeGobFrame(conn, &HelloReply{OK: ok, Errno: errnoOf(ok)}); err != nil || !ok {
		return
	}
	cred := types.Cred{User: hello.User, Client: hello.Client, Admin: hello.Admin}
	for {
		var req Request
		if err := readGobFrame(conn, &req); err != nil {
			return
		}
		resp := s.submit(cred, &req)
		if err := writeGobFrame(conn, resp); err != nil {
			return
		}
	}
}

func errnoOf(ok bool) uint8 {
	if ok {
		return 0
	}
	return 15 // ErrAuthFailed's wire code
}

// dispatch executes one request (or batch) against the drive.
func (s *Server) dispatch(cred types.Cred, req *Request) *Response {
	// A request may narrow the user within the authenticated client
	// session (the NFS gateway forwards per-request uids); it can never
	// escalate to admin.
	if req.User != 0 && !cred.Admin {
		cred.User = req.User
	}
	resp := &Response{}
	fail := func(err error) *Response {
		resp.Errno = wireErrno(err)
		return resp
	}
	switch req.Op {
	case types.OpBatch:
		for i := range req.Batch {
			sub := s.dispatch(cred, &req.Batch[i])
			resp.Batch = append(resp.Batch, *sub)
		}
	case types.OpCreate:
		id, err := s.drv.Create(cred, req.ACL, req.Attr)
		if err != nil {
			return fail(err)
		}
		resp.Obj = id
	case types.OpDelete:
		return fail(s.drv.Delete(cred, req.Obj))
	case types.OpRead:
		data, err := s.drv.Read(cred, req.Obj, req.Offset, req.Length, req.At)
		if err != nil {
			return fail(err)
		}
		resp.Data = data
	case types.OpWrite:
		return fail(s.drv.Write(cred, req.Obj, req.Offset, req.Data))
	case types.OpAppend:
		off, err := s.drv.Append(cred, req.Obj, req.Data)
		if err != nil {
			return fail(err)
		}
		resp.Offset = off
	case types.OpTruncate:
		return fail(s.drv.Truncate(cred, req.Obj, req.Length))
	case types.OpGetAttr:
		ai, err := s.drv.GetAttr(cred, req.Obj, req.At)
		if err != nil {
			return fail(err)
		}
		resp.Attr = ai
	case types.OpSetAttr:
		return fail(s.drv.SetAttr(cred, req.Obj, req.Attr))
	case types.OpGetACLByUser:
		e, err := s.drv.GetACLByUser(cred, req.Obj, types.UserID(req.Offset), req.At)
		if err != nil {
			return fail(err)
		}
		resp.ACL = e
	case types.OpGetACLByIndex:
		e, err := s.drv.GetACLByIndex(cred, req.Obj, req.ACLIdx, req.At)
		if err != nil {
			return fail(err)
		}
		resp.ACL = e
	case types.OpSetACL:
		if len(req.ACL) != 1 {
			return fail(types.ErrInval)
		}
		return fail(s.drv.SetACL(cred, req.Obj, req.ACLIdx, req.ACL[0]))
	case types.OpPCreate:
		return fail(s.drv.PCreate(cred, req.Name, req.Obj))
	case types.OpPDelete:
		return fail(s.drv.PDelete(cred, req.Name))
	case types.OpPList:
		ps, err := s.drv.PList(cred, req.At)
		if err != nil {
			return fail(err)
		}
		resp.Parts = ps
	case types.OpPMount:
		id, err := s.drv.PMount(cred, req.Name, req.At)
		if err != nil {
			return fail(err)
		}
		resp.Obj = id
	case types.OpSync:
		return fail(s.drv.Sync(cred))
	case types.OpFlush:
		return fail(s.drv.Flush(cred, req.From, req.To))
	case types.OpFlushO:
		return fail(s.drv.FlushO(cred, req.Obj, req.From, req.To))
	case types.OpSetWindow:
		return fail(s.drv.SetWindow(cred, req.Window))
	case types.OpListVersions:
		vs, err := s.drv.ListVersions(cred, req.Obj)
		if err != nil {
			return fail(err)
		}
		if req.Max > 0 && len(vs) > req.Max {
			vs = vs[:req.Max]
		}
		resp.Versions = vs
	case types.OpRevert:
		return fail(s.drv.Revert(cred, req.Obj, req.At))
	case types.OpAuditRead:
		recs, err := s.drv.AuditRead(cred, req.Seq, req.Max)
		if err != nil {
			return fail(err)
		}
		resp.Records = recs
	case types.OpStatus:
		resp.Status = s.drv.Status()
	default:
		return fail(types.ErrUnimplProto)
	}
	return resp
}

func wireErrno(err error) uint8 {
	if err == nil {
		return 0
	}
	for code := uint8(1); code < 32; code++ {
		if e := core.ErrnoToError(code); e != nil && errors.Is(err, e) {
			return code
		}
	}
	return 255
}

// ---- framing ----

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("s4rpc: frame of %d bytes: %w", n, types.ErrTooLarge)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeGobFrame(w io.Writer, v any) error {
	var buf frameBuffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return writeFrame(w, buf.b)
}

func readGobFrame(r io.Reader, v any) error {
	payload, err := readFrame(r)
	if err != nil {
		return err
	}
	return gob.NewDecoder(&frameReader{b: payload}).Decode(v)
}

func readHello(r io.Reader) (*Hello, error) {
	var h Hello
	if err := readGobFrame(r, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

type frameBuffer struct{ b []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

type frameReader struct {
	b []byte
	i int
}

func (f *frameReader) Read(p []byte) (int, error) {
	if f.i >= len(f.b) {
		return 0, io.EOF
	}
	n := copy(p, f.b[f.i:])
	f.i += n
	return n, nil
}
