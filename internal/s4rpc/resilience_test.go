package s4rpc

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	mrand "math/rand"
	"net"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/harness/leakcheck"
	"s4/internal/netfault"
	"s4/internal/types"
	"s4/internal/vclock"
)

// TestFaultSoakExactlyOnce is the headline proof: a client surviving
// cuts, drops and latency spikes gets exactly-once execution for every
// acknowledged mutation, with the audit log, version history, drive
// invariants, and a recovery replay all agreeing. The fault schedule
// must force a substantial number of retries and reconnects for the
// proof to mean anything.
func TestFaultSoakExactlyOnce(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ops := 300
	if testing.Short() {
		ops = 120 // still forces well over 100 retries (see soak logs)
	}
	if os.Getenv("S4_NETFAULT_LONG") != "" {
		ops = 3000
	}
	// The cut budget tracks the first-exchange size (handshake plus the
	// gob type descriptors riding on a connection's first request and
	// response, ~2.6kB with the policy ops): most budgets must land below it so cuts keep
	// forcing reconnects, while enough headroom above keeps progress
	// possible. Growing the wire structs means re-measuring and raising
	// CutMax.
	res, err := RunFaultSoak(SoakConfig{
		Seed: 1, Ops: ops, Workers: 4, IOTimeout: time.Second,
		Fault: netfault.Config{
			DelayEvery: 40, MaxDelay: 2 * time.Millisecond,
			CutMin: 200, CutMax: 3300,
			DropProb: 0.05,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("soak violated exactly-once: %v (result %+v)", err, res)
	}
	if res.Acked < ops*8/10 {
		t.Fatalf("only %d/%d ops acked: retry machinery too weak for the schedule", res.Acked, ops)
	}
	forced := res.Client.Retries + res.Client.Reconnects
	if forced < 100 {
		t.Fatalf("schedule forced only %d retries+reconnects, want >= 100 for a meaningful proof", forced)
	}
	if res.Fault.Cuts == 0 || res.Fault.Drops == 0 {
		t.Fatalf("fault mix degenerate: %+v", res.Fault)
	}
	t.Logf("soak result: %+v", res)
}

// TestFaultSoakSeeds runs the soak across several seeds so one lucky
// schedule cannot carry the proof. The schedule here is brutal enough
// (budgets below the handshake size, frequent blackholes) that a run
// takes minutes, so it only executes in the nightly soak.
func TestFaultSoakSeeds(t *testing.T) {
	if os.Getenv("S4_NETFAULT_LONG") == "" {
		t.Skip("multi-seed soak runs only with S4_NETFAULT_LONG=1")
	}
	for seed := int64(2); seed <= 4; seed++ {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			res, err := RunFaultSoak(SoakConfig{
				Seed: seed, Ops: 150, Workers: 2, IOTimeout: time.Second,
				Fault: netfault.Config{
					DelayEvery: 50, MaxDelay: time.Millisecond,
					CutMin: 150, CutMax: 3300, DropProb: 0.08,
				},
			})
			if err != nil {
				t.Fatalf("seed %d: %v (result %+v)", seed, err, res)
			}
		})
	}
}

// TestDuplicateSuppression speaks the raw protocol: resending a request
// with the same ID must return the cached reply without executing (no
// second version, no second audit record), and an older ID is refused.
func TestDuplicateSuppression(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	addr, drv := startServer(t)
	c := dialUser(t, addr, 100)
	acl := []types.ACLEntry{{User: 100, Perm: types.PermAll}}
	obj, err := c.Create(acl, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A raw session presenting an explicit session ID.
	conn := rawHandshake(t, addr, 777)
	req := &Request{Op: types.OpAppend, Obj: obj, ID: 1, Data: []byte("once")}
	first := rawCall(t, conn, req)
	if first.Err() != nil {
		t.Fatalf("append: %v", first.Err())
	}

	// Same ID again — must be served from the cache, not executed.
	second := rawCall(t, conn, req)
	if second.Err() != nil || second.Offset != first.Offset {
		t.Fatalf("retransmission got %+v, want cached %+v", second, first)
	}
	admin := types.AdminCred()
	countWrites := func() int {
		t.Helper()
		vs, err := drv.ListVersions(admin, obj)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, v := range vs {
			if v.Op == "write" { // appends journal as write entries
				n++
			}
		}
		return n
	}
	if n := countWrites(); n != 1 {
		t.Fatalf("duplicate executed: %d write versions", n)
	}
	recs, err := drv.AuditRead(admin, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	appends := 0
	for _, r := range recs {
		if r.Op == types.OpAppend && r.Obj == obj {
			appends++
		}
	}
	if appends != 1 {
		t.Fatalf("duplicate left %d audit records", appends)
	}

	// The retransmission must also survive a reconnect: a fresh
	// connection presenting the same session resumes the cache.
	conn.Close()
	conn2 := rawHandshake(t, addr, 777)
	third := rawCall(t, conn2, req)
	if third.Err() != nil || third.Offset != first.Offset {
		t.Fatalf("post-reconnect retransmission got %+v", third)
	}
	if n := countWrites(); n != 1 {
		t.Fatalf("post-reconnect duplicate executed: %d write versions", n)
	}

	// An ID below the cache is a protocol violation (or a replay
	// attack) and is refused without executing.
	adv := rawCall(t, conn2, &Request{Op: types.OpAppend, Obj: obj, ID: 2, Data: []byte("two")})
	if adv.Err() != nil {
		t.Fatal(adv.Err())
	}
	old := rawCall(t, conn2, &Request{Op: types.OpAppend, Obj: obj, ID: 1, Data: []byte("replay")})
	if !errors.Is(old.Err(), types.ErrInval) {
		t.Fatalf("stale ID accepted: %+v", old)
	}
	conn2.Close()
}

// TestSlowlorisEvicted proves a connection that stalls mid-frame is
// evicted within the I/O deadline, without ever consuming a worker
// slot — a healthy client stays fully served throughout.
func TestSlowlorisEvicted(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	addr, _ := startServerTuned(t, func(s *Server) {
		s.SetWorkers(1) // a single slot: if the slowloris held it, the probe would stall
		s.SetIOTimeout(200 * time.Millisecond)
	})

	// One slowloris stalls inside the handshake: it reads the nonce and
	// never answers.
	hs, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	if _, err := readFrame(hs); err != nil {
		t.Fatal(err)
	}

	// Another completes the handshake, then dribbles one header byte of
	// a request frame and stalls.
	sl := rawHandshake(t, addr, 0)
	if _, err := sl.Write([]byte{0x00}); err != nil {
		t.Fatal(err)
	}

	// A healthy client gets normal service while the slowloris stalls.
	c := dialUser(t, addr, 100)
	obj, err := c.Create([]types.ACLEntry{{User: 100, Perm: types.PermAll}}, nil)
	if err != nil {
		t.Fatalf("healthy client starved behind slowloris: %v", err)
	}
	if err := c.Write(obj, 0, []byte("alive")); err != nil {
		t.Fatal(err)
	}

	// Both stalled connections must be evicted within ~the deadline.
	for name, conn := range map[string]net.Conn{"handshake": hs, "mid-frame": sl} {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var one [1]byte
		start := time.Now()
		if _, err := conn.Read(one[:]); err == nil {
			t.Fatalf("%s slowloris connection still open", name)
		}
		if waited := time.Since(start); waited > 1500*time.Millisecond {
			t.Fatalf("%s eviction took %v, deadline is 200ms", name, waited)
		}
		conn.Close()
	}
}

// TestBusyShedding proves the bounded queue: with one worker held and
// the queue full, further requests are shed fast with a retryable
// ErrBusy carrying a retry-after hint — not parked on the drive.
func TestBusyShedding(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	hold := make(chan struct{})
	var holding atomic.Bool
	addr, _ := startServerTuned(t, func(s *Server) {
		s.SetWorkers(1)
		s.SetQueueDepth(1)
		s.testDispatchDelay = func(op types.Op) {
			if holding.Load() && op == types.OpRead {
				<-hold
			}
		}
	})
	c := dialUser(t, addr, 100)
	obj, err := c.Create([]types.ACLEntry{{User: 100, Perm: types.PermAll}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	holding.Store(true)

	// Fill the worker (one blocked read) and the queue (one parked read).
	blocked := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			cc, err := Dial(addr, 1, 100, clientKey, false)
			if err != nil {
				blocked <- err
				return
			}
			defer cc.Close()
			_, err = cc.Read(obj, 0, 1, types.TimeNowest)
			blocked <- err
		}()
	}
	time.Sleep(100 * time.Millisecond) // let both reads reach the pool

	// A raw probe (no retry loop) must now be shed with ErrBusy.
	probe := rawHandshake(t, addr, 0)
	resp := rawCall(t, probe, &Request{Op: types.OpStatus})
	if !errors.Is(resp.Err(), types.ErrBusy) {
		t.Fatalf("full queue returned %v, want ErrBusy", resp.Err())
	}
	if after, ok := types.RetryAfterHint(resp.Err()); !ok || after <= 0 {
		t.Fatalf("shed reply carries no retry-after hint: %v", resp.Err())
	}
	probe.Close()

	// The resilient client retries through the busy period and
	// succeeds once the worker frees up.
	go func() {
		time.Sleep(150 * time.Millisecond)
		holding.Store(false)
		close(hold)
	}()
	if _, err := c.Read(obj, 0, 1, types.TimeNowest); err != nil {
		t.Fatalf("resilient client did not ride out ErrBusy: %v", err)
	}
	if st := c.Stats(); st.BusyWaits == 0 {
		t.Fatalf("client stats show no busy waits: %+v", st)
	}
	for i := 0; i < 2; i++ {
		if err := <-blocked; err != nil {
			t.Fatalf("held read failed: %v", err)
		}
	}
}

// TestConnLimit proves over-limit connections are refused before the
// handshake while existing sessions keep working.
func TestConnLimit(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	addr, _ := startServerTuned(t, func(s *Server) { s.SetConnLimit(1) })
	c := dialUser(t, addr, 100)
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}

	// The second connection is closed before a nonce arrives.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(raw); err == nil {
		t.Fatal("over-limit connection got a handshake")
	}
	raw.Close()

	// The in-limit session is unaffected.
	if _, err := c.Status(); err != nil {
		t.Fatalf("existing session broken by over-limit attempt: %v", err)
	}
}

// TestThrottleRetryAfter proves an abuse penalty surfaces as a
// retryable wire error with the penalty as its hint, and the client's
// backoff honors it instead of burning the server's workers.
func TestThrottleRetryAfter(t *testing.T) {
	resp := &Response{Errno: wireErrno(types.ErrThrottled), RetryAfter: 40 * time.Millisecond}
	err := resp.Err()
	if !errors.Is(err, types.ErrThrottled) || !types.Retryable(err) {
		t.Fatalf("wire round-trip lost the class: %v", err)
	}
	if after, ok := types.RetryAfterHint(err); !ok || after != 40*time.Millisecond {
		t.Fatalf("hint lost: %v %v", after, ok)
	}

	// The client-side backoff must wait at least the hint.
	c := &Client{cfg: Config{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}}
	c.rng = newTestRNG()
	if d := c.backoff(1, 40*time.Millisecond); d < 40*time.Millisecond {
		t.Fatalf("backoff %v shorter than server hint", d)
	}
}

// TestCloseUnblocksCall is the regression for the pre-resilience
// deadlock: Close while a Call waits on a server that never responds
// must promptly fail the Call with ErrClosed.
func TestCloseUnblocksCall(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	// A fake server that handshakes, then goes silent forever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	silent := make(chan struct{})
	go func() {
		defer close(silent)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		nonce := make([]byte, nonceLen)
		_ = writeFrame(conn, nonce)
		var h Hello
		_ = readGobFrame(conn, &h)
		_ = writeGobFrame(conn, &HelloReply{OK: true})
		var buf [1 << 12]byte
		for { // swallow requests, never reply
			if _, err := conn.Read(buf[:]); err != nil {
				return
			}
		}
	}()

	c, err := DialConfig(Config{
		Addr: ln.Addr().String(), Client: 1, User: 100, Key: clientKey,
		CallTimeout: time.Hour, MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	callErr := make(chan error, 1)
	go func() {
		_, err := c.Status()
		callErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the call reach the wire
	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-callErr:
		if !errors.Is(err, types.ErrClosed) {
			t.Fatalf("blocked call returned %v, want ErrClosed", err)
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("Close took %v to unblock the call", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call still blocked 5s after Close")
	}
	// New calls after Close fail immediately with the same error.
	if _, err := c.Status(); !errors.Is(err, types.ErrClosed) {
		t.Fatalf("post-Close call returned %v", err)
	}
	ln.Close()
	<-silent
}

// TestGracefulShutdownDrains proves Shutdown lets an in-flight request
// finish and deliver its reply, while refusing new connections.
func TestGracefulShutdownDrains(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	release := make(chan struct{})
	var holding atomic.Bool
	addr, srv, drv := startServerRaw(t, func(s *Server) {
		s.SetWorkers(1)
		s.testDispatchDelay = func(op types.Op) {
			if holding.Load() && op == types.OpStatus {
				<-release
			}
		}
	})
	t.Cleanup(func() { // Close is idempotent; covers failure paths
		_ = srv.Close()
		_ = drv.Close()
	})
	c := dialUser(t, addr, 100)
	holding.Store(true)
	statusErr := make(chan error, 1)
	go func() {
		_, err := c.Status()
		statusErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // request in flight

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(2 * time.Second) }()
	time.Sleep(50 * time.Millisecond)
	holding.Store(false)
	close(release)

	if err := <-statusErr; err != nil {
		t.Fatalf("in-flight request lost its reply during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// ---- raw-protocol helpers ----

// rawHandshake authenticates a bare TCP connection as client 1 /
// user 100, presenting the given session ID.
func rawHandshake(t *testing.T, addr string, session uint64) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nonce, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	mac := macFor(clientKey, nonce)
	if err := writeGobFrame(conn, &Hello{Client: 1, User: 100, MAC: mac, Session: session}); err != nil {
		t.Fatal(err)
	}
	var rep HelloReply
	if err := readGobFrame(conn, &rep); err != nil || !rep.OK {
		t.Fatalf("handshake: %v ok=%v", err, rep.OK)
	}
	return conn
}

func rawCall(t *testing.T, conn net.Conn, req *Request) *Response {
	t.Helper()
	if err := writeGobFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	var resp Response
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := readGobFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Time{})
	return &resp
}

func macFor(key, nonce []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(nonce)
	return mac.Sum(nil)
}

func newTestRNG() *mrand.Rand { return mrand.New(mrand.NewSource(1)) }

// startServerRaw formats a fresh in-memory drive and serves it with
// pre-Serve tuning applied. Callers own shutdown.
func startServerRaw(t *testing.T, tune func(*Server)) (addr string, srv *Server, drv *core.Drive) {
	t.Helper()
	dev := disk.New(disk.SmallDisk(64<<20), nil)
	drv, err := core.Format(dev, core.Options{
		Clock: vclock.Wall{}, SegBlocks: 16, CheckpointBlocks: 16, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := NewKeyring(adminKey)
	keys.AddClient(1, clientKey)
	srv = NewServer(drv, keys)
	if tune != nil {
		tune(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv, drv
}

// startServerTuned is startServer with pre-Serve configuration.
func startServerTuned(t *testing.T, tune func(*Server)) (addr string, drv *core.Drive) {
	t.Helper()
	addr, srv, drv := startServerRaw(t, tune)
	t.Cleanup(func() {
		_ = srv.Close()
		_ = drv.Close()
	})
	return addr, drv
}
