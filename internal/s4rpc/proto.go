// Package s4rpc implements the S4 drive's network protocol: the RPC set
// of Table 1 (OSDI '00, §4.1.1) carried over TCP.
//
// The security perimeter (§3.2) lives here: every connection performs a
// challenge–response handshake before any command is accepted, binding
// the session to a ClientID whose secret key the drive knows. The
// administrative commands (SetWindow, Flush, FlushO, AuditRead) require
// the session to have authenticated with the drive's administrator key —
// a client credential, however thoroughly stolen, can never reach them.
// Per §4.1.2, the protocol also supports batching several commands in
// one round trip.
//
// Framing: 4-byte big-endian length + gob-encoded message. Gob is the
// stdlib's self-describing binary encoding; the handshake and every
// request/response are fixed Go structs below.
package s4rpc

import (
	"time"

	"s4/internal/audit"
	"s4/internal/core"
	"s4/internal/types"
)

// Protocol constants.
const (
	// MaxFrame bounds one message (a write carries at most MaxIO).
	MaxFrame = types.MaxIO + 1<<16
	// nonceLen is the handshake challenge size.
	nonceLen = 32
)

// Hello is the client's handshake message, answering the server's
// nonce challenge.
type Hello struct {
	Client types.ClientID
	User   types.UserID
	// MAC is HMAC-SHA256(key, nonce) where key is the client's secret
	// (or the administrator key for admin sessions).
	MAC   []byte
	Admin bool
}

// HelloReply completes the handshake.
type HelloReply struct {
	OK    bool
	Errno uint8
}

// Request is one S4 command. Exactly the fields relevant to Op are set.
type Request struct {
	Op  types.Op
	Obj types.ObjectID
	// At is the optional time parameter of Table 1's time-based
	// operations; TimeNowest reads the current version.
	At     types.Timestamp
	Offset uint64
	Length uint64
	Data   []byte
	Name   string
	ACL    []types.ACLEntry
	ACLIdx int
	Attr   []byte
	User   types.UserID // per-request user (NFS-style credentials)
	From   types.Timestamp
	To     types.Timestamp
	Window time.Duration
	Seq    uint64 // AuditRead: starting sequence
	Max    int    // AuditRead/ListVersions: result bound
	// Batch carries sub-requests executed in order (§4.1.2); the reply
	// carries per-entry results.
	Batch []Request
}

// Response carries one command's result.
type Response struct {
	Errno    uint8
	Data     []byte
	Obj      types.ObjectID
	Offset   uint64
	Attr     core.AttrInfo
	ACL      types.ACLEntry
	Parts    []core.PartEntry
	Versions []core.VersionInfo
	Records  []audit.Record
	Status   core.StatusInfo
	Batch    []Response
}

// Err converts the wire errno back into a Go error (nil when 0).
func (r *Response) Err() error { return core.ErrnoToError(r.Errno) }
