// Package s4rpc implements the S4 drive's network protocol: the RPC set
// of Table 1 (OSDI '00, §4.1.1) carried over TCP.
//
// The security perimeter (§3.2) lives here: every connection performs a
// challenge–response handshake before any command is accepted, binding
// the session to a ClientID whose secret key the drive knows. The
// administrative commands (SetWindow, Flush, FlushO, AuditRead) require
// the session to have authenticated with the drive's administrator key —
// a client credential, however thoroughly stolen, can never reach them.
// Per §4.1.2, the protocol also supports batching several commands in
// one round trip.
//
// Framing: 4-byte big-endian length + gob-encoded message. Gob is the
// stdlib's self-describing binary encoding; the handshake and every
// request/response are fixed Go structs below.
//
// Wire failure model (DESIGN.md §10): the transport is assumed lossy
// and hostile. Sessions carry a client-chosen 64-bit session ID that
// survives reconnects, and every request carries a per-session
// monotonic ID. The server keeps the last executed (ID, reply) per
// session, so a retransmitted request whose reply was lost on the wire
// is answered from the cache instead of executing — and auditing —
// twice. This turns the client's at-least-once retry loop into
// exactly-once execution for every acknowledged mutation.
package s4rpc

import (
	"time"

	"s4/internal/audit"
	"s4/internal/core"
	"s4/internal/types"
)

// Protocol constants.
const (
	// MaxFrame bounds one message (a write carries at most MaxIO).
	MaxFrame = types.MaxIO + 1<<16
	// nonceLen is the handshake challenge size.
	nonceLen = 32
)

// Hello is the client's handshake message, answering the server's
// nonce challenge.
type Hello struct {
	Client types.ClientID
	User   types.UserID
	// MAC is HMAC-SHA256(key, nonce) where key is the client's secret
	// (or the administrator key for admin sessions).
	MAC   []byte
	Admin bool
	// Session is a client-chosen identifier that survives reconnects;
	// presenting the same Session after a redial resumes the server's
	// duplicate-reply cache for this (Client, Session) pair. Zero
	// disables duplicate suppression (legacy sessions).
	Session uint64
}

// HelloReply completes the handshake.
type HelloReply struct {
	OK    bool
	Errno uint8
}

// Request is one S4 command. Exactly the fields relevant to Op are set.
type Request struct {
	Op  types.Op
	Obj types.ObjectID
	// ID is the per-session monotonic request number. A transport-level
	// retransmission (reply lost) reuses the ID so the server can detect
	// the duplicate; a fresh attempt after a definitive answer (ErrBusy,
	// ErrThrottled) allocates a new one. Zero = unnumbered, no duplicate
	// suppression.
	ID uint64
	// At is the optional time parameter of Table 1's time-based
	// operations; TimeNowest reads the current version.
	At     types.Timestamp
	Offset uint64
	Length uint64
	Data   []byte
	Name   string
	ACL    []types.ACLEntry
	ACLIdx int
	Attr   []byte
	User   types.UserID // per-request user (NFS-style credentials)
	From   types.Timestamp
	To     types.Timestamp
	Window time.Duration
	// Policy is OpSetPolicy's payload; Obj selects the target (0 = the
	// drive-wide default).
	Policy types.Policy
	Seq    uint64 // AuditRead: starting sequence
	Max    int    // AuditRead/ListVersions: result bound
	// Batch carries sub-requests executed in order (§4.1.2); the reply
	// carries per-entry results.
	Batch []Request
}

// Response carries one command's result.
type Response struct {
	// ID echoes the request's ID so a client can detect a desynchronized
	// reply stream (zero for unnumbered requests).
	ID uint64
	// RetryAfter is the server's suggested wait before retrying, set
	// only with a retryable Errno (ErrBusy: queue shed; ErrThrottled:
	// abuse penalty, §3.3).
	RetryAfter time.Duration
	Errno      uint8
	Data       []byte
	Obj        types.ObjectID
	Offset     uint64
	Attr       core.AttrInfo
	ACL        types.ACLEntry
	Parts      []core.PartEntry
	Versions   []core.VersionInfo
	Records    []audit.Record
	Status     core.StatusInfo
	Stats      core.Stats
	// ShardStats is the per-shard breakdown behind an aggregated Stats
	// reply, in ring order; empty when the backend is a single drive.
	ShardStats []core.Stats
	// Scrub summarizes an on-demand integrity sweep (OpScrub).
	Scrub core.ScrubResult
	// Policy answers OpGetPolicy; PolicyOwn reports whether the object
	// has its own entry (false = inherited drive default).
	Policy    types.Policy
	PolicyOwn bool
	Batch     []Response
}

// Err converts the wire errno back into a Go error (nil when 0). A
// retryable error with a server-supplied wait hint is reconstructed as
// a types.RetryableError; errors.Is sees through to the base class.
func (r *Response) Err() error {
	err := core.ErrnoToError(r.Errno)
	if err != nil && r.RetryAfter > 0 && types.Retryable(err) {
		return &types.RetryableError{Err: err, After: r.RetryAfter}
	}
	return err
}
