package s4rpc

import (
	"net"
	"sync"
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/harness/leakcheck"
	"s4/internal/types"
	"s4/internal/vclock"
)

// TestShutdownLeavesNoGoroutines stands up a full server, runs traffic
// from several concurrent connections through the worker pool, then
// tears everything down and asserts the goroutine count returns to its
// pre-test baseline. Server shutdown has four moving parts that must
// all terminate — the accept loop, per-connection handlers, the
// dispatch workers, and Drive.Close — and a leak in any of them is a
// slow memory/fd exhaustion in the daemon.
//
// Unlike the other RPC tests, this one tears down in the test body
// (not t.Cleanup) so the leak check runs after everything has stopped.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	defer leakcheck.Check(t)()

	dev := disk.New(disk.SmallDisk(64<<20), nil)
	drv, err := core.Format(dev, core.Options{
		Clock: vclock.Wall{}, SegBlocks: 16, CheckpointBlocks: 16, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := NewKeyring(adminKey)
	keys.AddClient(1, clientKey)
	srv := NewServer(drv, keys)
	srv.SetWorkers(4)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	const conns = 6
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 1, types.UserID(100+i), clientKey, false)
			if err != nil {
				t.Errorf("conn %d: dial: %v", i, err)
				return
			}
			defer c.Close()
			id, err := c.Create(nil, nil)
			if err != nil {
				t.Errorf("conn %d: create: %v", i, err)
				return
			}
			for op := 0; op < 20; op++ {
				if err := c.Write(id, 0, []byte{byte(i), byte(op)}); err != nil {
					t.Errorf("conn %d: write: %v", i, err)
					return
				}
				if _, err := c.Read(id, 0, 2, types.TimeNowest); err != nil {
					t.Errorf("conn %d: read: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// One connection left open across shutdown: Close must boot it, and
	// its handler goroutine must still exit.
	idle, err := Dial(addr, 1, 999, clientKey, false)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned: %v", err)
	}
	if err := drv.Close(); err != nil {
		t.Fatal(err)
	}
}
