package s4rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

var (
	clientKey = []byte("client-1-secret-key")
	adminKey  = []byte("drive-administrator-key")
)

func startServer(t *testing.T) (addr string, drv *core.Drive) {
	t.Helper()
	clk := vclock.Wall{}
	dev := disk.New(disk.SmallDisk(64<<20), nil)
	drv, err := core.Format(dev, core.Options{Clock: clk, SegBlocks: 16, CheckpointBlocks: 16, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	keys := NewKeyring(adminKey)
	keys.AddClient(1, clientKey)
	srv := NewServer(drv, keys)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = drv.Close()
	})
	return ln.Addr().String(), drv
}

func dialUser(t *testing.T, addr string, user types.UserID) *Client {
	t.Helper()
	c, err := Dial(addr, 1, user, clientKey, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestEndToEndReadWrite(t *testing.T) {
	addr, _ := startServer(t)
	c := dialUser(t, addr, 100)
	id, err := c.Create(nil, []byte("attr-blob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(id, 0, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(id, 0, 64, types.TimeNowest)
	if err != nil || string(got) != "over the wire" {
		t.Fatal(string(got), err)
	}
	ai, err := c.GetAttr(id, types.TimeNowest)
	if err != nil || string(ai.Attr) != "attr-blob" {
		t.Fatal(ai, err)
	}
	off, err := c.Append(id, []byte("!"))
	if err != nil || off != 13 {
		t.Fatal(off, err)
	}
	if err := c.Truncate(id, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Read(id, 0, 64, types.TimeNowest)
	if string(got) != "over" {
		t.Fatalf("after truncate: %q", got)
	}
}

func TestDriveStatsOverWire(t *testing.T) {
	addr, _ := startServer(t)
	c := dialUser(t, addr, 100)
	id, err := c.Create(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(id, 0, []byte("pipeline")); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := c.DriveStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CommitBatches+st.SyncsCoalesced < 1 {
		t.Fatalf("no commit accounted after Sync: %+v", st)
	}
	if st.DeviceForces < 1 || st.LogAppends < 1 {
		t.Fatalf("pipeline counters empty over the wire: forces=%d appends=%d",
			st.DeviceForces, st.LogAppends)
	}
	if st.BytesWritten < int64(len("pipeline")) {
		t.Fatalf("BytesWritten=%d did not survive gob transport", st.BytesWritten)
	}
}

func TestAuthRejectsBadKey(t *testing.T) {
	addr, _ := startServer(t)
	if _, err := Dial(addr, 1, 100, []byte("wrong key"), false); !errors.Is(err, types.ErrAuthFailed) {
		t.Fatalf("bad key: %v", err)
	}
	if _, err := Dial(addr, 2, 100, clientKey, false); !errors.Is(err, types.ErrAuthFailed) {
		t.Fatalf("unknown client: %v", err)
	}
	if _, err := Dial(addr, 1, 0, clientKey, true); !errors.Is(err, types.ErrAuthFailed) {
		t.Fatalf("client key must not open an admin session: %v", err)
	}
}

func TestAdminCommandsNeedAdminSession(t *testing.T) {
	addr, _ := startServer(t)
	c := dialUser(t, addr, 100)
	if err := c.SetWindow(time.Minute); !errors.Is(err, types.ErrAdminOnly) {
		t.Fatalf("setwindow on client session: %v", err)
	}
	if _, err := c.AuditRead(0, 10); !errors.Is(err, types.ErrAdminOnly) {
		t.Fatalf("auditread on client session: %v", err)
	}
	adminC, err := Dial(addr, 0, types.AdminUser, adminKey, true)
	if err != nil {
		t.Fatal(err)
	}
	defer adminC.Close()
	if err := adminC.SetWindow(time.Minute); err != nil {
		t.Fatal(err)
	}
	recs, err := adminC.AuditRead(0, 100)
	if err != nil || len(recs) == 0 {
		t.Fatalf("admin audit read: %d records, %v", len(recs), err)
	}
}

func TestHistoryOverWire(t *testing.T) {
	addr, drv := startServer(t)
	c := dialUser(t, addr, 100)
	id, err := c.Create(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(id, 0, []byte("first version")); err != nil {
		t.Fatal(err)
	}
	tV1 := drv.Now()
	time.Sleep(2 * time.Millisecond)
	if err := c.Write(id, 0, []byte("SECOND vers.")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(id, 0, 64, tV1)
	if err != nil || string(got) != "first version" {
		t.Fatalf("time-based read over wire: %q %v", got, err)
	}
	vs, err := c.ListVersions(id, 0)
	if err != nil || len(vs) < 3 {
		t.Fatalf("versions: %d %v", len(vs), err)
	}
	if err := c.Revert(id, tV1); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Read(id, 0, 64, types.TimeNowest)
	if string(got) != "first version" {
		t.Fatalf("after revert: %q", got)
	}
}

func TestPartitionsOverWire(t *testing.T) {
	addr, _ := startServer(t)
	c := dialUser(t, addr, 100)
	id, _ := c.Create(nil, nil)
	if err := c.PCreate("export", id); err != nil {
		t.Fatal(err)
	}
	got, err := c.PMount("export", types.TimeNowest)
	if err != nil || got != id {
		t.Fatal(got, err)
	}
	ps, err := c.PList(types.TimeNowest)
	if err != nil || len(ps) != 1 {
		t.Fatal(ps, err)
	}
	if err := c.PDelete("export"); err != nil {
		t.Fatal(err)
	}
}

func TestBatching(t *testing.T) {
	addr, _ := startServer(t)
	c := dialUser(t, addr, 100)
	id, _ := c.Create(nil, nil)
	// Write + setattr + sync in one round trip (§4.1.2).
	resps, err := c.Batch([]Request{
		{Op: types.OpWrite, Obj: id, Offset: 0, Data: []byte("batched")},
		{Op: types.OpSetAttr, Obj: id, Attr: []byte("meta")},
		{Op: types.OpSync},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("%d sub-responses", len(resps))
	}
	for i, r := range resps {
		if r.Err() != nil {
			t.Fatalf("sub-op %d: %v", i, r.Err())
		}
	}
	got, _ := c.Read(id, 0, 16, types.TimeNowest)
	if string(got) != "batched" {
		t.Fatalf("batch result: %q", got)
	}
}

func TestPerRequestUserCannotEscalate(t *testing.T) {
	addr, _ := startServer(t)
	alice := dialUser(t, addr, 100)
	id, err := alice.Create(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A different user on the same client session is denied by ACL.
	resp, err := alice.Call(&Request{Op: types.OpRead, Obj: id, Length: 4, At: types.TimeNowest, User: 999})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err(), types.ErrPerm) {
		t.Fatalf("user 999 read: %v", resp.Err())
	}
}

// TestTable1Coverage pins the protocol to the paper's RPC list: every
// Table 1 operation must be dispatchable.
func TestTable1Coverage(t *testing.T) {
	table1 := []types.Op{
		types.OpCreate, types.OpDelete, types.OpRead, types.OpWrite,
		types.OpAppend, types.OpTruncate, types.OpGetAttr, types.OpSetAttr,
		types.OpGetACLByUser, types.OpGetACLByIndex, types.OpSetACL,
		types.OpPCreate, types.OpPDelete, types.OpPList, types.OpPMount,
		types.OpSync, types.OpFlush, types.OpFlushO, types.OpSetWindow,
	}
	addr, _ := startServer(t)
	admin, err := Dial(addr, 0, types.AdminUser, adminKey, true)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	for _, op := range table1 {
		req := &Request{Op: op, At: types.TimeNowest, Length: 1, Name: "t1", Data: []byte("x"), ACL: []types.ACLEntry{{}}}
		resp, err := admin.Call(req)
		if err != nil {
			t.Fatalf("%v: transport error %v", op, err)
		}
		if errors.Is(resp.Err(), types.ErrUnimplProto) {
			t.Fatalf("Table 1 op %v is not implemented", op)
		}
	}
	// Time-based column: ops the paper marks time-based accept At.
	for _, op := range table1 {
		if op.TimeBased() {
			if op != types.OpRead && op != types.OpGetAttr &&
				op != types.OpGetACLByUser && op != types.OpGetACLByIndex &&
				op != types.OpPList && op != types.OpPMount {
				t.Fatalf("unexpected time-based op %v", op)
			}
		}
	}
}

// TestRestartStatsOverWire reopens a checkpointed drive and confirms
// the restart observability counters — segment-index loads, replay
// entries, open duration — survive the gob transport intact. A client
// watching s4ctl stats is how an operator verifies instant restart
// actually engaged, so the wire must not flatten these fields.
func TestRestartStatsOverWire(t *testing.T) {
	dev := disk.New(disk.SmallDisk(64<<20), nil)
	opts := core.Options{Clock: vclock.Wall{}, SegBlocks: 16, CheckpointBlocks: 16, Window: time.Hour}
	drv, err := core.Format(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	cred := types.Cred{User: 100, Client: 1}
	acl := []types.ACLEntry{{User: types.EveryoneID, Perm: types.PermAll}}
	id, err := drv.Create(cred, acl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := drv.Write(cred, id, uint64(i)*512, []byte("restart stats payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := drv.Close(); err != nil { // checkpoints: persists the segment index
		t.Fatal(err)
	}

	drv, err = core.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	keys := NewKeyring(adminKey)
	keys.AddClient(1, clientKey)
	srv := NewServer(drv, keys)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = drv.Close()
	})

	c := dialUser(t, ln.Addr().String(), 100)
	st, err := c.DriveStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexLoads != 1 {
		t.Fatalf("clean reopen did not anchor at the segment index: loads=%d fallbacks=%d",
			st.IndexLoads, st.IndexFallbacks)
	}
	if st.IndexFallbacks != 0 {
		t.Fatalf("clean reopen fell back to full scan %d times", st.IndexFallbacks)
	}
	if st.OpenDuration <= 0 {
		t.Fatalf("OpenDuration=%v did not survive gob transport", st.OpenDuration)
	}
	if st.RecoveryReplayEntries < 0 {
		t.Fatalf("RecoveryReplayEntries=%d negative over the wire", st.RecoveryReplayEntries)
	}
}
