package s4rpc

import (
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"s4/internal/audit"
	"s4/internal/core"
	"s4/internal/types"
)

// Config tunes a resilient client connection. The zero value of every
// tuning field selects a sensible default; Addr, Client/User and Key
// identify the session as in Dial.
type Config struct {
	Addr   string
	Client types.ClientID
	User   types.UserID
	Key    []byte
	Admin  bool

	// DialTimeout bounds one connect + handshake attempt.
	DialTimeout time.Duration
	// CallTimeout bounds one request/reply exchange; a reply that does
	// not arrive within it is treated as lost and the call is retried
	// on a fresh connection (duplicate-safe: see proto.go).
	CallTimeout time.Duration
	// MaxAttempts bounds the attempts per Call, counting the first;
	// 1 disables retries. Zero selects the default (10).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between attempts. A server-supplied retry-after hint (ErrBusy,
	// ErrThrottled) overrides a shorter backoff.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (c *Config) fill() {
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 10
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
}

// Stats counts the client's resilience events.
type Stats struct {
	// Retries counts transport-level retries: the connection died or
	// the reply was lost, and the same request ID was retransmitted.
	Retries uint64
	// Reconnects counts successful re-handshakes after a broken
	// connection.
	Reconnects uint64
	// BusyWaits and ThrottleWaits count retryable server rejections
	// honored with a wait (each re-issued as a new request).
	BusyWaits     uint64
	ThrottleWaits uint64
}

// Client is an authenticated connection to an S4 drive. Methods mirror
// Table 1; they are safe for concurrent use (requests serialize on the
// session, like the single command stream of a disk).
//
// The client is resilient: calls carry per-session monotonic request
// IDs, and on a broken connection or lost reply it reconnects,
// re-handshakes with the same session ID, and retransmits — the
// server's duplicate-reply cache guarantees the retried command
// executes at most once (see proto.go). Retryable rejections (ErrBusy,
// ErrThrottled) are re-issued as new requests after the server's
// suggested wait. Close promptly unblocks any pending call with
// types.ErrClosed.
type Client struct {
	cfg     Config
	session uint64

	callMu sync.Mutex // serializes calls: one in-flight request per session
	nextID uint64     // guarded by callMu
	rng    *mrand.Rand

	mu       sync.Mutex // guards conn and closed; never held across I/O
	conn     net.Conn
	closed   bool
	closedCh chan struct{}

	retries, reconnects, busyWaits, throttleWaits atomic.Uint64
}

// errNoConn marks an attempt made while disconnected; the retry loop
// redials before the next attempt.
var errNoConn = errors.New("s4rpc: not connected")

// Dial connects and authenticates with default resilience settings.
// For an administrative session pass admin=true and the drive's
// administrator key.
func Dial(addr string, client types.ClientID, user types.UserID, key []byte, admin bool) (*Client, error) {
	return DialConfig(Config{Addr: addr, Client: client, User: user, Key: key, Admin: admin})
}

// DialConfig connects and authenticates with explicit resilience
// settings. Authentication failure is permanent and never retried.
func DialConfig(cfg Config) (*Client, error) {
	cfg.fill()
	var sb [8]byte
	if _, err := rand.Read(sb[:]); err != nil {
		return nil, err
	}
	session := binary.LittleEndian.Uint64(sb[:]) | 1 // nonzero
	c := &Client{
		cfg: cfg, session: session, nextID: 1,
		rng:      mrand.New(mrand.NewSource(int64(session))),
		closedCh: make(chan struct{}),
	}
	conn, err := c.handshake()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// handshake dials and authenticates one connection, presenting the
// client's persistent session ID so the server resumes its
// duplicate-reply cache.
func (c *Client) handshake() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if c.cfg.DialTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	}
	nonce, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	mac := hmac.New(sha256.New, c.cfg.Key)
	mac.Write(nonce)
	hello := &Hello{
		Client: c.cfg.Client, User: c.cfg.User, MAC: mac.Sum(nil),
		Admin: c.cfg.Admin, Session: c.session,
	}
	if err := writeGobFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	var rep HelloReply
	if err := readGobFrame(conn, &rep); err != nil {
		conn.Close()
		return nil, err
	}
	if !rep.OK {
		conn.Close()
		reason := core.ErrnoToError(rep.Errno)
		if reason == nil {
			reason = types.ErrAuthFailed
		}
		return nil, fmt.Errorf("s4rpc: handshake rejected: %w", reason)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, nil
}

// Close drops the session. A call blocked on the wire is promptly
// unblocked and returns types.ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Stats returns a snapshot of the client's resilience counters.
func (c *Client) Stats() Stats {
	return Stats{
		Retries:       c.retries.Load(),
		Reconnects:    c.reconnects.Load(),
		BusyWaits:     c.busyWaits.Load(),
		ThrottleWaits: c.throttleWaits.Load(),
	}
}

// Call issues one raw request (exported so tools can compose batches),
// retrying across reconnects until it gets a definitive answer or runs
// out of attempts.
func (c *Client) Call(req *Request) (*Response, error) {
	return c.CallContext(context.Background(), req)
}

// CallContext is Call with a caller-controlled deadline/cancellation.
func (c *Client) CallContext(ctx context.Context, req *Request) (*Response, error) {
	c.callMu.Lock()
	defer c.callMu.Unlock()
	// Shallow copy so retries can renumber without mutating the
	// caller's struct.
	r := *req
	r.ID = c.nextID
	c.nextID++
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := c.attempt(ctx, &r)
		if err == nil {
			if attempt >= c.cfg.MaxAttempts || c.cfg.MaxAttempts == 1 {
				return resp, nil
			}
			var wait time.Duration
			switch resp.Errno {
			case wireErrno(types.ErrBusy):
				c.busyWaits.Add(1)
			case wireErrno(types.ErrThrottled):
				c.throttleWaits.Add(1)
			default:
				return resp, nil
			}
			wait = c.backoff(attempt, resp.RetryAfter)
			if c.sleep(ctx, wait) != nil {
				return resp, nil
			}
			// A retryable rejection is a definitive answer to THIS
			// request (it did not execute, or was refused with a
			// penalty); the retry is a new request with a new ID.
			r.ID = c.nextID
			c.nextID++
			continue
		}
		// Transport failure: connection broken or reply lost. The
		// request keeps its ID — if it executed and only the reply was
		// lost, the server answers the retransmission from its
		// duplicate-reply cache instead of executing twice.
		lastErr = err
		if c.isClosed() {
			return nil, types.ErrClosed
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt >= c.cfg.MaxAttempts {
			return nil, lastErr
		}
		c.retries.Add(1)
		if err := c.redial(ctx, attempt); err != nil {
			if errors.Is(err, types.ErrClosed) || errors.Is(err, types.ErrAuthFailed) {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err // keep attempting: next loop redials again
		}
	}
}

// attempt performs one request/reply exchange on the current
// connection. Any failure poisons the connection (it is closed and
// dropped) so the retry loop re-handshakes.
func (c *Client) attempt(ctx context.Context, r *Request) (*Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, types.ErrClosed
	}
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		return nil, errNoConn
	}
	var deadline time.Time
	if c.cfg.CallTimeout > 0 {
		deadline = time.Now().Add(c.cfg.CallTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	fail := func(err error) (*Response, error) {
		c.dropConn(conn)
		return nil, err
	}
	if err := writeGobFrame(conn, r); err != nil {
		return fail(err)
	}
	var resp Response
	if err := readGobFrame(conn, &resp); err != nil {
		return fail(err)
	}
	if resp.ID != 0 && resp.ID != r.ID {
		// Desynchronized reply stream — e.g. a stale reply surfacing
		// after a partial failure. The connection cannot be trusted.
		return fail(fmt.Errorf("s4rpc: reply for request %d on request %d: %w",
			resp.ID, r.ID, types.ErrBadHandle))
	}
	_ = conn.SetDeadline(time.Time{})
	return &resp, nil
}

// dropConn closes conn and clears it from the client if still current.
func (c *Client) dropConn(conn net.Conn) {
	_ = conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
}

// redial waits out the backoff and establishes a fresh authenticated
// connection for the same session.
func (c *Client) redial(ctx context.Context, attempt int) error {
	if err := c.sleep(ctx, c.backoff(attempt, 0)); err != nil {
		return err
	}
	conn, err := c.handshake()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return types.ErrClosed
	}
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	c.mu.Unlock()
	c.reconnects.Add(1)
	return nil
}

// backoff computes the jittered exponential wait before attempt+1,
// honoring a server-supplied retry-after hint when it is longer.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	base := c.cfg.BackoffBase << uint(attempt-1)
	if base > c.cfg.BackoffMax || base <= 0 {
		base = c.cfg.BackoffMax
	}
	d := base/2 + time.Duration(c.rng.Int63n(int64(base)))
	if hint > d {
		d = hint
	}
	return d
}

// sleep waits for d, aborting on context cancellation or Close.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.closedCh:
		return types.ErrClosed
	}
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Client) call1(req *Request) (*Response, error) {
	resp, err := c.Call(req)
	if err != nil {
		return nil, err
	}
	if e := resp.Err(); e != nil {
		return resp, e
	}
	return resp, nil
}

// Create makes an object (Table 1).
func (c *Client) Create(acl []types.ACLEntry, attr []byte) (types.ObjectID, error) {
	resp, err := c.call1(&Request{Op: types.OpCreate, ACL: acl, Attr: attr})
	if err != nil {
		return 0, err
	}
	return resp.Obj, nil
}

// CreateWithID makes an object under a caller-chosen ID (the shard
// router's create path: the ring owns allocation). The drive refuses
// reserved IDs and IDs it has ever seen.
func (c *Client) CreateWithID(id types.ObjectID, acl []types.ACLEntry, attr []byte) error {
	_, err := c.call1(&Request{Op: types.OpCreate, Obj: id, ACL: acl, Attr: attr})
	return err
}

// Delete removes an object; its versions stay in the history pool.
func (c *Client) Delete(obj types.ObjectID) error {
	_, err := c.call1(&Request{Op: types.OpDelete, Obj: obj})
	return err
}

// Read returns up to n bytes at off of the version current at `at`.
func (c *Client) Read(obj types.ObjectID, off, n uint64, at types.Timestamp) ([]byte, error) {
	resp, err := c.call1(&Request{Op: types.OpRead, Obj: obj, Offset: off, Length: n, At: at})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Write stores data at off.
func (c *Client) Write(obj types.ObjectID, off uint64, data []byte) error {
	_, err := c.call1(&Request{Op: types.OpWrite, Obj: obj, Offset: off, Data: data})
	return err
}

// Append writes at the object's end, returning the landing offset.
func (c *Client) Append(obj types.ObjectID, data []byte) (uint64, error) {
	resp, err := c.call1(&Request{Op: types.OpAppend, Obj: obj, Data: data})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Truncate sets the object's length.
func (c *Client) Truncate(obj types.ObjectID, size uint64) error {
	_, err := c.call1(&Request{Op: types.OpTruncate, Obj: obj, Length: size})
	return err
}

// GetAttr fetches attributes as of `at`.
func (c *Client) GetAttr(obj types.ObjectID, at types.Timestamp) (core.AttrInfo, error) {
	resp, err := c.call1(&Request{Op: types.OpGetAttr, Obj: obj, At: at})
	if err != nil {
		return core.AttrInfo{}, err
	}
	return resp.Attr, nil
}

// SetAttr replaces the opaque attribute blob.
func (c *Client) SetAttr(obj types.ObjectID, attr []byte) error {
	_, err := c.call1(&Request{Op: types.OpSetAttr, Obj: obj, Attr: attr})
	return err
}

// GetACLByUser returns the effective entry for user as of `at`.
func (c *Client) GetACLByUser(obj types.ObjectID, user types.UserID, at types.Timestamp) (types.ACLEntry, error) {
	resp, err := c.call1(&Request{Op: types.OpGetACLByUser, Obj: obj, Offset: uint64(user), At: at})
	if err != nil {
		return types.ACLEntry{}, err
	}
	return resp.ACL, nil
}

// GetACLByIndex returns ACL slot idx as of `at`.
func (c *Client) GetACLByIndex(obj types.ObjectID, idx int, at types.Timestamp) (types.ACLEntry, error) {
	resp, err := c.call1(&Request{Op: types.OpGetACLByIndex, Obj: obj, ACLIdx: idx, At: at})
	if err != nil {
		return types.ACLEntry{}, err
	}
	return resp.ACL, nil
}

// SetACL replaces ACL slot idx.
func (c *Client) SetACL(obj types.ObjectID, idx int, e types.ACLEntry) error {
	_, err := c.call1(&Request{Op: types.OpSetACL, Obj: obj, ACLIdx: idx, ACL: []types.ACLEntry{e}})
	return err
}

// PCreate binds name to obj.
func (c *Client) PCreate(name string, obj types.ObjectID) error {
	_, err := c.call1(&Request{Op: types.OpPCreate, Name: name, Obj: obj})
	return err
}

// PDelete removes a name binding.
func (c *Client) PDelete(name string) error {
	_, err := c.call1(&Request{Op: types.OpPDelete, Name: name})
	return err
}

// PList lists partitions as of `at`.
func (c *Client) PList(at types.Timestamp) ([]core.PartEntry, error) {
	resp, err := c.call1(&Request{Op: types.OpPList, At: at})
	if err != nil {
		return nil, err
	}
	return resp.Parts, nil
}

// PMount resolves a partition name as of `at`.
func (c *Client) PMount(name string, at types.Timestamp) (types.ObjectID, error) {
	resp, err := c.call1(&Request{Op: types.OpPMount, Name: name, At: at})
	if err != nil {
		return 0, err
	}
	return resp.Obj, nil
}

// Sync forces all acknowledged modifications durable.
func (c *Client) Sync() error {
	_, err := c.call1(&Request{Op: types.OpSync})
	return err
}

// SyncObj forces the caller's acknowledged writes to one object
// durable. Through a shard router this touches only the shard holding
// obj, unlike Sync which broadcasts to every shard.
func (c *Client) SyncObj(obj types.ObjectID) error {
	_, err := c.call1(&Request{Op: types.OpSync, Obj: obj})
	return err
}

// SetWindow adjusts the detection window (admin session).
func (c *Client) SetWindow(w time.Duration) error {
	_, err := c.call1(&Request{Op: types.OpSetWindow, Window: w})
	return err
}

// SetPolicy installs the retention policy for obj (admin session);
// obj 0 sets the drive-wide default, the zero policy clears an entry.
func (c *Client) SetPolicy(obj types.ObjectID, p types.Policy) error {
	_, err := c.call1(&Request{Op: types.OpSetPolicy, Obj: obj, Policy: p})
	return err
}

// GetPolicy returns the retention policy in force for obj and whether
// the object carries its own entry (false = inherited default). obj 0
// asks for the drive default itself.
func (c *Client) GetPolicy(obj types.ObjectID) (types.Policy, bool, error) {
	resp, err := c.call1(&Request{Op: types.OpGetPolicy, Obj: obj})
	if err != nil {
		return types.Policy{}, false, err
	}
	return resp.Policy, resp.PolicyOwn, nil
}

// Flush erases all objects' versions in (from, to] (admin session).
func (c *Client) Flush(from, to types.Timestamp) error {
	_, err := c.call1(&Request{Op: types.OpFlush, From: from, To: to})
	return err
}

// FlushO erases one object's versions in (from, to] (admin session).
func (c *Client) FlushO(obj types.ObjectID, from, to types.Timestamp) error {
	_, err := c.call1(&Request{Op: types.OpFlushO, Obj: obj, From: from, To: to})
	return err
}

// ListVersions returns an object's retained history, newest first.
func (c *Client) ListVersions(obj types.ObjectID, max int) ([]core.VersionInfo, error) {
	resp, err := c.call1(&Request{Op: types.OpListVersions, Obj: obj, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Versions, nil
}

// Revert copies the version at `at` forward as the new current version.
func (c *Client) Revert(obj types.ObjectID, at types.Timestamp) error {
	_, err := c.call1(&Request{Op: types.OpRevert, Obj: obj, At: at})
	return err
}

// AuditRead returns audit records from seq on (admin session).
func (c *Client) AuditRead(fromSeq uint64, max int) ([]audit.Record, error) {
	resp, err := c.call1(&Request{Op: types.OpAuditRead, Seq: fromSeq, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// Status reports drive occupancy and health.
func (c *Client) Status() (core.StatusInfo, error) {
	resp, err := c.call1(&Request{Op: types.OpStatus})
	if err != nil {
		return core.StatusInfo{}, err
	}
	return resp.Status, nil
}

// DriveStats reads the commit-pipeline and cache counters.
func (c *Client) DriveStats() (core.Stats, error) {
	resp, err := c.call1(&Request{Op: types.OpStats})
	if err != nil {
		return core.Stats{}, err
	}
	return resp.Stats, nil
}

// ShardStats reads the activity counters plus, when the peer is a
// shard router or gate, the per-shard breakdown (empty for a single
// drive).
func (c *Client) ShardStats() (core.Stats, []core.Stats, error) {
	resp, err := c.call1(&Request{Op: types.OpStats})
	if err != nil {
		return core.Stats{}, nil, err
	}
	return resp.Stats, resp.ShardStats, nil
}

// Scrub triggers an on-demand integrity sweep (admin): every sealed
// segment is read back and verified against its summary checksums.
func (c *Client) Scrub() (core.ScrubResult, error) {
	resp, err := c.call1(&Request{Op: types.OpScrub})
	if err != nil {
		return core.ScrubResult{}, err
	}
	return resp.Scrub, nil
}

// Batch executes several requests in one round trip (§4.1.2).
func (c *Client) Batch(reqs []Request) ([]Response, error) {
	resp, err := c.Call(&Request{Op: types.OpBatch, Batch: reqs})
	if err != nil {
		return nil, err
	}
	return resp.Batch, nil
}
