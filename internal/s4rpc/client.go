package s4rpc

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"net"
	"sync"
	"time"

	"s4/internal/audit"
	"s4/internal/core"
	"s4/internal/types"
)

// Client is an authenticated connection to an S4 drive. Methods mirror
// Table 1; they are safe for concurrent use (requests serialize on the
// connection, like the single command stream of a disk).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects and authenticates. For an administrative session pass
// admin=true and the drive's administrator key.
func Dial(addr string, client types.ClientID, user types.UserID, key []byte, admin bool) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	nonce, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(nonce)
	hello := &Hello{Client: client, User: user, MAC: mac.Sum(nil), Admin: admin}
	if err := writeGobFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	var rep HelloReply
	if err := readGobFrame(conn, &rep); err != nil {
		conn.Close()
		return nil, err
	}
	if !rep.OK {
		conn.Close()
		return nil, fmt.Errorf("s4rpc: handshake rejected: %w", types.ErrAuthFailed)
	}
	return &Client{conn: conn}, nil
}

// Close drops the session.
func (c *Client) Close() error { return c.conn.Close() }

// Call issues one raw request (exported so tools can compose batches).
func (c *Client) Call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeGobFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readGobFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) call1(req *Request) (*Response, error) {
	resp, err := c.Call(req)
	if err != nil {
		return nil, err
	}
	if e := resp.Err(); e != nil {
		return resp, e
	}
	return resp, nil
}

// Create makes an object (Table 1).
func (c *Client) Create(acl []types.ACLEntry, attr []byte) (types.ObjectID, error) {
	resp, err := c.call1(&Request{Op: types.OpCreate, ACL: acl, Attr: attr})
	if err != nil {
		return 0, err
	}
	return resp.Obj, nil
}

// Delete removes an object; its versions stay in the history pool.
func (c *Client) Delete(obj types.ObjectID) error {
	_, err := c.call1(&Request{Op: types.OpDelete, Obj: obj})
	return err
}

// Read returns up to n bytes at off of the version current at `at`.
func (c *Client) Read(obj types.ObjectID, off, n uint64, at types.Timestamp) ([]byte, error) {
	resp, err := c.call1(&Request{Op: types.OpRead, Obj: obj, Offset: off, Length: n, At: at})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Write stores data at off.
func (c *Client) Write(obj types.ObjectID, off uint64, data []byte) error {
	_, err := c.call1(&Request{Op: types.OpWrite, Obj: obj, Offset: off, Data: data})
	return err
}

// Append writes at the object's end, returning the landing offset.
func (c *Client) Append(obj types.ObjectID, data []byte) (uint64, error) {
	resp, err := c.call1(&Request{Op: types.OpAppend, Obj: obj, Data: data})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Truncate sets the object's length.
func (c *Client) Truncate(obj types.ObjectID, size uint64) error {
	_, err := c.call1(&Request{Op: types.OpTruncate, Obj: obj, Length: size})
	return err
}

// GetAttr fetches attributes as of `at`.
func (c *Client) GetAttr(obj types.ObjectID, at types.Timestamp) (core.AttrInfo, error) {
	resp, err := c.call1(&Request{Op: types.OpGetAttr, Obj: obj, At: at})
	if err != nil {
		return core.AttrInfo{}, err
	}
	return resp.Attr, nil
}

// SetAttr replaces the opaque attribute blob.
func (c *Client) SetAttr(obj types.ObjectID, attr []byte) error {
	_, err := c.call1(&Request{Op: types.OpSetAttr, Obj: obj, Attr: attr})
	return err
}

// GetACLByUser returns the effective entry for user as of `at`.
func (c *Client) GetACLByUser(obj types.ObjectID, user types.UserID, at types.Timestamp) (types.ACLEntry, error) {
	resp, err := c.call1(&Request{Op: types.OpGetACLByUser, Obj: obj, Offset: uint64(user), At: at})
	if err != nil {
		return types.ACLEntry{}, err
	}
	return resp.ACL, nil
}

// GetACLByIndex returns ACL slot idx as of `at`.
func (c *Client) GetACLByIndex(obj types.ObjectID, idx int, at types.Timestamp) (types.ACLEntry, error) {
	resp, err := c.call1(&Request{Op: types.OpGetACLByIndex, Obj: obj, ACLIdx: idx, At: at})
	if err != nil {
		return types.ACLEntry{}, err
	}
	return resp.ACL, nil
}

// SetACL replaces ACL slot idx.
func (c *Client) SetACL(obj types.ObjectID, idx int, e types.ACLEntry) error {
	_, err := c.call1(&Request{Op: types.OpSetACL, Obj: obj, ACLIdx: idx, ACL: []types.ACLEntry{e}})
	return err
}

// PCreate binds name to obj.
func (c *Client) PCreate(name string, obj types.ObjectID) error {
	_, err := c.call1(&Request{Op: types.OpPCreate, Name: name, Obj: obj})
	return err
}

// PDelete removes a name binding.
func (c *Client) PDelete(name string) error {
	_, err := c.call1(&Request{Op: types.OpPDelete, Name: name})
	return err
}

// PList lists partitions as of `at`.
func (c *Client) PList(at types.Timestamp) ([]core.PartEntry, error) {
	resp, err := c.call1(&Request{Op: types.OpPList, At: at})
	if err != nil {
		return nil, err
	}
	return resp.Parts, nil
}

// PMount resolves a partition name as of `at`.
func (c *Client) PMount(name string, at types.Timestamp) (types.ObjectID, error) {
	resp, err := c.call1(&Request{Op: types.OpPMount, Name: name, At: at})
	if err != nil {
		return 0, err
	}
	return resp.Obj, nil
}

// Sync forces all acknowledged modifications durable.
func (c *Client) Sync() error {
	_, err := c.call1(&Request{Op: types.OpSync})
	return err
}

// SetWindow adjusts the detection window (admin session).
func (c *Client) SetWindow(w time.Duration) error {
	_, err := c.call1(&Request{Op: types.OpSetWindow, Window: w})
	return err
}

// Flush erases all objects' versions in (from, to] (admin session).
func (c *Client) Flush(from, to types.Timestamp) error {
	_, err := c.call1(&Request{Op: types.OpFlush, From: from, To: to})
	return err
}

// FlushO erases one object's versions in (from, to] (admin session).
func (c *Client) FlushO(obj types.ObjectID, from, to types.Timestamp) error {
	_, err := c.call1(&Request{Op: types.OpFlushO, Obj: obj, From: from, To: to})
	return err
}

// ListVersions returns an object's retained history, newest first.
func (c *Client) ListVersions(obj types.ObjectID, max int) ([]core.VersionInfo, error) {
	resp, err := c.call1(&Request{Op: types.OpListVersions, Obj: obj, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Versions, nil
}

// Revert copies the version at `at` forward as the new current version.
func (c *Client) Revert(obj types.ObjectID, at types.Timestamp) error {
	_, err := c.call1(&Request{Op: types.OpRevert, Obj: obj, At: at})
	return err
}

// AuditRead returns audit records from seq on (admin session).
func (c *Client) AuditRead(fromSeq uint64, max int) ([]audit.Record, error) {
	resp, err := c.call1(&Request{Op: types.OpAuditRead, Seq: fromSeq, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// Status reports drive occupancy and health.
func (c *Client) Status() (core.StatusInfo, error) {
	resp, err := c.call1(&Request{Op: types.OpStatus})
	if err != nil {
		return core.StatusInfo{}, err
	}
	return resp.Status, nil
}

// Batch executes several requests in one round trip (§4.1.2).
func (c *Client) Batch(reqs []Request) ([]Response, error) {
	resp, err := c.Call(&Request{Op: types.OpBatch, Batch: reqs})
	if err != nil {
		return nil, err
	}
	return resp.Batch, nil
}
