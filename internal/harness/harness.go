// Package harness assembles the paper's four server configurations over
// the simulated testbed and runs the evaluation workloads against them,
// reproducing each figure of OSDI '00 §5.
//
// Configurations (§5.1.1):
//
//	s4-objstore  S4 drive, network-attached; the S4 client translator
//	             runs on the client host (Fig. 1a), so each NFS-level
//	             operation costs extra client↔drive RPCs.
//	s4-nfs       S4-enhanced NFS server: translator fused with the
//	             drive (Fig. 1b); one network round trip per NFS op.
//	bsd-ffs      FreeBSD-like NFS server on FFS with synchronous
//	             metadata.
//	linux-ext2   Linux-like NFS server on ext2 mounted "sync" (with its
//	             incomplete sync behavior).
//
// All four run on the same simulated Cheetah-class disk and a shared
// virtual clock; the network is modeled as per-RPC latency plus a
// 100Mb/s payload term. Reported times are virtual seconds.
package harness

import (
	"fmt"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/fsys"
	"s4/internal/s4fs"
	"s4/internal/types"
	"s4/internal/ufs"
	"s4/internal/vclock"
)

// SystemKind names a server configuration.
type SystemKind string

// The four systems of Figs. 3 and 4.
const (
	S4ObjStore SystemKind = "s4-objstore"
	S4NFS      SystemKind = "s4-nfs"
	BSDFFS     SystemKind = "bsd-ffs"
	LinuxExt2  SystemKind = "linux-ext2"
)

// AllSystems lists the comparison set in presentation order.
func AllSystems() []SystemKind {
	return []SystemKind{S4ObjStore, S4NFS, BSDFFS, LinuxExt2}
}

// Config parameterizes a testbed instance.
type Config struct {
	System SystemKind
	// DiskBytes sizes the simulated disk (default 2GB, the Fig. 5
	// device class).
	DiskBytes int64
	// Window is the S4 detection window (ignored for baselines).
	Window time.Duration
	// DisableAudit turns off S4 request auditing (Fig. 6).
	DisableAudit bool
	// Conventional enables the conventional-versioning ablation
	// (Fig. 2).
	Conventional bool
	// BlockCacheBytes bounds the S4 drive cache (default 128MB, the
	// paper's setting); baselines get ServerCacheBytes (default 256MB,
	// standing in for "could grow to fill local memory").
	BlockCacheBytes  int64
	ServerCacheBytes int64
	// NoNetwork disables the RPC latency model (pure disk study).
	NoNetwork bool
}

// Instance is a runnable testbed: a file system view, its clock, and
// the underlying devices for statistics.
type Instance struct {
	Sys   SystemKind
	FS    fsys.FileSys
	Clock *vclock.Virtual
	Disk  *disk.Disk
	Drive *core.Drive // nil for baselines
}

// Elapsed returns virtual time consumed since mark.
func (in *Instance) Elapsed(mark time.Time) time.Duration {
	return in.Clock.Now().Sub(mark)
}

// New builds a testbed instance.
func New(cfg Config) (*Instance, error) {
	if cfg.DiskBytes == 0 {
		cfg.DiskBytes = 2 << 30
	}
	if cfg.Window == 0 {
		cfg.Window = 7 * 24 * time.Hour
	}
	if cfg.BlockCacheBytes == 0 {
		cfg.BlockCacheBytes = 128 << 20
	}
	if cfg.ServerCacheBytes == 0 {
		cfg.ServerCacheBytes = 256 << 20
	}
	clk := vclock.NewVirtual()
	dev := disk.New(disk.SmallDisk(cfg.DiskBytes), clk)
	inst := &Instance{Sys: cfg.System, Clock: clk, Disk: dev}

	cred := types.Cred{User: 1000, Client: 1}
	switch cfg.System {
	case S4ObjStore, S4NFS:
		drv, err := core.Format(dev, core.Options{
			Clock:            clk,
			Window:           cfg.Window,
			BlockCacheBytes:  cfg.BlockCacheBytes,
			ObjectCacheCount: 8192,
			DisableAudit:     cfg.DisableAudit,
			Conventional:     cfg.Conventional,
		})
		if err != nil {
			return nil, err
		}
		fs, err := s4fs.Mkfs(drv, s4fs.Options{Cred: cred, SyncEachOp: true})
		if err != nil {
			return nil, err
		}
		inst.Drive = drv
		inst.FS = fs
	case BSDFFS:
		fs, err := ufs.Mkfs(dev, ufs.Options{Policy: ufs.FFSSync, Clock: clk, CacheBytes: cfg.ServerCacheBytes})
		if err != nil {
			return nil, err
		}
		inst.FS = fs
	case LinuxExt2:
		fs, err := ufs.Mkfs(dev, ufs.Options{Policy: ufs.Ext2Sync, Clock: clk, CacheBytes: cfg.ServerCacheBytes})
		if err != nil {
			return nil, err
		}
		inst.FS = fs
	default:
		return nil, fmt.Errorf("harness: unknown system %q", cfg.System)
	}
	if !cfg.NoNetwork {
		inst.FS = wrapNet(inst.FS, clk, cfg.System)
	}
	return inst, nil
}

// Network model: a switched 100Mb/s LAN (§5.1.1). Each NFS operation
// costs one request/reply round trip; payload bytes add wire time. The
// s4-objstore configuration (translator on the client host) issues
// extra drive RPCs per NFS operation — attribute fetches, directory
// updates, and the explicit per-op Sync (§4.1.2) — modeled as an RPC
// multiplier.
const (
	rpcLatency  = 150 * time.Microsecond // switch + stacks round trip
	wireBytesNs = 80                     // ns per byte ≈ 100Mb/s
)

type netFS struct {
	inner fsys.FileSys
	clk   *vclock.Virtual
	mult  int // RPC round trips per operation
}

func wrapNet(inner fsys.FileSys, clk *vclock.Virtual, sys SystemKind) fsys.FileSys {
	mult := 1
	if sys == S4ObjStore {
		mult = 3 // NFS request + translated drive RPCs + sync
	}
	return &netFS{inner: inner, clk: clk, mult: mult}
}

func (n *netFS) charge(payload int) {
	d := time.Duration(n.mult)*rpcLatency + time.Duration(payload*wireBytesNs)*time.Nanosecond
	n.clk.Advance(d)
}

// Root returns the root handle (no RPC: cached mount result).
func (n *netFS) Root() fsys.Handle { return n.inner.Root() }

func (n *netFS) Lookup(dir fsys.Handle, name string) (fsys.Handle, fsys.Attr, error) {
	n.charge(len(name))
	return n.inner.Lookup(dir, name)
}

func (n *netFS) GetAttr(h fsys.Handle) (fsys.Attr, error) {
	n.charge(0)
	return n.inner.GetAttr(h)
}

func (n *netFS) SetAttr(h fsys.Handle, sa fsys.SetAttr) (fsys.Attr, error) {
	n.charge(0)
	return n.inner.SetAttr(h, sa)
}

func (n *netFS) Create(dir fsys.Handle, name string, mode uint32) (fsys.Handle, fsys.Attr, error) {
	n.charge(len(name))
	return n.inner.Create(dir, name, mode)
}

func (n *netFS) Mkdir(dir fsys.Handle, name string, mode uint32) (fsys.Handle, fsys.Attr, error) {
	n.charge(len(name))
	return n.inner.Mkdir(dir, name, mode)
}

func (n *netFS) Symlink(dir fsys.Handle, name, target string) (fsys.Handle, error) {
	n.charge(len(name) + len(target))
	return n.inner.Symlink(dir, name, target)
}

func (n *netFS) ReadLink(h fsys.Handle) (string, error) {
	n.charge(0)
	return n.inner.ReadLink(h)
}

func (n *netFS) Remove(dir fsys.Handle, name string) error {
	n.charge(len(name))
	return n.inner.Remove(dir, name)
}

func (n *netFS) Rmdir(dir fsys.Handle, name string) error {
	n.charge(len(name))
	return n.inner.Rmdir(dir, name)
}

func (n *netFS) Rename(fd fsys.Handle, fn string, td fsys.Handle, tn string) error {
	n.charge(len(fn) + len(tn))
	return n.inner.Rename(fd, fn, td, tn)
}

func (n *netFS) Link(h fsys.Handle, dir fsys.Handle, name string) error {
	n.charge(len(name))
	return n.inner.Link(h, dir, name)
}

// Read charges per 4KB transfer: NFSv2 was configured with 4KB
// read/write sizes (§5.1.1), so large reads are multiple RPCs.
func (n *netFS) Read(h fsys.Handle, off uint64, nn int) ([]byte, error) {
	rpcs := (nn + 4095) / 4096
	if rpcs < 1 {
		rpcs = 1
	}
	for i := 0; i < rpcs; i++ {
		n.charge(0)
	}
	n.clk.Advance(time.Duration(nn*wireBytesNs) * time.Nanosecond)
	return n.inner.Read(h, off, nn)
}

func (n *netFS) Write(h fsys.Handle, off uint64, data []byte) error {
	rpcs := (len(data) + 4095) / 4096
	if rpcs < 1 {
		rpcs = 1
	}
	for i := 0; i < rpcs; i++ {
		n.charge(0)
	}
	n.clk.Advance(time.Duration(len(data)*wireBytesNs) * time.Nanosecond)
	return n.inner.Write(h, off, data)
}

func (n *netFS) ReadDir(dir fsys.Handle) ([]fsys.DirEntry, error) {
	n.charge(0)
	ents, err := n.inner.ReadDir(dir)
	n.clk.Advance(time.Duration(len(ents)*32*wireBytesNs) * time.Nanosecond)
	return ents, err
}

func (n *netFS) StatFS() (fsys.Stat, error) {
	n.charge(0)
	return n.inner.StatFS()
}

func (n *netFS) Sync() error {
	n.charge(0)
	return n.inner.Sync()
}
