package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"s4/internal/types"
	"s4/internal/workloads"
)

// PhaseTime is one labeled measurement.
type PhaseTime struct {
	System SystemKind
	Phase  string
	Time   time.Duration
}

// Fig3Result is the PostMark comparison (creation and transaction
// phases across the four systems).
type Fig3Result struct {
	Rows []PhaseTime
	Cfg  workloads.PostMarkConfig
}

// RunFig3 executes PostMark on every system.
func RunFig3(pm workloads.PostMarkConfig, diskBytes int64) (*Fig3Result, error) {
	res := &Fig3Result{Cfg: pm}
	for _, sys := range AllSystems() {
		inst, err := New(Config{System: sys, DiskBytes: diskBytes})
		if err != nil {
			return nil, err
		}
		p := workloads.NewPostMark(inst.FS, pm)
		mark := inst.Clock.Now()
		if err := p.CreatePhase(); err != nil {
			return nil, fmt.Errorf("%s create: %w", sys, err)
		}
		if err := inst.FS.Sync(); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PhaseTime{sys, "create", inst.Elapsed(mark)})
		mark = inst.Clock.Now()
		if err := p.TransactionPhase(); err != nil {
			return nil, fmt.Errorf("%s transactions: %w", sys, err)
		}
		if err := inst.FS.Sync(); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PhaseTime{sys, "transactions", inst.Elapsed(mark)})
		closeInst(inst)
	}
	return res, nil
}

// Fig4Result is the SSH-build comparison (unpack / configure / build).
type Fig4Result struct {
	Rows []PhaseTime
}

// RunFig4 executes SSH-build on every system.
func RunFig4(cfg workloads.SSHBuildConfig, diskBytes int64) (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, sys := range AllSystems() {
		inst, err := New(Config{System: sys, DiskBytes: diskBytes})
		if err != nil {
			return nil, err
		}
		b := workloads.NewSSHBuild(inst.FS, cfg)
		phases := []struct {
			name string
			fn   func() error
		}{
			{"unpack", b.UnpackPhase},
			{"configure", b.ConfigurePhase},
			{"build", b.BuildPhase},
		}
		for _, ph := range phases {
			mark := inst.Clock.Now()
			if err := ph.fn(); err != nil {
				return nil, fmt.Errorf("%s %s: %w", sys, ph.name, err)
			}
			if err := inst.FS.Sync(); err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, PhaseTime{sys, ph.name, inst.Elapsed(mark)})
		}
		closeInst(inst)
	}
	return res, nil
}

// Fig5Point is one utilization sample of the cleaner study.
type Fig5Point struct {
	Utilization float64 // initial-set fraction of the device
	TPSNoClean  float64 // transactions/sec, cleaner off
	TPSClean    float64 // transactions/sec, cleaner competing
}

// Fig5Result is the cleaner-overhead sweep.
type Fig5Result struct {
	Points       []Fig5Point
	Transactions int
	DiskBytes    int64
}

// RunFig5 reproduces the Fig. 5 sweep: PostMark transactions against
// initial file sets filling the given fractions of the device, once
// with cleaning relegated to idle time (its reclamation happens but its
// device time is not charged — the no-cleaning baseline) and once with
// the cleaner competing with foreground work for the same spindle. The
// detection window is set short so history ages during the run — the
// regime in which the cleaner has real work, as in the paper.
func RunFig5(utils []float64, transactions int, diskBytes int64) (*Fig5Result, error) {
	if diskBytes == 0 {
		diskBytes = 512 << 20
	}
	if transactions == 0 {
		transactions = 10000
	}
	if len(utils) == 0 {
		// 4KB-block metadata overhead makes >0.7 live utilization
		// infeasible on this substrate (the paper's sector-granular
		// drive reached 0.9); see EXPERIMENTS.md.
		utils = []float64{0.02, 0.10, 0.30, 0.50, 0.60, 0.70}
	}
	res := &Fig5Result{Transactions: transactions, DiskBytes: diskBytes}
	// The window bounds the in-flight (unreclaimable) history; headroom
	// scales with the device, so the window must too or high-utilization
	// points drown in their own churn on small test devices.
	window := time.Duration(int64(20*time.Second) * diskBytes / (512 << 20))
	if window < 5*time.Second {
		window = 5 * time.Second
	}
	// Average PostMark file costs ~1.7 data blocks plus its share of
	// directory records, journal sectors, checkpoints, and in-window
	// audit: ~11KB of device footprint each (4KB-block rounding makes
	// this fatter than the paper's; the x-axis reports the measured
	// live fraction).
	const liveFile = 11 << 10
	for _, u := range utils {
		files := int(float64(diskBytes) * u / liveFile)
		if files < 100 {
			files = 100
		}
		var tps [2]float64
		var measured float64
		for mode := 0; mode < 2; mode++ {
			inst, err := New(Config{
				System:    S4NFS,
				DiskBytes: diskBytes,
				// Short enough that history ages during the run (the
				// regime where the cleaner works); 4KB-block rounding
				// makes our in-flight history fatter than the paper's,
				// so the window is proportionally tighter.
				Window: window,
				// Keep the paper's cache:disk proportion (128MB:2GB)
				// so throughput falls as the working set outgrows the
				// cache — the Fig. 5 left-edge drop.
				BlockCacheBytes: diskBytes / 16,
			})
			if err != nil {
				return nil, err
			}
			pm := workloads.DefaultPostMark()
			pm.Files = files
			pm.Transactions = transactions
			pm.Subdirs = 10
			// During setup both modes may clean (the paper's initial
			// condition is a steady-state file set, not a disk full of
			// setup-churn history).
			pm.OpsBetweenHook = 20
			pm.Hook = func() { _, _ = inst.Drive.CleanOnce() }
			p := workloads.NewPostMark(inst.FS, pm)
			if err := p.CreatePhase(); err != nil {
				return nil, fmt.Errorf("fig5 u=%.2f create: %w", u, err)
			}
			if err := inst.FS.Sync(); err != nil {
				return nil, err
			}
			// Age the setup churn out of the window and clean to
			// quiescence so the run starts with live data only. A pass
			// visits a bounded object batch, so quiescence needs a
			// full idle round-robin cycle.
			inst.Clock.Advance(2 * window)
			idleNeeded := inst.Drive.Status().Objects/4096 + 2
			idle := 0
			for i := 0; i < 2000 && idle < idleNeeded; i++ {
				cs, err := inst.Drive.CleanOnce()
				if err != nil {
					return nil, err
				}
				if cs.BlocksAgedOut == 0 && cs.SegmentsFreed == 0 && cs.BlocksCopied == 0 {
					idle++
				} else {
					idle = 0
				}
			}
			if mode == 0 {
				// Baseline: cleaning happens in idle time — space is
				// reclaimed but no foreground device time is consumed.
				in := inst
				p.SetHook(20, func() {
					in.Disk.SetFreeIO(true)
					_, _ = in.Drive.CleanOnce()
					in.Disk.SetFreeIO(false)
				})
				st := inst.Drive.Status()
				measured = float64(st.LiveBlocks) / float64(st.TotalSegments*63)
			}
			mark := inst.Clock.Now()
			if err := p.TransactionPhase(); err != nil {
				return nil, fmt.Errorf("fig5 u=%.2f mode=%d txn: %w", u, mode, err)
			}
			if err := inst.FS.Sync(); err != nil {
				return nil, err
			}
			el := inst.Elapsed(mark).Seconds()
			if el <= 0 {
				el = 1e-9
			}
			tps[mode] = float64(transactions) / el
			closeInst(inst)
		}
		res.Points = append(res.Points, Fig5Point{Utilization: measured, TPSNoClean: tps[0], TPSClean: tps[1]})
	}
	return res, nil
}

// FundamentalCosts derives the §5.1.5 estimate from Fig. 5 data: the
// extra cleaning overhead attributable to the history pool is the
// difference of cleaning degradation at the active-set utilization vs
// the active-set-plus-history utilization.
func (r *Fig5Result) FundamentalCosts(activeU, withHistoryU float64) (atActive, atHistory, extra float64) {
	degAt := func(u float64) float64 {
		var best Fig5Point
		bd := 1e9
		for _, p := range r.Points {
			if d := abs(p.Utilization - u); d < bd {
				bd, best = d, p
			}
		}
		if best.TPSNoClean == 0 {
			return 0
		}
		return 1 - best.TPSClean/best.TPSNoClean
	}
	atActive = degAt(activeU)
	atHistory = degAt(withHistoryU)
	return atActive, atHistory, atHistory - atActive
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig6Result is the audit-overhead microbenchmark.
type Fig6Result struct {
	// Phase -> [auditOff, auditOn] times.
	Phases  []string
	Off, On map[string]time.Duration
}

// RunFig6 measures the small-file microbenchmark with auditing disabled
// and enabled.
func RunFig6(cfg workloads.MicroConfig, diskBytes int64) (*Fig6Result, error) {
	res := &Fig6Result{
		Phases: []string{"create", "read", "delete"},
		Off:    map[string]time.Duration{},
		On:     map[string]time.Duration{},
	}
	for _, audit := range []bool{false, true} {
		// A small drive cache keeps the read phase disk-bound, which is
		// where the paper's 7.2% penalty comes from: audit blocks
		// interleaved with the data dilute segment locality (§5.1.4).
		inst, err := New(Config{
			System: S4NFS, DiskBytes: diskBytes,
			DisableAudit:    !audit,
			BlockCacheBytes: 4 << 20,
		})
		if err != nil {
			return nil, err
		}
		m := workloads.NewMicro(inst.FS, cfg)
		tgt := res.Off
		if audit {
			tgt = res.On
		}
		phases := []struct {
			name string
			fn   func() error
		}{{"create", m.CreatePhase}, {"read", m.ReadPhase}, {"delete", m.DeletePhase}}
		for _, ph := range phases {
			if ph.name == "read" {
				// Cold server cache for the read phase, as in a fresh
				// benchmark run: drop what the create phase cached.
				dropCaches(inst)
			}
			mark := inst.Clock.Now()
			if err := ph.fn(); err != nil {
				return nil, fmt.Errorf("fig6 audit=%v %s: %w", audit, ph.name, err)
			}
			if err := inst.FS.Sync(); err != nil {
				return nil, err
			}
			tgt[ph.name] = inst.Elapsed(mark)
		}
		closeInst(inst)
	}
	return res, nil
}

// Penalty returns the audit slowdown per phase (fraction).
func (r *Fig6Result) Penalty(phase string) float64 {
	off := r.Off[phase]
	if off == 0 {
		return 0
	}
	return float64(r.On[phase]-r.Off[phase]) / float64(off)
}

// Fig2Result is the journal-based metadata ablation: metadata bytes
// written per 4KB update, with journal-based vs conventional
// (write-new-metadata-every-update) versioning.
type Fig2Result struct {
	Updates            int
	JournalMetaBytes   int64
	ConventionalBytes  int64
	JournalPerUpdate   float64
	ConventionalPerUpd float64
	Amplification      float64
}

// RunFig2 measures metadata write traffic for random single-block
// overwrites of a large (indirect-block-bearing) object.
func RunFig2(updates int, diskBytes int64) (*Fig2Result, error) {
	if updates == 0 {
		updates = 500
	}
	measure := func(conventional bool) (int64, error) {
		inst, err := New(Config{
			System: S4NFS, DiskBytes: diskBytes,
			Conventional: conventional, NoNetwork: true,
		})
		if err != nil {
			return 0, err
		}
		defer closeInst(inst)
		drv := inst.Drive
		cred := types.Cred{User: 1, Client: 1}
		id, err := drv.Create(cred, nil, nil)
		if err != nil {
			return 0, err
		}
		// A 2,000-block object: its map needs overflow (indirect)
		// metadata blocks, the Fig. 2 scenario.
		blob := make([]byte, types.MaxIO)
		for off := uint64(0); off < 2000*types.BlockSize; off += types.MaxIO {
			if err := drv.Write(cred, id, off, blob); err != nil {
				return 0, err
			}
		}
		if err := drv.Sync(cred); err != nil {
			return 0, err
		}
		inst.Disk.ResetStats()
		one := make([]byte, types.BlockSize)
		rnd := uint64(12345)
		dataBytes := int64(0)
		for i := 0; i < updates; i++ {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			blk := rnd % 2000
			if err := drv.Write(cred, id, blk*types.BlockSize, one); err != nil {
				return 0, err
			}
			if err := drv.Sync(cred); err != nil {
				return 0, err
			}
			dataBytes += types.BlockSize
		}
		total := inst.Disk.Stats().SectorsWrite * 512
		meta := total - dataBytes
		if meta < 0 {
			meta = 0
		}
		return meta, nil
	}
	j, err := measure(false)
	if err != nil {
		return nil, err
	}
	c, err := measure(true)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{
		Updates: updates, JournalMetaBytes: j, ConventionalBytes: c,
		JournalPerUpdate:   float64(j) / float64(updates),
		ConventionalPerUpd: float64(c) / float64(updates),
	}
	if j > 0 {
		res.Amplification = float64(c) / float64(j)
	}
	return res, nil
}

// MacroAuditResult is the §5.1.4 application-level audit penalty.
type MacroAuditResult struct {
	Off, On time.Duration
	Penalty float64
}

// RunMacroAudit measures PostMark with auditing on and off.
func RunMacroAudit(pm workloads.PostMarkConfig, diskBytes int64) (*MacroAuditResult, error) {
	var times [2]time.Duration
	for i, audit := range []bool{false, true} {
		inst, err := New(Config{System: S4NFS, DiskBytes: diskBytes, DisableAudit: !audit})
		if err != nil {
			return nil, err
		}
		p := workloads.NewPostMark(inst.FS, pm)
		mark := inst.Clock.Now()
		if err := p.CreatePhase(); err != nil {
			return nil, err
		}
		if err := p.TransactionPhase(); err != nil {
			return nil, err
		}
		if err := inst.FS.Sync(); err != nil {
			return nil, err
		}
		times[i] = inst.Elapsed(mark)
		closeInst(inst)
	}
	r := &MacroAuditResult{Off: times[0], On: times[1]}
	if times[0] > 0 {
		r.Penalty = float64(times[1]-times[0]) / float64(times[0])
	}
	return r, nil
}

func closeInst(inst *Instance) {
	if inst.Drive != nil {
		_ = inst.Drive.Close()
	}
}

func dropCaches(inst *Instance) {
	// Only meaningful for ufs (page cache) — the S4 drive cache is part
	// of the device. For the Fig. 6 S4 runs this is a no-op.
	_ = inst
}

// ---- rendering ----

// RenderPhaseTable formats rows grouped phase-major, like the paper's
// bar charts.
func RenderPhaseTable(title string, rows []PhaseTime) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	byPhase := map[string][]PhaseTime{}
	var phaseOrder []string
	for _, r := range rows {
		if _, ok := byPhase[r.Phase]; !ok {
			phaseOrder = append(phaseOrder, r.Phase)
		}
		byPhase[r.Phase] = append(byPhase[r.Phase], r)
	}
	for _, ph := range phaseOrder {
		fmt.Fprintf(&b, "  %-14s", ph)
		rs := byPhase[ph]
		sort.Slice(rs, func(i, j int) bool { return order(rs[i].System) < order(rs[j].System) })
		for _, r := range rs {
			fmt.Fprintf(&b, "  %-12s %8.2fs", r.System, r.Time.Seconds())
		}
		b.WriteString("\n")
	}
	return b.String()
}

func order(s SystemKind) int {
	for i, k := range AllSystems() {
		if k == s {
			return i
		}
	}
	return 99
}

// Render formats the Fig. 5 sweep.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: cleaner overhead (PostMark %d txns, %dMB disk)\n", r.Transactions, r.DiskBytes>>20)
	fmt.Fprintf(&b, "  %-12s %14s %14s %10s\n", "utilization", "tps(no clean)", "tps(cleaning)", "slowdown")
	for _, p := range r.Points {
		slow := 0.0
		if p.TPSNoClean > 0 {
			slow = 1 - p.TPSClean/p.TPSNoClean
		}
		fmt.Fprintf(&b, "  %10.0f%% %14.1f %14.1f %9.1f%%\n",
			p.Utilization*100, p.TPSNoClean, p.TPSClean, slow*100)
	}
	return b.String()
}

// Render formats the Fig. 6 comparison.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 6: auditing overhead (10,000 x 1KB files)\n")
	fmt.Fprintf(&b, "  %-8s %12s %12s %9s\n", "phase", "audit off", "audit on", "penalty")
	for _, ph := range r.Phases {
		fmt.Fprintf(&b, "  %-8s %11.2fs %11.2fs %8.1f%%\n",
			ph, r.Off[ph].Seconds(), r.On[ph].Seconds(), r.Penalty(ph)*100)
	}
	return b.String()
}

// Render formats the Fig. 2 ablation.
func (r *Fig2Result) Render() string {
	return fmt.Sprintf(
		"Fig 2: metadata versioning efficiency (%d single-block updates)\n"+
			"  journal-based metadata: %8.0f B metadata/update\n"+
			"  conventional versioning:%8.0f B metadata/update\n"+
			"  amplification:          %8.1fx\n",
		r.Updates, r.JournalPerUpdate, r.ConventionalPerUpd, r.Amplification)
}
