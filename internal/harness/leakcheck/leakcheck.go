// Package leakcheck fails tests that leave goroutines behind — a
// Drive.Close or server shutdown that strands a worker, cleaner, or
// connection handler shows up as a diff against the goroutine count
// taken at the start of the test.
//
//	defer leakcheck.Check(t)()
//
// The checker polls briefly before failing: goroutines that are
// mid-exit when the test body returns (connection handlers draining
// after Close, runtime bookkeeping) need a moment to unwind, and a
// fixed sleep would either flake or slow every test.
package leakcheck

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the checker needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check records the current goroutine count and returns a function
// that fails t if, after a grace period, more goroutines exist than at
// the start. Use as: defer leakcheck.Check(t)().
func Check(t TB) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines at test start, %d after shutdown; dump:\n%s", base, n, buf)
	}
}
