package harness

import (
	"strings"
	"testing"

	"s4/internal/workloads"
)

// Small-scale versions of every figure: these are correctness/shape
// smoke tests; cmd/s4bench and bench_test.go run paper scale.

func smallPostMark() workloads.PostMarkConfig {
	pm := workloads.DefaultPostMark()
	pm.Files = 150
	pm.Transactions = 400
	return pm
}

func TestAllSystemsBuild(t *testing.T) {
	for _, sys := range AllSystems() {
		inst, err := New(Config{System: sys, DiskBytes: 128 << 20})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		h, _, err := inst.FS.Create(inst.FS.Root(), "probe", 0644)
		if err != nil {
			t.Fatalf("%s create: %v", sys, err)
		}
		if err := inst.FS.Write(h, 0, []byte("ok")); err != nil {
			t.Fatalf("%s write: %v", sys, err)
		}
		got, err := inst.FS.Read(h, 0, 2)
		if err != nil || string(got) != "ok" {
			t.Fatalf("%s read: %q %v", sys, got, err)
		}
		closeInst(inst)
	}
}

func TestNetworkModelCharges(t *testing.T) {
	with, err := New(Config{System: BSDFFS, DiskBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	without, err := New(Config{System: BSDFFS, DiskBytes: 64 << 20, NoNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(in *Instance) float64 {
		mark := in.Clock.Now()
		for i := 0; i < 50; i++ {
			h, _, err := in.FS.Create(in.FS.Root(), "f"+string(rune('a'+i%26))+string(rune('a'+i/26)), 0644)
			if err != nil {
				t.Fatal(err)
			}
			_ = in.FS.Write(h, 0, make([]byte, 8192))
		}
		return in.Elapsed(mark).Seconds()
	}
	tWith, tWithout := run(with), run(without)
	if tWith <= tWithout {
		t.Fatalf("network model adds no time: with=%v without=%v", tWith, tWithout)
	}
}

func TestFig3SmallShape(t *testing.T) {
	res, err := RunFig3(smallPostMark(), 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	times := map[SystemKind]map[string]float64{}
	for _, r := range res.Rows {
		if times[r.System] == nil {
			times[r.System] = map[string]float64{}
		}
		times[r.System][r.Phase] = r.Time.Seconds()
	}
	for _, sys := range AllSystems() {
		if times[sys]["create"] <= 0 || times[sys]["transactions"] <= 0 {
			t.Fatalf("%s: missing phases: %+v", sys, times[sys])
		}
	}
	// Paper shape: the S4 systems beat the FFS baseline on PostMark
	// (log structure wins on small-file churn).
	if times[S4NFS]["transactions"] >= times[BSDFFS]["transactions"] {
		t.Fatalf("S4-NFS (%.2fs) should beat BSD-FFS (%.2fs) on transactions",
			times[S4NFS]["transactions"], times[BSDFFS]["transactions"])
	}
	out := RenderPhaseTable("Fig 3", res.Rows)
	if !strings.Contains(out, "transactions") {
		t.Fatal("render missing phase")
	}
}

func TestFig4SmallShape(t *testing.T) {
	cfg := workloads.DefaultSSHBuild()
	cfg.SourceFiles = 60
	cfg.ConfigureProbes = 25
	res, err := RunFig4(cfg, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	times := map[SystemKind]map[string]float64{}
	for _, r := range res.Rows {
		if times[r.System] == nil {
			times[r.System] = map[string]float64{}
		}
		times[r.System][r.Phase] = r.Time.Seconds()
	}
	// Paper shape: Linux's incomplete sync makes its configure phase
	// visibly faster than FFS's.
	if times[LinuxExt2]["configure"] >= times[BSDFFS]["configure"] {
		t.Fatalf("ext2-sync configure (%.3fs) should beat ffs-sync (%.3fs)",
			times[LinuxExt2]["configure"], times[BSDFFS]["configure"])
	}
}

func TestFig5SmallShape(t *testing.T) {
	res, err := RunFig5([]float64{0.05, 0.40}, 1500, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points: %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.TPSNoClean <= 0 || p.TPSClean <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if p.TPSClean > p.TPSNoClean*1.05 {
			t.Fatalf("cleaning sped things up? %+v", p)
		}
	}
	// Higher utilization is slower (cache + locality effects).
	if res.Points[1].TPSNoClean >= res.Points[0].TPSNoClean {
		t.Fatalf("no-clean throughput should fall with utilization: %+v", res.Points)
	}
	_ = res.Render()
}

func TestFig6SmallShape(t *testing.T) {
	res, err := RunFig6(workloads.MicroConfig{Files: 800, FileSize: 1024, Dirs: 10, Seed: 1}, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range res.Phases {
		if res.Off[ph] <= 0 || res.On[ph] <= 0 {
			t.Fatalf("phase %s degenerate: %+v", ph, res)
		}
	}
	// Auditing must never be catastrophic; at this tiny scale the
	// create/delete penalty sits within alignment noise of zero (the
	// paper-scale run in s4bench shows the 1-3% band).
	if p := res.Penalty("create"); p < -0.05 || p > 0.5 {
		t.Fatalf("create penalty %.1f%% out of plausible band", p*100)
	}
	if p := res.Penalty("read"); p < 0 || p > 0.5 {
		t.Fatalf("read penalty %.1f%% out of plausible band", p*100)
	}
	_ = res.Render()
}

func TestFig2Shape(t *testing.T) {
	res, err := RunFig2(120, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of journal-based metadata: far less metadata
	// traffic than conventional per-update versioning.
	if res.Amplification < 2 {
		t.Fatalf("conventional/journal amplification %.1fx, want >= 2x\n%s",
			res.Amplification, res.Render())
	}
}

func TestMacroAuditSmall(t *testing.T) {
	pm := smallPostMark()
	res, err := RunMacroAudit(pm, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	// At this tiny scale the penalty sits at the model's noise floor
	// (segment-alignment effects can nudge it fractionally negative,
	// same as the Fig. 6 create phase — see EXPERIMENTS.md); only a
	// clearly negative or implausibly large value indicates a bug.
	if res.Penalty < -0.02 || res.Penalty > 0.3 {
		t.Fatalf("macro audit penalty %.1f%% implausible", res.Penalty*100)
	}
}

func TestFundamentalCosts(t *testing.T) {
	r := &Fig5Result{Points: []Fig5Point{
		{Utilization: 0.6, TPSNoClean: 100, TPSClean: 57},
		{Utilization: 0.8, TPSNoClean: 80, TPSClean: 37.6},
	}}
	a, h, extra := r.FundamentalCosts(0.6, 0.8)
	if a < 0.42 || a > 0.44 || h < 0.52 || h > 0.54 || extra < 0.08 || extra > 0.12 {
		t.Fatalf("costs: active=%.2f hist=%.2f extra=%.2f", a, h, extra)
	}
}
