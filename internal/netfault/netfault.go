// Package netfault wraps a net.Listener to inject deterministic network
// faults into accepted connections: added latency, mid-stream resets
// (severing a connection partway through a frame), and silent drops
// (the connection stays up but carries nothing). It exists to prove the
// RPC layer's exactly-once retry machinery: a server listening through
// a fault-injecting listener presents clients with every failure shape
// a hostile or flaky network can, on demand and reproducibly.
//
// Determinism: all randomness derives from Config.Seed plus the
// accept-order index of the connection, so a failing run replays
// exactly from its seed. No fault decision consults the wall clock.
package netfault

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCut is returned from Read/Write on a connection the harness
// severed mid-stream. The peer observes an abrupt close (possibly
// inside a frame).
var ErrCut = errors.New("netfault: connection cut")

// Config selects which faults to inject. Zero values disable each
// fault class, so Config{} is a transparent pass-through.
type Config struct {
	// Seed makes the fault schedule reproducible. Same seed + same
	// accept order = same faults.
	Seed int64

	// DelayEvery injects a latency spike on roughly 1-in-N I/O
	// operations (0 disables). MaxDelay bounds each spike.
	DelayEvery int
	MaxDelay   time.Duration

	// CutMin/CutMax give each connection a byte budget drawn uniformly
	// from [CutMin, CutMax]; once the budget is spent (reads + writes
	// combined) the connection is severed, leaving the peer with a
	// truncated frame. CutMax == 0 disables cutting.
	CutMin, CutMax int

	// DropProb is the probability (0..1) that an accepted connection is
	// a blackhole: writes succeed but go nowhere, reads starve until
	// deadline or peer close. Models a dead NAT entry / silent
	// middlebox drop.
	DropProb float64
}

// Stats counts injected faults (atomically updated, safe to read
// concurrently via Listener.Stats).
type Stats struct {
	Conns  uint64 // connections accepted
	Cuts   uint64 // connections severed by byte budget
	Drops  uint64 // connections accepted as blackholes
	Delays uint64 // latency spikes injected
}

// Listener wraps an inner listener, returning fault-injecting
// connections from Accept.
type Listener struct {
	net.Listener
	cfg   Config
	seq   atomic.Uint64
	stats struct {
		conns, cuts, drops, delays atomic.Uint64
	}

	// forceDrop, when set, blackholes every connection — current and
	// future — regardless of DropProb. It models a whole shard falling
	// off the network (dead switch port) and is flipped at run time by
	// kill-one-shard tests; SetDrop(false) restores the configured
	// schedule for connections accepted afterwards.
	forceDrop atomic.Bool

	openMu sync.Mutex
	open   map[*faultConn]struct{}
}

// Wrap dresses ln in fault injection. Close and Addr pass through.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg, open: make(map[*faultConn]struct{})}
}

// SetDrop toggles the whole-listener blackhole: while on, every open
// and newly accepted connection delivers nothing in either direction.
// Pair with CutAll to sever what is already established — together
// they are the "kill one shard" switch.
func (l *Listener) SetDrop(on bool) { l.forceDrop.Store(on) }

// CutAll severs every currently open connection mid-stream, as a
// crashing shard would.
func (l *Listener) CutAll() {
	l.openMu.Lock()
	conns := make([]*faultConn, 0, len(l.open))
	for c := range l.open {
		conns = append(conns, c)
	}
	l.openMu.Unlock()
	for _, c := range conns {
		c.sever()
	}
}

func (l *Listener) track(c *faultConn) {
	l.openMu.Lock()
	l.open[c] = struct{}{}
	l.openMu.Unlock()
}

func (l *Listener) forget(c *faultConn) {
	l.openMu.Lock()
	delete(l.open, c)
	l.openMu.Unlock()
}

// Stats snapshots the fault counters.
func (l *Listener) Stats() Stats {
	return Stats{
		Conns:  l.stats.conns.Load(),
		Cuts:   l.stats.cuts.Load(),
		Drops:  l.stats.drops.Load(),
		Delays: l.stats.delays.Load(),
	}
}

// Accept returns the next connection, wrapped per the fault schedule.
func (l *Listener) Accept() (net.Conn, error) {
	inner, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	idx := l.seq.Add(1)
	l.stats.conns.Add(1)
	rng := rand.New(rand.NewSource(l.cfg.Seed + int64(idx)*0x9E3779B9))
	fc := &faultConn{Conn: inner, l: l, rng: rng}
	if l.cfg.DropProb > 0 && rng.Float64() < l.cfg.DropProb {
		fc.dropped = true
		l.stats.drops.Add(1)
	}
	if l.cfg.CutMax > 0 {
		span := l.cfg.CutMax - l.cfg.CutMin
		budget := l.cfg.CutMin
		if span > 0 {
			budget += rng.Intn(span + 1)
		}
		fc.budget.Store(int64(budget))
		fc.cutting = true
	}
	l.track(fc)
	return fc, nil
}

// faultConn injects the listener's fault schedule into one connection.
type faultConn struct {
	net.Conn
	l       *Listener
	dropped bool
	cutting bool
	budget  atomic.Int64 // remaining bytes before the cut
	severed atomic.Bool

	mu  sync.Mutex // guards rng (Read and Write may race)
	rng *rand.Rand
}

// maybeDelay injects a latency spike on ~1/DelayEvery operations.
func (c *faultConn) maybeDelay() {
	cfg := c.l.cfg
	if cfg.DelayEvery <= 0 || cfg.MaxDelay <= 0 {
		return
	}
	c.mu.Lock()
	hit := c.rng.Intn(cfg.DelayEvery) == 0
	var d time.Duration
	if hit {
		d = time.Duration(c.rng.Int63n(int64(cfg.MaxDelay))) + time.Millisecond
	}
	c.mu.Unlock()
	if hit {
		c.l.stats.delays.Add(1)
		time.Sleep(d)
	}
}

// consume spends n bytes of the cut budget, returning how many are
// allowed through and whether the connection must now be severed.
func (c *faultConn) consume(n int) (allowed int, cut bool) {
	if !c.cutting {
		return n, false
	}
	rem := c.budget.Add(-int64(n))
	if rem >= 0 {
		return n, false
	}
	allowed = n + int(rem) // budget ran out mid-buffer
	if allowed < 0 {
		allowed = 0
	}
	return allowed, true
}

func (c *faultConn) sever() {
	if c.severed.CompareAndSwap(false, true) {
		c.l.stats.cuts.Add(1)
		c.l.forget(c)
		_ = c.Conn.Close()
	}
}

func (c *faultConn) Close() error {
	c.l.forget(c)
	return c.Conn.Close()
}

// dropping reports whether the connection is a blackhole right now —
// either by its accept-time draw or because the listener-wide kill
// switch is on.
func (c *faultConn) dropping() bool { return c.dropped || c.l.forceDrop.Load() }

func (c *faultConn) Read(p []byte) (int, error) {
	if c.severed.Load() {
		return 0, ErrCut
	}
	c.maybeDelay()
	if c.dropping() {
		// Starve: consume the peer's bytes (so its writes appear to
		// succeed) but deliver nothing. Reading the underlying conn —
		// rather than blocking on a channel — keeps deadlines and
		// peer-close propagating naturally.
		var sink [4096]byte
		for {
			if _, err := c.Conn.Read(sink[:]); err != nil {
				return 0, err
			}
		}
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		allowed, cut := c.consume(n)
		if cut {
			c.sever()
			if allowed > 0 {
				return allowed, nil // deliver the partial; next op errors
			}
			return 0, ErrCut
		}
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.severed.Load() {
		return 0, ErrCut
	}
	c.maybeDelay()
	if c.dropping() {
		return len(p), nil // blackhole: ack everything, deliver nothing
	}
	allowed, cut := c.consume(len(p))
	if !cut {
		return c.Conn.Write(p)
	}
	var n int
	var err error
	if allowed > 0 {
		n, err = c.Conn.Write(p[:allowed]) // truncated frame on the wire
	}
	c.sever()
	if err != nil {
		return n, err
	}
	return n, ErrCut
}
