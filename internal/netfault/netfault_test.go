package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// accept1 serves exactly one connection through a wrapped listener and
// hands it to the test.
func accept1(t *testing.T, cfg Config) (client net.Conn, server net.Conn, l *Listener) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l = Wrap(inner, cfg)
	t.Cleanup(func() { l.Close() })
	done := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	server = <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { server.Close() })
	return client, server, l
}

func TestPassThrough(t *testing.T) {
	client, server, l := accept1(t, Config{})
	msg := []byte("unmolested bytes")
	go func() { server.Write(msg) }()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
	if s := l.Stats(); s.Conns != 1 || s.Cuts != 0 || s.Drops != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestCutSeversMidStream proves the byte budget: writes past it deliver
// a truncated stream and then fail, and the peer sees an abrupt close.
func TestCutSeversMidStream(t *testing.T) {
	client, server, l := accept1(t, Config{Seed: 7, CutMin: 100, CutMax: 100})

	payload := bytes.Repeat([]byte{0xAB}, 300)
	werr := make(chan error, 1)
	go func() {
		_, err := server.Write(payload)
		werr <- err
	}()

	got, _ := io.ReadAll(client) // read until the sever closes the conn
	if len(got) >= len(payload) {
		t.Fatalf("cut conn delivered all %d bytes", len(got))
	}
	if len(got) > 100 {
		t.Fatalf("delivered %d bytes past the 100-byte budget", len(got))
	}
	if err := <-werr; !errors.Is(err, ErrCut) {
		t.Fatalf("write error %v, want ErrCut", err)
	}
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("write after sever succeeded")
	}
	if s := l.Stats(); s.Cuts != 1 {
		t.Fatalf("stats %+v, want 1 cut", s)
	}
}

// TestDropBlackholes proves a dropped connection acks writes without
// delivering them and starves reads until a deadline fires.
func TestDropBlackholes(t *testing.T) {
	client, server, l := accept1(t, Config{Seed: 1, DropProb: 1.0})

	if n, err := server.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}

	// The client must see nothing (the write was swallowed).
	client.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := client.Read(buf); err == nil {
		t.Fatalf("client read %d bytes through a blackhole", n)
	}

	// The server's read starves but still honors its deadline — the
	// client's bytes are consumed, never delivered.
	go client.Write([]byte("hello?"))
	server.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, err := server.Read(buf); err == nil || n != 0 {
		t.Fatalf("starved read returned n=%d err=%v", n, err)
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("starved read error %v, want deadline", err)
	}
	if s := l.Stats(); s.Drops != 1 {
		t.Fatalf("stats %+v, want 1 drop", s)
	}
}

// TestDeterministicSchedule proves two listeners with the same seed
// give connections identical fault budgets.
func TestDeterministicSchedule(t *testing.T) {
	budgets := func(seed int64) []int64 {
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer inner.Close()
		l := Wrap(inner, Config{Seed: seed, CutMin: 10, CutMax: 1000})
		var out []int64
		for i := 0; i < 5; i++ {
			done := make(chan net.Conn, 1)
			go func() {
				c, _ := l.Accept()
				done <- c
			}()
			cl, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			sv := <-done
			if sv == nil {
				t.Fatal("accept failed")
			}
			out = append(out, sv.(*faultConn).budget.Load())
			sv.Close()
			cl.Close()
		}
		return out
	}
	a, b := budgets(42), budgets(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different budgets: %v vs %v", a, b)
		}
	}
	c := budgets(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDelayInjection proves latency spikes occur and are counted.
func TestDelayInjection(t *testing.T) {
	client, server, l := accept1(t, Config{Seed: 3, DelayEvery: 1, MaxDelay: 5 * time.Millisecond})
	go func() { server.Write([]byte("slow")) }()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Delays == 0 {
		t.Fatal("DelayEvery=1 injected no delays")
	}
}
