package nfsv2

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/s4fs"
	"s4/internal/types"
	"s4/internal/ufs"
	"s4/internal/vclock"
)

// startS4 serves an S4-backed export over UDP loopback — the paper's
// Fig. 1b configuration, end to end over a real socket.
func startS4(t *testing.T) *Client {
	t.Helper()
	dev := disk.New(disk.SmallDisk(64<<20), nil)
	drv, err := core.Format(dev, core.Options{
		Clock: vclock.Wall{}, SegBlocks: 16, CheckpointBlocks: 16, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := s4fs.Mkfs(drv, s4fs.Options{Cred: types.Cred{User: 1000, Client: 1}, SyncEachOp: true})
	if err != nil {
		t.Fatal(err)
	}
	return startServer(t, NewServer(fs, "/s4"), "/s4", func() { _ = drv.Close() })
}

func startUFS(t *testing.T) *Client {
	t.Helper()
	dev := disk.New(disk.SmallDisk(64<<20), nil)
	fs, err := ufs.Mkfs(dev, ufs.Options{Policy: ufs.FFSSync})
	if err != nil {
		t.Fatal(err)
	}
	return startServer(t, NewServer(fs, "/ufs"), "/ufs", nil)
}

func startServer(t *testing.T, srv *Server, export string, cleanup func()) *Client {
	t.Helper()
	go func() { _ = srv.ListenAndServe("127.0.0.1:0") }()
	// Wait for bind.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("server did not bind")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		if cleanup != nil {
			cleanup()
		}
	})
	c, err := DialClient(srv.Addr(), 1000, 1000, "testhost")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func testLifecycle(t *testing.T, c *Client, export string) {
	root, err := c.Mount(export)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong export path is refused.
	if _, err := c.Mount("/nope"); err == nil {
		t.Fatal("bogus export mounted")
	}
	dir, err := c.Mkdir(root, "home", 0755)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := c.Create(dir, "notes.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("network file system payload "), 700) // ~20KB: multiple WRITEs
	if err := c.Write(fh, 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(fh, 0, uint32(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read back %d bytes, err=%v", len(got), err)
	}
	a, err := c.GetAttr(fh)
	if err != nil || a.Size != uint32(len(payload)) || a.Type != 1 {
		t.Fatalf("attr %+v err=%v", a, err)
	}
	// Lookup resolves the same handle.
	lh, la, err := c.Lookup(dir, "notes.txt")
	if err != nil || lh != fh || la.Size != a.Size {
		t.Fatal(lh, la, err)
	}
	if _, _, err := c.Lookup(dir, "missing"); err == nil {
		t.Fatal("lookup of missing name succeeded")
	} else if st, ok := Status(err); !ok || st != ErrNoEnt {
		t.Fatalf("want NFSERR_NOENT, got %v", err)
	}
	// Many files; readdir pages through cookies.
	for i := 0; i < 60; i++ {
		name := "f" + string(rune('a'+i/26)) + string(rune('a'+i%26))
		if _, err := c.Create(dir, name, 0644); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	names, err := c.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 61 {
		t.Fatalf("readdir: %d entries, want 61", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatal("readdir not sorted")
	}
	if err := c.Remove(dir, "notes.txt"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(dir, "notes.txt"); err == nil {
		t.Fatal("lookup after remove succeeded")
	}
}

func TestNFSOverS4(t *testing.T) {
	c := startS4(t)
	testLifecycle(t, c, "/s4")
}

func TestNFSOverUFS(t *testing.T) {
	c := startUFS(t)
	testLifecycle(t, c, "/ufs")
}
