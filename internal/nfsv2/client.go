package nfsv2

import (
	"encoding/binary"
	"fmt"

	"s4/internal/fsys"
	"s4/internal/oncrpc"
	"s4/internal/xdr"
)

// Client is a minimal NFSv2 client used by tools, tests, and examples
// (a kernel would normally play this role).
type Client struct {
	rpc *oncrpc.Client
}

// DialClient connects to an NFSv2/MOUNT server at addr with the given
// AUTH_UNIX identity.
func DialClient(addr string, uid, gid uint32, machine string) (*Client, error) {
	c, err := oncrpc.DialClient(addr, uid, gid, machine)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.rpc.Close() }

// nfsError is a non-OK NFS status.
type nfsError uint32

func (e nfsError) Error() string { return fmt.Sprintf("nfs: status %d", uint32(e)) }

// Status extracts the numeric NFS status from an error returned by this
// client (0, false if the error is not an NFS status).
func Status(err error) (uint32, bool) {
	if e, ok := err.(nfsError); ok {
		return uint32(e), true
	}
	return 0, false
}

func (c *Client) call(prog, vers, proc uint32, args *xdr.Encoder) (*xdr.Decoder, error) {
	d, err := c.rpc.Call(prog, vers, proc, args.Bytes())
	if err != nil {
		return nil, err
	}
	return d, nil
}

func (c *Client) nfsCall(proc uint32, args *xdr.Encoder) (*xdr.Decoder, error) {
	d, err := c.call(ProgNFS, VersNFS, proc, args)
	if err != nil {
		return nil, err
	}
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if st != OK {
		return nil, nfsError(st)
	}
	return d, nil
}

// Mount resolves the export path to its root handle.
func (c *Client) Mount(path string) (fsys.Handle, error) {
	e := xdr.NewEncoder()
	e.String(path)
	d, err := c.call(ProgMount, VersMount, MountProcMnt, e)
	if err != nil {
		return 0, err
	}
	st, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	if st != OK {
		return 0, nfsError(st)
	}
	return readFH(d)
}

func readFH(d *xdr.Decoder) (fsys.Handle, error) {
	b, err := d.OpaqueFixed(FHSize)
	if err != nil {
		return 0, err
	}
	return fsys.Handle(binary.BigEndian.Uint64(b[:8])), nil
}

// skipFattr consumes a fattr structure (17 words).
func skipFattr(d *xdr.Decoder) error {
	for i := 0; i < 17; i++ {
		if _, err := d.Uint32(); err != nil {
			return err
		}
	}
	return nil
}

// Attr is the client-side view of a fattr.
type Attr struct {
	Type  uint32
	Mode  uint32
	Nlink uint32
	UID   uint32
	Size  uint32
}

func readFattr(d *xdr.Decoder) (Attr, error) {
	var a Attr
	var err error
	if a.Type, err = d.Uint32(); err != nil {
		return a, err
	}
	if a.Mode, err = d.Uint32(); err != nil {
		return a, err
	}
	if a.Nlink, err = d.Uint32(); err != nil {
		return a, err
	}
	if a.UID, err = d.Uint32(); err != nil {
		return a, err
	}
	if _, err = d.Uint32(); err != nil { // gid
		return a, err
	}
	if a.Size, err = d.Uint32(); err != nil {
		return a, err
	}
	for i := 0; i < 11; i++ { // blocksize..ctime
		if _, err = d.Uint32(); err != nil {
			return a, err
		}
	}
	return a, nil
}

// GetAttr fetches a node's attributes.
func (c *Client) GetAttr(h fsys.Handle) (Attr, error) {
	e := xdr.NewEncoder()
	encodeFH(e, h)
	d, err := c.nfsCall(ProcGetattr, e)
	if err != nil {
		return Attr{}, err
	}
	return readFattr(d)
}

// Lookup resolves name in dir.
func (c *Client) Lookup(dir fsys.Handle, name string) (fsys.Handle, Attr, error) {
	e := xdr.NewEncoder()
	encodeFH(e, dir)
	e.String(name)
	d, err := c.nfsCall(ProcLookup, e)
	if err != nil {
		return 0, Attr{}, err
	}
	h, err := readFH(d)
	if err != nil {
		return 0, Attr{}, err
	}
	a, err := readFattr(d)
	return h, a, err
}

// Create makes a regular file.
func (c *Client) Create(dir fsys.Handle, name string, mode uint32) (fsys.Handle, error) {
	e := xdr.NewEncoder()
	encodeFH(e, dir)
	e.String(name)
	writeSattr(e, mode)
	d, err := c.nfsCall(ProcCreate, e)
	if err != nil {
		return 0, err
	}
	return readFH(d)
}

// Mkdir makes a directory.
func (c *Client) Mkdir(dir fsys.Handle, name string, mode uint32) (fsys.Handle, error) {
	e := xdr.NewEncoder()
	encodeFH(e, dir)
	e.String(name)
	writeSattr(e, mode)
	d, err := c.nfsCall(ProcMkdir, e)
	if err != nil {
		return 0, err
	}
	return readFH(d)
}

func writeSattr(e *xdr.Encoder, mode uint32) {
	e.Uint32(mode)
	for i := 0; i < 7; i++ {
		e.Uint32(0xFFFFFFFF) // uid, gid, size, atime, mtime unset
	}
}

// Write stores data at off (NFSv2 limits one call to 8KB).
func (c *Client) Write(h fsys.Handle, off uint32, data []byte) error {
	for len(data) > 0 {
		n := len(data)
		if n > MaxData {
			n = MaxData
		}
		e := xdr.NewEncoder()
		encodeFH(e, h)
		e.Uint32(0)
		e.Uint32(off)
		e.Uint32(0)
		e.Opaque(data[:n])
		if _, err := c.nfsCall(ProcWrite, e); err != nil {
			return err
		}
		off += uint32(n)
		data = data[n:]
	}
	return nil
}

// Read returns up to count bytes at off.
func (c *Client) Read(h fsys.Handle, off, count uint32) ([]byte, error) {
	var out []byte
	for count > 0 {
		n := count
		if n > MaxData {
			n = MaxData
		}
		e := xdr.NewEncoder()
		encodeFH(e, h)
		e.Uint32(off)
		e.Uint32(n)
		e.Uint32(0)
		d, err := c.nfsCall(ProcRead, e)
		if err != nil {
			return nil, err
		}
		if err := skipFattr(d); err != nil {
			return nil, err
		}
		data, err := d.Opaque(MaxData + 16)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		if uint32(len(data)) < n {
			break
		}
		off += uint32(len(data))
		count -= uint32(len(data))
	}
	return out, nil
}

// Remove unlinks a file.
func (c *Client) Remove(dir fsys.Handle, name string) error {
	e := xdr.NewEncoder()
	encodeFH(e, dir)
	e.String(name)
	_, err := c.nfsCall(ProcRemove, e)
	return err
}

// ReadDir lists a directory (following continuation cookies).
func (c *Client) ReadDir(dir fsys.Handle) ([]string, error) {
	var names []string
	cookie := uint32(0)
	for {
		e := xdr.NewEncoder()
		encodeFH(e, dir)
		var cb [CookieSize]byte
		binary.BigEndian.PutUint32(cb[:], cookie)
		e.OpaqueFixed(cb[:])
		e.Uint32(2048)
		d, err := c.nfsCall(ProcReaddir, e)
		if err != nil {
			return nil, err
		}
		for {
			more, err := d.Bool()
			if err != nil {
				return nil, err
			}
			if !more {
				break
			}
			if _, err := d.Uint32(); err != nil { // fileid
				return nil, err
			}
			name, err := d.String(MaxName)
			if err != nil {
				return nil, err
			}
			ck, err := d.OpaqueFixed(CookieSize)
			if err != nil {
				return nil, err
			}
			cookie = binary.BigEndian.Uint32(ck)
			names = append(names, name)
		}
		eof, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if eof {
			return names, nil
		}
	}
}
