// Package nfsv2 implements the NFS version 2 protocol (RFC 1094) and
// its MOUNT companion over ONC RPC/UDP, serving any fsys.FileSys.
//
// This is the protocol surface of the paper's Fig. 1: pointed at an
// s4fs.FS it is the "S4-enhanced NFS server" (Fig. 1b); pointed at a
// ufs.FS it is the conventional baseline server. NFSv2 was chosen by
// the authors because its lack of write caching keeps the drive's
// per-operation picture complete (§4.1.2); the paper also notes NFS
// carries no real authentication — the AUTH_UNIX uid is recorded but
// not verified, which is precisely why the drive's own security
// perimeter (internal/s4rpc) matters.
package nfsv2

import (
	"encoding/binary"
	"errors"
	"sort"

	"s4/internal/fsys"
	"s4/internal/oncrpc"
	"s4/internal/types"
	"s4/internal/xdr"
)

// Program numbers.
const (
	ProgNFS    = 100003
	VersNFS    = 2
	ProgMount  = 100005
	VersMount  = 1
	FHSize     = 32
	MaxData    = 8192
	MaxName    = 255
	MaxPath    = 1024
	CookieSize = 4
)

// NFSv2 procedure numbers.
const (
	ProcNull     = 0
	ProcGetattr  = 1
	ProcSetattr  = 2
	ProcLookup   = 4
	ProcReadlink = 5
	ProcRead     = 6
	ProcWrite    = 8
	ProcCreate   = 9
	ProcRemove   = 10
	ProcRename   = 11
	ProcLink     = 12
	ProcSymlink  = 13
	ProcMkdir    = 14
	ProcRmdir    = 15
	ProcReaddir  = 16
	ProcStatfs   = 17
)

// MOUNT procedure numbers.
const (
	MountProcNull = 0
	MountProcMnt  = 1
	MountProcUmnt = 3
)

// NFS status codes.
const (
	OK          = 0
	ErrPerm     = 1
	ErrNoEnt    = 2
	ErrIO       = 5
	ErrAcces    = 13
	ErrExist    = 17
	ErrNotDir   = 20
	ErrIsDir    = 21
	ErrNoSpc    = 28
	ErrNameLong = 63
	ErrNotEmpty = 66
	ErrStale    = 70
)

func statusOf(err error) uint32 {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, fsys.ErrNotFound):
		return ErrNoEnt
	case errors.Is(err, fsys.ErrExist):
		return ErrExist
	case errors.Is(err, fsys.ErrNotDir):
		return ErrNotDir
	case errors.Is(err, fsys.ErrIsDir):
		return ErrIsDir
	case errors.Is(err, fsys.ErrNotEmpty):
		return ErrNotEmpty
	case errors.Is(err, fsys.ErrStale):
		return ErrStale
	case errors.Is(err, fsys.ErrNoSpace):
		return ErrNoSpc
	case errors.Is(err, fsys.ErrPerm), errors.Is(err, types.ErrPerm):
		return ErrAcces
	case errors.Is(err, types.ErrNameTooLong):
		return ErrNameLong
	}
	return ErrIO
}

// encodeFH packs a handle into the 32-byte NFSv2 file handle.
func encodeFH(e *xdr.Encoder, h fsys.Handle) {
	var fh [FHSize]byte
	binary.BigEndian.PutUint64(fh[:8], uint64(h))
	copy(fh[8:], "S4NFSv2-FHANDLE")
	e.OpaqueFixed(fh[:])
}

func decodeFH(d *xdr.Decoder) (fsys.Handle, error) {
	b, err := d.OpaqueFixed(FHSize)
	if err != nil {
		return 0, err
	}
	return fsys.Handle(binary.BigEndian.Uint64(b[:8])), nil
}

// ftype values of RFC 1094.
func ftypeOf(t fsys.FileType) uint32 {
	switch t {
	case fsys.TypeReg:
		return 1 // NFREG
	case fsys.TypeDir:
		return 2 // NFDIR
	case fsys.TypeSymlink:
		return 5 // NFLNK
	}
	return 0 // NFNON
}

func encodeFattr(e *xdr.Encoder, h fsys.Handle, a fsys.Attr) {
	e.Uint32(ftypeOf(a.Type))
	mode := a.Mode
	switch a.Type {
	case fsys.TypeDir:
		mode |= 0040000
	case fsys.TypeSymlink:
		mode |= 0120000
	default:
		mode |= 0100000
	}
	e.Uint32(mode)
	e.Uint32(a.Nlink)
	e.Uint32(a.UID)
	e.Uint32(a.GID)
	e.Uint32(uint32(a.Size))
	e.Uint32(types.BlockSize) // blocksize
	e.Uint32(0)               // rdev
	e.Uint32(uint32((a.Size + types.BlockSize - 1) / types.BlockSize))
	e.Uint32(1)         // fsid
	e.Uint32(uint32(h)) // fileid
	sec := uint32(a.Mtime.Time().Unix())
	usec := uint32(a.Mtime.Time().Nanosecond() / 1000)
	e.Uint32(sec) // atime
	e.Uint32(usec)
	e.Uint32(sec) // mtime
	e.Uint32(usec)
	csec := uint32(a.Ctime.Time().Unix())
	e.Uint32(csec) // ctime
	e.Uint32(uint32(a.Ctime.Time().Nanosecond() / 1000))
}

// sattr is the settable attribute struct; 0xFFFFFFFF means "don't set".
type sattr struct {
	mode, uid, gid, size uint32
}

func decodeSattr(d *xdr.Decoder) (sattr, error) {
	var s sattr
	var err error
	if s.mode, err = d.Uint32(); err != nil {
		return s, err
	}
	if s.uid, err = d.Uint32(); err != nil {
		return s, err
	}
	if s.gid, err = d.Uint32(); err != nil {
		return s, err
	}
	if s.size, err = d.Uint32(); err != nil {
		return s, err
	}
	// atime, mtime (2 words each), ignored.
	for i := 0; i < 4; i++ {
		if _, err = d.Uint32(); err != nil {
			return s, err
		}
	}
	return s, nil
}

func (s sattr) apply() fsys.SetAttr {
	const unset = 0xFFFFFFFF
	var sa fsys.SetAttr
	if s.mode != unset {
		m := s.mode & 07777
		sa.Mode = &m
	}
	if s.uid != unset {
		u := s.uid
		sa.UID = &u
	}
	if s.gid != unset {
		g := s.gid
		sa.GID = &g
	}
	if s.size != unset {
		sz := uint64(s.size)
		sa.Size = &sz
	}
	return sa
}

// Server serves NFSv2 + MOUNT for one FileSys export.
type Server struct {
	fs     fsys.FileSys
	export string
	rpc    *oncrpc.Server
}

// NewServer exports fs under the given mount path (e.g. "/s4").
func NewServer(fs fsys.FileSys, export string) *Server {
	s := &Server{fs: fs, export: export, rpc: oncrpc.NewServer()}
	s.rpc.Register(ProgNFS, VersNFS, s.nfsHandler)
	s.rpc.Register(ProgMount, VersMount, s.mountHandler)
	return s
}

// ListenAndServe serves UDP on addr until Close.
func (s *Server) ListenAndServe(addr string) error { return s.rpc.ListenAndServe(addr) }

// Addr returns the bound address.
func (s *Server) Addr() string {
	a := s.rpc.Addr()
	if a == nil {
		return ""
	}
	return a.String()
}

// Close stops the server.
func (s *Server) Close() error { return s.rpc.Close() }

func (s *Server) mountHandler(proc uint32, cred oncrpc.Cred, d *xdr.Decoder, e *xdr.Encoder) uint32 {
	switch proc {
	case MountProcNull:
		return oncrpc.AcceptSuccess
	case MountProcMnt:
		path, err := d.String(MaxPath)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		if path != s.export {
			e.Uint32(ErrNoEnt)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		encodeFH(e, s.fs.Root())
		return oncrpc.AcceptSuccess
	case MountProcUmnt:
		if _, err := d.String(MaxPath); err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		return oncrpc.AcceptSuccess
	}
	return oncrpc.AcceptProcUnavail
}

func (s *Server) nfsHandler(proc uint32, cred oncrpc.Cred, d *xdr.Decoder, e *xdr.Encoder) uint32 {
	switch proc {
	case ProcNull:
		return oncrpc.AcceptSuccess
	case ProcGetattr:
		h, err := decodeFH(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		a, err := s.fs.GetAttr(h)
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		encodeFattr(e, h, a)
	case ProcSetattr:
		h, err := decodeFH(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		sa, err := decodeSattr(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		a, err := s.fs.SetAttr(h, sa.apply())
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		encodeFattr(e, h, a)
	case ProcLookup:
		dir, name, ok := dirop(d)
		if !ok {
			return oncrpc.AcceptGarbageArgs
		}
		h, a, err := s.fs.Lookup(dir, name)
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		encodeFH(e, h)
		encodeFattr(e, h, a)
	case ProcReadlink:
		h, err := decodeFH(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		target, err := s.fs.ReadLink(h)
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		e.String(target)
	case ProcRead:
		h, err := decodeFH(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		off, _ := d.Uint32()
		count, _ := d.Uint32()
		if _, err := d.Uint32(); err != nil { // totalcount (unused)
			return oncrpc.AcceptGarbageArgs
		}
		if count > MaxData {
			count = MaxData
		}
		data, err := s.fs.Read(h, uint64(off), int(count))
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		a, err := s.fs.GetAttr(h)
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		encodeFattr(e, h, a)
		e.Opaque(data)
	case ProcWrite:
		h, err := decodeFH(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		if _, err := d.Uint32(); err != nil { // beginoffset (unused)
			return oncrpc.AcceptGarbageArgs
		}
		off, _ := d.Uint32()
		if _, err := d.Uint32(); err != nil { // totalcount (unused)
			return oncrpc.AcceptGarbageArgs
		}
		data, err := d.Opaque(MaxData + 16)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		werr := s.fs.Write(h, uint64(off), data)
		if st := statusOf(werr); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		a, err := s.fs.GetAttr(h)
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		encodeFattr(e, h, a)
	case ProcCreate, ProcMkdir:
		dir, name, ok := dirop(d)
		if !ok {
			return oncrpc.AcceptGarbageArgs
		}
		sa, err := decodeSattr(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		mode := sa.mode & 07777
		var h fsys.Handle
		var a fsys.Attr
		if proc == ProcCreate {
			h, a, err = s.fs.Create(dir, name, mode)
		} else {
			h, a, err = s.fs.Mkdir(dir, name, mode)
		}
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		encodeFH(e, h)
		encodeFattr(e, h, a)
	case ProcRemove, ProcRmdir:
		dir, name, ok := dirop(d)
		if !ok {
			return oncrpc.AcceptGarbageArgs
		}
		var err error
		if proc == ProcRemove {
			err = s.fs.Remove(dir, name)
		} else {
			err = s.fs.Rmdir(dir, name)
		}
		e.Uint32(statusOf(err))
	case ProcRename:
		fromDir, fromName, ok := dirop(d)
		if !ok {
			return oncrpc.AcceptGarbageArgs
		}
		toDir, toName, ok := dirop(d)
		if !ok {
			return oncrpc.AcceptGarbageArgs
		}
		e.Uint32(statusOf(s.fs.Rename(fromDir, fromName, toDir, toName)))
	case ProcLink:
		h, err := decodeFH(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		dir, name, ok := dirop(d)
		if !ok {
			return oncrpc.AcceptGarbageArgs
		}
		e.Uint32(statusOf(s.fs.Link(h, dir, name)))
	case ProcSymlink:
		dir, name, ok := dirop(d)
		if !ok {
			return oncrpc.AcceptGarbageArgs
		}
		target, err := d.String(MaxPath)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		if _, err := decodeSattr(d); err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		_, serr := s.fs.Symlink(dir, name, target)
		e.Uint32(statusOf(serr))
	case ProcReaddir:
		dir, err := decodeFH(d)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		cookieB, err := d.OpaqueFixed(CookieSize)
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		count, err := d.Uint32()
		if err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		cookie := binary.BigEndian.Uint32(cookieB)
		ents, err := s.fs.ReadDir(dir)
		if st := statusOf(err); st != OK {
			e.Uint32(st)
			return oncrpc.AcceptSuccess
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		e.Uint32(OK)
		budget := int(count)
		i := int(cookie)
		for ; i < len(ents); i++ {
			need := 4 + 4 + len(ents[i].Name) + 8 + CookieSize
			if budget < need+8 {
				break
			}
			budget -= need
			e.Bool(true) // value follows
			e.Uint32(uint32(ents[i].Handle))
			e.String(ents[i].Name)
			var cb [CookieSize]byte
			binary.BigEndian.PutUint32(cb[:], uint32(i+1))
			e.OpaqueFixed(cb[:])
		}
		e.Bool(false)          // no more entries in this reply
		e.Bool(i >= len(ents)) // eof
	case ProcStatfs:
		if _, err := decodeFH(d); err != nil {
			return oncrpc.AcceptGarbageArgs
		}
		st, err := s.fs.StatFS()
		if code := statusOf(err); code != OK {
			e.Uint32(code)
			return oncrpc.AcceptSuccess
		}
		e.Uint32(OK)
		e.Uint32(MaxData)                                 // tsize
		e.Uint32(types.BlockSize)                         // bsize
		e.Uint32(uint32(st.TotalBytes / types.BlockSize)) // blocks
		e.Uint32(uint32(st.FreeBytes / types.BlockSize))  // bfree
		e.Uint32(uint32(st.FreeBytes / types.BlockSize))  // bavail
	default:
		return oncrpc.AcceptProcUnavail
	}
	return oncrpc.AcceptSuccess
}

// dirop decodes the (fhandle, name) pair common to directory operations.
func dirop(d *xdr.Decoder) (fsys.Handle, string, bool) {
	h, err := decodeFH(d)
	if err != nil {
		return 0, "", false
	}
	name, err := d.String(MaxName)
	if err != nil {
		return 0, "", false
	}
	return h, name, true
}
