package seglog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"s4/internal/disk"
	"s4/internal/types"
)

// newFaultLog builds a log on a rot-capable FaultDisk.
func newFaultLog(t testing.TB, segBlocks int) (*Log, *disk.FaultDisk) {
	t.Helper()
	dev := disk.NewFault(8 << 20)
	cfg := Config{SegBlocks: segBlocks, CheckpointBlocks: 4}
	if err := Format(dev, cfg); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	return l, dev
}

const sectorsOfBlock = BlockSize / disk.SectorSize

// rotBlock flips bits in every sector of the block at addr.
func rotBlock(dev *disk.FaultDisk, addr BlockAddr) {
	for s := int64(0); s < sectorsOfBlock; s++ {
		dev.RotSector(int64(addr)*sectorsOfBlock+s, 0x5A)
	}
}

// TestVerifiedReadDetectsRot seals a segment, rots one of its blocks on
// media, and checks the read fails with the typed CorruptError carrying
// the damage coordinates — and that the segment is quarantined so the
// allocator will never hand it out again.
func TestVerifiedReadDetectsRot(t *testing.T) {
	l, dev := newFaultLog(t, 8)
	payload := l.PayloadBlocks()
	addrs := make([]BlockAddr, 0, 2*payload)
	for i := 0; i < 2*payload; i++ {
		a, err := l.Append(KindData, 7, uint64(i), types.Timestamp(i+1),
			bytes.Repeat([]byte{byte(i + 1)}, BlockSize))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Drop the retained flush image so repair cannot mask detection.
	l.mu.Lock()
	l.flushBufSeg = -1
	l.mu.Unlock()

	victim := addrs[1] // settled in the first (sealed) segment
	rotBlock(dev, victim)
	buf := make([]byte, BlockSize)
	err := l.Read(victim, buf)
	var ce *types.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("read of rotted block: %v, want CorruptError", err)
	}
	if !errors.Is(err, types.ErrCorrupt) {
		t.Fatal("CorruptError does not unwrap to ErrCorrupt")
	}
	seg := l.SegOf(victim)
	if ce.Segment != seg || ce.Block != uint64(victim) {
		t.Fatalf("error coordinates %+v do not name seg %d block %d", ce, seg, victim)
	}
	if !l.IsQuarantined(seg) {
		t.Fatal("detection did not quarantine the segment")
	}
	det, _, quar := l.IntegrityStats()
	if det == 0 || quar == 0 {
		t.Fatalf("integrity stats not advanced: det=%d quar=%d", det, quar)
	}

	// Clean blocks in the same segment still read fine.
	if err := l.Read(addrs[0], buf); err != nil {
		t.Fatalf("clean block in quarantined segment: %v", err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{1}, BlockSize)) {
		t.Fatal("clean block content damaged")
	}

	// VerifySegment counts the rot without failing.
	checked, corrupt, err := l.VerifySegment(seg)
	if err != nil {
		t.Fatalf("VerifySegment: %v", err)
	}
	if checked == 0 || corrupt == 0 {
		t.Fatalf("VerifySegment missed the rot: checked=%d corrupt=%d", checked, corrupt)
	}
}

// TestVerifiedReadRepairsFromFlushBuffer rots a block of the segment
// whose sealed image the double-buffer still retains: the read must
// return the correct bytes, count a repair, and rewrite the media so
// the next read is clean without the buffer's help.
func TestVerifiedReadRepairsFromFlushBuffer(t *testing.T) {
	l, dev := newFaultLog(t, 8)
	payload := l.PayloadBlocks()
	addrs := make([]BlockAddr, 0, payload)
	for i := 0; i < payload; i++ {
		a, err := l.Append(KindData, 7, uint64(i), types.Timestamp(i+1),
			bytes.Repeat([]byte{byte(i + 1)}, BlockSize))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	victim := addrs[2]
	seg := l.SegOf(victim)
	l.mu.Lock()
	retained := l.flushBufSeg
	l.mu.Unlock()
	if retained != seg {
		t.Fatalf("flush buffer retains segment %d, want %d; seal path changed?", retained, seg)
	}

	rotBlock(dev, victim)
	buf := make([]byte, BlockSize)
	if err := l.Read(victim, buf); err != nil {
		t.Fatalf("read with redundant copy available: %v", err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{3}, BlockSize)) {
		t.Fatal("repaired read returned wrong bytes")
	}
	det, rep, quar := l.IntegrityStats()
	if rep != 1 || quar != 0 {
		t.Fatalf("want exactly one repair and no quarantine, got det=%d rep=%d quar=%d", det, rep, quar)
	}
	if l.IsQuarantined(seg) {
		t.Fatal("repaired segment must not be quarantined")
	}

	// The in-place rewrite replaced the rotting sectors (FaultDisk
	// clears rot on overwrite), so the media itself is healed: read the
	// raw device and verify.
	raw := make([]byte, BlockSize)
	if err := dev.ReadSectors(int64(victim)*sectorsOfBlock, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf) {
		t.Fatal("repair did not rewrite the media copy")
	}
}

// TestV1ImageStillOpens formats a v1-layout image (no checksum table)
// and checks a v2 log opens and reads it unverified — the versioned
// format contract.
func TestV1ImageStillOpens(t *testing.T) {
	l, dev := newFaultLog(t, 8)
	a, err := l.Append(KindData, 7, 1, 1, bytes.Repeat([]byte{0xAB}, BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the sealed summary in the v1 layout (no Sum column), as a
	// pre-checksum image would hold.
	seg := l.SegOf(a)
	sum, ok, err := l.ReadSummary(seg)
	if err != nil || !ok {
		t.Fatalf("summary: %v ok=%v", err, ok)
	}
	sb := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(sb[0:], summaryMagic)
	binary.LittleEndian.PutUint64(sb[4:], sum.Seq)
	binary.LittleEndian.PutUint32(sb[12:], uint32(len(sum.Entries)))
	off := summaryHeaderSize
	for _, e := range sum.Entries {
		sb[off] = byte(e.Kind)
		binary.LittleEndian.PutUint64(sb[off+1:], uint64(e.Obj))
		binary.LittleEndian.PutUint64(sb[off+9:], e.Key)
		binary.LittleEndian.PutUint64(sb[off+17:], uint64(e.Time))
		binary.LittleEndian.PutUint32(sb[off+25:], e.Len)
		off += summaryEntrySizeV1
	}
	binary.LittleEndian.PutUint32(sb[16:], crc32.ChecksumIEEE(sb[summaryHeaderSize:]))
	if err := writeBlocks(dev, l.segBase(seg), sb); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dev)
	if err != nil {
		t.Fatalf("open with v1 summary: %v", err)
	}
	sum2, ok, err := l2.ReadSummary(seg)
	if err != nil || !ok || sum2.Sums {
		t.Fatalf("v1 summary decode: err=%v ok=%v sums=%v", err, ok, sum2.Sums)
	}
	// Reads pass unverified — and rot therefore goes undetected, which
	// is exactly the pre-checksum behavior the version gate preserves.
	rotBlock(dev, a)
	buf := make([]byte, BlockSize)
	if err := l2.Read(a, buf); err != nil {
		t.Fatalf("unverified v1 read: %v", err)
	}
}

// FuzzSegSummaryChecksums feeds hostile bytes to the summary codec:
// it must never panic, anything it accepts must satisfy the format's
// own bounds, and a valid v2 encoding mutated anywhere but its CRC
// slack must be rejected or decode to self-consistent entries.
func FuzzSegSummaryChecksums(f *testing.F) {
	// Seeds: a genuine sealed v2 summary, a hand-built v1 one, and junk.
	l, _ := newFaultLog(f, 8)
	for i := 0; i < l.PayloadBlocks(); i++ {
		if _, err := l.Append(KindData, 9, uint64(i), types.Timestamp(i+1),
			bytes.Repeat([]byte{byte(i)}, BlockSize)); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		f.Fatal(err)
	}
	sb := make([]byte, BlockSize)
	if err := readBlocks(l.dev, l.segBase(0), sb); err != nil {
		f.Fatal(err)
	}
	f.Add(sb)
	f.Add(make([]byte, BlockSize))
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x47, 0x34, 0x53})
	short := append([]byte(nil), sb[:40]...)
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, ok, err := decodeSummary(data)
		if err != nil {
			t.Fatalf("decodeSummary returned an error on hostile bytes: %v", err)
		}
		if !ok {
			return
		}
		// Accepted: the self-described shape must fit the input.
		esz := summaryEntrySizeV1
		if s.Sums {
			esz = summaryEntrySize
		}
		if summaryHeaderSize+len(s.Entries)*esz > len(data) {
			t.Fatalf("accepted summary of %d entries overruns %d input bytes", len(s.Entries), len(data))
		}
		if len(s.Entries) > (BlockSize-summaryHeaderSize)/summaryEntrySizeV1 {
			t.Fatalf("accepted summary with impossible entry count %d", len(s.Entries))
		}
	})
}
