package seglog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

func newLog(t *testing.T, capacity int64) (*Log, *disk.Disk) {
	t.Helper()
	d := disk.New(disk.SmallDisk(capacity), vclock.NewVirtual())
	cfg := Config{SegBlocks: 16, CheckpointBlocks: 4}
	if err := Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	l, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	return l, d
}

func TestFormatOpen(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	if l.Config().SegBlocks != 16 {
		t.Fatalf("config = %+v", l.Config())
	}
	if l.NumSegments() < 4 {
		t.Fatalf("segments = %d", l.NumSegments())
	}
	if l.FreeSegments() != l.NumSegments() {
		t.Fatal("fresh log must have all segments free")
	}
}

func TestFormatRejectsBadConfig(t *testing.T) {
	d := disk.New(disk.SmallDisk(8<<20), nil)
	if err := Format(d, Config{SegBlocks: 2, CheckpointBlocks: 4}); err == nil {
		t.Fatal("tiny SegBlocks accepted")
	}
	if err := Format(d, Config{SegBlocks: 100000, CheckpointBlocks: 4}); err == nil {
		t.Fatal("oversized SegBlocks accepted")
	}
	tiny := disk.New(disk.SmallDisk(64<<10), nil)
	if err := Format(tiny, Config{SegBlocks: 16, CheckpointBlocks: 4}); err == nil {
		t.Fatal("too-small device accepted")
	}
}

func TestOpenRejectsUnformatted(t *testing.T) {
	d := disk.New(disk.SmallDisk(8<<20), nil)
	if _, err := Open(d); !errors.Is(err, types.ErrCorrupt) {
		t.Fatalf("open of unformatted device: %v", err)
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	data := bytes.Repeat([]byte{0xAB}, 1000)
	addr, err := l.Append(KindData, 42, 7, 100, data)
	if err != nil {
		t.Fatal(err)
	}
	if addr == NilAddr {
		t.Fatal("nil address returned")
	}
	got := make([]byte, 1000)
	if err := l.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("staged read mismatch")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("durable read mismatch")
	}
}

func TestAppendValidation(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	if _, err := l.Append(KindData, 1, 0, 0, nil); err == nil {
		t.Fatal("empty append accepted")
	}
	if _, err := l.Append(KindData, 1, 0, 0, make([]byte, BlockSize+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
}

func TestSegmentRollover(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	payload := l.PayloadBlocks()
	addrs := make([]BlockAddr, 0, payload*3)
	for i := 0; i < payload*3; i++ {
		a, err := l.Append(KindData, 1, uint64(i), types.Timestamp(i), []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if l.FreeSegments() > l.NumSegments()-3 {
		t.Fatalf("expected at least 3 segments consumed, free=%d of %d", l.FreeSegments(), l.NumSegments())
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		got := make([]byte, 1)
		if err := l.Read(a, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("block %d = %#x, want %#x", i, got[0], byte(i))
		}
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	for i := 0; i < l.PayloadBlocks(); i++ {
		if _, err := l.Append(KindJournal, types.ObjectID(i+10), uint64(i*3), types.Timestamp(1000+i), []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Segment sealed; its summary must decode from disk.
	sum, ok, err := l.ReadSummary(0)
	if err != nil || !ok {
		t.Fatalf("summary not readable: ok=%v err=%v", ok, err)
	}
	if len(sum.Entries) != l.PayloadBlocks() {
		t.Fatalf("entries = %d, want %d", len(sum.Entries), l.PayloadBlocks())
	}
	for i, e := range sum.Entries {
		want := SummaryEntry{Kind: KindJournal, Obj: types.ObjectID(i + 10), Key: uint64(i * 3), Time: types.Timestamp(1000 + i), Len: 3}
		if e.Sum == 0 {
			t.Fatalf("entry %d carries no block checksum", i)
		}
		want.Sum = e.Sum
		if e != want {
			t.Fatalf("entry %d = %+v, want %+v", i, e, want)
		}
	}
	if !sum.Sums {
		t.Fatal("sealed v2 summary must report checksums present")
	}
}

func TestPartialSyncThenMoreAppends(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	a1, _ := l.Append(KindData, 1, 0, 1, []byte("one"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	a2, _ := l.Append(KindData, 1, 1, 2, []byte("two"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Both blocks in the same (still open) segment.
	if l.SegOf(a1) != l.SegOf(a2) {
		t.Fatal("partial sync must not seal the segment")
	}
	// Each partial flush retires its snapshot slot with a pad entry so
	// later appends cannot overwrite the last durable summary.
	sum, ok, err := l.ReadSummary(l.SegOf(a1))
	if err != nil || !ok {
		t.Fatalf("summary after partial syncs: ok=%v err=%v", ok, err)
	}
	var kinds []Kind
	for _, e := range sum.Entries {
		kinds = append(kinds, e.Kind)
	}
	want := []Kind{KindData, KindPad, KindData, KindPad}
	if len(kinds) != len(want) {
		t.Fatalf("summary entries = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("summary entries = %v, want %v", kinds, want)
		}
	}
	// Redundant sync is a no-op.
	_, before := l.Stats()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, after := l.Stats(); after != before {
		t.Fatal("no-op sync wrote to disk")
	}
}

func TestFreeAndReuseSegment(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	for i := 0; i < l.PayloadBlocks(); i++ { // fill & seal segment 0
		if _, err := l.Append(KindData, 1, uint64(i), 0, []byte{0xEE}); err != nil {
			t.Fatal(err)
		}
	}
	free := l.FreeSegments()
	if err := l.FreeSegment(0); err != nil {
		t.Fatal(err)
	}
	if l.FreeSegments() != free+1 {
		t.Fatal("free count did not increase")
	}
	if err := l.FreeSegment(0); err != nil {
		t.Fatal(err) // idempotent
	}
	if l.FreeSegments() != free+1 {
		t.Fatal("double free counted twice")
	}
}

func TestCannotFreeOpenSegment(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	a, _ := l.Append(KindData, 1, 0, 0, []byte{1})
	if err := l.FreeSegment(l.SegOf(a)); err == nil {
		t.Fatal("freed the open segment")
	}
}

func TestDeviceFullAfterAllSegmentsUsed(t *testing.T) {
	l, _ := newLog(t, 1<<20) // tiny device
	var err error
	for i := 0; i < int(l.NumSegments())*l.PayloadBlocks()+1; i++ {
		_, err = l.Append(KindData, 1, uint64(i), 0, []byte{1})
		if err != nil {
			break
		}
	}
	if !errors.Is(err, types.ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	if _, _, _, ok, err := l.ReadCheckpoint(); err != nil || ok {
		t.Fatalf("fresh device must have no checkpoint: ok=%v err=%v", ok, err)
	}
	blob1 := bytes.Repeat([]byte("alpha"), 100)
	if err := l.WriteCheckpoint(blob1, nil); err != nil {
		t.Fatal(err)
	}
	blob2 := bytes.Repeat([]byte("beta"), 2000) // multi-block
	if err := l.WriteCheckpoint(blob2, nil); err != nil {
		t.Fatal(err)
	}
	got, idx, _, ok, err := l.ReadCheckpoint()
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if !bytes.Equal(got, blob2) {
		t.Fatal("checkpoint must return the newest blob")
	}
	if idx != nil {
		t.Fatal("no index was written; read must return nil")
	}
	// Oversized checkpoint rejected.
	if err := l.WriteCheckpoint(make([]byte, l.Config().CheckpointBlocks*BlockSize), nil); !errors.Is(err, types.ErrTooLarge) {
		t.Fatalf("oversized checkpoint: %v", err)
	}
	if err := l.WriteCheckpoint(make([]byte, l.CheckpointCapacity()), []byte{1}); !errors.Is(err, types.ErrTooLarge) {
		t.Fatalf("oversized checkpoint+index: %v", err)
	}
}

func TestCheckpointIndexRoundTrip(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	state := bytes.Repeat([]byte("state"), 300)
	index := bytes.Repeat([]byte("index"), 700) // crosses a block boundary
	if err := l.WriteCheckpoint(state, index); err != nil {
		t.Fatal(err)
	}
	gotState, gotIndex, _, ok, err := l.ReadCheckpoint()
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if !bytes.Equal(gotState, state) || !bytes.Equal(gotIndex, index) {
		t.Fatal("state/index round trip mismatch")
	}
}

// TestCheckpointIndexTornDegradesToNil tears a checkpoint write inside
// the index region: the state blob (which lands first in the slot)
// survives its CRC, so the slot must stay valid with index == nil — the
// degrade-to-full-replay contract, never a rejected anchor.
func TestCheckpointIndexTornDegradesToNil(t *testing.T) {
	d := disk.NewFault(8 << 20)
	if err := Format(d, Config{SegBlocks: 16, CheckpointBlocks: 4}); err != nil {
		t.Fatal(err)
	}
	l, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	state := bytes.Repeat([]byte{0xAA}, 200)
	index := bytes.Repeat([]byte{0xBB}, 3000)
	// The slot write is one WriteSectors call; keep only the first block
	// (8 sectors) so the header+state land but the index tail is lost.
	d.TearAfter(0, (cpHeaderSize+len(state))/disk.SectorSize+1)
	if err := l.WriteCheckpoint(state, index); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	gotState, gotIndex, _, ok, err := l2.ReadCheckpoint()
	if err != nil || !ok {
		t.Fatalf("torn index must not invalidate the slot: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(gotState, state) {
		t.Fatal("state blob corrupted")
	}
	if gotIndex != nil {
		t.Fatal("torn index must read back as nil")
	}
}

// TestPartialFlushCrashKeepsPriorSync crashes the device at every
// write boundary of a run of append+Sync rounds and checks that the
// recovered summaries still cover everything the last completed Sync
// acknowledged. This is the regression test for the partial-flush
// ordering bug: before snapshot slots were retired with pad entries,
// the first append after a sync overwrote the only durable summary,
// and a crash before the next snapshot landed lost every acked entry
// of the open segment.
func TestPartialFlushCrashKeepsPriorSync(t *testing.T) {
	fd := disk.NewFault(8 << 20)
	if err := Format(fd, Config{SegBlocks: 16, CheckpointBlocks: 4}); err != nil {
		t.Fatal(err)
	}
	l, err := Open(fd)
	if err != nil {
		t.Fatal(err)
	}
	fd.StartRecording()

	type mark struct{ writes, acked int }
	var marks []mark
	appended := 0
	for r := 0; r < 12; r++ { // spans several segments (pads included)
		for i := 0; i < 2; i++ {
			data := bytes.Repeat([]byte{byte(appended + 1)}, 100)
			if _, err := l.Append(KindData, 1, uint64(appended), types.Timestamp(appended), data); err != nil {
				t.Fatal(err)
			}
			appended++
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		marks = append(marks, mark{writes: fd.Writes(), acked: appended})
	}

	total := fd.Writes()
	for k := 0; k <= total; k++ {
		img, err := fd.ImageAt(k)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := Open(img)
		if err != nil {
			t.Fatalf("crash@%d: reopen: %v", k, err)
		}
		seen := make(map[uint64]bool)
		buf := make([]byte, BlockSize)
		for seg := int64(0); seg < lr.NumSegments(); seg++ {
			sum, ok, err := lr.ReadSummary(seg)
			if err != nil || !ok {
				continue
			}
			for i, e := range sum.Entries {
				if e.Kind != KindData {
					continue
				}
				if err := lr.Read(lr.EntryAt(seg, i), buf); err != nil {
					t.Fatalf("crash@%d: data entry %d unreadable: %v", k, e.Key, err)
				}
				if e.Len != 100 || buf[0] != byte(e.Key+1) || buf[99] != byte(e.Key+1) {
					t.Fatalf("crash@%d: data entry %d corrupt (len %d, byte %#x)", k, e.Key, e.Len, buf[0])
				}
				seen[e.Key] = true
			}
		}
		want := 0
		for _, m := range marks {
			if m.writes <= k {
				want = m.acked
			}
		}
		for key := 0; key < want; key++ {
			if !seen[uint64(key)] {
				t.Fatalf("crash@%d: acked entry %d missing from recovered summaries (%d acked, %d recovered)",
					k, key, want, len(seen))
			}
		}
	}
}

func TestCheckpointTornSlotFallsBack(t *testing.T) {
	// A crash can tear the checkpoint write mid-transfer. The torn slot
	// fails its CRC and recovery must fall back to the older slot, not
	// error out — that is what the alternating slots are for.
	d := disk.NewFault(8 << 20)
	if err := Format(d, Config{SegBlocks: 16, CheckpointBlocks: 4}); err != nil {
		t.Fatal(err)
	}
	l, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte("old"), 500)
	if err := l.WriteCheckpoint(old, nil); err != nil {
		t.Fatal(err)
	}
	// Tear the very next write (the second checkpoint) after one sector.
	d.TearAfter(0, 1)
	if err := l.WriteCheckpoint(bytes.Repeat([]byte("new"), 500), nil); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, ok, err := l2.ReadCheckpoint()
	if err != nil || !ok {
		t.Fatalf("recovery after torn checkpoint: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("torn checkpoint must fall back to the surviving slot")
	}
	// Both slots torn: no checkpoint, but still no error.
	d.TearAfter(0, 1)
	if err := l2.WriteCheckpoint(bytes.Repeat([]byte("x"), 500), nil); err != nil {
		t.Fatal(err)
	}
	d.TearAfter(0, 1)
	if err := l2.WriteCheckpoint(bytes.Repeat([]byte("y"), 500), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok, err := l2.ReadCheckpoint(); err != nil || ok {
		t.Fatalf("doubly-torn checkpoint: ok=%v err=%v", ok, err)
	}
}

func TestRecoveryScanFrom(t *testing.T) {
	d := disk.New(disk.SmallDisk(8<<20), vclock.NewVirtual())
	if err := Format(d, Config{SegBlocks: 16, CheckpointBlocks: 4}); err != nil {
		t.Fatal(err)
	}
	l, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	// Write one sealed segment, checkpoint, then one more sealed segment.
	for i := 0; i < l.PayloadBlocks(); i++ {
		if _, err := l.Append(KindData, 1, uint64(i), 0, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint([]byte("state"), nil); err != nil {
		t.Fatal(err)
	}
	cpSeq := l.Seq()
	for i := 0; i < l.PayloadBlocks(); i++ {
		if _, err := l.Append(KindData, 2, uint64(i), 0, []byte{2}); err != nil {
			t.Fatal(err)
		}
	}

	// "Crash": reopen from the same device.
	l2, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	blob, _, seq, ok, err := l2.ReadCheckpoint()
	if err != nil || !ok || string(blob) != "state" || seq != cpSeq {
		t.Fatalf("checkpoint after reopen: %q seq=%d ok=%v err=%v", blob, seq, ok, err)
	}
	var post []types.ObjectID
	err = l2.ScanFrom(seq, func(seg int64, sum Summary) error {
		for _, e := range sum.Entries {
			post = append(post, e.Obj)
		}
		l2.MarkAllocated(seg)
		l2.SetSeq(sum.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(post) != l.PayloadBlocks() {
		t.Fatalf("replayed %d entries, want %d", len(post), l.PayloadBlocks())
	}
	for _, o := range post {
		if o != 2 {
			t.Fatalf("replayed pre-checkpoint entry for %v", o)
		}
	}
}

func TestScanOrderIsSeqOrder(t *testing.T) {
	l, _ := newLog(t, 8<<20)
	// Seal three segments.
	for s := 0; s < 3; s++ {
		for i := 0; i < l.PayloadBlocks(); i++ {
			if _, err := l.Append(KindData, types.ObjectID(s+1), 0, 0, []byte{1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var seqs []uint64
	if err := l.ScanFrom(0, func(seg int64, sum Summary) error {
		seqs = append(seqs, sum.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("scanned %d segments, want 3", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatal("scan not in sequence order")
		}
	}
}

func TestSequentialWritePattern(t *testing.T) {
	// The whole point of log structure: many small appends must produce
	// few, large disk writes.
	clk := vclock.NewVirtual()
	d := disk.New(disk.SmallDisk(8<<20), clk)
	if err := Format(d, Config{SegBlocks: 64, CheckpointBlocks: 4}); err != nil {
		t.Fatal(err)
	}
	l, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	n := 63 * 4 // four full segments worth of appends
	for i := 0; i < n; i++ {
		if _, err := l.Append(KindData, 1, uint64(i), 0, make([]byte, BlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Writes > 8 { // 2 disk writes per sealed segment (summary + payload)
		t.Fatalf("%d appends caused %d disk writes; log must batch", n, s.Writes)
	}
}

func TestPropertyRandomAppendsReadBack(t *testing.T) {
	l, _ := newLog(t, 16<<20)
	rnd := rand.New(rand.NewSource(7))
	type rec struct {
		addr BlockAddr
		data []byte
	}
	var recs []rec
	f := func(sz uint16, syncIt bool) bool {
		n := int(sz)%BlockSize + 1
		data := make([]byte, n)
		rnd.Read(data)
		addr, err := l.Append(KindData, 9, uint64(len(recs)), 0, data)
		if err != nil {
			return false
		}
		recs = append(recs, rec{addr, data})
		if syncIt {
			if err := l.Sync(); err != nil {
				return false
			}
		}
		// Read back a random earlier record.
		r := recs[rnd.Intn(len(recs))]
		got := make([]byte, len(r.data))
		if err := l.Read(r.addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, r.data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData: "data", KindInode: "inode", KindJournal: "journal",
		KindImap: "imap", KindAudit: "audit", KindDelta: "delta",
		Kind(99): fmt.Sprintf("kind(%d)", 99),
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestReadRun covers the vectored read path in every staging state:
// run wholly in the open segment's buffer, run settled on the device
// (one I/O, counted), and the argument errors — empty run, short
// buffer, summary address, and a run spanning segments.
func TestReadRun(t *testing.T) {
	l, d := newLog(t, 8<<20)
	const n = 5
	blocks := make([][]byte, n)
	addrs := make([]BlockAddr, n)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte(0x10 + i)}, BlockSize)
		a, err := l.Append(KindData, 1, uint64(i+1), 100, blocks[i])
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	for i := 1; i < n; i++ {
		if addrs[i] != addrs[0]+BlockAddr(i) {
			t.Fatalf("appends not contiguous: %v", addrs)
		}
	}
	check := func(lg *Log, label string) {
		t.Helper()
		buf := make([]byte, n*BlockSize)
		if err := lg.ReadRun(addrs[0], n, buf); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for i := range blocks {
			if !bytes.Equal(buf[i*BlockSize:(i+1)*BlockSize], blocks[i]) {
				t.Fatalf("%s: block %d content mismatch", label, i)
			}
		}
	}
	check(l, "staged")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	check(l, "synced")

	// A freshly opened log has no staging state: the run must come off
	// the device in exactly one (vectored) I/O.
	l2, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	dev0, vec0 := l2.ReadStats()
	check(l2, "durable")
	dev1, vec1 := l2.ReadStats()
	if dev1-dev0 != 1 || vec1-vec0 != 1 {
		t.Fatalf("durable run cost %d device reads (%d vectored), want 1 (1)",
			dev1-dev0, vec1-vec0)
	}

	buf := make([]byte, n*BlockSize)
	if err := l2.ReadRun(addrs[0], 0, buf); err == nil {
		t.Fatal("empty run accepted")
	}
	if err := l2.ReadRun(addrs[0], 2, buf[:BlockSize]); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := l2.ReadRun(addrs[0]-1, 1, buf); err == nil {
		t.Fatal("summary-block address accepted")
	}
	span := l2.Config().SegBlocks
	if err := l2.ReadRun(addrs[0], span, make([]byte, span*BlockSize)); err == nil {
		t.Fatal("cross-segment run accepted")
	}
}
