// Package seglog implements the LFS-style segment log that underlies the
// S4 drive (OSDI '00, §4.2.1).
//
// Because data in the history pool must never be overwritten, all
// writes — data blocks, inode checkpoints, journal sectors, object-map
// checkpoints, audit blocks — append to a log divided into fixed-size
// segments. A segment is staged in memory and written with one large
// sequential I/O, which is what makes comprehensive versioning cheap:
// old versions simply stay where they are.
//
// On-disk layout (in 4KB blocks):
//
//	block 0                 superblock
//	blocks 1 .. 2*cp        two alternating object-map checkpoint slots
//	blocks 1+2*cp ..        segments: [summary block][payload blocks...]
//
// Each segment's summary block identifies every payload block (kind,
// owning object, key, timestamp, length, and — format v2 — a CRC32 of
// the block's full on-disk contents) and carries a monotonically
// increasing write sequence number; crash recovery replays summaries
// with sequence numbers newer than the last checkpoint.
//
// # Verified reads (DESIGN.md §15)
//
// Every device read of a payload block is checked against the checksum
// its segment summary recorded at flush time. A mismatch is first
// retried against the retained flush double-buffer (which holds the
// last sealed segment's complete image); an unrepairable block fails
// the read with a *types.CorruptError and quarantines its segment so
// the allocator never reuses it. Blocks still staged in memory are
// served from the staging buffers and need no verification. Images
// formatted before v2 carry no checksums and open (and read) exactly
// as before — verification simply has nothing to check.
package seglog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"s4/internal/disk"
	"s4/internal/types"
)

// BlockSize is the log block size; it matches the drive data block size.
const BlockSize = types.BlockSize

const sectorsPerBlock = BlockSize / disk.SectorSize

// BlockAddr is the absolute block number of a log block on the device.
// NilAddr (0) never addresses a valid payload block because block 0
// holds the superblock.
type BlockAddr uint64

// NilAddr is the null block address.
const NilAddr BlockAddr = 0

// Kind tags what a payload block holds, so recovery and the cleaner can
// interpret segments without consulting higher-level state.
type Kind uint8

// Payload block kinds.
const (
	KindInvalid Kind = iota
	KindData         // object data block
	KindInode        // inode checkpoint
	KindJournal      // packed journal sector
	KindImap         // object-map page (roll-forward aid)
	KindAudit        // audit-log block (drive-owned, unversioned)
	KindDelta        // delta-compressed old version data
	KindPad          // dead slot reserving a partial-flush summary snapshot
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindInode:
		return "inode"
	case KindJournal:
		return "journal"
	case KindImap:
		return "imap"
	case KindAudit:
		return "audit"
	case KindDelta:
		return "delta"
	case KindPad:
		return "pad"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// SummaryEntry describes one payload block of a segment.
type SummaryEntry struct {
	Kind Kind
	Obj  types.ObjectID
	// Key is kind-specific: the file block index for data blocks, the
	// version for inode checkpoints, zero otherwise.
	Key  uint64
	Time types.Timestamp
	// Len is the number of meaningful bytes in the block (≤ BlockSize).
	Len uint32
	// Sum is the CRC32 (IEEE) of the block's full BlockSize on-disk
	// contents, computed at flush time (format v2 summaries only). Zero
	// means "no checksum": pad slots (whose on-disk bytes are a retired
	// summary snapshot, not the staged zeros), journal blocks in partial
	// snapshots (rewritten in place until the seal; their own per-sector
	// CRCs cover them — see encodeSummaryLocked), entries decoded from
	// v1 summaries, and the 1-in-2^32 block whose real CRC is zero all
	// skip verification.
	Sum uint32
}

const (
	summaryEntrySizeV1 = 1 + 8 + 8 + 8 + 4     // kind, obj, key, time, len
	summaryEntrySize   = 1 + 8 + 8 + 8 + 4 + 4 // v2: + per-block CRC32
)

// Summary is a decoded segment summary.
type Summary struct {
	Seq     uint64
	Entries []SummaryEntry
	// Sums reports whether the entries carry block checksums (format v2
	// summary). Without it every Sum is zero and reads go unverified.
	Sums bool
}

// Config holds format-time parameters.
type Config struct {
	// SegBlocks is blocks per segment including the summary block.
	SegBlocks int
	// CheckpointBlocks is the size of each of the two checkpoint slots.
	CheckpointBlocks int
}

// DefaultConfig returns the parameters used by the paper-scale drive:
// 256KB segments and 4MB checkpoint slots.
func DefaultConfig() Config {
	return Config{SegBlocks: 64, CheckpointBlocks: 1024}
}

const (
	superMagic    = 0x53344C47 // "S4LG"
	summaryMagic  = 0x53344753 // "S4GS" — v1 summary, no block checksums
	summaryMagic2 = 0x53344732 // "S4G2" — v2 summary with per-block CRCs
	cpMagic       = 0x53344350 // "S4CP"
	// formatVer is what Format stamps on new images. Open also accepts
	// version 1 (pre-checksum) images: the two summary layouts are
	// self-describing by magic, so a v1 image reopened by current code
	// keeps its old summaries and gains checksummed ones as segments are
	// rewritten.
	formatVer = 2
)

// Log is an open segment log. Methods are safe for concurrent use.
type Log struct {
	dev disk.Device
	cfg Config

	segStart  int64 // first block of segment area
	nSegments int64

	mu       sync.Mutex
	seq      uint64 // last issued segment write sequence
	free     []bool // per-segment free flag
	nFree    int64
	curSeg   int64  // open segment (-1 if none)
	buf      []byte // staged open segment (SegBlocks * BlockSize)
	used     int    // payload blocks staged (excluding summary)
	dirty    []bool // per payload block: staged but not yet on disk
	nDirty   int
	entries  []SummaryEntry
	cpSlot   int   // next checkpoint slot to write (0 or 1)
	appends  int64 // stats: blocks appended
	segWrite int64 // stats: segment (full or partial) writes

	// Decoupled-flush state (DESIGN.md §11). While flushing is true one
	// flush's device writes are in flight against flushBuf — a snapshot
	// of the summary and dirty runs (partial flush) or the whole sealed
	// segment (the buffers are swapped) — and appends keep staging into
	// buf. Only one flush runs at a time; flushCond gates the next.
	flushBuf    []byte
	flushing    bool
	flushCond   *sync.Cond
	flushSeg    int64 // segment the in-flight flush belongs to
	flushUsed   int   // payload blocks valid in flushBuf
	ioErr       error // first device-write error; latches the log failed
	vecAppends  int64 // stats: multi-block vectored append batches
	flushStalls int64 // stats: callers that waited out an in-flight flush

	// flushBufSeg names the sealed segment whose complete image flushBuf
	// still holds (-1 if none): a seal swaps the staging buffers, so the
	// image survives until the next seal swaps them back or a partial
	// flush overwrites parts of it. It is the read path's redundant copy
	// for repairing checksum-failed device blocks in place.
	flushBufSeg int64

	// Integrity state (DESIGN.md §15). sums lazily caches each settled
	// segment's checksum table (payload index -> expected CRC); a present
	// nil entry means "known: no checksums" so v1 segments don't rescan.
	// sumGen invalidates in-flight loads that raced a segment reuse.
	// quar marks segments with an unrepairable block: the allocator never
	// hands them out again, even after the cleaner frees them.
	sums   map[int64][]uint32
	sumGen uint64
	quar   map[int64]bool

	// Read-path counters. Atomics, not mu-guarded: Read/ReadRun hit the
	// device after dropping mu and must not re-acquire it just to count.
	devReads int64 // stats: device read I/Os issued (any size)
	vecReads int64 // stats: multi-block coalesced device reads
	// Integrity counters, same discipline.
	corruptDetected int64 // checksum failures surfaced as CorruptError
	corruptRepaired int64 // checksum failures healed from a redundant copy

	// legacyV1 is set when a v1 image's SegBlocks exceeds what the wider
	// v2 entries fit in one summary block; such logs keep writing v1
	// (checksum-free) summaries so the layout stays self-consistent.
	legacyV1 bool
}

// Format initializes dev with an empty log. Existing contents are
// ignored; the superblock is rewritten.
func Format(dev disk.Device, cfg Config) error {
	if cfg.SegBlocks < 8 || cfg.SegBlocks > maxSegBlocks() {
		return fmt.Errorf("seglog: SegBlocks %d out of range: %w", cfg.SegBlocks, types.ErrInval)
	}
	if cfg.CheckpointBlocks < 1 {
		return fmt.Errorf("seglog: CheckpointBlocks must be positive: %w", types.ErrInval)
	}
	totalBlocks := dev.Capacity() / BlockSize
	segStart := int64(1 + 2*cfg.CheckpointBlocks)
	nSeg := (totalBlocks - segStart) / int64(cfg.SegBlocks)
	if nSeg < 4 {
		return fmt.Errorf("seglog: device too small (%d segments): %w", nSeg, types.ErrInval)
	}
	sb := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(sb[0:], superMagic)
	binary.LittleEndian.PutUint32(sb[4:], formatVer)
	binary.LittleEndian.PutUint32(sb[8:], uint32(cfg.SegBlocks))
	binary.LittleEndian.PutUint32(sb[12:], uint32(cfg.CheckpointBlocks))
	binary.LittleEndian.PutUint64(sb[16:], uint64(nSeg))
	binary.LittleEndian.PutUint32(sb[28:], crc32.ChecksumIEEE(sb[:28]))
	if err := writeBlocks(dev, 0, sb); err != nil {
		return err
	}
	// Invalidate both checkpoint slots.
	empty := make([]byte, BlockSize)
	for slot := 0; slot < 2; slot++ {
		if err := writeBlocks(dev, 1+int64(slot*cfg.CheckpointBlocks), empty); err != nil {
			return err
		}
	}
	if s, ok := dev.(disk.Syncer); ok {
		return s.Sync()
	}
	return nil
}

func maxSegBlocks() int {
	return (BlockSize - summaryHeaderSize) / summaryEntrySize
}

const summaryHeaderSize = 4 + 8 + 4 + 4 // magic, seq, count, crc

// Open attaches to a formatted device. It performs no replay; the owner
// (the drive) restores free-map/sequence state from its checkpoint and
// calls ScanFrom to roll forward.
func Open(dev disk.Device) (*Log, error) {
	sb := make([]byte, BlockSize)
	if err := readBlocks(dev, 0, sb); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(sb[0:]) != superMagic {
		return nil, fmt.Errorf("seglog: bad superblock magic: %w", types.ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(sb[28:]) != crc32.ChecksumIEEE(sb[:28]) {
		return nil, fmt.Errorf("seglog: superblock checksum mismatch: %w", types.ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(sb[4:]); v != 1 && v != formatVer {
		return nil, fmt.Errorf("seglog: format version %d unsupported: %w", v, types.ErrCorrupt)
	}
	cfg := Config{
		SegBlocks:        int(binary.LittleEndian.Uint32(sb[8:])),
		CheckpointBlocks: int(binary.LittleEndian.Uint32(sb[12:])),
	}
	nSeg := int64(binary.LittleEndian.Uint64(sb[16:]))
	l := &Log{
		dev:       dev,
		cfg:       cfg,
		segStart:  int64(1 + 2*cfg.CheckpointBlocks),
		nSegments: nSeg,
		free:      make([]bool, nSeg),
		curSeg:    -1,
		buf:       make([]byte, cfg.SegBlocks*BlockSize),
		flushBuf:  make([]byte, cfg.SegBlocks*BlockSize),
		flushSeg:  -1,
		// A v1 image may have been formatted with more blocks per
		// segment than the wider v2 summary entries can describe; keep
		// writing the layout its segments already use.
		legacyV1:    cfg.SegBlocks > maxSegBlocks(),
		flushBufSeg: -1,
		sums:        make(map[int64][]uint32),
		quar:        make(map[int64]bool),
	}
	l.flushCond = sync.NewCond(&l.mu)
	for i := range l.free {
		l.free[i] = true
	}
	l.nFree = nSeg
	return l, nil
}

// Config returns the format-time parameters.
func (l *Log) Config() Config { return l.cfg }

// NumSegments returns the number of segments on the device.
func (l *Log) NumSegments() int64 { return l.nSegments }

// PayloadBlocks returns the payload capacity of one segment, in blocks.
func (l *Log) PayloadBlocks() int { return l.cfg.SegBlocks - 1 }

// FreeSegments returns how many segments are currently free.
func (l *Log) FreeSegments() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nFree
}

// Seq returns the last issued segment write sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Stats reports append and segment-write counts.
func (l *Log) Stats() (appends, segWrites int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.segWrite
}

// PipeStats reports commit-pipeline counters: multi-block vectored
// append batches, and callers (appenders or syncers) that had to wait
// out an in-flight flush's device writes.
func (l *Log) PipeStats() (vecAppends, flushStalls int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.vecAppends, l.flushStalls
}

// ReadStats reports read-path counters: device read I/Os issued (staged
// blocks served from memory are not counted) and how many of those were
// multi-block coalesced reads.
func (l *Log) ReadStats() (devReads, vecReads int64) {
	return atomic.LoadInt64(&l.devReads), atomic.LoadInt64(&l.vecReads)
}

// SegOf returns the segment index containing addr, or -1 if addr is
// outside the segment area.
func (l *Log) SegOf(addr BlockAddr) int64 {
	b := int64(addr)
	if b < l.segStart {
		return -1
	}
	seg := (b - l.segStart) / int64(l.cfg.SegBlocks)
	if seg >= l.nSegments {
		return -1
	}
	return seg
}

func (l *Log) segBase(seg int64) int64 { return l.segStart + seg*int64(l.cfg.SegBlocks) }

// Append stages one payload block and returns its final disk address.
// len(data) must be in (0, BlockSize]. The block becomes durable at the
// next Sync or when the segment fills.
func (l *Log) Append(kind Kind, obj types.ObjectID, key uint64, t types.Timestamp, data []byte) (BlockAddr, error) {
	if len(data) == 0 || len(data) > BlockSize {
		return NilAddr, fmt.Errorf("seglog: append of %d bytes: %w", len(data), types.ErrInval)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ioErr != nil {
		return NilAddr, l.ioErr
	}
	addr, err := l.appendOneLocked(kind, obj, key, t, data)
	if err != nil {
		return NilAddr, err
	}
	if l.used >= l.PayloadBlocks() {
		if err := l.flushLocked(true); err != nil {
			return NilAddr, err
		}
	}
	return addr, nil
}

// VecEntry is one block of a vectored append: the kind-specific key,
// the version timestamp, and up to BlockSize bytes of payload.
type VecEntry struct {
	Key  uint64
	Time types.Timestamp
	Data []byte
}

// AppendVec stages every entry — all for the same object and kind —
// under a single mutex acquisition and returns their final addresses in
// order. The blocks fill the open segment contiguously, so a later
// flush covers the whole batch with one sequential device write;
// batches larger than the remaining room seal the segment and continue
// into fresh ones. Callers that write several blocks per operation
// (multi-block Drive.Write, checkpoint overflow chains, the cleaner's
// relocation pass) use it to pay the lock and the flush machinery once
// per batch instead of once per block.
func (l *Log) AppendVec(kind Kind, obj types.ObjectID, entries ...VecEntry) ([]BlockAddr, error) {
	for i := range entries {
		if len(entries[i].Data) == 0 || len(entries[i].Data) > BlockSize {
			return nil, fmt.Errorf("seglog: vectored append of %d bytes: %w", len(entries[i].Data), types.ErrInval)
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	addrs := make([]BlockAddr, 0, len(entries))
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ioErr != nil {
		return nil, l.ioErr
	}
	if len(entries) > 1 {
		l.vecAppends++
	}
	for _, e := range entries {
		addr, err := l.appendOneLocked(kind, obj, e.Key, e.Time, e.Data)
		if err != nil {
			return nil, err
		}
		addrs = append(addrs, addr)
	}
	if l.used >= l.PayloadBlocks() {
		if err := l.flushLocked(true); err != nil {
			return nil, err
		}
	}
	return addrs, nil
}

// appendOneLocked stages one payload block into the open segment,
// sealing a full segment and opening a fresh one as needed. Caller
// holds l.mu and has checked the error latch.
func (l *Log) appendOneLocked(kind Kind, obj types.ObjectID, key uint64, t types.Timestamp, data []byte) (BlockAddr, error) {
	for l.curSeg >= 0 && l.used >= l.PayloadBlocks() {
		// A partial-flush pad can leave the segment full without an
		// append having sealed it; seal now so this block starts fresh.
		// Loop rather than if: flushLocked may wait out an in-flight
		// flush with the mutex released, and by the time it returns a
		// concurrent appender can have opened — and filled — a new
		// segment.
		if err := l.flushLocked(true); err != nil {
			return NilAddr, err
		}
	}
	if l.curSeg < 0 {
		if err := l.openSegmentLocked(); err != nil {
			return NilAddr, err
		}
	}
	idx := 1 + l.used // block index within the segment (0 is summary)
	off := idx * BlockSize
	copy(l.buf[off:off+BlockSize], data)
	for i := off + len(data); i < off+BlockSize; i++ {
		l.buf[i] = 0
	}
	l.entries = append(l.entries, SummaryEntry{Kind: kind, Obj: obj, Key: key, Time: t, Len: uint32(len(data))})
	addr := BlockAddr(l.segBase(l.curSeg) + int64(idx))
	l.dirty[idx-1] = true
	l.nDirty++
	l.used++
	l.appends++
	return addr, nil
}

// InOpenSegment reports whether addr is a payload block of the still
// open (rewritable) segment.
func (l *Log) InOpenSegment(addr BlockAddr) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	seg := l.SegOf(addr)
	if seg < 0 || seg != l.curSeg {
		return false
	}
	idx := int(int64(addr) - l.segBase(seg))
	return idx >= 1 && idx <= l.used
}

// Rewrite replaces the contents of a payload block that is still in the
// open segment. The drive uses it to extend an object's journal sector
// across several partial-segment syncs, so packed entries accumulate in
// one sector per segment (§4.2.2) instead of one per sync. Rewriting a
// sealed block is an error: the log never overwrites durable history.
func (l *Log) Rewrite(addr BlockAddr, data []byte) error {
	if len(data) == 0 || len(data) > BlockSize {
		return fmt.Errorf("seglog: rewrite of %d bytes: %w", len(data), types.ErrInval)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ioErr != nil {
		return l.ioErr
	}
	seg := l.SegOf(addr)
	if seg < 0 || seg != l.curSeg {
		return fmt.Errorf("seglog: rewrite outside open segment: %w", types.ErrInval)
	}
	idx := int(int64(addr) - l.segBase(seg))
	if idx < 1 || idx > l.used {
		return fmt.Errorf("seglog: rewrite of unallocated block: %w", types.ErrInval)
	}
	off := idx * BlockSize
	copy(l.buf[off:off+BlockSize], data)
	for i := off + len(data); i < off+BlockSize; i++ {
		l.buf[i] = 0
	}
	l.entries[idx-1].Len = uint32(len(data))
	// The block must reach disk again at the next flush.
	if !l.dirty[idx-1] {
		l.dirty[idx-1] = true
		l.nDirty++
	}
	return nil
}

// RewriteRange replaces bytes [off, off+len(data)) of a payload block
// if — and only if — the block is still in the open segment, reporting
// ok=false with no error when it is not (sealed, or never staged). The
// drive's journal layer uses it to pack another 512-byte sector into a
// shared journal block (§4.2.2): unlike a bare InOpenSegment check
// followed by Rewrite, the openness test and the write happen under one
// mutex hold, so a concurrent appender sealing the segment between the
// two can never turn the merge into an overwrite of durable history —
// the caller just places a fresh sector instead.
func (l *Log) RewriteRange(addr BlockAddr, off int, data []byte) (bool, error) {
	if off < 0 || len(data) == 0 || off+len(data) > BlockSize {
		return false, fmt.Errorf("seglog: rewrite-range of %d bytes at %d: %w", len(data), off, types.ErrInval)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ioErr != nil {
		return false, l.ioErr
	}
	seg := l.SegOf(addr)
	if seg < 0 || seg != l.curSeg {
		return false, nil
	}
	idx := int(int64(addr) - l.segBase(seg))
	if idx < 1 || idx > l.used {
		return false, nil
	}
	bo := idx*BlockSize + off
	copy(l.buf[bo:bo+len(data)], data)
	if end := uint32(off + len(data)); l.entries[idx-1].Len < end {
		l.entries[idx-1].Len = end
	}
	if !l.dirty[idx-1] {
		l.dirty[idx-1] = true
		l.nDirty++
	}
	return true, nil
}

// PatchSettled overwrites bytes [off, off+len(data)) of the settled
// payload block at addr directly on the device, bypassing staging. It
// exists for exactly one caller: crash recovery truncating an
// un-durable journal tail out of a replayed sector (an in-place head
// rewrite can land before the data blocks its appended entries
// reference, and the rejected suffix must be erased so post-recovery
// writes cannot collide with its versions). The patch must be
// sector-aligned and stay inside one block, and the block's durable
// summary must not pin a checksum over it — journal blocks under a
// partial snapshot carry the zero skip-sentinel, which is what makes
// the patch legal; a pinned sum is refused rather than silently turned
// into manufactured corruption.
func (l *Log) PatchSettled(addr BlockAddr, off int, data []byte) error {
	if off < 0 || len(data) == 0 || off%disk.SectorSize != 0 ||
		len(data)%disk.SectorSize != 0 || off+len(data) > BlockSize {
		return fmt.Errorf("seglog: patch of %d bytes at %d: %w", len(data), off, types.ErrInval)
	}
	seg := l.SegOf(addr)
	if seg < 0 {
		return fmt.Errorf("seglog: patch outside segment area: %w", types.ErrInval)
	}
	idx := int(int64(addr) - l.segBase(seg))
	if idx < 1 || idx >= l.cfg.SegBlocks {
		return fmt.Errorf("seglog: patch of non-payload block %d: %w", addr, types.ErrInval)
	}
	l.mu.Lock()
	cur, ioErr := l.curSeg, l.ioErr
	l.mu.Unlock()
	if ioErr != nil {
		return ioErr
	}
	if seg == cur {
		return fmt.Errorf("seglog: patch of open segment %d: %w", seg, types.ErrInval)
	}
	if sum, found, err := l.findSummary(seg); err == nil && found && sum.Sums &&
		idx-1 < len(sum.Entries) && sum.Entries[idx-1].Sum != 0 {
		return fmt.Errorf("seglog: patch of checksummed block %v: %w", addr, types.ErrInval)
	}
	return l.dev.WriteSectors(int64(addr)*sectorsPerBlock+int64(off/disk.SectorSize), data)
}

// Room returns how many payload blocks remain in the open segment; the
// drive uses it to co-locate an object's journal sector with its data.
func (l *Log) Room() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.curSeg < 0 {
		return l.PayloadBlocks()
	}
	return l.PayloadBlocks() - l.used
}

// openSegmentLocked picks the next free segment, preferring the one
// sequentially after the current to keep log writes contiguous.
func (l *Log) openSegmentLocked() error {
	if l.nFree == 0 {
		return types.ErrNoSpace
	}
	start := int64(0)
	if l.curSeg >= 0 {
		start = (l.curSeg + 1) % l.nSegments
	}
	for i := int64(0); i < l.nSegments; i++ {
		seg := (start + i) % l.nSegments
		if l.free[seg] && !l.quar[seg] {
			l.free[seg] = false
			l.nFree--
			l.curSeg = seg
			l.used = 0
			// The segment's previous life is over; its cached checksum
			// table (and any load racing this reuse) must not survive.
			delete(l.sums, seg)
			l.sumGen++
			if l.dirty == nil {
				l.dirty = make([]bool, l.cfg.SegBlocks)
			}
			for i := range l.dirty {
				l.dirty[i] = false
			}
			l.nDirty = 0
			l.entries = l.entries[:0]
			for i := range l.buf {
				l.buf[i] = 0
			}
			// Invalidate any sealed summary left from the segment's
			// previous life. Seal writes block 0 only after the payload
			// is durable, so while this segment is open the newest
			// trailing snapshot is authoritative — a stale block-0
			// summary from before the reuse must not shadow it. Fresh
			// segments (the common case) only pay a read here.
			sb := make([]byte, BlockSize)
			if err := readBlocks(l.dev, l.segBase(seg), sb); err != nil {
				return err
			}
			if _, stale, _ := decodeSummary(sb); stale {
				return writeBlocks(l.dev, l.segBase(seg), l.buf[:BlockSize])
			}
			return nil
		}
	}
	return types.ErrNoSpace
}

// Sync makes all staged blocks durable. A partially filled segment is
// written out (summary plus the unwritten payload tail) and remains open
// for further appends, mirroring LFS partial-segment writes.
func (l *Log) Sync() error {
	l.mu.Lock()
	// Wait for an in-flight flush even when nothing is dirty now: Sync
	// promises that everything staged before the call is durable on
	// return, and blocks covered by that flush are not until it lands.
	for l.flushing {
		l.flushStalls++
		l.flushCond.Wait()
	}
	if l.ioErr != nil {
		l.mu.Unlock()
		return l.ioErr
	}
	var err error
	if l.curSeg >= 0 && l.nDirty > 0 {
		err = l.flushLocked(false)
	}
	l.mu.Unlock()
	if err != nil {
		return err
	}
	// Force OS-buffered writes to stable media even when this call found
	// nothing dirty: a seal triggered by a filling append writes blocks
	// without a barrier, and Sync's durability promise covers those too.
	return l.forceDev()
}

// forceDev pushes buffered device writes to stable media on backends
// that buffer them (the real-file backend exposes disk.Syncer). The
// virtual-clock simulated disk writes through, so this is a no-op
// there. A barrier failure latches the log failed like any device
// write error.
func (l *Log) forceDev() error {
	s, ok := l.dev.(disk.Syncer)
	if !ok {
		return nil
	}
	if err := s.Sync(); err != nil {
		l.mu.Lock()
		if l.ioErr == nil {
			l.ioErr = err
		}
		l.mu.Unlock()
		return err
	}
	return nil
}

// flushLocked makes the staged segment durable.
//
// Partial flush (closeSeg false): the dirty payload runs are written,
// then a snapshot of the summary is appended in the slot right after
// the last used block — the LFS partial-segment pattern, one
// mostly-sequential write per sync, no seek back to the segment head.
// The snapshot's slot is then retired with a pad entry, so no later
// append can overwrite the only durable summary before its replacement
// lands; recovery finds the newest valid snapshot by scanning
// (findSummary). A crash anywhere inside the flush leaves the previous
// snapshot intact and loses only unacknowledged work.
//
// Seal (closeSeg true): the payload is written first, then the final
// summary lands in block 0, where steady-state reads expect it. A
// summary never declares blocks that are not already durable, so a
// crash mid-seal falls back to the newest partial snapshot.
//
// The device writes happen with l.mu RELEASED: the summary and dirty
// runs are snapshotted into flushBuf (a seal swaps the buffers whole,
// a partial flush copies and reserves its snapshot slot with a pad
// entry first), so appends keep staging into buf while the writes are
// in flight. Only one flush runs at a time; a second caller waits on
// flushCond and re-derives what is left to do. A device-write error
// latches ioErr, failing every later append and sync — dirty state is
// cleared optimistically before the writes, so the latch is what keeps
// a failed flush from being silently dropped. Caller holds l.mu; it is
// released and re-acquired internally.
func (l *Log) flushLocked(closeSeg bool) error {
	for l.flushing {
		l.flushStalls++
		l.flushCond.Wait()
	}
	if l.ioErr != nil {
		return l.ioErr
	}
	// The wait released the mutex, so a concurrent flush may have
	// sealed the segment or drained the dirty set; re-derive the work.
	if l.curSeg < 0 {
		return nil
	}
	if l.used >= l.PayloadBlocks() {
		closeSeg = true // no slot left for a snapshot; seal instead
	} else if closeSeg {
		return nil // the full segment this call meant to seal is gone
	}
	if !closeSeg && l.nDirty == 0 {
		return nil
	}
	l.seq++
	l.encodeSummaryLocked(l.seq, closeSeg)
	seg := l.curSeg
	base := l.segBase(seg)
	used := l.used
	var runs [][2]int // dirty payload runs as [from, to) block indices
	for i := 0; i < used; {
		if !l.dirty[i] {
			i++
			continue
		}
		j := i
		for j < used && l.dirty[j] {
			j++
		}
		runs = append(runs, [2]int{1 + i, 1 + j})
		for k := i; k < j; k++ {
			l.dirty[k] = false
		}
		i = j
	}
	l.nDirty = 0
	if closeSeg {
		// Seal: swap the staged buffer out whole and retire the
		// segment; the next append opens a fresh one into the (zeroed
		// by openSegmentLocked) other buffer while the writes run.
		l.buf, l.flushBuf = l.flushBuf, l.buf
		l.curSeg = -1
		// flushBuf now holds this segment's complete image; keep it as
		// the repair copy until the buffer is reused.
		l.flushBufSeg = seg
	} else {
		// Partial flush: the segment stays open for appends, so copy
		// the summary snapshot and the dirty runs aside. The snapshot
		// slot is reserved with a pad entry BEFORE the mutex is
		// released, so no concurrent append can land on top of what
		// will be the only durable summary. The copy clobbers whatever
		// sealed image the buffer retained, so the repair copy is gone.
		l.flushBufSeg = -1
		copy(l.flushBuf[:BlockSize], l.buf[:BlockSize])
		for _, r := range runs {
			copy(l.flushBuf[r[0]*BlockSize:r[1]*BlockSize], l.buf[r[0]*BlockSize:r[1]*BlockSize])
		}
		l.entries = append(l.entries, SummaryEntry{Kind: KindPad})
		l.used++
	}
	l.flushing = true
	l.flushSeg = seg
	l.flushUsed = used
	l.segWrite++

	l.mu.Unlock()
	src := l.flushBuf // stable while flushing: no other flush can start
	var werr error
	for _, r := range runs {
		if err := writeBlocks(l.dev, base+int64(r[0]), src[r[0]*BlockSize:r[1]*BlockSize]); err != nil {
			werr = err
			break
		}
	}
	if werr == nil {
		if closeSeg {
			werr = writeBlocks(l.dev, base, src[:BlockSize])
		} else {
			// Trailing summary snapshot; usually contiguous with the
			// tail run just written, so the disk model charges no seek.
			werr = writeBlocks(l.dev, base+int64(1+used), src[:BlockSize])
		}
	}
	l.mu.Lock()

	l.flushing = false
	l.flushSeg = -1
	if werr != nil && l.ioErr == nil {
		l.ioErr = werr
	}
	l.flushCond.Broadcast()
	return werr
}

// encodeSummaryLocked serializes the staged entries into the summary
// slot of buf. Block checksums are computed here — at flush time, over
// each block's full staged contents — rather than at append time, so
// Rewrite/RewriteRange mutations of open-segment blocks are covered by
// whatever summary next reaches the device alongside them. Pad slots
// get Sum zero: their on-disk bytes are a retired snapshot, not the
// staged zeros.
//
// Journal blocks are checksummed only in the SEAL summary (sealed
// true). While the segment is open they are rewritten in place on
// every sync to pack more 512-byte entries, and the rewrite and the
// snapshot carrying its checksum are separate device writes: a crash
// between the two would leave the newest durable snapshot describing
// the block's previous contents, and recovery's verified chain walk
// would refuse a perfectly good image. Partial snapshots therefore
// leave journal sums zero — the journal's own per-sector CRCs police
// torn and stale content there, exactly as before checksums — and the
// seal, after which no rewrite can ever touch the segment, pins the
// final bytes. Caller holds l.mu.
func (l *Log) encodeSummaryLocked(seq uint64, sealed bool) {
	sb := l.buf[:BlockSize]
	for i := range sb {
		sb[i] = 0
	}
	magic, esz := uint32(summaryMagic2), summaryEntrySize
	if l.legacyV1 {
		magic, esz = summaryMagic, summaryEntrySizeV1
	}
	binary.LittleEndian.PutUint32(sb[0:], magic)
	binary.LittleEndian.PutUint64(sb[4:], seq)
	binary.LittleEndian.PutUint32(sb[12:], uint32(len(l.entries)))
	off := summaryHeaderSize
	for i, e := range l.entries {
		sb[off] = byte(e.Kind)
		binary.LittleEndian.PutUint64(sb[off+1:], uint64(e.Obj))
		binary.LittleEndian.PutUint64(sb[off+9:], e.Key)
		binary.LittleEndian.PutUint64(sb[off+17:], uint64(e.Time))
		binary.LittleEndian.PutUint32(sb[off+25:], e.Len)
		if !l.legacyV1 {
			var sum uint32
			if e.Kind != KindPad && (sealed || e.Kind != KindJournal) {
				bo := (1 + i) * BlockSize
				sum = crc32.ChecksumIEEE(l.buf[bo : bo+BlockSize])
			}
			binary.LittleEndian.PutUint32(sb[off+29:], sum)
		}
		off += esz
	}
	binary.LittleEndian.PutUint32(sb[16:], crc32.ChecksumIEEE(sb[summaryHeaderSize:]))
}

// Read fills buf (length ≤ BlockSize) with the contents of the block at
// addr. Blocks still staged in the open segment are served from memory.
func (l *Log) Read(addr BlockAddr, buf []byte) error {
	if len(buf) > BlockSize {
		return fmt.Errorf("seglog: read of %d bytes: %w", len(buf), types.ErrInval)
	}
	seg := l.SegOf(addr)
	if seg < 0 {
		return fmt.Errorf("seglog: address %d outside segment area: %w", addr, types.ErrInval)
	}
	idx := int(int64(addr) - l.segBase(seg))
	if idx == 0 {
		return fmt.Errorf("seglog: address %d is a summary block: %w", addr, types.ErrInval)
	}
	l.mu.Lock()
	if seg == l.curSeg && idx <= l.used {
		copy(buf, l.buf[idx*BlockSize:idx*BlockSize+len(buf)])
		l.mu.Unlock()
		return nil
	}
	if l.flushing && seg == l.flushSeg && seg != l.curSeg && idx <= l.flushUsed {
		// The segment was just sealed and its device writes are still
		// in flight; flushBuf holds the complete sealed image.
		copy(buf, l.flushBuf[idx*BlockSize:idx*BlockSize+len(buf)])
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	atomic.AddInt64(&l.devReads, 1)
	if len(buf) == BlockSize {
		if err := readBlocks(l.dev, int64(addr), buf); err != nil {
			return err
		}
		return l.verifyRead(seg, idx, 1, addr, buf)
	}
	full := make([]byte, BlockSize)
	if err := readBlocks(l.dev, int64(addr), full); err != nil {
		return err
	}
	if err := l.verifyRead(seg, idx, 1, addr, full); err != nil {
		return err
	}
	copy(buf, full)
	return nil
}

// ReadRun fills buf with n consecutive blocks starting at addr — the
// read-path mirror of AppendVec. The run must lie inside one segment's
// payload area and len(buf) must be at least n*BlockSize. When the run
// is settled on disk it is fetched with a single device I/O; runs that
// are wholly staged in the open (or in-flight) segment are served from
// memory, and runs only partially staged fall back to per-block Read.
func (l *Log) ReadRun(addr BlockAddr, n int, buf []byte) error {
	if n <= 0 {
		return fmt.Errorf("seglog: read run of %d blocks: %w", n, types.ErrInval)
	}
	if len(buf) < n*BlockSize {
		return fmt.Errorf("seglog: read run buffer %d < %d: %w", len(buf), n*BlockSize, types.ErrInval)
	}
	seg := l.SegOf(addr)
	if seg < 0 || l.SegOf(addr+BlockAddr(n-1)) != seg {
		return fmt.Errorf("seglog: read run %d+%d spans segments: %w", addr, n, types.ErrInval)
	}
	idx := int(int64(addr) - l.segBase(seg))
	if idx == 0 {
		return fmt.Errorf("seglog: address %d is a summary block: %w", addr, types.ErrInval)
	}
	last := idx + n - 1
	l.mu.Lock()
	if seg == l.curSeg && last <= l.used {
		copy(buf, l.buf[idx*BlockSize:(last+1)*BlockSize])
		l.mu.Unlock()
		return nil
	}
	if l.flushing && seg == l.flushSeg && seg != l.curSeg && last <= l.flushUsed {
		copy(buf, l.flushBuf[idx*BlockSize:(last+1)*BlockSize])
		l.mu.Unlock()
		return nil
	}
	if (seg == l.curSeg && idx <= l.used) ||
		(l.flushing && seg == l.flushSeg && seg != l.curSeg && idx <= l.flushUsed) {
		// Part of the run is still staged in memory; Read picks the
		// right source per block.
		l.mu.Unlock()
		for i := 0; i < n; i++ {
			if err := l.Read(addr+BlockAddr(i), buf[i*BlockSize:(i+1)*BlockSize]); err != nil {
				return err
			}
		}
		return nil
	}
	l.mu.Unlock()
	atomic.AddInt64(&l.devReads, 1)
	if n > 1 {
		atomic.AddInt64(&l.vecReads, 1)
	}
	if err := readBlocks(l.dev, int64(addr), buf[:n*BlockSize]); err != nil {
		return err
	}
	return l.verifyRead(seg, idx, n, addr, buf[:n*BlockSize])
}

// verifyRead checks n freshly device-read blocks (starting at payload
// index idx of seg, data holding full blocks) against the segment's
// checksum table. A mismatched block is first retried against the
// retained flush buffer (repairBlock); an unrepairable one quarantines
// the segment and fails the read with a typed CorruptError. Segments
// without a table — v1 summaries, the open segment, unreadable or
// missing summaries — pass unverified, exactly the pre-checksum
// behavior.
func (l *Log) verifyRead(seg int64, idx, n int, addr BlockAddr, data []byte) error {
	sums := l.sumsFor(seg)
	if sums == nil {
		return nil
	}
	for i := 0; i < n; i++ {
		e := idx - 1 + i
		if e >= len(sums) {
			// Beyond the durable summary's coverage (a tail whose summary
			// write a crash lost). Recovery truncates journal entries
			// that reference uncovered blocks, so chains never hand
			// these out — the skip is for raw scans only.
			continue
		}
		want := sums[e]
		if want == 0 {
			continue
		}
		blk := data[i*BlockSize : (i+1)*BlockSize]
		got := crc32.ChecksumIEEE(blk)
		if got == want {
			continue
		}
		if l.repairBlock(seg, idx+i, want, blk) {
			atomic.AddInt64(&l.corruptRepaired, 1)
			continue
		}
		atomic.AddInt64(&l.corruptDetected, 1)
		l.mu.Lock()
		l.quarantineLocked(seg)
		l.mu.Unlock()
		return &types.CorruptError{Segment: seg, Block: uint64(addr) + uint64(i), Want: want, Got: got}
	}
	return nil
}

// sumsFor returns seg's checksum table (payload index -> expected CRC),
// lazily loading it from the segment's durable summary. nil means no
// verification is possible: the open segment, a v1 summary, or no
// readable summary at all. Negative results are cached too, so v1
// segments don't pay a summary scan per read.
func (l *Log) sumsFor(seg int64) []uint32 {
	l.mu.Lock()
	if seg == l.curSeg {
		l.mu.Unlock()
		return nil
	}
	if s, ok := l.sums[seg]; ok {
		l.mu.Unlock()
		return s
	}
	gen := l.sumGen
	l.mu.Unlock()
	sum, ok, err := l.findSummary(seg)
	if err != nil {
		return nil // device trouble reading the summary: skip, don't cache
	}
	var table []uint32
	if ok && sum.Sums {
		table = make([]uint32, len(sum.Entries))
		for i := range sum.Entries {
			table[i] = sum.Entries[i].Sum
		}
	}
	l.mu.Lock()
	if l.sumGen == gen && seg != l.curSeg {
		l.sums[seg] = table
	}
	l.mu.Unlock()
	return table
}

// repairBlock retries a checksum-failed device block against the
// retained flush double-buffer: after a seal, flushBuf keeps the sealed
// segment's complete image until the buffer is next reused. On a match
// the verified bytes replace blk and are rewritten to the device in
// place — byte-identical to what the summary describes, so the
// never-overwrite-history rule is untouched — which clears latent
// media rot. The rewrite is best effort: if it fails, the read still
// returns the verified copy and the scrubber will find the rot again.
func (l *Log) repairBlock(seg int64, idx int, want uint32, blk []byte) bool {
	l.mu.Lock()
	if l.flushBufSeg != seg {
		l.mu.Unlock()
		return false
	}
	copy(blk, l.flushBuf[idx*BlockSize:(idx+1)*BlockSize])
	l.mu.Unlock()
	if crc32.ChecksumIEEE(blk) != want {
		return false
	}
	_ = writeBlocks(l.dev, l.segBase(seg)+int64(idx), blk)
	return true
}

// quarantineLocked marks seg unrecyclable: the allocator will never
// open it again, even after the cleaner copies its live blocks out and
// frees it. Quarantine is advisory, in-memory state — it restricts
// only future allocation, so losing it at a crash costs nothing but a
// rediscovery. Caller holds l.mu.
func (l *Log) quarantineLocked(seg int64) {
	if l.quar[seg] {
		return
	}
	l.quar[seg] = true
	if l.free[seg] {
		l.nFree--
	}
}

// Quarantine marks seg unrecyclable (see quarantineLocked). The drive's
// cleaner calls it when copy-forward hits a corrupt block, so rot is
// contained instead of relocated.
func (l *Log) Quarantine(seg int64) {
	if seg < 0 || seg >= l.nSegments {
		return
	}
	l.mu.Lock()
	l.quarantineLocked(seg)
	l.mu.Unlock()
}

// IsQuarantined reports whether seg has been quarantined this run.
func (l *Log) IsQuarantined(seg int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quar[seg]
}

// IntegrityStats reports verified-read counters: checksum failures
// surfaced to callers, failures healed in place from a redundant copy,
// and segments currently quarantined.
func (l *Log) IntegrityStats() (detected, repaired, quarantined int64) {
	l.mu.Lock()
	q := int64(len(l.quar))
	l.mu.Unlock()
	return atomic.LoadInt64(&l.corruptDetected), atomic.LoadInt64(&l.corruptRepaired), q
}

// VerifySegment re-reads every summary-described payload block of a
// settled segment through the verified read path, counting (not
// aborting on) corrupt blocks — the scrubber's unit of work. Free and
// open segments report zero work; pad slots are skipped. checked is
// the number of blocks scanned including corrupt ones; err reports
// device failures only, never corruption.
func (l *Log) VerifySegment(seg int64) (checked, corrupt int, err error) {
	if seg < 0 || seg >= l.nSegments {
		return 0, 0, fmt.Errorf("seglog: segment %d out of range: %w", seg, types.ErrInval)
	}
	l.mu.Lock()
	skip := l.free[seg] || seg == l.curSeg || (l.flushing && seg == l.flushSeg)
	l.mu.Unlock()
	if skip {
		return 0, 0, nil
	}
	sum, ok, err := l.ReadSummary(seg)
	if err != nil || !ok {
		return 0, 0, err
	}
	blk := make([]byte, BlockSize)
	for i := range sum.Entries {
		if sum.Entries[i].Kind == KindPad {
			continue
		}
		rerr := l.Read(l.EntryAt(seg, i), blk)
		checked++
		var ce *types.CorruptError
		if errors.As(rerr, &ce) {
			corrupt++
			continue
		}
		if rerr != nil {
			return checked, corrupt, rerr
		}
	}
	return checked, corrupt, nil
}

// ReadSummary decodes the summary of a sealed (or partially synced)
// segment. ok is false if the segment has never been written or its
// summary is invalid.
func (l *Log) ReadSummary(seg int64) (Summary, bool, error) {
	if seg < 0 || seg >= l.nSegments {
		return Summary{}, false, fmt.Errorf("seglog: segment %d out of range: %w", seg, types.ErrInval)
	}
	l.mu.Lock()
	if seg == l.curSeg {
		// Serve the staged summary.
		s := Summary{Seq: l.seq, Entries: append([]SummaryEntry(nil), l.entries...)}
		l.mu.Unlock()
		return s, true, nil
	}
	// A sealed segment's block-0 summary may still be in flight; wait
	// it out so findSummary reads a settled image. (The drive's lock
	// hierarchy already excludes this — summary readers hold the
	// exclusive drive lock, which waits out every in-flight flush — so
	// this guards direct users of the package.)
	for l.flushing && seg == l.flushSeg {
		l.flushStalls++
		l.flushCond.Wait()
	}
	l.mu.Unlock()
	return l.findSummary(seg)
}

// findSummary locates the newest valid summary of a segment on disk: a
// sealed segment's summary lives in block 0; a partially synced one's
// lives in the trailing snapshot slot right after its last used block.
func (l *Log) findSummary(seg int64) (Summary, bool, error) {
	sb := make([]byte, BlockSize)
	if err := readBlocks(l.dev, l.segBase(seg), sb); err != nil {
		return Summary{}, false, err
	}
	best, found, err := decodeSummary(sb)
	if err != nil {
		return Summary{}, false, err
	}
	if found && len(best.Entries) >= l.PayloadBlocks() {
		return best, true, nil // sealed: full summary in block 0
	}
	for i := 1; i < l.cfg.SegBlocks; i++ {
		if err := readBlocks(l.dev, l.segBase(seg)+int64(i), sb); err != nil {
			return Summary{}, false, err
		}
		s, ok, err := decodeSummary(sb)
		if err != nil {
			return Summary{}, false, err
		}
		// A genuine trailing snapshot at slot i describes exactly the
		// i-1 payload blocks before it.
		if ok && len(s.Entries) == i-1 && (!found || s.Seq > best.Seq) {
			best, found = s, true
		}
	}
	return best, found, nil
}

// decodeSummary parses a candidate summary block. The two on-disk
// layouts are self-describing by magic: v1 entries carry no checksum,
// v2 entries end with a per-block CRC32. Invalid candidates (wrong
// magic, hostile count, CRC mismatch) report ok=false, never an error:
// recovery probes arbitrary blocks looking for summaries.
func decodeSummary(sb []byte) (Summary, bool, error) {
	if len(sb) < summaryHeaderSize {
		return Summary{}, false, nil
	}
	esz, sums := 0, false
	switch binary.LittleEndian.Uint32(sb[0:]) {
	case summaryMagic:
		esz = summaryEntrySizeV1
	case summaryMagic2:
		esz, sums = summaryEntrySize, true
	default:
		return Summary{}, false, nil
	}
	count := int(binary.LittleEndian.Uint32(sb[12:]))
	if count < 0 || summaryHeaderSize+count*esz > BlockSize ||
		summaryHeaderSize+count*esz > len(sb) {
		return Summary{}, false, nil
	}
	if binary.LittleEndian.Uint32(sb[16:]) != crc32.ChecksumIEEE(sb[summaryHeaderSize:]) {
		return Summary{}, false, nil
	}
	s := Summary{Seq: binary.LittleEndian.Uint64(sb[4:]), Sums: sums}
	off := summaryHeaderSize
	for i := 0; i < count; i++ {
		e := SummaryEntry{
			Kind: Kind(sb[off]),
			Obj:  types.ObjectID(binary.LittleEndian.Uint64(sb[off+1:])),
			Key:  binary.LittleEndian.Uint64(sb[off+9:]),
			Time: types.Timestamp(binary.LittleEndian.Uint64(sb[off+17:])),
			Len:  binary.LittleEndian.Uint32(sb[off+25:]),
		}
		if sums {
			e.Sum = binary.LittleEndian.Uint32(sb[off+29:])
		}
		s.Entries = append(s.Entries, e)
		off += esz
	}
	return s, true, nil
}

// EntryAt returns the block address of entry i in segment seg.
func (l *Log) EntryAt(seg int64, i int) BlockAddr {
	return BlockAddr(l.segBase(seg) + int64(1+i))
}

// FreeSegment returns seg to the free pool. The caller (the cleaner)
// must have established that no live or in-window block remains in it.
// Freeing the open segment is rejected.
func (l *Log) FreeSegment(seg int64) error {
	if seg < 0 || seg >= l.nSegments {
		return fmt.Errorf("seglog: segment %d out of range: %w", seg, types.ErrInval)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seg == l.curSeg {
		return fmt.Errorf("seglog: cannot free open segment %d: %w", seg, types.ErrInval)
	}
	if l.flushing && seg == l.flushSeg {
		return fmt.Errorf("seglog: cannot free segment %d mid-flush: %w", seg, types.ErrInval)
	}
	if !l.free[seg] {
		l.free[seg] = true
		// A quarantined segment is free for accounting (no durable
		// structure may reference it) but never counted for — or handed
		// out by — the allocator.
		if !l.quar[seg] {
			l.nFree++
		}
	}
	delete(l.sums, seg)
	l.sumGen++
	if l.flushBufSeg == seg {
		l.flushBufSeg = -1
	}
	return nil
}

// IsFree reports whether seg sits in the allocator's free pool. The
// drive's consistency checker uses it to assert that no durable
// structure references a freed segment.
func (l *Log) IsFree(seg int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seg < 0 || seg >= l.nSegments {
		return false
	}
	return l.free[seg]
}

// MarkAllocated records (during recovery) that seg holds data.
func (l *Log) MarkAllocated(seg int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.free[seg] {
		l.free[seg] = false
		if !l.quar[seg] {
			l.nFree--
		}
	}
}

// SetSeq restores the write sequence counter during recovery.
func (l *Log) SetSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.seq {
		l.seq = seq
	}
}

// ScanFrom visits every written segment whose summary sequence is
// greater than afterSeq, in increasing sequence order. Recovery uses it
// to roll the object map forward from the last checkpoint.
func (l *Log) ScanFrom(afterSeq uint64, fn func(seg int64, sum Summary) error) error {
	type hit struct {
		seg int64
		sum Summary
	}
	var hits []hit
	for seg := int64(0); seg < l.nSegments; seg++ {
		sum, ok, err := l.findSummary(seg)
		if err != nil || !ok || sum.Seq <= afterSeq {
			continue
		}
		hits = append(hits, hit{seg, sum})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].sum.Seq < hits[j].sum.Seq })
	for _, h := range hits {
		if err := fn(h.seg, h.sum); err != nil {
			return err
		}
	}
	return nil
}

// CheckpointCapacity returns the payload bytes one checkpoint slot can
// hold (state blob plus index blob together).
func (l *Log) CheckpointCapacity() int {
	return l.cfg.CheckpointBlocks*BlockSize - cpHeaderSize
}

// WriteCheckpoint durably stores an opaque state blob (the drive's
// object map and allocator state) plus an optional recovery-index blob
// in the next alternating checkpoint slot. The two blobs share the slot
// and the single device write, but carry independent checksums: a slot
// is valid whenever the state blob's CRC holds, while a missing or
// corrupt index blob merely degrades ReadCheckpoint's index to nil —
// the caller falls back to full replay, never to a different anchor.
// Both blobs together must fit CheckpointCapacity; index may be nil.
func (l *Log) WriteCheckpoint(data, index []byte) error {
	maxLen := l.CheckpointCapacity()
	if len(data)+len(index) > maxLen {
		return fmt.Errorf("seglog: checkpoint %d+%d bytes exceeds slot %d: %w", len(data), len(index), maxLen, types.ErrTooLarge)
	}
	l.mu.Lock()
	slot := l.cpSlot
	l.cpSlot = 1 - l.cpSlot
	l.seq++
	seq := l.seq
	l.mu.Unlock()

	blob := make([]byte, cpHeaderSize+len(data)+len(index))
	binary.LittleEndian.PutUint32(blob[0:], cpMagic)
	binary.LittleEndian.PutUint64(blob[4:], seq)
	binary.LittleEndian.PutUint32(blob[12:], uint32(len(data)))
	binary.LittleEndian.PutUint32(blob[16:], crc32.ChecksumIEEE(data))
	binary.LittleEndian.PutUint32(blob[20:], uint32(len(index)))
	binary.LittleEndian.PutUint32(blob[24:], crc32.ChecksumIEEE(index))
	copy(blob[cpHeaderSize:], data)
	copy(blob[cpHeaderSize+len(data):], index)
	// Pad to block multiple.
	if r := len(blob) % BlockSize; r != 0 {
		blob = append(blob, make([]byte, BlockSize-r)...)
	}
	base := int64(1 + slot*l.cfg.CheckpointBlocks)
	if err := writeBlocks(l.dev, base, blob); err != nil {
		return err
	}
	// Barrier: the checkpoint authorizes segment reuse (the drive drains
	// its deferred-free queue right after), so it must be on stable media
	// before this call returns.
	return l.forceDev()
}

const cpHeaderSize = 4 + 8 + 4 + 4 + 4 + 4 // magic, seq, lenA, crcA, lenB, crcB

// ReadCheckpoint returns the newest valid checkpoint blob, its optional
// recovery index, and the log sequence at which it was taken. ok is
// false when no valid checkpoint exists (freshly formatted device). A
// slot whose state blob fails its CRC — a checkpoint write torn by a
// crash — is skipped, so the alternate slot still anchors recovery;
// that is the whole point of alternating slots. The index blob is best
// effort: out-of-bounds length or CRC mismatch (a tear inside the index
// region of an otherwise intact slot) returns index nil without
// invalidating the slot.
func (l *Log) ReadCheckpoint() (data, index []byte, seq uint64, ok bool, err error) {
	hdr := make([]byte, BlockSize)
	var bestSlot = -1
	var bestSeq uint64
	var bestData, bestIndex []byte
	for slot := 0; slot < 2; slot++ {
		base := int64(1 + slot*l.cfg.CheckpointBlocks)
		if err := readBlocks(l.dev, base, hdr); err != nil {
			return nil, nil, 0, false, err
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != cpMagic {
			continue
		}
		s := binary.LittleEndian.Uint64(hdr[4:])
		nA := int(binary.LittleEndian.Uint32(hdr[12:]))
		nB := int(binary.LittleEndian.Uint32(hdr[20:]))
		if nA > l.CheckpointCapacity() {
			continue
		}
		if nB < 0 || nA+nB > l.CheckpointCapacity() {
			nB = 0 // hostile index length: drop the index, keep the slot
		}
		total := cpHeaderSize + nA + nB
		nBlocks := (total + BlockSize - 1) / BlockSize
		blob := make([]byte, nBlocks*BlockSize)
		if err := readBlocks(l.dev, base, blob); err != nil {
			return nil, nil, 0, false, err
		}
		payload := blob[cpHeaderSize : cpHeaderSize+nA]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[16:]) {
			continue
		}
		var idx []byte
		if nB > 0 {
			cand := blob[cpHeaderSize+nA : cpHeaderSize+nA+nB]
			if crc32.ChecksumIEEE(cand) == binary.LittleEndian.Uint32(hdr[24:]) {
				idx = cand
			}
		}
		if bestSlot < 0 || s > bestSeq {
			bestSlot, bestSeq, bestData, bestIndex = slot, s, payload, idx
		}
	}
	if bestSlot < 0 {
		return nil, nil, 0, false, nil
	}
	l.mu.Lock()
	l.cpSlot = 1 - bestSlot
	if bestSeq > l.seq {
		l.seq = bestSeq
	}
	l.mu.Unlock()
	return bestData, bestIndex, bestSeq, true, nil
}

// CurrentSegment returns the open segment index, or -1.
func (l *Log) CurrentSegment() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.curSeg
}

func writeBlocks(dev disk.Device, block int64, data []byte) error {
	return dev.WriteSectors(block*sectorsPerBlock, data)
}

func readBlocks(dev disk.Device, block int64, data []byte) error {
	return dev.ReadSectors(block*sectorsPerBlock, data)
}
