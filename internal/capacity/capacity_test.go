package capacity

import (
	"strings"
	"testing"
)

func TestMeasureFactorsBand(t *testing.T) {
	f, err := MeasureFactors(7, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~3x from differencing and ~5x compounded; a
	// synthetic tree should land in the same band (allow generous
	// margins — exact ratios depend on edit density).
	if f.DiffFactor < 2 {
		t.Fatalf("differencing factor %.2fx, want >= 2x", f.DiffFactor)
	}
	if f.CompoundFactor < f.DiffFactor {
		t.Fatalf("compression must add on top of differencing: %.2f < %.2f",
			f.CompoundFactor, f.DiffFactor)
	}
	if f.CompoundFactor < 3.5 {
		t.Fatalf("compound factor %.2fx, want >= 3.5x", f.CompoundFactor)
	}
}

func TestProjectPaperNumbers(t *testing.T) {
	pool := int64(10 << 30)
	ps := Project(pool, 3, 5, PaperWorkloads())
	if len(ps) != 3 {
		t.Fatal("expected three workloads")
	}
	byName := map[string]Projection{}
	for _, p := range ps {
		byName[p.Workload.Name] = p
	}
	// §5.2: 10GB of history at 143MB/day ≈ 70+ days; at 1GB/day ≈ 10
	// days; at 110MB/day ≈ 90+ days.
	if b := byName["AFS server"].Baseline; b < 65 || b > 80 {
		t.Fatalf("AFS baseline = %.0f days", b)
	}
	if b := byName["NT desktop"].Baseline; b < 9 || b > 11 {
		t.Fatalf("NT baseline = %.0f days", b)
	}
	if b := byName["Elephant FS"].Baseline; b < 85 || b > 100 {
		t.Fatalf("Elephant baseline = %.0f days", b)
	}
	// §5.2's summary: with differencing+compression the 10GB pool spans
	// roughly 50 to 470 days across the workloads.
	lo, hi := 1e18, 0.0
	for _, p := range ps {
		if p.Compressed < lo {
			lo = p.Compressed
		}
		if p.Compressed > hi {
			hi = p.Compressed
		}
	}
	if lo < 40 || lo > 60 || hi < 400 || hi > 500 {
		t.Fatalf("compressed window range %.0f..%.0f days, want ~50..470", lo, hi)
	}
}

func TestRender(t *testing.T) {
	f, err := MeasureFactors(3, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	ps := Project(10<<30, f.DiffFactor, f.CompoundFactor, PaperWorkloads())
	out := Render(10<<30, f, ps)
	for _, want := range []string{"AFS server", "NT desktop", "Elephant FS", "differencing"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := MeasureFactors(4, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureFactors(4, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("MeasureFactors is not deterministic for a fixed seed")
	}
}
