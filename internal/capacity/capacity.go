// Package capacity implements the detection-window projection of
// OSDI '00 §5.2 / Fig. 7.
//
// The paper asks: dedicating 10GB of a 50GB disk (20%) to the history
// pool, how many days of complete version history can be kept? It
// answers with the per-day write rates of three published workload
// studies, then scales the window by the space-efficiency factors
// measured for cross-version differencing and differencing+compression.
//
// This package provides both halves: the projection arithmetic, and a
// measurement harness that evolves a synthetic source tree day by day
// (the paper used a week of the S4 CVS tree) and measures the real
// factors achieved by internal/delta.
package capacity

import (
	"fmt"
	"math/rand"
	"strings"

	"s4/internal/delta"
)

// Workload is one environment's write-traffic characterization.
type Workload struct {
	Name string
	// WritesPerDay is the observed write traffic in bytes/day.
	WritesPerDay int64
	// Source describes where the number comes from.
	Source string
}

// PaperWorkloads returns the three studies used in Fig. 7.
func PaperWorkloads() []Workload {
	return []Workload{
		{Name: "AFS server", WritesPerDay: 143 << 20,
			Source: "Spasojevic & Satyanarayanan wide-area AFS study (143MB/day/server)"},
		{Name: "NT desktop", WritesPerDay: 1 << 30,
			Source: "Vogels NT file-usage study (1GB/day/machine)"},
		{Name: "Elephant FS", WritesPerDay: 110 << 20,
			Source: "Santry et al. Elephant workload (110MB/day)"},
	}
}

// Projection is one bar group of Fig. 7.
type Projection struct {
	Workload Workload
	// Days of history a pool of PoolBytes holds: baseline, with
	// differencing, and with differencing+compression.
	Baseline    float64
	Differenced float64
	Compressed  float64
}

// Project computes the detection window for each workload given a pool
// size and the measured space-efficiency factors (≥1).
func Project(poolBytes int64, diffFactor, compFactor float64, ws []Workload) []Projection {
	out := make([]Projection, 0, len(ws))
	for _, w := range ws {
		base := float64(poolBytes) / float64(w.WritesPerDay)
		out = append(out, Projection{
			Workload:    w,
			Baseline:    base,
			Differenced: base * diffFactor,
			Compressed:  base * compFactor,
		})
	}
	return out
}

// Factors is the measured space efficiency of the two technologies.
type Factors struct {
	RawBytes       int64 // total bytes of all versions
	DiffBytes      int64 // bytes after cross-version differencing
	DiffCompBytes  int64 // bytes after differencing + compression
	DiffFactor     float64
	CompoundFactor float64
	Days           int
	FilesPerDay    int
}

// MeasureFactors evolves a synthetic source tree for the given number of
// daily snapshots, deltas each day against its predecessor, and reports
// achieved space-efficiency factors — the experiment of §5.2 run on a
// generated tree instead of the authors' CVS checkout.
func MeasureFactors(days, files int, seed int64) (Factors, error) {
	if days < 2 {
		days = 7
	}
	if files <= 0 {
		files = 120
	}
	rnd := rand.New(rand.NewSource(seed))
	tree := makeTree(rnd, files)
	var f Factors
	f.Days = days
	f.FilesPerDay = files
	prev := snapshot(tree)
	// Day 0 has no predecessor: stored raw under the baseline and the
	// differencing-only scheme, compressed under the compound scheme.
	day0 := int64(len(prev))
	day0c, err := delta.Compress(prev)
	if err != nil {
		return f, err
	}
	f.RawBytes, f.DiffBytes, f.DiffCompBytes = day0, day0, int64(len(day0c))
	for d := 1; d < days; d++ {
		evolve(rnd, tree)
		cur := snapshot(tree)
		f.RawBytes += int64(len(cur))
		dlt := delta.Encode(prev, cur)
		// Verify the delta reconstructs before counting it.
		back, err := delta.Apply(prev, dlt)
		if err != nil || string(back) != string(cur) {
			return f, fmt.Errorf("capacity: day %d delta failed verification: %v", d, err)
		}
		f.DiffBytes += int64(len(dlt))
		comp, err := delta.Compress(dlt)
		if err != nil {
			return f, err
		}
		f.DiffCompBytes += int64(len(comp))
		prev = cur
	}
	f.DiffFactor = float64(f.RawBytes) / float64(f.DiffBytes)
	f.CompoundFactor = float64(f.RawBytes) / float64(f.DiffCompBytes)
	return f, nil
}

// makeTree generates source-like files: lines of identifier-ish tokens,
// so both differencing (most lines survive a day) and compression
// (token redundancy) have realistic purchase. The paper's experiment
// diffed the tree *after compiling it*, so snapshots also include a
// pseudo-binary build artifact per source file (deterministic in the
// file's content) — artifacts barely compress, and they change whenever
// their source does, which is what pulls real-world factors down to the
// ~3x/~5x the paper reports.
func makeTree(rnd *rand.Rand, files int) [][]string {
	words := []string{
		"static", "int", "struct", "return", "err", "buf", "len", "for",
		"if", "s4_object", "segment", "journal", "version", "offset",
		"block", "drive", "client", "request", "window", "history",
	}
	tree := make([][]string, files)
	for i := range tree {
		n := 40 + rnd.Intn(400)
		lines := make([]string, n)
		for j := range lines {
			var sb strings.Builder
			for w := 0; w < 3+rnd.Intn(8); w++ {
				sb.WriteString(words[rnd.Intn(len(words))])
				if rnd.Intn(3) != 0 {
					fmt.Fprintf(&sb, "_%d%x", rnd.Intn(10000), rnd.Uint32())
				}
				sb.WriteByte(' ')
			}
			lines[j] = sb.String()
		}
		tree[i] = lines
	}
	return tree
}

// evolve applies one day of development: a quarter of the files get
// line edits, insertions, and deletions (the paper's tree was the S4
// project itself, under active development).
func evolve(rnd *rand.Rand, tree [][]string) {
	edits := len(tree)/4 + 1
	for e := 0; e < edits; e++ {
		f := rnd.Intn(len(tree))
		lines := tree[f]
		for c := 0; c < 20+rnd.Intn(40); c++ {
			switch rnd.Intn(3) {
			case 0: // modify a line
				if len(lines) > 0 {
					lines[rnd.Intn(len(lines))] = fmt.Sprintf("edited_%d_%x ", rnd.Intn(1000), rnd.Uint64())
				}
			case 1: // insert a line
				pos := rnd.Intn(len(lines) + 1)
				lines = append(lines[:pos], append([]string{fmt.Sprintf("new_line_%d_%x ", rnd.Intn(1000), rnd.Uint64())}, lines[pos:]...)...)
			default: // delete a line
				if len(lines) > 1 {
					pos := rnd.Intn(len(lines))
					lines = append(lines[:pos], lines[pos+1:]...)
				}
			}
		}
		tree[f] = lines
	}
}

// snapshot flattens the compiled tree to one byte stream: each source
// file followed by its build artifact.
func snapshot(tree [][]string) []byte {
	var sb strings.Builder
	for i, lines := range tree {
		fmt.Fprintf(&sb, "== file %d ==\n", i)
		size := 0
		for _, l := range lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
			size += len(l) + 1
		}
		fmt.Fprintf(&sb, "== object %d ==\n", i)
		sb.Write(artifact(lines, size/2))
	}
	return []byte(sb.String())
}

// artifact derives a pseudo-binary object file from source content:
// deterministic (unchanged source → identical artifact, so differencing
// matches it) but high-entropy (compression gains almost nothing).
func artifact(lines []string, size int) []byte {
	h := uint64(1469598103934665603)
	for _, l := range lines {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= 1099511628211
		}
	}
	out := make([]byte, size)
	x := h
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = byte(x >> 33)
	}
	return out
}

// Render formats the Fig. 7 table.
func Render(poolBytes int64, f Factors, ps []Projection) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: projected detection window (%.0fGB history pool)\n", float64(poolBytes)/(1<<30))
	fmt.Fprintf(&b, "  measured factors over %d daily snapshots: differencing %.1fx, +compression %.1fx\n",
		f.Days, f.DiffFactor, f.CompoundFactor)
	fmt.Fprintf(&b, "  %-12s %10s %14s %14s\n", "workload", "baseline", "differenced", "compressed")
	for _, p := range ps {
		fmt.Fprintf(&b, "  %-12s %8.0f d %12.0f d %12.0f d\n",
			p.Workload.Name, p.Baseline, p.Differenced, p.Compressed)
	}
	return b.String()
}
