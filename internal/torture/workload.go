package torture

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

// snapshot is the oracle's record of one acknowledged mutation: the
// externally observable state of the object at that timestamp.
type snapshot struct {
	at      types.Timestamp
	deleted bool
	data    []byte
	attr    []byte
}

// modelObject mirrors one drive object. snaps is append-only and
// time-ordered; every acked mutating op adds exactly one.
type modelObject struct {
	id    types.ObjectID
	snaps []snapshot
}

func (m *modelObject) cur() *snapshot { return &m.snaps[len(m.snaps)-1] }

// auditExpect is one entry of the oracle's op sequence; the recovered
// audit log must be a prefix of it.
type auditExpect struct {
	op   types.Op
	obj  types.ObjectID
	user types.UserID
	ok   bool
	at   types.Timestamp // op time; bounds what window-aging may trim
}

// syncMark records a durability point: when Sync (or Checkpoint)
// returned, nWrites device writes had been acknowledged, and every op
// with timestamp <= at was guaranteed durable. Audit records are
// batched a block at a time (§5.1.4) and are only guaranteed durable
// by checkpoints, so cp distinguishes those.
type syncMark struct {
	nWrites int
	at      types.Timestamp
	cp      bool
}

// run is the finished workload: the recording plus the oracle needed to
// judge any crash image of it.
type run struct {
	cfg     Config
	rec     *disk.FaultDisk
	opts    core.Options
	objects []*modelObject
	audits  []auditExpect
	syncs   []syncMark
	endTime types.Timestamp
	// relaxed is set for skip-mode retention policies: versions the
	// policy declined to retain read back as typed ErrNoVersion, so the
	// snapshot oracle accepts exact-or-ErrNoVersion (never garbage).
	relaxed bool
	// deltaBlocks / skippedVersions are the workload drive's
	// DeltaBlocksWritten and PolicySkippedVersions counters at the end
	// of the run, so policy sweeps can assert the paths they mean to
	// cover actually fired.
	deltaBlocks     int64
	skippedVersions int64
}

func everyoneACL() []types.ACLEntry {
	return []types.ACLEntry{{User: types.EveryoneID, Perm: types.PermAll}}
}

// runWorkload formats a drive on a fresh recording device and executes
// cfg.Ops seeded random operations over it, maintaining the oracle as
// it goes. Any divergence between drive and oracle during the workload
// itself is an error (the harness, not the drive, is then broken).
func runWorkload(cfg Config) (*run, error) {
	clk := vclock.NewVirtual()
	rec := disk.NewFault(cfg.DiskBytes)
	opts := core.Options{
		Clock:                clk,
		SegBlocks:            cfg.SegBlocks,
		CheckpointBlocks:     cfg.CheckpointBlocks,
		Window:               cfg.Window,
		BlockCacheBytes:      1 << 20,
		ObjectCacheCount:     2*cfg.MaxObjects + 16,
		CheckpointEvery:      cfg.CheckpointEvery,
		UnsafeImmediateReuse: cfg.UnsafeImmediateReuse,
	}
	drv, err := core.Format(rec, opts)
	if err != nil {
		return nil, fmt.Errorf("torture: format: %w", err)
	}
	w := &run{cfg: cfg, rec: rec, opts: opts}
	if cfg.Policy != (types.Policy{}) {
		// The retention policy is part of the mkfs baseline (set before
		// recording starts), so every crash image recovers under it and
		// both recovery paths must classify history identically.
		if err := drv.SetPolicy(types.AdminCred(), 0, cfg.Policy); err != nil {
			return nil, fmt.Errorf("torture: set policy: %w", err)
		}
		w.audits = append(w.audits, auditExpect{
			op: types.OpSetPolicy, obj: 0, user: types.AdminUser, ok: true, at: drv.Now(),
		})
		w.relaxed = cfg.Policy.Mode != types.ModeEveryVersion
	}
	// Crash points cover the workload, not mkfs: everything from here
	// on is journaled.
	rec.StartRecording()
	rng := rand.New(rand.NewSource(cfg.Seed))
	creds := make([]types.Cred, cfg.Clients)
	for i := range creds {
		creds[i] = types.Cred{User: types.UserID(100 + i), Client: types.ClientID(1 + i)}
	}
	tick := func() { clk.Advance(time.Millisecond) }
	audit := func(op types.Op, obj types.ObjectID, cred types.Cred, ok bool) {
		w.audits = append(w.audits, auditExpect{op: op, obj: obj, user: cred.User, ok: ok, at: drv.Now()})
	}
	live := func() []*modelObject {
		var out []*modelObject
		for _, m := range w.objects {
			if !m.cur().deleted {
				out = append(out, m)
			}
		}
		return out
	}

	for i := 0; i < cfg.Ops; i++ {
		cred := creds[rng.Intn(len(creds))]
		objs := live()
		op := rng.Intn(100)
		switch {
		case (op < 10 && len(w.objects) < cfg.MaxObjects) || len(objs) == 0:
			attr := randBytes(rng, 1+rng.Intn(48))
			id, err := drv.Create(cred, everyoneACL(), attr)
			if err != nil {
				return nil, fmt.Errorf("torture: op %d create: %w", i, err)
			}
			audit(types.OpCreate, id, cred, true)
			w.objects = append(w.objects, &modelObject{id: id, snaps: []snapshot{{
				at: drv.Now(), attr: attr,
			}}})

		case op < 50: // overwrite somewhere, possibly past EOF (a hole)
			m := objs[rng.Intn(len(objs))]
			off := rng.Intn(len(m.cur().data) + types.BlockSize)
			n := 1 + rng.Intn(cfg.MaxWriteBlocks*types.BlockSize)
			data := randBytes(rng, n)
			if cfg.Policy.DeltaEnabled && rng.Intn(2) == 0 {
				// Small-diff overwrite: mostly re-write the current
				// bytes with a few mutations. Random payloads encode to
				// full-size deltas that conversion declines to pack, so
				// without these the delta path would go unexercised.
				cur := m.cur().data
				for j := 0; j < n && off+j < len(cur); j++ {
					data[j] = cur[off+j]
				}
				for t := 0; t < 4; t++ {
					data[rng.Intn(n)] ^= byte(1 + rng.Intn(255))
				}
			}
			if err := drv.Write(cred, m.id, uint64(off), data); err != nil {
				return nil, fmt.Errorf("torture: op %d write: %w", i, err)
			}
			audit(types.OpWrite, m.id, cred, true)
			next := m.cur().clone(drv.Now())
			for len(next.data) < off+n {
				next.data = append(next.data, 0)
			}
			copy(next.data[off:], data)
			m.snaps = append(m.snaps, next)

		case op < 62: // append
			m := objs[rng.Intn(len(objs))]
			data := randBytes(rng, 1+rng.Intn(types.BlockSize))
			if _, err := drv.Append(cred, m.id, data); err != nil {
				return nil, fmt.Errorf("torture: op %d append: %w", i, err)
			}
			audit(types.OpAppend, m.id, cred, true)
			next := m.cur().clone(drv.Now())
			next.data = append(next.data, data...)
			m.snaps = append(m.snaps, next)

		case op < 72: // truncate, shrink or grow
			m := objs[rng.Intn(len(objs))]
			var size int
			if cur := len(m.cur().data); cur > 0 && rng.Intn(2) == 0 {
				size = rng.Intn(cur)
			} else {
				size = len(m.cur().data) + rng.Intn(types.BlockSize)
			}
			if err := drv.Truncate(cred, m.id, uint64(size)); err != nil {
				return nil, fmt.Errorf("torture: op %d truncate: %w", i, err)
			}
			audit(types.OpTruncate, m.id, cred, true)
			next := m.cur().clone(drv.Now())
			for len(next.data) < size {
				next.data = append(next.data, 0)
			}
			next.data = next.data[:size]
			m.snaps = append(m.snaps, next)

		case op < 78: // setattr
			m := objs[rng.Intn(len(objs))]
			attr := randBytes(rng, rng.Intn(64))
			if err := drv.SetAttr(cred, m.id, attr); err != nil {
				return nil, fmt.Errorf("torture: op %d setattr: %w", i, err)
			}
			audit(types.OpSetAttr, m.id, cred, true)
			next := m.cur().clone(drv.Now())
			next.attr = attr
			m.snaps = append(m.snaps, next)

		case op < 81: // grant a random extra ACL slot (slot 0 stays Everyone)
			m := objs[rng.Intn(len(objs))]
			idx := 1 + rng.Intn(3)
			entry := types.ACLEntry{User: creds[rng.Intn(len(creds))].User, Perm: types.PermRead}
			if err := drv.SetACL(cred, m.id, idx, entry); err != nil {
				return nil, fmt.Errorf("torture: op %d setacl: %w", i, err)
			}
			audit(types.OpSetACL, m.id, cred, true)
			m.snaps = append(m.snaps, m.cur().clone(drv.Now()))

		case op < 84 && len(objs) > 2: // delete
			m := objs[rng.Intn(len(objs))]
			if err := drv.Delete(cred, m.id); err != nil {
				return nil, fmt.Errorf("torture: op %d delete: %w", i, err)
			}
			audit(types.OpDelete, m.id, cred, true)
			next := m.cur().clone(drv.Now())
			next.deleted = true
			next.data, next.attr = nil, nil
			m.snaps = append(m.snaps, next)

		default: // read, current or historical, verified inline
			m := w.objects[rng.Intn(len(w.objects))]
			sn := &m.snaps[rng.Intn(len(m.snaps))]
			at := sn.at
			winCut := drv.Now() - types.Timestamp(cfg.Window)
			if rng.Intn(3) == 0 || sn.at <= winCut || w.relaxed {
				// Versions older than the detection window may have
				// been legitimately reclaimed; only current state is
				// guaranteed then. Likewise under skip-mode retention,
				// where a historical version may read as ErrNoVersion:
				// the inline oracle stays strict by reading current only
				// (crash verification covers history with the relaxed
				// snapshot check).
				sn = m.cur()
				at = types.TimeNowest
			}
			got, err := drv.Read(cred, m.id, 0, uint64(len(sn.data))+1, at)
			if sn.deleted {
				if !errors.Is(err, types.ErrNoObject) {
					return nil, fmt.Errorf("torture: op %d read deleted %v: %v", i, m.id, err)
				}
				audit(types.OpRead, m.id, cred, false)
			} else {
				if err != nil || !bytes.Equal(got, sn.data) {
					return nil, fmt.Errorf("torture: op %d read %v at %v diverged from oracle: %v", i, m.id, at, err)
				}
				audit(types.OpRead, m.id, cred, true)
			}
		}
		tick()

		if rng.Intn(cfg.SyncEveryN) == 0 {
			if err := drv.Sync(cred); err != nil {
				return nil, fmt.Errorf("torture: op %d sync: %w", i, err)
			}
			audit(types.OpSync, 0, cred, true)
			w.syncs = append(w.syncs, syncMark{nWrites: rec.Writes(), at: drv.Now()})
			tick()
		}
		if rng.Intn(cfg.CheckpointEveryN) == 0 ||
			(cfg.IndexFlushEvery > 0 && (i+1)%cfg.IndexFlushEvery == 0) {
			if err := drv.Checkpoint(); err != nil {
				return nil, fmt.Errorf("torture: op %d checkpoint: %w", i, err)
			}
			// Checkpoint makes everything durable too; not audited.
			w.syncs = append(w.syncs, syncMark{nWrites: rec.Writes(), at: drv.Now(), cp: true})
			tick()
		}
		if rng.Intn(cfg.CleanEveryN) == 0 {
			if _, err := drv.CleanOnce(); err != nil {
				return nil, fmt.Errorf("torture: op %d clean: %w", i, err)
			}
			tick()
		}
	}
	w.endTime = drv.Now()
	st := drv.DriveStats()
	w.deltaBlocks = st.DeltaBlocksWritten
	w.skippedVersions = st.PolicySkippedVersions
	return w, nil
}

func (s *snapshot) clone(at types.Timestamp) snapshot {
	return snapshot{
		at:      at,
		deleted: s.deleted,
		data:    append([]byte(nil), s.data...),
		attr:    append([]byte(nil), s.attr...),
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// isCheckpointSlotWrite reports whether rec is the single vectored
// write that persists one checkpoint slot (object map + segment index
// blob). The two slots sit at blocks 1 and 1+CheckpointBlocks, and the
// blob write always starts at the slot base.
func (w *run) isCheckpointSlotWrite(rec disk.WriteRecord) bool {
	spb := int64(types.BlockSize / disk.SectorSize)
	cp := int64(w.cfg.CheckpointBlocks)
	return rec.Sector == 1*spb || rec.Sector == (1+cp)*spb
}

// lastMark returns the newest durability point whose writes all fit in
// a crash image of k writes, or nil if nothing was synced by then.
func (w *run) lastMark(k int) *syncMark {
	for i := len(w.syncs) - 1; i >= 0; i-- {
		if w.syncs[i].nWrites <= k {
			return &w.syncs[i]
		}
	}
	return nil
}

// lastCpMark is lastMark restricted to checkpoints — the durability
// bound for audit records, which sync in blocks, not per client Sync.
func (w *run) lastCpMark(k int) *syncMark {
	for i := len(w.syncs) - 1; i >= 0; i-- {
		if w.syncs[i].cp && w.syncs[i].nWrites <= k {
			return &w.syncs[i]
		}
	}
	return nil
}
