package torture

import (
	"os"
	"testing"
	"time"

	"s4/internal/types"
)

// sweepSeeds picks the seeds for the main sweep: one seed in -short
// runs, a few in the default tier-1 run, and a wide nightly sweep when
// S4_TORTURE_LONG is set (see .github/workflows/ci.yml).
func sweepSeeds(t *testing.T) ([]int64, Config) {
	cfg := Config{
		Torn:              true,
		PostRecoverySmoke: true,
	}
	if os.Getenv("S4_TORTURE_LONG") != "" {
		cfg.Ops = 1000
		// Deterministic index-write cadence on top of the random
		// checkpoints: the nightly sweep crosses many more checkpoint-
		// slot (and therefore segment-index) write boundaries.
		cfg.IndexFlushEvery = 11
		return []int64{1, 2, 3, 4, 5, 6, 7, 8}, cfg
	}
	if testing.Short() {
		return []int64{1}, cfg
	}
	return []int64{1, 2, 3}, cfg
}

// TestTortureSweep is the tentpole check: enumerate every crash point
// of a seeded workload (plus a torn variant of each multi-sector
// write) and hold all five recovery invariants at each one.
func TestTortureSweep(t *testing.T) {
	seeds, cfg := sweepSeeds(t)
	for _, seed := range seeds {
		seed := seed
		t.Run(name(seed), func(t *testing.T) {
			cfg := cfg
			cfg.Seed = seed
			cfg.Logf = t.Logf
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("seed=%d: %d ops, %d objects, %d syncs, %d device writes -> %d crash points (%d torn), %d violations",
				seed, res.Ops, res.Objects, res.Syncs, res.Writes, res.CrashPoints, res.TornPoints, len(res.Violations))
			t.Logf("seed=%d: restart paths: %d indexed opens (%d entries replayed), %d fallbacks, full-scan replayed %d",
				seed, res.IndexLoads, res.ReplayIndexed, res.IndexFallbacks, res.ReplayFull)
			for i, v := range res.Violations {
				if i == 10 {
					t.Errorf("... and %d more", len(res.Violations)-10)
					break
				}
				t.Errorf("%s", v)
			}
			if res.CrashPoints < 500 {
				t.Fatalf("only %d crash points enumerated; want >= 500", res.CrashPoints)
			}
			// The equivalence battery must actually exercise both paths:
			// a sweep where no image anchored at the index proves nothing.
			if res.IndexLoads == 0 {
				t.Fatalf("no crash image recovered via the segment index")
			}
			if res.ReplayFull <= res.ReplayIndexed {
				t.Errorf("full-scan replay (%d entries) not above indexed replay (%d): index not shortening recovery",
					res.ReplayFull, res.ReplayIndexed)
			}
		})
	}
}

// TestBrokenReuseBarrierCaught proves the harness has teeth. With the
// cleaner's deferred-reuse barrier disabled (segments recycled before
// the checkpoint covering their relocation is durable — DESIGN.md §6),
// some crash point must recover state that references a clobbered
// segment, and the sweep must flag it. The identical configuration
// with the barrier intact must stay clean.
func TestBrokenReuseBarrierCaught(t *testing.T) {
	base := Config{
		Ops:              400,
		Window:           250 * time.Millisecond,
		SegBlocks:        16,
		SyncEveryN:       3,
		CheckpointEveryN: 25,
		CleanEveryN:      4,
	}
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		broken := base
		broken.Seed = seed
		broken.UnsafeImmediateReuse = true
		res, err := Run(broken)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) == 0 {
			continue
		}
		t.Logf("seed=%d: broken barrier caught at %d of %d crash points, e.g. %s",
			seed, len(res.Violations), res.CrashPoints, res.Violations[0])
		ctl := base
		ctl.Seed = seed
		resC, err := Run(ctl)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range resC.Violations {
			t.Errorf("barrier intact, yet: %s", v)
		}
		return
	}
	t.Fatalf("deferred-reuse barrier disabled, yet no violation across seeds %v", seeds)
}

// TestTortureVectoredSeals sweeps a workload whose overwrites span up
// to 6 blocks on 8-block segments (7 payload slots), so nearly every
// vectored append crosses a segment seal mid-batch. This pins down the
// group-commit pipeline's seal hand-off: a crash between the payload
// flush and the summary write of either segment must still recover.
func TestTortureVectoredSeals(t *testing.T) {
	cfg := Config{
		Ops:               250,
		SegBlocks:         8,
		MaxWriteBlocks:    6,
		DiskBytes:         16 << 20,
		Torn:              true,
		PostRecoverySmoke: true,
		MaxCrashPoints:    600,
		Logf:              t.Logf,
	}
	seeds := []int64{1, 2}
	if testing.Short() || os.Getenv("S4_STRESS_SHORT") != "" {
		seeds = seeds[:1]
		cfg.Ops = 120
		cfg.MaxCrashPoints = 200
	}
	for _, seed := range seeds {
		cfg := cfg
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed=%d: %d ops, %d device writes -> %d crash points (%d torn), %d violations",
			seed, res.Ops, res.Writes, res.CrashPoints, res.TornPoints, len(res.Violations))
		for i, v := range res.Violations {
			if i == 10 {
				t.Errorf("... and %d more", len(res.Violations)-10)
				break
			}
			t.Errorf("%s", v)
		}
	}
}

// TestTortureCheckpointHeavy sweeps a workload that emits a landmark
// checkpoint every ~3 journal entries, with frequent cleaning so the
// index is also pruned, relocated, and dropped mid-run. Every crash
// image must recover a landmark index that matches a from-scratch chain
// walk (verifyImage's CheckLandmarks(true) invariant) while all the
// usual durability and history invariants hold.
func TestTortureCheckpointHeavy(t *testing.T) {
	cfg := Config{
		Ops:               250,
		CheckpointEvery:   3,
		CleanEveryN:       10,
		DiskBytes:         16 << 20,
		Torn:              true,
		PostRecoverySmoke: true,
		MaxCrashPoints:    600,
		Logf:              t.Logf,
	}
	seeds := []int64{1, 2}
	if testing.Short() || os.Getenv("S4_STRESS_SHORT") != "" {
		seeds = seeds[:1]
		cfg.Ops = 120
		cfg.MaxCrashPoints = 200
	}
	for _, seed := range seeds {
		cfg := cfg
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed=%d: %d ops, %d device writes -> %d crash points (%d torn), %d violations",
			seed, res.Ops, res.Writes, res.CrashPoints, res.TornPoints, len(res.Violations))
		for i, v := range res.Violations {
			if i == 10 {
				t.Errorf("... and %d more", len(res.Violations)-10)
				break
			}
			t.Errorf("%s", v)
		}
	}
}

// TestTortureIndexBoundaries checkpoints after exactly every 5 ops, so
// the crash-point sweep (with torn halves) lands densely on and inside
// the checkpoint-slot writes that persist the segment index. Every
// image must hold all invariants — including recovery equivalence —
// and a tear that validates the object-map blob but cuts the index
// region behind it must degrade to full replay (IndexFallbacks), never
// wedge or silently diverge.
func TestTortureIndexBoundaries(t *testing.T) {
	cfg := Config{
		Ops:                 200,
		IndexFlushEvery:     5,
		CleanEveryN:         12,
		DiskBytes:           16 << 20,
		Torn:                true,
		TornCheckpointSweep: true,
		PostRecoverySmoke:   true,
		MaxCrashPoints:      600,
		Logf:                t.Logf,
	}
	seeds := []int64{1, 2}
	if testing.Short() || os.Getenv("S4_STRESS_SHORT") != "" {
		seeds = seeds[:1]
		cfg.Ops = 100
		cfg.MaxCrashPoints = 200
	}
	var loads, fallbacks int64
	for _, seed := range seeds {
		cfg := cfg
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed=%d: %d crash points (%d torn): %d indexed opens, %d fallbacks, replay %d indexed / %d full",
			seed, res.CrashPoints, res.TornPoints, res.IndexLoads, res.IndexFallbacks, res.ReplayIndexed, res.ReplayFull)
		for i, v := range res.Violations {
			if i == 10 {
				t.Errorf("... and %d more", len(res.Violations)-10)
				break
			}
			t.Errorf("%s", v)
		}
		loads += res.IndexLoads
		fallbacks += res.IndexFallbacks
	}
	if loads == 0 {
		t.Fatalf("no crash image recovered via the segment index")
	}
	if fallbacks == 0 {
		t.Errorf("no crash image fell back to full replay: the sweep never crossed a partial-index boundary")
	}
}

// TestTorturePolicyModes sweeps the crash-image battery under each
// retention policy mode with reverse-delta conversion on (DESIGN.md
// §16). every-version keeps the strict oracle: delta compression must
// be lossless, so every durable version reads back byte-exact through
// whatever chains formed, at every crash point, on both recovery
// paths. The skip modes run the relaxed oracle: an unretained version
// may read as typed ErrNoVersion, but a read that succeeds must be
// byte-exact — retention never fabricates history. Each run asserts
// conversion actually fired, so the sweep cannot pass vacuously.
func TestTorturePolicyModes(t *testing.T) {
	modes := []types.PolicyMode{
		types.ModeEveryVersion, types.ModeLandmarkOnly, types.ModeOnClose,
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{
				Seed:           7,
				Ops:            200,
				MaxWriteBlocks: 4,
				DiskBytes:      16 << 20,
				// Dense landmarks: under landmark-only retention most
				// versions sit at/after the newest landmark, so the
				// sweep crosses both retained (converted) and dropped
				// (skip-poisoned) versions instead of dropping
				// everything and leaving conversion unexercised.
				CheckpointEvery:   3,
				Torn:              true,
				PostRecoverySmoke: true,
				MaxCrashPoints:    600,
				Policy:            types.Policy{Mode: mode, DeltaEnabled: true},
				Logf:              t.Logf,
			}
			if testing.Short() || os.Getenv("S4_STRESS_SHORT") != "" {
				cfg.Ops = 100
				cfg.MaxCrashPoints = 200
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Non-vacuousness, per mode. Landmark-only can never
			// convert: blocks at/before the newest landmark are
			// address-pinned by checkpoint images (keyframes by
			// design), and younger blocks are dropped — so there the
			// sweep asserts retention drops instead.
			if mode != types.ModeLandmarkOnly && res.DeltaBlocks == 0 {
				t.Fatal("workload wrote no packed delta blocks; the sweep would not cover conversion")
			}
			if mode != types.ModeEveryVersion && res.SkippedVersions == 0 {
				t.Fatal("workload dropped no versions; the sweep would not cover retention skips")
			}
			t.Logf("mode=%v: %d ops, %d packed delta blocks, %d dropped versions, %d device writes -> %d crash points (%d torn), %d violations",
				mode, res.Ops, res.DeltaBlocks, res.SkippedVersions, res.Writes, res.CrashPoints, res.TornPoints, len(res.Violations))
			for i, v := range res.Violations {
				if i == 10 {
					t.Errorf("... and %d more", len(res.Violations)-10)
					break
				}
				t.Errorf("%s", v)
			}
		})
	}
}

func name(seed int64) string {
	return "seed=" + string(rune('0'+seed%10))
}
