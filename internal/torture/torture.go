// Package torture is the deterministic crash-consistency torture
// harness for the S4 drive.
//
// A seeded random workload (multiple clients issuing create / write /
// append / truncate / setattr / setacl / delete / read, interleaved
// with Sync, Checkpoint, and CleanOnce) runs over a recording fault
// device (disk.FaultDisk) while an oracle mirrors every acknowledged
// state change. The harness then materializes the crash image after
// *every* acknowledged device write — plus, optionally, a torn prefix
// of each multi-sector write — reopens the drive on it, and checks the
// recovery invariants the paper promises (§3.3, §4.2):
//
//  1. recovery — reopening any crash image never errors or panics;
//  2. durability — every version acknowledged by Sync (or Checkpoint)
//     before the crash reads back exactly at its timestamp;
//  3. history — all older oracle snapshots inside the detection window
//     reproduce exactly under time-based reads;
//  4. audit — the recovered audit log is a contiguous run of the
//     oracle's op sequence, in order, with matching
//     op/object/user/outcome; only records older than the detection
//     window may age off the front, only records newer than the last
//     durable checkpoint may fall off the back;
//  5. reuse — no durable structure references a segment the cleaner
//     returned to the allocator (Drive.CheckInvariants, the
//     deferred-reuse barrier of DESIGN.md §6);
//  6. landmarks — the recovered landmark index matches a from-scratch
//     chain walk;
//  7. equivalence — opening the same image with the persisted segment
//     index ignored (full-scan recount, DESIGN.md §14) recovers
//     byte-identical state and serves identical golden reads;
//
// plus a post-recovery smoke op proving the reopened drive still
// serves writes. Everything is driven by Config.Seed: a failing crash
// point reproduces exactly.
package torture

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"s4/internal/audit"
	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

// Config parameterizes one torture run. The zero value of any field
// takes the default noted on it.
type Config struct {
	Seed int64
	// Ops is the number of client operations in the workload (300).
	Ops int
	// Clients is the number of distinct credentials issuing ops (3).
	Clients int
	// MaxObjects caps how many objects the workload creates (20).
	MaxObjects int
	// DiskBytes sizes the simulated device (8MB). Small on purpose:
	// every crash point replays recovery over the whole device.
	DiskBytes int64
	// SegBlocks / CheckpointBlocks parameterize the segment log (16/16).
	SegBlocks        int
	CheckpointBlocks int
	// MaxWriteBlocks caps a single overwrite's size in blocks (2).
	// Raising it past SegBlocks-1 makes vectored appends routinely
	// cross segment seals, exercising AppendVec's mid-batch seal path.
	MaxWriteBlocks int
	// CheckpointEvery forwards to core.Options.CheckpointEvery, the
	// landmark-checkpoint cadence in journal entries (0 = core default,
	// negative disables). Small values make every object emit landmarks
	// constantly, so crash images land between a checkpoint entry and
	// its journal flush, mid-aging, and mid-compaction — the index
	// rebuild paths recovery must get right.
	CheckpointEvery int
	// IndexFlushEvery, when positive, takes a drive checkpoint after
	// exactly every N ops — a deterministic segment-index write cadence
	// on top of the random CheckpointEveryN ones, so the crash-point
	// sweep lands densely on and inside the checkpoint-slot writes that
	// carry the index (and, with Torn, on their torn halves: a tear past
	// the object-map blob but inside the index region is precisely the
	// partial-index-record case that must degrade to full replay).
	IndexFlushEvery int
	// Window is the detection window (1h — far longer than the virtual
	// time the workload spans, so nothing ages out and every snapshot
	// stays checkable).
	Window time.Duration
	// SyncEveryN / CheckpointEveryN / CleanEveryN set the expected op
	// gap between Syncs (4), Checkpoints (40), and CleanOnce calls (30).
	SyncEveryN       int
	CheckpointEveryN int
	CleanEveryN      int
	// Torn adds, for every multi-sector write, a second crash image in
	// which only the first half of that write's sectors persisted.
	Torn bool
	// TornCheckpointSweep (with Torn) tears every checkpoint-slot write
	// at every sector boundary, not just the halfway point. The segment
	// index rides at the tail of the slot blob behind the object map, so
	// only a narrow band of tear positions validates the object-map CRC
	// while cutting the index — the exact partial-index-record images
	// that must fall back to full replay. The half-point tear almost
	// never lands there; the per-sector sweep guarantees coverage.
	TornCheckpointSweep bool
	// MaxCrashPoints caps how many plain write boundaries are verified
	// (0 = all of them); sampling keeps the first and last.
	MaxCrashPoints int
	// PostRecoverySmoke issues a create+write+sync+read on each
	// recovered image to prove the drive still serves.
	PostRecoverySmoke bool
	// Policy, when non-zero, is installed as the drive-wide retention
	// policy (key 0) before the workload starts, so every crash image
	// recovers under it. DeltaEnabled routes outgoing versions through
	// reverse-delta conversion; the skip modes (landmark-only,
	// on-close) relax the snapshot oracle to exact-or-ErrNoVersion —
	// an unretained version may read back as a typed miss, but never as
	// fabricated bytes (DESIGN.md §16).
	Policy types.Policy
	// UnsafeImmediateReuse forwards to core.Options: it disables the
	// cleaner's deferred-reuse barrier so regression tests can prove
	// the harness catches the resulting corruption.
	UnsafeImmediateReuse bool
	// NoDifferential skips the recovery-equivalence check. By default
	// every crash image is opened twice — once anchored at the persisted
	// segment index, once with DisableSegIndex forcing the full-scan
	// recount — and the two recovered states must be byte-identical
	// (StateDigest), hold all invariants, and serve identical golden
	// reads at several history depths. Opt out only where the doubled
	// open cost matters more than the equivalence proof.
	NoDifferential bool
	// Logf, when set, receives progress lines (pass t.Logf).
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Ops == 0 {
		c.Ops = 300
	}
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.MaxObjects == 0 {
		c.MaxObjects = 20
	}
	if c.DiskBytes == 0 {
		c.DiskBytes = 8 << 20
	}
	if c.SegBlocks == 0 {
		c.SegBlocks = 16
	}
	if c.CheckpointBlocks == 0 {
		c.CheckpointBlocks = 16
	}
	if c.Window == 0 {
		c.Window = time.Hour
	}
	if c.SyncEveryN == 0 {
		c.SyncEveryN = 4
	}
	if c.CheckpointEveryN == 0 {
		c.CheckpointEveryN = 40
	}
	if c.CleanEveryN == 0 {
		c.CleanEveryN = 30
	}
	if c.MaxWriteBlocks == 0 {
		c.MaxWriteBlocks = 2
	}
}

// Violation is one broken invariant at one crash point.
type Violation struct {
	CrashPoint int  // writes persisted before the crash
	Torn       bool // write CrashPoint itself half-persisted
	Invariant  string
	Detail     string
}

func (v Violation) String() string {
	torn := ""
	if v.Torn {
		torn = "+torn"
	}
	return fmt.Sprintf("crash@%d%s [%s]: %s", v.CrashPoint, torn, v.Invariant, v.Detail)
}

// Result summarizes a torture run.
type Result struct {
	Ops         int // workload operations executed
	Writes      int // device writes recorded
	Syncs       int // durability points in the workload
	Objects     int // objects the workload created
	CrashPoints int // crash images verified (plain + torn)
	TornPoints  int // of which torn
	// Restart-path accounting across the verification opens (the
	// equivalence battery's observability: every image reports how it
	// was recovered, so a sweep that silently stopped exercising the
	// index would show up here, not pass vacuously).
	IndexLoads     int64 // opens anchored at a persisted segment index
	IndexFallbacks int64 // opens that found a checkpoint but fell back to full scan
	ReplayIndexed  int64 // journal entries replayed by the indexed opens
	ReplayFull     int64 // journal entries replayed by the full-scan opens
	// DeltaBlocks / SkippedVersions are the workload drive's
	// packed-delta-block and retention-drop counts, so policy sweeps
	// can assert the paths they mean to cover actually fired.
	DeltaBlocks     int64
	SkippedVersions int64
	Violations      []Violation
}

// Run executes the workload and verifies every crash point.
func Run(cfg Config) (Result, error) {
	cfg.fill()
	w, err := runWorkload(cfg)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Ops:             cfg.Ops,
		Writes:          w.rec.Writes(),
		Syncs:           len(w.syncs),
		Objects:         len(w.objects),
		DeltaBlocks:     w.deltaBlocks,
		SkippedVersions: w.skippedVersions,
	}
	points := make([]int, 0, res.Writes+1)
	for k := 0; k <= res.Writes; k++ {
		points = append(points, k)
	}
	if cfg.MaxCrashPoints > 0 && len(points) > cfg.MaxCrashPoints {
		sampled := make([]int, 0, cfg.MaxCrashPoints)
		stride := float64(len(points)-1) / float64(cfg.MaxCrashPoints-1)
		for i := 0; i < cfg.MaxCrashPoints; i++ {
			sampled = append(sampled, int(float64(i)*stride))
		}
		sampled[len(sampled)-1] = len(points) - 1
		points = sampled
	}
	for i, k := range points {
		img, err := w.rec.ImageAt(k)
		if err != nil {
			return res, err
		}
		// The equivalence check needs a second pristine materialization:
		// verification itself mutates the opened image (audit records,
		// post-recovery smoke writes), so the full-scan open cannot share
		// the device the indexed open already touched.
		var img2 disk.Device
		if !cfg.NoDifferential {
			if img2, err = w.rec.ImageAt(k); err != nil {
				return res, err
			}
		}
		res.CrashPoints++
		res.Violations = append(res.Violations, w.verifyImage(&res, img, img2, k, false)...)
		if cfg.Torn && k < res.Writes {
			if rec := w.rec.Record(k); rec.Sectors() >= 2 {
				sec := rec.Sectors()
				keeps := []int{sec / 2}
				if cfg.TornCheckpointSweep && w.isCheckpointSlotWrite(rec) {
					keeps = keeps[:0]
					for s := 1; s < sec; s++ {
						keeps = append(keeps, s)
					}
				}
				for _, keep := range keeps {
					timg, err := w.rec.TornImageAt(k, keep)
					if err != nil {
						return res, err
					}
					var timg2 disk.Device
					if !cfg.NoDifferential {
						if timg2, err = w.rec.TornImageAt(k, keep); err != nil {
							return res, err
						}
					}
					res.CrashPoints++
					res.TornPoints++
					res.Violations = append(res.Violations, w.verifyImage(&res, timg, timg2, k, true)...)
				}
			}
		}
		if cfg.Logf != nil && (i+1)%200 == 0 {
			cfg.Logf("torture seed=%d: %d/%d crash points, %d violations",
				cfg.Seed, i+1, len(points), len(res.Violations))
		}
	}
	return res, nil
}

// verifyImage reopens one crash image and checks every invariant.
// Panics anywhere in recovery or verification count as recovery
// violations ("never wedges"), not test crashes. dev2, when non-nil, is
// a second pristine materialization of the same image for the
// recovery-equivalence check (invariant 7).
func (w *run) verifyImage(res *Result, dev, dev2 disk.Device, k int, torn bool) (vs []Violation) {
	viol := func(inv, format string, args ...any) {
		vs = append(vs, Violation{CrashPoint: k, Torn: torn, Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}
	defer func() {
		if r := recover(); r != nil {
			viol("recovery", "panic: %v", r)
		}
	}()

	// Invariant 1: recovery itself.
	opts := w.opts
	opts.Clock = vclock.NewVirtualAt(w.endTime.Time())
	drv, err := core.Open(dev, opts)
	if err != nil {
		viol("recovery", "reopen failed: %v", err)
		return vs
	}
	// The digest must be taken before any verification traffic: reads
	// below append audit state to the reopened drive, which would
	// diverge it from the freshly opened full-scan twin.
	var idxDigest string
	if dev2 != nil {
		idxDigest = drv.StateDigest()
	}
	st := drv.DriveStats()
	res.IndexLoads += st.IndexLoads
	res.IndexFallbacks += st.IndexFallbacks
	res.ReplayIndexed += st.RecoveryReplayEntries
	admin := types.AdminCred()

	now := drv.Now()
	winCut := now - types.Timestamp(w.opts.Window)
	mark := w.lastMark(k)

	// Invariant 4: the recovered audit log is a contiguous run of the
	// oracle's op sequence — a prefix may have aged out of the
	// detection window and a post-checkpoint tail may be lost, but
	// every checkpoint-covered record inside the window must be
	// present, in order, with matching op/object/user/outcome. Checked
	// first — verification reads below append their own audit records
	// to the reopened drive.
	recs, err := drv.AuditRead(admin, 0, 0)
	if err != nil {
		viol("audit", "audit read failed: %v", err)
	} else if msg := w.checkAudit(recs, w.lastCpMark(k), winCut); msg != "" {
		viol("audit", "%s", msg)
	}

	// Invariant 5: no durable structure reaches into a freed segment.
	if err := drv.CheckInvariants(); err != nil {
		viol("reuse", "%v", err)
	}

	// Invariant 6: the recovered landmark index matches a from-scratch
	// chain walk — every indexed landmark decodes at the sector the
	// chain records it at, and every window-covered checkpoint entry
	// whose root still validates is indexed.
	if err := drv.CheckLandmarks(true); err != nil {
		viol("landmarks", "%v", err)
	}

	// Invariants 2 and 3: everything synced before the crash — the
	// newest durable version of each object and all window-covered
	// history beneath it — must read back exactly.
	if mark != nil {
		for _, m := range w.objects {
			newest := -1
			for si := range m.snaps {
				if m.snaps[si].at <= mark.at {
					newest = si
				}
			}
			for si := 0; si <= newest; si++ {
				sn := &m.snaps[si]
				if sn.at <= winCut {
					continue // aged out of the guarantee
				}
				inv := "history"
				if si == newest {
					inv = "durability"
				}
				if msg := checkSnap(drv, admin, m.id, sn, w.relaxed); msg != "" {
					viol(inv, "object %v: %s", m.id, msg)
				}
			}
		}
	}

	// Unsynced state may be lost, but the drive must still serve it
	// without internal errors: absent entirely, or readable.
	for _, m := range w.objects {
		ai, err := drv.GetAttr(admin, m.id, types.TimeNowest)
		if err != nil {
			if !errors.Is(err, types.ErrNoObject) {
				viol("recovery", "object %v getattr after recovery: %v", m.id, err)
			}
			continue
		}
		if !ai.Deleted && ai.Size > 0 {
			if _, err := drv.Read(admin, m.id, 0, min64(ai.Size, types.MaxIO), types.TimeNowest); err != nil {
				viol("recovery", "object %v unreadable after recovery: %v", m.id, err)
			}
		}
	}

	// The reopened drive must still accept and persist new work.
	if w.cfg.PostRecoverySmoke {
		cred := types.Cred{User: 100, Client: 1}
		payload := []byte("post-crash smoke write")
		id, err := drv.Create(cred, everyoneACL(), nil)
		if err != nil {
			viol("recovery", "post-crash create: %v", err)
			return vs
		}
		if err := drv.Write(cred, id, 0, payload); err != nil {
			viol("recovery", "post-crash write: %v", err)
			return vs
		}
		if err := drv.Sync(cred); err != nil {
			viol("recovery", "post-crash sync: %v", err)
			return vs
		}
		got, err := drv.Read(cred, id, 0, uint64(len(payload)), types.TimeNowest)
		if err != nil || !bytes.Equal(got, payload) {
			viol("recovery", "post-crash readback: %q, %v", got, err)
		}
	}

	// Invariant 7: recovery equivalence — the same crash image opened
	// with the segment index ignored must recover byte-identical state.
	if dev2 != nil {
		vs = append(vs, w.verifyEquivalence(res, dev2, idxDigest, k, torn)...)
	}
	return vs
}

// verifyEquivalence opens a pristine copy of a crash image with
// DisableSegIndex (full-scan recount), requires its recovered state to
// digest-identically match the indexed open, holds the structural
// invariants on it too, and golden-reads every object at several
// history depths — newest durable, oldest in-window, and one in
// between — so "identical state" is proven at the read surface, not
// just the digest.
func (w *run) verifyEquivalence(res *Result, dev disk.Device, idxDigest string, k int, torn bool) (vs []Violation) {
	viol := func(format string, args ...any) {
		vs = append(vs, Violation{CrashPoint: k, Torn: torn, Invariant: "equivalence", Detail: fmt.Sprintf(format, args...)})
	}
	defer func() {
		if r := recover(); r != nil {
			viol("full-scan panic: %v", r)
		}
	}()
	opts := w.opts
	opts.Clock = vclock.NewVirtualAt(w.endTime.Time())
	opts.DisableSegIndex = true
	drv, err := core.Open(dev, opts)
	if err != nil {
		viol("full-scan reopen failed: %v", err)
		return vs
	}
	fullDigest := drv.StateDigest()
	res.ReplayFull += drv.DriveStats().RecoveryReplayEntries
	if fullDigest != idxDigest {
		viol("indexed and full-scan recovery diverged: %s", digestDiff(idxDigest, fullDigest))
	}
	if err := drv.CheckInvariants(); err != nil {
		viol("full-scan invariants: %v", err)
	}
	if err := drv.CheckLandmarks(true); err != nil {
		viol("full-scan landmarks: %v", err)
	}

	mark := w.lastMark(k)
	if mark == nil {
		return vs
	}
	admin := types.AdminCred()
	winCut := drv.Now() - types.Timestamp(w.cfg.Window)
	for _, m := range w.objects {
		newest := -1
		for si := range m.snaps {
			if m.snaps[si].at <= mark.at {
				newest = si
			}
		}
		if newest < 0 {
			continue
		}
		oldest := -1
		for si := 0; si <= newest; si++ {
			if m.snaps[si].at > winCut {
				oldest = si
				break
			}
		}
		if oldest < 0 {
			continue
		}
		depths := []int{newest}
		if oldest != newest {
			depths = append(depths, oldest)
		}
		if mid := (oldest + newest) / 2; mid != newest && mid != oldest {
			depths = append(depths, mid)
		}
		for _, si := range depths {
			if msg := checkSnap(drv, admin, m.id, &m.snaps[si], w.relaxed); msg != "" {
				viol("full-scan golden read, object %v snap %d: %s", m.id, si, msg)
			}
		}
	}
	return vs
}

// digestDiff summarizes the first few differing lines of two state
// digests, so an equivalence violation names the diverged structure
// instead of dumping two full digests.
func digestDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	var diffs []string
	for i := 0; i < len(la) || i < len(lb); i++ {
		var x, y string
		if i < len(la) {
			x = la[i]
		}
		if i < len(lb) {
			y = lb[i]
		}
		if x != y {
			diffs = append(diffs, fmt.Sprintf("line %d: indexed %q vs full %q", i, x, y))
			if len(diffs) == 5 {
				diffs = append(diffs, "...")
				break
			}
		}
	}
	return strings.Join(diffs, "; ")
}

// checkAudit matches the recovered audit records against the oracle's
// op sequence, returning "" if they form a contiguous run of it whose
// absent prefix is entirely older than the detection window (eligible
// for aging) and whose absent tail is entirely newer than the last
// durable checkpoint (audit records batch a block at a time per
// §5.1.4, so individual Syncs do not pin them). Audit timestamps are
// nondecreasing, so aging can only ever trim a prefix and a crash can
// only ever lose a suffix.
func (w *run) checkAudit(recs []audit.Record, mark *syncMark, winCut types.Timestamp) string {
	markAt := types.Timestamp(0)
	if mark != nil {
		markAt = mark.at
	}
	limit := 0
	for limit < len(w.audits) && w.audits[limit].at <= winCut {
		limit++
	}
	match := func(i int) bool {
		if i+len(recs) > len(w.audits) {
			return false
		}
		for j, r := range recs {
			exp := w.audits[i+j]
			if r.Op != exp.op || r.Obj != exp.obj || r.User != exp.user || r.OK != exp.ok {
				return false
			}
		}
		// Everything the oracle has beyond the recovered run must have
		// been unacknowledged when the crash hit.
		return i+len(recs) >= len(w.audits) || w.audits[i+len(recs)].at > markAt
	}
	for i := 0; i <= limit; i++ {
		if match(i) {
			return ""
		}
	}
	first := "none"
	if len(recs) > 0 {
		first = fmt.Sprintf("{op %v obj %v user %v ok %v}", recs[0].Op, recs[0].Obj, recs[0].User, recs[0].OK)
	}
	return fmt.Sprintf("%d recovered records (first %s) do not align with the %d-op oracle (%d age-eligible, durable through %v)",
		len(recs), first, len(w.audits), limit, markAt)
}

// checkSnap verifies one oracle snapshot against the recovered drive,
// returning "" on success. relaxed is the skip-mode retention contract
// (DESIGN.md §16): a version the policy declined to retain may read
// back as typed ErrNoVersion — but a read that succeeds must still be
// byte-exact. Anything else (other errors, wrong bytes) stays a
// violation: retention may cost history availability, never integrity.
func checkSnap(drv *core.Drive, admin types.Cred, id types.ObjectID, sn *snapshot, relaxed bool) string {
	skipOK := func(err error) bool { return relaxed && errors.Is(err, types.ErrNoVersion) }
	if sn.deleted {
		if _, err := drv.Read(admin, id, 0, 1, sn.at); !errors.Is(err, types.ErrNoObject) && !skipOK(err) {
			return fmt.Sprintf("read at %v of deleted version: %v (want ErrNoObject)", sn.at, err)
		}
		return ""
	}
	ai, err := drv.GetAttr(admin, id, sn.at)
	if err != nil {
		if skipOK(err) {
			return ""
		}
		return fmt.Sprintf("getattr at %v: %v", sn.at, err)
	}
	if ai.Deleted {
		return fmt.Sprintf("version at %v reads as deleted", sn.at)
	}
	if ai.Size != uint64(len(sn.data)) {
		return fmt.Sprintf("size at %v = %d, oracle %d", sn.at, ai.Size, len(sn.data))
	}
	if !bytes.Equal(ai.Attr, sn.attr) {
		return fmt.Sprintf("attr at %v = %q, oracle %q", sn.at, ai.Attr, sn.attr)
	}
	var got []byte
	for off := uint64(0); off < ai.Size; off += types.MaxIO {
		part, err := drv.Read(admin, id, off, min64(ai.Size-off, types.MaxIO), sn.at)
		if err != nil {
			if skipOK(err) {
				return ""
			}
			return fmt.Sprintf("read at %v off %d: %v", sn.at, off, err)
		}
		got = append(got, part...)
	}
	if !bytes.Equal(got, sn.data) {
		for i := range got {
			if got[i] != sn.data[i] {
				return fmt.Sprintf("content at %v differs from byte %d of %d", sn.at, i, len(sn.data))
			}
		}
		return fmt.Sprintf("content at %v truncated: %d of %d bytes", sn.at, len(got), len(sn.data))
	}
	return ""
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
