package torture

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

// reopenWeak reopens a (possibly damaged) crash image and exercises it
// without any oracle: the drive may refuse with a clean error, but it
// must never panic and reads must never wedge. Returns a description
// of the first panic, or "".
func reopenWeak(w *run, dev disk.Device) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprintf("panic: %v", r)
		}
	}()
	opts := w.opts
	opts.Clock = vclock.NewVirtualAt(w.endTime.Time())
	drv, err := core.Open(dev, opts)
	if err != nil {
		return "" // clean refusal is acceptable for silent damage
	}
	admin := types.AdminCred()
	_, _ = drv.AuditRead(admin, 0, 0)
	_ = drv.CheckInvariants()
	for _, m := range w.objects {
		ai, err := drv.GetAttr(admin, m.id, types.TimeNowest)
		if err != nil || ai.Deleted || ai.Size == 0 {
			continue
		}
		_, _ = drv.Read(admin, m.id, 0, min64(ai.Size, types.MaxIO), types.TimeNowest)
	}
	return ""
}

// TestDroppedWriteNeverWedges silently discards one acknowledged device
// write (lost-write fault) at every position in turn and requires that
// reopening the resulting image either succeeds or fails cleanly —
// never a panic or a hang. The sector journal records a dropped write
// as empty, so ImageAt materializes the lost-write image directly.
func TestDroppedWriteNeverWedges(t *testing.T) {
	cfg := Config{Seed: 42, Ops: 120}
	cfg.fill()
	w, err := runWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := w.rec.Writes()
	step := 1
	if testing.Short() {
		step = 7
	}
	for j := 0; j < n; j += step {
		img, err := w.rec.ImageDropping(n, j)
		if err != nil {
			t.Fatal(err)
		}
		if msg := reopenWeak(w, img); msg != "" {
			t.Errorf("write %d dropped: %s", j, msg)
		}
	}
}

// TestBitRotNeverWedges flips bits in a spread of sectors of the final
// image and requires the drive to refuse or serve cleanly, never
// panic: recovery reads arbitrary sectors and every decoder it calls
// must bound-check what it finds.
func TestBitRotNeverWedges(t *testing.T) {
	cfg := Config{Seed: 43, Ops: 120}
	cfg.fill()
	w, err := runWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := w.rec.Writes()
	rng := rand.New(rand.NewSource(99))
	sectors := w.rec.Capacity() / disk.SectorSize
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for r := 0; r < rounds; r++ {
		img, err := w.rec.ImageAt(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			img.RotSector(rng.Int63n(sectors), byte(1+rng.Intn(255)))
		}
		if msg := reopenWeak(w, img); msg != "" {
			t.Errorf("rot round %d: %s", r, msg)
		}
	}
}

// rotOracle reopens a (possibly rotted) crash image and holds the
// integrity invariant the checksummed format promises: the drive may
// refuse to open, and any read may fail — but a read that *succeeds*
// must return bytes matching some oracle snapshot of the object. Rot
// may cost availability, never integrity. Returns the first violation,
// or "".
func (w *run) rotOracle(dev disk.Device) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprintf("panic: %v", r)
		}
	}()
	opts := w.opts
	opts.Clock = vclock.NewVirtualAt(w.endTime.Time())
	drv, err := core.Open(dev, opts)
	if err != nil {
		return "" // clean refusal is acceptable for silent damage
	}
	admin := types.AdminCred()
	for _, m := range w.objects {
		ai, err := drv.GetAttr(admin, m.id, types.TimeNowest)
		if err != nil || ai.Deleted || ai.Size == 0 {
			continue
		}
		got, err := drv.Read(admin, m.id, 0, min64(ai.Size, types.MaxIO), types.TimeNowest)
		if err != nil {
			continue // detected and reported; that is the contract
		}
		if !w.matchesSnapshot(m, got) {
			return fmt.Sprintf("object %v: read returned %d bytes matching no oracle snapshot (silent rot)", m.id, len(got))
		}
	}
	// Back-in-time reads hold the same bar. With delta conversion on,
	// these materialize through packed delta blocks, so a rotted
	// mid-chain block must surface as a typed error — decoding must
	// never hand back fabricated history.
	for _, m := range w.objects {
		for si := 0; si < len(m.snaps); si += 3 {
			sn := &m.snaps[si]
			if sn.deleted {
				continue
			}
			ai, err := drv.GetAttr(admin, m.id, sn.at)
			if err != nil || ai.Deleted || ai.Size == 0 {
				continue
			}
			got, err := drv.Read(admin, m.id, 0, min64(ai.Size, types.MaxIO), sn.at)
			if err != nil {
				continue
			}
			if !w.matchesSnapshot(m, got) {
				return fmt.Sprintf("object %v: history read at %v returned %d bytes matching no oracle snapshot (silent rot)",
					m.id, sn.at, len(got))
			}
		}
	}
	return ""
}

// matchesSnapshot reports whether got is a prefix of any non-deleted
// oracle snapshot of m. Rot on journal blocks may legitimately roll an
// object back to an earlier durable state, so any snapshot is a valid
// answer — fabricated bytes are not.
func (w *run) matchesSnapshot(m *modelObject, got []byte) bool {
	for i := range m.snaps {
		sn := &m.snaps[i]
		if sn.deleted || len(got) > len(sn.data) {
			continue
		}
		if bytes.Equal(got, sn.data[:len(got)]) {
			return true
		}
	}
	return false
}

// TestBitRotSweepOracle rots random live sectors of crash images taken
// across the workload — including the final image — and holds the full
// integrity oracle on every reopen: no read ever returns data that
// fails to match what was written. This is the strengthened version of
// TestBitRotNeverWedges: with per-block checksums, rot must be
// detected and contained, not merely survived.
func TestBitRotSweepOracle(t *testing.T) {
	cfg := Config{Seed: 47, Ops: 120}
	cfg.fill()
	w, err := runWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := w.rec.Writes()
	rng := rand.New(rand.NewSource(474))
	sectors := w.rec.Capacity() / disk.SectorSize
	rounds := 24
	if testing.Short() {
		rounds = 6
	}
	for r := 0; r < rounds; r++ {
		// Alternate between the final image and earlier crash points, so
		// the rot lands both on settled history and on recovery's own
		// replay path.
		k := n
		if r%2 == 1 {
			k = n * (r + 1) / rounds
		}
		img, err := w.rec.ImageAt(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			img.RotSector(rng.Int63n(sectors), byte(1+rng.Intn(255)))
		}
		if msg := w.rotOracle(img); msg != "" {
			t.Errorf("rot round %d (crash point %d): %s", r, k, msg)
		}
	}
}

// TestBitRotDeltaChainOracle is TestBitRotSweepOracle with reverse-
// delta conversion on: the workload's small-diff overwrites pack old
// blocks into shared delta blocks, so history reads traverse chains of
// them. Rot landing mid-chain (on a packed block, or on the full block
// a chain bottoms out at) must fail typed at decode — CRCs cover the
// encoded bytes — and never reconstruct plausible-but-wrong history.
func TestBitRotDeltaChainOracle(t *testing.T) {
	cfg := Config{
		Seed: 47, Ops: 120, MaxWriteBlocks: 4,
		Policy: types.Policy{Mode: types.ModeEveryVersion, DeltaEnabled: true},
	}
	cfg.fill()
	w, err := runWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.deltaBlocks == 0 {
		t.Fatal("workload wrote no packed delta blocks; the sweep would not cover chains")
	}
	t.Logf("workload packed %d delta blocks", w.deltaBlocks)
	n := w.rec.Writes()
	rng := rand.New(rand.NewSource(747))
	sectors := w.rec.Capacity() / disk.SectorSize
	rounds := 24
	if testing.Short() {
		rounds = 6
	}
	for r := 0; r < rounds; r++ {
		k := n
		if r%2 == 1 {
			k = n * (r + 1) / rounds
		}
		img, err := w.rec.ImageAt(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			img.RotSector(rng.Int63n(sectors), byte(1+rng.Intn(255)))
		}
		if msg := w.rotOracle(img); msg != "" {
			t.Errorf("rot round %d (crash point %d): %s", r, k, msg)
		}
	}
}

// TestDeviceErrorFailsCleanly arms a hard I/O error mid-recovery and
// checks the drive reports it instead of panicking.
func TestDeviceErrorFailsCleanly(t *testing.T) {
	cfg := Config{Seed: 44, Ops: 60}
	cfg.fill()
	w, err := runWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img, err := w.rec.ImageAt(w.rec.Writes())
	if err != nil {
		t.Fatal(err)
	}
	errBoom := errors.New("boom")
	img.FailAfter(0, errBoom)
	opts := w.opts
	opts.Clock = vclock.NewVirtualAt(w.endTime.Time())
	if _, err := core.Open(img, opts); err == nil {
		t.Fatal("open succeeded with a failing device")
	} else if !errors.Is(err, errBoom) {
		t.Fatalf("open error %v does not wrap the device error", err)
	}
}
