package torture

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"s4/internal/core"
	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

// copyToFileDisk materializes a crash image onto a real preallocated
// file, so the same oracle checks that run against the simulated device
// run against the file backend byte-for-byte.
func copyToFileDisk(t *testing.T, img *disk.FaultDisk, path string) *disk.FileDisk {
	t.Helper()
	fd, err := disk.OpenFile(path, img.Capacity())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fd.Close() })
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for off := int64(0); off < img.Capacity(); off += chunk {
		n := img.Capacity() - off
		if n > chunk {
			n = chunk
		}
		sector := off / disk.SectorSize
		if err := img.ReadSectors(sector, buf[:n]); err != nil {
			t.Fatal(err)
		}
		if err := fd.WriteSectors(sector, buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	return fd
}

// TestTortureFileBackend replays a sample of the crash-point sweep —
// including torn images and the recovery-equivalence differential —
// with every image copied onto a disk.FileDisk in a tempdir. The file
// backend must hold exactly the invariants the simulated device holds.
func TestTortureFileBackend(t *testing.T) {
	cfg := Config{
		Seed:              7,
		Ops:               120,
		Torn:              true,
		PostRecoverySmoke: true,
	}
	cfg.fill()
	w, err := runWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	n := w.rec.Writes()
	sample := 24
	if testing.Short() || os.Getenv("S4_STRESS_SHORT") != "" {
		sample = 8
	}
	var res Result
	for i := 0; i < sample; i++ {
		k := i * n / (sample - 1)
		if k > n {
			k = n
		}
		img, err := w.rec.ImageAt(k)
		if err != nil {
			t.Fatal(err)
		}
		img2, err := w.rec.ImageAt(k)
		if err != nil {
			t.Fatal(err)
		}
		fd := copyToFileDisk(t, img, filepath.Join(dir, fmt.Sprintf("crash%d.img", k)))
		fd2 := copyToFileDisk(t, img2, filepath.Join(dir, fmt.Sprintf("crash%d.full.img", k)))
		res.CrashPoints++
		for _, v := range w.verifyImage(&res, fd, fd2, k, false) {
			t.Errorf("file backend: %s", v)
		}
		if k >= n {
			continue
		}
		if sec := w.rec.Record(k).Sectors(); sec >= 2 {
			timg, err := w.rec.TornImageAt(k, sec/2)
			if err != nil {
				t.Fatal(err)
			}
			timg2, err := w.rec.TornImageAt(k, sec/2)
			if err != nil {
				t.Fatal(err)
			}
			tfd := copyToFileDisk(t, timg, filepath.Join(dir, fmt.Sprintf("crash%d.torn.img", k)))
			tfd2 := copyToFileDisk(t, timg2, filepath.Join(dir, fmt.Sprintf("crash%d.torn.full.img", k)))
			res.CrashPoints++
			res.TornPoints++
			for _, v := range w.verifyImage(&res, tfd, tfd2, k, true) {
				t.Errorf("file backend: %s", v)
			}
		}
	}
	t.Logf("file backend: %d crash points (%d torn): %d indexed opens, %d fallbacks, replay %d indexed / %d full",
		res.CrashPoints, res.TornPoints, res.IndexLoads, res.IndexFallbacks, res.ReplayIndexed, res.ReplayFull)
	if res.IndexLoads == 0 {
		t.Fatalf("no file-backend crash image recovered via the segment index")
	}
}

// fileEnv is a drive running on an Injector-wrapped FileDisk: the real
// file backend with the same injectable fault classes the simulated
// device offers.
type fileEnv struct {
	inj     *disk.Injector
	drv     *core.Drive
	opts    core.Options
	id      types.ObjectID
	payload []byte
	end     types.Timestamp
}

// fileDrive formats a drive on an Injector-wrapped FileDisk and runs a
// small workload through a Sync, so the env carries a payload the
// crash must not lose. The drive is deliberately never closed: the
// caller arms a fault, issues a doomed tail, and reopens as a crash.
func fileDrive(t *testing.T, path string) *fileEnv {
	t.Helper()
	fd, err := disk.OpenFile(path, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fd.Close() })
	inj := disk.NewInjector(fd)
	clk := vclock.NewVirtual()
	opts := core.Options{
		Clock:            clk,
		SegBlocks:        16,
		CheckpointBlocks: 16,
		Window:           time.Hour,
		BlockCacheBytes:  1 << 20,
		ObjectCacheCount: 64,
	}
	drv, err := core.Format(inj, opts)
	if err != nil {
		t.Fatal(err)
	}
	cred := types.Cred{User: 100, Client: 1}
	id, err := drv.Create(cred, everyoneACL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	payload := []byte("durable on the file backend")
	if err := drv.Write(cred, id, 0, payload); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if err := drv.Sync(cred); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	return &fileEnv{inj: inj, drv: drv, opts: opts, id: id, payload: payload, end: drv.Now()}
}

// crashTail issues post-sync traffic with a fault armed, swallowing
// errors — whatever the injector let through is the tail the crash
// leaves on the file — then disarms the injector for the reopen. The
// tail stays clear of block 0: only the one faulted write may be lost,
// later tail syncs are legitimately durable, so the oracle below can
// only claim the pre-fault payload at its own offset.
func (e *fileEnv) crashTail() {
	cred := types.Cred{User: 100, Client: 1}
	for i := 0; i < 8; i++ {
		_ = e.drv.Write(cred, e.id, uint64((i+1)*types.BlockSize), bytes.Repeat([]byte{byte(i + 1)}, 600))
		_ = e.drv.Sync(cred)
	}
	e.inj.ClearFaults()
}

// reopen simulates the post-crash restart on the same file.
func (e *fileEnv) reopen(t *testing.T) (*core.Drive, error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("reopen panicked: %v", r)
		}
	}()
	o := e.opts
	o.Clock = vclock.NewVirtualAt(e.end.Time())
	return core.Open(e.inj, o)
}

// checkSynced asserts the pre-fault synced payload survived recovery.
// The invariant sweep may report ErrCorrupt: the faulted tail writes
// were acknowledged to the log but never reached the media, and the
// block checksums are exactly what turns that silent lost write into a
// detected one. Any other invariant failure is still fatal.
func (e *fileEnv) checkSynced(t *testing.T, drv *core.Drive) {
	t.Helper()
	got, err := drv.Read(types.AdminCred(), e.id, 0, uint64(len(e.payload)), types.TimeNowest)
	if err != nil || !bytes.Equal(got, e.payload) {
		t.Fatalf("synced data lost: %q, %v", got, err)
	}
	if err := drv.CheckInvariants(); err != nil && !errors.Is(err, types.ErrCorrupt) {
		t.Fatalf("invariants after recovery: %v", err)
	}
}

// TestFileBackendFaultModel runs the fault-model suite on the file
// backend: torn and dropped write tails, bit rot, and hard device
// errors. Recovery must serve the synced prefix or refuse cleanly —
// never panic, never wedge — exactly as on the simulated device.
func TestFileBackendFaultModel(t *testing.T) {
	t.Run("torn tail", func(t *testing.T) {
		e := fileDrive(t, filepath.Join(t.TempDir(), "s4.img"))
		e.inj.TearAfter(1, 1)
		e.crashTail()
		drv, err := e.reopen(t)
		if err != nil {
			t.Fatalf("reopen after torn tail: %v", err)
		}
		e.checkSynced(t, drv)
	})

	t.Run("dropped tail", func(t *testing.T) {
		e := fileDrive(t, filepath.Join(t.TempDir(), "s4.img"))
		e.inj.DropAfter(1)
		e.crashTail()
		drv, err := e.reopen(t)
		if err != nil {
			t.Fatalf("reopen after dropped tail: %v", err)
		}
		e.checkSynced(t, drv)
	})

	t.Run("bit rot", func(t *testing.T) {
		e := fileDrive(t, filepath.Join(t.TempDir(), "s4.img"))
		for s := int64(3); s < 200; s += 13 {
			e.inj.RotSector(s, 0x20)
		}
		drv, err := e.reopen(t)
		if err != nil {
			return // clean refusal is acceptable for silent damage
		}
		_ = drv.CheckInvariants()
		// Rot is detected, never served: the synced payload reads back
		// byte-exact or the read fails — garbage is a contract violation.
		got, err := drv.Read(types.AdminCred(), e.id, 0, uint64(len(e.payload)), types.TimeNowest)
		if err == nil && !bytes.Equal(got, e.payload) {
			t.Fatalf("rotted drive served garbage: %q, want %q or an error", got, e.payload)
		}
	})

	t.Run("hard error", func(t *testing.T) {
		e := fileDrive(t, filepath.Join(t.TempDir(), "s4.img"))
		errBoom := errors.New("boom")
		e.inj.FailAfter(0, errBoom)
		if _, err := e.reopen(t); err == nil {
			t.Fatal("open succeeded with a failing device")
		} else if !errors.Is(err, errBoom) {
			t.Fatalf("open error %v does not wrap the device error", err)
		}
	})
}
