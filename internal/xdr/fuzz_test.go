package xdr

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip encodes fuzz-chosen values and checks the decoder
// returns them exactly, consuming the whole stream.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(0), int32(-1), uint64(1<<40), true, []byte("abc"), "name")
	f.Add(uint32(0xFFFFFFFF), int32(0), uint64(0), false, []byte{}, "")
	f.Fuzz(func(t *testing.T, a uint32, b int32, c uint64, ok bool, blob []byte, s string) {
		e := NewEncoder()
		e.Uint32(a)
		e.Int32(b)
		e.Uint64(c)
		e.Bool(ok)
		e.Opaque(blob)
		e.String(s)
		e.OpaqueFixed(blob)

		d := NewDecoder(e.Bytes())
		if v, err := d.Uint32(); err != nil || v != a {
			t.Fatalf("uint32: %v %v", v, err)
		}
		if v, err := d.Int32(); err != nil || v != b {
			t.Fatalf("int32: %v %v", v, err)
		}
		if v, err := d.Uint64(); err != nil || v != c {
			t.Fatalf("uint64: %v %v", v, err)
		}
		if v, err := d.Bool(); err != nil || v != ok {
			t.Fatalf("bool: %v %v", v, err)
		}
		if v, err := d.Opaque(len(blob)); err != nil || !bytes.Equal(v, blob) {
			t.Fatalf("opaque: %q %v", v, err)
		}
		if v, err := d.String(0); err != nil || v != s {
			t.Fatalf("string: %q %v", v, err)
		}
		if v, err := d.OpaqueFixed(len(blob)); err != nil || !bytes.Equal(v, blob) {
			t.Fatalf("opaque fixed: %q %v", v, err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%d bytes left over", d.Remaining())
		}
	})
}

// FuzzDecoder runs the decoder over arbitrary bytes the way an RPC
// unmarshaller would: it must error on truncation, never panic, and
// never allocate beyond the input (Opaque copies out of the buffer,
// so a lying length prefix cannot OOM).
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o', 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for d.Remaining() > 0 {
			before := d.Remaining()
			// A fixed op rotation touching every decode path; each pass
			// either consumes bytes or errors, so this terminates.
			if _, err := d.Uint32(); err != nil {
				return
			}
			if _, err := d.Opaque(1 << 20); err != nil {
				return
			}
			if _, err := d.Uint64(); err != nil {
				return
			}
			if _, err := d.String(256); err != nil {
				return
			}
			if _, err := d.Bool(); err != nil {
				return
			}
			if _, err := d.OpaqueFixed(3); err != nil {
				return
			}
			if d.Remaining() >= before {
				t.Fatal("decoder made no progress")
			}
		}
	})
}
