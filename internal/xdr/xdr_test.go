package xdr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint32(0xDEADBEEF)
	e.Int32(-42)
	e.Uint64(1 << 40)
	e.Bool(true)
	e.Bool(false)
	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 0xDEADBEEF {
		t.Fatal(v)
	}
	if v, _ := d.Int32(); v != -42 {
		t.Fatal(v)
	}
	if v, _ := d.Uint64(); v != 1<<40 {
		t.Fatal(v)
	}
	if v, _ := d.Bool(); !v {
		t.Fatal("bool true")
	}
	if v, _ := d.Bool(); v {
		t.Fatal("bool false")
	}
	if d.Remaining() != 0 {
		t.Fatal("leftover bytes")
	}
}

func TestOpaqueAlignment(t *testing.T) {
	for n := 0; n < 9; n++ {
		e := NewEncoder()
		e.Opaque(bytes.Repeat([]byte{7}, n))
		e.Uint32(0x1234)
		if len(e.Bytes())%4 != 0 {
			t.Fatalf("n=%d: stream not 4-aligned", n)
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque(0)
		if err != nil || len(got) != n {
			t.Fatal(n, err)
		}
		if v, _ := d.Uint32(); v != 0x1234 {
			t.Fatalf("n=%d: following word corrupted", n)
		}
	}
}

func TestStringBound(t *testing.T) {
	e := NewEncoder()
	e.String("hello world")
	d := NewDecoder(e.Bytes())
	if _, err := d.String(5); err == nil {
		t.Fatal("bound not enforced")
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); !errors.Is(err, ErrShort) {
		t.Fatal(err)
	}
	// Opaque with a length larger than the remaining buffer.
	e := NewEncoder()
	e.Uint32(1000)
	d = NewDecoder(e.Bytes())
	if _, err := d.Opaque(0); !errors.Is(err, ErrShort) {
		t.Fatal(err)
	}
}

func TestPropertyOpaqueRoundTrip(t *testing.T) {
	f := func(data []byte, s string) bool {
		e := NewEncoder()
		e.Opaque(data)
		e.String(s)
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque(0)
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		gs, err := d.String(0)
		return err == nil && gs == s && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
