// Package xdr implements the subset of XDR (RFC 1014/4506) needed by
// ONC RPC and NFSv2: 32/64-bit integers, booleans, fixed and variable
// opaques, and strings, all 4-byte aligned, big-endian.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShort reports a truncated buffer.
var ErrShort = errors.New("xdr: short buffer")

// Encoder appends XDR-encoded values to a byte slice.
type Encoder struct {
	b []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.b }

// Uint32 appends a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	var t [4]byte
	binary.BigEndian.PutUint32(t[:], v)
	e.b = append(e.b, t[:]...)
}

// Int32 appends a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 appends an XDR hyper.
func (e *Encoder) Uint64(v uint64) {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	e.b = append(e.b, t[:]...)
}

// Bool appends an XDR boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// OpaqueFixed appends bytes with no length prefix, padded to 4.
func (e *Encoder) OpaqueFixed(b []byte) {
	e.b = append(e.b, b...)
	for len(e.b)%4 != 0 {
		e.b = append(e.b, 0)
	}
}

// Opaque appends a variable-length opaque (length + data + pad).
func (e *Encoder) Opaque(b []byte) {
	e.Uint32(uint32(len(b)))
	e.OpaqueFixed(b)
}

// String appends an XDR string.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder consumes XDR-encoded values from a byte slice.
type Decoder struct {
	b []byte
	i int
}

// NewDecoder wraps b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Remaining returns the unconsumed byte count.
func (d *Decoder) Remaining() int { return len(d.b) - d.i }

func (d *Decoder) take(n int) ([]byte, error) {
	if d.Remaining() < n {
		return nil, fmt.Errorf("%w (need %d, have %d)", ErrShort, n, d.Remaining())
	}
	out := d.b[d.i : d.i+n]
	d.i += n
	return out, nil
}

// Uint32 reads a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Int32 reads a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 reads an XDR hyper.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Bool reads an XDR boolean.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	return v != 0, err
}

// OpaqueFixed reads n bytes plus padding.
func (d *Decoder) OpaqueFixed(n int) ([]byte, error) {
	b, err := d.take(n)
	if err != nil {
		return nil, err
	}
	pad := (4 - n%4) % 4
	if _, err := d.take(pad); err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// Opaque reads a variable-length opaque bounded by max (0 = unbounded).
func (d *Decoder) Opaque(max int) ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if max > 0 && int(n) > max {
		return nil, fmt.Errorf("xdr: opaque of %d exceeds bound %d", n, max)
	}
	if int(n) > d.Remaining() {
		return nil, ErrShort
	}
	return d.OpaqueFixed(int(n))
}

// String reads an XDR string bounded by max bytes.
func (d *Decoder) String(max int) (string, error) {
	b, err := d.Opaque(max)
	return string(b), err
}
