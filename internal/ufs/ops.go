package ufs

import (
	"encoding/binary"

	"s4/internal/fsys"
	"s4/internal/types"
	"s4/internal/vclock"
)

// FileSys implementation. All operations hold fs.mu; the disk model
// underneath accounts their I/O time.

// Root returns the root directory handle.
func (fs *FS) Root() fsys.Handle { return fsys.Handle(rootIno) }

func (fs *FS) attrOf(ino uint64, in *inode) fsys.Attr {
	return fsys.Attr{
		Type: in.typ, Mode: in.mode, Nlink: in.nlink,
		UID: in.uid, GID: in.gid, Size: in.size,
		Mtime: in.mtime, Ctime: in.ctime,
	}
}

// GetAttr returns h's attributes.
func (fs *FS) GetAttr(h fsys.Handle) (fsys.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.getInode(uint64(h))
	if err != nil {
		return fsys.Attr{}, err
	}
	return fs.attrOf(uint64(h), in), nil
}

// ---- directories ----

// loadDir returns dir's entry cache, reading records from disk on first
// touch.
func (fs *FS) loadDir(ino uint64) (map[string]dirRec, *inode, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return nil, nil, err
	}
	if in.typ != fsys.TypeDir {
		return nil, nil, fsys.ErrNotDir
	}
	if m, ok := fs.dirs[ino]; ok {
		return m, in, nil
	}
	m := make(map[string]dirRec)
	slots := in.size / recSize
	for s := uint64(0); s < slots; s++ {
		rec, err := fs.readDirSlot(in, s)
		if err != nil {
			return nil, nil, err
		}
		if rec.name != "" {
			rec.slot = s
			m[rec.name] = rec
		}
	}
	fs.dirs[ino] = m
	return m, in, nil
}

func (fs *FS) readDirSlot(in *inode, slot uint64) (dirRec, error) {
	blkIdx := slot * recSize / blockSize
	off := slot * recSize % blockSize
	b, err := fs.blockOf(in, blkIdx)
	if err != nil || b == 0 {
		return dirRec{}, err
	}
	data, err := fs.readData(b)
	if err != nil {
		return dirRec{}, err
	}
	buf := data[off : off+recSize]
	n := int(buf[0])
	if n == 0 || n > maxNameLen {
		return dirRec{}, nil
	}
	return dirRec{
		name: string(buf[1 : 1+n]),
		typ:  fsys.FileType(buf[118]),
		ino:  binary.LittleEndian.Uint64(buf[119:]),
	}, nil
}

// writeDirSlot updates one record in place; the touched directory block
// joins the dirty metadata set (synchronous under FFSSync).
func (fs *FS) writeDirSlot(dirIno uint64, in *inode, slot uint64, rec dirRec) error {
	blkIdx := slot * recSize / blockSize
	off := slot * recSize % blockSize
	b, err := fs.blockOf(in, blkIdx)
	if err != nil {
		return err
	}
	if b == 0 {
		if b, err = fs.allocBlock(); err != nil {
			return err
		}
		if err := fs.setBlockOf(dirIno, in, blkIdx, b); err != nil {
			return err
		}
	}
	data, err := fs.readData(b)
	if err != nil {
		return err
	}
	blk := make([]byte, blockSize)
	copy(blk, data)
	rb := blk[off : off+recSize]
	for i := range rb {
		rb[i] = 0
	}
	rb[0] = byte(len(rec.name))
	copy(rb[1:1+maxNameLen], rec.name)
	rb[118] = byte(rec.typ)
	binary.LittleEndian.PutUint64(rb[119:], rec.ino)
	fs.cachePut(b, blk)
	fs.markDirBlockDirty(b)
	return nil
}

func (fs *FS) addEntry(dirIno uint64, rec dirRec) error {
	m, in, err := fs.loadDir(dirIno)
	if err != nil {
		return err
	}
	if _, exists := m[rec.name]; exists {
		return fsys.ErrExist
	}
	rec.slot = uint64(len(m))
	if err := fs.writeDirSlot(dirIno, in, rec.slot, rec); err != nil {
		return err
	}
	if end := (rec.slot + 1) * recSize; end > in.size {
		in.size = end
	}
	in.mtime = vclock.TS(fs.clk)
	fs.markInodeDirty(dirIno)
	m[rec.name] = rec
	return nil
}

func (fs *FS) dropEntry(dirIno uint64, name string) (dirRec, error) {
	m, in, err := fs.loadDir(dirIno)
	if err != nil {
		return dirRec{}, err
	}
	victim, ok := m[name]
	if !ok {
		return dirRec{}, fsys.ErrNotFound
	}
	last := uint64(len(m)) - 1
	if victim.slot != last {
		// Swap the final record into the hole.
		var lastRec dirRec
		for _, r := range m {
			if r.slot == last {
				lastRec = r
				break
			}
		}
		lastRec.slot = victim.slot
		if err := fs.writeDirSlot(dirIno, in, victim.slot, lastRec); err != nil {
			return dirRec{}, err
		}
		m[lastRec.name] = lastRec
	} else {
		if err := fs.writeDirSlot(dirIno, in, victim.slot, dirRec{}); err != nil {
			return dirRec{}, err
		}
	}
	in.size = last * recSize
	in.mtime = vclock.TS(fs.clk)
	fs.markInodeDirty(dirIno)
	delete(m, name)
	return victim, nil
}

// Lookup resolves name in dir.
func (fs *FS) Lookup(dir fsys.Handle, name string) (fsys.Handle, fsys.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	m, _, err := fs.loadDir(uint64(dir))
	if err != nil {
		return 0, fsys.Attr{}, err
	}
	rec, ok := m[name]
	if !ok {
		return 0, fsys.Attr{}, fsys.ErrNotFound
	}
	in, err := fs.getInode(rec.ino)
	if err != nil {
		return 0, fsys.Attr{}, err
	}
	return fsys.Handle(rec.ino), fs.attrOf(rec.ino, in), nil
}

// ReadDir lists dir.
func (fs *FS) ReadDir(dir fsys.Handle) ([]fsys.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	m, _, err := fs.loadDir(uint64(dir))
	if err != nil {
		return nil, err
	}
	out := make([]fsys.DirEntry, 0, len(m))
	for _, r := range m {
		out = append(out, fsys.DirEntry{Name: r.name, Handle: fsys.Handle(r.ino), Type: r.typ})
	}
	return out, nil
}

// ---- node creation ----

func (fs *FS) makeNode(dir fsys.Handle, name string, typ fsys.FileType, mode uint32, data []byte) (fsys.Handle, fsys.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(name) == 0 || len(name) > maxNameLen {
		return 0, fsys.Attr{}, types.ErrNameTooLong
	}
	m, _, err := fs.loadDir(uint64(dir))
	if err != nil {
		return 0, fsys.Attr{}, err
	}
	if _, exists := m[name]; exists {
		return 0, fsys.Attr{}, fsys.ErrExist
	}
	ino, err := fs.allocInode()
	if err != nil {
		return 0, fsys.Attr{}, err
	}
	now := vclock.TS(fs.clk)
	nlink := uint32(1)
	if typ == fsys.TypeDir {
		nlink = 2
	}
	in := &inode{typ: typ, mode: mode, nlink: nlink, mtime: now, ctime: now}
	fs.inodes[ino] = in
	fs.markInodeDirty(ino)
	if typ == fsys.TypeDir {
		fs.dirs[ino] = map[string]dirRec{}
	}
	if len(data) > 0 {
		if err := fs.writeLocked(ino, in, 0, data); err != nil {
			return 0, fsys.Attr{}, err
		}
	}
	if err := fs.addEntry(uint64(dir), dirRec{name: name, ino: ino, typ: typ}); err != nil {
		fs.inodeUse[ino] = false
		delete(fs.inodes, ino)
		return 0, fsys.Attr{}, err
	}
	if err := fs.flushPolicy(&ino); err != nil {
		return 0, fsys.Attr{}, err
	}
	return fsys.Handle(ino), fs.attrOf(ino, in), nil
}

// Create makes a regular file.
func (fs *FS) Create(dir fsys.Handle, name string, mode uint32) (fsys.Handle, fsys.Attr, error) {
	return fs.makeNode(dir, name, fsys.TypeReg, mode, nil)
}

// Mkdir makes a directory.
func (fs *FS) Mkdir(dir fsys.Handle, name string, mode uint32) (fsys.Handle, fsys.Attr, error) {
	return fs.makeNode(dir, name, fsys.TypeDir, mode, nil)
}

// Symlink makes a symbolic link.
func (fs *FS) Symlink(dir fsys.Handle, name, target string) (fsys.Handle, error) {
	h, _, err := fs.makeNode(dir, name, fsys.TypeSymlink, 0777, []byte(target))
	return h, err
}

// ReadLink returns a symlink target.
func (fs *FS) ReadLink(h fsys.Handle) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.getInode(uint64(h))
	if err != nil {
		return "", err
	}
	if in.typ != fsys.TypeSymlink {
		return "", fsys.ErrInval
	}
	data, err := fs.readLocked(in, 0, int(in.size))
	return string(data), err
}

// ---- removal ----

func (fs *FS) freeFileBlocks(ino uint64, in *inode) error {
	blocks := (in.size + blockSize - 1) / blockSize
	for i := uint64(0); i < blocks; i++ {
		b, err := fs.blockOf(in, i)
		if err != nil {
			return err
		}
		if b != 0 {
			fs.freeBlock(b)
		}
	}
	if in.indirect != 0 {
		fs.freeBlock(in.indirect)
		in.indirect = 0
		in.ptrs = nil
	}
	return nil
}

// Remove unlinks a non-directory.
func (fs *FS) Remove(dir fsys.Handle, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	m, _, err := fs.loadDir(uint64(dir))
	if err != nil {
		return err
	}
	rec, ok := m[name]
	if !ok {
		return fsys.ErrNotFound
	}
	if rec.typ == fsys.TypeDir {
		return fsys.ErrIsDir
	}
	if _, err := fs.dropEntry(uint64(dir), name); err != nil {
		return err
	}
	in, err := fs.getInode(rec.ino)
	if err != nil {
		return err
	}
	if in.nlink > 1 {
		in.nlink--
		fs.markInodeDirty(rec.ino)
	} else {
		if err := fs.freeFileBlocks(rec.ino, in); err != nil {
			return err
		}
		in.typ = fsys.TypeNone
		fs.markInodeDirty(rec.ino)
		fs.inodeUse[rec.ino] = false
		delete(fs.inodes, rec.ino)
	}
	return fs.flushPolicy(nil)
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(dir fsys.Handle, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	m, _, err := fs.loadDir(uint64(dir))
	if err != nil {
		return err
	}
	rec, ok := m[name]
	if !ok {
		return fsys.ErrNotFound
	}
	if rec.typ != fsys.TypeDir {
		return fsys.ErrNotDir
	}
	sub, subIn, err := fs.loadDir(rec.ino)
	if err != nil {
		return err
	}
	if len(sub) > 0 {
		return fsys.ErrNotEmpty
	}
	if _, err := fs.dropEntry(uint64(dir), name); err != nil {
		return err
	}
	if err := fs.freeFileBlocks(rec.ino, subIn); err != nil {
		return err
	}
	subIn.typ = fsys.TypeNone
	fs.markInodeDirty(rec.ino)
	fs.inodeUse[rec.ino] = false
	delete(fs.inodes, rec.ino)
	delete(fs.dirs, rec.ino)
	return fs.flushPolicy(nil)
}

// Rename moves an entry, replacing a compatible target.
func (fs *FS) Rename(fromDir fsys.Handle, fromName string, toDir fsys.Handle, toName string) error {
	fs.mu.Lock()
	sm, _, err := fs.loadDir(uint64(fromDir))
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	src, ok := sm[fromName]
	fs.mu.Unlock()
	if !ok {
		return fsys.ErrNotFound
	}
	// Handle target replacement through the public paths (they manage
	// link counts and block freeing).
	fs.mu.Lock()
	dm, _, err := fs.loadDir(uint64(toDir))
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	dst, exists := dm[toName]
	fs.mu.Unlock()
	if exists {
		switch {
		case dst.typ == fsys.TypeDir && src.typ != fsys.TypeDir:
			return fsys.ErrIsDir
		case dst.typ == fsys.TypeDir:
			if err := fs.Rmdir(toDir, toName); err != nil {
				return err
			}
		default:
			if err := fs.Remove(toDir, toName); err != nil {
				return err
			}
		}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.dropEntry(uint64(fromDir), fromName); err != nil {
		return err
	}
	if err := fs.addEntry(uint64(toDir), dirRec{name: toName, ino: src.ino, typ: src.typ}); err != nil {
		return err
	}
	return fs.flushPolicy(nil)
}

// Link makes a hard link.
func (fs *FS) Link(h fsys.Handle, dir fsys.Handle, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.getInode(uint64(h))
	if err != nil {
		return err
	}
	if in.typ == fsys.TypeDir {
		return fsys.ErrIsDir
	}
	if err := fs.addEntry(uint64(dir), dirRec{name: name, ino: uint64(h), typ: in.typ}); err != nil {
		return err
	}
	in.nlink++
	fs.markInodeDirty(uint64(h))
	return fs.flushPolicy(nil)
}

// ---- data I/O ----

func (fs *FS) readLocked(in *inode, off uint64, n int) ([]byte, error) {
	if off >= in.size {
		return nil, nil
	}
	if off+uint64(n) > in.size {
		n = int(in.size - off)
	}
	out := make([]byte, n)
	filled := 0
	for filled < n {
		blkIdx := (off + uint64(filled)) / blockSize
		bo := (off + uint64(filled)) % blockSize
		want := int(blockSize - bo)
		if want > n-filled {
			want = n - filled
		}
		b, err := fs.blockOf(in, blkIdx)
		if err != nil {
			return nil, err
		}
		if b != 0 {
			data, err := fs.readData(b)
			if err != nil {
				return nil, err
			}
			copy(out[filled:filled+want], data[bo:int(bo)+want])
		}
		filled += want
	}
	return out, nil
}

// Read returns up to n bytes at off.
func (fs *FS) Read(h fsys.Handle, off uint64, n int) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.getInode(uint64(h))
	if err != nil {
		return nil, err
	}
	return fs.readLocked(in, off, n)
}

func (fs *FS) writeLocked(ino uint64, in *inode, off uint64, data []byte) error {
	end := off + uint64(len(data))
	if (end+blockSize-1)/blockSize > maxFileBlocks {
		return fsys.ErrNoSpace
	}
	pos := off
	for pos < end {
		blkIdx := pos / blockSize
		bo := pos % blockSize
		want := blockSize - bo
		if want > end-pos {
			want = end - pos
		}
		b, err := fs.blockOf(in, blkIdx)
		if err != nil {
			return err
		}
		var blk []byte
		if b == 0 {
			if b, err = fs.allocBlock(); err != nil {
				return err
			}
			if err := fs.setBlockOf(ino, in, blkIdx, b); err != nil {
				return err
			}
			blk = make([]byte, blockSize)
		} else {
			old, err := fs.readData(b)
			if err != nil {
				return err
			}
			blk = make([]byte, blockSize)
			copy(blk, old)
		}
		copy(blk[bo:bo+want], data[pos-off:pos-off+uint64(want)])
		// In-place data write-through (conventional file system: data
		// is overwritten where it lives; no old version survives).
		if err := fs.writeData(b, blk); err != nil {
			return err
		}
		pos += want
	}
	if end > in.size {
		in.size = end
	}
	in.mtime = vclock.TS(fs.clk)
	fs.markInodeDirty(ino)
	return nil
}

// Write stores data at off.
func (fs *FS) Write(h fsys.Handle, off uint64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino := uint64(h)
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if in.typ == fsys.TypeDir {
		return fsys.ErrIsDir
	}
	if err := fs.writeLocked(ino, in, off, data); err != nil {
		return err
	}
	return fs.flushPolicy(&ino)
}

// SetAttr applies a partial update; Size truncates/extends.
func (fs *FS) SetAttr(h fsys.Handle, sa fsys.SetAttr) (fsys.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino := uint64(h)
	in, err := fs.getInode(ino)
	if err != nil {
		return fsys.Attr{}, err
	}
	if sa.Mode != nil {
		in.mode = *sa.Mode
	}
	if sa.UID != nil {
		in.uid = *sa.UID
	}
	if sa.GID != nil {
		in.gid = *sa.GID
	}
	if sa.Size != nil && *sa.Size != in.size {
		if in.typ == fsys.TypeDir {
			return fsys.Attr{}, fsys.ErrIsDir
		}
		newSize := *sa.Size
		if newSize < in.size {
			// Free whole blocks beyond the new size and zero the tail
			// of the retained partial block.
			firstGone := (newSize + blockSize - 1) / blockSize
			lastOld := (in.size - 1) / blockSize
			for i := firstGone; i <= lastOld; i++ {
				if b, err := fs.blockOf(in, i); err == nil && b != 0 {
					fs.freeBlock(b)
					_ = fs.setBlockOf(ino, in, i, 0)
				}
			}
			if rem := newSize % blockSize; rem != 0 {
				if b, err := fs.blockOf(in, newSize/blockSize); err == nil && b != 0 {
					old, err := fs.readData(b)
					if err != nil {
						return fsys.Attr{}, err
					}
					blk := make([]byte, blockSize)
					copy(blk[:rem], old[:rem])
					if err := fs.writeData(b, blk); err != nil {
						return fsys.Attr{}, err
					}
				}
			}
		} else if (newSize+blockSize-1)/blockSize > maxFileBlocks {
			return fsys.Attr{}, fsys.ErrNoSpace
		}
		in.size = newSize
	}
	in.mtime = vclock.TS(fs.clk)
	fs.markInodeDirty(ino)
	if err := fs.flushPolicy(&ino); err != nil {
		return fsys.Attr{}, err
	}
	return fs.attrOf(ino, in), nil
}

// StatFS reports capacity.
func (fs *FS) StatFS() (fsys.Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var used int64
	for _, u := range fs.blockUse {
		if u {
			used++
		}
	}
	return fsys.Stat{
		TotalBytes: uint64(fs.nBlocks) * blockSize,
		FreeBytes:  uint64(fs.nBlocks-used) * blockSize,
	}, nil
}
