package ufs

import (
	"bytes"
	"testing"
	"time"

	"s4/internal/disk"
	"s4/internal/fsys"
	"s4/internal/vclock"
)

func newUFS(t *testing.T, p Policy) (*FS, *disk.Disk, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual()
	dev := disk.New(disk.SmallDisk(128<<20), clk)
	fs, err := Mkfs(dev, Options{Policy: p, Clock: clk, CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev, clk
}

func TestConformanceFFSSync(t *testing.T) {
	fsys.RunConformance(t, func(t *testing.T) fsys.FileSys {
		fs, _, _ := newUFS(t, FFSSync)
		return fs
	})
}

func TestConformanceExt2Sync(t *testing.T) {
	fsys.RunConformance(t, func(t *testing.T) fsys.FileSys {
		fs, _, _ := newUFS(t, Ext2Sync)
		return fs
	})
}

func TestConformanceAsync(t *testing.T) {
	fsys.RunConformance(t, func(t *testing.T) fsys.FileSys {
		fs, _, _ := newUFS(t, Async)
		return fs
	})
}

func TestPolicyWriteTraffic(t *testing.T) {
	// The whole point of the baselines: FFS-sync issues many more
	// metadata writes than ext2-sync for a create-heavy workload
	// (§5.1.2's explanation of the Linux configure-phase anomaly).
	measure := func(p Policy) int64 {
		fs, dev, _ := newUFS(t, p)
		dev.ResetStats()
		for i := 0; i < 100; i++ {
			name := "f" + string(rune('a'+i/10)) + string(rune('0'+i%10))
			h, _, err := fs.Create(fs.Root(), name, 0644)
			if err != nil {
				t.Fatal(err)
			}
			if err := fs.Write(h, 0, bytes.Repeat([]byte{1}, 1000)); err != nil {
				t.Fatal(err)
			}
		}
		return dev.Stats().Writes
	}
	ffs, ext2 := measure(FFSSync), measure(Ext2Sync)
	if ffs <= ext2 {
		t.Fatalf("FFS-sync (%d writes) must exceed ext2-sync (%d writes)", ffs, ext2)
	}
	if ext2 == 0 {
		t.Fatal("ext2-sync wrote nothing; data must still be written through")
	}
}

func TestBlockReuseAfterDelete(t *testing.T) {
	// Unlike S4, a conventional file system reuses freed blocks at
	// once — deleted data is unrecoverable (the vulnerability the paper
	// addresses).
	fs, _, _ := newUFS(t, FFSSync)
	h, _, err := fs.Create(fs.Root(), "victim", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(h, 0, bytes.Repeat([]byte{0xAB}, 8*blockSize)); err != nil {
		t.Fatal(err)
	}
	stBefore, _ := fs.StatFS()
	if err := fs.Remove(fs.Root(), "victim"); err != nil {
		t.Fatal(err)
	}
	stAfter, _ := fs.StatFS()
	if stAfter.FreeBytes <= stBefore.FreeBytes {
		t.Fatal("blocks not reclaimed immediately on delete")
	}
}

func TestSyncFlushesDirtyMetadata(t *testing.T) {
	fs, dev, _ := newUFS(t, Async)
	for i := 0; i < 20; i++ {
		if _, _, err := fs.Create(fs.Root(), "f"+string(rune('a'+i)), 0644); err != nil {
			t.Fatal(err)
		}
	}
	before := dev.Stats().Writes
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Writes == before {
		t.Fatal("sync issued no writes despite dirty metadata")
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFileSizeLimit(t *testing.T) {
	fs, _, _ := newUFS(t, Async)
	h, _, err := fs.Create(fs.Root(), "big", 0644)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond direct + single indirect must fail cleanly.
	tooBig := uint64(maxFileBlocks+1) * blockSize
	if err := fs.Write(h, tooBig-blockSize, []byte("x")); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestMtimeAdvances(t *testing.T) {
	fs, _, clk := newUFS(t, Async)
	h, a0, err := fs.Create(fs.Root(), "t", 0644)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := fs.Write(h, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	a1, _ := fs.GetAttr(h)
	if a1.Mtime <= a0.Mtime {
		t.Fatal("mtime did not advance")
	}
}
