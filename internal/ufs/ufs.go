// Package ufs is the conventional, update-in-place file system used as
// the paper's comparison baseline (§5.1.1): the FreeBSD FFS/NFS and
// Linux ext2(sync)/NFS servers of Figs. 3 and 4.
//
// It is a classic Unix layout on the shared simulated disk — superblock,
// block bitmap, inode table, data blocks, directories as fixed-size
// record arrays — with a write policy knob that reproduces the two
// baselines' characters:
//
//   - FFSSync: every metadata change (inode, directory block, bitmap)
//     is written synchronously at operation end, each as its own small
//     disk write. This is why FFS-backed NFSv2 is slow on small-file
//     create/delete workloads.
//   - Ext2Sync: file data and the file's own inode are written through,
//     but directory blocks and bitmaps are only marked dirty and flushed
//     lazily — reproducing the paper's observation that the Linux
//     "sync" mount issued far fewer write I/Os (a flaw, §5.1.2).
//   - Async: everything is cached until Sync.
//
// Like the S4 client, ufs keeps an in-memory directory cache so lookups
// cost no I/O once warm; what differs between the systems under test is
// the write traffic, which is the effect the figures measure.
package ufs

import (
	"encoding/binary"
	"fmt"
	"sync"

	"s4/internal/disk"
	"s4/internal/fsys"
	"s4/internal/types"
	"s4/internal/vclock"
)

// Policy selects the metadata write discipline.
type Policy uint8

// Write policies.
const (
	// FFSSync models FreeBSD FFS under NFSv2: synchronous metadata.
	FFSSync Policy = iota
	// Ext2Sync models Linux 2.2 ext2 mounted sync (incompletely).
	Ext2Sync
	// Async defers all metadata until Sync.
	Async
)

func (p Policy) String() string {
	switch p {
	case FFSSync:
		return "ffs-sync"
	case Ext2Sync:
		return "ext2-sync"
	case Async:
		return "async"
	}
	return "policy?"
}

const (
	blockSize     = types.BlockSize
	inodeSize     = 256
	inodesPerBlk  = blockSize / inodeSize
	ptrsPerBlock  = blockSize / 8
	nDirect       = 12
	recSize       = 128
	maxNameLen    = 117
	superMagic    = 0x55465331 // "UFS1"
	rootIno       = 1
	maxFileBlocks = nDirect + ptrsPerBlock // direct + single indirect
)

// inode is the in-memory (and, serialized, on-disk) inode.
type inode struct {
	typ      fsys.FileType
	mode     uint32
	nlink    uint32
	uid      uint32
	gid      uint32
	size     uint64
	mtime    types.Timestamp
	ctime    types.Timestamp
	direct   [nDirect]uint64
	indirect uint64 // block number of the pointer block
	// ptrs caches the indirect pointer block contents (loaded lazily).
	ptrs []uint64
}

func (in *inode) encode(buf []byte) {
	buf[0] = byte(in.typ)
	binary.LittleEndian.PutUint32(buf[1:], in.mode)
	binary.LittleEndian.PutUint32(buf[5:], in.nlink)
	binary.LittleEndian.PutUint32(buf[9:], in.uid)
	binary.LittleEndian.PutUint32(buf[13:], in.gid)
	binary.LittleEndian.PutUint64(buf[17:], in.size)
	binary.LittleEndian.PutUint64(buf[25:], uint64(in.mtime))
	binary.LittleEndian.PutUint64(buf[33:], uint64(in.ctime))
	p := 41
	for i := 0; i < nDirect; i++ {
		binary.LittleEndian.PutUint64(buf[p:], in.direct[i])
		p += 8
	}
	binary.LittleEndian.PutUint64(buf[p:], in.indirect)
}

func decodeInode(buf []byte) inode {
	var in inode
	in.typ = fsys.FileType(buf[0])
	in.mode = binary.LittleEndian.Uint32(buf[1:])
	in.nlink = binary.LittleEndian.Uint32(buf[5:])
	in.uid = binary.LittleEndian.Uint32(buf[9:])
	in.gid = binary.LittleEndian.Uint32(buf[13:])
	in.size = binary.LittleEndian.Uint64(buf[17:])
	in.mtime = types.Timestamp(binary.LittleEndian.Uint64(buf[25:]))
	in.ctime = types.Timestamp(binary.LittleEndian.Uint64(buf[33:]))
	p := 41
	for i := 0; i < nDirect; i++ {
		in.direct[i] = binary.LittleEndian.Uint64(buf[p:])
		p += 8
	}
	in.indirect = binary.LittleEndian.Uint64(buf[p:])
	return in
}

// Options configures mkfs/mount.
type Options struct {
	Policy Policy
	// Inodes fixes the inode table size; 0 picks 1 inode per 8KB.
	Inodes int
	// CacheBytes bounds the in-memory data block cache (the server's
	// page cache; the paper's NFS servers could grow to 512MB). 0
	// means 256MB.
	CacheBytes int64
	// Clock for mtime stamps; nil means wall clock.
	Clock vclock.Clock
}

type dirRec struct {
	name string
	ino  uint64
	typ  fsys.FileType
	slot uint64
}

// FS is a mounted ufs file system. It implements fsys.FileSys.
type FS struct {
	dev  disk.Device
	opts Options
	clk  vclock.Clock

	nBlocks    int64
	bmStart    int64 // block bitmap start block
	bmBlocks   int64
	itabStart  int64
	itabBlocks int64
	dataStart  int64
	nInodes    int

	mu        sync.Mutex
	inodes    map[uint64]*inode // loaded inodes (all, once touched)
	inodeUse  []bool
	blockUse  []bool
	allocHint int64
	dirs      map[uint64]map[string]dirRec

	// Write-back state.
	dirtyMeta  map[int64][]byte // metadata block -> contents to write
	cache      map[uint64][]byte
	cacheList  []uint64 // rough FIFO for eviction
	cacheBytes int64
}

var _ fsys.FileSys = (*FS)(nil)

// Mkfs formats dev and returns a mounted file system with a root
// directory.
func Mkfs(dev disk.Device, opts Options) (*FS, error) {
	if opts.Clock == nil {
		opts.Clock = vclock.Wall{}
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 256 << 20
	}
	nBlocks := dev.Capacity() / blockSize
	nInodes := opts.Inodes
	if nInodes == 0 {
		nInodes = int(dev.Capacity() / 8192)
	}
	fs := &FS{dev: dev, opts: opts, clk: opts.Clock, nBlocks: nBlocks, nInodes: nInodes}
	fs.bmStart = 1
	fs.bmBlocks = (nBlocks + blockSize*8 - 1) / (blockSize * 8)
	fs.itabStart = fs.bmStart + fs.bmBlocks
	fs.itabBlocks = int64((nInodes + inodesPerBlk - 1) / inodesPerBlk)
	fs.dataStart = fs.itabStart + fs.itabBlocks
	if fs.dataStart+16 >= nBlocks {
		return nil, fmt.Errorf("ufs: device too small: %w", types.ErrInval)
	}
	fs.initState()
	// Superblock.
	sb := make([]byte, blockSize)
	binary.LittleEndian.PutUint32(sb[0:], superMagic)
	binary.LittleEndian.PutUint64(sb[4:], uint64(nBlocks))
	binary.LittleEndian.PutUint64(sb[12:], uint64(nInodes))
	if err := fs.writeBlock(0, sb); err != nil {
		return nil, err
	}
	// Root directory.
	now := vclock.TS(fs.clk)
	root := &inode{typ: fsys.TypeDir, mode: 0755, nlink: 2, mtime: now, ctime: now}
	fs.inodes[rootIno] = root
	fs.inodeUse[rootIno] = true
	fs.dirs[rootIno] = map[string]dirRec{}
	fs.markInodeDirty(rootIno)
	if err := fs.flushPolicy(nil); err != nil {
		return nil, err
	}
	return fs, nil
}

func (fs *FS) initState() {
	fs.inodes = make(map[uint64]*inode)
	fs.inodeUse = make([]bool, fs.nInodes+1)
	fs.blockUse = make([]bool, fs.nBlocks)
	for b := int64(0); b < fs.dataStart; b++ {
		fs.blockUse[b] = true
	}
	fs.allocHint = fs.dataStart
	fs.dirs = make(map[uint64]map[string]dirRec)
	fs.dirtyMeta = make(map[int64][]byte)
	fs.cache = make(map[uint64][]byte)
}

// ---- low-level block I/O ----

func (fs *FS) writeBlock(b int64, data []byte) error {
	return fs.dev.WriteSectors(b*(blockSize/disk.SectorSize), data)
}

func (fs *FS) readBlock(b int64, data []byte) error {
	return fs.dev.ReadSectors(b*(blockSize/disk.SectorSize), data)
}

// cachePut stores a data block in the page cache with rough FIFO
// eviction.
func (fs *FS) cachePut(b uint64, data []byte) {
	if _, ok := fs.cache[b]; !ok {
		fs.cacheList = append(fs.cacheList, b)
		fs.cacheBytes += blockSize
	}
	fs.cache[b] = data
	for fs.cacheBytes > fs.opts.CacheBytes && len(fs.cacheList) > 0 {
		old := fs.cacheList[0]
		fs.cacheList = fs.cacheList[1:]
		if _, ok := fs.cache[old]; ok {
			delete(fs.cache, old)
			fs.cacheBytes -= blockSize
		}
	}
}

// readData returns a data block through the page cache.
func (fs *FS) readData(b uint64) ([]byte, error) {
	if data, ok := fs.cache[b]; ok {
		return data, nil
	}
	data := make([]byte, blockSize)
	if err := fs.readBlock(int64(b), data); err != nil {
		return nil, err
	}
	fs.cachePut(b, data)
	return data, nil
}

// writeData writes a file data block through to disk and cache.
func (fs *FS) writeData(b uint64, data []byte) error {
	fs.cachePut(b, data)
	return fs.writeBlock(int64(b), data)
}

// ---- allocation ----

func (fs *FS) allocBlock() (uint64, error) {
	for i := int64(0); i < fs.nBlocks; i++ {
		b := fs.allocHint + i
		if b >= fs.nBlocks {
			b -= fs.nBlocks - fs.dataStart
		}
		if b < fs.dataStart {
			b = fs.dataStart
		}
		if !fs.blockUse[b] {
			fs.blockUse[b] = true
			fs.allocHint = b + 1
			fs.markBitmapDirty(b)
			return uint64(b), nil
		}
	}
	return 0, fsys.ErrNoSpace
}

func (fs *FS) freeBlock(b uint64) {
	if int64(b) >= fs.dataStart && int64(b) < fs.nBlocks {
		fs.blockUse[b] = false
		fs.markBitmapDirty(int64(b))
		delete(fs.cache, b)
	}
}

func (fs *FS) allocInode() (uint64, error) {
	for i := 1; i <= fs.nInodes; i++ {
		if !fs.inodeUse[i] {
			fs.inodeUse[i] = true
			return uint64(i), nil
		}
	}
	return 0, fsys.ErrNoSpace
}

// ---- dirty metadata tracking & policy ----

func (fs *FS) markInodeDirty(ino uint64) {
	blk := fs.itabStart + int64(ino)/inodesPerBlk
	fs.dirtyMeta[blk] = nil // contents built at flush
}

func (fs *FS) markBitmapDirty(b int64) {
	blk := fs.bmStart + b/(blockSize*8)
	fs.dirtyMeta[blk] = nil
}

func (fs *FS) markDirBlockDirty(dataBlk uint64) {
	fs.dirtyMeta[int64(dataBlk)] = nil
}

// buildMetaBlock materializes the current contents of a metadata block.
func (fs *FS) buildMetaBlock(blk int64) ([]byte, error) {
	buf := make([]byte, blockSize)
	switch {
	case blk >= fs.itabStart && blk < fs.itabStart+fs.itabBlocks:
		first := uint64((blk - fs.itabStart) * inodesPerBlk)
		for i := uint64(0); i < inodesPerBlk; i++ {
			ino := first + i
			if in, ok := fs.inodes[ino]; ok && ino != 0 {
				in.encode(buf[i*inodeSize : (i+1)*inodeSize])
			}
		}
	case blk >= fs.bmStart && blk < fs.bmStart+fs.bmBlocks:
		firstBit := (blk - fs.bmStart) * blockSize * 8
		for i := int64(0); i < blockSize*8 && firstBit+i < fs.nBlocks; i++ {
			if fs.blockUse[firstBit+i] {
				buf[i/8] |= 1 << (i % 8)
			}
		}
	default:
		// Directory data block: already written through writeData's
		// cache; fetch from cache (or disk).
		data, err := fs.readData(uint64(blk))
		if err != nil {
			return nil, err
		}
		copy(buf, data)
	}
	return buf, nil
}

// flushPolicy applies the write policy after a mutating operation.
// fileIno, when non-nil, names the file whose data/inode were touched
// (ext2-sync writes that inode through but leaves the rest dirty).
func (fs *FS) flushPolicy(fileIno *uint64) error {
	switch fs.opts.Policy {
	case FFSSync:
		return fs.flushAllMetaLocked()
	case Ext2Sync:
		if fileIno != nil {
			blk := fs.itabStart + int64(*fileIno)/inodesPerBlk
			if _, dirty := fs.dirtyMeta[blk]; dirty {
				data, err := fs.buildMetaBlock(blk)
				if err != nil {
					return err
				}
				if err := fs.writeBlock(blk, data); err != nil {
					return err
				}
				delete(fs.dirtyMeta, blk)
			}
		}
		return nil
	default:
		return nil
	}
}

// flushAllMetaLocked writes every dirty metadata block, one small write
// each — the synchronous-metadata cost the paper's FFS baseline pays.
func (fs *FS) flushAllMetaLocked() error {
	for blk := range fs.dirtyMeta {
		data, err := fs.buildMetaBlock(blk)
		if err != nil {
			return err
		}
		if err := fs.writeBlock(blk, data); err != nil {
			return err
		}
		delete(fs.dirtyMeta, blk)
	}
	return nil
}

// Sync flushes all dirty metadata.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.flushAllMetaLocked()
}

// ---- block mapping ----

// blockOf returns the data block holding file block idx (0 = hole).
func (fs *FS) blockOf(in *inode, idx uint64) (uint64, error) {
	if idx < nDirect {
		return in.direct[idx], nil
	}
	idx -= nDirect
	if idx >= ptrsPerBlock {
		return 0, fsys.ErrInval
	}
	if in.indirect == 0 {
		return 0, nil
	}
	if in.ptrs == nil {
		data, err := fs.readData(in.indirect)
		if err != nil {
			return 0, err
		}
		in.ptrs = make([]uint64, ptrsPerBlock)
		for i := range in.ptrs {
			in.ptrs[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
	}
	return in.ptrs[idx], nil
}

// setBlockOf installs a mapping, allocating the indirect block when
// needed. ino is the owning inode number (for dirty tracking).
func (fs *FS) setBlockOf(ino uint64, in *inode, idx uint64, b uint64) error {
	if idx < nDirect {
		in.direct[idx] = b
		fs.markInodeDirty(ino)
		return nil
	}
	idx -= nDirect
	if idx >= ptrsPerBlock {
		return fsys.ErrInval
	}
	if in.indirect == 0 {
		nb, err := fs.allocBlock()
		if err != nil {
			return err
		}
		in.indirect = nb
		in.ptrs = make([]uint64, ptrsPerBlock)
		fs.markInodeDirty(ino)
	}
	if in.ptrs == nil {
		if _, err := fs.blockOf(in, nDirect); err != nil { // loads ptrs
			return err
		}
		if in.ptrs == nil {
			in.ptrs = make([]uint64, ptrsPerBlock)
		}
	}
	in.ptrs[idx] = b
	// The pointer block is metadata: write it through the dirty set.
	buf := make([]byte, blockSize)
	for i := range in.ptrs {
		binary.LittleEndian.PutUint64(buf[i*8:], in.ptrs[i])
	}
	fs.cachePut(in.indirect, buf)
	fs.markDirBlockDirty(in.indirect)
	return nil
}

func (fs *FS) getInode(ino uint64) (*inode, error) {
	if ino == 0 || ino > uint64(fs.nInodes) {
		return nil, fsys.ErrStale
	}
	if in, ok := fs.inodes[ino]; ok {
		return in, nil
	}
	if !fs.inodeUse[ino] {
		return nil, fsys.ErrStale
	}
	// Load from the inode table.
	blk := fs.itabStart + int64(ino)/inodesPerBlk
	buf := make([]byte, blockSize)
	if err := fs.readBlock(blk, buf); err != nil {
		return nil, err
	}
	off := (ino % inodesPerBlk) * inodeSize
	in := decodeInode(buf[off : off+inodeSize])
	if in.typ == fsys.TypeNone {
		return nil, fsys.ErrStale
	}
	fs.inodes[ino] = &in
	return &in, nil
}
