package core

import (
	"bytes"
	"errors"
	"testing"

	"s4/internal/types"
)

// Fault-injection: the drive must surface device errors cleanly and,
// after the fault clears, the durable state must still be consistent
// (either the op happened or it did not — no corruption).

func TestWriteFailsCleanlyOnDeviceError(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("stable state"))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("medium error")
	oldContent := []byte("stable state")
	newContent := bytes.Repeat([]byte{0xEE}, 12)
	// Fail several upcoming I/Os one at a time; after each, the drive
	// must keep serving, and the readable content must be exactly the
	// old version or exactly the new one — never a blend, never short.
	for n := int64(0); n < 4; n++ {
		e.dev.FailAfter(n, boom)
		_ = e.d.Write(alice, id, 0, bytes.Repeat([]byte{0xEE}, 6*types.BlockSize))
		_ = e.d.Sync(alice)
		e.dev.FailAfter(-1, nil) // disarm (one-shot anyway)
		got, err := e.d.Read(alice, id, 0, 12, types.TimeNowest)
		if err != nil {
			t.Fatalf("n=%d: read after fault: %v", n, err)
		}
		if !bytes.Equal(got, oldContent) && !bytes.Equal(got, newContent) {
			t.Fatalf("n=%d: content %q is neither the old nor the new version", n, got)
		}
		e.tick()
	}
}

func TestCrashAfterFaultRecovers(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("v-one"))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	// A fault during a later write, then a crash: recovery must land on
	// a consistent state containing the synced version.
	e.dev.FailAfter(2, errors.New("transient"))
	_ = e.d.Write(alice, id, 0, []byte("v-two (may be lost)"))
	_ = e.d.Sync(alice)
	e.dev.FailAfter(-1, nil)
	e.reopen()
	got, err := e.d.Read(alice, id, 0, 32, types.TimeNowest)
	if err != nil {
		t.Fatalf("read after crash: %v", err)
	}
	if string(got) != "v-one" && !bytes.HasPrefix(got, []byte("v-two")) {
		t.Fatalf("inconsistent state after fault+crash: %q", got)
	}
}

func TestCleanerSurvivesReadFault(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = 0 })
	id := e.create(alice)
	for i := 0; i < 5; i++ {
		e.write(alice, id, 0, bytes.Repeat([]byte{byte(i)}, 2*types.BlockSize))
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.dev.FailAfter(1, errors.New("read fault"))
	// The pass may fail; the drive must not wedge.
	_, _ = e.d.CleanOnce()
	e.dev.FailAfter(-1, nil)
	if _, err := e.d.CleanOnce(); err != nil {
		t.Fatalf("cleaner wedged after fault: %v", err)
	}
	got, err := e.d.Read(alice, id, 0, 2*types.BlockSize, types.TimeNowest)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{4}, 2*types.BlockSize)) {
		t.Fatalf("data damaged: %v", err)
	}
}
