package core

import (
	"encoding/binary"
	"fmt"
	stdlog "log"
	"sort"
	"time"

	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
)

// Checkpointing and crash recovery.
//
// Checkpoint: the drive flushes every object's journal, writes full
// inode checkpoints for objects modified since their last checkpoint,
// and then serializes the object map (plus allocator and audit state)
// and the segment index (segindex.go) into the segment log's
// alternating checkpoint slots.
//
// Recovery: read the newest object-map checkpoint, roll forward over
// segments written after it by redoing journal entries with versions
// beyond each object's checkpointed version, then rebuild segment
// usage. Two ways to rebuild (DESIGN.md §14):
//
//   - Full scan: recount from scratch by classifying every on-disk
//     block against the recovered object map — the LFS-style recovery
//     that trades restart time for zero steady-state bookkeeping risk.
//   - Indexed: preload the checkpoint-time counters from the persisted
//     segment index and apply only the deltas the replayed tail
//     implies. Any defect in the index degrades to the full scan; the
//     torture battery proves both paths produce identical state.

const imapMagic = 0x53344D50 // "S4MP"

// checkpointLocked makes the entire drive state durable.
func (d *Drive) checkpointLocked() error {
	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := d.objects[id]
		if len(o.pending) > 0 {
			if err := d.flushJournalLocked(o); err != nil {
				return err
			}
		}
		// Journal-complete objects need no metadata copy: their chain
		// reconstructs them entirely (§4.2.2). Only chain-pruned or
		// previously checkpointed objects are refreshed.
		if o.ino != nil && !o.journalComplete() && (o.cpVersion != o.ino.Version || o.inodeRoot == seglog.NilAddr) {
			if err := d.checkpointObjectLocked(o); err != nil {
				return err
			}
		}
	}
	d.auditMu.Lock()
	auditErr := d.flushAuditLocked()
	d.auditMu.Unlock()
	if auditErr != nil {
		return auditErr
	}
	if err := d.log.Sync(); err != nil {
		return err
	}
	// Everything staged so far is durable, so every issued commit
	// ticket is covered: a Sync racing in right after the exclusive
	// lock drops can coalesce onto this force. No ticket holder can be
	// waiting now (they hold the shared drive lock), so plain stores
	// under commitMu suffice.
	d.commitMu.Lock()
	d.commitDone = d.commitSeq
	d.commitMu.Unlock()
	imap := d.encodeImapLocked()
	idx := d.encodeSegIndexLocked()
	if len(imap)+len(idx) > d.log.CheckpointCapacity() {
		// The index is advisory: rather than fail the checkpoint, drop
		// it and let the next open pay for a full scan.
		stdlog.Printf("core: segment index (%d bytes) does not fit the checkpoint slot; next open will full-scan", len(idx))
		idx = nil
	}
	if err := d.log.WriteCheckpoint(imap, idx); err != nil {
		return err
	}
	// The durable object map no longer references segments the cleaner
	// emptied; they may now rejoin the allocator.
	for seg := range d.pendingFree {
		if err := d.log.FreeSegment(seg); err != nil {
			return err
		}
		delete(d.pendingFree, seg)
	}
	return nil
}

// Checkpoint is the public form, taken periodically by daemons.
func (d *Drive) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return types.ErrDriveStopped
	}
	return d.checkpointLocked()
}

func (d *Drive) encodeImapLocked() []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], imapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1) // format version
	buf = append(buf, hdr[:]...)
	putU(uint64(d.nextOID))
	putU(uint64(d.window))
	putU(d.auditSeq)
	putU(uint64(len(d.auditBlocks)))
	for _, r := range d.auditBlocks {
		putU(uint64(r.addr))
		putU(r.firstSeq)
		putU(uint64(r.lastTime))
	}
	putU(uint64(len(d.objects)))
	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := d.objects[id]
		putU(uint64(o.id))
		putU(o.nextVersion)
		putU(uint64(o.inodeRoot))
		putU(uint64(len(o.cpBlocks)))
		for _, a := range o.cpBlocks {
			putU(uint64(a))
		}
		putU(o.cpVersion)
		putU(uint64(o.jhead))
		putU(uint64(o.jtail))
		putU(o.floorVersion)
		putU(uint64(o.floorTime))
		if o.pruned {
			putU(1)
		} else {
			putU(0)
		}
	}
	return buf
}

func (d *Drive) decodeImap(data []byte) error {
	if len(data) < 8 || binary.LittleEndian.Uint32(data[:4]) != imapMagic {
		return fmt.Errorf("core: bad object-map checkpoint: %w", types.ErrCorrupt)
	}
	data = data[8:]
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("core: object-map varint: %w", types.ErrCorrupt)
		}
		data = data[n:]
		return v, nil
	}
	v, err := getU()
	if err != nil {
		return err
	}
	d.nextOID = types.ObjectID(v)
	if v, err = getU(); err != nil {
		return err
	}
	d.window = time.Duration(v)
	if d.auditSeq, err = getU(); err != nil {
		return err
	}
	nAudit, err := getU()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nAudit; i++ {
		var r auditBlockRef
		if v, err = getU(); err != nil {
			return err
		}
		r.addr = seglog.BlockAddr(v)
		if r.firstSeq, err = getU(); err != nil {
			return err
		}
		if v, err = getU(); err != nil {
			return err
		}
		r.lastTime = types.Timestamp(v)
		d.auditBlocks = append(d.auditBlocks, r)
	}
	nObj, err := getU()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nObj; i++ {
		o := &object{}
		if v, err = getU(); err != nil {
			return err
		}
		o.id = types.ObjectID(v)
		if o.nextVersion, err = getU(); err != nil {
			return err
		}
		if v, err = getU(); err != nil {
			return err
		}
		o.inodeRoot = seglog.BlockAddr(v)
		nCP, err := getU()
		if err != nil {
			return err
		}
		for j := uint64(0); j < nCP; j++ {
			if v, err = getU(); err != nil {
				return err
			}
			o.cpBlocks = append(o.cpBlocks, seglog.BlockAddr(v))
		}
		if o.cpVersion, err = getU(); err != nil {
			return err
		}
		if v, err = getU(); err != nil {
			return err
		}
		o.jhead = journal.SectorAddr(v)
		if v, err = getU(); err != nil {
			return err
		}
		o.jtail = journal.SectorAddr(v)
		if o.floorVersion, err = getU(); err != nil {
			return err
		}
		if v, err = getU(); err != nil {
			return err
		}
		o.floorTime = types.Timestamp(v)
		if v, err = getU(); err != nil {
			return err
		}
		o.pruned = v != 0
		o.lruEl = d.objLRU.PushBack(o)
		d.objects[o.id] = o
	}
	return nil
}

// recover restores drive state after Open: checkpoint load, journal
// roll-forward, and a usage rebuild (indexed when the persisted segment
// index is usable, full recount otherwise).
func (d *Drive) recover() error {
	blob, idxBlob, cpSeq, ok, err := d.log.ReadCheckpoint()
	if err != nil {
		return err
	}
	if ok {
		if err := d.decodeImap(blob); err != nil {
			return err
		}
	}
	idx := d.loadSegIndex(idxBlob, ok)
	if idx != nil {
		d.stats.IndexLoads++
		d.preloadSegIndex(idx)
	}
	if d.recSumCover == nil {
		// The full-scan path needs the coverage cache too: the replay
		// durability check consults it for every entry.
		d.recSumCover = make(map[int64]int)
	}
	d.recDrop = make(map[types.ObjectID]uint64)
	// Roll forward: visit segments written after the checkpoint in
	// sequence order, relinking journal chains and redoing entries.
	visited := make(map[int64]bool)
	err = d.log.ScanFrom(cpSeq, func(seg int64, sum seglog.Summary) error {
		visited[seg] = true
		d.log.MarkAllocated(seg)
		d.log.SetSeq(sum.Seq)
		for i, e := range sum.Entries {
			addr := d.log.EntryAt(seg, i)
			switch e.Kind {
			case seglog.KindJournal:
				if err := d.recoverJournalBlock(addr); err != nil {
					return err
				}
			case seglog.KindAudit:
				d.recoverAuditBlock(addr, e.Key, e.Time)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := d.vetSkippedHeads(visited); err != nil {
		return err
	}
	// The roll-forward rebuilt the policy table object (if any) like
	// every other object; decode it before the usage rebuild so per-
	// object Window overrides classify history with the same cut the
	// cleaner used at runtime (DESIGN.md §16). The object is created
	// lazily by the first SetPolicy, so pre-upgrade images open
	// unchanged.
	if err := d.loadPoliciesLocked(); err != nil {
		return err
	}
	if idx != nil {
		err = d.finishIndexedRecovery(idx)
	} else {
		// Recount usage from scratch.
		err = d.recountUsage()
	}
	if err != nil {
		return err
	}
	// Both paths end with aging unscheduled and the landmark index
	// reconverged with what is actually in each chain.
	for _, o := range d.objects {
		o.nextAge = 0
		o.lmReset = false
	}
	d.recPreJhead, d.recSnapVer, d.recTouched, d.recSumCover, d.recDrop = nil, nil, nil, nil, nil
	// Evict down to the configured object-cache budget.
	return d.evictColdLocked()
}

// loadSegIndex decides whether recovery may anchor at the persisted
// segment index. Any reason it cannot — index absent, undecodable, or
// naming a different object set than the object map it rode with —
// counts as a fallback and degrades to the full scan. DisableSegIndex
// is a deliberate request for the full scan, not a fallback.
func (d *Drive) loadSegIndex(idxBlob []byte, haveCP bool) *segIndex {
	if !haveCP || d.opts.DisableSegIndex {
		return nil
	}
	reject := func(why string) *segIndex {
		d.stats.IndexFallbacks++
		stdlog.Printf("core: %s; falling back to full-scan recovery", why)
		return nil
	}
	if idxBlob == nil {
		return reject("checkpoint carries no segment index")
	}
	idx, err := decodeSegIndex(idxBlob, d.log.NumSegments())
	if err != nil {
		return reject(fmt.Sprintf("segment index rejected (%v)", err))
	}
	if len(idx.objects) != len(d.objects) {
		return reject("segment index object set differs from object map")
	}
	for id := range d.objects {
		if _, ok := idx.objects[id]; !ok {
			return reject("segment index object set differs from object map")
		}
	}
	return idx
}

// preloadSegIndex installs the checkpoint-time usage tables and per-
// object recovery hints before the roll-forward scan runs.
func (d *Drive) preloadSegIndex(idx *segIndex) {
	nSeg := d.log.NumSegments()
	for seg := int64(0); seg < nSeg; seg++ {
		s := idx.segs[seg]
		if s.free {
			continue // seglog.Open starts every segment free
		}
		d.log.MarkAllocated(seg)
		d.usage.set(seg, s.live, s.hist)
	}
	d.jblockRef = make(map[seglog.BlockAddr]int, len(idx.jrefs))
	for a, n := range idx.jrefs {
		d.jblockRef[a] = n
	}
	d.jstageAddr, d.jstageUsed = seglog.NilAddr, 0
	d.recPreJhead = make(map[types.ObjectID]journal.SectorAddr, len(d.objects))
	d.recSnapVer = make(map[types.ObjectID]uint64, len(d.objects))
	d.recTouched = make(map[types.ObjectID]bool)
	d.recSumCover = make(map[int64]int)
	for id, o := range d.objects {
		d.recPreJhead[id] = o.jhead
		d.recSnapVer[id] = o.nextVersion - 1
		o.landmarks = append([]landmark(nil), idx.objects[id].landmarks...)
	}
}

// recoverJournalBlock relinks every sector of one flushed journal block
// and redoes entries newer than the owning objects' checkpointed
// versions. Slots are processed in order, which preserves chronology.
func (d *Drive) recoverJournalBlock(addr seglog.BlockAddr) error {
	buf := make([]byte, seglog.BlockSize)
	if err := d.log.Read(addr, buf); err != nil {
		return err
	}
	for slot := 0; slot < journal.SectorsPerBlock; slot++ {
		data := buf[slot*journal.SectorSize : (slot+1)*journal.SectorSize]
		id, prev, entries, ok, err := journal.DecodeSector(data)
		if err != nil || !ok {
			continue // empty or torn slot: nothing durable to replay
		}
		sa := journal.MakeSectorAddr(addr, slot)
		if err := d.recoverJournalSector(sa, prev, id, entries); err != nil {
			return err
		}
	}
	return nil
}

func (d *Drive) recoverJournalSector(addr journal.SectorAddr, prev journal.SectorAddr, id types.ObjectID, entries []journal.Entry) error {
	d.recReplay += int64(len(entries))
	o := d.objects[id]
	if o == nil {
		o = &object{id: id, nextVersion: 1}
		o.lruEl = d.objLRU.PushBack(o)
		d.objects[id] = o
		if id >= d.nextOID {
			d.nextOID = id + 1
		}
	}
	// Vet the sector before anything reads the chain: the shared
	// journal sector is rewritten in place, so a crash can leave an
	// entry durable while the data blocks it points at — staged after
	// the last summary snapshot — are not. Nothing from the first such
	// entry on was acknowledged (Sync writes the covering snapshot
	// before returning), so treat it as the LFS tail it is: erase the
	// suffix from the sector, and poison every later version of the
	// object, so the recovered state stays an exact prefix of the op
	// sequence, post-crash writes cannot collide with the rejected
	// versions, and full chain replays (loadInode below walks the
	// media, which may include this very sector when it is the
	// rewritten checkpoint-time head) cannot resurrect fabricated
	// state. Everything synced before the checkpoint is covered, so a
	// re-synced old sector always vets clean; the poison floor is a
	// version for the same reason — spared prefixes stay spared.
	poison := d.recDrop[id]
	vet := -1
	for i := range entries {
		e := &entries[i]
		if (poison != 0 && e.Version >= poison) || !d.entryDurable(e) {
			vet = i
			break
		}
	}
	if vet >= 0 {
		if v := entries[vet].Version; poison == 0 || v < poison {
			d.recDrop[id] = v
		}
		d.stats.RecoveryTruncations++
		if err := d.truncateJournalSector(addr, prev, id, entries, vet); err != nil {
			return err
		}
		entries = entries[:vet]
		if len(entries) == 0 {
			// The whole sector was un-durable tail: it is an empty slot
			// now and never joins the chain.
			return nil
		}
	}
	// Materialize the inode: from its checkpoint, from the chain the
	// object map already links (journal-complete objects skip
	// checkpoints), or fresh for objects born after the checkpoint.
	if o.ino == nil {
		if o.inodeRoot != seglog.NilAddr || o.jhead != journal.NilSector {
			if err := d.loadInode(o); err != nil {
				return err
			}
		} else {
			if entries[0].Type != journal.EntCreate {
				return fmt.Errorf("core: %v: journal without create or checkpoint: %w", id, types.ErrCorrupt)
			}
			o.ino = newInode(id, entries[0].Time, nil)
			d.loaded.Add(1)
		}
	}
	newest := entries[len(entries)-1].Version
	if newest <= o.cpVersion || newest <= o.ino.Version {
		// A pre-checkpoint (or already-linked) sector re-synced inside
		// a newer segment: its effects are already present.
		return nil
	}
	if d.recTouched != nil {
		// Indexed recovery: pass A walks this object's post-checkpoint
		// tail once the scan has fully relinked it.
		d.recTouched[id] = true
	}
	for i := range entries {
		e := &entries[i]
		if e.Version <= o.cpVersion || e.Version < o.ino.Version {
			continue
		}
		if e.Type == journal.EntCreate {
			// The initial ACL and attributes arrive as the EntSetACL /
			// EntSetAttr entries that immediately follow.
			o.ino.CreateTime = e.Time
			o.ino.ModTime = e.Time
			continue
		}
		o.ino.redo(e)
		if e.Version >= o.nextVersion {
			o.nextVersion = e.Version + 1
		}
	}
	o.jhead = addr
	if o.jtail == journal.NilSector {
		o.jtail = addr
	}
	return nil
}

// entryDurable reports whether every block a journal entry introduces
// is covered by its segment's durable summary. An uncovered pointer
// means the crash cut the flush between the in-place journal rewrite
// and the data (or snapshot) write it described: the entry's payload
// may be zeros, stale bytes, or absent entirely, and replaying it would
// fabricate state no client was ever acknowledged.
func (d *Drive) entryDurable(e *journal.Entry) bool {
	for _, nw := range e.New {
		if nw != seglog.NilAddr && !d.recCovered(nw) {
			return false
		}
	}
	// A masked Old slot points into a packed delta block written by the
	// same flush; replaying the entry without it would leave history
	// chains referencing bytes that never became durable.
	if e.DeltaMask != 0 {
		for k, old := range e.Old {
			if e.DeltaMask&(1<<uint(k)) != 0 &&
				!d.recCovered(seglog.BlockAddr(uint64(old)/journal.DeltaSlotsPerBlock)) {
				return false
			}
		}
	}
	if e.Type == journal.EntCheckpoint && e.InodeAddr != seglog.NilAddr && !d.recCovered(e.InodeAddr) {
		return false
	}
	return true
}

// truncateJournalSector rewrites the journal sector at addr keeping
// only entries[:keep], erasing an un-durable replay tail from the
// chain structurally: loadInode replays complete chains and new writes
// reuse the freed versions, so skipping the entries in memory is not
// enough — they must leave the media. A sector whose entries are all
// rejected becomes an empty slot and never joins the chain. The write
// is crash-safe in the advisory sense: re-running recovery after a
// crash mid-truncation just rejects the same suffix again.
func (d *Drive) truncateJournalSector(addr journal.SectorAddr, prev journal.SectorAddr, id types.ObjectID, entries []journal.Entry, keep int) error {
	sector := make([]byte, journal.SectorSize)
	if keep > 0 {
		ptrs := make([]*journal.Entry, keep)
		for i := range ptrs {
			ptrs[i] = &entries[i]
		}
		enc, err := journal.EncodeSector(id, prev, ptrs)
		if err != nil {
			return err
		}
		copy(sector, enc)
	}
	return d.log.PatchSettled(addr.Block(), addr.Slot()*journal.SectorSize, sector)
}

// vetSkippedHeads closes the scan's blind spot. ScanFrom only visits
// segments whose durable summary seq is newer than the checkpoint's,
// but the open-at-crash segment can carry a head-sector rewrite the
// scan never sees: a crash that cut the first post-checkpoint flush
// after its journal-block write left the segment's newest durable
// snapshot *older* than cpSeq, yet the rewritten sector — now holding
// entries no snapshot ever covered — is exactly where the checkpoint's
// object map points. Nothing replays those entries during recovery,
// but loadInode's full chain walk would, so they must be vetted and
// truncated here, before the usage passes walk any chain. Entries at
// or below the checkpointed version stay (a completed Sync would have
// advanced the snapshot seq past cpSeq, so everything above it is
// unacknowledged tail); the durability check also runs so an
// EntCheckpoint naming a never-written inode root cannot slip through
// on a version tie.
func (d *Drive) vetSkippedHeads(visited map[int64]bool) error {
	for id, o := range d.objects {
		if o.jhead == journal.NilSector {
			continue
		}
		seg := segOf(d.log, o.jhead.Block())
		if seg < 0 || visited[seg] {
			continue // the roll-forward scan vetted every sector there
		}
		gotID, prev, entries, err := journal.ReadSector(d.log, o.jhead)
		if err != nil || gotID != id {
			// Torn, rotted, or reused: the chain walks that need this
			// sector will report it; vetting has nothing to cut.
			continue
		}
		limit := o.nextVersion - 1
		vet := -1
		for i := range entries {
			if entries[i].Version > limit || !d.entryDurable(&entries[i]) {
				vet = i
				break
			}
		}
		if vet < 0 {
			continue
		}
		if v := entries[vet].Version; d.recDrop[id] == 0 || v < d.recDrop[id] {
			d.recDrop[id] = v
		}
		d.stats.RecoveryTruncations++
		if err := d.truncateJournalSector(o.jhead, prev, id, entries, vet); err != nil {
			return err
		}
	}
	return nil
}

func (d *Drive) recoverAuditBlock(addr seglog.BlockAddr, firstSeq uint64, lastTime types.Timestamp) {
	for _, r := range d.auditBlocks {
		// Matching firstSeq with a different address means the cleaner
		// relocated the block and the crash beat the checkpoint that
		// would have recorded the move: both copies hold the same
		// records, so keep the first (the checkpointed original, whose
		// segment the deferred-reuse barrier kept intact).
		if r.addr == addr || r.firstSeq == firstSeq {
			return
		}
	}
	if d.recTouched != nil {
		// Indexed recovery skips the recount that would classify this
		// freshly scanned audit block live; account it here.
		d.usage.liveBorn(segOf(d.log, addr))
	}
	d.auditBlocks = append(d.auditBlocks, auditBlockRef{addr: addr, firstSeq: firstSeq, lastTime: lastTime})
	// Recover the sequence counter past anything on disk.
	if firstSeq >= d.auditSeq {
		d.auditSeq = firstSeq + 1000 // conservative gap; seqs need only be increasing
	}
}

// recountUsage rebuilds per-segment live/history counters and the
// chain-sector index by classifying every on-disk block against the
// recovered object map.
func (d *Drive) recountUsage() error {
	d.usage.reset()
	d.jblockRef = make(map[seglog.BlockAddr]int)
	d.jstageAddr, d.jstageUsed = seglog.NilAddr, 0

	live := make(map[seglog.BlockAddr]bool)
	// Blocks deprecated inside their owner's detection window — per-
	// object retention policies can override the drive window, so
	// membership is decided here, per object, not in the sweep below.
	hist := make(map[seglog.BlockAddr]bool)
	now := d.clk.Now()

	for _, r := range d.auditBlocks {
		live[r.addr] = true
	}
	for _, o := range d.objects {
		if err := d.loadInode(o); err != nil {
			return err
		}
		ageCut := types.TS(now.Add(-d.effectiveWindow(o.id)))
		for _, a := range o.ino.blocks {
			if o.ino.Deleted {
				if o.ino.DeadTime >= ageCut {
					hist[a] = true
				}
			} else {
				live[a] = true
			}
		}
		for _, a := range o.cpBlocks {
			live[a] = true
		}
		// Walk the chain: in-chain sectors keep their shared journal
		// blocks live; entry Old pointers carry deprecation times, and
		// checkpoint entries rebuild the landmark index.
		for addr := o.jhead; addr != journal.NilSector; {
			live[addr.Block()] = true
			d.jblockRef[addr.Block()]++
			_, prev, entries, err := journal.ReadSector(d.log, addr)
			if err != nil {
				return err
			}
			d.recReplay += int64(len(entries))
			for i := range entries {
				e := &entries[i]
				if e.Type == journal.EntCheckpoint {
					d.recoverLandmark(o, e, addr, hist, ageCut)
					continue
				}
				// Entries at or below the aging floor released their Old
				// blocks long ago; the blocks may since have been recycled
				// into other objects' data, so a stale below-floor pointer
				// must not mark the current owner's block as history (which
				// object's walk ran last is map order — without the floor
				// check the recount itself would be nondeterministic).
				if e.Version <= o.floorVersion || e.Time < ageCut {
					continue
				}
				for k, old := range e.Old {
					if old == seglog.NilAddr {
						continue
					}
					if e.DeltaMask&(1<<uint(k)) != 0 {
						// A packed-slot reference: the deprecated block is
						// the shared packed delta block (slots coalesce).
						hist[seglog.BlockAddr(uint64(old)/journal.DeltaSlotsPerBlock)] = true
						continue
					}
					hist[old] = true
				}
			}
			if addr == o.jtail {
				break
			}
			addr = prev
		}
		// The walk visits sectors newest-first (entries within each
		// oldest-first); restore the index's ascending-by-time order.
		sort.Slice(o.landmarks, func(i, j int) bool {
			if o.landmarks[i].time != o.landmarks[j].time {
				return o.landmarks[i].time < o.landmarks[j].time
			}
			return o.landmarks[i].version < o.landmarks[j].version
		})
	}

	nSeg := d.log.NumSegments()
	for seg := int64(0); seg < nSeg; seg++ {
		sum, ok, err := d.log.ReadSummary(seg)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		counted := false
		for i := range sum.Entries {
			addr := d.log.EntryAt(seg, i)
			switch {
			case live[addr]:
				d.usage.liveBorn(seg)
				counted = true
			case hist[addr]:
				d.usage.liveBorn(seg)
				d.usage.deprecate(seg)
				counted = true
			default:
				// Aged history, superseded checkpoints, or blocks
				// orphaned by a crash: dead.
			}
		}
		if counted {
			d.log.MarkAllocated(seg)
		} else if seg != d.log.CurrentSegment() {
			if err := d.log.FreeSegment(seg); err != nil {
				return err
			}
		}
	}
	return nil
}

// recoverLandmark accounts one chain EntCheckpoint and rebuilds its
// landmark index entry. The root is validated before either: data-block
// relocation frees checkpoint roots but leaves the chain entry behind
// as a tombstone, so a recorded address may now hold reused-segment
// bytes (decode fails or names another object/version — skip) or the
// original root intact (resurrect it; it is self-consistent and ages
// out with its entry like any other).
func (d *Drive) recoverLandmark(o *object, e *journal.Entry, sector journal.SectorAddr, hist map[seglog.BlockAddr]bool, ageCut types.Timestamp) {
	if e.Time < ageCut || e.InodeAddr == seglog.NilAddr {
		return // aged out: the root, if any survives, is dead weight
	}
	root := make([]byte, seglog.BlockSize)
	if err := d.log.Read(e.InodeAddr, root); err != nil {
		return
	}
	in, _, err := decodeInodeRoot(d.log, root)
	if err != nil || in.ID != o.id || in.Version != e.Version {
		return
	}
	hist[e.InodeAddr] = true
	o.landmarks = append(o.landmarks, landmark{
		time:    e.Time,
		version: e.Version,
		root:    e.InodeAddr,
		sector:  sector,
	})
}

// ---- Indexed recovery (DESIGN.md §14) ----
//
// The preloaded counters are exact for everything durable at the
// checkpoint; the passes below apply only what changed since: the
// replayed chain tails, aging that came due, and landmark-index
// maintenance the runtime had performed in memory only. Every rule
// mirrors a recountUsage classification — the recovery-equivalence
// battery in internal/torture diffs the two paths' full state.

// finishIndexedRecovery replaces recountUsage when recovery anchored at
// a persisted segment index.
func (d *Drive) finishIndexedRecovery(idx *segIndex) error {
	now := d.clk.Now()
	nowTS := types.TS(now)
	// Per-object cut: a retention policy's Window override ages that
	// object on its own clock (matching ageObjectLocked and the full
	// recount's per-object classification).
	cutFor := func(id types.ObjectID) types.Timestamp {
		return types.TS(now.Add(-d.effectiveWindow(id)))
	}

	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Pass A: account each object's post-checkpoint chain tail. Two
	// kinds of object can carry one: objects whose chains the scan
	// advanced, and objects whose checkpoint-time head sector sits in
	// the segment that was open when the checkpoint was taken — the
	// head-merge flush path rewrites that sector in place, so it can
	// hold entries the checkpoint never saw without any summary update
	// the scan would notice.
	settled := make(map[types.ObjectID]bool, len(d.recTouched))
	for _, id := range ids {
		o := d.objects[id]
		if !d.recTouched[id] {
			pre, ok := d.recPreJhead[id]
			if !ok || pre == journal.NilSector || idx.openSeg < 0 ||
				segOf(d.log, pre.Block()) != idx.openSeg {
				continue
			}
		}
		if err := d.accountReplayTail(o, cutFor(id)); err != nil {
			return err
		}
		settled[id] = true
	}

	// Pass B: re-derive aging with today's cut. The persisted nextAge
	// hint is the earliest instant anything retained could age; before
	// it, the checkpoint-time classification still holds and the walk
	// is skipped — this is what keeps an idle-drive open O(index).
	for _, id := range ids {
		o := d.objects[id]
		oi := idx.objects[id]
		if oi == nil {
			continue // born after the checkpoint: pass A covered it
		}
		if oi.nextAge != 0 && nowTS < oi.nextAge {
			continue
		}
		if err := d.agingCorrection(o, cutFor(id), settled[id]); err != nil {
			return err
		}
	}

	// Pass C: drop landmarks whose entries left the window. Their roots
	// were validated when persisted and the deferred-reuse barrier kept
	// them intact, so only the time bound matters here.
	for _, id := range ids {
		o := d.objects[id]
		cut := cutFor(id)
		kept := o.landmarks[:0]
		for _, ln := range o.landmarks {
			if ln.time < cut {
				d.usage.ageOut(segOf(d.log, ln.root))
				continue
			}
			kept = append(kept, ln)
		}
		o.landmarks = kept
	}

	// Pass D: objects flagged lmReset lost their landmark index
	// wholesale to a compaction since the persisted snapshot; re-walk
	// their chains for intact checkpoint roots exactly as the full
	// recount would re-index them.
	for _, id := range ids {
		oi := idx.objects[id]
		if oi == nil || !oi.lmReset {
			continue
		}
		o := d.objects[id]
		snapVer := d.recSnapVer[id]
		cut := cutFor(id)
		for addr := o.jhead; addr != journal.NilSector; {
			_, prev, entries, err := journal.ReadSector(d.log, addr)
			if err != nil {
				return err
			}
			d.recReplay += int64(len(entries))
			for i := range entries {
				e := &entries[i]
				if e.Type == journal.EntCheckpoint && e.Version <= snapVer {
					d.accountReplayEntry(o, e, addr, cut)
				}
			}
			if addr == o.jtail {
				break
			}
			addr = prev
		}
	}

	// The walks append newest-first; restore ascending-by-time order.
	for _, id := range ids {
		o := d.objects[id]
		sort.Slice(o.landmarks, func(i, j int) bool {
			if o.landmarks[i].time != o.landmarks[j].time {
				return o.landmarks[i].time < o.landmarks[j].time
			}
			return o.landmarks[i].version < o.landmarks[j].version
		})
	}

	// Segments the corrections emptied return to the allocator, as the
	// recount's sweep would have left them.
	nSeg := d.log.NumSegments()
	for seg := int64(0); seg < nSeg; seg++ {
		if d.log.IsFree(seg) || seg == d.log.CurrentSegment() {
			continue
		}
		if d.usage.reclaimable(seg) {
			if err := d.log.FreeSegment(seg); err != nil {
				return err
			}
		}
	}
	return nil
}

// accountReplayTail walks one object's post-checkpoint chain tail
// (newest-first, stopping at the checkpoint-time head) and accounts the
// new sectors and the blocks their entries turned over. The walk also
// collects the tail entries so the delete/revive settlement can derive
// the object's checkpoint-time state by undoing them from the final
// inode: intermediate delete/revive pairs are net-zero (a deleted
// object admits no other mutation), so only the boundary states matter.
func (d *Drive) accountReplayTail(o *object, ageCut types.Timestamp) error {
	preJhead := d.recPreJhead[o.id]
	snapVer := d.recSnapVer[o.id]
	hitPre := preJhead == journal.NilSector
	var tail []journal.Entry // entries above snapVer, newest-first
	for addr := o.jhead; addr != journal.NilSector; {
		atPre := addr == preJhead
		if !atPre {
			// A sector the checkpoint had not seen: its shared journal
			// block joins the chain-sector index (the head-merge rewrite
			// of the old head sector stays at its old address and is
			// already counted).
			blk := addr.Block()
			d.jblockRef[blk]++
			if d.jblockRef[blk] == 1 && d.recCovered(blk) {
				d.usage.liveBorn(segOf(d.log, blk))
			}
		}
		_, prev, entries, err := journal.ReadSector(d.log, addr)
		if err != nil {
			return err
		}
		d.recReplay += int64(len(entries))
		for i := len(entries) - 1; i >= 0; i-- {
			e := &entries[i]
			if e.Version > snapVer {
				d.accountReplayEntry(o, e, addr, ageCut)
				tail = append(tail, *e)
			} else if e.Type == journal.EntCheckpoint {
				// A pre-checkpoint landmark re-encountered on the walk:
				// post-checkpoint chain relocation moved its sector;
				// repoint the persisted index entry, as the relocation
				// re-registration would have.
				for j := range o.landmarks {
					if o.landmarks[j].version == e.Version && o.landmarks[j].root == e.InodeAddr {
						o.landmarks[j].sector = addr
					}
				}
			}
		}
		if atPre {
			hitPre = true
			break
		}
		if addr == o.jtail {
			break
		}
		addr = prev
	}
	if !hitPre {
		// The walk never reached the old head: a post-checkpoint
		// relocation replaced the whole pre-checkpoint chain with
		// copies (already counted above as new sectors), so the
		// original sectors the preload counted are orphans now.
		for addr := preJhead; addr != journal.NilSector; {
			blk := addr.Block()
			if d.jblockRef[blk] > 0 {
				d.jblockRef[blk]--
				if d.jblockRef[blk] == 0 {
					delete(d.jblockRef, blk)
					d.usage.freeLive(segOf(d.log, blk))
				}
			}
			_, prev, _, err := journal.ReadSector(d.log, addr)
			if err != nil {
				return err
			}
			if addr == o.jtail {
				break
			}
			addr = prev
		}
	}
	// Delete/revive settlement. Undoing the collected tail from the
	// final inode yields the checkpoint-time state the persisted
	// counters describe; only the boundary deleted-ness matters.
	if o.ino == nil {
		if err := d.loadInode(o); err != nil {
			return err
		}
	}
	atC := o.ino
	if len(tail) > 0 {
		atC = o.ino.Clone()
		for i := range tail {
			atC.undo(&tail[i])
		}
	}
	if atC.Deleted {
		// The checkpoint counters hold this object's blocks in history
		// (its delete deprecated them); the tail's revive returned them
		// to live service. An index the tail's delta conversion turned
		// into a packed-slot reference resolves back to the original
		// address through the packed header; one the tail's retention
		// skip freed contributes nothing (the undo poisoned it and its
		// address survives only in the entry's Dropped list, handled
		// below). Blocks born inside the tail were never in the
		// checkpoint counters, so they are excluded either way.
		tailNew := make(map[seglog.BlockAddr]bool)
		for i := range tail {
			for _, nw := range tail[i].New {
				if nw != seglog.NilAddr {
					tailNew[nw] = true
				}
			}
		}
		for _, a := range atC.blocks {
			if isDeltaRef(a) {
				a = d.origOfRef(uint64(a))
			}
			if a != seglog.NilAddr && !tailNew[a] && d.recCovered(a) {
				d.usage.undeprecate(segOf(d.log, a))
			}
		}
		for i := range tail {
			for _, dr := range tail[i].Dropped {
				if dr != seglog.NilAddr && !tailNew[dr] && d.recCovered(dr) {
					d.usage.undeprecate(segOf(d.log, dr))
				}
			}
		}
	}
	if o.ino.Deleted {
		// The tail ends deleted: the final version's blocks leave live
		// service — history while the delete is in-window, dead past it.
		for _, a := range o.ino.blocks {
			if !d.recCovered(a) {
				continue
			}
			if o.ino.DeadTime >= ageCut {
				d.usage.deprecate(segOf(d.log, a))
			} else {
				d.usage.freeLive(segOf(d.log, a))
			}
		}
	}
	return nil
}

// accountReplayEntry applies one replayed entry's usage deltas: block
// turnover splits on the window cut the way the recount sweep splits
// depTime, and in-window checkpoint entries with intact roots join the
// landmark index.
func (d *Drive) accountReplayEntry(o *object, e *journal.Entry, addr journal.SectorAddr, ageCut types.Timestamp) {
	switch e.Type {
	case journal.EntCheckpoint:
		if e.Time < ageCut || e.InodeAddr == seglog.NilAddr {
			return
		}
		for i := range o.landmarks {
			if o.landmarks[i].version == e.Version && o.landmarks[i].root == e.InodeAddr {
				return // already indexed
			}
		}
		if !d.landmarkRootValid(o, e) {
			return
		}
		if d.recCovered(e.InodeAddr) {
			seg := segOf(d.log, e.InodeAddr)
			d.usage.liveBorn(seg)
			d.usage.deprecate(seg) // history from birth, like any landmark root
		}
		o.landmarks = append(o.landmarks, landmark{time: e.Time, version: e.Version, root: e.InodeAddr, sector: addr})
	case journal.EntCreate, journal.EntDelete, journal.EntRevive:
		// Create allocates nothing; delete/revive settle in closed form
		// in accountReplayTail.
	default:
		var donePacked map[seglog.BlockAddr]bool
		for k, old := range e.Old {
			if old == seglog.NilAddr {
				continue
			}
			if e.DeltaMask&(1<<uint(k)) != 0 {
				// Conversion at runtime: the packed block was born into
				// history, and each slot's original full block left live
				// service. Packed blocks are entry-local, so every slot
				// the header names belongs to this entry.
				packed := seglog.BlockAddr(uint64(old) / journal.DeltaSlotsPerBlock)
				if donePacked[packed] {
					continue
				}
				if donePacked == nil {
					donePacked = make(map[seglog.BlockAddr]bool)
				}
				donePacked[packed] = true
				if !d.recCovered(packed) {
					continue
				}
				seg := segOf(d.log, packed)
				if e.Time >= ageCut {
					d.usage.liveBorn(seg)
					d.usage.deprecate(seg)
				}
				if origs := d.packedOrigs(packed); origs != nil {
					for _, og := range origs {
						a := seglog.BlockAddr(og)
						if a != seglog.NilAddr && d.recCovered(a) {
							d.usage.freeLive(segOf(d.log, a))
						}
					}
				}
				continue
			}
			if !d.recCovered(old) {
				continue
			}
			if e.Time >= ageCut {
				d.usage.deprecate(segOf(d.log, old))
			} else {
				d.usage.freeLive(segOf(d.log, old))
			}
		}
		// Retention skips freed their outgoing blocks outright.
		for _, dr := range e.Dropped {
			if dr != seglog.NilAddr && d.recCovered(dr) {
				d.usage.freeLive(segOf(d.log, dr))
			}
		}
		for _, nw := range e.New {
			if nw != seglog.NilAddr && d.recCovered(nw) {
				d.usage.liveBorn(segOf(d.log, nw))
			}
		}
	}
}

// recCovered reports whether a block is listed in its segment's durable
// summary. Usage counters follow the summary view: a crash can leave a
// tail block's payload durable while the summary write covering it was
// cut, and the full recount's sweep — which classifies exactly the
// summary-listed blocks — never counts such a block even though chains
// still reference it. Indexed recovery applies the same rule: chain
// refcounts and landmark entries are recorded unconditionally, but
// liveBorn/deprecate/freeLive deltas fire only for covered blocks.
// Everything durable at the checkpoint is covered (WriteCheckpoint
// follows a full Sync), so only post-checkpoint tail blocks can miss.
func (d *Drive) recCovered(addr seglog.BlockAddr) bool {
	seg := segOf(d.log, addr)
	n, ok := d.recSumCover[seg]
	if !ok {
		sum, found, err := d.log.ReadSummary(seg)
		if err != nil || !found {
			n = 0
		} else {
			n = len(sum.Entries)
		}
		d.recSumCover[seg] = n
	}
	i := int64(addr) - int64(d.log.EntryAt(seg, 0))
	return i >= 0 && i < int64(n)
}

// agingCorrection applies, for one object that is due, the aging the
// cleaner would have performed by now: retained pre-checkpoint entries
// whose times left the window release their Old blocks, and an aged-out
// delete releases the final version's blocks from the history pool.
// settled reports whether pass A already ran the delete/revive
// settlement for this object (which covers the aged-delete case).
func (d *Drive) agingCorrection(o *object, ageCut types.Timestamp, settled bool) error {
	if o.ino == nil {
		if err := d.loadInode(o); err != nil {
			return err
		}
	}
	if !settled && o.ino.Deleted && o.ino.DeadTime != 0 && o.ino.DeadTime < ageCut {
		// Not settled in pass A (a settled deleted object had its blocks
		// classified there): recount would classify the final blocks
		// dead. The reap itself still waits for a live cleaner pass, as
		// it does after a full-scan open.
		for _, a := range o.ino.blocks {
			d.usage.ageOut(segOf(d.log, a))
		}
	}
	snapVer := d.recSnapVer[o.id]
	for addr := o.jhead; addr != journal.NilSector; {
		_, prev, entries, err := journal.ReadSector(d.log, addr)
		if err != nil {
			return err
		}
		d.recReplay += int64(len(entries))
		for i := range entries {
			e := &entries[i]
			// Tail entries were split on the cut in pass A; entries at
			// or below the checkpoint-time floor were aged before the
			// snapshot was taken; checkpoint entries are pass C's.
			if e.Version > snapVer || e.Version <= o.floorVersion || e.Type == journal.EntCheckpoint {
				continue
			}
			if e.Time >= ageCut {
				continue
			}
			var donePacked map[seglog.BlockAddr]bool
			for k, old := range e.Old {
				if old == seglog.NilAddr {
					continue
				}
				if e.DeltaMask&(1<<uint(k)) != 0 {
					// The aged history block is the shared packed delta
					// block; age it out once however many slots point in.
					packed := seglog.BlockAddr(uint64(old) / journal.DeltaSlotsPerBlock)
					if donePacked[packed] {
						continue
					}
					if donePacked == nil {
						donePacked = make(map[seglog.BlockAddr]bool)
					}
					donePacked[packed] = true
					d.usage.ageOut(segOf(d.log, packed))
					continue
				}
				d.usage.ageOut(segOf(d.log, old))
			}
		}
		if addr == o.jtail {
			break
		}
		addr = prev
	}
	return nil
}

// landmarkRootValid mirrors recoverLandmark's tombstone check: the
// recorded address must still hold this object's checkpoint image at
// exactly the entry's version.
func (d *Drive) landmarkRootValid(o *object, e *journal.Entry) bool {
	root := make([]byte, seglog.BlockSize)
	if err := d.log.Read(e.InodeAddr, root); err != nil {
		return false
	}
	in, _, err := decodeInodeRoot(d.log, root)
	return err == nil && in.ID == o.id && in.Version == e.Version
}
