package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
)

// Checkpointing and crash recovery.
//
// Checkpoint: the drive flushes every object's journal, writes full
// inode checkpoints for objects modified since their last checkpoint,
// and then serializes the object map (plus allocator and audit state)
// into the segment log's alternating checkpoint slots.
//
// Recovery: read the newest object-map checkpoint, roll forward over
// segments written after it by redoing journal entries with versions
// beyond each object's checkpointed version, then recount segment
// usage from scratch by classifying every on-disk block against the
// recovered object map — the LFS-style full-scan recovery that trades
// restart time for zero steady-state bookkeeping risk.

const imapMagic = 0x53344D50 // "S4MP"

// checkpointLocked makes the entire drive state durable.
func (d *Drive) checkpointLocked() error {
	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := d.objects[id]
		if len(o.pending) > 0 {
			if err := d.flushJournalLocked(o); err != nil {
				return err
			}
		}
		// Journal-complete objects need no metadata copy: their chain
		// reconstructs them entirely (§4.2.2). Only chain-pruned or
		// previously checkpointed objects are refreshed.
		if o.ino != nil && !o.journalComplete() && (o.cpVersion != o.ino.Version || o.inodeRoot == seglog.NilAddr) {
			if err := d.checkpointObjectLocked(o); err != nil {
				return err
			}
		}
	}
	d.auditMu.Lock()
	auditErr := d.flushAuditLocked()
	d.auditMu.Unlock()
	if auditErr != nil {
		return auditErr
	}
	if err := d.log.Sync(); err != nil {
		return err
	}
	// Everything staged so far is durable, so every issued commit
	// ticket is covered: a Sync racing in right after the exclusive
	// lock drops can coalesce onto this force. No ticket holder can be
	// waiting now (they hold the shared drive lock), so plain stores
	// under commitMu suffice.
	d.commitMu.Lock()
	d.commitDone = d.commitSeq
	d.commitMu.Unlock()
	if err := d.log.WriteCheckpoint(d.encodeImapLocked()); err != nil {
		return err
	}
	// The durable object map no longer references segments the cleaner
	// emptied; they may now rejoin the allocator.
	for seg := range d.pendingFree {
		if err := d.log.FreeSegment(seg); err != nil {
			return err
		}
		delete(d.pendingFree, seg)
	}
	return nil
}

// Checkpoint is the public form, taken periodically by daemons.
func (d *Drive) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return types.ErrDriveStopped
	}
	return d.checkpointLocked()
}

func (d *Drive) encodeImapLocked() []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], imapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1) // format version
	buf = append(buf, hdr[:]...)
	putU(uint64(d.nextOID))
	putU(uint64(d.window))
	putU(d.auditSeq)
	putU(uint64(len(d.auditBlocks)))
	for _, r := range d.auditBlocks {
		putU(uint64(r.addr))
		putU(r.firstSeq)
		putU(uint64(r.lastTime))
	}
	putU(uint64(len(d.objects)))
	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := d.objects[id]
		putU(uint64(o.id))
		putU(o.nextVersion)
		putU(uint64(o.inodeRoot))
		putU(uint64(len(o.cpBlocks)))
		for _, a := range o.cpBlocks {
			putU(uint64(a))
		}
		putU(o.cpVersion)
		putU(uint64(o.jhead))
		putU(uint64(o.jtail))
		putU(o.floorVersion)
		putU(uint64(o.floorTime))
		if o.pruned {
			putU(1)
		} else {
			putU(0)
		}
	}
	return buf
}

func (d *Drive) decodeImap(data []byte) error {
	if len(data) < 8 || binary.LittleEndian.Uint32(data[:4]) != imapMagic {
		return fmt.Errorf("core: bad object-map checkpoint: %w", types.ErrCorrupt)
	}
	data = data[8:]
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("core: object-map varint: %w", types.ErrCorrupt)
		}
		data = data[n:]
		return v, nil
	}
	v, err := getU()
	if err != nil {
		return err
	}
	d.nextOID = types.ObjectID(v)
	if v, err = getU(); err != nil {
		return err
	}
	d.window = time.Duration(v)
	if d.auditSeq, err = getU(); err != nil {
		return err
	}
	nAudit, err := getU()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nAudit; i++ {
		var r auditBlockRef
		if v, err = getU(); err != nil {
			return err
		}
		r.addr = seglog.BlockAddr(v)
		if r.firstSeq, err = getU(); err != nil {
			return err
		}
		if v, err = getU(); err != nil {
			return err
		}
		r.lastTime = types.Timestamp(v)
		d.auditBlocks = append(d.auditBlocks, r)
	}
	nObj, err := getU()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nObj; i++ {
		o := &object{}
		if v, err = getU(); err != nil {
			return err
		}
		o.id = types.ObjectID(v)
		if o.nextVersion, err = getU(); err != nil {
			return err
		}
		if v, err = getU(); err != nil {
			return err
		}
		o.inodeRoot = seglog.BlockAddr(v)
		nCP, err := getU()
		if err != nil {
			return err
		}
		for j := uint64(0); j < nCP; j++ {
			if v, err = getU(); err != nil {
				return err
			}
			o.cpBlocks = append(o.cpBlocks, seglog.BlockAddr(v))
		}
		if o.cpVersion, err = getU(); err != nil {
			return err
		}
		if v, err = getU(); err != nil {
			return err
		}
		o.jhead = journal.SectorAddr(v)
		if v, err = getU(); err != nil {
			return err
		}
		o.jtail = journal.SectorAddr(v)
		if o.floorVersion, err = getU(); err != nil {
			return err
		}
		if v, err = getU(); err != nil {
			return err
		}
		o.floorTime = types.Timestamp(v)
		if v, err = getU(); err != nil {
			return err
		}
		o.pruned = v != 0
		o.lruEl = d.objLRU.PushBack(o)
		d.objects[o.id] = o
	}
	return nil
}

// recover restores drive state after Open: checkpoint load, journal
// roll-forward, and a full usage recount.
func (d *Drive) recover() error {
	blob, cpSeq, ok, err := d.log.ReadCheckpoint()
	if err != nil {
		return err
	}
	if ok {
		if err := d.decodeImap(blob); err != nil {
			return err
		}
	}
	// Roll forward: visit segments written after the checkpoint in
	// sequence order, relinking journal chains and redoing entries.
	err = d.log.ScanFrom(cpSeq, func(seg int64, sum seglog.Summary) error {
		d.log.MarkAllocated(seg)
		d.log.SetSeq(sum.Seq)
		for i, e := range sum.Entries {
			addr := d.log.EntryAt(seg, i)
			switch e.Kind {
			case seglog.KindJournal:
				if err := d.recoverJournalBlock(addr); err != nil {
					return err
				}
			case seglog.KindAudit:
				d.recoverAuditBlock(addr, e.Key, e.Time)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Recount usage from scratch.
	if err := d.recountUsage(); err != nil {
		return err
	}
	// Evict down to the configured object-cache budget.
	return d.evictColdLocked()
}

// recoverJournalBlock relinks every sector of one flushed journal block
// and redoes entries newer than the owning objects' checkpointed
// versions. Slots are processed in order, which preserves chronology.
func (d *Drive) recoverJournalBlock(addr seglog.BlockAddr) error {
	buf := make([]byte, seglog.BlockSize)
	if err := d.log.Read(addr, buf); err != nil {
		return err
	}
	for slot := 0; slot < journal.SectorsPerBlock; slot++ {
		data := buf[slot*journal.SectorSize : (slot+1)*journal.SectorSize]
		id, _, entries, ok, err := journal.DecodeSector(data)
		if err != nil || !ok {
			continue // empty or torn slot: nothing durable to replay
		}
		sa := journal.MakeSectorAddr(addr, slot)
		if err := d.recoverJournalSector(sa, id, entries); err != nil {
			return err
		}
	}
	return nil
}

func (d *Drive) recoverJournalSector(addr journal.SectorAddr, id types.ObjectID, entries []journal.Entry) error {
	o := d.objects[id]
	if o == nil {
		o = &object{id: id, nextVersion: 1}
		o.lruEl = d.objLRU.PushBack(o)
		d.objects[id] = o
		if id >= d.nextOID {
			d.nextOID = id + 1
		}
	}
	// Materialize the inode: from its checkpoint, from the chain the
	// object map already links (journal-complete objects skip
	// checkpoints), or fresh for objects born after the checkpoint.
	if o.ino == nil {
		if o.inodeRoot != seglog.NilAddr || o.jhead != journal.NilSector {
			if err := d.loadInode(o); err != nil {
				return err
			}
		} else {
			if entries[0].Type != journal.EntCreate {
				return fmt.Errorf("core: %v: journal without create or checkpoint: %w", id, types.ErrCorrupt)
			}
			o.ino = newInode(id, entries[0].Time, nil)
			d.loaded.Add(1)
		}
	}
	newest := entries[len(entries)-1].Version
	if newest <= o.cpVersion || newest <= o.ino.Version {
		// A pre-checkpoint (or already-linked) sector re-synced inside
		// a newer segment: its effects are already present.
		return nil
	}
	for i := range entries {
		e := &entries[i]
		if e.Version <= o.cpVersion || e.Version < o.ino.Version {
			continue
		}
		if e.Type == journal.EntCreate {
			// The initial ACL and attributes arrive as the EntSetACL /
			// EntSetAttr entries that immediately follow.
			o.ino.CreateTime = e.Time
			o.ino.ModTime = e.Time
			continue
		}
		o.ino.redo(e)
		if e.Version >= o.nextVersion {
			o.nextVersion = e.Version + 1
		}
	}
	o.jhead = addr
	if o.jtail == journal.NilSector {
		o.jtail = addr
	}
	return nil
}

func (d *Drive) recoverAuditBlock(addr seglog.BlockAddr, firstSeq uint64, lastTime types.Timestamp) {
	for _, r := range d.auditBlocks {
		// Matching firstSeq with a different address means the cleaner
		// relocated the block and the crash beat the checkpoint that
		// would have recorded the move: both copies hold the same
		// records, so keep the first (the checkpointed original, whose
		// segment the deferred-reuse barrier kept intact).
		if r.addr == addr || r.firstSeq == firstSeq {
			return
		}
	}
	d.auditBlocks = append(d.auditBlocks, auditBlockRef{addr: addr, firstSeq: firstSeq, lastTime: lastTime})
	// Recover the sequence counter past anything on disk.
	if firstSeq >= d.auditSeq {
		d.auditSeq = firstSeq + 1000 // conservative gap; seqs need only be increasing
	}
}

// recountUsage rebuilds per-segment live/history counters and the
// chain-sector index by classifying every on-disk block against the
// recovered object map.
func (d *Drive) recountUsage() error {
	d.usage.reset()
	d.jblockRef = make(map[seglog.BlockAddr]int)
	d.jstageAddr, d.jstageUsed = seglog.NilAddr, 0

	live := make(map[seglog.BlockAddr]bool)
	depTime := make(map[seglog.BlockAddr]types.Timestamp)
	ageCut := types.TS(d.clk.Now().Add(-d.window))

	for _, r := range d.auditBlocks {
		live[r.addr] = true
	}
	for _, o := range d.objects {
		if err := d.loadInode(o); err != nil {
			return err
		}
		for _, a := range o.ino.blocks {
			if o.ino.Deleted {
				depTime[a] = o.ino.DeadTime
			} else {
				live[a] = true
			}
		}
		for _, a := range o.cpBlocks {
			live[a] = true
		}
		// Walk the chain: in-chain sectors keep their shared journal
		// blocks live; entry Old pointers carry deprecation times, and
		// checkpoint entries rebuild the landmark index.
		for addr := o.jhead; addr != journal.NilSector; {
			live[addr.Block()] = true
			d.jblockRef[addr.Block()]++
			_, prev, entries, err := journal.ReadSector(d.log, addr)
			if err != nil {
				return err
			}
			for i := range entries {
				e := &entries[i]
				if e.Type == journal.EntCheckpoint {
					d.recoverLandmark(o, e, addr, depTime, ageCut)
					continue
				}
				for _, old := range e.Old {
					if old != seglog.NilAddr {
						depTime[old] = e.Time
					}
				}
			}
			if addr == o.jtail {
				break
			}
			addr = prev
		}
		// The walk visits sectors newest-first (entries within each
		// oldest-first); restore the index's ascending-by-time order.
		sort.Slice(o.landmarks, func(i, j int) bool {
			if o.landmarks[i].time != o.landmarks[j].time {
				return o.landmarks[i].time < o.landmarks[j].time
			}
			return o.landmarks[i].version < o.landmarks[j].version
		})
	}

	nSeg := d.log.NumSegments()
	for seg := int64(0); seg < nSeg; seg++ {
		sum, ok, err := d.log.ReadSummary(seg)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		counted := false
		for i := range sum.Entries {
			addr := d.log.EntryAt(seg, i)
			switch {
			case live[addr]:
				d.usage.liveBorn(seg)
				counted = true
			case depTime[addr] != 0 && depTime[addr] >= ageCut:
				d.usage.liveBorn(seg)
				d.usage.deprecate(seg)
				counted = true
			default:
				// Aged history, superseded checkpoints, or blocks
				// orphaned by a crash: dead.
			}
		}
		if counted {
			d.log.MarkAllocated(seg)
		} else if seg != d.log.CurrentSegment() {
			if err := d.log.FreeSegment(seg); err != nil {
				return err
			}
		}
	}
	return nil
}

// recoverLandmark accounts one chain EntCheckpoint and rebuilds its
// landmark index entry. The root is validated before either: data-block
// relocation frees checkpoint roots but leaves the chain entry behind
// as a tombstone, so a recorded address may now hold reused-segment
// bytes (decode fails or names another object/version — skip) or the
// original root intact (resurrect it; it is self-consistent and ages
// out with its entry like any other).
func (d *Drive) recoverLandmark(o *object, e *journal.Entry, sector journal.SectorAddr, depTime map[seglog.BlockAddr]types.Timestamp, ageCut types.Timestamp) {
	if e.Time < ageCut || e.InodeAddr == seglog.NilAddr {
		return // aged out: the root, if any survives, is dead weight
	}
	root := make([]byte, seglog.BlockSize)
	if err := d.log.Read(e.InodeAddr, root); err != nil {
		return
	}
	in, _, err := decodeInodeRoot(d.log, root)
	if err != nil || in.ID != o.id || in.Version != e.Version {
		return
	}
	depTime[e.InodeAddr] = e.Time
	o.landmarks = append(o.landmarks, landmark{
		time:    e.Time,
		version: e.Version,
		root:    e.InodeAddr,
		sector:  sector,
	})
}
