package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"s4/internal/types"
)

// The tests in this file cover the history read acceleration of
// DESIGN.md §12: the landmark checkpoint index, the reconstruction
// cache, and the vectored device read path, plus the block cache's
// sharing contract those lean on.

// writeVersions stacks n single-block-ish versions on id and returns
// the oracle: for every version, its timestamp and the full content at
// that instant.
type versionSnap struct {
	at   types.Timestamp
	data []byte
}

func writeVersions(e *testEnv, id types.ObjectID, n, size int, seed int64) []versionSnap {
	e.t.Helper()
	rng := rand.New(rand.NewSource(seed))
	content := make([]byte, size)
	// Establish the full size up front so every historical read below
	// sees the same extent (reads past EOF truncate).
	if err := e.d.Write(alice, id, 0, content); err != nil {
		e.t.Fatal(err)
	}
	e.tick()
	snaps := make([]versionSnap, 0, n)
	for i := 0; i < n; i++ {
		wn := 1 + rng.Intn(256)
		off := rng.Intn(size - wn)
		patch := make([]byte, wn)
		rng.Read(patch)
		if err := e.d.Write(alice, id, uint64(off), patch); err != nil {
			e.t.Fatal(err)
		}
		copy(content[off:], patch)
		snaps = append(snaps, versionSnap{at: e.d.Now(), data: append([]byte(nil), content...)})
		e.tick()
	}
	return snaps
}

func verifySnaps(e *testEnv, id types.ObjectID, snaps []versionSnap) {
	e.t.Helper()
	for i, sn := range snaps {
		got := e.read(alice, id, 0, uint64(len(sn.data)), sn.at)
		if !bytes.Equal(got, sn.data) {
			e.t.Fatalf("version %d (at %v): content diverged", i, sn.at)
		}
	}
}

// TestLandmarkWalkMatchesFullWalk is the landmark index's correctness
// oracle: with checkpoints every 4 entries and the reconstruction
// cache disabled, every historical read must reproduce the recorded
// state exactly, while the stats prove the landmark path (not the full
// walk) served the bulk of them.
func TestLandmarkWalkMatchesFullWalk(t *testing.T) {
	e := newTestDrive(t, func(o *Options) {
		o.CheckpointEvery = 4
		o.ReconCacheBytes = -1
	})
	id := e.create(alice)
	const versions = 160
	snaps := writeVersions(e, id, versions, 4*int(types.BlockSize), 11)
	// Flush all pending journal entries so every landmark has a chain
	// position to anchor at.
	if err := e.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	verifySnaps(e, id, snaps)

	st := e.d.GetStats()
	if st.LandmarkHits < versions/2 {
		t.Fatalf("only %d of %d reads anchored at a landmark", st.LandmarkHits, versions)
	}
	// A full walk averages versions/2 undos per read; the landmark walk
	// is bounded by the checkpoint cadence. Leave generous slack for the
	// fallback reads near the live head.
	if st.HistoryWalkEntries > int64(versions)*10 {
		t.Fatalf("%d walk entries over %d reads: landmark acceleration not engaged",
			st.HistoryWalkEntries, versions)
	}
	if err := e.d.CheckLandmarks(true); err != nil {
		t.Fatal(err)
	}
}

// TestLandmarkDisabledStillCorrect is the ablation control: with the
// index disabled the same workload reads back identically (and no
// landmark ever fires).
func TestLandmarkDisabledStillCorrect(t *testing.T) {
	e := newTestDrive(t, func(o *Options) {
		o.CheckpointEvery = -1
		o.ReconCacheBytes = -1
	})
	id := e.create(alice)
	snaps := writeVersions(e, id, 60, 2*int(types.BlockSize), 12)
	verifySnaps(e, id, snaps)
	if st := e.d.GetStats(); st.LandmarkHits != 0 {
		t.Fatalf("landmarks disabled, yet %d hits", st.LandmarkHits)
	}
}

// TestLandmarkIndexSurvivesRecovery proves the rebuild: after a close
// and reopen the index passes the strict completeness check and serves
// the same bytes.
func TestLandmarkIndexSurvivesRecovery(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.CheckpointEvery = 4 })
	id := e.create(alice)
	snaps := writeVersions(e, id, 80, 2*int(types.BlockSize), 13)
	if err := e.d.Close(); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	if err := e.d.CheckLandmarks(true); err != nil {
		t.Fatal(err)
	}
	verifySnaps(e, id, snaps)
	if st := e.d.GetStats(); st.LandmarkHits == 0 {
		t.Fatal("no landmark hits after recovery: index not rebuilt")
	}
}

// TestReconCacheServesRepeats: the second identical historical read
// must come out of the reconstruction cache, byte-identical.
func TestReconCacheServesRepeats(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	snaps := writeVersions(e, id, 40, 2*int(types.BlockSize), 14)
	sn := snaps[10]
	first := e.read(alice, id, 0, uint64(len(sn.data)), sn.at)
	st0 := e.d.GetStats()
	second := e.read(alice, id, 0, uint64(len(sn.data)), sn.at)
	st1 := e.d.GetStats()
	if !bytes.Equal(first, sn.data) || !bytes.Equal(second, sn.data) {
		t.Fatal("historical read diverged from oracle")
	}
	if st1.ReconCacheHits <= st0.ReconCacheHits {
		t.Fatalf("repeat lookup missed the reconstruction cache (hits %d -> %d)",
			st0.ReconCacheHits, st1.ReconCacheHits)
	}
}

// TestReconCacheInvalidatedByFlush: administrative history erasure must
// drop cached reconstructions, or a read inside the erased range would
// resurrect the erased version from memory.
func TestReconCacheInvalidatedByFlush(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("state-A"))
	tA := e.d.Now()
	e.tick()
	e.write(alice, id, 0, []byte("state-B"))
	tB := e.d.Now()
	e.tick()
	e.write(alice, id, 0, []byte("state-C"))
	if got := e.read(admin, id, 0, 7, tB); string(got) != "state-B" {
		t.Fatalf("pre-flush read at tB = %q", got)
	}
	if err := e.d.FlushO(admin, id, tA, tB); err != nil {
		t.Fatal(err)
	}
	// B is erased; tB must resolve to the range-start state, not the
	// cached reconstruction of B.
	if got := e.read(admin, id, 0, 7, tB); string(got) != "state-A" {
		t.Fatalf("post-flush read at tB = %q, want the erased range collapsed to A", got)
	}
}

// TestReconCacheUnit exercises the interval cache directly: lookups
// inside [from, to), overlap rejection, same-start extension, byte
// budget eviction, and the two invalidation forms.
func TestReconCacheUnit(t *testing.T) {
	id := types.ObjectID(7)
	in1, in2, in3 := &Inode{}, &Inode{}, &Inode{}
	c := newReconCache(600) // two empty-inode entries (256B each) fit, three do not

	c.put(id, 10, 20, in1, c.epoch(id))
	if got := c.get(id, 10); got != in1 {
		t.Fatal("lookup at interval start missed")
	}
	if got := c.get(id, 19); got != in1 {
		t.Fatal("lookup inside interval missed")
	}
	if got := c.get(id, 20); got != nil {
		t.Fatal("interval end is exclusive")
	}
	if got := c.get(id, 9); got != nil {
		t.Fatal("lookup before interval hit")
	}

	// Overlapping insert keeps the incumbent.
	c.put(id, 15, 25, in2, c.epoch(id))
	if got := c.get(id, 22); got != nil {
		t.Fatal("overlapping insert was admitted")
	}
	// Same-start insert extends the bound without replacing the inode.
	c.put(id, 10, 30, in2, c.epoch(id))
	if got := c.get(id, 25); got != in1 {
		t.Fatal("same-start insert did not extend the incumbent")
	}

	c.put(id, 30, 40, in2, c.epoch(id))
	if got := c.get(id, 35); got != in2 {
		t.Fatal("disjoint insert missed")
	}
	c.put(id, 40, 50, in3, c.epoch(id)) // over budget: evicts the LRU entry
	if c.lru.Len() != 2 {
		t.Fatalf("cache holds %d entries after eviction, want 2", c.lru.Len())
	}

	c.put(id, 10, 30, in1, c.epoch(id))
	c.dropBelow(id, 30)
	if got := c.get(id, 15); got != nil {
		t.Fatal("dropBelow left an interval wholly below the cut")
	}
	c.dropObject(id)
	if c.lru.Len() != 0 || len(c.byObj) != 0 {
		t.Fatal("dropObject left entries behind")
	}
	hits, misses := c.counters()
	if hits == 0 || misses == 0 {
		t.Fatalf("counters hits=%d misses=%d", hits, misses)
	}
}

// TestBlockCachePoison enforces the trust-boundary half of the block
// cache's sharing contract: bytes handed to a client are a private
// copy, so poisoning them cannot corrupt what other readers see.
func TestBlockCachePoison(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	golden := bytes.Repeat([]byte{0xC3}, 2*int(types.BlockSize))
	e.write(alice, id, 0, golden)

	got := e.read(alice, id, 0, uint64(len(golden)), types.TimeNowest)
	for i := range got {
		got[i] = 0xFF // poison the returned buffer
	}
	again := e.read(alice, id, 0, uint64(len(golden)), types.TimeNowest)
	if !bytes.Equal(again, golden) {
		t.Fatal("poisoning a returned read buffer corrupted the cache")
	}

	// The in-cache half of the contract: repeated gets share one backing
	// array (the cache never copies), which is why callers must treat it
	// as read-only.
	c := newBlockCache(1 << 16)
	blk := bytes.Repeat([]byte{0x5A}, int(types.BlockSize))
	c.put(42, blk)
	g1, g2 := c.get(42), c.get(42)
	if &g1[0] != &g2[0] {
		t.Fatal("cache copied on get; the read path depends on shared buffers")
	}
}

// TestBlockCacheDropRangeSparse covers both dropRange strategies: the
// address walk for small ranges and the map walk when the range dwarfs
// the population.
func TestBlockCacheDropRangeSparse(t *testing.T) {
	c := newBlockCache(1 << 20)
	blk := func() []byte { return make([]byte, 64) }
	c.put(5, blk())
	c.put(6, blk())
	c.put(7, blk())
	c.dropRange(6, 8) // small range: address walk
	if c.get(5) == nil || c.get(6) != nil || c.get(7) != nil {
		t.Fatal("small dropRange removed the wrong entries")
	}
	c.put(100, blk())
	c.put(1<<30, blk())
	c.dropRange(0, 1<<40) // range >> population: map walk
	if len(c.byAddr) != 0 || c.curBytes != 0 {
		t.Fatalf("sparse dropRange left %d entries, %d bytes", len(c.byAddr), c.curBytes)
	}
}

// TestVectoredReadCoalesces: a cold multi-block read of a contiguous
// extent must reach the device as a handful of vectored run reads, not
// one I/O per block.
func TestVectoredReadCoalesces(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	const blocks = 8
	data := make([]byte, blocks*int(types.BlockSize))
	for i := range data {
		data[i] = byte(i)
	}
	e.write(alice, id, 0, data) // one vectored append: contiguous blocks
	if err := e.d.Close(); err != nil {
		t.Fatal(err)
	}
	e.reopen() // cold block cache, empty staging buffers

	st0 := e.d.GetStats()
	got := e.read(alice, id, 0, uint64(len(data)), types.TimeNowest)
	st1 := e.d.GetStats()
	if !bytes.Equal(got, data) {
		t.Fatal("cold read content mismatch")
	}
	dev := st1.DeviceReads - st0.DeviceReads
	if dev == 0 || dev > 2 {
		// One run, or two when the extent straddles a segment seal.
		t.Fatalf("cold %d-block read cost %d device reads, want 1-2", blocks, dev)
	}
	if st1.VecReads == st0.VecReads {
		t.Fatal("no vectored device read issued")
	}
	if st1.ReadOps != st0.ReadOps+1 {
		t.Fatalf("ReadOps %d -> %d, want +1", st0.ReadOps, st1.ReadOps)
	}
}

// TestHistoryReadsRaceCleaner races golden historical reads against a
// writer stacking new versions and the cleaner aging old ones out, with
// landmark checkpoints emitted throughout. Every read must return the
// recorded bytes or a clean ErrNoVersion once its instant ages out —
// never torn data and never an internal error. Run under -race this
// also proves the landmark/recon invalidation never touches state a
// concurrent walker holds.
func TestHistoryReadsRaceCleaner(t *testing.T) {
	e := newTestDrive(t, func(o *Options) {
		o.Window = time.Second
		o.CheckpointEvery = 8
	})
	id := e.create(alice)
	scale := stressScale()
	seedVersions := 500 / scale
	rounds := 600 / scale

	rng := rand.New(rand.NewSource(21))
	size := 2 * int(types.BlockSize)
	content := make([]byte, size)
	if err := e.d.Write(alice, id, 0, content); err != nil {
		t.Fatal(err)
	}
	e.tick()
	snaps := make([]versionSnap, 0, seedVersions)
	for i := 0; i < seedVersions; i++ {
		wn := 1 + rng.Intn(128)
		off := rng.Intn(size - wn)
		patch := make([]byte, wn)
		rng.Read(patch)
		if err := e.d.Write(alice, id, uint64(off), patch); err != nil {
			t.Fatal(err)
		}
		copy(content[off:], patch)
		snaps = append(snaps, versionSnap{at: e.d.Now(), data: append([]byte(nil), content...)})
		e.tick()
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: keeps stacking versions, advancing the clock
		defer wg.Done()
		defer close(stop) // writer finishing (or failing) ends the run
		wrng := rand.New(rand.NewSource(22))
		for r := 0; r < rounds; r++ {
			patch := make([]byte, 64)
			wrng.Read(patch)
			if err := e.d.Write(alice, id, uint64(wrng.Intn(size-64)), patch); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
			e.tick()
		}
	}()

	wg.Add(1)
	go func() { // cleaner: ages history out from under the readers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.d.CleanOnce(); err != nil {
				errs <- fmt.Errorf("cleaner: %w", err)
				return
			}
		}
	}()

	for rd := 0; rd < 3; rd++ {
		rd := rd
		wg.Add(1)
		go func() {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(int64(23 + rd)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := snaps[rrng.Intn(len(snaps))]
				got, err := e.d.Read(alice, id, 0, uint64(len(sn.data)), sn.at)
				if err != nil {
					if errors.Is(err, types.ErrNoVersion) {
						continue // aged out: the only acceptable failure
					}
					errs <- fmt.Errorf("reader %d at %v: %w", rd, sn.at, err)
					return
				}
				if !bytes.Equal(got, sn.data) {
					errs <- fmt.Errorf("reader %d at %v: torn historical read", rd, sn.at)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-churn: a final golden pass and the full invariant suite.
	for _, sn := range snaps {
		got, err := e.d.Read(alice, id, 0, uint64(len(sn.data)), sn.at)
		if err != nil {
			if errors.Is(err, types.ErrNoVersion) {
				continue
			}
			t.Fatal(err)
		}
		if !bytes.Equal(got, sn.data) {
			t.Fatalf("final pass at %v: content diverged", sn.at)
		}
	}
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := e.d.GetStats(); st.LandmarkHits == 0 {
		t.Fatal("no landmark hits during the race")
	}
}
