// Delta-compressed history pool (DESIGN.md §16).
//
// On overwrite, the write path re-encodes the *old* block as a reverse
// delta against the *new* content: live reads keep full blocks, only
// back-in-time walks pay the decode. Encoded slots are packed several
// to a KindDelta log block (internal/delta), and the journal entry's
// Old slot stores a packed-slot reference instead of a block address,
// flagged by the entry's DeltaMask.
//
// References resolve by context, not by address: the reverse delta for
// block i created by entry e decodes against block i's content in the
// era just above e. The newest-first undo walk records exactly that
// mapping (Inode.deltaRef) as it steps past each masked entry, so a
// chain stays decodable no matter how the addresses above it churn —
// chains link by content equality.
//
// Retention policies (types.Policy) ride the same entry rewrite: an
// outgoing version the policy does not retain has its old blocks freed
// outright (SkipMask); the walk poisons those indexes and the affected
// versions read as typed ErrNoVersion, never as manufactured bytes.
package core

import (
	"fmt"
	"time"

	"s4/internal/delta"
	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
)

// The journal's slot-reference packing factor and the packed codec's
// must agree; a mismatch would silently mis-address every slot.
var _ [delta.SlotsPerRef - journal.DeltaSlotsPerBlock]struct{}
var _ [journal.DeltaSlotsPerBlock - delta.SlotsPerRef]struct{}

// deltaRefTag marks a packed-slot reference installed into a walk
// clone's block map. On disk the reference is stored untagged (the
// DeltaMask bit disambiguates); in memory the tag makes any misuse as
// a plain block address fail loudly in the segment log's range check
// instead of silently reading the wrong block.
const deltaRefTag = uint64(1) << 63

// maxDeltaEntryBlocks is the per-entry pointer budget when the policy
// may add masks and a dropped-address list to the wire entry; smaller
// than journal.MaxBlocksPerEntry so the worst-case entWrite2 encoding
// still fits one 486-byte journal sector.
const maxDeltaEntryBlocks = 20

// maxDeltaSlotBytes bounds one encoded slot. Half a block: anything
// larger saves too little over a keyframe to be worth a chain link.
const maxDeltaSlotBytes = types.BlockSize / 2

// maxDeltaDepth caps reference-chain resolution. Chains are bounded by
// the writer's MaxDeltaChain (default 8); the fixed cap stays safe if
// an image written with a longer bound is reopened with a shorter one,
// while still turning a corrupt self-referencing map into ErrCorrupt.
const maxDeltaDepth = 64

// isDeltaRef reports whether a block-map value is a tagged packed-slot
// reference rather than a plain address.
func isDeltaRef(a seglog.BlockAddr) bool { return uint64(a)&deltaRefTag != 0 }

// effectivePolicy returns the retention policy governing id: the
// object's own, else the drive default (key 0). Reserved drive-owned
// objects are always every-version with delta off — the audit trail
// and the tables recovery depends on must never thin. Caller holds the
// drive lock in either mode.
func (d *Drive) effectivePolicy(id types.ObjectID) types.Policy {
	if id < types.FirstUserObject {
		return types.Policy{}
	}
	if p, ok := d.policies[id]; ok {
		return p
	}
	return d.policies[0]
}

// convertOldLocked applies the retention policy and reverse-delta
// conversion to the old blocks one EntWrite is about to push into the
// history pool, rewriting e.Old/DeltaMask/SkipMask/Dropped in place.
// fulls[i] is the full zero-padded content of e.New[i] (the encoding
// context). It returns the history bytes this entry actually grew the
// pool by. Caller holds o.mu exclusively (plus the shared drive lock)
// or the exclusive drive lock.
func (d *Drive) convertOldLocked(o *object, e *journal.Entry, fulls [][]byte, pol types.Policy) int64 {
	deltaOn := pol.DeltaEnabled && d.opts.MaxDeltaChain > 0
	skipOn := pol.Mode != types.ModeEveryVersion
	if !deltaOn && !skipOn {
		var hist int64
		for _, old := range e.Old {
			if old != seglog.NilAddr {
				hist += types.BlockSize
			}
		}
		return hist
	}

	var lastLm uint64
	if len(o.landmarks) > 0 {
		lastLm = o.landmarks[len(o.landmarks)-1].version
	}
	keyframe := func(i int) {
		delete(o.deltaRun, e.FirstBlock+uint64(i))
	}

	type cand struct {
		idx  int // position within e.Old
		addr seglog.BlockAddr
		t    types.Timestamp
		slot delta.Slot
	}
	var (
		hist     int64
		cands    []cand
		chainHit int64
		skipped  bool
		minDropT types.Timestamp
	)
	for i, old := range e.Old {
		if old == seglog.NilAddr {
			continue
		}
		bi, known := o.birth[old]
		// The landmark bound matters independently of retainedVer after a
		// restart: retainedVer is volatile (reset to zero) while recovered
		// landmarks keep their pre-crash versions, and a landmark image
		// must never reference a freed block.
		if skipOn && known && bi.ver > o.retainedVer && bi.ver > lastLm {
			// The outgoing version is not retained: keep the journal
			// record (the audit trail is sacred), free the data. The
			// undo walk sees the skip bit and poisons the index, so the
			// dropped versions read as ErrNoVersion, never as zeros.
			e.Old[i] = seglog.NilAddr
			e.SkipMask |= 1 << uint(i)
			e.Dropped = append(e.Dropped, old)
			d.usage.freeLive(segOf(d.log, old))
			d.cache.drop(old)
			delete(o.birth, old)
			keyframe(i)
			if minDropT == 0 || bi.t < minDropT {
				minDropT = bi.t
			}
			skipped = true
			continue
		}
		if !deltaOn || !known ||
			// A landmark at or above the old block's birth holds its
			// address in a checkpoint image; freeing it would break
			// landmark-anchored reconstruction. Keyframe instead.
			lastLm >= bi.ver {
			keyframe(i)
			hist += types.BlockSize
			continue
		}
		if o.deltaRun[e.FirstBlock+uint64(i)] >= d.opts.MaxDeltaChain {
			// Chain bound: force a full-block keyframe so a deep read
			// decodes at most MaxDeltaChain slots per block.
			keyframe(i)
			chainHit++
			hist += types.BlockSize
			continue
		}
		prev, err := d.readBlock(old)
		if err != nil {
			// Unreadable old block: keep it as a plain (possibly
			// quarantined) history pointer; the scrubber reports it.
			keyframe(i)
			hist += types.BlockSize
			continue
		}
		s, ok := delta.EncodeSlot(fulls[i], prev, maxDeltaSlotBytes)
		if !ok {
			keyframe(i)
			hist += types.BlockSize
			continue
		}
		s.Orig = uint64(old)
		cands = append(cands, cand{idx: i, addr: old, t: bi.t, slot: s})
	}

	// Pack this entry's candidate slots. Conversion only pays if it
	// saves at least one physical block; otherwise every candidate
	// stays a plain full-block history pointer.
	committed := false
	if len(cands) > 1 {
		builders := []*delta.PackedBuilder{delta.NewPackedBuilder(seglog.BlockSize)}
		place := make([]int, len(cands))
		slotIdx := make([]int, len(cands))
		for ci := range cands {
			b := builders[len(builders)-1]
			if !b.Room(len(cands[ci].slot.Payload)) {
				b = delta.NewPackedBuilder(seglog.BlockSize)
				builders = append(builders, b)
			}
			place[ci] = len(builders) - 1
			slotIdx[ci] = b.Add(cands[ci].slot)
		}
		if len(builders) < len(cands) {
			vec := make([]seglog.VecEntry, len(builders))
			for bi, b := range builders {
				vec[bi] = seglog.VecEntry{Key: e.Version, Time: e.Time, Data: b.Finish()}
			}
			addrs, err := d.log.AppendVec(seglog.KindDelta, o.id, vec...)
			if err == nil {
				for bi, a := range addrs {
					// History-born, like landmark roots: the packed block
					// belongs to the pool from birth and pins its segment
					// until the entry around it ages out.
					seg := segOf(d.log, a)
					d.usage.liveBorn(seg)
					d.usage.deprecate(seg)
					full := make([]byte, seglog.BlockSize)
					copy(full, vec[bi].Data)
					d.cache.put(a, full)
				}
				var minT types.Timestamp
				for ci, c := range cands {
					ref := uint64(addrs[place[ci]])*journal.DeltaSlotsPerBlock + uint64(slotIdx[ci])
					e.Old[c.idx] = seglog.BlockAddr(ref)
					e.DeltaMask |= 1 << uint(c.idx)
					d.usage.freeLive(segOf(d.log, c.addr))
					d.cache.drop(c.addr)
					delete(o.birth, c.addr)
					if o.deltaRun == nil {
						o.deltaRun = make(map[uint64]int)
					}
					o.deltaRun[e.FirstBlock+uint64(c.idx)]++
					if minT == 0 || c.t < minT {
						minT = c.t
					}
				}
				// Cached reconstructions from the freed blocks' era hold
				// the freed addresses; invalidate them before the
				// segments they point into can move.
				d.recon.dropSince(o.id, minT)
				hist += int64(len(addrs)) * types.BlockSize
				d.statsMu.Lock()
				d.stats.DeltaBlocksWritten += int64(len(addrs))
				d.stats.DeltaBytesSaved += int64(len(cands)-len(addrs)) * types.BlockSize
				d.statsMu.Unlock()
				committed = true
			}
		}
	}
	if !committed {
		for _, c := range cands {
			keyframe(c.idx)
			hist += types.BlockSize
		}
	}
	if skipped {
		d.recon.dropSince(o.id, minDropT)
		d.statsMu.Lock()
		d.stats.PolicySkippedVersions++
		d.statsMu.Unlock()
	}
	if chainHit > 0 {
		d.statsMu.Lock()
		d.stats.ChainKeyframes += chainHit
		d.statsMu.Unlock()
	}
	return hist
}

// effectiveWindow returns the detection window governing id: the
// policy's override when set, else the drive-wide window. Aging, the
// recovery usage rebuild, and the cleaner all classify against this, so
// a per-object window shortens (or stretches) that object's history
// pool without touching anything else.
func (d *Drive) effectiveWindow(id types.ObjectID) time.Duration {
	if p := d.effectivePolicy(id); p.Window > 0 {
		return p.Window
	}
	return d.window
}

// ageOutOldLocked releases the history blocks one aged (or reaped)
// entry deprecated: plain Old pointers directly, masked slots through
// their shared packed delta block (aged out once, however many slots
// point in). Returns the number of blocks freed.
func (d *Drive) ageOutOldLocked(e *journal.Entry, cs *CleanStats) int {
	n := 0
	var donePacked map[seglog.BlockAddr]bool
	for k, old := range e.Old {
		if old == seglog.NilAddr {
			continue
		}
		addr := old
		if e.DeltaMask&(1<<uint(k)) != 0 {
			addr = seglog.BlockAddr(uint64(old) / journal.DeltaSlotsPerBlock)
			if donePacked[addr] {
				continue
			}
			if donePacked == nil {
				donePacked = make(map[seglog.BlockAddr]bool)
			}
			donePacked[addr] = true
		}
		d.usage.ageOut(segOf(d.log, addr))
		d.cache.drop(addr)
		n++
		if cs != nil {
			cs.BlocksAgedOut++
		}
	}
	return n
}

// packedOrigs reads the packed delta block at addr and returns the
// original (pre-conversion) address of each slot, or nil when the block
// is unreadable or not a packed block — callers treat that as "nothing
// to account", never as an error, because the accounting paths that
// need it have already vetted the block's durability.
func (d *Drive) packedOrigs(addr seglog.BlockAddr) []uint64 {
	blk, err := d.readBlock(addr)
	if err != nil {
		return nil
	}
	origs, err := delta.OrigAddrs(blk)
	if err != nil {
		return nil
	}
	return origs
}

// origOfRef resolves a (possibly tagged) packed-slot reference to the
// original address its slot replaced, or NilAddr if unavailable.
func (d *Drive) origOfRef(ref uint64) seglog.BlockAddr {
	raw := ref &^ deltaRefTag
	origs := d.packedOrigs(seglog.BlockAddr(raw / journal.DeltaSlotsPerBlock))
	slot := int(raw % journal.DeltaSlotsPerBlock)
	if slot >= len(origs) {
		return seglog.NilAddr
	}
	return seglog.BlockAddr(origs[slot])
}

// droppedByBit decodes e's Dropped list (ascending-bit wire order) into
// a slot-index → freed-address map, for rewrites that add or clear skip
// bits. rebuildDropped re-derives the wire list from the same map.
func droppedByBit(e *journal.Entry) map[int]seglog.BlockAddr {
	m := make(map[int]seglog.BlockAddr)
	j := 0
	for k := 0; k < len(e.Old); k++ {
		if e.SkipMask&(1<<uint(k)) != 0 {
			if j < len(e.Dropped) {
				m[k] = e.Dropped[j]
			}
			j++
		}
	}
	return m
}

func rebuildDropped(e *journal.Entry, addrOf map[int]seglog.BlockAddr) {
	e.Dropped = nil
	for k := 0; k < len(e.Old); k++ {
		if e.SkipMask&(1<<uint(k)) != 0 {
			e.Dropped = append(e.Dropped, addrOf[k])
		}
	}
}

// materializeRef resolves a (possibly tagged) block-map value to block
// content. A plain address reads the log; a tagged reference resolves
// its successor context through in.deltaRef, then decodes its packed
// slot against it — one recursion level per chain link. Every failure
// is typed: a broken chain or rotted slot never materializes garbage.
func (d *Drive) materializeRef(in *Inode, ref uint64, depth int) ([]byte, error) {
	if ref&deltaRefTag == 0 {
		return d.readBlock(seglog.BlockAddr(ref))
	}
	if depth >= maxDeltaDepth {
		return nil, fmt.Errorf("core: %v delta chain exceeds depth %d: %w",
			in.ID, maxDeltaDepth, types.ErrCorrupt)
	}
	ctx, ok := in.deltaRef[ref]
	if !ok {
		return nil, fmt.Errorf("core: %v unresolved delta reference %#x: %w",
			in.ID, ref, types.ErrCorrupt)
	}
	newer, err := d.materializeRef(in, ctx, depth+1)
	if err != nil {
		return nil, err
	}
	raw := ref &^ deltaRefTag
	packed := seglog.BlockAddr(raw / journal.DeltaSlotsPerBlock)
	slot := int(raw % journal.DeltaSlotsPerBlock)
	blk, err := d.readBlock(packed)
	if err != nil {
		return nil, err
	}
	out, err := delta.ApplySlot(blk, slot, newer)
	if err != nil {
		return nil, fmt.Errorf("core: %v delta slot %d@%v: %w", in.ID, slot, packed, err)
	}
	if len(out) != seglog.BlockSize {
		return nil, fmt.Errorf("core: %v delta slot %d@%v decoded %d bytes: %w",
			in.ID, slot, packed, len(out), types.ErrCorrupt)
	}
	return out, nil
}

// materializeBlock returns the content of file block idx of a
// reconstructed inode, decoding delta chains as needed. Holes return
// nil. The returned slice must not be modified (it may alias the block
// cache for plain addresses).
func (d *Drive) materializeBlock(in *Inode, idx uint64) ([]byte, error) {
	a := in.Block(idx)
	if a == seglog.NilAddr {
		return nil, nil
	}
	return d.materializeRef(in, uint64(a), 0)
}
