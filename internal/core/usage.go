package core

import (
	"sync/atomic"

	"s4/internal/seglog"
)

// segUsage tracks per-segment block occupancy so the cleaner can pick
// victims and know when a segment is reclaimable.
//
//   - live:  blocks belonging to current state (current data blocks,
//     the newest inode checkpoint, in-chain journal sectors, audit
//     blocks not yet aged).
//   - hist:  blocks that are dead in the current version but inside the
//     detection window (the history pool, §3.3). They become free only
//     by aging; no command can release them.
//
// A segment with live == 0 and hist == 0 is reclaimable.
//
// The counters are atomic so per-object operations running in parallel
// under the shared drive lock can account blocks without coordination;
// the cleaner's read-decide-act sequences run under the exclusive
// drive lock, which keeps its victim choices consistent. histTotal and
// liveTotal shadow the per-segment counters so whole-pool queries — the
// throttle reads the history total on every mutation — are O(1) instead
// of a sweep over every segment.
type segUsage struct {
	live      []atomic.Int32
	hist      []atomic.Int32
	liveTotal atomic.Int64
	histTotal atomic.Int64
}

func newSegUsage(nSeg int64) *segUsage {
	return &segUsage{live: make([]atomic.Int32, nSeg), hist: make([]atomic.Int32, nSeg)}
}

func (u *segUsage) liveBorn(seg int64) {
	if seg >= 0 {
		u.live[seg].Add(1)
		u.liveTotal.Add(1)
	}
}

// deprecate moves one block from live to history (it was overwritten,
// truncated away, or its object was deleted).
func (u *segUsage) deprecate(seg int64) {
	if seg >= 0 {
		u.live[seg].Add(-1)
		u.hist[seg].Add(1)
		u.liveTotal.Add(-1)
		u.histTotal.Add(1)
	}
}

// ageOut releases one history block whose deprecating entry left the
// detection window.
func (u *segUsage) ageOut(seg int64) {
	if seg >= 0 {
		u.hist[seg].Add(-1)
		u.histTotal.Add(-1)
	}
}

// undeprecate is the inverse of deprecate: a block the history pool was
// holding returns to live service. The only source is EntRevive — the
// final version's data blocks were moved to history by the matching
// delete and come back intact (§4.2.2 revive-in-window).
func (u *segUsage) undeprecate(seg int64) {
	if seg >= 0 {
		u.hist[seg].Add(-1)
		u.live[seg].Add(1)
		u.histTotal.Add(-1)
		u.liveTotal.Add(1)
	}
}

// freeLive releases a live block that has no history significance
// (a superseded inode checkpoint: the journal can always rebuild
// metadata, so stale checkpoints are disposable, §4.2.2).
func (u *segUsage) freeLive(seg int64) {
	if seg >= 0 {
		u.live[seg].Add(-1)
		u.liveTotal.Add(-1)
	}
}

// reclaimable reports whether seg holds nothing.
func (u *segUsage) reclaimable(seg int64) bool {
	return u.live[seg].Load() <= 0 && u.hist[seg].Load() <= 0
}

// occupancy returns (live, hist) for seg.
func (u *segUsage) occupancy(seg int64) (int32, int32) {
	return u.live[seg].Load(), u.hist[seg].Load()
}

// historyBlocks returns history-pool occupancy in blocks.
func (u *segUsage) historyBlocks() int64 {
	return u.histTotal.Load()
}

// liveBlocks returns live occupancy in blocks.
func (u *segUsage) liveBlocks() int64 {
	return u.liveTotal.Load()
}

// set installs absolute occupancy counters for seg, adjusting the pool
// totals by the delta. Indexed recovery uses it to preload the usage
// table from the persisted segment index before tail replay; it runs
// single-threaded during Open.
func (u *segUsage) set(seg int64, live, hist int32) {
	if seg < 0 {
		return
	}
	u.liveTotal.Add(int64(live - u.live[seg].Load()))
	u.histTotal.Add(int64(hist - u.hist[seg].Load()))
	u.live[seg].Store(live)
	u.hist[seg].Store(hist)
}

func (u *segUsage) reset() {
	for i := range u.live {
		u.live[i].Store(0)
		u.hist[i].Store(0)
	}
	u.liveTotal.Store(0)
	u.histTotal.Store(0)
}

// segOf is a convenience wrapper used by the drive's accounting paths.
func segOf(log *seglog.Log, addr seglog.BlockAddr) int64 {
	if addr == seglog.NilAddr {
		return -1
	}
	return log.SegOf(addr)
}
