package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"s4/internal/types"
)

// Per-object retention policies (DESIGN.md §16). The table lives in a
// reserved S4 object (types.PolicyTable) and is written through the
// ordinary journaled write path, so it is versioned, checkpointed, and
// rebuilt by both recovery paths like any other object; Open decodes
// the current version into Drive.policies. Key 0 holds the drive-wide
// default; reserved objects below FirstUserObject always retain every
// version (see effectivePolicy in delta.go).

func encodePolicyTable(pols map[types.ObjectID]types.Policy) []byte {
	ids := make([]types.ObjectID, 0, len(pols))
	for id := range pols {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; tables are tiny
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(ids)))
	buf = append(buf, tmp[:n]...)
	for _, id := range ids {
		p := pols[id]
		n = binary.PutUvarint(tmp[:], uint64(id))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(p.Window))
		buf = append(buf, tmp[:n]...)
		flags := byte(0)
		if p.DeltaEnabled {
			flags = 1
		}
		buf = append(buf, byte(p.Mode), flags)
	}
	return buf
}

func decodePolicyTable(data []byte) (map[types.ObjectID]types.Policy, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("core: policy table header: %w", types.ErrCorrupt)
	}
	data = data[n:]
	if count > 1<<20 {
		return nil, fmt.Errorf("core: policy table count %d: %w", count, types.ErrCorrupt)
	}
	out := make(map[types.ObjectID]types.Policy, count)
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("core: policy id %d: %w", i, types.ErrCorrupt)
		}
		data = data[n:]
		w, n := binary.Uvarint(data)
		if n <= 0 || len(data) < n+2 {
			return nil, fmt.Errorf("core: policy entry %d: %w", i, types.ErrCorrupt)
		}
		mode := types.PolicyMode(data[n])
		flags := data[n+1]
		data = data[n+2:]
		if !mode.Valid() {
			return nil, fmt.Errorf("core: policy mode %d: %w", mode, types.ErrCorrupt)
		}
		out[types.ObjectID(id)] = types.Policy{
			Window:       time.Duration(w),
			Mode:         mode,
			DeltaEnabled: flags&1 != 0,
		}
	}
	return out, nil
}

// loadPoliciesLocked decodes the policy table object (if present) into
// d.policies. Called from Open after recovery, under the exclusive
// drive lock.
func (d *Drive) loadPoliciesLocked() error {
	o, ok := d.objects[types.PolicyTable]
	if !ok {
		return nil // pre-upgrade image, or no policy ever set
	}
	if err := d.loadInode(o); err != nil {
		return err
	}
	if o.ino.Size == 0 {
		return nil
	}
	data, err := d.readObjectDataLocked(o.ino)
	if err != nil {
		return err
	}
	pols, err := decodePolicyTable(data)
	if err != nil {
		return err
	}
	d.policies = pols
	return nil
}

// writePolicyTableLocked persists d.policies as the policy object's new
// version, creating the object on first use so pre-policy drive images
// are opened unchanged.
func (d *Drive) writePolicyTableLocked(cred types.Cred) error {
	if _, ok := d.objects[types.PolicyTable]; !ok {
		d.createObjectLocked(types.PolicyTable, types.AdminCred(), []types.ACLEntry{
			{User: types.AdminUser, Perm: types.PermAll},
		}, nil)
	}
	o, err := d.getObject(types.PolicyTable)
	if err != nil {
		return err
	}
	data := encodePolicyTable(d.policies)
	if uint64(len(data)) < o.ino.Size {
		if err := d.truncateBlocksLocked(cred, o, uint64(len(data))); err != nil {
			return err
		}
	}
	return d.writeBlocksLocked(cred, o, 0, data)
}

// SetPolicy installs (or, for the zero policy, removes) the retention
// policy for id; id 0 addresses the drive-wide default. Administrative
// (Table 1 extension): retention decides what history survives inside
// the detection window, which is exactly the power the paper reserves
// for the administrator.
func (d *Drive) SetPolicy(cred types.Cred, id types.ObjectID, p types.Policy) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	switch {
	case d.closed:
		err = types.ErrDriveStopped
	case !cred.Admin:
		err = types.ErrAdminOnly
	case !p.Mode.Valid() || p.Window < 0:
		err = types.ErrInval
	case id != 0 && id < types.FirstUserObject:
		// Reserved drive-owned objects must keep every version.
		err = types.ErrInval
	default:
		prev, had := d.policies[id]
		if p.IsZero() {
			delete(d.policies, id)
		} else {
			d.policies[id] = p
		}
		err = d.writePolicyTableLocked(types.AdminCred())
		if err != nil {
			// Failed to persist: keep memory and disk agreeing.
			if had {
				d.policies[id] = prev
			} else {
				delete(d.policies, id)
			}
		}
	}
	d.auditOp(cred, types.OpSetPolicy, id, uint64(p.Window), uint64(p.Mode), p.String(), err)
	return err
}

// GetPolicy returns the policy in force for id (the object's own entry,
// else the drive default) and whether id has its own entry. id 0 asks
// for the drive default itself.
func (d *Drive) GetPolicy(cred types.Cred, id types.ObjectID) (p types.Policy, own bool, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		err = types.ErrDriveStopped
	} else if id == 0 {
		p, own = d.policies[0]
	} else {
		if p, own = d.policies[id]; !own {
			p = d.effectivePolicy(id)
		}
	}
	d.auditOp(cred, types.OpGetPolicy, id, 0, 0, "", err)
	return p, own, err
}
