package core

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"s4/internal/disk"
	"s4/internal/seglog"
	"s4/internal/types"
	"s4/internal/vclock"
)

// Bit-rot fault model: with rot armed on any single sector, a client
// read must return ErrCorrupt or the correct (repaired) bytes — never
// silent garbage. These tests run the same oracle over both fault
// wrappers, so the mem and file backends prove the identical contract.

// rotDev is the rot surface shared by disk.FaultDisk and disk.Injector.
type rotDev interface {
	disk.Device
	RotSector(sector int64, mask byte)
	ClearFaults()
}

// rotBackends returns the two rot-capable devices: the in-memory
// FaultDisk and an Injector over a real file image.
func rotBackends(t *testing.T) map[string]rotDev {
	t.Helper()
	fd, err := disk.OpenFile(t.TempDir()+"/rot.img", 16<<20)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { fd.Close() })
	return map[string]rotDev{
		"mem":  disk.NewFault(16 << 20),
		"file": disk.NewInjector(fd),
	}
}

func newRotDrive(t *testing.T, dev rotDev) (*Drive, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual()
	d, err := Format(dev, Options{
		Clock:            clk,
		SegBlocks:        16,
		CheckpointBlocks: 64,
		Window:           time.Hour,
		// A one-block cache and no recon cache force every read back to
		// the media, where the rot lives.
		BlockCacheBytes:  types.BlockSize,
		ReconCacheBytes:  -1,
		ObjectCacheCount: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d, clk
}

// TestBitRotNeverReturnsGarbage sweeps persistent rot over every sector
// of the drive's settled segments, one at a time, and checks the oracle
// on both a live read and a history read: the bytes are exactly what
// was written, or the error is ErrCorrupt. It then requires that the
// sweep actually tripped the detector (the test would otherwise be
// vacuous).
func TestBitRotNeverReturnsGarbage(t *testing.T) {
	for name, dev := range rotBackends(t) {
		t.Run(name, func(t *testing.T) {
			d, clk := newRotDrive(t, dev)
			id := d2create(t, d)

			// N single-block versions, each synced so the data and its
			// journal entries settle across several sealed segments.
			const versions = 24
			times := make([]types.Timestamp, versions)
			for i := 0; i < versions; i++ {
				v := bytes.Repeat([]byte{byte(0x30 + i)}, types.BlockSize)
				if err := d.Write(alice, id, 0, v); err != nil {
					t.Fatal(err)
				}
				if err := d.Sync(alice); err != nil {
					t.Fatal(err)
				}
				times[i] = d.Now()
				clk.Advance(time.Second)
			}
			expect := func(i int) []byte {
				return bytes.Repeat([]byte{byte(0x30 + i)}, types.BlockSize)
			}

			// Sweep every sector of every settled segment. Segment 0
			// starts right after the superblock and checkpoint area; its
			// base is the summary block of segment 0, one block below the
			// first payload address.
			const sectorsPerBlock = types.BlockSize / disk.SectorSize
			base := int64(d.log.EntryAt(0, 0)) - 1
			segBlocks := int64(d.log.Config().SegBlocks)
			cur := d.log.CurrentSegment()
			checks := 0
			for seg := int64(0); seg < d.log.NumSegments() && seg < 6; seg++ {
				if seg == cur {
					continue // staged blocks are served from memory
				}
				first := (base + seg*segBlocks) * sectorsPerBlock
				for s := first; s < first+segBlocks*sectorsPerBlock; s++ {
					dev.RotSector(s, 0xFF)
					i := checks % versions
					got, err := d.Read(alice, id, 0, types.BlockSize, types.TimeNowest)
					if err == nil {
						if !bytes.Equal(got, expect(versions-1)) {
							t.Fatalf("sector %d: live read returned garbage", s)
						}
					} else if !errors.Is(err, types.ErrCorrupt) {
						t.Fatalf("sector %d: live read failed with %v, want ErrCorrupt", s, err)
					}
					got, err = d.Read(alice, id, 0, types.BlockSize, times[i])
					if err == nil {
						if !bytes.Equal(got, expect(i)) {
							t.Fatalf("sector %d: history read at v%d returned garbage", s, i)
						}
					} else if !errors.Is(err, types.ErrCorrupt) &&
						!errors.Is(err, types.ErrNoVersion) {
						t.Fatalf("sector %d: history read failed with %v, want ErrCorrupt", s, err)
					}
					dev.ClearFaults()
					checks++
				}
			}
			det, rep, _ := d.log.IntegrityStats()
			if det+rep == 0 {
				t.Fatalf("sweep of %d sectors never tripped the detector: vacuous", checks)
			}
			t.Logf("%s: %d sectors swept, %d detected, %d repaired", name, checks, det, rep)

			// With the rot cleared, everything reads back clean.
			for i := 0; i < versions; i++ {
				got, err := d.Read(alice, id, 0, types.BlockSize, times[i])
				if err != nil || !bytes.Equal(got, expect(i)) {
					t.Fatalf("post-sweep read of v%d damaged: %v", i, err)
				}
			}
		})
	}
}

// TestBitRotQuarantineAndScrub arms rot on a settled data block, lets a
// scrub find it, and checks the containment chain: the sweep reports
// the corruption, the segment is quarantined, the cleaner refuses to
// copy it forward, and the drive keeps serving other objects.
func TestBitRotQuarantineAndScrub(t *testing.T) {
	for name, dev := range rotBackends(t) {
		t.Run(name, func(t *testing.T) {
			d, clk := newRotDrive(t, dev)
			victim := d2create(t, d)
			healthy := d2create(t, d)
			for i := 0; i < 20; i++ {
				if err := d.Write(alice, victim, 0, bytes.Repeat([]byte{0xAA}, types.BlockSize)); err != nil {
					t.Fatal(err)
				}
				if err := d.Write(alice, healthy, 0, bytes.Repeat([]byte{0xBB}, types.BlockSize)); err != nil {
					t.Fatal(err)
				}
				if err := d.Sync(alice); err != nil {
					t.Fatal(err)
				}
				clk.Advance(time.Second)
			}

			// Rot the victim's settled live block (all sectors, so the
			// flush-buffer repair cannot silently heal it and the
			// quarantine path is exercised deterministically).
			d.mu.RLock()
			addr := d.objects[victim].ino.Block(0)
			d.mu.RUnlock()
			// Push the log head past the victim's segment with filler so
			// the block is settled on media, not staged in memory.
			filler := d2create(t, d)
			for i := 0; d.log.InOpenSegment(addr) && i < 64; i++ {
				if err := d.Write(alice, filler, 0, bytes.Repeat([]byte{0xCC}, 2*types.BlockSize)); err != nil {
					t.Fatal(err)
				}
				if err := d.Sync(alice); err != nil {
					t.Fatal(err)
				}
				clk.Advance(time.Second)
			}
			if d.log.InOpenSegment(addr) {
				t.Fatalf("live block still staged; test needs a settled block")
			}
			const sectorsPerBlock = types.BlockSize / disk.SectorSize
			for s := int64(0); s < sectorsPerBlock; s++ {
				dev.RotSector(int64(addr)*sectorsPerBlock+s, 0xFF)
			}

			sr, err := d.Scrub(admin)
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if sr.Blocks == 0 {
				t.Fatal("scrub verified no blocks")
			}
			if sr.Corrupt+sr.Repaired == 0 {
				t.Fatalf("scrub missed the injected rot: %+v", sr)
			}
			seg := d.log.SegOf(addr)
			if sr.Corrupt > 0 && !d.log.IsQuarantined(seg) {
				t.Fatalf("unrepaired corruption did not quarantine segment %d", seg)
			}

			// Admin gate: a plain client cannot command a device sweep.
			if _, err := d.Scrub(alice); !errors.Is(err, types.ErrAdminOnly) {
				t.Fatalf("non-admin scrub: %v, want ErrAdminOnly", err)
			}

			// Cleaner containment: a compaction pass over the damaged
			// drive must not wedge and must not relocate the rotted block.
			if _, err := d.CleanOnce(); err != nil {
				t.Fatalf("cleaner wedged on quarantined segment: %v", err)
			}

			// The drive still serves the healthy object.
			got, err := d.Read(alice, healthy, 0, types.BlockSize, types.TimeNowest)
			if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xBB}, types.BlockSize)) {
				t.Fatalf("healthy object damaged by containment: %v", err)
			}
			// And the victim reports corruption (or healed bytes), never
			// garbage.
			got, err = d.Read(alice, victim, 0, types.BlockSize, types.TimeNowest)
			if err == nil {
				if !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, types.BlockSize)) {
					t.Fatal("victim read returned garbage")
				}
			} else if !errors.Is(err, types.ErrCorrupt) {
				t.Fatalf("victim read: %v, want ErrCorrupt", err)
			}

			stats := d.DriveStats()
			if stats.CorruptDetected+stats.CorruptRepaired == 0 {
				t.Fatal("integrity counters not surfaced through DriveStats")
			}
			if stats.ScrubPasses == 0 || stats.ScrubBlocks == 0 {
				t.Fatalf("scrub counters not surfaced: %+v", sr)
			}
		})
	}
}

// TestScrubDetectsAllRot rots one sector of EVERY settled checksummed
// block on the drive and requires a single scrub pass to account for
// all of them — each either detected (Corrupt) or healed (Repaired).
// 100% detection is the scrubber's contract; anything less means cold
// rot can hide until its redundant copies age out. S4_SCRUB_LONG scales
// the workload up for the nightly full-disk sweep.
func TestScrubDetectsAllRot(t *testing.T) {
	versions := 12
	if os.Getenv("S4_SCRUB_LONG") != "" {
		versions = 150
	}
	for name, dev := range rotBackends(t) {
		t.Run(name, func(t *testing.T) {
			d, clk := newRotDrive(t, dev)
			ids := []types.ObjectID{d2create(t, d), d2create(t, d), d2create(t, d)}
			for i := 0; i < versions; i++ {
				for j, id := range ids {
					pat := byte(0x10*j + i%16)
					if err := d.Write(alice, id, 0, bytes.Repeat([]byte{pat}, 2*types.BlockSize)); err != nil {
						t.Fatal(err)
					}
				}
				if err := d.Sync(alice); err != nil {
					t.Fatal(err)
				}
				clk.Advance(time.Second)
			}

			// Enumerate every settled block the summaries vouch for and rot
			// its first sector.
			const sectorsPerBlock = types.BlockSize / disk.SectorSize
			cur := d.log.CurrentSegment()
			rotted := 0
			for seg := int64(0); seg < d.log.NumSegments(); seg++ {
				if seg == cur || d.log.IsFree(seg) {
					continue
				}
				sum, ok, err := d.log.ReadSummary(seg)
				if err != nil || !ok || !sum.Sums {
					continue
				}
				for i, e := range sum.Entries {
					if e.Sum == 0 {
						continue // pad slot: no on-disk checksum to violate
					}
					addr := d.log.EntryAt(seg, i)
					dev.RotSector(int64(addr)*sectorsPerBlock, 0xFF)
					rotted++
				}
			}
			if rotted == 0 {
				t.Fatal("workload settled no checksummed blocks; sweep is vacuous")
			}

			sr, err := d.Scrub(admin)
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if sr.Corrupt+sr.Repaired < int64(rotted) {
				t.Fatalf("scrub accounted for %d corrupt + %d repaired of %d rotted blocks: %d escaped detection",
					sr.Corrupt, sr.Repaired, rotted, int64(rotted)-sr.Corrupt-sr.Repaired)
			}
			t.Logf("%s: %d blocks rotted, %d detected, %d repaired, %d segments quarantined",
				name, rotted, sr.Corrupt, sr.Repaired, sr.Quarantined)

			// Clear the injected rot: a follow-up scrub over the healed
			// device must find nothing new (repairs rewrote real bytes, and
			// detection without repair left blocks in place).
			dev.ClearFaults()
			sr2, err := d.Scrub(admin)
			if err != nil {
				t.Fatalf("second scrub: %v", err)
			}
			if sr2.Corrupt != 0 || sr2.Repaired != 0 {
				t.Fatalf("scrub of clean device reported corruption: %+v", sr2)
			}
		})
	}
}

// TestScrubberBackground exercises the paced goroutine end to end on a
// clean drive: start, let it complete at least one pass, stop via Close.
func TestScrubberBackground(t *testing.T) {
	dev := disk.NewFault(16 << 20)
	d, _ := newRotDrive(t, dev)
	id := d2create(t, d)
	if err := d.Write(alice, id, 0, bytes.Repeat([]byte{0x42}, 4*types.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	d.StartScrubber(1 << 20) // fast: the test waits for a full pass
	deadline := time.Now().Add(10 * time.Second)
	for d.scrubPasses.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber made no pass in 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.StartScrubber(1 << 20) // idempotent while running
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if det, _, _ := d.log.IntegrityStats(); det != 0 {
		t.Fatalf("clean drive scrub detected %d corruptions", det)
	}
}

// d2create makes an object with a permissive ACL, mirroring testEnv's
// helper for drives not wrapped in a testEnv.
func d2create(t *testing.T, d *Drive) types.ObjectID {
	t.Helper()
	id, err := d.Create(alice, []types.ACLEntry{{User: types.EveryoneID, Perm: types.PermAll}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

var _ = seglog.BlockAddr(0) // keep the import honest if helpers move
