package core

import (
	"errors"
	"fmt"
	"sort"

	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
	"s4/internal/vclock"
)

// This file implements the history-pool side of the drive: time-based
// version reconstruction, version listing, copy-forward restore, and
// the administrative Flush/FlushO history erasure of Table 1.
//
// History reconstruction runs against an object *snapshot* so the
// object lock is released before any disk I/O happens: flushed journal
// sectors and superseded data blocks are immutable (only the cleaner
// and Flush rewrite them, and both hold the drive lock exclusively,
// which a walker's shared hold excludes), so a snapshot of the chain
// head plus a clone of the live inode pins a consistent view no matter
// how many new versions writers stack on top (DESIGN.md §9).

// objSnapshot is a point-in-time view of one object, sufficient to
// reconstruct any retained version without holding the object's lock.
type objSnapshot struct {
	id      types.ObjectID
	ino     *Inode           // private clone of the live inode
	pending []*journal.Entry // private copy of the unflushed tail
	jhead   journal.SectorAddr
	jtail   journal.SectorAddr
	// chainLim is the newest entry version that existed in the flushed
	// chain when the snapshot was taken. Concurrent journal flushes may
	// merge younger entries into the (shared, rewritable) head sector;
	// the walk skips chain entries above chainLim so the snapshot never
	// sees them twice or out of order.
	chainLim  uint64
	floorTime types.Timestamp
	// landmarks is a value copy of the object's landmark index (DESIGN.md
	// §12): flushed checkpoint entries the reconstruction walk may anchor
	// at instead of the live head.
	landmarks []landmark
	// snapNow is the drive clock when the snapshot was taken, read under
	// the object lock. Every entry appended after the snapshot carries a
	// timestamp ≥ snapNow (writers read the clock under the exclusive
	// object lock), so snapNow is a sound exclusive upper bound for the
	// validity interval of a reconstruction that undoes nothing.
	snapNow types.Timestamp
	// epoch fences this snapshot's reconstructions against concurrent
	// invalidation: delta conversion frees history blocks under the
	// shared drive lock, so the recon cache discards puts whose epoch
	// went stale mid-walk (DESIGN.md §16).
	epoch uint64
}

// snapshotObject captures o. Caller holds o.mu (either mode, with the
// inode loaded) or the exclusive drive lock. The pending copy must be a
// fresh array: flushJournalLocked compacts o.pending in place, so a
// shared backing array would mutate under the walker.
func (d *Drive) snapshotObject(o *object) *objSnapshot {
	p := make([]*journal.Entry, len(o.pending))
	copy(p, o.pending)
	s := &objSnapshot{
		id: o.id, ino: o.ino.Clone(), pending: p,
		jhead: o.jhead, jtail: o.jtail,
		floorTime: o.floorTime,
		landmarks: append([]landmark(nil), o.landmarks...),
		snapNow:   vclock.TS(d.clk),
		epoch:     d.recon.epoch(o.id),
	}
	// Every flushed entry's version precedes every pending entry's
	// (flushes drain the oldest prefix), so the newest chain version at
	// snapshot time is just below pending, or the inode's version when
	// nothing is pending.
	if len(p) > 0 {
		s.chainLim = p[0].Version - 1
	} else {
		s.chainLim = o.ino.Version
	}
	return s
}

// walkEntriesSnap visits the snapshot's journal entries newest-first:
// the pending copy, then flushed sectors following the backward chain,
// stopping at the retained tail (sectors older than jtail were freed by
// the cleaner). fn returning true stops the walk. Caller holds the
// shared or exclusive drive lock — that is what keeps the cleaner from
// relocating chain sectors mid-walk; no object lock is needed.
func (d *Drive) walkEntriesSnap(s *objSnapshot, fn func(e *journal.Entry) (bool, error)) error {
	for i := len(s.pending) - 1; i >= 0; i-- {
		stop, err := fn(s.pending[i])
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	for addr := s.jhead; addr != journal.NilSector; {
		obj, prev, entries, err := journal.ReadSector(d.log, addr)
		if err != nil {
			return err
		}
		if obj != s.id {
			return fmt.Errorf("core: journal chain of %v crossed into %v: %w", s.id, obj, types.ErrCorrupt)
		}
		for i := len(entries) - 1; i >= 0; i-- {
			e := &entries[i]
			if e.Version > s.chainLim && e.Type != journal.EntCheckpoint {
				// Merged into the head sector after this snapshot was
				// taken; the pending copy already covered (or post-dates)
				// it.
				continue
			}
			stop, err := fn(e)
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
		if addr == s.jtail {
			break
		}
		addr = prev
	}
	return nil
}

// inodeAtSnap reconstructs the snapshot's inode as of time at by
// undoing entries younger than at, newest-first. The returned inode is
// private to the caller. Caller holds the shared or exclusive drive
// lock; no object lock is needed.
func (d *Drive) inodeAtSnap(s *objSnapshot, at types.Timestamp) (*Inode, error) {
	in, _, _, err := d.inodeAtSnapInterval(s, at)
	return in, err
}

// inodeAtCached is inodeAtSnap behind the reconstruction cache. The
// returned inode may be shared with other readers and must be treated
// as read-only. The floor precheck runs before the cache lookup, so a
// cached state whose interval straddles the (monotonically rising)
// history floor can never serve an at that aging or Flush has since
// made unreconstructible.
func (d *Drive) inodeAtCached(s *objSnapshot, at types.Timestamp) (*Inode, error) {
	if at < s.floorTime {
		return nil, fmt.Errorf("core: time %v predates retained history: %w", at, types.ErrNoVersion)
	}
	if in := d.recon.get(s.id, at); in != nil {
		return in, nil
	}
	in, from, to, err := d.inodeAtSnapInterval(s, at)
	if err != nil {
		return nil, err
	}
	d.recon.put(s.id, from, to, in, s.epoch)
	return in, nil
}

// inodeAtSnapInterval is inodeAtSnap plus the reconstruction's validity
// interval: the result is the object's state for every instant in
// [from, to), which is what makes it memoizable (DESIGN.md §12.2). from
// is the stop entry's time; to is the oldest undone entry's time, or
// snapNow when nothing newer than at existed at snapshot time.
func (d *Drive) inodeAtSnapInterval(s *objSnapshot, at types.Timestamp) (in *Inode, from, to types.Timestamp, err error) {
	if at < s.floorTime {
		return nil, 0, 0, fmt.Errorf("core: time %v predates retained history: %w", at, types.ErrNoVersion)
	}
	// Landmark fast path (DESIGN.md §12.1): anchor at the earliest
	// flushed checkpoint entry strictly after at. Every entry newer than
	// the landmark has Time ≥ the landmark's > at, so the full walk
	// would undo all of them — and the checkpoint root already encodes
	// exactly the state they leave behind. The bound must be strict: an
	// entry sharing the landmark's timestamp but preceding it in the
	// chain could be the true stop entry for at == that timestamp.
	if ln, ok := landmarkAfter(s.landmarks, at); ok {
		in, from, to, err = d.inodeAtLandmark(s, ln, at)
		if err == nil || !errors.Is(err, errLandmarkMiss) {
			if err == nil {
				d.landmarkHits.Add(1)
			}
			return in, from, to, err
		}
		// Miss: anchor decoding raced something unexpected; the full
		// walk below is always correct.
	}
	clone := s.ino
	to = s.snapNow
	from = s.floorTime // walk may run off the retained tail
	walkErr := d.walkEntriesSnap(s, func(e *journal.Entry) (bool, error) {
		d.walkEntries.Add(1)
		if e.Time <= at {
			from = e.Time // stop entry established this state
			return true, nil
		}
		if e.Type == journal.EntCreate {
			// Undoing creation: the object did not exist at `at`.
			return true, types.ErrNoVersion
		}
		clone.undo(e)
		to = e.Time
		return false, nil
	})
	if walkErr != nil {
		return nil, 0, 0, walkErr
	}
	if at < clone.CreateTime {
		return nil, 0, 0, types.ErrNoVersion
	}
	if clone.Poisoned() {
		// Some block's content at this instant was freed by a retention
		// skip (DESIGN.md §16): the whole version is conservatively
		// unreadable — a typed error, never manufactured bytes.
		return nil, 0, 0, fmt.Errorf("core: version at %v not retained by policy: %w", at, types.ErrNoVersion)
	}
	if from < clone.CreateTime {
		// The interval must not extend to instants before the object
		// existed: those must keep answering ErrNoVersion.
		from = clone.CreateTime
	}
	return clone, from, to, nil
}

// errLandmarkMiss reports that a landmark anchor could not serve the
// reconstruction and the caller should fall back to the full walk.
var errLandmarkMiss = errors.New("core: landmark anchor unusable")

// landmarkAfter returns the earliest landmark with time strictly after
// at whose checkpoint entry has already been placed in a flushed sector
// (sector registration is the flush's job; an unflushed landmark has no
// chain position to anchor at).
func landmarkAfter(ls []landmark, at types.Timestamp) (landmark, bool) {
	i := sort.Search(len(ls), func(i int) bool { return ls[i].time > at })
	for ; i < len(ls); i++ {
		if ls[i].sector != journal.NilSector {
			return ls[i], true
		}
	}
	return landmark{}, false
}

// inodeAtLandmark reconstructs the state at `at` starting from a
// checkpoint root instead of the live inode. The walk begins in the
// sector holding the landmark's checkpoint entry, skips the (newer)
// entries stacked above it, and undoes from there exactly as the full
// walk would.
func (d *Drive) inodeAtLandmark(s *objSnapshot, ln landmark, at types.Timestamp) (in *Inode, from, to types.Timestamp, err error) {
	root, err := d.readBlock(ln.root)
	if errors.Is(err, types.ErrCorrupt) {
		// The checkpoint root rotted on media. The landmark is only an
		// accelerator — the full undo walk reconstructs the same state
		// from the live inode, so a miss here degrades to the slow path
		// instead of failing the read.
		return nil, 0, 0, errLandmarkMiss
	}
	if err != nil {
		return nil, 0, 0, err
	}
	clone, _, err := decodeInodeRoot(d.log, root)
	if err != nil || clone.ID != s.id || clone.Version != ln.version {
		return nil, 0, 0, errLandmarkMiss
	}
	to = ln.time
	from = s.floorTime
	seen := false // the landmark's own entry has been passed
	stopped := false
	for addr := ln.sector; addr != journal.NilSector; {
		obj, prev, entries, err := journal.ReadSector(d.log, addr)
		if err != nil {
			return nil, 0, 0, err
		}
		if obj != s.id {
			return nil, 0, 0, fmt.Errorf("core: journal chain of %v crossed into %v: %w", s.id, obj, types.ErrCorrupt)
		}
		for i := len(entries) - 1; i >= 0; i-- {
			e := &entries[i]
			if !seen {
				if e.Type == journal.EntCheckpoint && e.Version == ln.version &&
					e.Time == ln.time && e.InodeAddr == ln.root {
					seen = true
				}
				continue
			}
			d.walkEntries.Add(1)
			if e.Time <= at {
				from, stopped = e.Time, true
				break
			}
			if e.Type == journal.EntCreate {
				return nil, 0, 0, types.ErrNoVersion
			}
			clone.undo(e)
			to = e.Time
		}
		if !seen {
			// The landmark entry was not where the index said; stale copy.
			return nil, 0, 0, errLandmarkMiss
		}
		if stopped || addr == s.jtail {
			break
		}
		addr = prev
	}
	if at < clone.CreateTime {
		return nil, 0, 0, types.ErrNoVersion
	}
	if clone.Poisoned() {
		return nil, 0, 0, fmt.Errorf("core: version at %v not retained by policy: %w", at, types.ErrNoVersion)
	}
	if from < clone.CreateTime {
		from = clone.CreateTime
	}
	return clone, from, to, nil
}

// inodeAtLocked returns the object's inode as of time at. current
// reports whether that is the live version (at sees the newest state).
// The returned inode is the live one when current; callers must not
// mutate it. Caller holds o.mu exclusively (plus the shared drive
// lock) or the exclusive drive lock.
func (d *Drive) inodeAtLocked(o *object, at types.Timestamp) (in *Inode, current bool, err error) {
	if err := d.loadInode(o); err != nil {
		return nil, false, err
	}
	if at >= o.ino.ModTime {
		return o.ino, true, nil
	}
	in, err = d.inodeAtCached(d.snapshotObject(o), at)
	return in, false, err
}

// VersionInfo describes one version transition of an object.
type VersionInfo struct {
	Version uint64
	Time    types.Timestamp
	Op      string // journal entry type name
	User    types.UserID
	Client  types.ClientID
	Size    uint64 // object size after the transition (writes/truncates)
}

// ListVersions returns the object's retained version history, newest
// first. Like any history access it requires the Recovery flag (or
// administrative credentials).
func (d *Drive) ListVersions(cred types.Cred, id types.ObjectID) ([]VersionInfo, error) {
	d.mu.RLock()
	vs, err := d.listVersionsShared(cred, id)
	d.auditOp(cred, types.OpListVersions, id, 0, 0, "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return vs, err
}

// listVersionsShared implements ListVersions. Caller holds the shared
// drive lock.
func (d *Drive) listVersionsShared(cred types.Cred, id types.ObjectID) ([]VersionInfo, error) {
	if d.closed {
		return nil, types.ErrDriveStopped
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return nil, err
	}
	if err := d.lockObjectRead(o); err != nil {
		return nil, err
	}
	if err := d.checkPerm(cred, o.ino, types.PermRead|types.PermRecover); err != nil {
		o.mu.RUnlock()
		return nil, err
	}
	snap := d.snapshotObject(o)
	o.mu.RUnlock()
	var out []VersionInfo
	size := snap.ino.Size
	err = d.walkEntriesSnap(snap, func(e *journal.Entry) (bool, error) {
		if e.Type == journal.EntCheckpoint {
			return false, nil
		}
		out = append(out, VersionInfo{
			Version: e.Version, Time: e.Time, Op: e.Type.String(),
			User: e.User, Client: e.Client, Size: size,
		})
		// Walking backward: the size before this entry is its OldSize.
		switch e.Type {
		case journal.EntWrite, journal.EntTruncate, journal.EntDelete:
			size = e.OldSize
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Revert restores the object to its state at time at by copying the old
// version forward as a new version (§3.3). Data blocks are physically
// copied so block liveness never spans versions. It mutates only the
// one object, so it runs under the shared drive lock with the object
// locked exclusively.
func (d *Drive) Revert(cred types.Cred, id types.ObjectID, at types.Timestamp) error {
	d.mu.RLock()
	err := d.revertShared(cred, id, at)
	d.auditOp(cred, types.OpRevert, id, uint64(at), 0, "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return err
}

// revertShared implements Revert. Caller holds the shared drive lock.
func (d *Drive) revertShared(cred types.Cred, id types.ObjectID, at types.Timestamp) error {
	if d.closed {
		return types.ErrDriveStopped
	}
	if err := checkReserved(cred, id); err != nil {
		return err
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return err
	}
	if err := d.lockObjectWrite(o); err != nil {
		return err
	}
	defer o.mu.Unlock()
	old, current, err := d.inodeAtLocked(o, at)
	if err != nil {
		return err
	}
	if current {
		return nil // already there
	}
	// Restoring history requires both recovery rights on the old
	// version and write rights on the current object.
	if err := d.checkPerm(cred, old, types.PermRead|types.PermRecover); err != nil {
		return err
	}
	if err := d.checkPerm(cred, o.ino, types.PermWrite); err != nil {
		return err
	}
	if old.Deleted {
		return fmt.Errorf("core: target version is deleted: %w", types.ErrNoVersion)
	}
	if err := d.throttle(cred); err != nil {
		return err
	}
	now := vclock.TS(d.clk)

	// Revive if currently deleted.
	if o.ino.Deleted {
		d.appendEntry(o, &journal.Entry{
			Type: journal.EntRevive, Version: o.nextVersion, Time: now,
			User: cred.User, Client: cred.Client, OldSize: uint64(o.ino.DeadTime),
		})
		o.nextVersion++
	}
	// Shape first: set the size (frees blocks beyond the target size).
	if o.ino.Size != old.Size {
		if err := d.truncateBlocksLocked(cred, o, old.Size); err != nil {
			return err
		}
	}
	// Copy forward every block whose content differs from current.
	if old.Size > 0 {
		last := (old.Size - 1) / types.BlockSize
		var chunk []byte
		var chunkStart uint64
		flush := func() error {
			if len(chunk) == 0 {
				return nil
			}
			err := d.writeBlocksLocked(cred, o, chunkStart*types.BlockSize, chunk)
			chunk = nil
			return err
		}
		// Old-version blocks are fetched a window at a time through the
		// vectored read path, so adjacent log blocks coalesce into single
		// device reads; the window bounds resident copy-forward memory.
		const fetchWindow = 256
		var blocks map[seglog.BlockAddr][]byte
		var winEnd uint64
		for blk := uint64(0); blk <= last; blk++ {
			if blk >= winEnd {
				winEnd = blk + fetchWindow
				if winEnd > last+1 {
					winEnd = last + 1
				}
				var fetch []seglog.BlockAddr
				for b := blk; b < winEnd; b++ {
					// Delta references are excluded from the vectored fetch:
					// they are not addresses, and each resolves through its
					// own chain below.
					if a := old.Block(b); a != seglog.NilAddr && !isDeltaRef(a) && a != o.ino.Block(b) {
						fetch = append(fetch, a)
					}
				}
				var err error
				if blocks, err = d.readBlocksVec(fetch); err != nil {
					return err
				}
			}
			oldAddr := old.Block(blk)
			if oldAddr == o.ino.Block(blk) {
				// Same physical block: content already current. (A delta
				// reference never equals a live address: bit 63 is set.)
				if err := flush(); err != nil {
					return err
				}
				continue
			}
			var content []byte
			switch {
			case oldAddr == seglog.NilAddr:
				content = make([]byte, types.BlockSize)
			case isDeltaRef(oldAddr):
				var err error
				if content, err = d.materializeRef(old, uint64(oldAddr), 0); err != nil {
					return err
				}
			default:
				content = blocks[oldAddr]
			}
			n := uint64(types.BlockSize)
			if blk == last {
				n = old.Size - blk*types.BlockSize
			}
			if len(chunk) == 0 {
				chunkStart = blk
			}
			chunk = append(chunk, content[:n]...)
			if len(chunk) >= types.MaxIO-types.BlockSize {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
	}
	// Attributes and ACL.
	if string(o.ino.Attr) != string(old.Attr) {
		d.appendEntry(o, &journal.Entry{
			Type: journal.EntSetAttr, Version: o.nextVersion, Time: now,
			User: cred.User, Client: cred.Client,
			OldAttr: append([]byte(nil), o.ino.Attr...),
			NewAttr: append([]byte(nil), old.Attr...),
		})
		o.nextVersion++
	}
	maxACL := len(o.ino.ACL)
	if len(old.ACL) > maxACL {
		maxACL = len(old.ACL)
	}
	for i := 0; i < maxACL; i++ {
		var cur, want types.ACLEntry
		if i < len(o.ino.ACL) {
			cur = o.ino.ACL[i]
		}
		if i < len(old.ACL) {
			want = old.ACL[i]
		}
		if cur != want {
			d.appendEntry(o, &journal.Entry{
				Type: journal.EntSetACL, Version: o.nextVersion, Time: now,
				User: cred.User, Client: cred.Client,
				ACLIndex: uint8(i), OldACL: cur, NewACL: want,
			})
			o.nextVersion++
		}
	}
	return nil
}

// Flush removes all versions of all objects between two times
// (administrative; Table 1). The current state of every object is
// preserved; only intermediate history in (from, to] is erased. It
// rewrites journal chains, so it is a whole-drive operation.
func (d *Drive) Flush(cred types.Cred, from, to types.Timestamp) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	if !cred.Admin {
		err = types.ErrAdminOnly
	} else if d.closed {
		err = types.ErrDriveStopped
	} else {
		ids := make([]types.ObjectID, 0, len(d.objects))
		for id := range d.objects {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if id == types.AuditObject {
				continue
			}
			if ferr := d.flushObjectLocked(d.objects[id], from, to); ferr != nil {
				err = ferr
				break
			}
		}
	}
	d.auditOp(cred, types.OpFlush, 0, uint64(from), uint64(to), "", err)
	return err
}

// FlushO removes versions of one object between two times
// (administrative; Table 1).
func (d *Drive) FlushO(cred types.Cred, id types.ObjectID, from, to types.Timestamp) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	if !cred.Admin {
		err = types.ErrAdminOnly
	} else if d.closed {
		err = types.ErrDriveStopped
	} else if o, ok := d.objects[id]; !ok {
		err = types.ErrNoObject
	} else {
		err = d.flushObjectLocked(o, from, to)
	}
	d.auditOp(cred, types.OpFlushO, id, uint64(from), uint64(to), "", err)
	return err
}

// flushObjectLocked erases o's versions with Time in (from, to]. It
// rebuilds the retained entries' undo state by replaying from the
// oldest reconstructible version, reconciles the final state with the
// live inode via a synthesized merge entry, rewrites the journal chain,
// and frees data blocks referenced only by the erased versions. Caller
// holds the exclusive drive lock.
func (d *Drive) flushObjectLocked(o *object, from, to types.Timestamp) error {
	if err := d.loadInode(o); err != nil {
		return err
	}
	// Collect all retained entries, oldest first.
	var all []*journal.Entry
	if err := d.walkEntriesSnap(d.snapshotObject(o), func(e *journal.Entry) (bool, error) {
		cp := *e
		all = append(all, &cp)
		return false, nil
	}); err != nil {
		return err
	}
	for i, j := 0, len(all)-1; i < j; i, j = i+1, j-1 {
		all[i], all[j] = all[j], all[i]
	}
	// Strip checkpoint markers (rebuilt checkpoints supersede them) and
	// locate the dropped range. EntCreate is never erased: existence of
	// the object is not a version.
	filtered := all[:0]
	for _, e := range all {
		if e.Type != journal.EntCheckpoint {
			filtered = append(filtered, e)
		}
	}
	all = filtered
	isDropped := func(e *journal.Entry) bool {
		return e.Type != journal.EntCreate && e.Time > from && e.Time <= to
	}
	lastDrop := -1
	nDropped := 0
	for i, e := range all {
		if isDropped(e) {
			lastDrop = i
			nDropped++
		}
	}
	if nDropped == 0 {
		return nil
	}

	// Demote every delta reference in the chain to a plain full block
	// before any undo-field rewriting (DESIGN.md §16). A reverse delta
	// decodes against the exact content the original chain had just
	// above its entry; the kept-entry rewrite below re-points Old slots
	// at shadow-replay state, which would silently change that context.
	// So while the original chain is still intact, walk it newest-first
	// (the undo records each reference's context), materialize every
	// masked slot to a fresh full history block, and retire the packed
	// delta blocks. A reference whose context was already lost to a
	// newer retention skip becomes a skip of its own.
	probe := o.ino.Clone()
	var packedGone []seglog.BlockAddr
	packedSeen := make(map[seglog.BlockAddr]bool)
	var demoted []seglog.BlockAddr
	for i := len(all) - 1; i >= 0; i-- {
		e := all[i]
		if e.Type != journal.EntCreate {
			probe.undo(e)
		}
		if e.Type != journal.EntWrite || e.DeltaMask == 0 {
			continue
		}
		drops := droppedByBit(e)
		for k := range e.Old {
			if e.DeltaMask&(1<<uint(k)) == 0 {
				continue
			}
			idx := e.FirstBlock + uint64(k)
			raw := uint64(e.Old[k])
			packed := seglog.BlockAddr(raw / journal.DeltaSlotsPerBlock)
			if !packedSeen[packed] {
				packedSeen[packed] = true
				packedGone = append(packedGone, packed)
			}
			e.DeltaMask &^= 1 << uint(k)
			if probe.isPoisoned(idx) {
				e.Old[k] = seglog.NilAddr
				e.SkipMask |= 1 << uint(k)
				drops[k] = seglog.NilAddr
				continue
			}
			content, err := d.materializeBlock(probe, idx)
			if err != nil {
				return err
			}
			addr, err := d.log.Append(seglog.KindData, o.id, idx, e.Time, content)
			if err != nil {
				return err
			}
			seg := segOf(d.log, addr)
			d.usage.liveBorn(seg)
			d.usage.deprecate(seg)
			d.cache.put(addr, content)
			e.Old[k] = addr
			// Re-point the probe too, so deeper references in the same
			// chain resolve their context through the fresh block.
			ref := raw | deltaRefTag
			probe.blocks[idx] = addr
			delete(probe.deltaRef, ref)
			demoted = append(demoted, addr)
		}
		rebuildDropped(e, drops)
	}
	for _, a := range packedGone {
		d.usage.ageOut(segOf(d.log, a))
		d.cache.drop(a)
	}
	o.deltaRun = nil

	// Two parallel replays from the oldest reconstructible state:
	// trueState applies every entry (real history); shadow applies only
	// kept entries, whose undo fields are rewritten against it. At the
	// end of the dropped range, merge entries reconcile shadow with
	// trueState so later reads see the post-range reality.
	base := o.ino.Clone()
	for i := len(all) - 1; i >= 0; i-- {
		if all[i].Type != journal.EntCreate {
			base.undo(all[i])
		}
	}
	shadow := base.Clone()
	trueState := base
	// The merge entries that reconcile shadow with post-range reality
	// are stamped at the next kept entry's time (or the erase moment if
	// none follows), so reads anywhere inside the erased range resolve
	// to the state at the range start and never leak erased content.
	mergeTime := vclock.TS(d.clk)
	for i := lastDrop + 1; i < len(all); i++ {
		if !isDropped(all[i]) {
			mergeTime = all[i].Time
			break
		}
	}
	var kept []*journal.Entry
	var droppedNew []seglog.BlockAddr
	for i, e := range all {
		if isDropped(e) {
			droppedNew = append(droppedNew, e.New...)
			trueState.redo(e)
			if i == lastDrop {
				merges := d.mergeEntries(shadow, trueState, e.Version, mergeTime)
				kept = append(kept, merges...)
				for _, m := range merges {
					shadow.redo(m)
				}
			}
			continue
		}
		// Kept entry: rewrite its undo fields against shadow. Slots where
		// the shadow replay is poisoned (a retention skip below survives
		// the rewrite) keep — or gain — a skip bit, so walks below this
		// entry still poison instead of reading a manufactured hole;
		// slots where the replay reconstructed known content shed their
		// skip bit and point at it.
		switch e.Type {
		case journal.EntWrite:
			drops := droppedByBit(e)
			for k := range e.Old {
				idx := e.FirstBlock + uint64(k)
				bit := uint32(1) << uint(k)
				if shadow.isPoisoned(idx) {
					e.Old[k] = seglog.NilAddr
					if e.SkipMask&bit == 0 {
						e.SkipMask |= bit
						drops[k] = seglog.NilAddr
					}
					continue
				}
				e.SkipMask &^= bit
				delete(drops, k)
				e.Old[k] = shadow.Block(idx)
			}
			rebuildDropped(e, drops)
			e.OldSize = shadow.Size
		case journal.EntTruncate:
			// Truncate entries carry no skip bits on the wire; a poisoned
			// shadow slot here (retention skip + truncate + Flush overlap)
			// degrades to a hole — documented corner, DESIGN.md §16.
			e.OldSize = shadow.Size
			for k := range e.Old {
				e.Old[k] = shadow.Block(e.FirstBlock + uint64(k))
			}
		case journal.EntSetAttr:
			e.OldAttr = append([]byte(nil), shadow.Attr...)
		case journal.EntSetACL:
			var old types.ACLEntry
			if int(e.ACLIndex) < len(shadow.ACL) {
				old = shadow.ACL[e.ACLIndex]
			}
			e.OldACL = old
		case journal.EntDelete:
			e.OldSize = shadow.Size
		case journal.EntRevive:
			e.OldSize = uint64(shadow.DeadTime)
		}
		shadow.redo(e)
		trueState.redo(e)
		kept = append(kept, e)
	}

	// Free data blocks referenced only by erased versions.
	protected := make(map[seglog.BlockAddr]bool)
	for _, a := range o.ino.blocks {
		protected[a] = true
	}
	for _, e := range kept {
		for _, a := range e.Old {
			protected[a] = true
		}
		for _, a := range e.New {
			protected[a] = true
		}
	}
	for _, a := range droppedNew {
		if a != seglog.NilAddr && !protected[a] {
			d.usage.ageOut(segOf(d.log, a))
			d.cache.drop(a)
			protected[a] = true // guard against double free
		}
	}
	// Fresh keyframes materialized for entries that then dropped have no
	// owning New pointer anywhere; free the unreferenced ones the same
	// way.
	for _, a := range demoted {
		if !protected[a] {
			d.usage.ageOut(segOf(d.log, a))
			d.cache.drop(a)
			protected[a] = true
		}
	}
	// The chain is rewritten without its checkpoint markers, so the
	// landmark index empties with it (roots freed), and every cached
	// reconstruction of this object is now a lie.
	d.dropAllLandmarks(o)
	d.recon.dropObject(o.id)
	o.sinceLandmark = 0
	// Rewrite the journal chain with the kept entries.
	return d.rewriteChainLocked(o, kept)
}

// mergeEntries synthesizes the entries that carry `from` to `to`,
// stamped with the given version and time. They stand in for an erased
// version range so that reads after the range still see reality.
func (d *Drive) mergeEntries(from, to *Inode, ver uint64, ts types.Timestamp) []*journal.Entry {
	var synth []*journal.Entry
	if from.Size != to.Size || !mapsEqual(from, to) {
		idxs := divergentBlocks(from, to)
		i := 0
		for i < len(idxs) {
			n := len(idxs) - i
			// Bound the covered span, not just the divergent count, so
			// the entry's pointer arrays stay within budget — the delta
			// budget, since a poisoned source slot adds a skip bit and a
			// dropped-address word to the wire encoding.
			for n > 1 && idxs[i+n-1]-idxs[i]+1 > maxDeltaEntryBlocks {
				n--
			}
			span := idxs[i+n-1] - idxs[i] + 1
			e := &journal.Entry{
				Type: journal.EntWrite, Version: ver, Time: ts,
				FirstBlock: idxs[i],
				Old:        make([]seglog.BlockAddr, span),
				New:        make([]seglog.BlockAddr, span),
				OldSize:    from.Size, NewSize: to.Size,
			}
			for rel := uint64(0); rel < span; rel++ {
				blk := idxs[i] + rel
				e.New[rel] = to.Block(blk)
				if from.isPoisoned(blk) {
					// The pre-merge content at this slot is unknown (lost
					// to a retention skip); carry the poison through the
					// synthesized entry instead of minting a hole.
					e.SkipMask |= 1 << uint(rel)
					e.Dropped = append(e.Dropped, seglog.NilAddr)
					continue
				}
				e.Old[rel] = from.Block(blk)
			}
			synth = append(synth, e)
			i += n
		}
		if len(synth) == 0 {
			synth = append(synth, &journal.Entry{
				Type: journal.EntTruncate, Version: ver, Time: ts,
				OldSize: from.Size, NewSize: to.Size,
			})
		}
	}
	if string(from.Attr) != string(to.Attr) {
		synth = append(synth, &journal.Entry{
			Type: journal.EntSetAttr, Version: ver, Time: ts,
			OldAttr: append([]byte(nil), from.Attr...),
			NewAttr: append([]byte(nil), to.Attr...),
		})
	}
	if from.Deleted != to.Deleted {
		if to.Deleted {
			synth = append(synth, &journal.Entry{
				Type: journal.EntDelete, Version: ver, Time: ts, OldSize: from.Size,
			})
		} else {
			synth = append(synth, &journal.Entry{
				Type: journal.EntRevive, Version: ver, Time: ts, OldSize: uint64(from.DeadTime),
			})
		}
	}
	maxACL := len(from.ACL)
	if len(to.ACL) > maxACL {
		maxACL = len(to.ACL)
	}
	for i := 0; i < maxACL; i++ {
		var s, l types.ACLEntry
		if i < len(from.ACL) {
			s = from.ACL[i]
		}
		if i < len(to.ACL) {
			l = to.ACL[i]
		}
		if s != l {
			synth = append(synth, &journal.Entry{
				Type: journal.EntSetACL, Version: ver, Time: ts,
				ACLIndex: uint8(i), OldACL: s, NewACL: l,
			})
		}
	}
	return synth
}

// rewriteChainLocked replaces o's journal chain with entries (oldest
// first), freeing the old sectors, and checkpoints the object so crash
// recovery never replays the retired chain. Caller holds the exclusive
// drive lock.
func (d *Drive) rewriteChainLocked(o *object, entries []*journal.Entry) error {
	// Free old sectors.
	for addr := o.jhead; addr != journal.NilSector; {
		_, prev, _, err := journal.ReadSector(d.log, addr)
		if err != nil {
			return err
		}
		d.unrefJSector(addr)
		if addr == o.jtail {
			break
		}
		addr = prev
	}
	o.jhead, o.jtail = journal.NilSector, journal.NilSector
	o.jheadEntries = nil
	// The rebuilt chain is complete only if it reaches creation.
	o.pruned = len(entries) == 0 || entries[0].Type != journal.EntCreate
	o.pending = entries
	if err := d.flushJournalLocked(o); err != nil {
		return err
	}
	// Force a fresh checkpoint so recovery anchors past the rewrite.
	o.cpVersion = 0
	if err := d.checkpointObjectLocked(o); err != nil {
		return err
	}
	return d.log.Sync()
}

func mapsEqual(a, b *Inode) bool {
	if len(a.blocks) != len(b.blocks) {
		return false
	}
	for k, v := range a.blocks {
		if b.blocks[k] != v {
			return false
		}
	}
	return true
}

// divergentBlocks returns sorted block indices where a and b differ.
func divergentBlocks(a, b *Inode) []uint64 {
	set := make(map[uint64]bool)
	for k, v := range a.blocks {
		if b.blocks[k] != v {
			set[k] = true
		}
	}
	for k, v := range b.blocks {
		if a.blocks[k] != v {
			set[k] = true
		}
	}
	out := make([]uint64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HistoryBytes reports current history-pool occupancy in bytes. The
// usage counters are atomic, so no lock is needed.
func (d *Drive) HistoryBytes() int64 {
	return d.usage.historyBlocks() * types.BlockSize
}
