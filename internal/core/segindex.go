package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
)

// Persistent segment index (DESIGN.md §14).
//
// Full-scan recovery recounts every segment's occupancy and re-walks
// every journal chain on each Open — robust, but open time grows with
// history depth. The segment index is the checkpoint-time snapshot of
// exactly the state that recount rebuilds: per-segment live/history
// counters and free bits, the shared-journal-block refcounts, and each
// object's landmark index. It rides in the same checkpoint slot write
// as the object map (one atomic blob, seglog.WriteCheckpoint's second
// part), so it can never be newer or older than the object map it
// describes. An indexed Open preloads these tables and replays only the
// journal tail past the checkpoint; any decode failure, version skew,
// or torn slot degrades to the full recount — never to divergent state.
//
// The index is advisory by construction: nothing on the recovery path
// trusts it over the log. Segment free bits fold in pendingFree (the
// deferred-reuse barrier frees those segments the moment the checkpoint
// commits, so encoding them free is what makes cleaner frees durable);
// landmark roots are re-validated against the log before use.

const (
	segIndexMagic   = 0x53344958 // "S4IX"
	segIndexVersion = 1

	// objFlagLMReset marks an object whose landmark index was rebuilt
	// after a relocation dropped it (see object.lmReset): indexed
	// recovery must re-walk its chain for intact tombstone roots the way
	// the full recount would.
	objFlagLMReset = 1 << 0
)

// segIndexSeg is one segment's persisted occupancy.
type segIndexSeg struct {
	free bool
	live int32
	hist int32
}

// segIndexObj is one object's persisted recovery hints.
type segIndexObj struct {
	lmReset   bool
	nextAge   types.Timestamp
	landmarks []landmark
}

// segIndex is the decoded form consumed by indexed recovery.
type segIndex struct {
	// openSeg is the segment that was open for appends when the
	// checkpoint was taken (-1 if none). Journal head sectors inside it
	// can be rewritten in place after the checkpoint (the head-merge
	// flush path) without any durable summary update, so indexed
	// recovery must re-read heads that live there even when the
	// roll-forward scan saw nothing.
	openSeg int64
	segs    []segIndexSeg
	jrefs   map[seglog.BlockAddr]int
	objects map[types.ObjectID]*segIndexObj
}

// encodeSegIndexLocked serializes the drive's usage tables and landmark
// indexes. Caller holds the exclusive drive lock; the snapshot must be
// taken after the final log.Sync of a checkpoint so the counters match
// the durable log contents.
func (d *Drive) encodeSegIndexLocked() []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], segIndexMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segIndexVersion)
	buf = append(buf, hdr[:]...)

	nSeg := d.log.NumSegments()
	putU(uint64(nSeg))
	putU(uint64(d.log.CurrentSegment() + 1)) // openSeg, shifted so -1 encodes as 0
	for seg := int64(0); seg < nSeg; seg++ {
		// pendingFree segments are freed the instant this checkpoint
		// commits; persisting them free makes the cleaner's reclamation
		// durable atomically with the object map that stopped
		// referencing them.
		free := d.log.IsFree(seg) || d.pendingFree[seg]
		if free {
			putU(1)
		} else {
			putU(0)
		}
		live, hist := d.usage.occupancy(seg)
		putU(uint64(uint32(live)))
		putU(uint64(uint32(hist)))
	}

	refs := make([]seglog.BlockAddr, 0, len(d.jblockRef))
	for a := range d.jblockRef {
		refs = append(refs, a)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	putU(uint64(len(refs)))
	for _, a := range refs {
		putU(uint64(a))
		putU(uint64(uint32(d.jblockRef[a])))
	}

	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	putU(uint64(len(ids)))
	for _, id := range ids {
		o := d.objects[id]
		putU(uint64(o.id))
		flags := uint64(0)
		if o.lmReset {
			flags |= objFlagLMReset
		}
		putU(flags)
		putU(uint64(o.nextAge))
		putU(uint64(len(o.landmarks)))
		for _, ln := range o.landmarks {
			putU(uint64(ln.time))
			putU(ln.version)
			putU(uint64(ln.root))
			putU(uint64(ln.sector))
		}
	}
	return buf
}

// decodeSegIndex parses an index blob. nSeg is the log's segment count;
// an index recorded against a different geometry is rejected. Every
// failure is a typed error wrapping types.ErrCorrupt (callers fall back
// to full-scan recovery); hostile bytes must never panic and never
// decode to a structurally inconsistent index.
func decodeSegIndex(data []byte, nSeg int64) (*segIndex, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("core: segment index too short: %w", types.ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(data[:4]) != segIndexMagic {
		return nil, fmt.Errorf("core: bad segment index magic: %w", types.ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segIndexVersion {
		return nil, fmt.Errorf("core: segment index version %d: %w", v, types.ErrCorrupt)
	}
	data = data[8:]
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("core: segment index varint: %w", types.ErrCorrupt)
		}
		data = data[n:]
		return v, nil
	}

	n, err := getU()
	if err != nil {
		return nil, err
	}
	if int64(n) != nSeg {
		return nil, fmt.Errorf("core: segment index covers %d segments, log has %d: %w", n, nSeg, types.ErrCorrupt)
	}
	os1, err := getU()
	if err != nil {
		return nil, err
	}
	if os1 > uint64(nSeg) {
		return nil, fmt.Errorf("core: segment index open segment %d of %d: %w", int64(os1)-1, nSeg, types.ErrCorrupt)
	}
	idx := &segIndex{
		openSeg: int64(os1) - 1,
		segs:    make([]segIndexSeg, nSeg),
		jrefs:   make(map[seglog.BlockAddr]int),
		objects: make(map[types.ObjectID]*segIndexObj),
	}
	for seg := int64(0); seg < nSeg; seg++ {
		f, err := getU()
		if err != nil {
			return nil, err
		}
		if f > 1 {
			return nil, fmt.Errorf("core: segment index free bit %d: %w", f, types.ErrCorrupt)
		}
		lv, err := getU()
		if err != nil {
			return nil, err
		}
		hv, err := getU()
		if err != nil {
			return nil, err
		}
		if lv > math.MaxInt32 || hv > math.MaxInt32 {
			// Anything past int32 would wrap negative below; real
			// counters are bounded by blocks-per-segment anyway.
			return nil, fmt.Errorf("core: segment index counter overflow: %w", types.ErrCorrupt)
		}
		idx.segs[seg] = segIndexSeg{free: f == 1, live: int32(lv), hist: int32(hv)}
		if idx.segs[seg].free && (idx.segs[seg].live != 0 || idx.segs[seg].hist != 0) {
			return nil, fmt.Errorf("core: segment index frees occupied segment %d: %w", seg, types.ErrCorrupt)
		}
	}
	if idx.openSeg >= 0 && idx.segs[idx.openSeg].free {
		return nil, fmt.Errorf("core: segment index frees its open segment %d: %w", idx.openSeg, types.ErrCorrupt)
	}

	nRef, err := getU()
	if err != nil {
		return nil, err
	}
	if nRef > uint64(len(data)) {
		// Each pair costs at least two bytes; an impossible count is an
		// attack on the allocation below, not a real index.
		return nil, fmt.Errorf("core: segment index refcount count %d: %w", nRef, types.ErrCorrupt)
	}
	var prevAddr uint64
	for i := uint64(0); i < nRef; i++ {
		a, err := getU()
		if err != nil {
			return nil, err
		}
		if i > 0 && a <= prevAddr {
			return nil, fmt.Errorf("core: segment index refcounts out of order: %w", types.ErrCorrupt)
		}
		prevAddr = a
		c, err := getU()
		if err != nil {
			return nil, err
		}
		if c == 0 || c > journal.SectorsPerBlock {
			return nil, fmt.Errorf("core: segment index refcount %d: %w", c, types.ErrCorrupt)
		}
		idx.jrefs[seglog.BlockAddr(a)] = int(c)
	}

	nObj, err := getU()
	if err != nil {
		return nil, err
	}
	if nObj > uint64(len(data)) {
		return nil, fmt.Errorf("core: segment index object count %d: %w", nObj, types.ErrCorrupt)
	}
	var prevID uint64
	first := true
	for i := uint64(0); i < nObj; i++ {
		id, err := getU()
		if err != nil {
			return nil, err
		}
		if !first && id <= prevID {
			return nil, fmt.Errorf("core: segment index objects out of order: %w", types.ErrCorrupt)
		}
		first, prevID = false, id
		flags, err := getU()
		if err != nil {
			return nil, err
		}
		if flags&^uint64(objFlagLMReset) != 0 {
			return nil, fmt.Errorf("core: segment index object flags %#x: %w", flags, types.ErrCorrupt)
		}
		na, err := getU()
		if err != nil {
			return nil, err
		}
		nLM, err := getU()
		if err != nil {
			return nil, err
		}
		if nLM > uint64(len(data)) {
			return nil, fmt.Errorf("core: segment index landmark count %d: %w", nLM, types.ErrCorrupt)
		}
		oi := &segIndexObj{
			lmReset: flags&objFlagLMReset != 0,
			nextAge: types.Timestamp(na),
		}
		var prev landmark
		for j := uint64(0); j < nLM; j++ {
			t, err := getU()
			if err != nil {
				return nil, err
			}
			v, err := getU()
			if err != nil {
				return nil, err
			}
			r, err := getU()
			if err != nil {
				return nil, err
			}
			s, err := getU()
			if err != nil {
				return nil, err
			}
			ln := landmark{
				time:    types.Timestamp(t),
				version: v,
				root:    seglog.BlockAddr(r),
				sector:  journal.SectorAddr(s),
			}
			if ln.root == seglog.NilAddr {
				return nil, fmt.Errorf("core: segment index landmark without root: %w", types.ErrCorrupt)
			}
			if j > 0 && (ln.time < prev.time || ln.time == prev.time && ln.version <= prev.version) {
				return nil, fmt.Errorf("core: segment index landmarks out of order: %w", types.ErrCorrupt)
			}
			prev = ln
			oi.landmarks = append(oi.landmarks, ln)
		}
		idx.objects[types.ObjectID(id)] = oi
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after segment index: %w", len(data), types.ErrCorrupt)
	}
	return idx, nil
}
