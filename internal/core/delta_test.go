package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"s4/internal/types"
)

// Delta-compressed history and retention policies (DESIGN.md §16).

// deltaOn enables delta conversion drive-wide (key 0 = drive default).
func deltaOn(e *testEnv) {
	e.t.Helper()
	if err := e.d.SetPolicy(admin, 0, types.Policy{Mode: types.ModeEveryVersion, DeltaEnabled: true}); err != nil {
		e.t.Fatal(err)
	}
}

// blockPattern builds one full block whose tail varies with v; most of
// the block is shared across versions so reverse deltas stay small.
func blockPattern(v int) []byte {
	b := make([]byte, types.BlockSize)
	for i := range b {
		b[i] = byte(i)
	}
	copy(b[types.BlockSize-32:], []byte(fmt.Sprintf("version-%08d", v)))
	return b
}

// spanPattern is blockPattern across n blocks: conversion packs several
// outgoing blocks of one entry into a shared delta block, so it only
// fires for multi-block overwrites (packing one block saves nothing).
func spanPattern(v, n int) []byte {
	b := make([]byte, 0, n*types.BlockSize)
	for i := 0; i < n; i++ {
		b = append(b, blockPattern(v*100+i)...)
	}
	return b
}

func TestDeltaHistoryRoundTrip(t *testing.T) {
	e := newTestDrive(t)
	deltaOn(e)
	id := e.create(alice)

	const versions, span = 12, 4
	times := make([]types.Timestamp, versions)
	for v := 0; v < versions; v++ {
		e.write(alice, id, 0, spanPattern(v, span))
		times[v] = e.d.Now()
		e.tick()
	}
	st := e.d.DriveStats()
	if st.DeltaBlocksWritten == 0 {
		t.Fatal("no packed delta blocks written despite DeltaEnabled")
	}
	if st.DeltaBytesSaved <= 0 {
		t.Fatalf("DeltaBytesSaved = %d, want > 0", st.DeltaBytesSaved)
	}
	// Every historical version must materialize exactly, via however
	// long a delta chain reconstruction needs.
	for v := 0; v < versions; v++ {
		got := e.read(alice, id, 0, span*types.BlockSize, times[v])
		if !bytes.Equal(got, spanPattern(v, span)) {
			t.Fatalf("version %d did not round-trip through delta history", v)
		}
	}
}

func TestDeltaChainKeyframe(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.MaxDeltaChain = 4 })
	deltaOn(e)
	id := e.create(alice)
	const versions, span = 11, 4 // several keyframes at chain bound 4
	times := make([]types.Timestamp, versions)
	for v := 0; v < versions; v++ {
		e.write(alice, id, 0, spanPattern(v, span))
		times[v] = e.d.Now()
		e.tick()
	}
	st := e.d.DriveStats()
	if st.ChainKeyframes == 0 {
		t.Fatal("no keyframes forced at the MaxDeltaChain bound")
	}
	for v := 0; v < versions; v++ {
		got := e.read(alice, id, 0, span*types.BlockSize, times[v])
		if !bytes.Equal(got, spanPattern(v, span)) {
			t.Fatalf("version %d wrong after keyframe splits", v)
		}
	}
}

func TestDeltaCrashRecovery(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		t.Run(fmt.Sprintf("indexed=%v", indexed), func(t *testing.T) {
			e := newTestDrive(t, func(o *Options) { o.DisableSegIndex = !indexed })
			deltaOn(e)
			id := e.create(alice)
			const versions, span = 8, 4
			times := make([]types.Timestamp, versions)
			for v := 0; v < versions; v++ {
				e.write(alice, id, 0, spanPattern(v, span))
				times[v] = e.d.Now()
				e.tick()
			}
			if indexed {
				if err := e.d.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				// A post-checkpoint tail with conversions exercises the
				// indexed settlement rules.
				e.write(alice, id, 0, spanPattern(versions, span))
				e.tick()
			}
			if err := e.d.Sync(alice); err != nil {
				t.Fatal(err)
			}
			if st := e.d.DriveStats(); st.DeltaBlocksWritten == 0 {
				t.Fatal("recovery scenario wrote no packed delta blocks")
			}
			e.reopen()
			if err := e.d.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for v := 0; v < versions; v++ {
				got := e.read(alice, id, 0, span*types.BlockSize, times[v])
				if !bytes.Equal(got, spanPattern(v, span)) {
					t.Fatalf("version %d wrong after crash recovery", v)
				}
			}
		})
	}
}

func TestPolicyRetentionSkip(t *testing.T) {
	for _, mode := range []types.PolicyMode{types.ModeLandmarkOnly, types.ModeOnClose} {
		t.Run(mode.String(), func(t *testing.T) {
			// Landmarks far apart so retention decisions are the policy's.
			e := newTestDrive(t, func(o *Options) { o.CheckpointEvery = 1 << 20 })
			id := e.create(alice)
			if err := e.d.SetPolicy(admin, id, types.Policy{Mode: mode}); err != nil {
				t.Fatal(err)
			}
			e.write(alice, id, 0, blockPattern(1))
			t1 := e.d.Now()
			e.tick()
			e.write(alice, id, 0, blockPattern(2))
			t2 := e.d.Now()
			e.tick()
			if mode == types.ModeOnClose {
				// The sync is the "close": version 2 becomes retained.
				if err := e.d.Sync(alice); err != nil {
					t.Fatal(err)
				}
			}
			e.write(alice, id, 0, blockPattern(3))
			t3 := e.d.Now()
			e.tick()

			// Version 2's fate differs by mode; version 3 is current and
			// always readable.
			if got := e.read(alice, id, 0, types.BlockSize, t3); !bytes.Equal(got, blockPattern(3)) {
				t.Fatal("current version wrong under retention policy")
			}
			_, err2 := e.d.Read(alice, id, 0, types.BlockSize, t2)
			if mode == types.ModeOnClose {
				if err2 != nil {
					t.Fatalf("synced version dropped under on-close: %v", err2)
				}
			} else if !errors.Is(err2, types.ErrNoVersion) {
				t.Fatalf("unretained version: got err %v, want ErrNoVersion", err2)
			}
			// Version 1 was overwritten before any close under on-close,
			// and is below the last retained landmark under landmark-only:
			// both modes drop it.
			if _, err := e.d.Read(alice, id, 0, types.BlockSize, t1); !errors.Is(err, types.ErrNoVersion) {
				t.Fatalf("unretained version 1: got err %v, want ErrNoVersion", err)
			}
			if st := e.d.DriveStats(); st.PolicySkippedVersions == 0 {
				t.Fatal("PolicySkippedVersions did not count the drops")
			}
			if err := e.d.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPolicySkipSurvivesFlushAndCrash(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.CheckpointEvery = 1 << 20 })
	id := e.create(alice)
	if err := e.d.SetPolicy(admin, id, types.Policy{Mode: types.ModeLandmarkOnly, DeltaEnabled: true}); err != nil {
		t.Fatal(err)
	}
	const versions, span = 6, 4
	times := make([]types.Timestamp, versions)
	for v := 0; v < versions; v++ {
		e.write(alice, id, 0, spanPattern(v, span))
		times[v] = e.d.Now()
		e.tick()
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Current version intact; every dropped version reads as a typed
	// miss, never as fabricated bytes.
	if got := e.read(alice, id, 0, span*types.BlockSize, types.TimeNowest); !bytes.Equal(got, spanPattern(versions-1, span)) {
		t.Fatal("current version wrong after crash with retention skips")
	}
	for v := 0; v < versions-1; v++ {
		got, err := e.d.Read(alice, id, 0, span*types.BlockSize, times[v])
		if err == nil {
			// Retention decisions are made at overwrite time; a version
			// that survived (e.g. the first, anchored by create) must be
			// exact.
			if !bytes.Equal(got, spanPattern(v, span)) {
				t.Fatalf("version %d returned wrong bytes after crash", v)
			}
			continue
		}
		if !errors.Is(err, types.ErrNoVersion) {
			t.Fatalf("version %d: err %v, want ErrNoVersion or exact data", v, err)
		}
	}
}

func TestPolicyPersistsAcrossReopen(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	want := types.Policy{Window: 10 * time.Minute, Mode: types.ModeLandmarkOnly, DeltaEnabled: true}
	if err := e.d.SetPolicy(admin, id, want); err != nil {
		t.Fatal(err)
	}
	def := types.Policy{Mode: types.ModeOnClose}
	if err := e.d.SetPolicy(admin, 0, def); err != nil {
		t.Fatal(err)
	}
	if err := e.d.Close(); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	got, own, err := e.d.GetPolicy(admin, id)
	if err != nil || !own || got != want {
		t.Fatalf("object policy after reopen: %+v own=%v err=%v", got, own, err)
	}
	if got, _, err := e.d.GetPolicy(admin, 0); err != nil || got != def {
		t.Fatalf("drive default after reopen: %+v err=%v", got, err)
	}
	// Another object inherits the drive default.
	id2 := e.create(bob)
	if got, own, err := e.d.GetPolicy(admin, id2); err != nil || own || got != def {
		t.Fatalf("inherited policy: %+v own=%v err=%v", got, own, err)
	}
	// Clearing an entry falls back to the default.
	if err := e.d.SetPolicy(admin, id, types.Policy{}); err != nil {
		t.Fatal(err)
	}
	if got, own, _ := e.d.GetPolicy(admin, id); own || got != def {
		t.Fatalf("cleared policy: %+v own=%v", got, own)
	}
}

func TestSetPolicyValidation(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	if err := e.d.SetPolicy(alice, id, types.Policy{}); !errors.Is(err, types.ErrAdminOnly) {
		t.Fatalf("non-admin SetPolicy: %v", err)
	}
	if err := e.d.SetPolicy(admin, id, types.Policy{Mode: 99}); !errors.Is(err, types.ErrInval) {
		t.Fatalf("bad mode: %v", err)
	}
	if err := e.d.SetPolicy(admin, id, types.Policy{Window: -time.Second}); !errors.Is(err, types.ErrInval) {
		t.Fatalf("negative window: %v", err)
	}
	if err := e.d.SetPolicy(admin, types.PolicyTable, types.Policy{Mode: types.ModeOnClose}); !errors.Is(err, types.ErrInval) {
		t.Fatalf("reserved object policy: %v", err)
	}
}

func TestPolicyWindowOverride(t *testing.T) {
	// Two objects; one under a much shorter retention window. After the
	// short window lapses, its history ages while the default object's
	// survives — per-object cuts in both the cleaner and recovery.
	e := newTestDrive(t)
	short := e.create(alice)
	long := e.create(alice)
	if err := e.d.SetPolicy(admin, short, types.Policy{Window: time.Minute, Mode: types.ModeEveryVersion}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.ObjectID{short, long} {
		e.write(alice, id, 0, blockPattern(1))
	}
	tOld := e.d.Now()
	e.tick()
	for _, id := range []types.ObjectID{short, long} {
		e.write(alice, id, 0, blockPattern(2))
	}
	// Aging walks flushed chains, not pending tails.
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	// Pass the minute window but stay inside the hour drive window.
	e.clk.Advance(5 * time.Minute)
	if _, err := e.d.CleanOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.d.Read(alice, short, 0, types.BlockSize, tOld); !errors.Is(err, types.ErrNoVersion) {
		t.Fatalf("short-window history survived its policy window: %v", err)
	}
	if got := e.read(alice, long, 0, types.BlockSize, tOld); !bytes.Equal(got, blockPattern(1)) {
		t.Fatal("default-window history aged too early")
	}
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Recovery classifies with the same per-object cut.
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := e.read(alice, long, 0, types.BlockSize, tOld); !bytes.Equal(got, blockPattern(1)) {
		t.Fatal("default-window history lost across recovery")
	}
}
