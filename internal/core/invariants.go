package core

import (
	"fmt"
	"sort"

	"s4/internal/audit"
	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
	"s4/internal/vclock"
)

// CheckInvariants walks every durable structure the drive knows about —
// object data blocks, inode checkpoints, journal chains, history blocks
// inside the detection window, and audit blocks — and verifies that
// each referenced block is readable, decodes, and lives in a segment
// the allocator still considers allocated. A reference into a freed
// segment means the cleaner's deferred-reuse barrier (DESIGN.md §6) was
// violated: the next append may clobber state recovery depends on.
//
// The torture harness runs this after every crash recovery; it is also
// safe to call on a live drive (it takes the drive lock).
func (d *Drive) CheckInvariants() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return types.ErrDriveStopped
	}
	buf := make([]byte, seglog.BlockSize)
	checkAddr := func(id types.ObjectID, what string, addr seglog.BlockAddr) error {
		if addr == seglog.NilAddr {
			return nil
		}
		seg := d.log.SegOf(addr)
		if seg < 0 {
			return fmt.Errorf("core: %v %s at block %d outside segment area: %w", id, what, addr, types.ErrCorrupt)
		}
		if d.log.IsFree(seg) {
			return fmt.Errorf("core: %v %s at block %d references freed segment %d: %w", id, what, addr, seg, types.ErrCorrupt)
		}
		if err := d.log.Read(addr, buf); err != nil {
			return fmt.Errorf("core: %v %s at block %d unreadable: %v: %w", id, what, addr, err, types.ErrCorrupt)
		}
		return nil
	}

	ageCut := vclock.TS(d.clk) - types.Timestamp(d.window)
	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		o := d.objects[id]
		if err := d.loadInode(o); err != nil {
			return fmt.Errorf("core: %v inode unloadable: %w", id, err)
		}
		for idx := range o.ino.blocks {
			if err := checkAddr(id, "data block", o.ino.blocks[idx]); err != nil {
				return err
			}
		}
		for _, a := range o.cpBlocks {
			if err := checkAddr(id, "checkpoint block", a); err != nil {
				return err
			}
		}
		// Walk the retained journal chain; entries young enough to be
		// inside the detection window must still reach their history
		// blocks (the old-version data the entry's undo needs).
		for addr := o.jhead; addr != journal.NilSector; {
			if err := checkAddr(id, "journal sector", addr.Block()); err != nil {
				return err
			}
			obj, prev, entries, err := journal.ReadSector(d.log, addr)
			if err != nil {
				return fmt.Errorf("core: %v journal sector %d undecodable: %v: %w", id, addr, err, types.ErrCorrupt)
			}
			if obj != id {
				return fmt.Errorf("core: %v journal sector %d owned by %v: %w", id, addr, obj, types.ErrCorrupt)
			}
			for i := range entries {
				e := &entries[i]
				if e.Time < ageCut || e.Version <= o.floorVersion {
					continue // aged out; its history blocks may be gone
				}
				for _, old := range e.Old {
					if err := checkAddr(id, "history block", old); err != nil {
						return err
					}
				}
			}
			if addr == o.jtail {
				break
			}
			addr = prev
		}
	}

	for _, r := range d.auditBlocks {
		if err := checkAddr(types.AuditObject, "audit block", r.addr); err != nil {
			return err
		}
		if _, err := audit.DecodeBlock(buf); err != nil {
			return fmt.Errorf("core: audit block %d undecodable: %w", r.addr, err)
		}
	}

	// Loading every inode may have blown past the object cache budget;
	// trim back down so a live caller's cache stays bounded.
	return d.evictColdLocked()
}
