package core

import (
	"fmt"
	"sort"

	"s4/internal/audit"
	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
	"s4/internal/vclock"
)

// CheckInvariants walks every durable structure the drive knows about —
// object data blocks, inode checkpoints, journal chains, history blocks
// inside the detection window, and audit blocks — and verifies that
// each referenced block is readable, decodes, and lives in a segment
// the allocator still considers allocated. A reference into a freed
// segment means the cleaner's deferred-reuse barrier (DESIGN.md §6) was
// violated: the next append may clobber state recovery depends on.
//
// The torture harness runs this after every crash recovery; it is also
// safe to call on a live drive (it takes the drive lock).
func (d *Drive) CheckInvariants() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return types.ErrDriveStopped
	}
	buf := make([]byte, seglog.BlockSize)
	checkAddr := func(id types.ObjectID, what string, addr seglog.BlockAddr) error {
		if addr == seglog.NilAddr {
			return nil
		}
		seg := d.log.SegOf(addr)
		if seg < 0 {
			return fmt.Errorf("core: %v %s at block %d outside segment area: %w", id, what, addr, types.ErrCorrupt)
		}
		if d.log.IsFree(seg) {
			return fmt.Errorf("core: %v %s at block %d references freed segment %d: %w", id, what, addr, seg, types.ErrCorrupt)
		}
		if err := d.log.Read(addr, buf); err != nil {
			return fmt.Errorf("core: %v %s at block %d unreadable: %v: %w", id, what, addr, err, types.ErrCorrupt)
		}
		return nil
	}

	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		o := d.objects[id]
		// Retention policies can shorten an object's window; history
		// beyond its effective cut is legitimately gone.
		ageCut := vclock.TS(d.clk) - types.Timestamp(d.effectiveWindow(id))
		if err := d.loadInode(o); err != nil {
			return fmt.Errorf("core: %v inode unloadable: %w", id, err)
		}
		for idx := range o.ino.blocks {
			if err := checkAddr(id, "data block", o.ino.blocks[idx]); err != nil {
				return err
			}
		}
		for _, a := range o.cpBlocks {
			if err := checkAddr(id, "checkpoint block", a); err != nil {
				return err
			}
		}
		// Walk the retained journal chain; entries young enough to be
		// inside the detection window must still reach their history
		// blocks (the old-version data the entry's undo needs).
		for addr := o.jhead; addr != journal.NilSector; {
			if err := checkAddr(id, "journal sector", addr.Block()); err != nil {
				return err
			}
			obj, prev, entries, err := journal.ReadSector(d.log, addr)
			if err != nil {
				return fmt.Errorf("core: %v journal sector %d undecodable: %v: %w", id, addr, err, types.ErrCorrupt)
			}
			if obj != id {
				return fmt.Errorf("core: %v journal sector %d owned by %v: %w", id, addr, obj, types.ErrCorrupt)
			}
			for i := range entries {
				e := &entries[i]
				if e.Time < ageCut || e.Version <= o.floorVersion {
					continue // aged out; its history blocks may be gone
				}
				for k, old := range e.Old {
					a, what := old, "history block"
					if old != seglog.NilAddr && e.DeltaMask&(1<<uint(k)) != 0 {
						// A masked slot stores packed*SlotsPerRef+slot; the
						// block that must stay reachable is the shared
						// packed delta block.
						a = seglog.BlockAddr(uint64(old) / journal.DeltaSlotsPerBlock)
						what = "packed delta block"
					}
					if err := checkAddr(id, what, a); err != nil {
						return err
					}
				}
			}
			if addr == o.jtail {
				break
			}
			addr = prev
		}
	}

	for _, r := range d.auditBlocks {
		if err := checkAddr(types.AuditObject, "audit block", r.addr); err != nil {
			return err
		}
		if _, err := audit.DecodeBlock(buf); err != nil {
			return fmt.Errorf("core: audit block %d undecodable: %w", r.addr, err)
		}
	}

	if err := d.checkLandmarksLocked(false); err != nil {
		return err
	}

	// Loading every inode may have blown past the object cache budget;
	// trim back down so a live caller's cache stays bounded.
	return d.evictColdLocked()
}

// CheckLandmarks verifies the landmark index (DESIGN.md §12.1) against
// the journal chains: every indexed landmark must correspond to an
// EntCheckpoint entry in its object's chain or pending tail, at the
// recorded sector, with a root block that still decodes to the indexed
// object and version inside an allocated segment, and the index must be
// sorted ascending by time. With requireComplete (the torture harness
// uses this right after recovery) the converse is enforced too: every
// chain checkpoint entry inside the detection window whose root still
// validates must be indexed. A live drive cannot require completeness —
// data-block relocation legitimately drops landmarks while their chain
// entries remain behind as tombstones until recovery revalidates them.
func (d *Drive) CheckLandmarks(requireComplete bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return types.ErrDriveStopped
	}
	return d.checkLandmarksLocked(requireComplete)
}

func (d *Drive) checkLandmarksLocked(requireComplete bool) error {
	buf := make([]byte, seglog.BlockSize)
	validRoot := func(id types.ObjectID, version uint64, root seglog.BlockAddr) bool {
		if root == seglog.NilAddr {
			return false
		}
		if seg := d.log.SegOf(root); seg < 0 || d.log.IsFree(seg) {
			return false
		}
		if err := d.log.Read(root, buf); err != nil {
			return false
		}
		in, _, err := decodeInodeRoot(d.log, buf)
		return err == nil && in.ID == id && in.Version == version
	}

	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	type lmKey struct {
		version uint64
		root    seglog.BlockAddr
	}
	for _, id := range ids {
		o := d.objects[id]
		ageCut := vclock.TS(d.clk) - types.Timestamp(d.effectiveWindow(id))
		found := make(map[lmKey]journal.SectorAddr)
		for _, e := range o.pending {
			if e.Type == journal.EntCheckpoint {
				found[lmKey{e.Version, e.InodeAddr}] = journal.NilSector
			}
		}
		for addr := o.jhead; addr != journal.NilSector; {
			obj, prev, entries, err := journal.ReadSector(d.log, addr)
			if err != nil {
				return fmt.Errorf("core: %v journal sector %d undecodable: %v: %w", id, addr, err, types.ErrCorrupt)
			}
			if obj != id {
				return fmt.Errorf("core: %v journal sector %d owned by %v: %w", id, addr, obj, types.ErrCorrupt)
			}
			for i := range entries {
				e := &entries[i]
				if e.Type != journal.EntCheckpoint {
					continue
				}
				found[lmKey{e.Version, e.InodeAddr}] = addr
				if requireComplete && e.Time >= ageCut && validRoot(id, e.Version, e.InodeAddr) {
					indexed := false
					for _, ln := range o.landmarks {
						if ln.version == e.Version && ln.root == e.InodeAddr {
							indexed = true
							break
						}
					}
					if !indexed {
						return fmt.Errorf("core: %v checkpoint v%d at sector %d missing from landmark index: %w", id, e.Version, addr, types.ErrCorrupt)
					}
				}
			}
			if addr == o.jtail {
				break
			}
			addr = prev
		}
		var prevTime types.Timestamp
		for _, ln := range o.landmarks {
			if ln.time < prevTime {
				return fmt.Errorf("core: %v landmark index out of time order at v%d: %w", id, ln.version, types.ErrCorrupt)
			}
			prevTime = ln.time
			sa, ok := found[lmKey{ln.version, ln.root}]
			if !ok {
				return fmt.Errorf("core: %v landmark v%d has no chain or pending checkpoint entry: %w", id, ln.version, types.ErrCorrupt)
			}
			if ln.sector != sa {
				return fmt.Errorf("core: %v landmark v%d records sector %d, chain has it at %d: %w", id, ln.version, ln.sector, sa, types.ErrCorrupt)
			}
			if !validRoot(id, ln.version, ln.root) {
				return fmt.Errorf("core: %v landmark v%d root block %d does not validate: %w", id, ln.version, ln.root, types.ErrCorrupt)
			}
		}
	}
	return nil
}
