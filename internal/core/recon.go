package core

import (
	"container/list"
	"sync"

	"s4/internal/types"
)

// reconCache memoizes reconstructed historical inodes (DESIGN.md
// §12.2). Written versions are immutable, so a reconstruction is a pure
// function of the object and the resolved version; each cache entry
// records the validity interval [from, to) its inode answers for (from:
// the stop entry's time; to: the oldest newer entry's time), and any
// later lookup inside that interval would walk to the identical state.
//
// Entries go stale only when the cleaner or Flush removes the version
// (or relocates/frees blocks it references); both run under the
// exclusive drive lock and call dropObject/dropBelow before any block
// is freed, while lookups happen under the shared drive lock — so a
// served inode's blocks are pinned for as long as the reader's shared
// hold lasts, exactly like a fresh walk's.
//
// Like blockCache it is internally synchronized and a leaf in the lock
// hierarchy: no other lock is acquired while mu is held. Cached inodes
// are shared between callers and MUST NOT be mutated.
type reconCache struct {
	mu       sync.Mutex
	capBytes int64
	curBytes int64
	lru      *list.List                         // front = most recent; values are *reconEnt
	byObj    map[types.ObjectID][]*list.Element // per object, ascending by from
	// epochs fences inserts against invalidation (DESIGN.md §16): a
	// walk captures its object's epoch when it snapshots, and put
	// discards results whose epoch is stale. Needed because delta
	// conversion frees history blocks under the *shared* drive lock, so
	// a lock-free walk can be in flight across the invalidation.
	epochs map[types.ObjectID]uint64

	hits, misses int64
}

type reconEnt struct {
	id       types.ObjectID
	from, to types.Timestamp // answers at ∈ [from, to)
	ino      *Inode
	bytes    int64
}

func newReconCache(capBytes int64) *reconCache {
	return &reconCache{
		capBytes: capBytes,
		lru:      list.New(),
		byObj:    make(map[types.ObjectID][]*list.Element),
		epochs:   make(map[types.ObjectID]uint64),
	}
}

// epoch returns id's current invalidation epoch; pass it back to put.
func (c *reconCache) epoch(id types.ObjectID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs[id]
}

// inodeFootprint estimates the in-memory size of a reconstructed inode
// for cache accounting: struct plus attr bytes, ACL entries, and block
// map entries (map overhead dominates the 16 payload bytes).
func inodeFootprint(in *Inode) int64 {
	return 256 + int64(len(in.Attr)) + 24*int64(len(in.ACL)) + 64*int64(in.NumBlocks())
}

// get returns the cached inode answering (id, at), or nil. The result
// is shared: callers must treat it as read-only.
func (c *reconCache) get(id types.ObjectID, at types.Timestamp) *Inode {
	if c.capBytes <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ents := c.byObj[id]
	// Last interval starting at or before at.
	lo, hi := 0, len(ents)
	for lo < hi {
		mid := (lo + hi) / 2
		if ents[mid].Value.(*reconEnt).from <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		c.misses++
		return nil
	}
	ent := ents[lo-1].Value.(*reconEnt)
	if at >= ent.to {
		c.misses++
		return nil
	}
	c.lru.MoveToFront(ents[lo-1])
	c.hits++
	return ent.ino
}

// put inserts a reconstruction valid on [from, to). Intervals derived
// from walks of the same chain are either identical, share their start
// (a head-state interval bounded by two different snapshot clocks), or
// are disjoint; an insert matching an existing start just extends its
// bound, and anything else overlapping is dropped rather than risk
// shadowing a fresher entry.
func (c *reconCache) put(id types.ObjectID, from, to types.Timestamp, in *Inode, epoch uint64) {
	if c.capBytes <= 0 || to <= from {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epochs[id] != epoch {
		return // invalidated while the walk ran; blocks may be freed
	}
	ents := c.byObj[id]
	lo, hi := 0, len(ents)
	for lo < hi {
		mid := (lo + hi) / 2
		if ents[mid].Value.(*reconEnt).from <= from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		prev := ents[lo-1].Value.(*reconEnt)
		if prev.from == from {
			if to > prev.to {
				prev.to = to
			}
			c.lru.MoveToFront(ents[lo-1])
			return
		}
		if from < prev.to {
			return // overlaps an existing interval; keep the incumbent
		}
	}
	if lo < len(ents) && to > ents[lo].Value.(*reconEnt).from {
		return // would overlap the successor
	}
	ent := &reconEnt{id: id, from: from, to: to, ino: in, bytes: inodeFootprint(in)}
	el := c.lru.PushFront(ent)
	c.byObj[id] = append(ents[:lo:lo], append([]*list.Element{el}, ents[lo:]...)...)
	c.curBytes += ent.bytes
	for c.curBytes > c.capBytes && c.lru.Len() > 0 {
		back := c.lru.Back()
		c.removeLocked(back)
	}
}

// removeLocked unlinks one entry from the LRU and its object's index.
func (c *reconCache) removeLocked(el *list.Element) {
	ent := el.Value.(*reconEnt)
	c.lru.Remove(el)
	c.curBytes -= ent.bytes
	ents := c.byObj[ent.id]
	for i, e := range ents {
		if e == el {
			ents = append(ents[:i], ents[i+1:]...)
			break
		}
	}
	if len(ents) == 0 {
		delete(c.byObj, ent.id)
	} else {
		c.byObj[ent.id] = ents
	}
}

// dropObject invalidates every cached reconstruction of id — the chain
// was rewritten (Flush), the object reaped, or its blocks relocated.
func (c *reconCache) dropObject(id types.ObjectID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs[id]++
	for _, el := range c.byObj[id] {
		ent := el.Value.(*reconEnt)
		c.lru.Remove(el)
		c.curBytes -= ent.bytes
	}
	delete(c.byObj, id)
}

// dropBelow invalidates reconstructions of id wholly below the new
// history floor: their intervals can no longer be queried (the floor
// precheck rejects them) and their inodes may reference blocks the
// aging pass just freed.
func (c *reconCache) dropBelow(id types.ObjectID, cut types.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs[id]++
	ents := c.byObj[id]
	kept := ents[:0]
	for _, el := range ents {
		ent := el.Value.(*reconEnt)
		if ent.to <= cut {
			c.lru.Remove(el)
			c.curBytes -= ent.bytes
			continue
		}
		kept = append(kept, el)
	}
	if len(kept) == 0 {
		delete(c.byObj, id)
	} else {
		c.byObj[id] = kept
	}
}

// dropSince invalidates reconstructions of id whose interval starts at
// or after cut: delta conversion or a retention skip just freed blocks
// those inodes reference (every version modified at or after the freed
// block's birth may hold its address).
func (c *reconCache) dropSince(id types.ObjectID, cut types.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs[id]++
	ents := c.byObj[id]
	kept := ents[:0]
	for _, el := range ents {
		ent := el.Value.(*reconEnt)
		if ent.from >= cut {
			c.lru.Remove(el)
			c.curBytes -= ent.bytes
			continue
		}
		kept = append(kept, el)
	}
	if len(kept) == 0 {
		delete(c.byObj, id)
	} else {
		c.byObj[id] = kept
	}
}

// counters returns the hit/miss totals.
func (c *reconCache) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
