package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"s4/internal/throttle"
	"s4/internal/types"
)

// TestSurfaceThrottleReturnsRetryableError proves the SurfaceThrottle
// mode: a penalized mutation fails fast with a RetryableError wrapping
// ErrThrottled carrying the delay, executes nothing, and never serves
// the penalty in-band (the virtual clock must not advance).
func TestSurfaceThrottleReturnsRetryableError(t *testing.T) {
	e := newTestDrive(t, func(o *Options) {
		o.Window = 24 * time.Hour
		o.SurfaceThrottle = true
		o.Throttle = &throttle.Config{
			PoolBytes:  2 << 20,
			PressureAt: 0.5,
			FairShare:  64 << 10,
			HalfLife:   10 * time.Second,
			MaxDelay:   250 * time.Millisecond,
		}
	})
	id := e.create(alice)
	payload := bytes.Repeat([]byte{1}, 4*types.BlockSize)

	var throttledErr error
	for i := 0; i < 400 && throttledErr == nil; i++ {
		if err := e.d.Write(alice, id, 0, payload); err != nil {
			throttledErr = err
		}
		e.clk.Advance(10 * time.Millisecond)
	}
	if throttledErr == nil {
		t.Fatal("history-pool abuser never throttled")
	}
	if !errors.Is(throttledErr, types.ErrThrottled) {
		t.Fatalf("throttled write returned %v, want ErrThrottled", throttledErr)
	}
	after, ok := types.RetryAfterHint(throttledErr)
	if !ok || after <= 0 {
		t.Fatalf("no retry-after hint on %v", throttledErr)
	}
	if !types.Retryable(throttledErr) {
		t.Fatalf("%v not classified retryable", throttledErr)
	}

	// The rejection must not have served the delay in-band: a repeat of
	// the same write fails again without the clock moving (an in-band
	// sleep would advance the virtual clock by the penalty).
	before := e.clk.Now()
	err := e.d.Write(alice, id, 0, payload)
	if !errors.Is(err, types.ErrThrottled) {
		t.Fatalf("second write: %v", err)
	}
	if moved := e.clk.Now().Sub(before); moved != 0 {
		t.Fatalf("surfaced throttle slept in-band for %v", moved)
	}

	// Versions written before the penalty engaged remain readable: the
	// rejection executed nothing and corrupted nothing.
	got := e.read(alice, id, 0, uint64(len(payload)), types.TimeNowest)
	if !bytes.Equal(got, payload) {
		t.Fatal("data wrong after throttled rejections")
	}

	// Admin mutations are exempt from throttling in either mode.
	if err := e.d.SetAttr(admin, id, []byte("forensics")); err != nil {
		t.Fatalf("admin mutation throttled: %v", err)
	}
}
