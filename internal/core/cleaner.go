package core

import (
	"errors"
	"sort"

	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
	"s4/internal/vclock"
)

// The S4 cleaner (§4.2.1, §5.1.3).
//
// Unlike an LFS cleaner, deprecated data cannot be reclaimed merely
// because it is dead — it must also have aged out of the detection
// window. The cleaner therefore works object-first:
//
//  1. Aging: walk each object's journal chain; entries older than the
//     window release the block pointers they deprecated, and journal
//     sectors whose entries have all aged are unlinked from the chain
//     (the per-object floor guarantees reads never reach freed state).
//     An aged delete entry evaporates the whole object.
//  2. Reclamation: segments whose live and history counts are both zero
//     return to the free pool.
//  3. Compaction: mostly-empty segments with no in-window content are
//     drained by copying their live blocks forward, then freed. Because
//     journal-based metadata reconstructs old versions from the current
//     state plus undo records, moving a live block only updates the
//     current block map — history is untouched (§4.2.2). Objects whose
//     blocks moved are re-checkpointed before the segment is freed so
//     crash recovery never replays stale addresses.
//
// The cleaner runs in bounded steps (CleanOnce) so the harness can
// interleave it with foreground work; its I/O shares the device and the
// virtual clock, which is exactly how it competes with foreground
// traffic in Fig. 5.

// CleanStats reports one cleaning pass's work.
type CleanStats struct {
	ObjectsAged     int
	EntriesAged     int
	BlocksAgedOut   int
	SectorsFreed    int
	ObjectsReaped   int
	SegmentsFreed   int
	SegmentsCleaned int
	BlocksCopied    int
}

// CleanOnce performs one bounded cleaning pass and reports what it did.
// It holds the exclusive drive lock throughout: that is the mutual
// exclusion the lock-free history read path relies on — no sector or
// block it might free can be mid-walk, because walkers hold the shared
// lock for their whole operation.
func (d *Drive) CleanOnce() (CleanStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var cs CleanStats
	if d.closed {
		return cs, types.ErrDriveStopped
	}
	d.statsMu.Lock()
	d.stats.CleanerRuns++
	d.statsMu.Unlock()
	ageCut := vclock.TS(d.clk) - types.Timestamp(d.window)

	// Phase 1: age history out of the window, a bounded batch of
	// objects per pass. Go's randomized map iteration spreads passes
	// across the population without the cost of maintaining a sorted
	// cursor; the per-object nextAge schedule makes unripe visits
	// nearly free, so the batch can be generous.
	const maxObjects = 4096
	visited := 0
	for _, o := range d.objects {
		if visited >= maxObjects {
			break
		}
		visited++
		// Reaping deletes from d.objects; Go permits deletion during
		// map iteration.
		reaped, err := d.ageObjectLocked(o, ageCut, &cs)
		if err != nil {
			return cs, err
		}
		if reaped {
			cs.ObjectsReaped++
		}
	}

	// Phase 1b: audit blocks whose newest record has left the window
	// are released (the audit log serves intrusion diagnosis; beyond
	// the window its guarantee has lapsed, like any history).
	d.auditMu.Lock()
	kept := d.auditBlocks[:0]
	for _, r := range d.auditBlocks {
		if r.lastTime < ageCut {
			d.usage.freeLive(segOf(d.log, r.addr))
			d.cache.drop(r.addr)
		} else {
			kept = append(kept, r)
		}
	}
	d.auditBlocks = kept
	d.auditMu.Unlock()

	// Phase 2: reclaim empty segments.
	if err := d.reclaimSegmentsLocked(&cs); err != nil {
		return cs, err
	}

	// Phase 3: compact up to a few fragmented segments. Compaction
	// appends relocated blocks, so on a nearly full drive it can run
	// out of room mid-pass; the aging and reclamation already done
	// still stand, and the next pass retries with whatever they freed.
	if err := d.compactLocked(ageCut, &cs, 4); err != nil && !errors.Is(err, types.ErrNoSpace) {
		return cs, err
	}
	// Checkpoint barrier: emptied segments rejoin the allocator only
	// once the object map on disk has stopped referencing them. The
	// threshold amortizes the barrier cost over a batch of segments,
	// tightening when the allocator runs low.
	drainAt := int(d.log.NumSegments() / 32)
	if drainAt < 4 {
		drainAt = 4
	}
	if len(d.pendingFree) >= drainAt || (len(d.pendingFree) > 0 && d.log.FreeSegments() < d.log.NumSegments()/10) {
		if err := d.checkpointLocked(); err != nil {
			if !errors.Is(err, types.ErrNoSpace) {
				return cs, err
			}
			// Emptied segments stay deferred; a later pass drains them
			// once aging or reclamation has restored some headroom.
		}
	}
	d.statsMu.Lock()
	d.stats.SegmentsFreed += int64(cs.SegmentsFreed)
	d.stats.BlocksCompacted += int64(cs.BlocksCopied)
	d.statsMu.Unlock()
	return cs, nil
}

// deferFree queues an emptied segment for release at the next
// checkpoint barrier. A still-durable checkpoint or journal chain may
// reference blocks in the segment until that barrier commits, so
// releasing early lets new appends clobber state recovery depends on —
// UnsafeImmediateReuse opts into exactly that fault so the torture
// harness can demonstrate the corruption it causes.
func (d *Drive) deferFree(seg int64) {
	if d.opts.UnsafeImmediateReuse {
		_ = d.log.FreeSegment(seg)
		return
	}
	d.pendingFree[seg] = true
}

// ageObjectLocked releases o's history older than ageCut. It returns
// true if the object itself was reaped (its deletion aged out).
func (d *Drive) ageObjectLocked(o *object, ageCut types.Timestamp, cs *CleanStats) (bool, error) {
	// A retention policy with its own window overrides the drive-wide
	// cut for this object (recovery's usage rebuild applies the same
	// override, keeping the two classifications equivalent).
	win := d.effectiveWindow(o.id)
	if win != d.window {
		ageCut = vclock.TS(d.clk) - types.Timestamp(win)
	}
	if o.nextAge != 0 && ageCut < o.nextAge-types.Timestamp(win) {
		// Nothing can have aged since the last pass.
		return false, nil
	}
	if err := d.loadInode(o); err != nil {
		return false, err
	}
	// A deleted object whose death has aged out evaporates entirely.
	if o.ino.Deleted && o.ino.DeadTime != 0 && o.ino.DeadTime < ageCut && len(o.pending) == 0 {
		return true, d.reapObjectLocked(o, cs)
	}
	if o.jhead == journal.NilSector {
		return false, nil
	}
	// Read the chain oldest-last; collect sector addresses and entries.
	type sec struct {
		addr    journal.SectorAddr
		entries []journal.Entry
	}
	var chain []sec
	for addr := o.jhead; addr != journal.NilSector; {
		_, prev, entries, err := journal.ReadSector(d.log, addr)
		if err != nil {
			return false, err
		}
		chain = append(chain, sec{addr, entries})
		if addr == o.jtail {
			break
		}
		addr = prev
	}
	touched := false
	minRetained := types.Timestamp(1 << 62)
	newestSeen := types.Timestamp(0)
	// Phase A: release history deprecated by aged entries, oldest
	// first so the floor rises monotonically.
	for i := len(chain) - 1; i >= 0; i-- {
		for j := range chain[i].entries {
			e := &chain[i].entries[j]
			if e.Time > newestSeen {
				newestSeen = e.Time
			}
			if e.Time >= ageCut || e.Version <= o.floorVersion {
				if e.Time >= ageCut && e.Time < minRetained {
					minRetained = e.Time
				}
				continue
			}
			// The pointers this entry deprecated only support versions
			// older than the window; free them (masked slots through
			// their shared packed delta block, once per block).
			d.ageOutOldLocked(e, cs)
			if e.Version > o.floorVersion {
				o.floorVersion = e.Version
			}
			if e.Time > o.floorTime {
				o.floorTime = e.Time
			}
			cs.EntriesAged++
			touched = true
		}
	}
	// Landmark checkpoints age with the entries around them: their roots
	// are freed index-first (idempotent — a root leaves the index the
	// moment it is freed), and reconstructions now below the floor leave
	// the inode-at-time cache. Any sector Phase B prunes below holds
	// only sub-ageCut entries, so its landmarks are already gone.
	d.dropLandmarksBelow(o, ageCut)
	d.recon.dropBelow(o.id, o.floorTime)
	// Phase B: unlink trailing fully-aged sectors from the chain.
	allAged := func(s sec) bool {
		for j := range s.entries {
			if s.entries[j].Time >= ageCut {
				return false
			}
		}
		return true
	}
	// Count the trailing fully-aged sectors; pruning them requires an
	// inode checkpoint (the journal alone no longer rebuilds the
	// object), so it only pays off for long chains — short fully-aged
	// chains stay as cheap packed sectors and move via relocation.
	prunable := 0
	for i := len(chain) - 1; i > 0; i-- {
		if !allAged(chain[i]) {
			break
		}
		prunable++
	}
	const pruneThreshold = 8 // sectors; ~one checkpoint block's worth
	if prunable >= pruneThreshold {
		// Crash recovery must be anchored by a checkpoint covering the
		// retired entries before any sector leaves the chain.
		switch err := d.checkpointObjectLocked(o); {
		case err == nil:
			for i := len(chain) - 1; i >= len(chain)-prunable; i-- {
				d.unrefJSector(chain[i].addr)
				cs.SectorsFreed++
				o.jtail = chain[i-1].addr
				o.pruned = true
				touched = true
			}
		case errors.Is(err, types.ErrNoSpace):
			// No room for the anchoring checkpoint. Pruning is an
			// optimization; aborting the whole cleaning pass here would
			// wedge a full drive (the aging and reclamation that free
			// space need no log writes). Skip it this pass.
		default:
			return false, err
		}
	}
	if touched {
		cs.ObjectsAged++
	}
	// Schedule the next useful pass: nothing frees before the oldest
	// retained entry leaves the window. A fully-aged chain has nothing
	// left to free until a new entry arrives (appendEntry lowers the
	// schedule when one does).
	if minRetained == 1<<62 {
		o.nextAge = 1 << 62
	} else {
		o.nextAge = minRetained + types.Timestamp(win)
	}
	_ = newestSeen
	return false, nil
}

// reapObjectLocked removes an object whose deletion aged out of the
// window: final-version blocks, checkpoints, and the whole journal
// chain are freed, and the object disappears from the map.
func (d *Drive) reapObjectLocked(o *object, cs *CleanStats) error {
	d.dropAllLandmarks(o)
	d.recon.dropObject(o.id)
	for _, a := range o.ino.blocks {
		// These were deprecated at delete time.
		d.usage.ageOut(segOf(d.log, a))
		d.cache.drop(a)
		cs.BlocksAgedOut++
	}
	for _, a := range o.cpBlocks {
		d.usage.freeLive(segOf(d.log, a))
		d.cache.drop(a)
	}
	for addr := o.jhead; addr != journal.NilSector; {
		_, prev, entries, err := journal.ReadSector(d.log, addr)
		if err != nil {
			return err
		}
		// Any not-yet-aged deprecations inside the chain also release
		// their blocks now: every version of this object is gone.
		for i := range entries {
			e := &entries[i]
			if e.Version > o.floorVersion {
				d.ageOutOldLocked(e, cs)
			}
		}
		d.unrefJSector(addr)
		cs.SectorsFreed++
		if addr == o.jtail {
			break
		}
		addr = prev
	}
	if o.ino != nil {
		d.loaded.Add(-1)
	}
	d.lruMu.Lock()
	d.objLRU.Remove(o.lruEl)
	d.lruMu.Unlock()
	d.markClean(o)
	delete(d.objects, o.id)
	return nil
}

// reclaimSegmentsLocked frees every fully empty segment.
func (d *Drive) reclaimSegmentsLocked(cs *CleanStats) error {
	nSeg := d.log.NumSegments()
	cur := d.log.CurrentSegment()
	for seg := int64(0); seg < nSeg; seg++ {
		if seg == cur || d.pendingFree[seg] {
			continue
		}
		live, hist := d.usage.occupancy(seg)
		if live == 0 && hist == 0 {
			if isFree, err := d.segmentIsFreeLocked(seg); err != nil {
				return err
			} else if isFree {
				continue
			}
			d.deferFree(seg)
			cs.SegmentsFreed++
		}
	}
	return nil
}

// segmentIsFreeLocked reports whether seg is already in the free pool.
// seglog.FreeSegment is idempotent, but counting re-frees would skew
// cleaner statistics.
func (d *Drive) segmentIsFreeLocked(seg int64) (bool, error) {
	free := d.log.FreeSegments()
	if err := d.log.FreeSegment(seg); err != nil {
		return false, err
	}
	wasFree := d.log.FreeSegments() == free
	if !wasFree {
		// Undo the probe.
		d.log.MarkAllocated(seg)
	}
	return wasFree, nil
}

// compactLocked drains up to maxSegs fragmented segments by copying
// their live blocks to the log head.
func (d *Drive) compactLocked(ageCut types.Timestamp, cs *CleanStats, maxSegs int) error {
	type cand struct {
		seg  int64
		live int32
	}
	nSeg := d.log.NumSegments()
	cur := d.log.CurrentSegment()
	payload := int32(d.log.PayloadBlocks())
	// Under space pressure any non-full segment is fair game; with
	// plenty of free segments only cheap (mostly empty) victims are
	// worth moving — the classic cost-benefit trade. Journal-bearing
	// segments are relocated only under pressure: their chains re-land
	// at the log head, so eager relocation would just churn them.
	limit := payload / 4
	pressed := d.log.FreeSegments() < nSeg/5
	if pressed {
		limit = payload - 1
		maxSegs *= 4
	}
	var cands []cand
	for seg := int64(0); seg < nSeg; seg++ {
		if seg == cur {
			continue
		}
		live, hist := d.usage.occupancy(seg)
		if hist > 0 || live <= 0 || live > limit {
			// In-window history pins the segment.
			continue
		}
		if free, err := d.segmentIsFreeLocked(seg); err != nil || free {
			if err != nil {
				return err
			}
			continue
		}
		cands = append(cands, cand{seg, live})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].live < cands[j].live })
	if len(cands) > maxSegs {
		cands = cands[:maxSegs]
	}
	for _, c := range cands {
		if err := d.compactSegmentLocked(c.seg, pressed, cs); err != nil {
			return err
		}
	}
	return nil
}

// relocateJournalBlockLocked drains a journal block by relocating the
// complete retained chain of every object with a live sector inside it.
// Re-placing whole chains (oldest first, backward pointers re-linked)
// is the "cleaning objects rather than segments" cost the paper
// attributes to the S4 cleaner (§5.1.3). Returns false if some sector's
// owner cannot be relocated.
func (d *Drive) relocateJournalBlockLocked(blk seglog.BlockAddr, cs *CleanStats) (bool, error) {
	buf := make([]byte, seglog.BlockSize)
	if err := d.log.Read(blk, buf); err != nil {
		return false, err
	}
	owners := make(map[types.ObjectID]*object)
	for slot := 0; slot < journal.SectorsPerBlock; slot++ {
		data := buf[slot*journal.SectorSize : (slot+1)*journal.SectorSize]
		id, _, _, ok, err := journal.DecodeSector(data)
		if err != nil || !ok {
			continue
		}
		if o := d.objects[id]; o != nil {
			owners[id] = o
		}
	}
	for _, o := range owners {
		if err := d.relocateChainLocked(o, blk, cs); err != nil {
			return false, err
		}
	}
	d.logMu.Lock()
	drained := d.jblockRef[blk] == 0
	d.logMu.Unlock()
	return drained, nil
}

// relocateChainLocked re-places o's retained journal chain at the log
// head if any of its sectors lives in block avoid.
func (d *Drive) relocateChainLocked(o *object, avoid seglog.BlockAddr, cs *CleanStats) error {
	if o.jhead == journal.NilSector {
		return nil
	}
	type sec struct {
		addr    journal.SectorAddr
		prev    journal.SectorAddr
		entries []journal.Entry
	}
	var chain []sec
	hit := false
	for addr := o.jhead; addr != journal.NilSector; {
		_, prev, entries, err := journal.ReadSector(d.log, addr)
		if err != nil {
			return err
		}
		chain = append(chain, sec{addr, prev, entries})
		if addr.Block() == avoid {
			hit = true
		}
		if addr == o.jtail {
			break
		}
		addr = prev
	}
	if !hit {
		return nil
	}
	// Re-place oldest first, fixing the backward links.
	prev := chain[len(chain)-1].prev
	var newAddrs []journal.SectorAddr
	for i := len(chain) - 1; i >= 0; i-- {
		ptrs := make([]*journal.Entry, len(chain[i].entries))
		for j := range chain[i].entries {
			ptrs[j] = &chain[i].entries[j]
		}
		enc, err := journal.EncodeSector(o.id, prev, ptrs)
		if err != nil {
			return err
		}
		d.logMu.Lock()
		sa, err := d.placeSectorLocked(enc, vclock.TS(d.clk))
		d.logMu.Unlock()
		if err != nil {
			return err
		}
		newAddrs = append(newAddrs, sa)
		prev = sa
		cs.BlocksCopied++
	}
	for i := range chain {
		d.unrefJSector(chain[i].addr)
	}
	// Landmark index entries name chain positions; every sector just
	// moved, so re-register each flushed landmark at its new address.
	// The roots themselves are history blocks and did not move.
	for i := range chain {
		newSA := newAddrs[len(chain)-1-i]
		for j := range chain[i].entries {
			e := &chain[i].entries[j]
			if e.Type != journal.EntCheckpoint {
				continue
			}
			for k := range o.landmarks {
				ln := &o.landmarks[k]
				if ln.version == e.Version && ln.root == e.InodeAddr {
					ln.sector = newSA
				}
			}
		}
	}
	o.jhead = newAddrs[len(newAddrs)-1]
	o.jtail = newAddrs[0]
	o.jheadEntries = nil // decoded head image is stale; reread on demand
	return nil
}

// compactSegmentLocked moves every still-referenced block out of seg and
// frees it. Segments holding mid-chain journal sectors are skipped (they
// age out instead; rewriting chains here would cascade).
func (d *Drive) compactSegmentLocked(seg int64, pressed bool, cs *CleanStats) error {
	// A quarantined segment holds at least one block that failed its
	// checksum; compacting it would copy rot forward (or wedge the
	// cleaner on the same read error every pass). Leave it in place —
	// its healthy blocks stay readable and aging still reclaims them.
	if d.log.IsQuarantined(seg) {
		return nil
	}
	sum, ok, err := d.log.ReadSummary(seg)
	if err != nil || !ok {
		return err
	}
	// First scan: journal blocks with in-chain sectors pin the segment
	// unless space pressure justifies relocating their owners' chains
	// (relocated chains re-land at the log head, so doing this eagerly
	// would churn them forever).
	for i := range sum.Entries {
		addr := d.log.EntryAt(seg, i)
		d.logMu.Lock()
		inChain := d.jblockRef[addr] > 0
		d.logMu.Unlock()
		if sum.Entries[i].Kind == seglog.KindJournal && inChain {
			if !pressed {
				return nil
			}
			moved, err := d.relocateJournalBlockLocked(addr, cs)
			if err != nil {
				return err
			}
			if !moved {
				return nil // mid-chain sectors: wait for aging
			}
		}
	}
	touchedObjs := make(map[types.ObjectID]*object)
	// Live data blocks are gathered per object and relocated with one
	// vectored append each, so the survivors of a segment land
	// contiguously at the log head instead of paying the log mutex and
	// flush checks once per block.
	type reloc struct {
		o    *object
		vec  []seglog.VecEntry
		olds []seglog.BlockAddr
	}
	var relocs []*reloc
	byObj := make(map[types.ObjectID]*reloc)
	for i := range sum.Entries {
		se := &sum.Entries[i]
		addr := d.log.EntryAt(seg, i)
		switch se.Kind {
		case seglog.KindData:
			o := d.objects[se.Obj]
			if o == nil {
				continue
			}
			if err := d.loadInode(o); err != nil {
				return err
			}
			if o.ino.Block(se.Key) != addr {
				continue // dead or historical; aging handles it
			}
			data, err := d.readBlock(addr)
			if errors.Is(err, types.ErrCorrupt) {
				// The read verified and failed; the log has quarantined
				// the segment. Skip the block rather than relocate
				// garbage — it stays at its old address, still reported
				// as corrupt to any reader.
				continue
			}
			if err != nil {
				return err
			}
			r := byObj[se.Obj]
			if r == nil {
				r = &reloc{o: o}
				byObj[se.Obj] = r
				relocs = append(relocs, r)
			}
			r.vec = append(r.vec, seglog.VecEntry{Key: se.Key, Time: se.Time, Data: data[:se.Len]})
			r.olds = append(r.olds, addr)
		case seglog.KindInode:
			o := d.objects[se.Obj]
			if o == nil {
				continue
			}
			owned := false
			for _, a := range o.cpBlocks {
				if a == addr {
					owned = true
					break
				}
			}
			if !owned {
				continue // superseded checkpoint: already free
			}
			// Re-checkpoint the object at the log head; the old blocks
			// are freed by checkpointObjectLocked.
			if err := d.loadInode(o); err != nil {
				return err
			}
			o.cpVersion = 0 // force
			if err := d.checkpointObjectLocked(o); err != nil {
				return err
			}
			cs.BlocksCopied++
		case seglog.KindAudit:
			d.auditMu.Lock()
			idx := -1
			for j := range d.auditBlocks {
				if d.auditBlocks[j].addr == addr {
					idx = j
					break
				}
			}
			if idx < 0 {
				d.auditMu.Unlock()
				continue
			}
			data, err := d.readBlock(addr)
			if errors.Is(err, types.ErrCorrupt) {
				// Same containment as data blocks: never copy a failed
				// audit block forward, keep the original address so the
				// corruption stays visible to AuditRead.
				d.auditMu.Unlock()
				continue
			}
			if err != nil {
				d.auditMu.Unlock()
				return err
			}
			newAddr, err := d.log.Append(seglog.KindAudit, types.AuditObject, se.Key, se.Time, data[:se.Len])
			if err != nil {
				d.auditMu.Unlock()
				return err
			}
			d.auditBlocks[idx].addr = newAddr
			d.auditMu.Unlock()
			d.usage.liveBorn(segOf(d.log, newAddr))
			d.usage.freeLive(seg)
			d.cache.drop(addr)
			cs.BlocksCopied++
		case seglog.KindDelta:
			// Packed delta blocks are history from birth: while any
			// masked journal entry in the window references them, hist>0
			// pins the segment out of compaction entirely; once aged out
			// they are simply dead. Either way they are never relocated,
			// so a delta chain's addresses stay stable for its lifetime.
		}
	}
	for _, r := range relocs {
		newAddrs, err := d.log.AppendVec(seglog.KindData, r.o.id, r.vec...)
		if err != nil {
			return err
		}
		for j, newAddr := range newAddrs {
			r.o.ino.setBlock(r.vec[j].Key, newAddr)
			d.usage.liveBorn(segOf(d.log, newAddr))
			d.usage.freeLive(seg)
			d.cache.drop(r.olds[j])
			full := make([]byte, types.BlockSize)
			copy(full, r.vec[j].Data)
			d.cache.put(newAddr, full)
			cs.BlocksCopied++
		}
		// The journal's redo pointers now name the old location; only a
		// fresh checkpoint reconstructs this object, and the next
		// barrier must write one.
		r.o.pruned = true
		r.o.cpVersion = 0
		// Landmark roots and cached reconstructions snapshot block
		// addresses too — the relocated blocks may be live in historical
		// views — so both are invalidated wholesale. Recovery tolerates
		// the resulting chain tombstones: it revalidates each checkpoint
		// entry's root before trusting it.
		d.dropAllLandmarks(r.o)
		// The chain may still hold checkpoint entries with intact roots
		// that a full-scan recovery would re-index; flag the object so the
		// segment index records the list as reset and indexed recovery
		// re-walks the chain too (DESIGN.md §14).
		r.o.lmReset = true
		d.recon.dropObject(r.o.id)
		touchedObjs[r.o.id] = r.o
	}
	// Touched objects are refreshed by the checkpoint barrier that
	// precedes any reuse of the emptied segment (deferFree); nothing
	// more is needed here.
	_ = touchedObjs
	live, hist := d.usage.occupancy(seg)
	if live == 0 && hist == 0 && seg != d.log.CurrentSegment() {
		d.deferFree(seg)
		cs.SegmentsFreed++
		cs.SegmentsCleaned++
	}
	return nil
}
