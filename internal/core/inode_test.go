package core

import (
	"bytes"
	"math/rand"
	"testing"

	"s4/internal/seglog"
	"s4/internal/types"
)

// memReader serves checkpoint overflow blocks from a map.
type memReader map[seglog.BlockAddr][]byte

func (m memReader) Read(addr seglog.BlockAddr, buf []byte) error {
	copy(buf, m[addr])
	return nil
}

func roundTripInode(t *testing.T, in *Inode) *Inode {
	t.Helper()
	cb, err := in.buildCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	rd := memReader{}
	var addrs []seglog.BlockAddr
	for i, chunk := range cb.overflow {
		a := seglog.BlockAddr(1000 + i)
		blk := make([]byte, seglog.BlockSize)
		copy(blk, chunk)
		rd[a] = blk
		addrs = append(addrs, a)
	}
	root := cb.finishRoot(addrs)
	if len(root) > seglog.BlockSize {
		t.Fatalf("root block %d bytes", len(root))
	}
	got, over, err := decodeInodeRoot(rd, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(over) != len(addrs) {
		t.Fatalf("overflow addrs %d want %d", len(over), len(addrs))
	}
	return got
}

func TestInodeCheckpointRoundTrip(t *testing.T) {
	in := newInode(42, 12345, []types.ACLEntry{{User: 7, Perm: types.PermAll}})
	in.Version = 9
	in.Size = 123456
	in.ModTime = 99999
	in.Attr = []byte("opaque blob")
	for i := uint64(0); i < 40; i += 3 {
		in.setBlock(i, seglog.BlockAddr(5000+i))
	}
	got := roundTripInode(t, in)
	if got.ID != in.ID || got.Version != in.Version || got.Size != in.Size ||
		got.CreateTime != in.CreateTime || got.ModTime != in.ModTime ||
		!bytes.Equal(got.Attr, in.Attr) || len(got.ACL) != 1 || got.ACL[0] != in.ACL[0] {
		t.Fatalf("header mismatch: %+v vs %+v", got, in)
	}
	if got.NumBlocks() != in.NumBlocks() {
		t.Fatalf("blocks %d want %d", got.NumBlocks(), in.NumBlocks())
	}
	for i := uint64(0); i < 40; i++ {
		if got.Block(i) != in.Block(i) {
			t.Fatalf("block %d: %d want %d", i, got.Block(i), in.Block(i))
		}
	}
}

func TestInodeCheckpointLargeMapOverflows(t *testing.T) {
	in := newInode(1, 1, nil)
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		in.setBlock(uint64(i), seglog.BlockAddr(rnd.Uint64()>>16+1))
	}
	in.Size = 5000 * types.BlockSize
	cb, err := in.buildCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(cb.overflow) == 0 {
		t.Fatal("expected overflow blocks for a 5000-block map")
	}
	got := roundTripInode(t, in)
	for i := uint64(0); i < 5000; i++ {
		if got.Block(i) != in.Block(i) {
			t.Fatalf("block %d mismatch after overflow round trip", i)
		}
	}
}

func TestInodeDeletedRoundTrip(t *testing.T) {
	in := newInode(3, 10, nil)
	in.Deleted = true
	in.DeadTime = 777
	got := roundTripInode(t, in)
	if !got.Deleted || got.DeadTime != 777 {
		t.Fatalf("deleted state lost: %+v", got)
	}
}

func TestInodeCloneIsolation(t *testing.T) {
	in := newInode(1, 1, []types.ACLEntry{{User: 2, Perm: types.PermRead}})
	in.setBlock(5, 500)
	in.Attr = []byte("a")
	c := in.Clone()
	c.setBlock(5, 999)
	c.Attr[0] = 'z'
	c.ACL[0].Perm = types.PermAll
	if in.Block(5) != 500 || in.Attr[0] != 'a' || in.ACL[0].Perm != types.PermRead {
		t.Fatal("Clone shares state with original")
	}
}

func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(3 * types.BlockSize)
	blk := func(b byte) []byte { return bytes.Repeat([]byte{b}, types.BlockSize) }
	c.put(1, blk(1))
	c.put(2, blk(2))
	c.put(3, blk(3))
	if c.get(1) == nil {
		t.Fatal("block 1 evicted too early")
	}
	c.put(4, blk(4)) // evicts 2 (LRU; 1 was just touched)
	if c.get(2) != nil {
		t.Fatal("LRU order wrong: 2 should be evicted")
	}
	if c.get(1) == nil || c.get(3) == nil || c.get(4) == nil {
		t.Fatal("wrong entries evicted")
	}
	c.drop(3)
	if c.get(3) != nil {
		t.Fatal("drop failed")
	}
	c.dropRange(0, 10)
	if c.get(1) != nil || c.get(4) != nil {
		t.Fatal("dropRange failed")
	}
}

func TestBlockCacheDisabled(t *testing.T) {
	c := newBlockCache(0)
	c.put(1, make([]byte, types.BlockSize))
	if c.get(1) != nil {
		t.Fatal("disabled cache stored a block")
	}
}

func TestPermForUnionWithEveryone(t *testing.T) {
	in := newInode(1, 1, []types.ACLEntry{
		{User: 5, Perm: types.PermWrite},
		{User: types.EveryoneID, Perm: types.PermRead},
	})
	if p := in.PermFor(5); !p.Has(types.PermRead | types.PermWrite) {
		t.Fatalf("user 5 perm = %v", p)
	}
	if p := in.PermFor(6); !p.Has(types.PermRead) || p.Has(types.PermWrite) {
		t.Fatalf("user 6 perm = %v", p)
	}
}
