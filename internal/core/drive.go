// Package core implements the S4 self-securing storage drive — the
// paper's primary contribution (OSDI '00, §4).
//
// A Drive is a flat object store that versions every modification,
// audits every request, and guarantees that no client command can
// destroy history younger than the detection window. It combines:
//
//   - a log-structured on-disk layout (internal/seglog) so versioning
//     costs nothing at write time;
//   - journal-based metadata (internal/journal) so each version's
//     metadata is a compact entry rather than fresh inode/indirect
//     blocks;
//   - an append-only audit log (internal/audit);
//   - a cleaner that reclaims only space aged out of the window;
//   - history-pool abuse throttling (internal/throttle).
//
// All exported methods are safe for concurrent use.
//
// # Lock hierarchy
//
// The drive uses layered locks so that operations on different objects
// proceed in parallel and readers of one object proceed in parallel
// with each other (DESIGN.md §9). Acquisition order, outermost first:
//
//	Drive.mu (RWMutex)  >  object.mu (RWMutex)  >  Drive.logMu
//	                                            >  seglog.Log (internal)
//
// with auditMu, statsMu, lruMu, and the block and reconstruction
// caches' internal mutexes as leaves that never hold anything else
// except the seglog lock (audit flushes append to the log while holding
// auditMu).
//
//   - Per-object operations (Read/Write/GetAttr/...) hold Drive.mu for
//     reading for their entire duration and take object.mu for the one
//     object they touch. Two object locks are never held at once.
//   - Whole-drive operations (Create, CleanOnce, Checkpoint, Flush,
//     Close, SetWindow, CheckInvariants, eviction, partition updates,
//     recovery) hold Drive.mu for writing, which excludes every
//     per-object operation; they may then touch any object's fields
//     without taking object locks.
//
// Functions named *Locked document in their comment which of these
// locks the caller must hold.
package core

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"s4/internal/audit"
	"s4/internal/disk"
	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/throttle"
	"s4/internal/types"
	"s4/internal/vclock"
)

// Options configures a Drive at Format/Open time.
type Options struct {
	// Clock provides time; nil means the wall clock.
	Clock vclock.Clock
	// SegBlocks, CheckpointBlocks parameterize the segment log; zero
	// values take seglog defaults.
	SegBlocks        int
	CheckpointBlocks int
	// Window is the guaranteed detection window (§3.3). Zero defaults
	// to seven days. SetWindow adjusts it at run time.
	Window time.Duration
	// BlockCacheBytes bounds the drive's buffer cache (paper: 128MB).
	BlockCacheBytes int64
	// ObjectCacheCount bounds in-memory inodes (paper: a 32MB object
	// cache); beyond it, cold objects are checkpointed and evicted.
	ObjectCacheCount int
	// DisableAudit turns off request auditing (Fig. 6 ablation).
	DisableAudit bool
	// Conventional enables the conventional-versioning ablation: every
	// metadata change immediately writes a fresh inode checkpoint, the
	// way a versioning file system without journal-based metadata would
	// (Fig. 2). Journal entries are still kept for correctness.
	Conventional bool
	// Throttle overrides the history-pool abuse detector configuration.
	Throttle *throttle.Config
	// SurfaceThrottle changes how abuse penalties are served: instead of
	// sleeping in-band (holding the target object's lock for the whole
	// penalty), a penalized mutation fails fast with a
	// types.RetryableError wrapping ErrThrottled that carries the delay
	// as a retry-after hint. The RPC server sets this so the penalty is
	// served client-side by backoff rather than by a captive worker;
	// direct in-process callers keep the transparent sleep.
	SurfaceThrottle bool
	// PendingFlushEntries bounds unflushed journal entries per object
	// before a forced sector flush.
	PendingFlushEntries int
	// CheckpointEvery writes a landmark checkpoint entry into a hot
	// object's journal chain after every N real entries, bounding the
	// back-in-time reconstruction walk to ~N undos (DESIGN.md §12.1).
	// Each landmark costs one history-pool block until its entries age
	// out — the paper's history-pool-space vs. read-cost tradeoff made
	// tunable. Zero takes the default (32); negative disables landmarks.
	CheckpointEvery int
	// ReconCacheBytes bounds the reconstructed-inode cache (DESIGN.md
	// §12.2). Zero takes the default (4MB); negative disables it.
	ReconCacheBytes int64
	// MaxDeltaChain bounds how many consecutive overwrites of one block
	// may be stored as reverse deltas before a full-block keyframe is
	// forced (DESIGN.md §16). Longer chains save more history-pool
	// space but make deep back-in-time reads decode more slots. Zero
	// takes the default (8); negative disables delta encoding entirely
	// even for delta-enabled policies.
	MaxDeltaChain int
	// UnsafeImmediateReuse disables the deferred-reuse barrier: the
	// cleaner returns emptied segments to the allocator immediately
	// instead of holding them until the next checkpoint commits. This
	// deliberately re-creates the crash window the barrier exists to
	// close (DESIGN.md §6) so the torture harness can prove it catches
	// the resulting corruption. Never set outside tests.
	UnsafeImmediateReuse bool
	// DisableSegIndex ignores the persisted segment index at Open and
	// forces full-scan recovery (DESIGN.md §14). It affects only the
	// open path — checkpoints still write the index — so the
	// recovery-equivalence battery can open the same crash image both
	// ways and diff the results.
	DisableSegIndex bool
}

func (o *Options) fill(dev disk.Device) {
	if o.Clock == nil {
		o.Clock = vclock.Wall{}
	}
	if o.SegBlocks == 0 {
		o.SegBlocks = seglog.DefaultConfig().SegBlocks
	}
	if o.CheckpointBlocks == 0 {
		o.CheckpointBlocks = seglog.DefaultConfig().CheckpointBlocks
	}
	if o.Window == 0 {
		o.Window = 7 * 24 * time.Hour
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 16 << 20
	}
	if o.ObjectCacheCount == 0 {
		o.ObjectCacheCount = 4096
	}
	if o.PendingFlushEntries == 0 {
		o.PendingFlushEntries = 64
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 32
	}
	if o.ReconCacheBytes == 0 {
		o.ReconCacheBytes = 4 << 20
	}
	if o.MaxDeltaChain == 0 {
		o.MaxDeltaChain = 8
	}
	if o.Throttle == nil {
		cfg := throttle.DefaultConfig(dev.Capacity() / 2)
		o.Throttle = &cfg
	}
}

// object is the drive's in-memory state for one object.
//
// Fields are guarded by mu together with the drive lock: per-object
// operations hold Drive.mu for reading plus o.mu (shared for reads,
// exclusive for mutations); whole-drive operations hold Drive.mu for
// writing and may access the fields directly, since that excludes
// every per-object operation.
type object struct {
	id types.ObjectID
	mu sync.RWMutex

	ino         *Inode // nil when evicted (reloadable from cpBlocks)
	nextVersion uint64
	// Last durable full-metadata checkpoint.
	inodeRoot seglog.BlockAddr
	cpBlocks  []seglog.BlockAddr // overflow blocks + root
	cpVersion uint64
	// Journal chain: jhead is the newest flushed sector, jtail the
	// oldest retained one (the cleaner advances it as entries age).
	jhead, jtail journal.SectorAddr
	pending      []*journal.Entry // entries not yet in a flushed sector
	// Decoded image of the head sector, mirroring what is on disk at
	// jhead, so the per-sync merge path need not re-read and re-decode
	// it. nil jheadEntries means unknown (e.g. after recovery or chain
	// relocation): the merge falls back to reading the sector.
	jheadPrev    journal.SectorAddr
	jheadEntries []journal.Entry
	// floorVersion/floorTime: entries at or below have been aged out;
	// reads older than floorTime are unreconstructible.
	floorVersion uint64
	floorTime    types.Timestamp
	// nextAge is the earliest instant at which another aging pass can
	// free anything (oldest retained entry time + window); the cleaner
	// skips the object before then, keeping idle passes cheap.
	nextAge types.Timestamp
	// pruned is set once any journal sector has been removed from the
	// chain: the object can then no longer be rebuilt from the journal
	// alone and must keep an inode checkpoint.
	pruned bool
	// landmarks is the in-memory index of the checkpoint entries in the
	// journal chain, ascending by time (DESIGN.md §12.1). Invariant: it
	// holds exactly the checkpoint roots currently accounted as history
	// blocks — registration (appendEntry), sector fill-in
	// (flushJournalLocked), aging/reap/Flush removal (cleaner,
	// flushObjectLocked), and relocation re-registration
	// (relocateChainLocked) all preserve that. Persisted in the segment
	// index at checkpoint; full-scan recovery rebuilds it during
	// recountUsage's chain walk.
	landmarks     []landmark
	sinceLandmark int // real entries appended since the last landmark
	// lmReset records that compaction dropped this object's landmark
	// index wholesale (dropAllLandmarks after a forced data-block
	// relocation), so the in-memory list may be missing checkpoint
	// entries that are still in the chain. Full-scan recovery would
	// re-index those; persisting the flag in the segment index tells
	// indexed recovery to re-walk the chain the same way. The runtime
	// never reconverges the list on its own, so the flag stays set until
	// a recovery (which does) clears it.
	lmReset bool
	lruEl   *list.Element

	// Delta-history bookkeeping (DESIGN.md §16), all volatile: after a
	// restart every map is empty, which only disables conversions (the
	// next overwrite of each block keyframes) — correctness never
	// depends on them.
	//
	// birth records, per live data-block address, the version and time
	// of the entry that appended it. The write path may only
	// delta-convert an old block whose birth is known: the encoder needs
	// to prove no landmark image at or above that version references the
	// address it is about to free.
	birth map[seglog.BlockAddr]blockBirth
	// deltaRun counts, per file block index, how many consecutive
	// overwrites were stored as deltas; at MaxDeltaChain the next
	// overwrite keyframes and the run resets.
	deltaRun map[uint64]int
	// retainedVer is the newest version whose data the retention policy
	// keeps (zero = everything). Under landmark-only or on-close modes,
	// an outgoing version newer than retainedVer has its old blocks
	// dropped (journal entry kept, data freed) at the next overwrite.
	retainedVer uint64
}

// blockBirth is the provenance of one live data block: the journal
// entry (version, time) that appended it.
type blockBirth struct {
	ver uint64
	t   types.Timestamp
}

// landmark is one entry of an object's checkpoint index: a flushed
// EntCheckpoint journal entry plus the checkpoint root block it points
// at. sector is NilSector until the entry reaches a flushed sector; the
// reconstruction walk only anchors at flushed landmarks.
type landmark struct {
	time    types.Timestamp
	version uint64
	root    seglog.BlockAddr
	sector  journal.SectorAddr
}

// Stats reports drive activity counters.
type Stats struct {
	Ops             map[types.Op]int64
	VersionsMade    int64
	BytesWritten    int64
	BytesRead       int64
	HistoryBlocks   int64
	LiveBlocks      int64
	FreeSegments    int64
	TotalSegments   int64
	CacheHits       int64
	CacheMisses     int64
	AuditRecords    int64
	CleanerRuns     int64
	SegmentsFreed   int64
	BlocksCompacted int64
	ThrottleDelays  time.Duration

	// Commit-pipeline counters (DESIGN.md §11).
	CommitBatches  int64 // group commits led (one device force each)
	SyncsCoalesced int64 // Sync calls satisfied by another leader's force
	VecAppends     int64 // multi-block vectored append batches
	FlushStalls    int64 // appenders/syncers that waited out an in-flight flush
	DeviceForces   int64 // segment-log device flushes (partial or seal)
	LogAppends     int64 // payload blocks appended to the segment log
	DirtyObjects   int64 // objects currently in the sync dirty set

	// History-read-path counters (DESIGN.md §12).
	ReadOps            int64 // Read calls served (live or historical)
	HistoryWalkEntries int64 // journal entries visited by reconstruction walks
	LandmarkHits       int64 // reconstructions anchored at a landmark checkpoint
	ReconCacheHits     int64 // reconstructions served from the inode-at-time cache
	ReconCacheMisses   int64 // reconstructions that had to walk
	DeviceReads        int64 // segment-log device read I/Os
	VecReads           int64 // multi-block coalesced device reads

	// Restart counters (DESIGN.md §14). Set once by Open; reads are
	// reported through the same snapshot as everything else.
	IndexLoads            int64         // opens that anchored at a persisted segment index
	IndexFallbacks        int64         // opens that found a checkpoint but fell back to full scan
	RecoveryReplayEntries int64         // journal entries examined while recovering
	RecoveryTruncations   int64         // journal tails cut for naming un-durable blocks
	OpenDuration          time.Duration // wall-clock time spent in recovery at Open

	// Integrity counters (DESIGN.md §15). Detection/repair/quarantine
	// are merged from the segment log, which verifies every media read;
	// the scrub counters track the background sweeper.
	ScrubPasses         int64 // full-log scrub sweeps completed
	ScrubBlocks         int64 // blocks verified by scrub sweeps
	CorruptDetected     int64 // media blocks that failed their checksum
	CorruptRepaired     int64 // corrupt blocks healed from a redundant copy
	QuarantinedSegments int64 // segments withheld from reuse after corruption

	// History-pool delta counters (DESIGN.md §16).
	DeltaBlocksWritten    int64 // packed delta blocks appended to the log
	DeltaBytesSaved       int64 // history bytes avoided by delta conversion
	ChainKeyframes        int64 // conversions refused by the MaxDeltaChain bound
	PolicySkippedVersions int64 // outgoing versions whose data retention dropped
}

// Drive is an open S4 drive. See the package comment for the lock
// hierarchy its fields follow.
type Drive struct {
	dev  disk.Device
	log  *seglog.Log
	clk  vclock.Clock
	opts Options

	// mu is the drive-wide structural lock. Held shared by every
	// per-object operation for its whole duration (including lock-free
	// history walks: the shared hold is what keeps the cleaner and
	// Flush from rewriting sectors mid-walk); held exclusively by
	// whole-drive operations. objects, nextOID, window, and closed are
	// written only under the exclusive hold.
	mu      sync.RWMutex
	objects map[types.ObjectID]*object
	nextOID types.ObjectID
	window  time.Duration
	// policies maps object IDs to their retention policies; key 0 holds
	// the drive-wide default (DESIGN.md §16). Mutated only under the
	// exclusive drive lock; read under the shared lock. The table is
	// persisted through the PolicyTable reserved object, so both
	// recovery paths rebuild it for free.
	policies map[types.ObjectID]types.Policy
	// spaceReserve is the free-segment floor reserved for the
	// cleaner: client mutations are refused (ErrNoSpace) once the
	// allocator drops to it, so compaction and the checkpoint barrier
	// always have room to reclaim space. Set at open, read-only after.
	spaceReserve int64
	usage        *segUsage   // atomic counters; no lock needed
	cache        *blockCache // internally locked
	recon        *reconCache // internally locked (leaf), like cache
	closed       bool

	// Lock-free reconstruction-walk counters; the walks deliberately
	// hold no lock statsMu could pair with.
	landmarkHits atomic.Int64
	walkEntries  atomic.Int64

	// Background-scrubber state (scrub.go). scrubStop is non-nil while
	// the scrubber goroutine runs; Close signals it and waits.
	scrubPasses atomic.Int64
	scrubBlocks atomic.Int64
	scrubMu     sync.Mutex // guards scrubStop/scrubDone/scrubCursor
	scrubStop   chan struct{}
	scrubDone   chan struct{}
	scrubCursor int64 // next segment to verify; advisory, never durable

	// lruMu guards objLRU mutation. The list is traversed without lruMu
	// only under the exclusive drive lock (evictColdLocked), which
	// excludes every MoveToFront caller.
	lruMu  sync.Mutex
	objLRU *list.List // front = hottest; values are *object

	// logMu serializes multi-call journal-block sequences: several
	// objects' 512-byte sectors share each staged journal block, and
	// both sector placement and head-sector merges read-modify-write
	// shared blocks. jblockRef counts in-chain journal sectors per log
	// block (a block is freed when its count reaches zero); jstage is
	// the journal block currently accepting new sectors.
	logMu      sync.Mutex
	jblockRef  map[seglog.BlockAddr]int
	jstageAddr seglog.BlockAddr
	jstageUsed int

	// auditMu guards the audit pipeline. It is taken while holding
	// Drive.mu (either mode) and object locks, never the reverse.
	auditMu       sync.Mutex
	auditBuf      []audit.Record
	auditBufBytes int // running encoded size of auditBuf
	auditSeq      uint64
	auditBlocks   []auditBlockRef

	// Commit-ticket state for group commit (DESIGN.md §11). Every Sync
	// takes the next ticket (commitSeq); one leader at a time flushes
	// the dirty set and forces the log for every ticket taken before
	// its batch closed, then advances commitDone. Followers whose
	// ticket is covered return without touching the device. commitMu
	// is a leaf: it is never held across object locks, logMu, or any
	// log call — only across the ticket bookkeeping and the wait.
	commitMu   sync.Mutex
	commitCond *sync.Cond
	commitSeq  int64 // last issued commit ticket
	commitDone int64 // every ticket ≤ commitDone is durable
	committing bool  // a leader's flush is in flight

	// dirtyMu guards dirtyObjs, the set of objects with pending
	// journal entries; Sync flushes exactly this set instead of
	// walking the whole object map. Leaf lock, taken under o.mu.
	// Invariant: an object with len(pending) > 0 is always in the set
	// (the converse may briefly not hold; flushers re-check pending
	// under o.mu).
	dirtyMu   sync.Mutex
	dirtyObjs map[types.ObjectID]*object

	// statsMu guards stats. Cache hit/miss counters live inside the
	// block cache and are merged in DriveStats.
	statsMu sync.Mutex
	stats   Stats

	thr *throttle.Throttle

	loaded atomic.Int32 // objects with a materialized inode
	// pendingFree holds segments emptied by the cleaner; they return
	// to the allocator only after the next object-map checkpoint, so a
	// crash can never find the checkpointed state referencing a reused
	// segment. Touched only under the exclusive drive lock.
	pendingFree map[int64]bool

	// Transient indexed-recovery state (DESIGN.md §14); non-nil only
	// while recover() runs with a usable segment index, cleared before
	// Open returns. recPreJhead/recSnapVer snapshot each object's
	// checkpoint-time chain head and newest applied version so the
	// post-replay passes know where the replayed tail ends; recTouched
	// marks objects whose chains the roll-forward scan advanced.
	recPreJhead map[types.ObjectID]journal.SectorAddr
	recSnapVer  map[types.ObjectID]uint64
	recTouched  map[types.ObjectID]bool
	// recSumCover caches each probed segment's durable-summary entry
	// count. The full recount's sweep classifies only summary-listed
	// blocks, so a tail block whose payload survived a crash but whose
	// summary write did not is referenced by chains yet never counted;
	// indexed recovery gates its usage deltas on the same coverage.
	recSumCover map[int64]int
	// recDrop is the per-object poison floor: the lowest version whose
	// journal entry named un-durable blocks during replay. That entry
	// and everything at or above its version are an unacknowledged
	// tail, truncated out of the chain so the recovered state is an
	// exact prefix of the op sequence. Zero (absent) means unpoisoned.
	recDrop   map[types.ObjectID]uint64
	recReplay int64 // journal entries examined during this recovery
}

type auditBlockRef struct {
	addr     seglog.BlockAddr
	firstSeq uint64
	lastTime types.Timestamp
}

// Format initializes dev as an empty S4 drive and returns it opened.
func Format(dev disk.Device, opts Options) (*Drive, error) {
	opts.fill(dev)
	if err := seglog.Format(dev, seglog.Config{
		SegBlocks:        opts.SegBlocks,
		CheckpointBlocks: opts.CheckpointBlocks,
	}); err != nil {
		return nil, err
	}
	return Open(dev, opts)
}

// Open attaches to a formatted device, performing crash recovery if the
// log extends past the last checkpoint.
func Open(dev disk.Device, opts Options) (*Drive, error) {
	opts.fill(dev)
	log, err := seglog.Open(dev)
	if err != nil {
		return nil, err
	}
	d := &Drive{
		dev:         dev,
		log:         log,
		clk:         opts.Clock,
		opts:        opts,
		objects:     make(map[types.ObjectID]*object),
		policies:    make(map[types.ObjectID]types.Policy),
		objLRU:      list.New(),
		nextOID:     types.FirstUserObject,
		window:      opts.Window,
		usage:       newSegUsage(log.NumSegments()),
		cache:       newBlockCache(opts.BlockCacheBytes),
		recon:       newReconCache(opts.ReconCacheBytes),
		jblockRef:   make(map[seglog.BlockAddr]int),
		pendingFree: make(map[int64]bool),
		dirtyObjs:   make(map[types.ObjectID]*object),
		thr:         throttle.New(*opts.Throttle),
	}
	d.commitCond = sync.NewCond(&d.commitMu)
	// ~1.5% of the log, clamped so toy-sized test logs keep one spare
	// segment and huge devices don't strand space.
	d.spaceReserve = log.NumSegments() / 64
	if d.spaceReserve < 1 {
		d.spaceReserve = 1
	} else if d.spaceReserve > 64 {
		d.spaceReserve = 64
	}
	d.stats.Ops = make(map[types.Op]int64)
	// Wall clock, not d.clk: OpenDuration measures real recovery work
	// (the restart bench compares it across index on/off), and the
	// virtual clock does not advance during recovery.
	openStart := time.Now()
	if err := d.recover(); err != nil {
		return nil, err
	}
	d.stats.OpenDuration = time.Since(openStart)
	d.stats.RecoveryReplayEntries = d.recReplay
	if _, ok := d.objects[types.PartitionTable]; !ok {
		// Fresh drive: create the partition table object, admin-owned,
		// world-readable (PList/PMount are mediated by the drive).
		d.createObjectLocked(types.PartitionTable, types.AdminCred(), []types.ACLEntry{
			{User: types.AdminUser, Perm: types.PermAll},
			{User: types.EveryoneID, Perm: types.PermRead},
		}, nil)
	}
	return d, nil
}

// Close flushes all state and detaches.
func (d *Drive) Close() error {
	d.StopScrubber()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	if err := d.checkpointLocked(); err != nil {
		return err
	}
	d.closed = true
	return nil
}

// Window returns the current detection window.
func (d *Drive) Window() time.Duration {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.window
}

// Now returns the drive clock's current timestamp.
func (d *Drive) Now() types.Timestamp { return vclock.TS(d.clk) }

// registerObject installs a fresh object with its initial inode.
// Caller holds the exclusive drive lock.
func (d *Drive) registerObject(id types.ObjectID, now types.Timestamp, acl []types.ACLEntry) *object {
	o := &object{id: id, ino: newInode(id, now, acl), nextVersion: 2}
	d.lruMu.Lock()
	o.lruEl = d.objLRU.PushFront(o)
	d.lruMu.Unlock()
	d.objects[id] = o
	d.loaded.Add(1)
	return o
}

var errStopIteration = errors.New("stop")

// ---- Permission checks ----

func (d *Drive) checkPerm(cred types.Cred, in *Inode, need types.Perm) error {
	if cred.Admin {
		return nil
	}
	if in.PermFor(cred.User).Has(need) {
		return nil
	}
	return types.ErrPerm
}

// checkReserved rejects direct client mutation of drive-owned objects.
func checkReserved(cred types.Cred, id types.ObjectID) error {
	if id == types.AuditObject {
		return types.ErrReadOnly
	}
	if id == types.PartitionTable && !cred.Admin {
		return types.ErrReadOnly
	}
	if id == types.PolicyTable && !cred.Admin {
		return types.ErrReadOnly
	}
	return nil
}

// ---- Object lookup / loading ----

// getObject looks up an object and materializes its inode. Caller
// holds the exclusive drive lock (per-object paths use getObjectShared
// plus lockObjectRead/lockObjectWrite instead).
func (d *Drive) getObject(id types.ObjectID) (*object, error) {
	o, ok := d.objects[id]
	if !ok {
		return nil, types.ErrNoObject
	}
	if err := d.loadInode(o); err != nil {
		return nil, err
	}
	d.lruMu.Lock()
	d.objLRU.MoveToFront(o.lruEl)
	d.lruMu.Unlock()
	return o, nil
}

// getObjectShared looks up an object under the shared drive lock. The
// returned object's inode may be unloaded; lockObjectRead or
// lockObjectWrite materializes it under the object lock.
func (d *Drive) getObjectShared(id types.ObjectID) (*object, error) {
	o, ok := d.objects[id]
	if !ok {
		return nil, types.ErrNoObject
	}
	d.lruMu.Lock()
	d.objLRU.MoveToFront(o.lruEl)
	d.lruMu.Unlock()
	return o, nil
}

// lockObjectRead takes o.mu shared with the inode materialized; on
// success the caller must o.mu.RUnlock. Caller holds the shared drive
// lock, which excludes eviction, so a loaded inode stays loaded.
func (d *Drive) lockObjectRead(o *object) error {
	for {
		o.mu.RLock()
		if o.ino != nil {
			return nil
		}
		o.mu.RUnlock()
		o.mu.Lock()
		err := d.loadInode(o)
		o.mu.Unlock()
		if err != nil {
			return err
		}
	}
}

// lockObjectWrite takes o.mu exclusively with the inode materialized;
// on success the caller must o.mu.Unlock. Caller holds the shared
// drive lock.
func (d *Drive) lockObjectWrite(o *object) error {
	o.mu.Lock()
	if err := d.loadInode(o); err != nil {
		o.mu.Unlock()
		return err
	}
	return nil
}

// loadInode materializes o.ino: from its checkpoint if one exists, or
// by replaying the complete journal chain — journal-based metadata
// means the journal alone can rebuild any object whose chain still
// reaches its creation (§4.2.2). Caller holds o.mu exclusively or the
// exclusive drive lock.
func (d *Drive) loadInode(o *object) error {
	if o.ino != nil {
		return nil
	}
	if o.inodeRoot == seglog.NilAddr {
		if o.pruned {
			return fmt.Errorf("core: %v has a pruned chain and no checkpoint: %w", o.id, types.ErrCorrupt)
		}
		var entries []journal.Entry
		err := journal.WalkBackward(d.log, o.id, o.jhead, func(e *journal.Entry) (bool, error) {
			entries = append(entries, *e)
			return false, nil
		})
		if err != nil {
			return err
		}
		if len(entries) == 0 || entries[len(entries)-1].Type != journal.EntCreate {
			return fmt.Errorf("core: %v journal does not reach creation: %w", o.id, types.ErrCorrupt)
		}
		in := newInode(o.id, entries[len(entries)-1].Time, nil)
		for i := len(entries) - 1; i >= 0; i-- {
			e := &entries[i]
			if e.Type == journal.EntCreate {
				in.CreateTime, in.ModTime = e.Time, e.Time
				continue
			}
			in.redo(e)
		}
		o.ino = in
		d.loaded.Add(1)
		return nil
	}
	root := make([]byte, seglog.BlockSize)
	if err := d.log.Read(o.inodeRoot, root); err != nil {
		return err
	}
	in, _, err := decodeInodeRoot(d.log, root)
	if err != nil {
		return err
	}
	o.ino = in
	d.loaded.Add(1)
	return nil
}

// journalComplete reports whether o's entire state is reconstructible
// from its retained journal chain alone (no checkpoint required).
func (o *object) journalComplete() bool {
	return o.inodeRoot == seglog.NilAddr && !o.pruned && len(o.pending) == 0
}

// evictColdLocked checkpoints and drops inodes beyond the object cache
// limit, coldest first. Unflushed journal entries are flushed so the
// checkpoint is complete and the inode can be dropped safely. Caller
// holds the exclusive drive lock.
func (d *Drive) evictColdLocked() error {
	if int(d.loaded.Load()) <= d.opts.ObjectCacheCount {
		return nil
	}
	for el := d.objLRU.Back(); el != nil && int(d.loaded.Load()) > d.opts.ObjectCacheCount; {
		prev := el.Prev()
		o := el.Value.(*object)
		if o.ino != nil {
			if err := d.flushJournalLocked(o); err != nil {
				return err
			}
			// Journal-complete objects reload from their chain; only
			// chain-pruned or already-checkpointed ones need a fresh
			// metadata copy on disk.
			if !o.journalComplete() {
				if err := d.checkpointObjectLocked(o); err != nil {
					return err
				}
			}
			o.ino = nil
			d.loaded.Add(-1)
		}
		el = prev
	}
	return nil
}

// maybeEvict trims the object cache after an operation that may have
// materialized inodes. It runs after the shared lock is released:
// eviction touches other objects and so needs the exclusive lock.
func (d *Drive) maybeEvict() error {
	if int(d.loaded.Load()) <= d.opts.ObjectCacheCount {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	return d.evictColdLocked()
}

// ---- Journal machinery ----

// appendEntry applies e to the object's current inode and queues it for
// the next journal-sector flush. It also maintains usage accounting for
// the block pointers the entry deprecates. Caller holds o.mu
// exclusively (plus the shared drive lock) or the exclusive drive lock.
func (d *Drive) appendEntry(o *object, e *journal.Entry) {
	// Deprecate overwritten/removed blocks into the history pool.
	// DeltaMask'd slots hold packed-slot references, not addresses —
	// their packed block was already born-and-deprecated by the
	// conversion; Nil slots (retention skips) have nothing to keep.
	for i, old := range e.Old {
		if old == seglog.NilAddr || e.DeltaMask&(1<<uint(i)) != 0 {
			continue
		}
		d.usage.deprecate(segOf(d.log, old))
		delete(o.birth, old)
	}
	if e.Type == journal.EntWrite {
		// Record each fresh block's provenance; the delta converter
		// later needs to prove no landmark references an address it is
		// about to free (DESIGN.md §16).
		if o.birth == nil {
			o.birth = make(map[seglog.BlockAddr]blockBirth)
		}
		for _, a := range e.New {
			if a != seglog.NilAddr {
				o.birth[a] = blockBirth{ver: e.Version, t: e.Time}
			}
		}
	}
	if e.Type == journal.EntDelete {
		// Deletion deprecates every block of the final version.
		for _, a := range o.ino.blocks {
			d.usage.deprecate(segOf(d.log, a))
		}
	}
	if e.Type == journal.EntRevive {
		// Revival is deletion undone: the final version's blocks return
		// from the history pool to live service.
		for _, a := range o.ino.blocks {
			d.usage.undeprecate(segOf(d.log, a))
		}
	}
	o.ino.redo(e)
	o.pending = append(o.pending, e)
	d.markDirty(o)
	if birth := e.Time + types.Timestamp(d.effectiveWindow(o.id)); o.nextAge == 0 || birth < o.nextAge {
		// This entry becomes ageable once it leaves the window; any
		// cleaner visit before then would be wasted, and a fully-aged
		// object parked at "never" must wake when new history arrives.
		o.nextAge = birth
	}
	d.statsMu.Lock()
	d.stats.VersionsMade++
	d.statsMu.Unlock()
	if d.opts.Conventional {
		// Ablation: versioning file systems without journal-based
		// metadata write fresh metadata per update (§4.2.2, Fig. 2).
		_ = d.checkpointObjectLocked(o)
	}
	d.maybeEmitLandmarkLocked(o, e)
	if len(o.pending) >= d.opts.PendingFlushEntries {
		_ = d.flushJournalLocked(o)
	}
}

// maybeEmitLandmarkLocked writes a landmark checkpoint entry after
// every CheckpointEvery real entries on a hot chain (DESIGN.md §12.1):
// a full inode image appended to the log plus an EntCheckpoint journal
// entry pointing at it, so back-in-time reconstruction can anchor
// mid-chain instead of undoing from the live head. The root block is
// accounted as history from birth — it ages out of the pool together
// with the entries around it. Landmarks are an optimization: any
// failure to emit one (no space, oversized inode) is silently skipped.
// Caller holds o.mu exclusively (plus the shared drive lock) or the
// exclusive drive lock; e is the just-appended triggering entry.
func (d *Drive) maybeEmitLandmarkLocked(o *object, e *journal.Entry) {
	if d.opts.CheckpointEvery <= 0 || e.Type == journal.EntCheckpoint {
		return
	}
	o.sinceLandmark++
	if o.sinceLandmark < d.opts.CheckpointEvery {
		return
	}
	o.sinceLandmark = 0
	cb, err := o.ino.buildCheckpoint()
	if err != nil || len(cb.overflow) > 0 {
		// The index tracks exactly one root block per landmark; inodes
		// whose block map needs overflow blocks are skipped (their data
		// reads dominate the walk anyway).
		return
	}
	root := cb.finishRoot(nil)
	rootAddr, err := d.log.Append(seglog.KindInode, o.id, o.ino.Version, o.ino.ModTime, root)
	if err != nil {
		return
	}
	// Born live, deprecated immediately: the root belongs to the
	// history pool from the start, keeping its segment off-limits to
	// compaction and reclamation until the landmark ages out.
	seg := segOf(d.log, rootAddr)
	d.usage.liveBorn(seg)
	d.usage.deprecate(seg)
	// The entry shares the trigger's version and time, so it ages out of
	// the window at the same instant. Appended directly to pending (not
	// through appendEntry): a landmark is not a version transition.
	o.pending = append(o.pending, &journal.Entry{
		Type: journal.EntCheckpoint, Version: o.ino.Version, Time: e.Time,
		User: e.User, Client: e.Client, InodeAddr: rootAddr,
	})
	o.landmarks = append(o.landmarks, landmark{
		time: e.Time, version: o.ino.Version, root: rootAddr,
	})
	// A landmark version is retained in every policy mode: it is the
	// anchor deep reads reconstruct from, so retention may never thin it.
	if o.ino.Version > o.retainedVer {
		o.retainedVer = o.ino.Version
	}
}

// registerLandmarkSectors records the chain position of checkpoint
// entries that just reached a flushed sector; only flushed landmarks
// can anchor reconstruction walks. Caller holds o.mu exclusively (or
// the exclusive drive lock).
func (o *object) registerLandmarkSectors(entries []*journal.Entry, sa journal.SectorAddr) {
	for _, e := range entries {
		if e.Type != journal.EntCheckpoint {
			continue
		}
		for i := range o.landmarks {
			ln := &o.landmarks[i]
			if ln.sector == journal.NilSector && ln.version == e.Version && ln.root == e.InodeAddr {
				ln.sector = sa
			}
		}
	}
}

// dropLandmarksBelow frees the checkpoint roots of landmarks older than
// cut and removes them from the index — the landmark analog of entry
// aging. Index-driven freeing is idempotent by construction: a root
// leaves the index the moment it is freed. Caller holds the exclusive
// drive lock.
func (d *Drive) dropLandmarksBelow(o *object, cut types.Timestamp) {
	kept := o.landmarks[:0]
	for _, ln := range o.landmarks {
		if ln.time < cut {
			d.usage.ageOut(segOf(d.log, ln.root))
			d.cache.drop(ln.root)
			continue
		}
		kept = append(kept, ln)
	}
	o.landmarks = kept
}

// dropAllLandmarks frees every checkpoint root in the index and clears
// it — used when the whole chain is rewritten (Flush) or the object is
// reaped. Caller holds the exclusive drive lock.
func (d *Drive) dropAllLandmarks(o *object) {
	for _, ln := range o.landmarks {
		d.usage.ageOut(segOf(d.log, ln.root))
		d.cache.drop(ln.root)
	}
	o.landmarks = nil
}

// markDirty records that o has pending journal entries. Callers hold
// o.mu exclusively (or the exclusive drive lock), which serializes an
// object's dirty-set transitions.
func (d *Drive) markDirty(o *object) {
	d.dirtyMu.Lock()
	d.dirtyObjs[o.id] = o
	d.dirtyMu.Unlock()
}

// markClean removes o from the dirty set. Callers hold o.mu
// exclusively (or the exclusive drive lock) and have verified that
// o.pending is empty.
func (d *Drive) markClean(o *object) {
	d.dirtyMu.Lock()
	delete(d.dirtyObjs, o.id)
	d.dirtyMu.Unlock()
}

// readJSector fetches one 512-byte journal sector by sub-block address.
func (d *Drive) readJSector(sa journal.SectorAddr) (prev journal.SectorAddr, entries []journal.Entry, err error) {
	obj, prev, entries, err := journal.ReadSector(d.log, sa)
	_ = obj
	return prev, entries, err
}

// unrefJSector drops one in-chain sector reference; the shared journal
// block is released when its last sector goes. It acquires logMu, so
// the caller must not hold it.
func (d *Drive) unrefJSector(sa journal.SectorAddr) {
	blk := sa.Block()
	d.logMu.Lock()
	d.jblockRef[blk]--
	free := d.jblockRef[blk] <= 0
	if free {
		delete(d.jblockRef, blk)
	}
	d.logMu.Unlock()
	if free {
		d.usage.freeLive(segOf(d.log, blk))
		d.cache.drop(blk)
	}
}

// placeSectorLocked writes one encoded journal sector into the staging
// journal block, starting a fresh block when the current one is full or
// sealed. Up to journal.SectorsPerBlock sectors — usually belonging to
// different objects — share each block, which is what keeps
// journal-based metadata compact (§4.2.2). Caller holds logMu.
func (d *Drive) placeSectorLocked(sec []byte, newest types.Timestamp) (journal.SectorAddr, error) {
	if d.jstageAddr != seglog.NilAddr && d.jstageUsed < journal.SectorsPerBlock {
		// RewriteRange re-checks openness under the log mutex: a
		// concurrent appender may seal the staging block's segment at any
		// time, in which case we fall through and start a fresh block.
		pad := make([]byte, journal.SectorSize)
		copy(pad, sec)
		slot := d.jstageUsed
		ok, err := d.log.RewriteRange(d.jstageAddr, slot*journal.SectorSize, pad)
		if err != nil {
			return 0, err
		}
		if ok {
			d.jstageUsed++
			d.jblockRef[d.jstageAddr]++
			d.cache.drop(d.jstageAddr)
			return journal.MakeSectorAddr(d.jstageAddr, slot), nil
		}
	}
	blk := make([]byte, seglog.BlockSize)
	copy(blk, sec)
	addr, err := d.log.Append(seglog.KindJournal, types.NoObject, 0, newest, blk)
	if err != nil {
		return 0, err
	}
	d.usage.liveBorn(segOf(d.log, addr))
	d.jstageAddr, d.jstageUsed = addr, 1
	d.jblockRef[addr]++
	return journal.MakeSectorAddr(addr, 0), nil
}

// flushJournalLocked packs o.pending into 512-byte journal sectors and
// links them onto the object's backward chain. While the head sector
// still sits in the open segment and has room, new entries are merged
// into it in place, so a busy object accumulates one packed sector
// rather than one per sync. Caller holds o.mu exclusively (plus the
// shared drive lock) or the exclusive drive lock; logMu is acquired
// here because the head merge and sector placement read-modify-write
// journal blocks shared with other objects.
func (d *Drive) flushJournalLocked(o *object) error {
	d.logMu.Lock()
	defer d.logMu.Unlock()
	if len(o.pending) > 0 && o.jhead != journal.NilSector && d.log.InOpenSegment(o.jhead.Block()) {
		prev, existing := o.jheadPrev, o.jheadEntries
		if existing == nil {
			// Cold head (recovery, relocation): read it once; successful
			// merges below keep the decoded image current from then on.
			var err error
			prev, existing, err = d.readJSector(o.jhead)
			if err != nil {
				return err
			}
		}
		room := journal.SectorCapacity
		for i := range existing {
			room -= existing[i].EncodedSize()
		}
		merged := make([]*journal.Entry, 0, len(existing)+len(o.pending))
		for i := range existing {
			merged = append(merged, &existing[i])
		}
		n := 0
		for n < len(o.pending) {
			sz := o.pending[n].EncodedSize()
			if sz > room {
				break
			}
			room -= sz
			merged = append(merged, o.pending[n])
			n++
		}
		if n > 0 {
			sec, err := journal.EncodeSector(o.id, prev, merged)
			if err != nil {
				return err
			}
			// RewriteRange re-checks openness atomically: data-block
			// appends run outside logMu and may seal the head's segment
			// between the check above and here. On ok=false the merge is
			// abandoned and pending drains through fresh sectors below.
			pad := make([]byte, journal.SectorSize)
			copy(pad, sec)
			ok, err := d.log.RewriteRange(o.jhead.Block(), o.jhead.Slot()*journal.SectorSize, pad)
			if err != nil {
				return err
			}
			if ok {
				d.cache.drop(o.jhead.Block())
				o.registerLandmarkSectors(o.pending[:n], o.jhead)
				for i := 0; i < n; i++ {
					existing = append(existing, *o.pending[i])
				}
				o.jheadPrev, o.jheadEntries = prev, existing
				o.pending = append(o.pending[:0], o.pending[n:]...)
			}
		}
	}
	for len(o.pending) > 0 {
		// Greedily fill one sector.
		room := journal.SectorCapacity
		n := 0
		for n < len(o.pending) {
			sz := o.pending[n].EncodedSize()
			if sz > room {
				break
			}
			room -= sz
			n++
		}
		if n == 0 {
			return fmt.Errorf("core: journal entry larger than a sector: %w", types.ErrTooLarge)
		}
		sec, err := journal.EncodeSector(o.id, o.jhead, o.pending[:n])
		if err != nil {
			return err
		}
		sa, err := d.placeSectorLocked(sec, o.pending[n-1].Time)
		if err != nil {
			return err
		}
		o.registerLandmarkSectors(o.pending[:n], sa)
		ents := make([]journal.Entry, n)
		for i := 0; i < n; i++ {
			ents[i] = *o.pending[i]
		}
		o.jheadPrev, o.jheadEntries = o.jhead, ents
		o.jhead = sa
		if o.jtail == journal.NilSector {
			o.jtail = sa
		}
		o.pending = append(o.pending[:0], o.pending[n:]...)
	}
	d.markClean(o)
	return nil
}

// checkpointObjectLocked writes a full metadata copy of o to the log and
// releases the superseded checkpoint blocks (journal-based metadata
// makes stale checkpoints disposable; only journal aging prunes
// history, §4.2.2). Caller holds o.mu exclusively (plus the shared
// drive lock) or the exclusive drive lock.
func (d *Drive) checkpointObjectLocked(o *object) error {
	if o.ino == nil || o.cpVersion == o.ino.Version && o.inodeRoot != seglog.NilAddr {
		return nil
	}
	cb, err := o.ino.buildCheckpoint()
	if err != nil {
		return err
	}
	vec := make([]seglog.VecEntry, 0, len(cb.overflow))
	for _, chunk := range cb.overflow {
		vec = append(vec, seglog.VecEntry{Key: o.ino.Version, Time: o.ino.ModTime, Data: chunk})
	}
	overAddrs, err := d.log.AppendVec(seglog.KindInode, o.id, vec...)
	if err != nil {
		return err
	}
	for _, a := range overAddrs {
		d.usage.liveBorn(segOf(d.log, a))
	}
	root := cb.finishRoot(overAddrs)
	rootAddr, err := d.log.Append(seglog.KindInode, o.id, o.ino.Version, o.ino.ModTime, root)
	if err != nil {
		return err
	}
	d.usage.liveBorn(segOf(d.log, rootAddr))
	// Free the superseded checkpoint immediately.
	for _, a := range o.cpBlocks {
		d.usage.freeLive(segOf(d.log, a))
		d.cache.drop(a)
	}
	o.inodeRoot = rootAddr
	o.cpBlocks = append(append([]seglog.BlockAddr(nil), overAddrs...), rootAddr)
	o.cpVersion = o.ino.Version
	return nil
}

// ---- Data block I/O ----

// readBlock returns the contents of the log block at addr (always
// BlockSize bytes; the log zero-pads short payloads). The cache and
// the segment log are internally synchronized, so no drive or object
// lock is needed beyond whatever keeps addr referenced.
func (d *Drive) readBlock(addr seglog.BlockAddr) ([]byte, error) {
	if b := d.cache.get(addr); b != nil {
		return b, nil
	}
	buf := make([]byte, seglog.BlockSize)
	if err := d.log.Read(addr, buf); err != nil {
		return nil, err
	}
	d.cache.put(addr, buf)
	return buf, nil
}

// ---- Public operations (Table 1) ----

// Create makes a new object. An empty ACL defaults to full rights for
// the creating user (including history recovery — the Recovery flag —
// which the user may later clear with SetACL, §3.4). Creation mutates
// the object map, so it is a whole-drive operation.
func (d *Drive) Create(cred types.Cred, acl []types.ACLEntry, attr []byte) (types.ObjectID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, types.ErrDriveStopped
	}
	if len(acl) > types.MaxACLEntries || len(attr) > types.MaxAttrLen {
		d.auditOp(cred, types.OpCreate, 0, 0, 0, "", types.ErrTooLarge)
		return 0, types.ErrTooLarge
	}
	if err := d.throttle(cred); err != nil {
		d.auditOp(cred, types.OpCreate, 0, 0, 0, "", err)
		return 0, err
	}
	if len(acl) == 0 {
		acl = []types.ACLEntry{{User: cred.User, Perm: types.PermAll}}
	}
	id := d.nextOID
	d.nextOID++
	d.createObjectLocked(id, cred, acl, attr)
	d.auditOp(cred, types.OpCreate, id, 0, 0, "", nil)
	err := d.evictColdLocked()
	return id, err
}

// CreateWithID makes a new object under a caller-chosen ID. It exists
// for the shard router, which owns ID allocation so that the
// consistent-hash ring can place an object before any shard has seen
// it; a single drive allocating its own IDs would collide with its
// siblings. IDs below types.FirstUserObject are reserved (ErrInval),
// and an ID already in the object map — live or deleted — is refused
// (ErrExist) rather than silently reused: reuse would splice two
// objects' histories together and blind intrusion diagnosis. nextOID
// advances past the given ID so a later plain Create cannot collide.
func (d *Drive) CreateWithID(cred types.Cred, id types.ObjectID, acl []types.ACLEntry, attr []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return types.ErrDriveStopped
	}
	var err error
	switch {
	case id < types.FirstUserObject:
		err = types.ErrInval
	case len(acl) > types.MaxACLEntries || len(attr) > types.MaxAttrLen:
		err = types.ErrTooLarge
	default:
		if _, exists := d.objects[id]; exists {
			err = types.ErrExist
		}
	}
	if err == nil {
		err = d.throttle(cred)
	}
	if err != nil {
		d.auditOp(cred, types.OpCreate, id, 0, 0, "", err)
		return err
	}
	if len(acl) == 0 {
		acl = []types.ACLEntry{{User: cred.User, Perm: types.PermAll}}
	}
	if id >= d.nextOID {
		d.nextOID = id + 1
	}
	d.createObjectLocked(id, cred, acl, attr)
	d.auditOp(cred, types.OpCreate, id, 0, 0, "", nil)
	return d.evictColdLocked()
}

// createObjectLocked registers a new object and journals its birth,
// initial ACL, and initial attributes, so that crash recovery can
// rebuild the object entirely from the log. Caller holds the exclusive
// drive lock.
func (d *Drive) createObjectLocked(id types.ObjectID, cred types.Cred, acl []types.ACLEntry, attr []byte) *object {
	now := vclock.TS(d.clk)
	o := d.registerObject(id, now, nil)
	d.appendEntry(o, &journal.Entry{Type: journal.EntCreate, Version: 1, Time: now, User: cred.User, Client: cred.Client})
	for i, e := range acl {
		d.appendEntry(o, &journal.Entry{
			Type: journal.EntSetACL, Version: o.nextVersion, Time: now,
			User: cred.User, Client: cred.Client,
			ACLIndex: uint8(i), NewACL: e,
		})
		o.nextVersion++
	}
	if len(attr) > 0 {
		d.appendEntry(o, &journal.Entry{
			Type: journal.EntSetAttr, Version: o.nextVersion, Time: now,
			User: cred.User, Client: cred.Client, NewAttr: append([]byte(nil), attr...),
		})
		o.nextVersion++
	}
	return o
}

// Delete marks an object deleted. Its versions — including the final
// one — remain recoverable for the detection window.
func (d *Drive) Delete(cred types.Cred, id types.ObjectID) error {
	d.mu.RLock()
	err := d.deleteShared(cred, id)
	d.auditOp(cred, types.OpDelete, id, 0, 0, "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return err
}

// deleteShared implements Delete. Caller holds the shared drive lock.
func (d *Drive) deleteShared(cred types.Cred, id types.ObjectID) error {
	if d.closed {
		return types.ErrDriveStopped
	}
	if err := checkReserved(cred, id); err != nil {
		return err
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return err
	}
	if err := d.lockObjectWrite(o); err != nil {
		return err
	}
	defer o.mu.Unlock()
	if o.ino.Deleted {
		return types.ErrNoObject
	}
	if err := d.checkPerm(cred, o.ino, types.PermDelete); err != nil {
		return err
	}
	if err := d.throttle(cred); err != nil {
		return err
	}
	now := vclock.TS(d.clk)
	d.appendEntry(o, &journal.Entry{
		Type: journal.EntDelete, Version: o.nextVersion, Time: now,
		User: cred.User, Client: cred.Client, OldSize: o.ino.Size,
	})
	o.nextVersion++
	d.charge(cred, int64(o.ino.Size))
	return nil
}

// Read returns up to n bytes at off from the version of the object
// current at time at (TimeNowest for the live version). Reading any
// non-current version requires the Recovery flag or administrative
// credentials (§3.4).
//
// Reads of the live version hold the object lock shared, so they run
// in parallel with each other; history reads snapshot the object and
// reconstruct the old version with no object lock held at all — old
// versions are immutable by construction, so back-in-time reads never
// block writers (DESIGN.md §9).
func (d *Drive) Read(cred types.Cred, id types.ObjectID, off, n uint64, at types.Timestamp) ([]byte, error) {
	d.mu.RLock()
	data, err := d.readShared(cred, id, off, n, at)
	d.auditOp(cred, types.OpRead, id, off, n, "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return data, err
}

// readShared implements Read. Caller holds the shared drive lock.
func (d *Drive) readShared(cred types.Cred, id types.ObjectID, off, n uint64, at types.Timestamp) ([]byte, error) {
	if d.closed {
		return nil, types.ErrDriveStopped
	}
	if n > types.MaxIO {
		return nil, types.ErrTooLarge
	}
	if id == types.AuditObject && !cred.Admin {
		return nil, types.ErrPerm
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return nil, err
	}
	if err := d.lockObjectRead(o); err != nil {
		return nil, err
	}
	var in *Inode
	if at >= o.ino.ModTime {
		// Live version: read under the shared object lock.
		defer o.mu.RUnlock()
		if err := d.checkPerm(cred, o.ino, types.PermRead); err != nil {
			return nil, err
		}
		in = o.ino
	} else {
		// Historical version: the Recovery flag gates access. The
		// CURRENT ACL governs, so clearing the flag hides all old
		// versions from everyone but the administrator (§3.4). The
		// permission verdict is captured before the snapshot walk but
		// reported after it, preserving error precedence.
		permErr := d.checkPerm(cred, o.ino, types.PermRead|types.PermRecover)
		snap := d.snapshotObject(o)
		o.mu.RUnlock()
		in, err = d.inodeAtCached(snap, at)
		if err != nil {
			return nil, err
		}
		if permErr != nil {
			return nil, permErr
		}
	}
	if in.Deleted {
		return nil, types.ErrNoObject
	}
	if off >= in.Size {
		return nil, nil
	}
	if off+n > in.Size {
		n = in.Size - off
	}
	// Gather the extent's block addresses, fetch them in coalesced runs,
	// then assemble the reply from the (cache-owned) block images. A
	// reconstructed historical inode may map an index to a packed-slot
	// reference instead of a block address; those slots are materialized
	// through their delta chains here (the reference doubles as the map
	// key — the tag bit keeps it disjoint from real addresses).
	var addrs []seglog.BlockAddr
	var materialized map[seglog.BlockAddr][]byte
	for blk := off / types.BlockSize; blk <= (off+n-1)/types.BlockSize; blk++ {
		a := in.Block(blk)
		switch {
		case a == seglog.NilAddr:
		case isDeltaRef(a):
			if _, done := materialized[a]; done {
				break
			}
			content, err := d.materializeRef(in, uint64(a), 0)
			if err != nil {
				return nil, err
			}
			if materialized == nil {
				materialized = make(map[seglog.BlockAddr][]byte)
			}
			materialized[a] = content
		default:
			addrs = append(addrs, a)
		}
	}
	blocks, err := d.readBlocksVec(addrs)
	if err != nil {
		return nil, err
	}
	for a, content := range materialized {
		blocks[a] = content
	}
	out := make([]byte, n)
	var filled uint64
	for filled < n {
		blk := (off + filled) / types.BlockSize
		bo := (off + filled) % types.BlockSize
		want := types.BlockSize - bo
		if want > n-filled {
			want = n - filled
		}
		if addr := in.Block(blk); addr != seglog.NilAddr {
			copy(out[filled:filled+want], blocks[addr][bo:bo+want])
		}
		filled += want
	}
	d.statsMu.Lock()
	d.stats.BytesRead += int64(n)
	d.stats.ReadOps++
	d.statsMu.Unlock()
	return out, nil
}

// readBlocksVec fetches a set of log blocks, serving what it can from
// the cache and coalescing misses at adjacent addresses into
// multi-block ReadRun device I/Os (DESIGN.md §12.3) — the read-path
// mirror of the write path's AppendVec. A sequentially written extent
// lands contiguously in a segment, so a multi-block Read costs O(runs)
// device reads instead of O(blocks). Returned slices are owned by the
// block cache and must not be modified.
func (d *Drive) readBlocksVec(addrs []seglog.BlockAddr) (map[seglog.BlockAddr][]byte, error) {
	out := make(map[seglog.BlockAddr][]byte, len(addrs))
	var misses []seglog.BlockAddr
	for _, a := range addrs {
		if _, seen := out[a]; seen {
			continue
		}
		out[a] = d.cache.get(a) // nil marks a miss (and dedups)
		if out[a] == nil {
			misses = append(misses, a)
		}
	}
	if len(misses) == 0 {
		return out, nil
	}
	sort.Slice(misses, func(i, j int) bool { return misses[i] < misses[j] })
	for i := 0; i < len(misses); {
		j := i + 1
		for j < len(misses) && misses[j] == misses[j-1]+1 &&
			d.log.SegOf(misses[j]) == d.log.SegOf(misses[i]) {
			j++
		}
		run := misses[i:j]
		buf := make([]byte, len(run)*seglog.BlockSize)
		if err := d.log.ReadRun(run[0], len(run), buf); err != nil {
			return nil, err
		}
		for k, a := range run {
			blk := buf[k*seglog.BlockSize : (k+1)*seglog.BlockSize : (k+1)*seglog.BlockSize]
			out[a] = blk
			d.cache.put(a, blk)
		}
		i = j
	}
	return out, nil
}

// Write replaces bytes [off, off+len(data)) of the live version,
// creating a new version. It never disturbs prior versions. Writers to
// different objects proceed in parallel.
func (d *Drive) Write(cred types.Cred, id types.ObjectID, off uint64, data []byte) error {
	d.mu.RLock()
	_, err := d.writeShared(cred, id, off, data)
	d.auditOp(cred, types.OpWrite, id, off, uint64(len(data)), "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return err
}

// Append writes data at the live version's end, returning the offset at
// which it landed.
func (d *Drive) Append(cred types.Cred, id types.ObjectID, data []byte) (uint64, error) {
	d.mu.RLock()
	off, err := d.writeShared(cred, id, ^uint64(0), data)
	d.auditOp(cred, types.OpAppend, id, off, uint64(len(data)), "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return off, err
}

// writeShared implements Write and Append (off == ^0 means append),
// returning the offset the data landed at. Caller holds the shared
// drive lock. Resolving the append offset and performing the write
// happen under one exclusive object lock hold, so concurrent appends
// to the same object land at distinct offsets.
func (d *Drive) writeShared(cred types.Cred, id types.ObjectID, off uint64, data []byte) (uint64, error) {
	if d.closed {
		return 0, types.ErrDriveStopped
	}
	if len(data) == 0 {
		// Empty writes succeed without creating a version; report where
		// an append would have landed.
		var sz uint64
		if o, err := d.getObjectShared(id); err == nil && d.lockObjectRead(o) == nil {
			sz = o.ino.Size
			o.mu.RUnlock()
		}
		return sz, nil
	}
	if len(data) > types.MaxIO {
		return 0, types.ErrTooLarge
	}
	if err := checkReserved(cred, id); err != nil {
		return 0, err
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return 0, err
	}
	if err := d.lockObjectWrite(o); err != nil {
		return 0, err
	}
	defer o.mu.Unlock()
	if off == ^uint64(0) {
		off = o.ino.Size
	}
	if o.ino.Deleted {
		return off, types.ErrNoObject
	}
	if err := d.checkPerm(cred, o.ino, types.PermWrite); err != nil {
		return off, err
	}
	if err := d.throttle(cred); err != nil {
		return off, err
	}
	return off, d.writeBlocksLocked(cred, o, off, data)
}

// writeBlocksLocked performs the block-level write on an authorized
// object. It is shared by the external write path and internal writers
// (partition table, Revert). Caller holds o.mu exclusively (plus the
// shared drive lock) or the exclusive drive lock.
func (d *Drive) writeBlocksLocked(cred types.Cred, o *object, off uint64, data []byte) error {
	in := o.ino
	if off == ^uint64(0) {
		off = in.Size
	}
	now := vclock.TS(d.clk)
	end := off + uint64(len(data))
	b0 := off / types.BlockSize
	b1 := (end - 1) / types.BlockSize

	var histBytes int64
	vec := make([]seglog.VecEntry, 0, b1-b0+1)
	owned := make([]bool, 0, b1-b0+1) // Data is a private full-block buffer
	for blk := b0; blk <= b1; blk++ {
		blkStart := blk * types.BlockSize
		lo := uint64(0)
		if off > blkStart {
			lo = off - blkStart
		}
		hi := uint64(types.BlockSize)
		if end < blkStart+types.BlockSize {
			hi = end - blkStart
		}
		var content []byte
		isOwned := false
		if lo == 0 && hi == types.BlockSize {
			content = data[blkStart+lo-off : blkStart+hi-off]
		} else {
			isOwned = true
			// Read-modify-write of a partial block. Bytes beyond the
			// current size are zeros regardless of stale block tails.
			merged := make([]byte, types.BlockSize)
			if old := in.Block(blk); old != seglog.NilAddr {
				prev, err := d.readBlock(old)
				if err != nil {
					return err
				}
				valid := in.Size
				if valid > blkStart {
					v := valid - blkStart
					if v > types.BlockSize {
						v = types.BlockSize
					}
					copy(merged[:v], prev[:v])
				}
			}
			copy(merged[lo:hi], data[blkStart+lo-off:blkStart+hi-off])
			keep := hi
			if sz := in.Size; sz > blkStart && sz-blkStart > keep {
				keep = sz - blkStart
				if keep > types.BlockSize {
					keep = types.BlockSize
				}
			}
			content = merged[:keep]
		}
		vec = append(vec, seglog.VecEntry{Key: blk, Time: now, Data: content})
		owned = append(owned, isOwned)
	}
	// One vectored append stages the whole write under a single log
	// mutex hold, and the blocks land contiguously so the next flush
	// covers them with one sequential device write.
	newAddrs, err := d.log.AppendVec(seglog.KindData, o.id, vec...)
	if err != nil {
		return err
	}
	fulls := make([][]byte, len(newAddrs))
	for i, addr := range newAddrs {
		d.usage.liveBorn(segOf(d.log, addr))
		full := vec[i].Data
		if owned[i] && cap(full) >= types.BlockSize {
			// The read-modify-write merge buffer is already a private,
			// zero-tailed full block; cache it directly instead of
			// allocating and copying another 4KB per block.
			full = full[:types.BlockSize]
		} else {
			buf := make([]byte, types.BlockSize)
			copy(buf, full)
			full = buf
		}
		d.cache.put(addr, full)
		fulls[i] = full
	}

	// Emit journal entries, splitting ranges that exceed the per-entry
	// pointer budget.
	oldSize := in.Size
	newSize := oldSize
	if end > newSize {
		newSize = end
	}
	// A policy that may set entry masks pays a smaller per-entry pointer
	// budget so the richer wire encoding still fits a journal sector.
	pol := d.effectivePolicy(o.id)
	maxPer := journal.MaxBlocksPerEntry
	if (pol.DeltaEnabled && d.opts.MaxDeltaChain > 0) || pol.Mode != types.ModeEveryVersion {
		maxPer = maxDeltaEntryBlocks
	}
	blk := b0
	remaining := newAddrs
	remFulls := fulls
	for len(remaining) > 0 {
		n := len(remaining)
		if n > maxPer {
			n = maxPer
		}
		e := &journal.Entry{
			Type: journal.EntWrite, Version: o.nextVersion, Time: now,
			User: cred.User, Client: cred.Client,
			FirstBlock: blk,
			New:        append([]seglog.BlockAddr(nil), remaining[:n]...),
			Old:        make([]seglog.BlockAddr, n),
			OldSize:    oldSize, NewSize: newSize,
		}
		for i := 0; i < n; i++ {
			e.Old[i] = in.Block(blk + uint64(i))
		}
		// Retention drops and reverse-delta conversion rewrite the Old
		// slots in place (DESIGN.md §16) and report what the history
		// pool actually grew by.
		histBytes += d.convertOldLocked(o, e, remFulls[:n], pol)
		o.nextVersion++
		d.appendEntry(o, e)
		oldSize = newSize
		blk += uint64(n)
		remaining = remaining[n:]
		remFulls = remFulls[n:]
	}
	d.statsMu.Lock()
	d.stats.BytesWritten += int64(len(data))
	d.statsMu.Unlock()
	d.charge(cred, histBytes)
	return nil
}

// Truncate sets the live version's length, creating a new version.
// Shrinks move the discarded block pointers into the history pool.
func (d *Drive) Truncate(cred types.Cred, id types.ObjectID, size uint64) error {
	d.mu.RLock()
	err := d.truncateShared(cred, id, size)
	d.auditOp(cred, types.OpTruncate, id, size, 0, "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return err
}

// truncateShared implements Truncate. Caller holds the shared drive
// lock.
func (d *Drive) truncateShared(cred types.Cred, id types.ObjectID, size uint64) error {
	if d.closed {
		return types.ErrDriveStopped
	}
	if err := checkReserved(cred, id); err != nil {
		return err
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return err
	}
	if err := d.lockObjectWrite(o); err != nil {
		return err
	}
	defer o.mu.Unlock()
	if o.ino.Deleted {
		return types.ErrNoObject
	}
	if err := d.checkPerm(cred, o.ino, types.PermWrite); err != nil {
		return err
	}
	if err := d.throttle(cred); err != nil {
		return err
	}
	return d.truncateBlocksLocked(cred, o, size)
}

// truncateBlocksLocked performs the block-level truncate. Caller holds
// o.mu exclusively (plus the shared drive lock) or the exclusive drive
// lock.
func (d *Drive) truncateBlocksLocked(cred types.Cred, o *object, size uint64) error {
	in := o.ino
	now := vclock.TS(d.clk)
	if size >= in.Size {
		// Growth: a hole; one entry with no pointers.
		d.appendEntry(o, &journal.Entry{
			Type: journal.EntTruncate, Version: o.nextVersion, Time: now,
			User: cred.User, Client: cred.Client,
			OldSize: in.Size, NewSize: size,
		})
		o.nextVersion++
		return nil
	}
	// Shrink: collect the mapped blocks being discarded.
	firstGone := (size + types.BlockSize - 1) / types.BlockSize
	lastOld := (in.Size - 1) / types.BlockSize
	var idxs []uint64
	for blk := firstGone; blk <= lastOld; blk++ {
		if in.Block(blk) != seglog.NilAddr {
			idxs = append(idxs, blk)
		}
	}
	oldSize := in.Size
	var histBytes int64
	// Split into per-entry contiguous runs bounded by the pointer
	// budget. Runs include unmapped gaps implicitly (Old=NilAddr).
	i := 0
	emitted := false
	for i < len(idxs) {
		start := idxs[i]
		j := i
		for j < len(idxs) && idxs[j]-start < journal.MaxBlocksPerEntry {
			j++
		}
		count := idxs[j-1] - start + 1
		e := &journal.Entry{
			Type: journal.EntTruncate, Version: o.nextVersion, Time: now,
			User: cred.User, Client: cred.Client,
			FirstBlock: start,
			Old:        make([]seglog.BlockAddr, count),
			OldSize:    oldSize, NewSize: size,
		}
		for k := i; k < j; k++ {
			old := in.Block(idxs[k])
			e.Old[idxs[k]-start] = old
			histBytes += types.BlockSize
		}
		o.nextVersion++
		d.appendEntry(o, e)
		oldSize = size
		emitted = true
		i = j
	}
	if !emitted {
		// No mapped blocks discarded; still a size change.
		d.appendEntry(o, &journal.Entry{
			Type: journal.EntTruncate, Version: o.nextVersion, Time: now,
			User: cred.User, Client: cred.Client,
			OldSize: in.Size, NewSize: size,
		})
		o.nextVersion++
	}
	// An unaligned shrink leaves stale bytes in the retained tail
	// block; rewrite it zero-truncated so a later size extension never
	// resurrects them. The old tail joins the history pool, keeping
	// pre-truncate versions exact.
	if rem := size % types.BlockSize; rem != 0 {
		tailBlk := size / types.BlockSize
		if oldAddr := in.Block(tailBlk); oldAddr != seglog.NilAddr {
			prev, err := d.readBlock(oldAddr)
			if err != nil {
				return err
			}
			newAddr, err := d.log.Append(seglog.KindData, o.id, tailBlk, now, prev[:rem])
			if err != nil {
				return err
			}
			d.usage.liveBorn(segOf(d.log, newAddr))
			full := make([]byte, types.BlockSize)
			copy(full, prev[:rem])
			d.cache.put(newAddr, full)
			d.appendEntry(o, &journal.Entry{
				Type: journal.EntWrite, Version: o.nextVersion, Time: now,
				User: cred.User, Client: cred.Client,
				FirstBlock: tailBlk,
				Old:        []seglog.BlockAddr{oldAddr},
				New:        []seglog.BlockAddr{newAddr},
				OldSize:    size, NewSize: size,
			})
			o.nextVersion++
			histBytes += types.BlockSize
		}
	}
	d.charge(cred, histBytes)
	return nil
}

// AttrInfo is the drive-maintained attribute view of one version.
type AttrInfo struct {
	ID         types.ObjectID
	Version    uint64
	Size       uint64
	CreateTime types.Timestamp
	ModTime    types.Timestamp
	Deleted    bool
	Attr       []byte // the client file system's opaque attribute blob
}

// GetAttr returns attributes of the version current at time at.
func (d *Drive) GetAttr(cred types.Cred, id types.ObjectID, at types.Timestamp) (AttrInfo, error) {
	d.mu.RLock()
	ai, err := d.getAttrShared(cred, id, at)
	d.auditOp(cred, types.OpGetAttr, id, 0, 0, "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return ai, err
}

// getAttrShared implements GetAttr. Caller holds the shared drive lock.
func (d *Drive) getAttrShared(cred types.Cred, id types.ObjectID, at types.Timestamp) (AttrInfo, error) {
	if d.closed {
		return AttrInfo{}, types.ErrDriveStopped
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return AttrInfo{}, err
	}
	if err := d.lockObjectRead(o); err != nil {
		return AttrInfo{}, err
	}
	var in *Inode
	if at >= o.ino.ModTime {
		defer o.mu.RUnlock()
		if err := d.checkPerm(cred, o.ino, types.PermRead); err != nil {
			return AttrInfo{}, err
		}
		in = o.ino
	} else {
		permErr := d.checkPerm(cred, o.ino, types.PermRead|types.PermRecover)
		snap := d.snapshotObject(o)
		o.mu.RUnlock()
		in, err = d.inodeAtCached(snap, at)
		if err != nil {
			return AttrInfo{}, err
		}
		if permErr != nil {
			return AttrInfo{}, permErr
		}
	}
	return AttrInfo{
		ID: id, Version: in.Version, Size: in.Size,
		CreateTime: in.CreateTime, ModTime: in.ModTime,
		Deleted: in.Deleted, Attr: append([]byte(nil), in.Attr...),
	}, nil
}

// SetAttr replaces the opaque attribute blob, creating a new version.
func (d *Drive) SetAttr(cred types.Cred, id types.ObjectID, attr []byte) error {
	d.mu.RLock()
	err := d.setAttrShared(cred, id, attr)
	d.auditOp(cred, types.OpSetAttr, id, 0, uint64(len(attr)), "", err)
	d.mu.RUnlock()
	if eerr := d.maybeEvict(); err == nil {
		err = eerr
	}
	return err
}

// setAttrShared implements SetAttr. Caller holds the shared drive lock.
func (d *Drive) setAttrShared(cred types.Cred, id types.ObjectID, attr []byte) error {
	if d.closed {
		return types.ErrDriveStopped
	}
	if len(attr) > types.MaxAttrLen {
		return types.ErrTooLarge
	}
	if err := checkReserved(cred, id); err != nil {
		return err
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return err
	}
	if err := d.lockObjectWrite(o); err != nil {
		return err
	}
	defer o.mu.Unlock()
	if o.ino.Deleted {
		return types.ErrNoObject
	}
	if err := d.checkPerm(cred, o.ino, types.PermWrite); err != nil {
		return err
	}
	if err := d.throttle(cred); err != nil {
		return err
	}
	now := vclock.TS(d.clk)
	d.appendEntry(o, &journal.Entry{
		Type: journal.EntSetAttr, Version: o.nextVersion, Time: now,
		User: cred.User, Client: cred.Client,
		OldAttr: append([]byte(nil), o.ino.Attr...),
		NewAttr: append([]byte(nil), attr...),
	})
	o.nextVersion++
	return nil
}

// GetACLByUser returns the effective ACL entry for user at time at.
func (d *Drive) GetACLByUser(cred types.Cred, id types.ObjectID, user types.UserID, at types.Timestamp) (types.ACLEntry, error) {
	d.mu.RLock()
	e, err := d.getACLShared(cred, id, at, func(in *Inode) (types.ACLEntry, error) {
		return types.ACLEntry{User: user, Perm: in.PermFor(user)}, nil
	})
	d.auditOp(cred, types.OpGetACLByUser, id, uint64(user), 0, "", err)
	d.mu.RUnlock()
	return e, err
}

// GetACLByIndex returns slot idx of the ACL table at time at.
func (d *Drive) GetACLByIndex(cred types.Cred, id types.ObjectID, idx int, at types.Timestamp) (types.ACLEntry, error) {
	d.mu.RLock()
	e, err := d.getACLShared(cred, id, at, func(in *Inode) (types.ACLEntry, error) {
		if idx < 0 || idx >= len(in.ACL) {
			return types.ACLEntry{}, types.ErrInval
		}
		return in.ACL[idx], nil
	})
	d.auditOp(cred, types.OpGetACLByIndex, id, uint64(idx), 0, "", err)
	d.mu.RUnlock()
	return e, err
}

// getACLShared implements the ACL reads. Caller holds the shared drive
// lock.
func (d *Drive) getACLShared(cred types.Cred, id types.ObjectID, at types.Timestamp, pick func(*Inode) (types.ACLEntry, error)) (types.ACLEntry, error) {
	if d.closed {
		return types.ACLEntry{}, types.ErrDriveStopped
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return types.ACLEntry{}, err
	}
	if err := d.lockObjectRead(o); err != nil {
		return types.ACLEntry{}, err
	}
	var in *Inode
	if at >= o.ino.ModTime {
		defer o.mu.RUnlock()
		if err := d.checkPerm(cred, o.ino, types.PermRead); err != nil {
			return types.ACLEntry{}, err
		}
		in = o.ino
	} else {
		permErr := d.checkPerm(cred, o.ino, types.PermRead|types.PermRecover)
		snap := d.snapshotObject(o)
		o.mu.RUnlock()
		in, err = d.inodeAtCached(snap, at)
		if err != nil {
			return types.ACLEntry{}, err
		}
		if permErr != nil {
			return types.ACLEntry{}, permErr
		}
	}
	return pick(in)
}

// SetACL replaces ACL slot idx, creating a new version. Users need
// PermSetACL; this is how a user clears the Recovery flag to hide old
// versions of a sensitive file from everyone but the administrator.
func (d *Drive) SetACL(cred types.Cred, id types.ObjectID, idx int, entry types.ACLEntry) error {
	d.mu.RLock()
	err := d.setACLShared(cred, id, idx, entry)
	d.auditOp(cred, types.OpSetACL, id, uint64(idx), 0, "", err)
	d.mu.RUnlock()
	return err
}

// setACLShared implements SetACL. Caller holds the shared drive lock.
func (d *Drive) setACLShared(cred types.Cred, id types.ObjectID, idx int, entry types.ACLEntry) error {
	if d.closed {
		return types.ErrDriveStopped
	}
	if idx < 0 || idx >= types.MaxACLEntries {
		return types.ErrInval
	}
	if err := checkReserved(cred, id); err != nil {
		return err
	}
	o, err := d.getObjectShared(id)
	if err != nil {
		return err
	}
	if err := d.lockObjectWrite(o); err != nil {
		return err
	}
	defer o.mu.Unlock()
	if o.ino.Deleted {
		return types.ErrNoObject
	}
	if err := d.checkPerm(cred, o.ino, types.PermSetACL); err != nil {
		return err
	}
	if err := d.throttle(cred); err != nil {
		return err
	}
	var old types.ACLEntry
	if idx < len(o.ino.ACL) {
		old = o.ino.ACL[idx]
	}
	now := vclock.TS(d.clk)
	d.appendEntry(o, &journal.Entry{
		Type: journal.EntSetACL, Version: o.nextVersion, Time: now,
		User: cred.User, Client: cred.Client,
		ACLIndex: uint8(idx), OldACL: old, NewACL: entry,
	})
	o.nextVersion++
	return nil
}

// Sync makes every acknowledged modification durable: journal sectors
// are flushed, the audit buffer is written, and the open segment is
// forced to disk. The S4 client calls this at the end of each mutating
// NFS operation to honor NFSv2 semantics (§4.1.2).
func (d *Drive) Sync(cred types.Cred) error {
	d.mu.RLock()
	err := d.syncShared()
	d.auditOp(cred, types.OpSync, 0, 0, 0, "", err)
	d.mu.RUnlock()
	return err
}

// SyncObj makes the calling client's acknowledged writes to one object
// durable. The drive group-commits, so the force that satisfies this
// call covers everything staged before it — the per-object form exists
// so a shard router can route the sync to the one shard holding the
// object instead of broadcasting a whole-drive Sync to every shard, and
// so the audit log records which object the client cared about. The
// object must exist: a sync against a vanished object is a client bug
// worth an audit record, not a silent no-op.
func (d *Drive) SyncObj(cred types.Cred, id types.ObjectID) error {
	d.mu.RLock()
	var err error
	if _, gerr := d.getObjectShared(id); gerr != nil {
		err = gerr
	} else {
		err = d.syncShared()
	}
	d.auditOp(cred, types.OpSync, id, 0, 0, "", err)
	d.mu.RUnlock()
	return err
}

// syncShared makes every modification staged before the call durable.
// Caller holds the shared drive lock.
//
// Concurrent callers group-commit (DESIGN.md §11): each takes a
// sequence-numbered ticket, and one leader at a time flushes the dirty
// object set and forces the log on behalf of every ticket taken before
// its batch closed. A ticket holder's writes were staged before its
// ticket was issued, and the leader reads the batch boundary after
// taking leadership, so the leader's force covers every covered
// ticket's writes — followers return without touching the device once
// commitDone passes their ticket. On a failed force commitDone is NOT
// advanced: each waiting follower retries as leader and reports its own
// error (the log's write-error latch makes those retries fail fast
// rather than spin).
func (d *Drive) syncShared() error {
	if d.closed {
		return types.ErrDriveStopped
	}
	d.commitMu.Lock()
	d.commitSeq++
	ticket := d.commitSeq
	for {
		if d.commitDone >= ticket {
			d.commitMu.Unlock()
			d.statsMu.Lock()
			d.stats.SyncsCoalesced++
			d.statsMu.Unlock()
			return nil
		}
		if !d.committing {
			break
		}
		d.commitCond.Wait()
	}
	d.committing = true
	d.commitMu.Unlock()

	// Let concurrently arriving syncers take tickets before the batch
	// closes; on a single CPU nothing else runs until the leader
	// yields, so without yielding every batch would be a batch of one.
	// Keep yielding while tickets are still arriving (bounded, so a
	// steady trickle cannot starve the leader).
	d.commitMu.Lock()
	batchEnd := d.commitSeq
	d.commitMu.Unlock()
	for i := 0; i < 4; i++ {
		runtime.Gosched()
		d.commitMu.Lock()
		end := d.commitSeq
		d.commitMu.Unlock()
		if end == batchEnd {
			break
		}
		batchEnd = end
	}

	err := d.flushDirtyObjects()
	if err == nil {
		// Audit records are drive-internal: they are flushed when a
		// block's worth accumulates (auditOp) or at checkpoints, not per
		// client sync — §5.1.4's "one disk write approximately every 750
		// operations" in the worst case.
		err = d.log.Sync()
	}

	d.commitMu.Lock()
	if err == nil {
		d.commitDone = batchEnd
	}
	d.committing = false
	d.commitCond.Broadcast()
	d.commitMu.Unlock()
	if err == nil {
		d.statsMu.Lock()
		d.stats.CommitBatches++
		d.statsMu.Unlock()
	}
	return err
}

// flushDirtyObjects packs the pending journal entries of every object
// in the dirty set into sectors. Caller holds the shared drive lock.
func (d *Drive) flushDirtyObjects() error {
	d.dirtyMu.Lock()
	objs := make([]*object, 0, len(d.dirtyObjs))
	for _, o := range d.dirtyObjs {
		objs = append(objs, o)
	}
	d.dirtyMu.Unlock()
	for _, o := range objs {
		o.mu.Lock()
		var err error
		if len(o.pending) > 0 {
			// Under the on-close policy a sync is the "close" that marks
			// the current version retained (DESIGN.md §16).
			if o.ino != nil && d.effectivePolicy(o.id).Mode == types.ModeOnClose &&
				o.ino.Version > o.retainedVer {
				o.retainedVer = o.ino.Version
			}
			err = d.flushJournalLocked(o)
		} else {
			// Raced with another flusher; membership is stale.
			d.markClean(o)
		}
		o.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// SetWindow adjusts the guaranteed detection window (administrative).
// It re-schedules every object's aging, so it is a whole-drive
// operation.
func (d *Drive) SetWindow(cred types.Cred, w time.Duration) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	switch {
	case d.closed:
		err = types.ErrDriveStopped
	case !cred.Admin:
		err = types.ErrAdminOnly
	case w < 0:
		err = types.ErrInval
	default:
		d.window = w
		// Cached aging schedules were computed for the old window.
		for _, o := range d.objects {
			o.nextAge = 0
		}
	}
	d.auditOp(cred, types.OpSetWindow, 0, uint64(w), 0, "", err)
	return err
}

// StatusInfo is a point-in-time summary of drive state.
type StatusInfo struct {
	Window        time.Duration
	Objects       int
	LiveBlocks    int64
	HistoryBlocks int64
	FreeSegments  int64
	TotalSegments int64
	AuditRecords  int64
	AuditBlocks   int
	JournalBlocks int
	CPBlocks      int
	// NextOID is the next object ID this drive would self-allocate. A
	// shard router seeds its cross-shard ID allocator from the maximum
	// across its shards so router-assigned IDs never collide with
	// recovered state.
	NextOID  types.ObjectID
	Suspects []types.ClientID
}

// Status reports drive occupancy and health.
func (d *Drive) Status() StatusInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := 0
	for _, o := range d.objects {
		o.mu.RLock()
		cp += len(o.cpBlocks)
		o.mu.RUnlock()
	}
	d.auditMu.Lock()
	auditBlocks := len(d.auditBlocks)
	d.auditMu.Unlock()
	d.logMu.Lock()
	journalBlocks := len(d.jblockRef)
	d.logMu.Unlock()
	d.statsMu.Lock()
	auditRecords := d.stats.AuditRecords
	d.statsMu.Unlock()
	return StatusInfo{
		Window:        d.window,
		Objects:       len(d.objects),
		LiveBlocks:    d.usage.liveBlocks(),
		HistoryBlocks: d.usage.historyBlocks(),
		FreeSegments:  d.log.FreeSegments(),
		TotalSegments: d.log.NumSegments(),
		AuditRecords:  auditRecords,
		AuditBlocks:   auditBlocks,
		JournalBlocks: journalBlocks,
		CPBlocks:      cp,
		NextOID:       d.nextOID,
		Suspects:      d.thr.Suspects(),
	}
}

// DriveStats returns a copy of the activity counters.
func (d *Drive) DriveStats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.statsMu.Lock()
	s := d.stats
	s.Ops = make(map[types.Op]int64, len(d.stats.Ops))
	for k, v := range d.stats.Ops {
		s.Ops[k] = v
	}
	d.statsMu.Unlock()
	s.CacheHits, s.CacheMisses = d.cache.counters()
	s.HistoryBlocks = d.usage.historyBlocks()
	s.LiveBlocks = d.usage.liveBlocks()
	s.FreeSegments = d.log.FreeSegments()
	s.TotalSegments = d.log.NumSegments()
	s.LogAppends, s.DeviceForces = d.log.Stats()
	s.VecAppends, s.FlushStalls = d.log.PipeStats()
	s.DeviceReads, s.VecReads = d.log.ReadStats()
	s.ReconCacheHits, s.ReconCacheMisses = d.recon.counters()
	s.LandmarkHits = d.landmarkHits.Load()
	s.HistoryWalkEntries = d.walkEntries.Load()
	d.dirtyMu.Lock()
	s.DirtyObjects = int64(len(d.dirtyObjs))
	d.dirtyMu.Unlock()
	s.CorruptDetected, s.CorruptRepaired, s.QuarantinedSegments = d.log.IntegrityStats()
	s.ScrubPasses = d.scrubPasses.Load()
	s.ScrubBlocks = d.scrubBlocks.Load()
	return s
}

// GetStats is the stable public name for the activity counters; the RPC
// layer and s4ctl stats read drive health through it.
func (d *Drive) GetStats() Stats { return d.DriveStats() }

// ---- Throttle integration ----

// throttle applies the abuse-detector penalty for cred's client before
// a mutating operation proceeds (§3.3: selectively increasing latency
// lets well-behaved users keep working during an attack). By default
// the delay is served in-band while holding the target object's lock,
// so an abusive client's penalty also defers its own queued work, not
// other objects. With Options.SurfaceThrottle the penalty is returned
// as a retryable error carrying the delay, and the operation does not
// execute — the caller (the RPC server) pushes the wait to the client.
func (d *Drive) throttle(cred types.Cred) error {
	// Space gate first: client mutations may not consume the cleaner's
	// segment reserve. Compaction, journal-chain relocation, and the
	// checkpoint barrier all append to the log, so letting foreground
	// writes race into the last free segments wedges the drive — full
	// disk means the cleaner can no longer relocate anything to free
	// space (the classic log-structured cleaner reserve). Refusing here
	// keeps ErrNoSpace retryable: a cleaning pass always has room to
	// make progress.
	if d.log.FreeSegments() <= d.spaceReserve {
		return types.ErrNoSpace
	}
	if cred.Admin {
		return nil
	}
	delay := d.thr.Delay(cred.Client)
	if delay <= 0 {
		return nil
	}
	d.statsMu.Lock()
	d.stats.ThrottleDelays += delay
	d.statsMu.Unlock()
	if d.opts.SurfaceThrottle {
		return &types.RetryableError{Err: types.ErrThrottled, After: delay}
	}
	d.clk.Sleep(delay)
	return nil
}

// charge charges history-pool growth to the client. The throttle and
// usage counters are internally synchronized.
func (d *Drive) charge(cred types.Cred, histBytes int64) {
	if histBytes <= 0 {
		return
	}
	d.thr.SetPool(d.usage.historyBlocks() * types.BlockSize)
	d.thr.Record(cred.Client, histBytes, d.clk.Now())
}
