package core

import (
	"container/list"
	"sync"

	"s4/internal/seglog"
)

// blockCache is an LRU cache of log blocks keyed by address, standing in
// for the drive's buffer cache (the paper's S4 drives ran a 128MB buffer
// cache and a 32MB object cache, §5.1.1). It caches immutable log blocks
// only, so invalidation is needed just when the cleaner frees segments.
//
// The cache is internally synchronized (its mutex is a leaf in the
// drive's lock hierarchy), so concurrent readers hit it without any
// drive-level exclusive lock.
type blockCache struct {
	mu       sync.Mutex
	capBytes int64
	curBytes int64
	lru      *list.List // front = most recent; values are *cacheEnt
	byAddr   map[seglog.BlockAddr]*list.Element

	hits, misses int64
}

type cacheEnt struct {
	addr seglog.BlockAddr
	data []byte
}

func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{
		capBytes: capBytes,
		lru:      list.New(),
		byAddr:   make(map[seglog.BlockAddr]*list.Element),
	}
}

// get returns the cached block, or nil. The returned slice aliases the
// cache's copy and MUST NOT be modified: every reader of the same
// address shares it. Callers that hand data across a trust boundary
// (e.g. readShared assembling an RPC reply) must copy out of it; the
// drive-internal decoders (journal.DecodeSector, decodeInodeRoot,
// audit.DecodeBlock) only ever parse the bytes. put takes ownership of
// its argument for the same reason — the cache never copies.
// TestBlockCachePoison enforces the stability half of this contract.
func (c *blockCache) get(addr seglog.BlockAddr) []byte {
	if c.capBytes <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byAddr[addr]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEnt).data
	}
	c.misses++
	return nil
}

// put inserts a block, evicting LRU entries to stay under capacity. The
// cache takes ownership of data.
func (c *blockCache) put(addr seglog.BlockAddr, data []byte) {
	if c.capBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byAddr[addr]; ok {
		ent := el.Value.(*cacheEnt)
		c.curBytes += int64(len(data) - len(ent.data))
		ent.data = data
		c.lru.MoveToFront(el)
	} else {
		el := c.lru.PushFront(&cacheEnt{addr: addr, data: data})
		c.byAddr[addr] = el
		c.curBytes += int64(len(data))
	}
	for c.curBytes > c.capBytes && c.lru.Len() > 0 {
		back := c.lru.Back()
		ent := back.Value.(*cacheEnt)
		c.lru.Remove(back)
		delete(c.byAddr, ent.addr)
		c.curBytes -= int64(len(ent.data))
	}
}

// drop removes one address (cleaner freed its block, or a shared
// journal block was rewritten in place).
func (c *blockCache) drop(addr seglog.BlockAddr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked(addr)
}

func (c *blockCache) dropLocked(addr seglog.BlockAddr) {
	if el, ok := c.byAddr[addr]; ok {
		ent := el.Value.(*cacheEnt)
		c.lru.Remove(el)
		delete(c.byAddr, addr)
		c.curBytes -= int64(len(ent.data))
	}
}

// dropRange removes every cached block with addr in [lo, hi) — used when
// a whole segment is freed. When the range dwarfs the cache population
// (huge segments, small cache) walking the map beats walking the range.
func (c *blockCache) dropRange(lo, hi seglog.BlockAddr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hi > lo && uint64(hi-lo) > uint64(len(c.byAddr)) {
		for addr := range c.byAddr {
			if addr >= lo && addr < hi {
				c.dropLocked(addr)
			}
		}
		return
	}
	for addr := lo; addr < hi; addr++ {
		c.dropLocked(addr)
	}
}

// counters returns the hit/miss totals.
func (c *blockCache) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
