// Background integrity scrubber (DESIGN.md §15).
//
// Every media read is already verified against the segment-summary
// checksums, but a block nobody reads can rot for months before a
// client trips over it — and by then the redundant copies that could
// have healed it may be gone. The scrubber closes that gap: it sweeps
// sealed segments during idle periods, reading every summarized block
// back so the seglog's verify-and-repair machinery runs over cold data
// too. Detection is the point; repair and quarantine fall out of the
// same read path clients use.
//
// The sweep position is advisory, in-memory state. A crash or restart
// simply starts the next pass at segment zero — scrubbing a segment
// twice is wasted bandwidth, never a correctness problem — so no scrub
// state is ever written to disk.
package core

import (
	"time"

	"s4/internal/throttle"
	"s4/internal/types"
)

// DefaultScrubRate is the background scrubber's pace in blocks verified
// per second. At 4KB blocks this is ~2MB/s of read bandwidth — cheap
// enough that foreground ops lose well under 10% throughput (the
// s4bench -scrub gate), yet a full pass over a 100GB drive still
// completes in under a day.
const DefaultScrubRate = 512

// scrubBackoff is how long the scrubber stands down when it sees
// foreground traffic or a transient error: scrubbing consumes only
// idle bandwidth.
const scrubBackoff = 50 * time.Millisecond

// ScrubResult summarizes one integrity sweep.
type ScrubResult struct {
	Segments    int64 // sealed segments verified this sweep
	Blocks      int64 // blocks checked against their summary checksums
	Corrupt     int64 // blocks that failed and could not be repaired
	Repaired    int64 // blocks healed from a redundant copy this sweep
	Quarantined int64 // segments currently quarantined (cumulative)
}

// Scrub runs one full synchronous sweep over every sealed segment and
// reports what it found. Admin-only: it is the `s4ctl scrub` on-demand
// trigger, and an unprivileged client should not be able to command a
// whole-device read workload.
func (d *Drive) Scrub(cred types.Cred) (ScrubResult, error) {
	var res ScrubResult
	if !cred.Admin {
		return res, types.ErrAdminOnly
	}
	_, rep0, _ := d.log.IntegrityStats()
	n := d.log.NumSegments()
	for seg := int64(0); seg < n; seg++ {
		checked, corrupt, err := d.verifySegment(seg)
		if err != nil {
			return res, err
		}
		if checked > 0 {
			res.Segments++
		}
		res.Blocks += int64(checked)
		res.Corrupt += int64(corrupt)
	}
	_, rep1, quar := d.log.IntegrityStats()
	res.Repaired = rep1 - rep0
	res.Quarantined = quar
	d.scrubPasses.Add(1)
	d.scrubBlocks.Add(res.Blocks)
	return res, nil
}

// scrubStep verifies the segment under the advisory cursor and advances
// it, reporting whether the cursor wrapped (one pass complete).
func (d *Drive) scrubStep() (blocks, corrupt int, wrapped bool, err error) {
	d.scrubMu.Lock()
	seg := d.scrubCursor
	d.scrubCursor++
	if d.scrubCursor >= d.log.NumSegments() {
		d.scrubCursor = 0
		wrapped = true
	}
	d.scrubMu.Unlock()
	blocks, corrupt, err = d.verifySegment(seg)
	return blocks, corrupt, wrapped, err
}

// verifySegment checks one segment under the shared drive lock: the
// hold is what keeps the cleaner from freeing or rewriting the segment
// mid-verify, exactly as it protects history walks.
func (d *Drive) verifySegment(seg int64) (checked, corrupt int, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, 0, types.ErrDriveStopped
	}
	return d.log.VerifySegment(seg)
}

// StartScrubber launches the background sweep goroutine, paced at
// blocksPerSec (0 takes DefaultScrubRate, negative disables). Idempotent
// while running; Close stops it. The drive never starts it on its own —
// the serving binary (s4d) owns the decision, so embedded and test
// drives stay goroutine-free unless they opt in.
func (d *Drive) StartScrubber(blocksPerSec float64) {
	if blocksPerSec < 0 {
		return
	}
	if blocksPerSec == 0 {
		blocksPerSec = DefaultScrubRate
	}
	d.scrubMu.Lock()
	if d.scrubStop != nil {
		d.scrubMu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	d.scrubStop, d.scrubDone = stop, done
	d.scrubMu.Unlock()
	go d.scrubLoop(blocksPerSec, stop, done)
}

// StopScrubber signals the background sweeper and waits for it to exit.
// No-op if it is not running.
func (d *Drive) StopScrubber() {
	d.scrubMu.Lock()
	stop, done := d.scrubStop, d.scrubDone
	d.scrubStop, d.scrubDone = nil, nil
	d.scrubMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (d *Drive) scrubLoop(blocksPerSec float64, stop, done chan struct{}) {
	defer close(done)
	// One second of burst: the pacer absorbs a whole segment's reads,
	// then spreads the cost over the following idle time.
	pacer := throttle.NewPacer(blocksPerSec, blocksPerSec)
	lastOps := d.opCount()
	for {
		select {
		case <-stop:
			return
		default:
		}
		// Pause under load: if clients issued operations since the last
		// look, stand down instead of competing for the device.
		if ops := d.opCount(); ops != lastOps {
			lastOps = ops
			if !sleepOrStop(stop, scrubBackoff) {
				return
			}
			continue
		}
		blocks, _, wrapped, err := d.scrubStep()
		if err != nil {
			// Closed drive or a hard device error: nothing useful to do
			// but back off and let Stop collect us.
			if !sleepOrStop(stop, scrubBackoff) {
				return
			}
			continue
		}
		if wrapped {
			d.scrubPasses.Add(1)
		}
		d.scrubBlocks.Add(int64(blocks))
		// Pay for the segment just read; +1 keeps empty segments from
		// spinning the loop at full speed.
		if wait := pacer.Take(time.Now(), float64(blocks)+1); wait > 0 {
			if !sleepOrStop(stop, wait) {
				return
			}
		}
	}
}

// opCount sums the per-op counters; the scrubber uses deltas as its
// foreground-activity signal.
func (d *Drive) opCount() int64 {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	var n int64
	for _, v := range d.stats.Ops {
		n += v
	}
	return n
}

// sleepOrStop waits d or until stop closes; false means stop.
func sleepOrStop(stop chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}
