package core

import (
	"errors"

	"s4/internal/audit"
	"s4/internal/seglog"
	"s4/internal/types"
	"s4/internal/vclock"
)

// This file wires the audit-record codec (internal/audit) into the
// drive. Every RPC — successful or not — appends a record; records are
// buffered and written as audit blocks through the segment log under the
// reserved audit object, which only the drive front end may write
// (§4.2.3). Audit blocks are not versioned.

// errno maps drive errors to stable audit/RPC codes.
func errno(err error) uint8 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, types.ErrNoObject):
		return 1
	case errors.Is(err, types.ErrExist):
		return 2
	case errors.Is(err, types.ErrPerm):
		return 3
	case errors.Is(err, types.ErrAdminOnly):
		return 4
	case errors.Is(err, types.ErrNoVersion):
		return 5
	case errors.Is(err, types.ErrInval):
		return 6
	case errors.Is(err, types.ErrNoSpace):
		return 7
	case errors.Is(err, types.ErrHistoryFull):
		return 8
	case errors.Is(err, types.ErrThrottled):
		return 9
	case errors.Is(err, types.ErrNameTooLong):
		return 10
	case errors.Is(err, types.ErrNotEmpty):
		return 11
	case errors.Is(err, types.ErrCorrupt):
		return 12
	case errors.Is(err, types.ErrReadOnly):
		return 13
	case errors.Is(err, types.ErrBadHandle):
		return 14
	case errors.Is(err, types.ErrAuthFailed):
		return 15
	case errors.Is(err, types.ErrTooLarge):
		return 16
	case errors.Is(err, types.ErrDriveStopped):
		return 17
	case errors.Is(err, types.ErrBusy):
		return 18
	}
	return 255
}

// ErrnoToError is the inverse of the audit/RPC error mapping.
func ErrnoToError(code uint8) error {
	switch code {
	case 0:
		return nil
	case 1:
		return types.ErrNoObject
	case 2:
		return types.ErrExist
	case 3:
		return types.ErrPerm
	case 4:
		return types.ErrAdminOnly
	case 5:
		return types.ErrNoVersion
	case 6:
		return types.ErrInval
	case 7:
		return types.ErrNoSpace
	case 8:
		return types.ErrHistoryFull
	case 9:
		return types.ErrThrottled
	case 10:
		return types.ErrNameTooLong
	case 11:
		return types.ErrNotEmpty
	case 12:
		return types.ErrCorrupt
	case 13:
		return types.ErrReadOnly
	case 14:
		return types.ErrBadHandle
	case 15:
		return types.ErrAuthFailed
	case 16:
		return types.ErrTooLarge
	case 17:
		return types.ErrDriveStopped
	case 18:
		return types.ErrBusy
	}
	return errors.New("s4: remote error")
}

// captureBytes sizes the per-record request image. The paper's audit
// log stores each command's full arguments, including the RPC framing
// and authentication material that arrives at the security perimeter;
// that is what makes a record a few hundred bytes (§5.1.4's "one disk
// write approximately every 750 operations" implies ~350B/record for a
// 256KB segment). Direct in-process calls have no wire image, so the
// drive synthesizes an equivalently sized capture.
const captureBytes = 256

func requestCapture(cred types.Cred, op types.Op, obj types.ObjectID, off, length uint64, arg string) []byte {
	raw := make([]byte, captureBytes)
	b := raw[:0]
	b = append(b, byte(op))
	put := func(v uint64) {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	put(uint64(cred.User))
	put(uint64(cred.Client))
	put(uint64(obj))
	put(off)
	put(length)
	if len(arg) > captureBytes-len(b) {
		arg = arg[:captureBytes-len(b)]
	}
	b = append(b, arg...)
	return raw
}

// auditOp appends one audit record for a just-executed request. Caller
// holds the drive lock in either mode; the audit pipeline itself is
// serialized by auditMu so concurrent requests interleave their records
// in a single sequence.
func (d *Drive) auditOp(cred types.Cred, op types.Op, obj types.ObjectID, off, length uint64, arg string, err error) {
	d.statsMu.Lock()
	d.stats.Ops[op]++
	d.statsMu.Unlock()
	if d.opts.DisableAudit {
		return
	}
	d.auditMu.Lock()
	d.auditSeq++
	rec := audit.Record{
		Seq: d.auditSeq, Time: vclock.TS(d.clk),
		Client: cred.Client, User: cred.User,
		Op: op, Obj: obj, Offset: off, Length: length, Arg: arg,
		Raw: requestCapture(cred, op, obj, off, length, arg),
		OK:  err == nil, Errno: errno(err),
	}
	d.auditBuf = append(d.auditBuf, rec)
	d.auditBufBytes += rec.EncodedSize()
	// Flush when a block's worth of records has accumulated. The
	// running byte counter keeps this O(1) per request; summing the
	// buffer here made every audited op linear in the buffer depth.
	if d.auditBufBytes >= audit.BlockCapacity {
		_ = d.flushAuditLocked()
	}
	d.auditMu.Unlock()
	d.statsMu.Lock()
	d.stats.AuditRecords++
	d.statsMu.Unlock()
}

// auditBufSize sums the encoded size of buffered records. Caller holds
// auditMu.
func (d *Drive) auditBufSize() int {
	n := 0
	for i := range d.auditBuf {
		n += d.auditBuf[i].EncodedSize()
	}
	return n
}

// flushAuditLocked writes buffered audit records as audit blocks.
// Caller holds auditMu (the segment log and usage counters are
// internally synchronized).
func (d *Drive) flushAuditLocked() error {
	// The running counter is re-derived on exit so an early error
	// return (records still buffered) leaves it consistent.
	defer func() { d.auditBufBytes = d.auditBufSize() }()
	for len(d.auditBuf) > 0 {
		// Fill one block.
		room := audit.BlockCapacity
		n := 0
		for n < len(d.auditBuf) {
			sz := d.auditBuf[n].EncodedSize()
			if sz > room {
				break
			}
			room -= sz
			n++
		}
		if n == 0 {
			n = 1 // a single oversized record cannot happen (args are bounded)
		}
		blk, err := audit.EncodeBlock(d.auditBuf[:n])
		if err != nil {
			return err
		}
		batch := d.auditBuf[:n]
		addr, err := d.log.Append(seglog.KindAudit, types.AuditObject, batch[0].Seq, batch[len(batch)-1].Time, blk)
		if err != nil {
			return err
		}
		d.usage.liveBorn(segOf(d.log, addr))
		d.auditBlocks = append(d.auditBlocks, auditBlockRef{
			addr: addr, firstSeq: batch[0].Seq, lastTime: batch[len(batch)-1].Time,
		})
		d.auditBuf = append(d.auditBuf[:0], d.auditBuf[n:]...)
	}
	return nil
}

// AuditRead returns up to max audit records with Seq >= fromSeq
// (administrative: the audit log reveals every principal's activity).
// It runs under the shared drive lock: flushed audit blocks are
// immutable and the shared hold keeps the cleaner from freeing them,
// so only the buffered tail needs the audit mutex.
func (d *Drive) AuditRead(cred types.Cred, fromSeq uint64, max int) ([]audit.Record, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	recs, err := d.auditReadShared(cred, fromSeq, max)
	d.auditOp(cred, types.OpAuditRead, types.AuditObject, fromSeq, uint64(max), "", err)
	return recs, err
}

// auditReadShared implements AuditRead. Caller holds the shared drive
// lock but not auditMu.
func (d *Drive) auditReadShared(cred types.Cred, fromSeq uint64, max int) ([]audit.Record, error) {
	if d.closed {
		return nil, types.ErrDriveStopped
	}
	if !cred.Admin {
		return nil, types.ErrAdminOnly
	}
	if max <= 0 || max > 100000 {
		max = 100000
	}
	// Snapshot the block list and buffered tail, then scan without
	// auditMu: concurrent auditOps may append records, but those
	// post-date this request.
	d.auditMu.Lock()
	blocks := append([]auditBlockRef(nil), d.auditBlocks...)
	tail := append([]audit.Record(nil), d.auditBuf...)
	d.auditMu.Unlock()
	var out []audit.Record
	buf := make([]byte, seglog.BlockSize)
	for _, ref := range blocks {
		if len(out) >= max {
			return out[:max], nil
		}
		// Skip blocks wholly before fromSeq: the next block's firstSeq
		// tells us this block's range end.
		if err := d.log.Read(ref.addr, buf); err != nil {
			return nil, err
		}
		recs, err := audit.DecodeBlock(buf)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 && recs[len(recs)-1].Seq < fromSeq {
			continue
		}
		for _, r := range recs {
			if r.Seq >= fromSeq {
				out = append(out, r)
			}
		}
	}
	for i := range tail {
		if tail[i].Seq >= fromSeq {
			out = append(out, tail[i])
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out, nil
}
