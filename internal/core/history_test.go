package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"s4/internal/types"
)

// snapshot captures an object's externally observable state at a moment.
type snapshot struct {
	at      types.Timestamp
	data    []byte
	size    uint64
	attr    []byte
	deleted bool
}

func takeSnapshot(e *testEnv, id types.ObjectID, model []byte, attr []byte, deleted bool) snapshot {
	return snapshot{
		at:      e.d.Now(),
		data:    append([]byte(nil), model...),
		size:    uint64(len(model)),
		attr:    append([]byte(nil), attr...),
		deleted: deleted,
	}
}

func verifySnapshot(t *testing.T, e *testEnv, id types.ObjectID, s snapshot) {
	t.Helper()
	if s.deleted {
		if _, err := e.d.Read(admin, id, 0, 1, s.at); !errors.Is(err, types.ErrNoObject) {
			t.Fatalf("at %v: expected deleted, got %v", s.at, err)
		}
		return
	}
	ai, err := e.d.GetAttr(admin, id, s.at)
	if err != nil {
		t.Fatalf("getattr at %v: %v", s.at, err)
	}
	if ai.Size != s.size {
		t.Fatalf("at %v: size %d want %d", s.at, ai.Size, s.size)
	}
	if !bytes.Equal(ai.Attr, s.attr) {
		t.Fatalf("at %v: attr %q want %q", s.at, ai.Attr, s.attr)
	}
	var got []byte
	for off := uint64(0); off < s.size; off += types.MaxIO {
		n := uint64(types.MaxIO)
		if off+n > s.size {
			n = s.size - off
		}
		part, err := e.d.Read(admin, id, off, n, s.at)
		if err != nil {
			t.Fatalf("read at %v: %v", s.at, err)
		}
		got = append(got, part...)
	}
	if !bytes.Equal(got, s.data) {
		for i := range got {
			if got[i] != s.data[i] {
				t.Fatalf("at %v: byte %d differs: %#x want %#x (len %d)", s.at, i, got[i], s.data[i], len(got))
			}
		}
		t.Fatalf("at %v: length mismatch %d want %d", s.at, len(got), len(s.data))
	}
}

// applyRandomOp mutates both the drive object and the in-memory model
// identically.
func applyRandomOp(e *testEnv, rnd *rand.Rand, id types.ObjectID, model *[]byte, attr *[]byte) string {
	switch rnd.Intn(10) {
	case 0, 1, 2, 3: // overwrite somewhere
		off := 0
		if len(*model) > 0 {
			off = rnd.Intn(len(*model) + 1)
		}
		n := rnd.Intn(3*types.BlockSize) + 1
		data := make([]byte, n)
		rnd.Read(data)
		e.write(alice, id, uint64(off), data)
		for len(*model) < off+n {
			*model = append(*model, 0)
		}
		copy((*model)[off:], data)
		return fmt.Sprintf("write off=%d n=%d", off, n)
	case 4, 5: // append
		n := rnd.Intn(2*types.BlockSize) + 1
		data := make([]byte, n)
		rnd.Read(data)
		if _, err := e.d.Append(alice, id, data); err != nil {
			e.t.Fatal(err)
		}
		e.tick()
		*model = append(*model, data...)
		return fmt.Sprintf("append n=%d", n)
	case 6, 7: // truncate (shrink or grow)
		var size int
		if len(*model) > 0 && rnd.Intn(2) == 0 {
			size = rnd.Intn(len(*model))
		} else {
			size = len(*model) + rnd.Intn(types.BlockSize)
		}
		if err := e.d.Truncate(alice, id, uint64(size)); err != nil {
			e.t.Fatal(err)
		}
		e.tick()
		for len(*model) < size {
			*model = append(*model, 0)
		}
		*model = (*model)[:size]
		return fmt.Sprintf("truncate %d", size)
	case 8: // setattr
		a := make([]byte, rnd.Intn(64))
		rnd.Read(a)
		if err := e.d.SetAttr(alice, id, a); err != nil {
			e.t.Fatal(err)
		}
		e.tick()
		*attr = a
		return "setattr"
	default: // sync (durability point, no state change)
		if err := e.d.Sync(alice); err != nil {
			e.t.Fatal(err)
		}
		e.tick()
		return "sync"
	}
}

// TestPropertyTimeTravel is the core correctness property of
// comprehensive versioning: after an arbitrary operation sequence,
// reading the object "at" any past instant reproduces exactly the state
// the model had then.
func TestPropertyTimeTravel(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			e := newTestDrive(t)
			rnd := rand.New(rand.NewSource(seed))
			id := e.create(alice)
			var model, attr []byte
			var snaps []snapshot
			snaps = append(snaps, takeSnapshot(e, id, model, attr, false))
			e.tick()
			for i := 0; i < 60; i++ {
				applyRandomOp(e, rnd, id, &model, &attr)
				snaps = append(snaps, takeSnapshot(e, id, model, attr, false))
				e.tick() // keep snapshot instants distinct from op times
			}
			for _, s := range snaps {
				verifySnapshot(t, e, id, s)
			}
			// And re-verify after everything is flushed to disk.
			if err := e.d.Sync(alice); err != nil {
				t.Fatal(err)
			}
			for _, s := range snaps {
				verifySnapshot(t, e, id, s)
			}
		})
	}
}

func TestListVersions(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("a"))
	e.write(alice, id, 0, []byte("b"))
	if err := e.d.Truncate(alice, id, 0); err != nil {
		t.Fatal(err)
	}
	e.tick()
	vs, err := e.d.ListVersions(alice, id)
	if err != nil {
		t.Fatal(err)
	}
	// create + setacl(initial) + 2 writes + truncate = 5 entries.
	if len(vs) != 5 {
		t.Fatalf("versions = %d: %+v", len(vs), vs)
	}
	// Newest first, strictly decreasing versions.
	for i := 1; i < len(vs); i++ {
		if vs[i].Version >= vs[i-1].Version {
			t.Fatal("versions not newest-first")
		}
	}
	if vs[0].Op != "truncate" || vs[len(vs)-1].Op != "create" {
		t.Fatalf("ops: first=%s last=%s", vs[0].Op, vs[len(vs)-1].Op)
	}
	// Recovery flag required.
	if _, err := e.d.ListVersions(bob, id); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("bob listversions: %v", err)
	}
}

func TestRevertRestoresTamperedFile(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	clean := bytes.Repeat([]byte("trusted binary "), 1000)
	e.write(alice, id, 0, clean)
	tClean := e.d.Now()
	e.tick()
	// The intruder trojans the file and shrinks it.
	trojan := []byte("malicious payload")
	e.write(alice, id, 0, trojan)
	if err := e.d.Truncate(alice, id, uint64(len(trojan))); err != nil {
		t.Fatal(err)
	}
	e.tick()
	tTampered := e.d.Now()
	e.tick()

	if err := e.d.Revert(admin, id, tClean); err != nil {
		t.Fatal(err)
	}
	e.tick()
	got := e.read(admin, id, 0, uint64(len(clean)), types.TimeNowest)
	if !bytes.Equal(got, clean) {
		t.Fatal("revert did not restore clean content")
	}
	// The tampered version itself remains in the history pool — the
	// intruder's exploit is evidence (§3.1).
	evil := e.read(admin, id, 0, uint64(len(trojan)), tTampered)
	if !bytes.Equal(evil, trojan) {
		t.Fatalf("tampered version lost from history: %q", evil)
	}
}

func TestRevertDeletedObject(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("deleted by intruder"))
	tAlive := e.d.Now()
	e.tick()
	if err := e.d.Delete(alice, id); err != nil {
		t.Fatal(err)
	}
	e.tick()
	if err := e.d.Revert(admin, id, tAlive); err != nil {
		t.Fatal(err)
	}
	got := e.read(admin, id, 0, 64, types.TimeNowest)
	if string(got) != "deleted by intruder" {
		t.Fatalf("resurrected = %q", got)
	}
	ai, _ := e.d.GetAttr(admin, id, types.TimeNowest)
	if ai.Deleted {
		t.Fatal("object still marked deleted")
	}
}

func TestRevertToCurrentIsNoop(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("x"))
	before, _ := e.d.ListVersions(alice, id)
	if err := e.d.Revert(alice, id, types.TimeNowest); err != nil {
		t.Fatal(err)
	}
	after, _ := e.d.ListVersions(alice, id)
	if len(after) != len(before) {
		t.Fatal("no-op revert created versions")
	}
}

func TestFlushORemovesMidHistory(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("state-A"))
	tA := e.d.Now()
	e.tick()
	e.clk.Advance(time.Minute)
	e.write(alice, id, 0, []byte("state-B"))
	tB := e.d.Now()
	e.tick()
	e.clk.Advance(time.Minute)
	e.write(alice, id, 0, []byte("state-C"))
	tC := e.d.Now()
	e.tick()
	e.clk.Advance(time.Minute)
	e.write(alice, id, 0, []byte("state-D"))
	e.tick()

	// Erase the B and C versions.
	if err := e.d.FlushO(admin, id, tA, tC); err != nil {
		t.Fatal(err)
	}
	e.tick()
	// Current state unaffected.
	if got := e.read(admin, id, 0, 16, types.TimeNowest); string(got) != "state-D" {
		t.Fatalf("current after flush = %q", got)
	}
	// A still reconstructs.
	if got := e.read(admin, id, 0, 16, tA); string(got) != "state-A" {
		t.Fatalf("state-A after flush = %q", got)
	}
	// Reads inside the erased range see A (the version at the range
	// start), not B.
	if got := e.read(admin, id, 0, 16, tB); string(got) != "state-A" {
		t.Fatalf("read inside erased range = %q", got)
	}
	// The erased versions are gone from the listing.
	vs, err := e.d.ListVersions(admin, id)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if v.Time > tA && v.Time <= tC && v.Op == "write" && v.Size == 7 {
			// The synthesized merge entry may sit at tC; only B's
			// distinct version must be gone. Check via read above.
			_ = v
		}
	}
}

func TestFlushOAdminOnly(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("v1"))
	e.write(alice, id, 0, []byte("v2"))
	if err := e.d.FlushO(alice, id, 0, types.TimeNowest); !errors.Is(err, types.ErrAdminOnly) {
		t.Fatalf("user flusho: %v", err)
	}
}

func TestFlushAllObjects(t *testing.T) {
	e := newTestDrive(t)
	id1 := e.create(alice)
	id2 := e.create(alice)
	e.write(alice, id1, 0, []byte("one-v1"))
	e.write(alice, id2, 0, []byte("two-v1"))
	tV1 := e.d.Now()
	e.tick()
	e.clk.Advance(time.Minute)
	e.write(alice, id1, 0, []byte("one-v2"))
	e.write(alice, id2, 0, []byte("two-v2"))
	tV2 := e.d.Now()
	e.tick()
	e.clk.Advance(time.Minute)
	e.write(alice, id1, 0, []byte("one-v3"))
	e.write(alice, id2, 0, []byte("two-v3"))
	e.tick()

	if err := e.d.Flush(admin, tV1, tV2); err != nil {
		t.Fatal(err)
	}
	for i, id := range []types.ObjectID{id1, id2} {
		want := fmt.Sprintf("%s-v3", []string{"one", "two"}[i])
		if got := e.read(admin, id, 0, 16, types.TimeNowest); string(got) != want {
			t.Fatalf("obj %v current = %q want %q", id, got, want)
		}
		wantOld := fmt.Sprintf("%s-v1", []string{"one", "two"}[i])
		if got := e.read(admin, id, 0, 16, tV2); string(got) != wantOld {
			t.Fatalf("obj %v @erased = %q want %q", id, got, wantOld)
		}
	}
}

func TestFlushThenTimeTravelConsistent(t *testing.T) {
	// After an erase, the remaining versions must still reconstruct
	// exactly, including across a flush of the journal to disk.
	e := newTestDrive(t)
	rnd := rand.New(rand.NewSource(42))
	id := e.create(alice)
	var model, attr []byte
	var snaps []snapshot
	var times []types.Timestamp
	for i := 0; i < 30; i++ {
		e.clk.Advance(time.Second)
		applyRandomOp(e, rnd, id, &model, &attr)
		snaps = append(snaps, takeSnapshot(e, id, model, attr, false))
		times = append(times, e.d.Now())
	}
	// Erase a middle slice of history.
	from, to := times[9], times[19]
	if err := e.d.FlushO(admin, id, from, to); err != nil {
		t.Fatal(err)
	}
	// Snapshots outside the range still verify; snapshots inside the
	// range now read as the state at the range start.
	for i, s := range snaps {
		if times[i] > from && times[i] <= to {
			continue
		}
		verifySnapshot(t, e, id, s)
	}
	for i, s := range snaps {
		if times[i] > from && times[i] <= to {
			ref := snaps[9]
			ref.at = s.at
			verifySnapshot(t, e, id, ref)
		}
	}
}
