package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
)

// Inode is the in-memory metadata of one object version. The drive keeps
// the current version's Inode hot; historical versions are materialized
// on demand by undoing journal entries (see history.go).
//
// The block map is sparse: holes and never-written blocks are absent.
// On disk, an inode is written only at checkpoint time as a root block
// plus overflow map blocks (journal-based metadata makes per-update
// inode writes unnecessary, §4.2.2).
type Inode struct {
	ID         types.ObjectID
	Version    uint64
	Size       uint64
	CreateTime types.Timestamp
	ModTime    types.Timestamp
	Attr       []byte
	ACL        []types.ACLEntry
	Deleted    bool
	DeadTime   types.Timestamp

	blocks map[uint64]seglog.BlockAddr

	// Transient reconstruction state (DESIGN.md §16); never persisted —
	// checkpoint encoding walks only the blocks map, and live inodes
	// never carry either field.
	//
	// deltaRef maps a tagged packed-slot reference (installed into
	// blocks by undoing a DeltaMask'd entry) to its decode context: the
	// block-map value — possibly itself a tagged reference — that held
	// the same index just above that entry. Chains link by content, so
	// address churn above never breaks them.
	deltaRef map[uint64]uint64
	// poison marks block indexes whose content at this version was
	// dropped by a retention skip; any poison makes the whole
	// reconstruction unusable (reads fail with ErrNoVersion).
	poison map[uint64]struct{}
}

func newInode(id types.ObjectID, now types.Timestamp, acl []types.ACLEntry) *Inode {
	return &Inode{
		ID:         id,
		Version:    1,
		CreateTime: now,
		ModTime:    now,
		ACL:        append([]types.ACLEntry(nil), acl...),
		blocks:     make(map[uint64]seglog.BlockAddr),
	}
}

// Block returns the address of file block idx (NilAddr for a hole).
func (in *Inode) Block(idx uint64) seglog.BlockAddr { return in.blocks[idx] }

// setBlock installs (or clears, for NilAddr) one mapping.
func (in *Inode) setBlock(idx uint64, addr seglog.BlockAddr) {
	if addr == seglog.NilAddr {
		delete(in.blocks, idx)
		return
	}
	in.blocks[idx] = addr
}

// NumBlocks returns the count of mapped blocks.
func (in *Inode) NumBlocks() int { return len(in.blocks) }

func (in *Inode) setPoison(idx uint64) {
	if in.poison == nil {
		in.poison = make(map[uint64]struct{})
	}
	in.poison[idx] = struct{}{}
}

func (in *Inode) clearPoison(idx uint64) {
	if in.poison != nil {
		delete(in.poison, idx)
	}
}

func (in *Inode) isPoisoned(idx uint64) bool {
	_, ok := in.poison[idx]
	return ok
}

// Clone returns a deep copy; history reconstruction mutates the copy.
func (in *Inode) Clone() *Inode {
	out := *in
	out.Attr = append([]byte(nil), in.Attr...)
	out.ACL = append([]types.ACLEntry(nil), in.ACL...)
	out.blocks = make(map[uint64]seglog.BlockAddr, len(in.blocks))
	for k, v := range in.blocks {
		out.blocks[k] = v
	}
	if in.deltaRef != nil {
		out.deltaRef = make(map[uint64]uint64, len(in.deltaRef))
		for k, v := range in.deltaRef {
			out.deltaRef[k] = v
		}
	}
	if in.poison != nil {
		out.poison = make(map[uint64]struct{}, len(in.poison))
		for k := range in.poison {
			out.poison[k] = struct{}{}
		}
	}
	return &out
}

// Poisoned reports whether any block index of this reconstruction was
// dropped by a retention skip, making the version unreadable.
func (in *Inode) Poisoned() bool { return len(in.poison) > 0 }

// PermFor returns the permissions in force for user: the union of the
// user's entry and the Everyone entry.
func (in *Inode) PermFor(user types.UserID) types.Perm {
	var p types.Perm
	for _, e := range in.ACL {
		if e.User == user || e.User == types.EveryoneID {
			p |= e.Perm
		}
	}
	return p
}

// undo reverts e's effect on the inode, stepping it one version into the
// past. Entries must be applied newest-first.
func (in *Inode) undo(e *journal.Entry) {
	switch e.Type {
	case journal.EntWrite:
		for i, old := range e.Old {
			idx := e.FirstBlock + uint64(i)
			switch {
			case e.SkipMask&(1<<uint(i)) != 0:
				// Retention dropped the pre-entry content: below this
				// entry the index is unreconstructible.
				in.setBlock(idx, seglog.NilAddr)
				in.setPoison(idx)
			case e.DeltaMask&(1<<uint(i)) != 0:
				// Old[i] is a packed-slot reference. Its decode context
				// is the content this index holds just above the entry
				// — record it before the undo replaces it. A context
				// already lost to a newer skip leaves the index
				// poisoned: the delta has nothing to decode against.
				ctx, haveCtx := in.blocks[idx]
				if !haveCtx || in.isPoisoned(idx) {
					in.setBlock(idx, seglog.NilAddr)
					in.setPoison(idx)
					continue
				}
				ref := uint64(old) | deltaRefTag
				if in.deltaRef == nil {
					in.deltaRef = make(map[uint64]uint64)
				}
				in.deltaRef[ref] = uint64(ctx)
				in.blocks[idx] = seglog.BlockAddr(ref)
				in.clearPoison(idx)
			default:
				in.setBlock(idx, old)
				in.clearPoison(idx)
			}
		}
		in.Size = e.OldSize
	case journal.EntTruncate:
		for i, old := range e.Old {
			in.setBlock(e.FirstBlock+uint64(i), old)
			in.clearPoison(e.FirstBlock + uint64(i))
		}
		in.Size = e.OldSize
	case journal.EntSetAttr:
		in.Attr = append([]byte(nil), e.OldAttr...)
	case journal.EntSetACL:
		in.setACLSlot(int(e.ACLIndex), e.OldACL)
	case journal.EntDelete:
		in.Deleted = false
		in.DeadTime = 0
	case journal.EntRevive:
		in.Deleted = true
		in.DeadTime = types.Timestamp(e.OldSize)
	case journal.EntCreate, journal.EntCheckpoint:
		// No state transition to revert; create is handled by the
		// caller (reads before creation fail with ErrNoVersion).
	}
	if e.Type != journal.EntCheckpoint && in.Version > 0 {
		in.Version = e.Version - 1
	}
}

// redo applies e's effect, stepping the inode one version forward.
// Crash recovery replays post-checkpoint entries with it.
func (in *Inode) redo(e *journal.Entry) {
	switch e.Type {
	case journal.EntWrite:
		for i, nw := range e.New {
			in.setBlock(e.FirstBlock+uint64(i), nw)
			// Overwriting makes the index's content known again; the
			// flush rewrite relies on replayed shadows tracking poison
			// precisely (history.go).
			in.clearPoison(e.FirstBlock + uint64(i))
		}
		in.Size = e.NewSize
	case journal.EntTruncate:
		for i := range e.Old {
			in.setBlock(e.FirstBlock+uint64(i), seglog.NilAddr)
			in.clearPoison(e.FirstBlock + uint64(i))
		}
		in.Size = e.NewSize
	case journal.EntSetAttr:
		in.Attr = append([]byte(nil), e.NewAttr...)
	case journal.EntSetACL:
		in.setACLSlot(int(e.ACLIndex), e.NewACL)
	case journal.EntDelete:
		in.Deleted = true
		in.DeadTime = e.Time
	case journal.EntRevive:
		in.Deleted = false
		in.DeadTime = 0
	case journal.EntCreate, journal.EntCheckpoint:
	}
	if e.Type != journal.EntCheckpoint {
		in.Version = e.Version
		in.ModTime = e.Time
	}
}

func (in *Inode) setACLSlot(idx int, e types.ACLEntry) {
	for len(in.ACL) <= idx {
		in.ACL = append(in.ACL, types.ACLEntry{})
	}
	in.ACL[idx] = e
	// Trim trailing empty slots.
	for len(in.ACL) > 0 && in.ACL[len(in.ACL)-1] == (types.ACLEntry{}) {
		in.ACL = in.ACL[:len(in.ACL)-1]
	}
}

// Checkpoint encoding.
//
// Root block: magic(4) id(8) version(8) size(8) ctime(8) mtime(8)
// deadtime(8) flags(1) attrLen(2)+attr aclCount(1)+entries
// overflowCount(2)+addrs(8 each) pairCount(4) inline map pairs.
// Overflow blocks hold continuation of the delta-varint pair stream.
const inodeMagic = 0x53344E44 // "S4ND"

// encodeMapPairs emits the block map as delta-encoded (idx, addr) pairs
// sorted by index.
func (in *Inode) encodeMapPairs() []byte {
	idxs := make([]uint64, 0, len(in.blocks))
	for k := range in.blocks {
		idxs = append(idxs, k)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	prev := uint64(0)
	for i, idx := range idxs {
		d := idx
		if i > 0 {
			d = idx - prev
		}
		n := binary.PutUvarint(tmp[:], d)
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(in.blocks[idx]))
		buf = append(buf, tmp[:n]...)
		prev = idx
	}
	return buf
}

func decodeMapPairs(data []byte, count int) (map[uint64]seglog.BlockAddr, error) {
	m := make(map[uint64]seglog.BlockAddr, count)
	idx := uint64(0)
	for i := 0; i < count; i++ {
		d, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("core: inode map pair %d: %w", i, types.ErrCorrupt)
		}
		data = data[n:]
		a, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("core: inode map addr %d: %w", i, types.ErrCorrupt)
		}
		data = data[n:]
		if i == 0 {
			idx = d
		} else {
			idx += d
		}
		m[idx] = seglog.BlockAddr(a)
	}
	return m, nil
}

// checkpointBlobs serializes the inode into overflow blocks (returned
// first) and a root-block builder that must be completed with the
// overflow addresses once they are appended to the log.
type checkpointBlob struct {
	overflow [][]byte // map-pair stream chunks, in order
	rootPfx  []byte   // root block up to the overflow list
	pairTail []byte   // pairs that fit inline in the root
	pairs    int
}

func (in *Inode) buildCheckpoint() (*checkpointBlob, error) {
	if len(in.Attr) > types.MaxAttrLen || len(in.ACL) > types.MaxACLEntries {
		return nil, types.ErrTooLarge
	}
	cb := &checkpointBlob{pairs: len(in.blocks)}
	hdr := make([]byte, 0, 256)
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		hdr = append(hdr, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		hdr = append(hdr, tmp[:]...)
	}
	put32(inodeMagic)
	put64(uint64(in.ID))
	put64(in.Version)
	put64(in.Size)
	put64(uint64(in.CreateTime))
	put64(uint64(in.ModTime))
	put64(uint64(in.DeadTime))
	flags := byte(0)
	if in.Deleted {
		flags |= 1
	}
	hdr = append(hdr, flags)
	hdr = append(hdr, byte(len(in.Attr)), byte(len(in.Attr)>>8))
	hdr = append(hdr, in.Attr...)
	hdr = append(hdr, byte(len(in.ACL)))
	for _, e := range in.ACL {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(e.User))
		hdr = append(hdr, tmp[:4]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(e.Perm))
		hdr = append(hdr, tmp[:4]...)
	}
	cb.rootPfx = hdr

	pairs := in.encodeMapPairs()
	// Root layout after prefix: overflowCount(2) addrs... pairCount(4)
	// inlinePairs. Reserve space for the worst-case overflow list.
	inlineRoom := seglog.BlockSize - len(hdr) - 2 - 4
	if len(pairs) <= inlineRoom {
		cb.pairTail = pairs
		return cb, nil
	}
	// Chunk the stream into overflow blocks at pair boundaries. Each
	// overflow block is prefixed with a 4-byte payload length so the
	// reader can strip block padding before re-joining the stream.
	newChunk := func() []byte { return make([]byte, 4, seglog.BlockSize) }
	chunk := newChunk()
	rest := pairs
	seal := func(c []byte) {
		binary.LittleEndian.PutUint32(c[:4], uint32(len(c)-4))
		cb.overflow = append(cb.overflow, c)
	}
	for len(rest) > 0 {
		// Decode one pair to find its length.
		_, n1 := binary.Uvarint(rest)
		_, n2 := binary.Uvarint(rest[n1:])
		plen := n1 + n2
		if len(chunk)+plen > seglog.BlockSize {
			seal(chunk)
			chunk = newChunk()
		}
		chunk = append(chunk, rest[:plen]...)
		rest = rest[plen:]
	}
	if len(chunk) > 4 {
		seal(chunk)
	}
	// Each overflow address costs 8 bytes in the root; verify fit.
	if len(hdr)+2+8*len(cb.overflow)+4 > seglog.BlockSize {
		return nil, fmt.Errorf("core: inode checkpoint root overflow (%d overflow blocks): %w",
			len(cb.overflow), types.ErrTooLarge)
	}
	return cb, nil
}

// finishRoot completes the root block given the overflow addresses.
func (cb *checkpointBlob) finishRoot(overflowAddrs []seglog.BlockAddr) []byte {
	root := append([]byte(nil), cb.rootPfx...)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(overflowAddrs)))
	root = append(root, tmp[:2]...)
	for _, a := range overflowAddrs {
		binary.LittleEndian.PutUint64(tmp[:], uint64(a))
		root = append(root, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(cb.pairs))
	root = append(root, tmp[:4]...)
	root = append(root, cb.pairTail...)
	return root
}

// decodeInodeRoot parses a checkpoint root block, returning the inode
// (with block map populated from inline pairs plus the overflow stream
// read via rd) and the overflow addresses (for usage accounting).
func decodeInodeRoot(rd journal.SectorReader, root []byte) (*Inode, []seglog.BlockAddr, error) {
	if len(root) < 57 || binary.LittleEndian.Uint32(root[0:]) != inodeMagic {
		return nil, nil, fmt.Errorf("core: bad inode root: %w", types.ErrCorrupt)
	}
	in := &Inode{}
	in.ID = types.ObjectID(binary.LittleEndian.Uint64(root[4:]))
	in.Version = binary.LittleEndian.Uint64(root[12:])
	in.Size = binary.LittleEndian.Uint64(root[20:])
	in.CreateTime = types.Timestamp(binary.LittleEndian.Uint64(root[28:]))
	in.ModTime = types.Timestamp(binary.LittleEndian.Uint64(root[36:]))
	in.DeadTime = types.Timestamp(binary.LittleEndian.Uint64(root[44:]))
	in.Deleted = root[52]&1 != 0
	attrLen := int(root[53]) | int(root[54])<<8
	p := 55
	if attrLen > types.MaxAttrLen || p+attrLen > len(root) {
		return nil, nil, fmt.Errorf("core: inode attr overflow: %w", types.ErrCorrupt)
	}
	if attrLen > 0 {
		in.Attr = append([]byte(nil), root[p:p+attrLen]...)
	}
	p += attrLen
	if p >= len(root) {
		return nil, nil, fmt.Errorf("core: inode truncated at acl: %w", types.ErrCorrupt)
	}
	aclCount := int(root[p])
	p++
	if aclCount > types.MaxACLEntries || p+8*aclCount > len(root) {
		return nil, nil, fmt.Errorf("core: inode acl overflow: %w", types.ErrCorrupt)
	}
	for i := 0; i < aclCount; i++ {
		in.ACL = append(in.ACL, types.ACLEntry{
			User: types.UserID(binary.LittleEndian.Uint32(root[p:])),
			Perm: types.Perm(binary.LittleEndian.Uint32(root[p+4:])),
		})
		p += 8
	}
	if p+2 > len(root) {
		return nil, nil, fmt.Errorf("core: inode truncated at overflow list: %w", types.ErrCorrupt)
	}
	nOver := int(binary.LittleEndian.Uint16(root[p:]))
	p += 2
	if p+8*nOver+4 > len(root) {
		return nil, nil, fmt.Errorf("core: inode overflow list truncated: %w", types.ErrCorrupt)
	}
	var overAddrs []seglog.BlockAddr
	for i := 0; i < nOver; i++ {
		overAddrs = append(overAddrs, seglog.BlockAddr(binary.LittleEndian.Uint64(root[p:])))
		p += 8
	}
	pairCount := int(binary.LittleEndian.Uint32(root[p:]))
	p += 4
	var stream []byte
	blk := make([]byte, seglog.BlockSize)
	for _, a := range overAddrs {
		if err := rd.Read(a, blk); err != nil {
			return nil, nil, fmt.Errorf("core: inode overflow read: %w", err)
		}
		n := int(binary.LittleEndian.Uint32(blk[:4]))
		if 4+n > len(blk) {
			return nil, nil, fmt.Errorf("core: inode overflow block length: %w", types.ErrCorrupt)
		}
		stream = append(stream, blk[4:4+n]...)
	}
	stream = append(stream, root[p:]...)
	m, err := decodeMapPairs(stream, pairCount)
	if err != nil {
		return nil, nil, err
	}
	in.blocks = m
	return in, overAddrs, nil
}
