package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"s4/internal/types"
)

// TestConcurrentClients drives the drive from several goroutines at
// once (distinct users and objects), with the cleaner running in a
// competing goroutine — the daemon deployment's shape. Correctness
// check: every client's final content is exactly what it last wrote,
// and the drive survives a subsequent recovery.
func TestConcurrentClients(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = time.Second })
	const clients = 8
	const opsEach = 60

	ids := make([]types.ObjectID, clients)
	for i := range ids {
		cred := types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		id, err := e.d.Create(cred, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	final := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cred := types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
			var last []byte
			for op := 0; op < opsEach; op++ {
				data := bytes.Repeat([]byte{byte(i), byte(op)}, 700+op)
				if err := e.d.Write(cred, ids[i], 0, data); err != nil {
					errs <- fmt.Errorf("client %d write %d: %w", i, op, err)
					return
				}
				last = data
				if op%7 == 0 {
					if err := e.d.Sync(cred); err != nil {
						errs <- err
						return
					}
				}
				if _, err := e.d.Read(cred, ids[i], 0, uint64(len(data)), types.TimeNowest); err != nil {
					errs <- fmt.Errorf("client %d read %d: %w", i, op, err)
					return
				}
			}
			final[i] = last
		}()
	}
	// A competing cleaner, like the daemon's background goroutine.
	stop := make(chan struct{})
	var cleanerWG sync.WaitGroup
	cleanerWG.Add(1)
	go func() {
		defer cleanerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.d.CleanOnce(); err != nil {
					errs <- fmt.Errorf("cleaner: %w", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	cleanerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < clients; i++ {
		cred := types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		got, err := e.d.Read(cred, ids[i], 0, uint64(len(final[i])), types.TimeNowest)
		if err != nil || !bytes.Equal(got, final[i]) {
			t.Fatalf("client %d: final content wrong (err=%v)", i, err)
		}
	}
	// And the whole thing survives a crash.
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	for i := 0; i < clients; i++ {
		cred := types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		got, err := e.d.Read(cred, ids[i], 0, uint64(len(final[i])), types.TimeNowest)
		if err != nil || !bytes.Equal(got, final[i]) {
			t.Fatalf("client %d: content wrong after recovery (err=%v)", i, err)
		}
	}
}
