package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"s4/internal/types"
)

// stressScale shrinks the concurrency stress tests under -short or the
// CI race job's S4_STRESS_SHORT knob (the race detector multiplies
// runtime ~10x).
func stressScale() int {
	if testing.Short() || os.Getenv("S4_STRESS_SHORT") != "" {
		return 4
	}
	return 1
}

// TestConcurrentClients drives the drive from several goroutines at
// once (distinct users and objects), with the cleaner running in a
// competing goroutine — the daemon deployment's shape. Correctness
// check: every client's final content is exactly what it last wrote,
// and the drive survives a subsequent recovery.
func TestConcurrentClients(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = time.Second })
	const clients = 8
	const opsEach = 60

	ids := make([]types.ObjectID, clients)
	for i := range ids {
		cred := types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		id, err := e.d.Create(cred, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	final := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cred := types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
			var last []byte
			for op := 0; op < opsEach; op++ {
				data := bytes.Repeat([]byte{byte(i), byte(op)}, 700+op)
				if err := e.d.Write(cred, ids[i], 0, data); err != nil {
					errs <- fmt.Errorf("client %d write %d: %w", i, op, err)
					return
				}
				last = data
				if op%7 == 0 {
					if err := e.d.Sync(cred); err != nil {
						errs <- err
						return
					}
				}
				if _, err := e.d.Read(cred, ids[i], 0, uint64(len(data)), types.TimeNowest); err != nil {
					errs <- fmt.Errorf("client %d read %d: %w", i, op, err)
					return
				}
			}
			final[i] = last
		}()
	}
	// A competing cleaner, like the daemon's background goroutine.
	stop := make(chan struct{})
	var cleanerWG sync.WaitGroup
	cleanerWG.Add(1)
	go func() {
		defer cleanerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.d.CleanOnce(); err != nil {
					errs <- fmt.Errorf("cleaner: %w", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	cleanerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < clients; i++ {
		cred := types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		got, err := e.d.Read(cred, ids[i], 0, uint64(len(final[i])), types.TimeNowest)
		if err != nil || !bytes.Equal(got, final[i]) {
			t.Fatalf("client %d: final content wrong (err=%v)", i, err)
		}
	}
	// And the whole thing survives a crash.
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	for i := 0; i < clients; i++ {
		cred := types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		got, err := e.d.Read(cred, ids[i], 0, uint64(len(final[i])), types.TimeNowest)
		if err != nil || !bytes.Equal(got, final[i]) {
			t.Fatalf("client %d: content wrong after recovery (err=%v)", i, err)
		}
	}
}

// TestSharedObjectStress hammers the SAME objects from many writers and
// history readers at once, with the cleaner aging history out from
// under them (a deliberately short detection window). Each writer owns
// a disjoint block-aligned region of every object, so the final content
// is deterministic even though the object-level lock interleaves their
// versions arbitrarily. Readers walk version history concurrently and
// may only ever observe ErrNoVersion (aged out) — any other error, or a
// torn read, is a bug in the snapshot read path.
func TestSharedObjectStress(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = 100 * time.Millisecond })
	scale := stressScale()
	const (
		writers = 4
		readers = 3
		objects = 3
	)
	rounds := 48 / scale
	region := 2 * int(types.BlockSize) // per-writer slice of each object

	// EveryoneID/PermAll so every writer and reader (including the
	// PermRecover history walks) shares the objects.
	acl := []types.ACLEntry{{User: types.EveryoneID, Perm: types.PermAll}}
	ids := make([]types.ObjectID, objects)
	for i := range ids {
		id, err := e.d.Create(alice, acl, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	e.tick()

	errs := make(chan error, writers+readers+1)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cred := types.Cred{User: types.UserID(100 + w), Client: types.ClientID(w + 1)}
			off := uint64(w * region)
			for r := 0; r < rounds; r++ {
				data := bytes.Repeat([]byte{byte(w + 1), byte(r)}, region/2)
				for _, id := range ids {
					if err := e.d.Write(cred, id, off, data); err != nil {
						errs <- fmt.Errorf("writer %d round %d: %w", w, r, err)
						return
					}
				}
				e.tick()
				if r%11 == 0 {
					if err := e.d.Sync(cred); err != nil {
						errs <- fmt.Errorf("writer %d sync: %w", w, err)
						return
					}
				}
			}
		}()
	}

	done := make(chan struct{})
	var rdWG sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		rd := rd
		rdWG.Add(1)
		go func() {
			defer rdWG.Done()
			rng := rand.New(rand.NewSource(int64(rd) + 1))
			cred := types.Cred{User: types.UserID(300 + rd), Client: types.ClientID(10 + rd)}
			var past []types.Timestamp
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				past = append(past, e.d.Now())
				at := past[rng.Intn(len(past))]
				id := ids[rng.Intn(objects)]
				blk := uint64(rng.Intn(writers * 2))
				_, err := e.d.Read(cred, id, blk*types.BlockSize, types.BlockSize, at)
				if err != nil && !errors.Is(err, types.ErrNoVersion) {
					errs <- fmt.Errorf("reader %d read at %v: %w", rd, at, err)
					return
				}
				if _, err := e.d.GetAttr(cred, id, at); err != nil && !errors.Is(err, types.ErrNoVersion) {
					errs <- fmt.Errorf("reader %d getattr: %w", rd, err)
					return
				}
				if i%17 == 0 {
					if _, err := e.d.ListVersions(cred, id); err != nil {
						errs <- fmt.Errorf("reader %d listversions: %w", rd, err)
						return
					}
				}
			}
		}()
	}

	stop := make(chan struct{})
	var cleanerWG sync.WaitGroup
	cleanerWG.Add(1)
	go func() {
		defer cleanerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.d.CleanOnce(); err != nil {
					errs <- fmt.Errorf("cleaner: %w", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(done)
	rdWG.Wait()
	close(stop)
	cleanerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every writer's region holds exactly its final round's pattern.
	verify := func() {
		t.Helper()
		for _, id := range ids {
			for w := 0; w < writers; w++ {
				want := bytes.Repeat([]byte{byte(w + 1), byte(rounds - 1)}, region/2)
				got, err := e.d.Read(admin, id, uint64(w*region), uint64(region), types.TimeNowest)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("object %d writer %d: final region content wrong", id, w)
				}
			}
		}
	}
	verify()
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	verify()
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotStability pins a timestamp t0, takes a golden read at t0,
// then checks that Read(at=t0) returns byte-identical results while
// concurrent writers overwrite and extend the same object — before,
// during, and after the churn. This is the immutability property the
// lock-free history read path depends on: a version, once written, can
// never change, so a snapshot walk needs no lock against writers.
func TestSnapshotStability(t *testing.T) {
	e := newTestDrive(t) // 1h window: nothing ages out mid-test
	id := e.create(alice)
	const blocks = 4
	base := make([]byte, blocks*types.BlockSize)
	for b := 0; b < blocks; b++ {
		for i := 0; i < int(types.BlockSize); i++ {
			base[b*int(types.BlockSize)+i] = 0xA0 + byte(b)
		}
	}
	e.write(alice, id, 0, base)
	t0 := e.d.Now()
	e.tick()
	golden := e.read(alice, id, 0, uint64(len(base)), t0)
	if !bytes.Equal(golden, base) {
		t.Fatal("golden read at t0 does not match baseline")
	}

	scale := stressScale()
	const writers, readers = 3, 3
	rounds := 40 / scale
	const appendLen = 512
	errs := make(chan error, writers+readers)
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for r := 0; r < rounds; r++ {
				// Overwrite a random baseline block with a pattern that
				// can never equal the baseline (high nibble differs).
				pat := bytes.Repeat([]byte{0x10*byte(w+1) + byte(r&0xF)}, int(types.BlockSize))
				blk := uint64(rng.Intn(blocks))
				if err := e.d.Write(alice, id, blk*types.BlockSize, pat); err != nil {
					errs <- fmt.Errorf("writer %d overwrite: %w", w, err)
					return
				}
				if _, err := e.d.Append(alice, id, make([]byte, appendLen)); err != nil {
					errs <- fmt.Errorf("writer %d append: %w", w, err)
					return
				}
				e.tick()
			}
		}()
	}
	done := make(chan struct{})
	var rwg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		rd := rd
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				got, err := e.d.Read(alice, id, 0, uint64(len(base)), t0)
				if err != nil {
					errs <- fmt.Errorf("reader %d at t0: %w", rd, err)
					return
				}
				if !bytes.Equal(got, golden) {
					errs <- fmt.Errorf("reader %d: read at t0 changed during concurrent writes", rd)
					return
				}
				ai, err := e.d.GetAttr(alice, id, t0)
				if err != nil {
					errs <- fmt.Errorf("reader %d getattr at t0: %w", rd, err)
					return
				}
				if ai.Size != uint64(len(base)) {
					errs <- fmt.Errorf("reader %d: size at t0 = %d, want %d", rd, ai.Size, len(base))
					return
				}
			}
		}()
	}
	wwg.Wait()
	close(done)
	rwg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the churn: t0 still reads the golden bytes, the live object
	// has diverged, and every append landed exactly once.
	if got := e.read(alice, id, 0, uint64(len(base)), t0); !bytes.Equal(got, golden) {
		t.Fatal("read at t0 changed after concurrent writes finished")
	}
	if got := e.read(alice, id, 0, uint64(len(base)), types.TimeNowest); bytes.Equal(got, golden) {
		t.Fatal("live content should have diverged from the t0 snapshot")
	}
	ai, err := e.d.GetAttr(alice, id, types.TimeNowest)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(len(base)) + uint64(writers*rounds*appendLen)
	if ai.Size != want {
		t.Fatalf("final size %d, want %d (every append exactly once)", ai.Size, want)
	}
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
