package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

// testEnv bundles a drive on a virtual clock for deterministic tests.
type testEnv struct {
	t   *testing.T
	d   *Drive
	dev *disk.Disk
	clk *vclock.Virtual
}

func newTestDrive(t *testing.T, mod ...func(*Options)) *testEnv {
	t.Helper()
	clk := vclock.NewVirtual()
	dev := disk.New(disk.SmallDisk(64<<20), clk)
	opts := Options{
		Clock:            clk,
		SegBlocks:        16,
		CheckpointBlocks: 64,
		Window:           time.Hour,
		BlockCacheBytes:  1 << 20,
		ObjectCacheCount: 64,
	}
	for _, m := range mod {
		m(&opts)
	}
	d, err := Format(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return &testEnv{t: t, d: d, dev: dev, clk: clk}
}

// tick advances virtual time so consecutive ops land on distinct
// timestamps.
func (e *testEnv) tick() { e.clk.Advance(time.Millisecond) }

var (
	alice = types.Cred{User: 100, Client: 1}
	bob   = types.Cred{User: 200, Client: 2}
	admin = types.AdminCred()
)

func (e *testEnv) create(cred types.Cred) types.ObjectID {
	e.t.Helper()
	id, err := e.d.Create(cred, nil, nil)
	if err != nil {
		e.t.Fatal(err)
	}
	e.tick()
	return id
}

func (e *testEnv) write(cred types.Cred, id types.ObjectID, off uint64, data []byte) {
	e.t.Helper()
	if err := e.d.Write(cred, id, off, data); err != nil {
		e.t.Fatal(err)
	}
	e.tick()
}

func (e *testEnv) read(cred types.Cred, id types.ObjectID, off, n uint64, at types.Timestamp) []byte {
	e.t.Helper()
	data, err := e.d.Read(cred, id, off, n, at)
	if err != nil {
		e.t.Fatal(err)
	}
	return data
}

func TestCreateWriteRead(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	msg := []byte("self-securing storage survives intrusions")
	e.write(alice, id, 0, msg)
	got := e.read(alice, id, 0, uint64(len(msg)), types.TimeNowest)
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q want %q", got, msg)
	}
	ai, err := e.d.GetAttr(alice, id, types.TimeNowest)
	if err != nil {
		t.Fatal(err)
	}
	if ai.Size != uint64(len(msg)) {
		t.Fatalf("size %d want %d", ai.Size, len(msg))
	}
}

func TestReadPastEOFAndHoles(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	// Sparse write at 10000 leaves a hole in block 0..1.
	e.write(alice, id, 10000, []byte("tail"))
	got := e.read(alice, id, 0, 20, types.TimeNowest)
	if !bytes.Equal(got, make([]byte, 20)) {
		t.Fatalf("hole read %v, want zeros", got)
	}
	got = e.read(alice, id, 10000, 100, types.TimeNowest)
	if string(got) != "tail" {
		t.Fatalf("tail read %q", got)
	}
	if data := e.read(alice, id, 20000, 5, types.TimeNowest); data != nil {
		t.Fatalf("read past EOF returned %d bytes", len(data))
	}
}

func TestOverwriteCreatesVersions(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("version one"))
	t1 := e.d.Now()
	e.tick()
	e.write(alice, id, 0, []byte("version TWO"))
	t2 := e.d.Now()
	e.tick()
	e.write(alice, id, 8, []byte("2.5"))

	if got := e.read(alice, id, 0, 64, types.TimeNowest); string(got) != "version 2.5" {
		t.Fatalf("current = %q", got)
	}
	if got := e.read(alice, id, 0, 64, t2); string(got) != "version TWO" {
		t.Fatalf("at t2 = %q", got)
	}
	if got := e.read(alice, id, 0, 64, t1); string(got) != "version one" {
		t.Fatalf("at t1 = %q", got)
	}
}

func TestReadBeforeCreation(t *testing.T) {
	e := newTestDrive(t)
	before := e.d.Now()
	e.tick()
	id := e.create(alice)
	e.write(alice, id, 0, []byte("x"))
	_, err := e.d.Read(alice, id, 0, 1, before)
	if !errors.Is(err, types.ErrNoVersion) {
		t.Fatalf("read before creation: %v", err)
	}
}

func TestPartialBlockOverwrite(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	base := bytes.Repeat([]byte{'a'}, 3*types.BlockSize)
	e.write(alice, id, 0, base)
	tBase := e.d.Now()
	e.tick()
	e.write(alice, id, 100, []byte("XYZ"))
	cur := e.read(alice, id, 0, uint64(len(base)), types.TimeNowest)
	want := append([]byte(nil), base...)
	copy(want[100:], "XYZ")
	if !bytes.Equal(cur, want) {
		t.Fatal("partial overwrite merged wrong")
	}
	old := e.read(alice, id, 0, uint64(len(base)), tBase)
	if !bytes.Equal(old, base) {
		t.Fatal("old version disturbed by partial overwrite")
	}
}

func TestAppend(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	off1, err := e.d.Append(alice, id, []byte("hello "))
	if err != nil || off1 != 0 {
		t.Fatal(off1, err)
	}
	e.tick()
	off2, err := e.d.Append(alice, id, []byte("world"))
	if err != nil || off2 != 6 {
		t.Fatal(off2, err)
	}
	if got := e.read(alice, id, 0, 64, types.TimeNowest); string(got) != "hello world" {
		t.Fatalf("appended = %q", got)
	}
}

func TestTruncateShrinkAndHistory(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	data := bytes.Repeat([]byte{'z'}, 2*types.BlockSize+100)
	e.write(alice, id, 0, data)
	tFull := e.d.Now()
	e.tick()
	if err := e.d.Truncate(alice, id, 10); err != nil {
		t.Fatal(err)
	}
	e.tick()
	ai, _ := e.d.GetAttr(alice, id, types.TimeNowest)
	if ai.Size != 10 {
		t.Fatalf("size after truncate = %d", ai.Size)
	}
	// The full version remains readable.
	old := e.read(alice, id, 0, uint64(len(data)), tFull)
	if !bytes.Equal(old, data) {
		t.Fatal("pre-truncate version lost")
	}
}

func TestTruncateThenExtendZeroes(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, bytes.Repeat([]byte{'q'}, 100))
	e.tick()
	if err := e.d.Truncate(alice, id, 10); err != nil {
		t.Fatal(err)
	}
	e.tick()
	// Extending must not resurrect the stale 'q' bytes beyond 10.
	e.write(alice, id, 50, []byte("end"))
	got := e.read(alice, id, 0, 53, types.TimeNowest)
	want := make([]byte, 53)
	copy(want, bytes.Repeat([]byte{'q'}, 10))
	copy(want[50:], "end")
	if !bytes.Equal(got, want) {
		t.Fatalf("stale bytes resurrected: %q", got)
	}
}

func TestTruncateGrow(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("abc"))
	e.tick()
	if err := e.d.Truncate(alice, id, 1000); err != nil {
		t.Fatal(err)
	}
	ai, _ := e.d.GetAttr(alice, id, types.TimeNowest)
	if ai.Size != 1000 {
		t.Fatalf("size = %d", ai.Size)
	}
	got := e.read(alice, id, 0, 1000, types.TimeNowest)
	if string(got[:3]) != "abc" || !bytes.Equal(got[3:], make([]byte, 997)) {
		t.Fatal("grow-truncate content wrong")
	}
}

func TestDeleteAndHistoryRead(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("incriminating evidence"))
	tAlive := e.d.Now()
	e.tick()
	if err := e.d.Delete(alice, id); err != nil {
		t.Fatal(err)
	}
	e.tick()
	// Current reads fail...
	if _, err := e.d.Read(alice, id, 0, 10, types.TimeNowest); !errors.Is(err, types.ErrNoObject) {
		t.Fatalf("read of deleted object: %v", err)
	}
	// ...but the history pool still has it (alice holds Recovery).
	got := e.read(alice, id, 0, 64, tAlive)
	if string(got) != "incriminating evidence" {
		t.Fatalf("history read = %q", got)
	}
	// Double delete fails.
	if err := e.d.Delete(alice, id); !errors.Is(err, types.ErrNoObject) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSetGetAttr(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	if err := e.d.SetAttr(alice, id, []byte("nfs-attrs-v1")); err != nil {
		t.Fatal(err)
	}
	tV1 := e.d.Now()
	e.tick()
	if err := e.d.SetAttr(alice, id, []byte("nfs-attrs-v2")); err != nil {
		t.Fatal(err)
	}
	ai, _ := e.d.GetAttr(alice, id, types.TimeNowest)
	if string(ai.Attr) != "nfs-attrs-v2" {
		t.Fatalf("attr = %q", ai.Attr)
	}
	ai, err := e.d.GetAttr(alice, id, tV1)
	if err != nil {
		t.Fatal(err)
	}
	if string(ai.Attr) != "nfs-attrs-v1" {
		t.Fatalf("attr@t1 = %q", ai.Attr)
	}
	if err := e.d.SetAttr(alice, id, bytes.Repeat([]byte{1}, types.MaxAttrLen+1)); !errors.Is(err, types.ErrTooLarge) {
		t.Fatalf("oversized attr: %v", err)
	}
}

func TestACLEnforcement(t *testing.T) {
	e := newTestDrive(t)
	id, err := e.d.Create(alice, []types.ACLEntry{
		{User: alice.User, Perm: types.PermAll},
		{User: bob.User, Perm: types.PermRead},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.tick()
	e.write(alice, id, 0, []byte("shared"))

	// Bob can read but not write or delete.
	if got := e.read(bob, id, 0, 6, types.TimeNowest); string(got) != "shared" {
		t.Fatalf("bob read = %q", got)
	}
	if err := e.d.Write(bob, id, 0, []byte("x")); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("bob write: %v", err)
	}
	if err := e.d.Delete(bob, id); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("bob delete: %v", err)
	}
	// A stranger can do nothing.
	carol := types.Cred{User: 300, Client: 3}
	if _, err := e.d.Read(carol, id, 0, 1, types.TimeNowest); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("carol read: %v", err)
	}
	// Admin bypasses.
	if _, err := e.d.Read(admin, id, 0, 1, types.TimeNowest); err != nil {
		t.Fatalf("admin read: %v", err)
	}
}

func TestRecoveryFlagGatesHistory(t *testing.T) {
	e := newTestDrive(t)
	// Bob has read but NOT the Recovery flag.
	id, err := e.d.Create(alice, []types.ACLEntry{
		{User: alice.User, Perm: types.PermAll},
		{User: bob.User, Perm: types.PermRead},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.tick()
	e.write(alice, id, 0, []byte("v1"))
	tV1 := e.d.Now()
	e.tick()
	e.write(alice, id, 0, []byte("v2"))

	// Bob reads the current version fine.
	if got := e.read(bob, id, 0, 2, types.TimeNowest); string(got) != "v2" {
		t.Fatalf("bob current = %q", got)
	}
	// But the overwritten version is recovery data.
	if _, err := e.d.Read(bob, id, 0, 2, tV1); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("bob history read: %v", err)
	}
	// Alice (Recovery set) and the admin may.
	if got := e.read(alice, id, 0, 2, tV1); string(got) != "v1" {
		t.Fatalf("alice history = %q", got)
	}
	if got := e.read(admin, id, 0, 2, tV1); string(got) != "v1" {
		t.Fatalf("admin history = %q", got)
	}
}

func TestUserCanHideHistoryWithSetACL(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("embarrassing draft"))
	tDraft := e.d.Now()
	e.tick()
	e.write(alice, id, 0, []byte("final text ok now"))
	e.tick()
	// Alice clears her own Recovery flag (§3.4): old versions become
	// admin-only.
	if err := e.d.SetACL(alice, id, 0, types.ACLEntry{
		User: alice.User, Perm: types.PermAll &^ types.PermRecover,
	}); err != nil {
		t.Fatal(err)
	}
	e.tick()
	if _, err := e.d.Read(alice, id, 0, 32, tDraft); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("alice can still read hidden history: %v", err)
	}
	if got := e.read(admin, id, 0, 18, tDraft); string(got) != "embarrassing draft" {
		t.Fatalf("admin blocked from hidden history: %q", got)
	}
}

func TestGetACL(t *testing.T) {
	e := newTestDrive(t)
	id, err := e.d.Create(alice, []types.ACLEntry{
		{User: alice.User, Perm: types.PermAll},
		{User: types.EveryoneID, Perm: types.PermRead},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.tick()
	got, err := e.d.GetACLByIndex(alice, id, 1, types.TimeNowest)
	if err != nil || got.User != types.EveryoneID {
		t.Fatal(got, err)
	}
	if _, err := e.d.GetACLByIndex(alice, id, 9, types.TimeNowest); !errors.Is(err, types.ErrInval) {
		t.Fatalf("out-of-range ACL index: %v", err)
	}
	// Effective perms for bob = Everyone.
	eff, err := e.d.GetACLByUser(bob, id, bob.User, types.TimeNowest)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Perm.Has(types.PermRead) || eff.Perm.Has(types.PermWrite) {
		t.Fatalf("effective perm = %v", eff.Perm)
	}
}

func TestReservedObjectsProtected(t *testing.T) {
	e := newTestDrive(t)
	if err := e.d.Write(alice, types.AuditObject, 0, []byte("scrub the log")); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("audit object write: %v", err)
	}
	if err := e.d.Write(alice, types.PartitionTable, 0, []byte("x")); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("partition table write: %v", err)
	}
	if err := e.d.Delete(alice, types.AuditObject); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("audit object delete: %v", err)
	}
	if _, err := e.d.Read(alice, types.AuditObject, 0, 16, types.TimeNowest); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("audit object read by user: %v", err)
	}
}

func TestPartitions(t *testing.T) {
	e := newTestDrive(t)
	root := e.create(alice)
	if err := e.d.PCreate(alice, "export", root); err != nil {
		t.Fatal(err)
	}
	e.tick()
	id, err := e.d.PMount(bob, "export", types.TimeNowest)
	if err != nil || id != root {
		t.Fatal(id, err)
	}
	list, err := e.d.PList(bob, types.TimeNowest)
	if err != nil || len(list) != 1 || list[0].Name != "export" {
		t.Fatalf("plist = %+v err=%v", list, err)
	}
	// Duplicate name rejected.
	if err := e.d.PCreate(alice, "export", root); !errors.Is(err, types.ErrExist) {
		t.Fatalf("dup pcreate: %v", err)
	}
	tBefore := e.d.Now()
	e.tick()
	if err := e.d.PDelete(alice, "export"); err != nil {
		t.Fatal(err)
	}
	e.tick()
	if _, err := e.d.PMount(bob, "export", types.TimeNowest); !errors.Is(err, types.ErrNoObject) {
		t.Fatalf("pmount after pdelete: %v", err)
	}
	// The partition table is versioned: admin sees the old mapping.
	id, err = e.d.PMount(admin, "export", tBefore)
	if err != nil || id != root {
		t.Fatalf("time-based pmount: %v %v", id, err)
	}
	// Bob cannot create names over alice's object.
	if err := e.d.PCreate(bob, "steal", root); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("bob pcreate over alice's object: %v", err)
	}
}

func TestSetWindowAdminOnly(t *testing.T) {
	e := newTestDrive(t)
	if err := e.d.SetWindow(alice, time.Minute); !errors.Is(err, types.ErrAdminOnly) {
		t.Fatalf("user setwindow: %v", err)
	}
	if err := e.d.SetWindow(admin, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := e.d.Window(); got != 30*time.Minute {
		t.Fatalf("window = %v", got)
	}
	if err := e.d.SetWindow(admin, -time.Second); !errors.Is(err, types.ErrInval) {
		t.Fatalf("negative window: %v", err)
	}
}

func TestAuditRecordsEveryRequest(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("data"))
	_ = e.read(alice, id, 0, 4, types.TimeNowest)
	_, _ = e.d.Read(bob, id, 0, 4, types.TimeNowest) // denied, still audited
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	recs, err := e.d.AuditRead(admin, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawCreate, sawWrite, sawRead, sawDenied bool
	for _, r := range recs {
		switch {
		case r.Op == types.OpCreate && r.OK:
			sawCreate = true
		case r.Op == types.OpWrite && r.OK && r.Obj == id:
			sawWrite = true
		case r.Op == types.OpRead && r.OK && r.User == alice.User:
			sawRead = true
		case r.Op == types.OpRead && !r.OK && r.User == bob.User:
			sawDenied = true
		}
	}
	if !sawCreate || !sawWrite || !sawRead || !sawDenied {
		t.Fatalf("audit coverage: create=%v write=%v read=%v denied=%v (%d recs)",
			sawCreate, sawWrite, sawRead, sawDenied, len(recs))
	}
	// Sequence numbers strictly increase.
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatal("audit seq not increasing")
		}
	}
	// Users cannot read the audit log.
	if _, err := e.d.AuditRead(alice, 0, 0); !errors.Is(err, types.ErrAdminOnly) {
		t.Fatalf("user audit read: %v", err)
	}
}

func TestLargeFileIndirection(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.ObjectCacheCount = 4 })
	id := e.create(alice)
	// Large enough that the inode checkpoint needs overflow blocks.
	data := bytes.Repeat([]byte{0xCD}, 300*types.BlockSize)
	for off := 0; off < len(data); off += types.MaxIO {
		end := off + types.MaxIO
		if end > len(data) {
			end = len(data)
		}
		e.write(alice, id, uint64(off), data[off:end])
	}
	// Force checkpoint + eviction by creating other objects.
	for i := 0; i < 10; i++ {
		other := e.create(alice)
		e.write(alice, other, 0, []byte("filler"))
	}
	for off := 0; off < len(data); off += types.MaxIO {
		end := off + types.MaxIO
		if end > len(data) {
			end = len(data)
		}
		got := e.read(alice, id, uint64(off), uint64(end-off), types.TimeNowest)
		if !bytes.Equal(got, data[off:end]) {
			t.Fatal("large object corrupted across checkpoint/eviction")
		}
	}
}

func TestObjectCacheEviction(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.ObjectCacheCount = 8 })
	var ids []types.ObjectID
	contents := map[types.ObjectID][]byte{}
	for i := 0; i < 50; i++ {
		id := e.create(alice)
		data := bytes.Repeat([]byte{byte(i)}, 100+i)
		e.write(alice, id, 0, data)
		ids = append(ids, id)
		contents[id] = data
	}
	for _, id := range ids {
		got := e.read(alice, id, 0, 1024, types.TimeNowest)
		if !bytes.Equal(got, contents[id]) {
			t.Fatalf("object %v corrupted after eviction", id)
		}
	}
}

func TestMaxIOLimit(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	if err := e.d.Write(alice, id, 0, make([]byte, types.MaxIO+1)); !errors.Is(err, types.ErrTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
	if _, err := e.d.Read(alice, id, 0, types.MaxIO+1, types.TimeNowest); !errors.Is(err, types.ErrTooLarge) {
		t.Fatalf("oversized read: %v", err)
	}
}

func TestClosedDriveRejectsOps(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	if err := e.d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.d.Create(alice, nil, nil); !errors.Is(err, types.ErrDriveStopped) {
		t.Fatalf("create on closed drive: %v", err)
	}
	if err := e.d.Write(alice, id, 0, []byte("x")); !errors.Is(err, types.ErrDriveStopped) {
		t.Fatalf("write on closed drive: %v", err)
	}
}

func TestStatusAndStats(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, bytes.Repeat([]byte{1}, 5*types.BlockSize))
	e.write(alice, id, 0, bytes.Repeat([]byte{2}, 5*types.BlockSize))
	st := e.d.Status()
	if st.Objects < 2 { // partition table + user object
		t.Fatalf("objects = %d", st.Objects)
	}
	if st.HistoryBlocks < 5 {
		t.Fatalf("history blocks = %d, want >= 5 (overwritten data)", st.HistoryBlocks)
	}
	ds := e.d.DriveStats()
	if ds.Ops[types.OpWrite] != 2 || ds.VersionsMade == 0 {
		t.Fatalf("stats = %+v", ds)
	}
}
