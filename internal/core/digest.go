package core

import (
	"fmt"
	"sort"
	"strings"

	"s4/internal/types"
)

// StateDigest renders the drive's recovered structural state as a
// deterministic, human-diffable text dump: object map (chain anchors,
// checkpoint addresses, version counters, landmark indexes), per-segment
// occupancy and free bits, shared-journal-block refcounts, audit-block
// list, and allocator counters.
//
// Its purpose is the recovery-equivalence battery: the same crash image
// opened via the segment index and via full-scan replay must produce
// byte-identical digests. Deliberately excluded: object.nextAge (a lazy
// aging hint, normalized to zero by both recovery paths before first
// use) and object.lmReset (an index-only persistence flag with no
// full-scan counterpart); in-memory caches; and statistics.
func (d *Drive) StateDigest() string {
	d.mu.Lock()
	defer d.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "nextOID=%d window=%d auditSeq=%d\n", d.nextOID, d.window, d.auditSeq)
	fmt.Fprintf(&b, "totals live=%d hist=%d\n", d.usage.liveBlocks(), d.usage.historyBlocks())

	fmt.Fprintf(&b, "audit n=%d\n", len(d.auditBlocks))
	for _, r := range d.auditBlocks {
		fmt.Fprintf(&b, "  audit addr=%d firstSeq=%d lastTime=%d\n", r.addr, r.firstSeq, r.lastTime)
	}

	ids := make([]types.ObjectID, 0, len(d.objects))
	for id := range d.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(&b, "objects n=%d\n", len(ids))
	for _, id := range ids {
		o := d.objects[id]
		fmt.Fprintf(&b, "  obj %d nextVer=%d cpVer=%d root=%d jhead=%d jtail=%d floorVer=%d floorTime=%d pruned=%v\n",
			o.id, o.nextVersion, o.cpVersion, o.inodeRoot, o.jhead, o.jtail, o.floorVersion, o.floorTime, o.pruned)
		fmt.Fprintf(&b, "    cpBlocks=%v\n", o.cpBlocks)
		for _, ln := range o.landmarks {
			fmt.Fprintf(&b, "    landmark t=%d v=%d root=%d sector=%d\n", ln.time, ln.version, ln.root, ln.sector)
		}
	}

	type jref struct {
		addr uint64
		n    int
	}
	refs := make([]jref, 0, len(d.jblockRef))
	for a, n := range d.jblockRef {
		refs = append(refs, jref{uint64(a), n})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].addr < refs[j].addr })
	fmt.Fprintf(&b, "jblockRef n=%d\n", len(refs))
	for _, r := range refs {
		fmt.Fprintf(&b, "  jref addr=%d n=%d\n", r.addr, r.n)
	}

	nSeg := d.log.NumSegments()
	for seg := int64(0); seg < nSeg; seg++ {
		live, hist := d.usage.occupancy(seg)
		if d.log.IsFree(seg) {
			fmt.Fprintf(&b, "seg %d free\n", seg)
			continue
		}
		fmt.Fprintf(&b, "seg %d live=%d hist=%d\n", seg, live, hist)
	}
	return b.String()
}
