package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

// Tests for the group-commit write pipeline (DESIGN.md §11): commit
// tickets, coalesced device forces, the dirty-object set, and the
// decoupled flush's crash consistency.

// TestGroupCommitCoalesces runs rounds of 16 simultaneous syncers and
// checks the commit-ticket protocol batches them: every Sync call is
// accounted as exactly one batch leader or one coalesced follower, and
// the device sees fewer forces than there were Sync calls.
func TestGroupCommitCoalesces(t *testing.T) {
	e := newTestDrive(t)
	const syncers = 16
	rounds := 30 / stressScale()

	ids := make([]types.ObjectID, syncers)
	creds := make([]types.Cred, syncers)
	for i := range ids {
		creds[i] = types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		id, err := e.d.Create(creds[i], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	s0 := e.d.GetStats()

	var syncCalls int
	for r := 0; r < rounds; r++ {
		// Barrier per round so all 16 Syncs are genuinely in flight
		// together — the shape the ticket protocol exists for.
		var wg sync.WaitGroup
		errs := make(chan error, syncers)
		for i := 0; i < syncers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				data := bytes.Repeat([]byte{byte(i), byte(r)}, 512)
				if err := e.d.Write(creds[i], ids[i], 0, data); err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", i, r, err)
					return
				}
				if err := e.d.Sync(creds[i]); err != nil {
					errs <- fmt.Errorf("syncer %d round %d: %w", i, r, err)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		syncCalls += syncers
		e.tick()
	}

	s := e.d.GetStats()
	batches := s.CommitBatches - s0.CommitBatches
	coalesced := s.SyncsCoalesced - s0.SyncsCoalesced
	forces := s.DeviceForces - s0.DeviceForces
	if batches+coalesced != int64(syncCalls) {
		t.Fatalf("accounting: %d batches + %d coalesced != %d Sync calls",
			batches, coalesced, syncCalls)
	}
	if coalesced == 0 {
		t.Fatalf("no Sync coalesced across %d concurrent calls", syncCalls)
	}
	if forces >= int64(syncCalls) {
		t.Fatalf("%d device forces for %d Sync calls: group commit is not batching",
			forces, syncCalls)
	}
	if batches < 1 {
		t.Fatal("no commit batches recorded")
	}

	// Coalesced durability is real durability: everything survives a
	// crash.
	e.reopen()
	for i := range ids {
		want := bytes.Repeat([]byte{byte(i), byte(rounds - 1)}, 512)
		got, err := e.d.Read(creds[i], ids[i], 0, uint64(len(want)), types.TimeNowest)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("object %d after crash: err=%v content ok=%v", i, err, bytes.Equal(got, want))
		}
	}
}

// TestSyncErrorNotMaskedByCoalescing arms a device fault while a batch
// commits and checks no Sync call reports success spuriously: a caller
// whose data may not be durable must see the error (the leader does
// not advance the commit horizon on failure).
func TestSyncErrorNotMaskedByCoalescing(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("durable base"))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.write(alice, id, 0, bytes.Repeat([]byte{0xAB}, 2048))
	e.dev.FailAfter(0, fmt.Errorf("force fault"))
	err := e.d.Sync(alice)
	e.dev.FailAfter(-1, nil)
	if err == nil {
		t.Fatal("Sync succeeded while the device force failed")
	}
	// The write-error latch makes the log unusable by design; a fresh
	// open of the same device must still recover the synced state.
	e.reopen()
	got, err := e.d.Read(alice, id, 0, 12, types.TimeNowest)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable base" && !bytes.Equal(got, bytes.Repeat([]byte{0xAB}, 12)) {
		t.Fatalf("post-crash content %q is neither version", got)
	}
}

// TestVectoredWriteCrossesSeal writes runs larger than a whole segment
// in one call, forcing AppendVec to seal mid-batch, and checks the
// content and its history survive recovery intact.
func TestVectoredWriteCrossesSeal(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.SegBlocks = 8 })
	id := e.create(alice)
	// 6 blocks per write on 7 payload blocks per segment: every write
	// crosses a seal boundary somewhere.
	const blocks = 6
	var want []byte
	for r := 0; r < 5; r++ {
		want = bytes.Repeat([]byte{byte(0xC0 + r)}, blocks*int(types.BlockSize))
		e.write(alice, id, 0, want)
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	got := e.read(alice, id, 0, uint64(len(want)), types.TimeNowest)
	if !bytes.Equal(got, want) {
		t.Fatal("multi-segment vectored write corrupted after recovery")
	}
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushAppendOverlapStress hammers the decoupled flush: writers
// stage multi-block appends (which run with the log mutex only, outside
// any in-flight device write) while syncers force batches and a cleaner
// competes. Run under -race this exercises the flushBuf hand-off,
// the double-buffer seal swap, and the pad-slot reservation.
func TestFlushAppendOverlapStress(t *testing.T) {
	e := newTestDrive(t, func(o *Options) {
		o.SegBlocks = 8
		o.Window = 50 * time.Millisecond
	})
	scale := stressScale()
	const writers, syncers = 4, 4
	rounds := 60 / scale

	ids := make([]types.ObjectID, writers)
	creds := make([]types.Cred, writers)
	for i := range ids {
		creds[i] = types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		id, err := e.d.Create(creds[i], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	errs := make(chan error, writers+syncers+1)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// 3 blocks: vectored, and every few appends cross a seal.
				data := bytes.Repeat([]byte{byte(w + 1), byte(r)}, 3*int(types.BlockSize)/2)
				if err := e.d.Write(creds[w], ids[w], 0, data); err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
				e.tick()
			}
		}()
	}
	done := make(chan struct{})
	var swg sync.WaitGroup
	for s := 0; s < syncers; s++ {
		s := s
		swg.Add(1)
		go func() {
			defer swg.Done()
			cred := types.Cred{User: types.UserID(200 + s), Client: types.ClientID(20 + s)}
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := e.d.Sync(cred); err != nil {
					errs <- fmt.Errorf("syncer %d: %w", s, err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.d.CleanOnce(); err != nil {
					errs <- fmt.Errorf("cleaner: %w", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(done)
	swg.Wait()
	close(stop)
	cwg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for w := 0; w < writers; w++ {
		want := bytes.Repeat([]byte{byte(w + 1), byte(rounds - 1)}, 3*int(types.BlockSize)/2)
		got := e.read(creds[w], ids[w], 0, uint64(len(want)), types.TimeNowest)
		if !bytes.Equal(got, want) {
			t.Fatalf("writer %d: final content wrong", w)
		}
	}
	if err := e.d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidGroupCommit records the device-write journal while
// concurrent writers and syncers drive group commits, then replays
// crash images sampled across the whole journal — including points that
// land inside a batch's device writes — and requires every image to
// recover and pass CheckInvariants.
func TestCrashMidGroupCommit(t *testing.T) {
	clk := vclock.NewVirtual()
	rec := disk.NewFault(64 << 20)
	opts := Options{
		Clock:            clk,
		SegBlocks:        16,
		CheckpointBlocks: 64,
		Window:           time.Hour,
		BlockCacheBytes:  1 << 20,
		ObjectCacheCount: 64,
	}
	d, err := Format(rec, opts)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	rounds := 20 / stressScale()
	ids := make([]types.ObjectID, clients)
	creds := make([]types.Cred, clients)
	for i := range ids {
		creds[i] = types.Cred{User: types.UserID(100 + i), Client: types.ClientID(i + 1)}
		id, err := d.Create(creds[i], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := d.Sync(types.AdminCred()); err != nil {
		t.Fatal(err)
	}
	rec.StartRecording()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				data := bytes.Repeat([]byte{byte(i + 1), byte(r)}, 1024)
				if err := d.Write(creds[i], ids[i], 0, data); err != nil {
					errs <- fmt.Errorf("writer %d: %w", i, err)
					return
				}
				if err := d.Sync(creds[i]); err != nil {
					errs <- fmt.Errorf("syncer %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	endTime := d.Now()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	writes := rec.Writes()
	if writes == 0 {
		t.Fatal("no device writes recorded")
	}
	// Sample ~64 crash points spread over the journal; every one must
	// recover to a consistent image.
	step := writes/64 + 1
	points := 0
	for k := 0; k <= writes; k += step {
		img, err := rec.ImageAt(k)
		if err != nil {
			t.Fatal(err)
		}
		iopts := opts
		iopts.Clock = vclock.NewVirtualAt(endTime.Time())
		drv, err := Open(img, iopts)
		if err != nil {
			t.Fatalf("crash point %d/%d: recovery failed: %v", k, writes, err)
		}
		if err := drv.CheckInvariants(); err != nil {
			t.Fatalf("crash point %d/%d: %v", k, writes, err)
		}
		if err := drv.Close(); err != nil {
			t.Fatalf("crash point %d/%d: close: %v", k, writes, err)
		}
		points++
	}
	t.Logf("verified %d crash points over %d device writes", points, writes)
}
