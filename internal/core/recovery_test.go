package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"s4/internal/disk"
	"s4/internal/types"
	"s4/internal/vclock"
)

// reopen simulates a crash: the device keeps its durable contents, the
// drive is reconstructed from scratch (checkpoint + roll-forward).
func (e *testEnv) reopen() {
	e.t.Helper()
	opts := e.d.opts
	d, err := Open(e.dev, opts)
	if err != nil {
		e.t.Fatalf("reopen: %v", err)
	}
	e.d = d
}

func TestRecoveryAfterCleanClose(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("durable data"))
	if err := e.d.Close(); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	got := e.read(alice, id, 0, 64, types.TimeNowest)
	if string(got) != "durable data" {
		t.Fatalf("after reopen: %q", got)
	}
}

func TestRecoveryAfterCrashWithSync(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("v1 synced"))
	tV1 := e.d.Now()
	e.tick()
	e.write(alice, id, 0, []byte("v2 synced"))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	// Crash without Close: no checkpoint was ever written, so recovery
	// replays the journal from the log alone.
	e.reopen()
	if got := e.read(alice, id, 0, 64, types.TimeNowest); string(got) != "v2 synced" {
		t.Fatalf("current after crash = %q", got)
	}
	if got := e.read(alice, id, 0, 64, tV1); string(got) != "v1 synced" {
		t.Fatalf("history after crash = %q", got)
	}
	// ACL survived (initial ACL is journaled).
	if _, err := e.d.Read(bob, id, 0, 1, types.TimeNowest); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("ACL lost in recovery: %v", err)
	}
}

func TestRecoveryCheckpointPlusRollForward(t *testing.T) {
	e := newTestDrive(t)
	id1 := e.create(alice)
	e.write(alice, id1, 0, []byte("before checkpoint"))
	if err := e.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.tick()
	// Post-checkpoint activity: new object, more writes, a delete.
	id2 := e.create(bob)
	e.write(bob, id2, 0, []byte("after checkpoint"))
	e.write(alice, id1, 0, []byte("updated after cp"))
	victim := e.create(alice)
	e.write(alice, victim, 0, []byte("doomed"))
	if err := e.d.Delete(alice, victim); err != nil {
		t.Fatal(err)
	}
	e.tick()
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	// The overwrite is one byte shorter than the original, so the old
	// final byte survives (writes never shrink an object).
	if got := e.read(alice, id1, 0, 64, types.TimeNowest); string(got) != "updated after cpt" {
		t.Fatalf("id1 = %q", got)
	}
	if got := e.read(bob, id2, 0, 64, types.TimeNowest); string(got) != "after checkpoint" {
		t.Fatalf("id2 = %q", got)
	}
	if _, err := e.d.Read(alice, victim, 0, 1, types.TimeNowest); !errors.Is(err, types.ErrNoObject) {
		t.Fatalf("victim after recovery: %v", err)
	}
	// Fresh creations don't collide with recovered IDs.
	id3 := e.create(alice)
	if id3 == id1 || id3 == id2 || id3 == victim {
		t.Fatal("ObjectID reused after recovery")
	}
}

func TestUnsyncedDataLostButConsistent(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("durable"))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.tick()
	e.write(alice, id, 0, []byte("vanishing — never synced"))
	// Crash. The unsynced write disappears; the synced version rules.
	e.reopen()
	got := e.read(alice, id, 0, 64, types.TimeNowest)
	if string(got) != "durable" {
		t.Fatalf("after crash = %q", got)
	}
}

func TestRecoveryPreservesAudit(t *testing.T) {
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("x"))
	if err := e.d.Close(); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	recs, err := e.d.AuditRead(admin, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawWrite bool
	for _, r := range recs {
		if r.Op == types.OpWrite && r.Obj == id {
			sawWrite = true
		}
	}
	if !sawWrite {
		t.Fatalf("audit trail lost across restart (%d records)", len(recs))
	}
	// New records continue with increasing sequence numbers.
	e.tick()
	e.write(alice, id, 0, []byte("y"))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	recs2, err := e.d.AuditRead(admin, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) <= len(recs) {
		t.Fatal("no new audit records after restart")
	}
	for i := 1; i < len(recs2); i++ {
		if recs2[i].Seq <= recs2[i-1].Seq {
			t.Fatal("audit seq regressed across restart")
		}
	}
}

func TestRecoveryPreservesPartitionsAndWindow(t *testing.T) {
	e := newTestDrive(t)
	root := e.create(alice)
	if err := e.d.PCreate(alice, "export", root); err != nil {
		t.Fatal(err)
	}
	if err := e.d.SetWindow(admin, 42*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := e.d.Close(); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	if got := e.d.Window(); got != 42*time.Minute {
		t.Fatalf("window after reopen = %v", got)
	}
	id, err := e.d.PMount(alice, "export", types.TimeNowest)
	if err != nil || id != root {
		t.Fatalf("pmount after reopen: %v %v", id, err)
	}
}

func TestPropertyRecoveryPreservesHistory(t *testing.T) {
	// Random workload; sync at random points; crash; every snapshot
	// taken at or before the last sync must still verify.
	for seed := int64(10); seed < 13; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			e := newTestDrive(t)
			rnd := rand.New(rand.NewSource(seed))
			id := e.create(alice)
			if err := e.d.Sync(alice); err != nil {
				t.Fatal(err)
			}
			e.tick()
			var model, attr []byte
			var snaps []snapshot
			var lastSync int // index into snaps covered by a sync
			for i := 0; i < 40; i++ {
				applyRandomOp(e, rnd, id, &model, &attr)
				snaps = append(snaps, takeSnapshot(e, id, model, attr, false))
				e.tick()
				if rnd.Intn(4) == 0 {
					if err := e.d.Sync(alice); err != nil {
						t.Fatal(err)
					}
					lastSync = len(snaps)
				}
				if rnd.Intn(10) == 0 {
					if err := e.d.Checkpoint(); err != nil {
						t.Fatal(err)
					}
					lastSync = len(snaps)
				}
			}
			e.reopen()
			for _, s := range snaps[:lastSync] {
				verifySnapshot(t, e, id, s)
			}
		})
	}
}

func TestRecoveryDoubleCrash(t *testing.T) {
	// Crash, recover, write more, crash again: recovery must be
	// idempotent and stable.
	e := newTestDrive(t)
	id := e.create(alice)
	e.write(alice, id, 0, []byte("gen1"))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	e.tick()
	e.write(alice, id, 0, []byte("gen2"))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	if got := e.read(alice, id, 0, 16, types.TimeNowest); string(got) != "gen2" {
		t.Fatalf("after double crash = %q", got)
	}
}

func TestRecoveryLargeObjectWithOverflowCheckpoint(t *testing.T) {
	clk := vclock.NewVirtual()
	dev := disk.New(disk.SmallDisk(128<<20), clk)
	opts := Options{
		Clock: clk, SegBlocks: 64, CheckpointBlocks: 64,
		Window: time.Hour, BlockCacheBytes: 1 << 20, ObjectCacheCount: 64,
	}
	d, err := Format(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := &testEnv{t: t, d: d, dev: dev, clk: clk}
	id := e.create(alice)
	data := bytes.Repeat([]byte{0x5A}, 900*types.BlockSize) // needs overflow map blocks
	for off := 0; off < len(data); off += types.MaxIO {
		end := off + types.MaxIO
		if end > len(data) {
			end = len(data)
		}
		e.write(alice, id, uint64(off), data[off:end])
	}
	if err := e.d.Close(); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	for off := 0; off < len(data); off += types.MaxIO {
		end := off + types.MaxIO
		if end > len(data) {
			end = len(data)
		}
		got := e.read(alice, id, uint64(off), uint64(end-off), types.TimeNowest)
		if !bytes.Equal(got, data[off:end]) {
			t.Fatalf("chunk at %d corrupted after recovery", off)
		}
	}
	_ = e.d.Close()
}
