package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"s4/internal/types"
)

// Named objects ("partitions", §4.1): the drive associates ASCII names
// with ObjectIDs so client file systems have persistent mount points.
// The table is itself stored in a reserved S4 object and modified only
// through the PCreate/PDelete RPCs, so it is versioned like everything
// else — PList and PMount accept the time parameter.

// PartEntry is one name → object association.
type PartEntry struct {
	Name string
	Obj  types.ObjectID
}

func encodePartTable(entries []PartEntry) []byte {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(entries)))
	buf = append(buf, tmp[:n]...)
	for _, e := range entries {
		n = binary.PutUvarint(tmp[:], uint64(len(e.Name)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, e.Name...)
		n = binary.PutUvarint(tmp[:], uint64(e.Obj))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

func decodePartTable(data []byte) ([]PartEntry, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("core: partition table header: %w", types.ErrCorrupt)
	}
	data = data[n:]
	if count > 1<<20 {
		return nil, fmt.Errorf("core: partition table count %d: %w", count, types.ErrCorrupt)
	}
	out := make([]PartEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(data)
		if n <= 0 || l > types.MaxNameLen || uint64(len(data)) < uint64(n)+l {
			return nil, fmt.Errorf("core: partition name %d: %w", i, types.ErrCorrupt)
		}
		name := string(data[n : n+int(l)])
		data = data[n+int(l):]
		o, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("core: partition obj %d: %w", i, types.ErrCorrupt)
		}
		data = data[n:]
		out = append(out, PartEntry{Name: name, Obj: types.ObjectID(o)})
	}
	return out, nil
}

// readPartTableLocked loads the table as of time at.
func (d *Drive) readPartTableLocked(at types.Timestamp) ([]PartEntry, error) {
	o, ok := d.objects[types.PartitionTable]
	if !ok {
		return nil, types.ErrCorrupt
	}
	in, _, err := d.inodeAtLocked(o, at)
	if err != nil {
		return nil, err
	}
	if in.Size == 0 {
		return nil, nil
	}
	data, err := d.readObjectDataLocked(in)
	if err != nil {
		return nil, err
	}
	return decodePartTable(data)
}

// readObjectDataLocked reads an inode's full contents (internal use;
// bounded callers only).
func (d *Drive) readObjectDataLocked(in *Inode) ([]byte, error) {
	out := make([]byte, in.Size)
	for blk := uint64(0); blk*types.BlockSize < in.Size; blk++ {
		addr := in.Block(blk)
		if addr == 0 {
			continue
		}
		data, err := d.readBlock(addr)
		if err != nil {
			return nil, err
		}
		lo := blk * types.BlockSize
		hi := lo + types.BlockSize
		if hi > in.Size {
			hi = in.Size
		}
		copy(out[lo:hi], data[:hi-lo])
	}
	return out, nil
}

// writePartTableLocked persists the table as the partition object's new
// version, using admin credentials internally (clients reach this only
// through PCreate/PDelete, which carry their own authorization).
func (d *Drive) writePartTableLocked(cred types.Cred, entries []PartEntry) error {
	o, err := d.getObject(types.PartitionTable)
	if err != nil {
		return err
	}
	data := encodePartTable(entries)
	if uint64(len(data)) < o.ino.Size {
		if err := d.truncateBlocksLocked(cred, o, uint64(len(data))); err != nil {
			return err
		}
	}
	return d.writeBlocksLocked(cred, o, 0, data)
}

// PCreate associates name with an existing object (Table 1).
func (d *Drive) PCreate(cred types.Cred, name string, id types.ObjectID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.pcreateLocked(cred, name, id)
	d.auditOp(cred, types.OpPCreate, id, 0, 0, name, err)
	return err
}

func (d *Drive) pcreateLocked(cred types.Cred, name string, id types.ObjectID) error {
	if d.closed {
		return types.ErrDriveStopped
	}
	if len(name) == 0 {
		return types.ErrInval
	}
	if len(name) > types.MaxNameLen {
		return types.ErrNameTooLong
	}
	// The named object must exist and be writable by the caller;
	// naming an object grants nothing, but creating a mount point for
	// someone else's object is not allowed.
	o, err := d.getObject(id)
	if err != nil {
		return err
	}
	if err := d.checkPerm(cred, o.ino, types.PermWrite); err != nil {
		return err
	}
	entries, err := d.readPartTableLocked(types.TimeNowest)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Name == name {
			return types.ErrExist
		}
	}
	entries = append(entries, PartEntry{Name: name, Obj: id})
	return d.writePartTableLocked(cred, entries)
}

// PDelete removes a name → object association (Table 1). The object
// itself is untouched.
func (d *Drive) PDelete(cred types.Cred, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.pdeleteLocked(cred, name)
	d.auditOp(cred, types.OpPDelete, 0, 0, 0, name, err)
	return err
}

func (d *Drive) pdeleteLocked(cred types.Cred, name string) error {
	if d.closed {
		return types.ErrDriveStopped
	}
	entries, err := d.readPartTableLocked(types.TimeNowest)
	if err != nil {
		return err
	}
	idx := -1
	for i, e := range entries {
		if e.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return types.ErrNoObject
	}
	// Deleting the name requires write access to the named object (or
	// admin).
	if !cred.Admin {
		o, err := d.getObject(entries[idx].Obj)
		if err == nil {
			if err := d.checkPerm(cred, o.ino, types.PermWrite); err != nil {
				return err
			}
		}
	}
	entries = append(entries[:idx], entries[idx+1:]...)
	return d.writePartTableLocked(cred, entries)
}

// PList lists the partitions as of time at (Table 1; time-based).
func (d *Drive) PList(cred types.Cred, at types.Timestamp) ([]PartEntry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := d.plistLocked(cred, at)
	d.auditOp(cred, types.OpPList, 0, 0, 0, "", err)
	return entries, err
}

func (d *Drive) plistLocked(cred types.Cred, at types.Timestamp) ([]PartEntry, error) {
	if d.closed {
		return nil, types.ErrDriveStopped
	}
	if at != types.TimeNowest && !cred.Admin {
		// Historical views of the mount table are recovery data.
		o, ok := d.objects[types.PartitionTable]
		if !ok {
			return nil, types.ErrCorrupt
		}
		if err := d.loadInode(o); err != nil {
			return nil, err
		}
		if !o.ino.PermFor(cred.User).Has(types.PermRecover) {
			return nil, types.ErrPerm
		}
	}
	return d.readPartTableLocked(at)
}

// PMount resolves a name to its ObjectID as of time at (Table 1).
func (d *Drive) PMount(cred types.Cred, name string, at types.Timestamp) (types.ObjectID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, err := d.pmountLocked(cred, name, at)
	d.auditOp(cred, types.OpPMount, id, 0, 0, name, err)
	return id, err
}

func (d *Drive) pmountLocked(cred types.Cred, name string, at types.Timestamp) (types.ObjectID, error) {
	entries, err := d.plistLocked(cred, at)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		if e.Name == name {
			return e.Obj, nil
		}
	}
	return 0, types.ErrNoObject
}
