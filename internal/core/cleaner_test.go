package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"s4/internal/disk"
	"s4/internal/throttle"
	"s4/internal/types"
	"s4/internal/vclock"
)

func TestCleanerNeverTouchesInWindowHistory(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = 24 * time.Hour })
	id := e.create(alice)
	v1 := bytes.Repeat([]byte{'1'}, 4*types.BlockSize)
	e.write(alice, id, 0, v1)
	tV1 := e.d.Now()
	e.tick()
	e.write(alice, id, 0, bytes.Repeat([]byte{'2'}, 4*types.BlockSize))
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	histBefore := e.d.HistoryBytes()
	if histBefore == 0 {
		t.Fatal("expected history after overwrite")
	}
	for i := 0; i < 10; i++ {
		if _, err := e.d.CleanOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.d.HistoryBytes(); got < histBefore {
		t.Fatalf("cleaner shrank in-window history: %d -> %d", histBefore, got)
	}
	if got := e.read(alice, id, 0, uint64(len(v1)), tV1); !bytes.Equal(got, v1) {
		t.Fatal("in-window version lost to cleaner")
	}
}

func TestCleanerReclaimsAgedHistory(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = time.Minute })
	id := e.create(alice)
	for i := 0; i < 8; i++ {
		e.write(alice, id, 0, bytes.Repeat([]byte{byte('a' + i)}, 8*types.BlockSize))
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	histBefore := e.d.HistoryBytes()
	freeBefore := e.d.Status().FreeSegments
	// Let everything age out of the one-minute window.
	e.clk.Advance(2 * time.Minute)
	var cs CleanStats
	for i := 0; i < 20; i++ {
		s, err := e.d.CleanOnce()
		if err != nil {
			t.Fatal(err)
		}
		cs.BlocksAgedOut += s.BlocksAgedOut
		cs.SegmentsFreed += s.SegmentsFreed
	}
	if e.d.HistoryBytes() >= histBefore {
		t.Fatalf("aged history not reclaimed: %d -> %d", histBefore, e.d.HistoryBytes())
	}
	if cs.BlocksAgedOut == 0 {
		t.Fatal("no blocks aged out")
	}
	// Emptied segments rejoin the allocator at the checkpoint barrier.
	if err := e.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := e.d.Status().FreeSegments; got <= freeBefore {
		t.Fatalf("no segments freed: %d -> %d (aged %d blocks)", freeBefore, got, cs.BlocksAgedOut)
	}
	// The current version is intact.
	got := e.read(alice, id, 0, 8*types.BlockSize, types.TimeNowest)
	if !bytes.Equal(got, bytes.Repeat([]byte{'h'}, 8*types.BlockSize)) {
		t.Fatal("current version damaged by cleaner")
	}
}

func TestCleanerReapsAgedDeletedObjects(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = time.Minute })
	id := e.create(alice)
	e.write(alice, id, 0, bytes.Repeat([]byte{'x'}, 4*types.BlockSize))
	e.tick()
	if err := e.d.Delete(alice, id); err != nil {
		t.Fatal(err)
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	objsBefore := e.d.Status().Objects
	e.clk.Advance(2 * time.Minute)
	for i := 0; i < 5; i++ {
		if _, err := e.d.CleanOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.d.Status().Objects; got >= objsBefore {
		t.Fatalf("deleted object not reaped: %d -> %d", objsBefore, got)
	}
	if _, err := e.d.Read(admin, id, 0, 1, types.TimeNowest); !errors.Is(err, types.ErrNoObject) {
		t.Fatalf("reaped object still readable: %v", err)
	}
}

func TestCleanerCompactionPreservesData(t *testing.T) {
	// Compaction engages under allocator pressure (free < 1/5 of the
	// device), so run on a small drive and churn until segments are a
	// fragmented mix of live data and aged history.
	clk := vclock.NewVirtual()
	dev := disk.New(disk.SmallDisk(12<<20), clk)
	d, err := Format(dev, Options{
		Clock: clk, SegBlocks: 16, CheckpointBlocks: 16,
		Window: time.Minute, BlockCacheBytes: 1 << 20, ObjectCacheCount: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	e := &testEnv{t: t, d: d, dev: dev, clk: clk}

	// Interleave churning objects (whose blocks die each round) with
	// small stable rewrites, so aged segments end up holding one or two
	// live blocks amid dead history — exactly the fragmentation the
	// compactor exists for.
	var churn, stable []types.ObjectID
	want := map[types.ObjectID][]byte{}
	for i := 0; i < 8; i++ {
		churn = append(churn, e.create(alice))
		stable = append(stable, e.create(alice))
	}
	var copied int
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			big := bytes.Repeat([]byte{byte(i), byte(round)}, 5*types.BlockSize/2)
			e.write(alice, churn[i], 0, big)
			want[churn[i]] = big
			if round == 0 {
				// Written once, interleaved between churn writes: these
				// blocks survive while everything around them dies.
				small := bytes.Repeat([]byte{0xA0 + byte(i)}, 600)
				e.write(alice, stable[i], 0, small)
				want[stable[i]] = small
			}
		}
		if err := e.d.Sync(alice); err != nil {
			t.Fatal(err)
		}
		e.clk.Advance(90 * time.Second)
		for k := 0; k < 8; k++ {
			cs, err := e.d.CleanOnce()
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			copied += cs.BlocksCopied
		}
	}
	for id, w := range want {
		got := e.read(alice, id, 0, uint64(len(w)), types.TimeNowest)
		if !bytes.Equal(got, w) {
			t.Fatalf("object %v damaged by compaction", id)
		}
	}
	if copied == 0 {
		t.Fatal("compaction never ran; test exercised nothing")
	}
}

func TestCleanerThenCrashRecovery(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = time.Minute })
	var ids []types.ObjectID
	for i := 0; i < 12; i++ {
		id := e.create(alice)
		e.write(alice, id, 0, bytes.Repeat([]byte{byte(0x30 + i)}, 2*types.BlockSize))
		ids = append(ids, id)
	}
	for _, id := range ids[:6] {
		e.write(alice, id, 0, bytes.Repeat([]byte{0xFF}, 2*types.BlockSize))
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.clk.Advance(2 * time.Minute)
	for i := 0; i < 20; i++ {
		if _, err := e.d.CleanOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.reopen()
	for i, id := range ids {
		want := bytes.Repeat([]byte{byte(0x30 + i)}, 2*types.BlockSize)
		if i < 6 {
			want = bytes.Repeat([]byte{0xFF}, 2*types.BlockSize)
		}
		got := e.read(alice, id, 0, uint64(len(want)), types.TimeNowest)
		if !bytes.Equal(got, want) {
			t.Fatalf("object %d wrong after clean+crash", i)
		}
	}
}

// TestIntruderCannotDestroyWindowedData is the paper's core security
// claim (§3): no sequence of client commands — however privileged the
// stolen credential — can make pre-intrusion data unrecoverable within
// the detection window.
func TestIntruderCannotDestroyWindowedData(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = 24 * time.Hour })
	intruder := types.Cred{User: alice.User, Client: 66} // stolen identity
	secret := []byte("pre-intrusion system log contents")
	id := e.create(alice)
	e.write(alice, id, 0, secret)
	tClean := e.d.Now()
	e.tick()

	// The intruder tries everything a client can do.
	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		switch rnd.Intn(5) {
		case 0:
			_ = e.d.Write(intruder, id, 0, bytes.Repeat([]byte{0}, len(secret)))
		case 1:
			_ = e.d.Truncate(intruder, id, 0)
		case 2:
			_ = e.d.Delete(intruder, id)
		case 3:
			// Admin commands fail without the admin credential.
			if err := e.d.Flush(intruder, 0, types.TimeNowest); !errors.Is(err, types.ErrAdminOnly) {
				t.Fatalf("intruder flush: %v", err)
			}
			if err := e.d.SetWindow(intruder, 0); !errors.Is(err, types.ErrAdminOnly) {
				t.Fatalf("intruder setwindow: %v", err)
			}
		case 4:
			_, _ = e.d.Append(intruder, id, []byte("garbage"))
		}
		e.tick()
	}
	// Fill pressure: cleaner passes change nothing inside the window.
	for i := 0; i < 10; i++ {
		if _, err := e.d.CleanOnce(); err != nil {
			t.Fatal(err)
		}
	}
	// The administrator recovers the pre-intrusion contents exactly.
	got, err := e.d.Read(admin, id, 0, uint64(len(secret)), tClean)
	if err != nil {
		t.Fatalf("admin recovery failed: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("pre-intrusion data destroyed: %q", got)
	}
	// And the audit log names the intruder's client machine.
	recs, err := e.d.AuditRead(admin, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fromIntruder int
	for _, r := range recs {
		if r.Client == intruder.Client && r.Op.Mutating() {
			fromIntruder++
		}
	}
	if fromIntruder == 0 {
		t.Fatal("audit log does not attribute the intruder's activity")
	}
}

func TestDeviceDoesNotFillWhenCleaning(t *testing.T) {
	// Sustained overwrite churn with a tiny window: the cleaner must
	// keep up and the device must not reach ErrNoSpace.
	e := newTestDrive(t, func(o *Options) { o.Window = 10 * time.Second })
	id := e.create(alice)
	payload := bytes.Repeat([]byte{0xAA}, 8*types.BlockSize)
	for i := 0; i < 400; i++ {
		if err := e.d.Write(alice, id, 0, payload); err != nil {
			t.Fatalf("write %d: %v (free segs %d)", i, err, e.d.Status().FreeSegments)
		}
		e.clk.Advance(time.Second)
		if i%5 == 0 {
			if err := e.d.Sync(alice); err != nil {
				t.Fatal(err)
			}
			if _, err := e.d.CleanOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := e.read(alice, id, 0, uint64(len(payload)), types.TimeNowest); !bytes.Equal(got, payload) {
		t.Fatal("data wrong after sustained churn")
	}
}

func TestThrottleEngagesUnderHistoryPressure(t *testing.T) {
	e := newTestDrive(t, func(o *Options) {
		o.Window = 24 * time.Hour
		// Tiny pool so the test reaches pressure quickly.
		o.Throttle = &throttle.Config{
			PoolBytes:  2 << 20,
			PressureAt: 0.5,
			FairShare:  64 << 10,
			HalfLife:   10 * time.Second,
			MaxDelay:   250 * time.Millisecond,
		}
	})
	id := e.create(alice)
	payload := bytes.Repeat([]byte{1}, 4*types.BlockSize)
	before := e.d.DriveStats().ThrottleDelays
	for i := 0; i < 200; i++ {
		if err := e.d.Write(alice, id, 0, payload); err != nil {
			t.Fatal(err)
		}
		e.clk.Advance(10 * time.Millisecond)
	}
	after := e.d.DriveStats().ThrottleDelays
	if after <= before {
		t.Fatal("history-pool abuser never throttled")
	}
	suspects := e.d.Status().Suspects
	if len(suspects) != 1 || suspects[0] != alice.Client {
		t.Fatalf("suspects = %v", suspects)
	}
}

func TestCleanStatsAccumulate(t *testing.T) {
	e := newTestDrive(t, func(o *Options) { o.Window = time.Second })
	id := e.create(alice)
	for i := 0; i < 5; i++ {
		e.write(alice, id, 0, bytes.Repeat([]byte{byte(i)}, 2*types.BlockSize))
	}
	if err := e.d.Sync(alice); err != nil {
		t.Fatal(err)
	}
	e.clk.Advance(time.Minute)
	if _, err := e.d.CleanOnce(); err != nil {
		t.Fatal(err)
	}
	ds := e.d.DriveStats()
	if ds.CleanerRuns == 0 {
		t.Fatal("cleaner runs not counted")
	}
}

func TestFmtHelper(t *testing.T) {
	// Guards the fmt import in this file's error paths.
	if s := fmt.Sprintf("%v", types.ObjectID(3)); s != "obj#3" {
		t.Fatal(s)
	}
}
