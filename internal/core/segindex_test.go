package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"s4/internal/disk"
	"s4/internal/journal"
	"s4/internal/seglog"
	"s4/internal/types"
	"s4/internal/vclock"
)

// segIndexWorkload runs enough mixed activity on e that the encoded
// index is non-trivial: multiple objects with landmark chains, deleted
// objects, cleaned segments (pendingFree), and shared journal blocks.
func segIndexWorkload(e *testEnv) {
	var ids []types.ObjectID
	for i := 0; i < 6; i++ {
		ids = append(ids, e.create(alice))
	}
	for round := 0; round < 8; round++ {
		for i, id := range ids {
			e.write(alice, id, uint64(i*100), []byte(fmt.Sprintf("round %d object %d payload", round, i)))
		}
		if round == 3 {
			if err := e.d.Delete(alice, ids[5]); err != nil {
				e.t.Fatal(err)
			}
			ids = ids[:5]
			e.tick()
		}
		if round%2 == 1 {
			if err := e.d.Checkpoint(); err != nil {
				e.t.Fatal(err)
			}
			e.tick()
		}
		if _, err := e.d.CleanOnce(); err != nil {
			e.t.Fatal(err)
		}
		e.tick()
	}
	if err := e.d.Sync(alice); err != nil {
		e.t.Fatal(err)
	}
	e.tick()
}

// TestSegIndexRoundTrip encodes the live drive's recovery tables and
// checks the decoded form reproduces them exactly: segment occupancy
// and free bits (with pendingFree folded in), journal-block refcounts,
// and every object's landmark index and aging hint.
func TestSegIndexRoundTrip(t *testing.T) {
	e := newTestDrive(t)
	segIndexWorkload(e)

	d := e.d
	d.mu.Lock()
	blob := d.encodeSegIndexLocked()
	nSeg := d.log.NumSegments()
	idx, err := decodeSegIndex(blob, nSeg)
	if err != nil {
		d.mu.Unlock()
		t.Fatalf("decode of fresh encode: %v", err)
	}
	if idx.openSeg != d.log.CurrentSegment() {
		t.Errorf("openSeg %d want %d", idx.openSeg, d.log.CurrentSegment())
	}
	for seg := int64(0); seg < nSeg; seg++ {
		wantFree := d.log.IsFree(seg) || d.pendingFree[seg]
		live, hist := d.usage.occupancy(seg)
		if wantFree {
			live, hist = 0, 0
		}
		got := idx.segs[seg]
		if got.free != wantFree || got.live != live || got.hist != hist {
			t.Errorf("seg %d: decoded free=%v live=%d hist=%d, drive free=%v live=%d hist=%d",
				seg, got.free, got.live, got.hist, wantFree, live, hist)
		}
	}
	if len(idx.jrefs) != len(d.jblockRef) {
		t.Errorf("decoded %d jrefs, drive has %d", len(idx.jrefs), len(d.jblockRef))
	}
	for a, c := range d.jblockRef {
		if idx.jrefs[a] != c {
			t.Errorf("jref %v: decoded %d want %d", a, idx.jrefs[a], c)
		}
	}
	if len(idx.objects) != len(d.objects) {
		t.Errorf("decoded %d objects, drive has %d", len(idx.objects), len(d.objects))
	}
	for id, o := range d.objects {
		oi := idx.objects[id]
		if oi == nil {
			t.Errorf("object %v missing from decoded index", id)
			continue
		}
		if oi.lmReset != o.lmReset || oi.nextAge != o.nextAge {
			t.Errorf("object %v: decoded lmReset=%v nextAge=%v, drive %v/%v",
				id, oi.lmReset, oi.nextAge, o.lmReset, o.nextAge)
		}
		if len(oi.landmarks) != len(o.landmarks) {
			t.Errorf("object %v: decoded %d landmarks, drive has %d", id, len(oi.landmarks), len(o.landmarks))
			continue
		}
		for i, ln := range o.landmarks {
			if oi.landmarks[i] != ln {
				t.Errorf("object %v landmark %d: decoded %+v want %+v", id, i, oi.landmarks[i], ln)
			}
		}
	}
	d.mu.Unlock()
}

// segIndexImage formats a drive on a recording device, runs the round-
// trip workload through a clean Close (whose checkpoint persists the
// index), and returns the recorder plus the options and end time needed
// to reopen crash images of it.
func segIndexImage(t *testing.T) (*disk.FaultDisk, Options, types.Timestamp) {
	t.Helper()
	clk := vclock.NewVirtual()
	rec := disk.NewFault(32 << 20)
	rec.StartRecording()
	opts := Options{
		Clock:            clk,
		SegBlocks:        16,
		CheckpointBlocks: 16,
		Window:           time.Hour,
		BlockCacheBytes:  1 << 20,
		ObjectCacheCount: 64,
	}
	d, err := Format(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := &testEnv{t: t, d: d, clk: clk}
	segIndexWorkload(e)
	end := d.Now()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return rec, opts, end
}

// reopenImage materializes a pristine copy of the full recording and
// opens it with the given index mode, returning the drive and its
// restart stats.
func reopenImage(t *testing.T, rec *disk.FaultDisk, opts Options, end types.Timestamp, disableIndex bool, mutate func(disk.Device)) (*Drive, Stats) {
	t.Helper()
	img, err := rec.ImageAt(rec.Writes())
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(img)
	}
	o := opts
	o.Clock = vclock.NewVirtualAt(end.Time())
	o.DisableSegIndex = disableIndex
	d, err := Open(img, o)
	if err != nil {
		t.Fatal(err)
	}
	return d, d.DriveStats()
}

// TestIndexedOpenMatchesFullScan is the clean-shutdown equivalence
// check: an Open anchored at the persisted segment index must land on
// byte-identical state to a full-scan recount of the same image, while
// replaying strictly fewer journal entries, and must say so through the
// restart counters.
func TestIndexedOpenMatchesFullScan(t *testing.T) {
	rec, opts, end := segIndexImage(t)

	di, si := reopenImage(t, rec, opts, end, false, nil)
	if si.IndexLoads != 1 || si.IndexFallbacks != 0 {
		t.Errorf("indexed open: IndexLoads=%d IndexFallbacks=%d, want 1/0", si.IndexLoads, si.IndexFallbacks)
	}
	if si.OpenDuration <= 0 {
		t.Errorf("indexed open: OpenDuration=%v, want > 0", si.OpenDuration)
	}
	digestIdx := di.StateDigest()
	if err := di.CheckInvariants(); err != nil {
		t.Errorf("indexed open invariants: %v", err)
	}
	if err := di.CheckLandmarks(true); err != nil {
		t.Errorf("indexed open landmarks: %v", err)
	}

	df, sf := reopenImage(t, rec, opts, end, true, nil)
	if sf.IndexLoads != 0 {
		t.Errorf("full-scan open: IndexLoads=%d, want 0", sf.IndexLoads)
	}
	digestFull := df.StateDigest()
	if err := df.CheckInvariants(); err != nil {
		t.Errorf("full-scan open invariants: %v", err)
	}

	if digestIdx != digestFull {
		t.Errorf("indexed and full-scan recovery diverged:\nindexed:\n%s\nfull:\n%s", digestIdx, digestFull)
	}
	if si.RecoveryReplayEntries >= sf.RecoveryReplayEntries {
		t.Errorf("indexed open replayed %d entries, full scan %d: index not shortening recovery",
			si.RecoveryReplayEntries, sf.RecoveryReplayEntries)
	}
}

// corruptNewestSlotIndex flips one byte inside the index region of the
// newest checkpoint slot, leaving the object-map blob and its CRC
// intact — the durable image a tear through the tail of the slot write
// leaves behind.
func corruptNewestSlotIndex(t *testing.T, dev disk.Device, cpBlocks int) {
	t.Helper()
	const spb = types.BlockSize / disk.SectorSize
	hdr := make([]byte, types.BlockSize)
	bestSlot, bestSeq := -1, uint64(0)
	var bestOff int
	for slot := 0; slot < 2; slot++ {
		base := int64((1 + slot*cpBlocks) * spb)
		if err := dev.ReadSectors(base, hdr); err != nil {
			t.Fatal(err)
		}
		seq := binary.LittleEndian.Uint64(hdr[4:])
		lenA := int(binary.LittleEndian.Uint32(hdr[12:]))
		lenB := int(binary.LittleEndian.Uint32(hdr[20:]))
		if lenB == 0 {
			continue
		}
		if bestSlot < 0 || seq > bestSeq {
			bestSlot, bestSeq = slot, seq
			bestOff = 28 + lenA // cpHeaderSize + state blob = first index byte
		}
	}
	if bestSlot < 0 {
		t.Fatal("no checkpoint slot carries an index")
	}
	base := int64((1 + bestSlot*cpBlocks) * spb)
	sector := base + int64(bestOff/disk.SectorSize)
	buf := make([]byte, disk.SectorSize)
	if err := dev.ReadSectors(sector, buf); err != nil {
		t.Fatal(err)
	}
	buf[bestOff%disk.SectorSize] ^= 0xFF
	if err := dev.WriteSectors(sector, buf); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSegIndexFallsBack flips a byte in the persisted index
// (object map untouched) and proves the degraded path: Open succeeds,
// counts exactly one IndexFallbacks, replays the full journal, and
// recovers state byte-identical to an Open that never looked at the
// index.
func TestCorruptSegIndexFallsBack(t *testing.T) {
	rec, opts, end := segIndexImage(t)
	corrupt := func(dev disk.Device) { corruptNewestSlotIndex(t, dev, opts.CheckpointBlocks) }

	di, si := reopenImage(t, rec, opts, end, false, corrupt)
	if si.IndexFallbacks != 1 || si.IndexLoads != 0 {
		t.Errorf("corrupt index open: IndexLoads=%d IndexFallbacks=%d, want 0/1", si.IndexLoads, si.IndexFallbacks)
	}
	digestIdx := di.StateDigest()
	if err := di.CheckInvariants(); err != nil {
		t.Errorf("fallback open invariants: %v", err)
	}

	df, sf := reopenImage(t, rec, opts, end, true, corrupt)
	if digestIdx != df.StateDigest() {
		t.Errorf("fallback recovery diverged from full scan:\nfallback:\n%s\nfull:\n%s", digestIdx, df.StateDigest())
	}
	if si.RecoveryReplayEntries != sf.RecoveryReplayEntries {
		t.Errorf("fallback replayed %d entries, full scan %d: fallback is not a full replay",
			si.RecoveryReplayEntries, sf.RecoveryReplayEntries)
	}
}

// TestSegIndexDecodeRejectsCorruption walks targeted mutations of a
// valid index blob and checks each fails with a typed ErrCorrupt, never
// a panic or a silently-wrong accept.
func TestSegIndexDecodeRejectsCorruption(t *testing.T) {
	e := newTestDrive(t)
	segIndexWorkload(e)
	e.d.mu.Lock()
	blob := e.d.encodeSegIndexLocked()
	nSeg := e.d.log.NumSegments()
	e.d.mu.Unlock()

	if _, err := decodeSegIndex(blob, nSeg); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:4] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 1; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAB) }},
		{"flipped body byte", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
	}
	for _, tc := range cases {
		b := append([]byte(nil), blob...)
		b = tc.mut(b)
		idx, err := decodeSegIndex(b, nSeg)
		if err == nil {
			// A single flipped byte can land in slack a varint ignores
			// only if it still decodes to identical structure; anything
			// accepted must at least be structurally consistent.
			if verr := checkSegIndexShape(idx, nSeg); verr != nil {
				t.Errorf("%s: accepted inconsistent index: %v", tc.name, verr)
			}
			continue
		}
		if !errors.Is(err, types.ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", tc.name, err)
		}
	}
	if _, err := decodeSegIndex(blob, nSeg+1); !errors.Is(err, types.ErrCorrupt) {
		t.Errorf("geometry mismatch: err %v does not wrap ErrCorrupt", err)
	}
}

// checkSegIndexShape verifies the structural guarantees decodeSegIndex
// promises for any blob it accepts.
func checkSegIndexShape(idx *segIndex, nSeg int64) error {
	if idx.openSeg < -1 || idx.openSeg >= nSeg {
		return fmt.Errorf("openSeg %d out of range", idx.openSeg)
	}
	if int64(len(idx.segs)) != nSeg {
		return fmt.Errorf("%d segs, want %d", len(idx.segs), nSeg)
	}
	if idx.openSeg >= 0 && idx.segs[idx.openSeg].free {
		return fmt.Errorf("open segment %d marked free", idx.openSeg)
	}
	for seg, s := range idx.segs {
		if s.live < 0 || s.hist < 0 {
			return fmt.Errorf("seg %d: negative counters %d/%d", seg, s.live, s.hist)
		}
		if s.free && (s.live != 0 || s.hist != 0) {
			return fmt.Errorf("seg %d: free but occupied %d/%d", seg, s.live, s.hist)
		}
	}
	for a, c := range idx.jrefs {
		if c < 1 || c > journal.SectorsPerBlock {
			return fmt.Errorf("jref %v: count %d out of range", a, c)
		}
	}
	for id, o := range idx.objects {
		for i, ln := range o.landmarks {
			if ln.root == seglog.NilAddr {
				return fmt.Errorf("object %v landmark %d: nil root", id, i)
			}
			if i > 0 {
				prev := o.landmarks[i-1]
				if ln.time < prev.time || ln.time == prev.time && ln.version <= prev.version {
					return fmt.Errorf("object %v landmarks out of order at %d", id, i)
				}
			}
		}
	}
	return nil
}

// FuzzSegIndexDecode throws hostile bytes at the index decoder. The
// contract under fuzzing: never panic, never allocate absurdly, and
// anything accepted must satisfy the structural guarantees indexed
// recovery relies on (checkSegIndexShape).
func FuzzSegIndexDecode(f *testing.F) {
	clk := vclock.NewVirtual()
	dev := disk.New(disk.SmallDisk(64<<20), clk)
	opts := Options{
		Clock:            clk,
		SegBlocks:        16,
		CheckpointBlocks: 64,
		Window:           time.Hour,
		BlockCacheBytes:  1 << 20,
		ObjectCacheCount: 64,
	}
	d, err := Format(dev, opts)
	if err != nil {
		f.Fatal(err)
	}
	cred := types.Cred{User: 100, Client: 1}
	var ids []types.ObjectID
	for i := 0; i < 4; i++ {
		id, err := d.Create(cred, nil, nil)
		if err != nil {
			f.Fatal(err)
		}
		ids = append(ids, id)
		clk.Advance(time.Millisecond)
	}
	for round := 0; round < 5; round++ {
		for _, id := range ids {
			if err := d.Write(cred, id, 0, []byte("fuzz seed payload")); err != nil {
				f.Fatal(err)
			}
			clk.Advance(time.Millisecond)
		}
		if err := d.Checkpoint(); err != nil {
			f.Fatal(err)
		}
	}
	d.mu.Lock()
	seed := d.encodeSegIndexLocked()
	nSeg := d.log.NumSegments()
	d.mu.Unlock()
	if err := d.Close(); err != nil {
		f.Fatal(err)
	}

	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:9])
	f.Add([]byte{})
	for _, i := range []int{8, 10, len(seed) / 3, len(seed) - 2} {
		b := append([]byte(nil), seed...)
		b[i] ^= 0xFF
		f.Add(b)
	}
	f.Add(append(append([]byte(nil), seed...), 0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := decodeSegIndex(data, nSeg)
		if err != nil {
			if !errors.Is(err, types.ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if verr := checkSegIndexShape(idx, nSeg); verr != nil {
			t.Fatalf("accepted structurally inconsistent index: %v", verr)
		}
	})
}
