package fsys

import "testing"

func TestFileTypeString(t *testing.T) {
	cases := map[FileType]string{
		TypeReg: "file", TypeDir: "dir", TypeSymlink: "symlink", TypeNone: "none",
	}
	for ft, want := range cases {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q want %q", ft, got, want)
		}
	}
}

func TestErrorIdentities(t *testing.T) {
	// The conformance suite and the NFS status mapping both rely on
	// these sentinel errors being distinct.
	errs := []error{ErrNotFound, ErrExist, ErrNotDir, ErrIsDir, ErrNotEmpty, ErrStale, ErrInval, ErrNoSpace, ErrPerm}
	for i, a := range errs {
		for j, b := range errs {
			if (i == j) != (a == b) {
				t.Fatalf("errors %d and %d identity mismatch", i, j)
			}
		}
	}
}
