package fsys

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// RunConformance exercises a FileSys implementation against the shared
// behavioral contract. Both internal/s4fs and internal/ufs run it, so
// the four benchmark server configurations are known to implement the
// same semantics before any performance comparison is made.
func RunConformance(t *testing.T, mk func(t *testing.T) FileSys) {
	t.Helper()
	sub := func(name string, fn func(t *testing.T, fs FileSys)) {
		t.Run(name, func(t *testing.T) { fn(t, mk(t)) })
	}

	sub("RootIsDir", func(t *testing.T, fs FileSys) {
		a, err := fs.GetAttr(fs.Root())
		if err != nil || a.Type != TypeDir {
			t.Fatalf("root attr: %+v err=%v", a, err)
		}
	})

	sub("CreateWriteRead", func(t *testing.T, fs FileSys) {
		h, a, err := fs.Create(fs.Root(), "file.txt", 0644)
		if err != nil {
			t.Fatal(err)
		}
		if a.Type != TypeReg || a.Size != 0 {
			t.Fatalf("new file attr %+v", a)
		}
		data := []byte("hello nfs world")
		if err := fs.Write(h, 0, data); err != nil {
			t.Fatal(err)
		}
		got, err := fs.Read(h, 0, 100)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("read %q err=%v", got, err)
		}
		a, _ = fs.GetAttr(h)
		if a.Size != uint64(len(data)) {
			t.Fatalf("size %d", a.Size)
		}
	})

	sub("LookupAndStaleNames", func(t *testing.T, fs FileSys) {
		h, _, err := fs.Create(fs.Root(), "a", 0644)
		if err != nil {
			t.Fatal(err)
		}
		got, a, err := fs.Lookup(fs.Root(), "a")
		if err != nil || got != h || a.Type != TypeReg {
			t.Fatal(got, a, err)
		}
		if _, _, err := fs.Lookup(fs.Root(), "missing"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("lookup missing: %v", err)
		}
	})

	sub("DuplicateCreateFails", func(t *testing.T, fs FileSys) {
		if _, _, err := fs.Create(fs.Root(), "dup", 0644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Create(fs.Root(), "dup", 0644); !errors.Is(err, ErrExist) {
			t.Fatalf("dup create: %v", err)
		}
	})

	sub("MkdirTreeAndReadDir", func(t *testing.T, fs FileSys) {
		d1, _, err := fs.Mkdir(fs.Root(), "dir1", 0755)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Mkdir(d1, "dir2", 0755); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Create(d1, "f", 0644); err != nil {
			t.Fatal(err)
		}
		ents, err := fs.ReadDir(d1)
		if err != nil {
			t.Fatal(err)
		}
		names := []string{}
		for _, e := range ents {
			names = append(names, e.Name)
		}
		sort.Strings(names)
		if fmt.Sprint(names) != "[dir2 f]" {
			t.Fatalf("readdir = %v", names)
		}
		// ReadDir on a file fails.
		f, _, _ := fs.Lookup(d1, "f")
		if _, err := fs.ReadDir(f); !errors.Is(err, ErrNotDir) {
			t.Fatalf("readdir on file: %v", err)
		}
	})

	sub("RemoveSemantics", func(t *testing.T, fs FileSys) {
		if _, _, err := fs.Create(fs.Root(), "gone", 0644); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove(fs.Root(), "gone"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Lookup(fs.Root(), "gone"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("lookup after remove: %v", err)
		}
		if err := fs.Remove(fs.Root(), "gone"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double remove: %v", err)
		}
		d, _, _ := fs.Mkdir(fs.Root(), "d", 0755)
		if err := fs.Remove(fs.Root(), "d"); !errors.Is(err, ErrIsDir) {
			t.Fatalf("remove dir: %v", err)
		}
		_ = d
	})

	sub("RmdirSemantics", func(t *testing.T, fs FileSys) {
		d, _, err := fs.Mkdir(fs.Root(), "d", 0755)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Create(d, "f", 0644); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir(fs.Root(), "d"); !errors.Is(err, ErrNotEmpty) {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		if err := fs.Remove(d, "f"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir(fs.Root(), "d"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Lookup(fs.Root(), "d"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("lookup after rmdir: %v", err)
		}
	})

	sub("RenameFileAndReplace", func(t *testing.T, fs FileSys) {
		h, _, err := fs.Create(fs.Root(), "old", 0644)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(h, 0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		d, _, _ := fs.Mkdir(fs.Root(), "sub", 0755)
		if err := fs.Rename(fs.Root(), "old", d, "new"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Lookup(fs.Root(), "old"); !errors.Is(err, ErrNotFound) {
			t.Fatal("source name survived rename")
		}
		nh, _, err := fs.Lookup(d, "new")
		if err != nil || nh != h {
			t.Fatal(nh, err)
		}
		// Rename over an existing file replaces it.
		h2, _, _ := fs.Create(fs.Root(), "other", 0644)
		_ = fs.Write(h2, 0, []byte("x"))
		if err := fs.Rename(fs.Root(), "other", d, "new"); err != nil {
			t.Fatal(err)
		}
		nh2, _, _ := fs.Lookup(d, "new")
		if nh2 != h2 {
			t.Fatal("rename-replace left old target")
		}
	})

	sub("SymlinkReadLink", func(t *testing.T, fs FileSys) {
		if _, err := fs.Symlink(fs.Root(), "ln", "/target/path"); err != nil {
			t.Fatal(err)
		}
		h, a, err := fs.Lookup(fs.Root(), "ln")
		if err != nil || a.Type != TypeSymlink {
			t.Fatal(a, err)
		}
		got, err := fs.ReadLink(h)
		if err != nil || got != "/target/path" {
			t.Fatal(got, err)
		}
	})

	sub("HardLink", func(t *testing.T, fs FileSys) {
		h, _, err := fs.Create(fs.Root(), "orig", 0644)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(h, 0, []byte("shared")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Link(h, fs.Root(), "alias"); err != nil {
			t.Fatal(err)
		}
		a, _ := fs.GetAttr(h)
		if a.Nlink != 2 {
			t.Fatalf("nlink = %d", a.Nlink)
		}
		// Content reachable via both names; removing one keeps it.
		if err := fs.Remove(fs.Root(), "orig"); err != nil {
			t.Fatal(err)
		}
		h2, _, err := fs.Lookup(fs.Root(), "alias")
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.Read(h2, 0, 16)
		if err != nil || string(got) != "shared" {
			t.Fatal(got, err)
		}
	})

	sub("TruncateViaSetAttr", func(t *testing.T, fs FileSys) {
		h, _, _ := fs.Create(fs.Root(), "t", 0644)
		if err := fs.Write(h, 0, bytes.Repeat([]byte{'x'}, 10000)); err != nil {
			t.Fatal(err)
		}
		size := uint64(3)
		a, err := fs.SetAttr(h, SetAttr{Size: &size})
		if err != nil || a.Size != 3 {
			t.Fatal(a, err)
		}
		got, _ := fs.Read(h, 0, 100)
		if string(got) != "xxx" {
			t.Fatalf("after truncate: %q", got)
		}
		// Extend reads zeros.
		size = 10
		if _, err := fs.SetAttr(h, SetAttr{Size: &size}); err != nil {
			t.Fatal(err)
		}
		got, _ = fs.Read(h, 0, 100)
		if !bytes.Equal(got, append([]byte("xxx"), make([]byte, 7)...)) {
			t.Fatalf("after extend: %v", got)
		}
	})

	sub("SetAttrMode", func(t *testing.T, fs FileSys) {
		h, _, _ := fs.Create(fs.Root(), "m", 0644)
		mode := uint32(0600)
		a, err := fs.SetAttr(h, SetAttr{Mode: &mode})
		if err != nil || a.Mode != 0600 {
			t.Fatal(a, err)
		}
	})

	sub("BigFileSparseAndOffsets", func(t *testing.T, fs FileSys) {
		h, _, _ := fs.Create(fs.Root(), "big", 0644)
		rnd := rand.New(rand.NewSource(3))
		ref := make([]byte, 300000)
		// Random scattered writes.
		for i := 0; i < 40; i++ {
			off := rnd.Intn(len(ref) - 5000)
			n := rnd.Intn(5000) + 1
			chunk := make([]byte, n)
			rnd.Read(chunk)
			if err := fs.Write(h, uint64(off), chunk); err != nil {
				t.Fatal(err)
			}
			copy(ref[off:], chunk)
		}
		// The file size is the highest offset written.
		a, _ := fs.GetAttr(h)
		got, err := fs.Read(h, 0, len(ref))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref[:a.Size]) {
			t.Fatal("scattered write content mismatch")
		}
	})

	sub("ManyFilesInDir", func(t *testing.T, fs FileSys) {
		d, _, _ := fs.Mkdir(fs.Root(), "many", 0755)
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("f%03d", i)
			h, _, err := fs.Create(d, name, 0644)
			if err != nil {
				t.Fatalf("create %s: %v", name, err)
			}
			if err := fs.Write(h, 0, []byte(name)); err != nil {
				t.Fatal(err)
			}
		}
		ents, err := fs.ReadDir(d)
		if err != nil || len(ents) != 200 {
			t.Fatalf("readdir: %d entries err=%v", len(ents), err)
		}
		for i := 0; i < 200; i += 37 {
			name := fmt.Sprintf("f%03d", i)
			h, _, err := fs.Lookup(d, name)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := fs.Read(h, 0, 16)
			if string(got) != name {
				t.Fatalf("file %s holds %q", name, got)
			}
		}
	})

	sub("StatFS", func(t *testing.T, fs FileSys) {
		st, err := fs.StatFS()
		if err != nil || st.TotalBytes == 0 {
			t.Fatal(st, err)
		}
		if st.FreeBytes > st.TotalBytes {
			t.Fatal("free exceeds total")
		}
	})

	sub("SyncAndReuse", func(t *testing.T, fs FileSys) {
		h, _, _ := fs.Create(fs.Root(), "s", 0644)
		if err := fs.Write(h, 0, []byte("before sync")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		got, _ := fs.Read(h, 0, 32)
		if string(got) != "before sync" {
			t.Fatalf("after sync: %q", got)
		}
	})

	sub("BadHandleRejected", func(t *testing.T, fs FileSys) {
		if _, err := fs.GetAttr(Handle(0xDEADBEEF)); err == nil {
			t.Fatal("bogus handle accepted")
		}
	})

	sub("CreateInFileFails", func(t *testing.T, fs FileSys) {
		h, _, _ := fs.Create(fs.Root(), "plain", 0644)
		if _, _, err := fs.Create(h, "child", 0644); !errors.Is(err, ErrNotDir) {
			t.Fatalf("create under file: %v", err)
		}
	})
}
