// Package fsys defines the vnode-style file system interface shared by
// the S4 translation layer (internal/s4fs) and the conventional baseline
// file system (internal/ufs).
//
// The interface is shaped after NFSv2's procedures (RFC 1094), which is
// what the paper's S4 client translates (§4.1.2): handles are opaque,
// operations are stateless, and every mutating call is durable on return
// when the implementation is mounted with synchronous semantics. The
// NFSv2 server (internal/nfsv2) serves any FileSys; the benchmark
// harness drives workloads against any FileSys.
package fsys

import (
	"errors"

	"s4/internal/types"
)

// Handle names a file system object. Zero is never valid.
type Handle uint64

// FileType discriminates nodes.
type FileType uint8

// Node types (matching NFSv2 ftype values where relevant).
const (
	TypeNone FileType = iota
	TypeReg
	TypeDir
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeReg:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	}
	return "none"
}

// Attr is the attribute set of a node.
type Attr struct {
	Type  FileType
	Mode  uint32
	Nlink uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Mtime types.Timestamp
	Ctime types.Timestamp
}

// SetAttr is a partial attribute update; nil fields are unchanged.
type SetAttr struct {
	Mode *uint32
	UID  *uint32
	GID  *uint32
	Size *uint64
}

// DirEntry is one directory member.
type DirEntry struct {
	Name   string
	Handle Handle
	Type   FileType
}

// Stat summarizes file system capacity.
type Stat struct {
	TotalBytes uint64
	FreeBytes  uint64
}

// Errors shared by implementations. They deliberately mirror the types
// package where a drive error passes straight through.
var (
	ErrNotFound = types.ErrNoObject
	ErrExist    = types.ErrExist
	ErrNotDir   = errors.New("fsys: not a directory")
	ErrIsDir    = errors.New("fsys: is a directory")
	ErrNotEmpty = types.ErrNotEmpty
	ErrStale    = types.ErrBadHandle
	ErrInval    = types.ErrInval
	ErrNoSpace  = types.ErrNoSpace
	ErrPerm     = types.ErrPerm
)

// FileSys is the NFSv2-shaped interface every backend implements.
// Implementations must be safe for concurrent use.
type FileSys interface {
	// Root returns the file system root directory handle.
	Root() Handle
	// Lookup resolves name within dir.
	Lookup(dir Handle, name string) (Handle, Attr, error)
	// GetAttr returns a node's attributes.
	GetAttr(h Handle) (Attr, error)
	// SetAttr applies a partial attribute update (including truncate
	// via Size) and returns the result.
	SetAttr(h Handle, sa SetAttr) (Attr, error)
	// Create makes a regular file. It fails if name exists.
	Create(dir Handle, name string, mode uint32) (Handle, Attr, error)
	// Mkdir makes a directory.
	Mkdir(dir Handle, name string, mode uint32) (Handle, Attr, error)
	// Symlink makes a symbolic link holding target.
	Symlink(dir Handle, name, target string) (Handle, error)
	// ReadLink returns a symlink's target.
	ReadLink(h Handle) (string, error)
	// Remove unlinks a non-directory.
	Remove(dir Handle, name string) error
	// Rmdir removes an empty directory.
	Rmdir(dir Handle, name string) error
	// Rename moves fromName in fromDir to toName in toDir, replacing a
	// non-directory target if present.
	Rename(fromDir Handle, fromName string, toDir Handle, toName string) error
	// Link makes a hard link to a regular file.
	Link(h Handle, dir Handle, name string) error
	// Read returns up to n bytes at off.
	Read(h Handle, off uint64, n int) ([]byte, error)
	// Write stores data at off, extending the file as needed.
	Write(h Handle, off uint64, data []byte) error
	// ReadDir lists a directory.
	ReadDir(dir Handle) ([]DirEntry, error)
	// StatFS reports capacity.
	StatFS() (Stat, error)
	// Sync forces everything durable (the harness's barrier between
	// benchmark phases; NFSv2-semantics backends are already durable
	// per-op).
	Sync() error
}
