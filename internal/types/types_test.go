package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPermHas(t *testing.T) {
	if !PermAll.Has(PermRead | PermWrite | PermDelete | PermSetACL | PermRecover) {
		t.Fatal("PermAll must contain every bit")
	}
	if PermRW.Has(PermDelete) {
		t.Fatal("PermRW must not contain PermDelete")
	}
	if !PermRW.Has(PermRead) || !PermRW.Has(PermWrite) {
		t.Fatal("PermRW must contain read and write")
	}
	var none Perm
	if !PermRead.Has(none) {
		t.Fatal("every perm contains the empty set")
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		0:                     "-----",
		PermRead:              "r----",
		PermRW:                "rw---",
		PermAll:               "rwdaR",
		PermRecover:           "----R",
		PermDelete | PermRead: "r-d--",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Perm(%b).String() = %q, want %q", p, got, want)
		}
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	f := func(ns int64) bool {
		ts := Timestamp(ns)
		if ts == TimeNowest {
			return true
		}
		return TS(ts.Time()) == ts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampNowest(t *testing.T) {
	if TimeNowest.String() != "now" {
		t.Fatalf("TimeNowest.String() = %q", TimeNowest.String())
	}
	now := time.Date(2000, 10, 23, 0, 0, 0, 0, time.UTC)
	if TS(now) >= TimeNowest {
		t.Fatal("real timestamps must order below TimeNowest")
	}
}

func TestReservedObjectIDs(t *testing.T) {
	if NoObject != 0 {
		t.Fatal("NoObject must be the zero value")
	}
	for _, id := range []ObjectID{AuditObject, PartitionTable} {
		if id >= FirstUserObject || id == NoObject {
			t.Fatalf("reserved id %v must be in (0, FirstUserObject)", id)
		}
	}
}

func TestObjectIDString(t *testing.T) {
	if got := ObjectID(42).String(); got != "obj#42" {
		t.Fatalf("String() = %q", got)
	}
}

func TestAdminCred(t *testing.T) {
	c := AdminCred()
	if !c.Admin || c.User != AdminUser {
		t.Fatalf("AdminCred() = %+v", c)
	}
}
