package types

// Op enumerates the S4 RPC commands of Table 1 (OSDI '00, §4.1.1), plus
// the session-management operations the network layer needs. The audit
// log records the Op of every request.
type Op uint8

// Table 1 operations. Ops marked "time-based" in the paper accept an
// optional Timestamp selecting the version that was current at that
// time; TimeBased reports that property.
const (
	OpInvalid Op = iota
	OpCreate
	OpDelete
	OpRead // time-based
	OpWrite
	OpAppend
	OpTruncate
	OpGetAttr // time-based
	OpSetAttr
	OpGetACLByUser  // time-based
	OpGetACLByIndex // time-based
	OpSetACL
	OpPCreate
	OpPDelete
	OpPList  // time-based
	OpPMount // time-based
	// OpSync makes all of the calling client's acknowledged writes
	// durable. Audit note: the drive group-commits, so one physical
	// device force may satisfy many concurrent Sync RPCs — but every
	// RPC still emits its own OpSync audit record (exactly one per
	// call). The audit log records intent per client; the shared force
	// is an implementation detail invisible to intrusion diagnosis.
	OpSync
	OpFlush     // admin
	OpFlushO    // admin
	OpSetWindow // admin

	// Extensions beyond Table 1 used by recovery tools; all read-only
	// except OpRevert, which copies an old version forward as a new one
	// (§3.3 "the drive copy forward the old version").
	OpListVersions
	OpRevert
	OpAuditRead // admin
	OpStatus

	// Session management (not object operations).
	OpHello
	OpBatch

	// OpStats reads the drive's commit-pipeline counters (appended
	// after OpBatch: audit records persist Op codes on disk, so
	// existing codes must never shift).
	OpStats

	// OpScrub triggers an on-demand integrity sweep: every sealed
	// segment's blocks are read back and verified against their summary
	// checksums (admin; appended after OpStats — see the code-stability
	// note above).
	OpScrub // admin

	// OpSetPolicy / OpGetPolicy manage per-object retention policies
	// (DESIGN.md §16; appended after OpScrub — see the code-stability
	// note above). Setting a policy is admin-only: retention is a
	// security property, and a compromised client must not be able to
	// thin its own history.
	OpSetPolicy // admin
	OpGetPolicy

	opMax
)

var opNames = [...]string{
	OpInvalid: "invalid", OpCreate: "create", OpDelete: "delete",
	OpRead: "read", OpWrite: "write", OpAppend: "append",
	OpTruncate: "truncate", OpGetAttr: "getattr", OpSetAttr: "setattr",
	OpGetACLByUser: "getacl-user", OpGetACLByIndex: "getacl-index",
	OpSetACL: "setacl", OpPCreate: "pcreate", OpPDelete: "pdelete",
	OpPList: "plist", OpPMount: "pmount", OpSync: "sync",
	OpFlush: "flush", OpFlushO: "flusho", OpSetWindow: "setwindow",
	OpListVersions: "listversions", OpRevert: "revert",
	OpAuditRead: "auditread", OpStatus: "status",
	OpHello: "hello", OpBatch: "batch", OpStats: "stats",
	OpScrub: "scrub", OpSetPolicy: "setpolicy", OpGetPolicy: "getpolicy",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax }

// TimeBased reports whether o accepts the optional time parameter
// (Table 1's "Allows Time-Based Access" column).
func (o Op) TimeBased() bool {
	switch o {
	case OpRead, OpGetAttr, OpGetACLByUser, OpGetACLByIndex, OpPList, OpPMount:
		return true
	}
	return false
}

// Mutating reports whether o creates a new object version.
func (o Op) Mutating() bool {
	switch o {
	case OpCreate, OpDelete, OpWrite, OpAppend, OpTruncate, OpSetAttr,
		OpSetACL, OpPCreate, OpPDelete, OpRevert:
		return true
	}
	return false
}

// Admin reports whether o requires administrative credentials.
func (o Op) Admin() bool {
	switch o {
	case OpFlush, OpFlushO, OpSetWindow, OpAuditRead, OpScrub, OpSetPolicy:
		return true
	}
	return false
}
