// Package types defines the identifiers, credentials, limits, and error
// values shared by every layer of the S4 self-securing storage stack.
//
// S4 objects live in a flat namespace managed by the drive. Every object
// is named by an ObjectID assigned at creation and used by clients for
// all subsequent references (OSDI '00, §4.1). Credentials identify the
// (user, client-machine) pair that issued a request; the drive's audit
// log records both.
package types

import (
	"errors"
	"fmt"
	"time"
)

// ObjectID uniquely names an object on a drive. IDs are never reused
// within a drive's lifetime: reuse would let a newly created object
// shadow history-pool versions of a dead one.
type ObjectID uint64

// Reserved object IDs. User objects start at FirstUserObject.
const (
	// NoObject is the zero ObjectID; it never names a real object.
	NoObject ObjectID = 0
	// AuditObject is the drive-owned append-only audit log (§4.2.3).
	// It is written only by the drive front end and is not versioned.
	AuditObject ObjectID = 1
	// PartitionTable is the drive-owned table of named objects
	// ("partitions", §4.1). It is versioned like any other object.
	PartitionTable ObjectID = 2
	// PolicyTable is the drive-owned table of per-object retention
	// policies (DESIGN.md §16). It is versioned like any other object.
	PolicyTable ObjectID = 3
	// FirstUserObject is the first ObjectID handed to clients.
	FirstUserObject ObjectID = 16
)

func (id ObjectID) String() string { return fmt.Sprintf("obj#%d", uint64(id)) }

// UserID identifies a principal on whose behalf requests are made.
type UserID uint32

// ClientID identifies a client machine (an authenticated RPC session
// binds to one ClientID).
type ClientID uint32

// Well-known principals.
const (
	// AdminUser is the drive administrator. Only the administrator may
	// issue SetWindow, Flush, FlushO, and may read history versions of
	// objects whose ACL Recovery flag is clear (§3.4, §3.5).
	AdminUser UserID = 0
	// AnonUser is the unauthenticated principal.
	AnonUser UserID = 0xFFFFFFFF
)

// Cred carries the authenticated identity of a request.
type Cred struct {
	User   UserID
	Client ClientID
	// Admin is set only by the RPC layer after verifying the
	// administrative key; it can never be set by a client request body.
	Admin bool
}

// AdminCred returns the administrative credential used by local tools
// operating inside the security perimeter.
func AdminCred() Cred { return Cred{User: AdminUser, Admin: true} }

// Perm is a set of access-permission bits in an ACL entry.
type Perm uint32

const (
	// PermRead allows Read, GetAttr, GetACL on the current version.
	PermRead Perm = 1 << iota
	// PermWrite allows Write, Append, Truncate, SetAttr.
	PermWrite
	// PermDelete allows Delete.
	PermDelete
	// PermSetACL allows SetACL.
	PermSetACL
	// PermRecover is the paper's Recovery flag: when set, the user may
	// read (recover) versions of this object from the history pool once
	// they are overwritten or deleted. When clear, only the device
	// administrator may (§4.1.1).
	PermRecover

	// PermRW is the common read/write grant.
	PermRW = PermRead | PermWrite
	// PermAll grants everything including history recovery.
	PermAll = PermRead | PermWrite | PermDelete | PermSetACL | PermRecover
)

// Has reports whether p contains every bit of q.
func (p Perm) Has(q Perm) bool { return p&q == q }

func (p Perm) String() string {
	b := []byte("-----")
	if p.Has(PermRead) {
		b[0] = 'r'
	}
	if p.Has(PermWrite) {
		b[1] = 'w'
	}
	if p.Has(PermDelete) {
		b[2] = 'd'
	}
	if p.Has(PermSetACL) {
		b[3] = 'a'
	}
	if p.Has(PermRecover) {
		b[4] = 'R'
	}
	return string(b)
}

// ACLEntry grants Perm to one user. The wildcard user EveryoneID grants
// to all users.
type ACLEntry struct {
	User UserID
	Perm Perm
}

// EveryoneID is the ACL wildcard principal.
const EveryoneID UserID = 0xFFFFFFFE

// PolicyMode selects which versions of an object the history pool
// retains inside the detection window (DESIGN.md §16). Every
// modification is still journaled — the audit trail is never thinned —
// but under the selective modes the *data* of an unretained outgoing
// version is released at the next overwrite instead of being held for
// the full window.
type PolicyMode uint8

const (
	// ModeEveryVersion is the paper's comprehensive versioning: every
	// version's data is kept for the whole window. The default.
	ModeEveryVersion PolicyMode = iota
	// ModeLandmarkOnly keeps only versions at or after the newest
	// landmark checkpoint; intermediate versions' data may be dropped.
	ModeLandmarkOnly
	// ModeOnClose keeps versions current at each Sync ("close"), in the
	// Elephant version-on-close style, plus every landmark.
	ModeOnClose

	policyModeMax
)

func (m PolicyMode) String() string {
	switch m {
	case ModeEveryVersion:
		return "every-version"
	case ModeLandmarkOnly:
		return "landmark-only"
	case ModeOnClose:
		return "on-close"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Valid reports whether m is a defined retention mode.
func (m PolicyMode) Valid() bool { return m < policyModeMax }

// ParsePolicyMode maps a mode name back to its value.
func ParsePolicyMode(s string) (PolicyMode, error) {
	switch s {
	case "every-version":
		return ModeEveryVersion, nil
	case "landmark-only":
		return ModeLandmarkOnly, nil
	case "on-close":
		return ModeOnClose, nil
	}
	return 0, fmt.Errorf("unknown policy mode %q: %w", s, ErrInval)
}

// Policy is a per-object (or drive-default) retention policy. The zero
// value is the paper's behavior: comprehensive versioning with
// full-block history and the drive-wide window.
type Policy struct {
	// Window overrides the drive's detection window for this object when
	// non-zero. Zero means "use the drive window".
	Window time.Duration
	// Mode selects which versions' data the history pool retains.
	Mode PolicyMode
	// DeltaEnabled turns on reverse-delta compression of overwritten
	// history blocks (live reads stay full-block; only back-in-time
	// walks pay decode).
	DeltaEnabled bool
}

// IsZero reports whether p is the default (all-retaining) policy.
func (p Policy) IsZero() bool { return p == Policy{} }

func (p Policy) String() string {
	d := "delta=off"
	if p.DeltaEnabled {
		d = "delta=on"
	}
	w := "window=drive"
	if p.Window != 0 {
		w = "window=" + p.Window.String()
	}
	return fmt.Sprintf("mode=%v %s %s", p.Mode, d, w)
}

// Timestamp is nanoseconds since the Unix epoch. S4 uses explicit
// integer timestamps on the wire and on disk so that versions order
// totally and deterministically under the virtual clock.
type Timestamp int64

// TimeNowest is a Timestamp beyond any real time; reading "at"
// TimeNowest returns the current version.
const TimeNowest Timestamp = 1<<63 - 1

// TS converts a time.Time to a Timestamp.
func TS(t time.Time) Timestamp { return Timestamp(t.UnixNano()) }

// Time converts a Timestamp back to a time.Time.
func (ts Timestamp) Time() time.Time { return time.Unix(0, int64(ts)) }

func (ts Timestamp) String() string {
	if ts == TimeNowest {
		return "now"
	}
	return ts.Time().UTC().Format(time.RFC3339Nano)
}

// Limits shared across the stack.
const (
	// BlockSize is the drive's data block size in bytes.
	BlockSize = 4096
	// MaxNameLen bounds partition and directory-entry names.
	MaxNameLen = 255
	// MaxAttrLen bounds the opaque attribute blob a client file system
	// may attach to an object (§4.1: "opaque attribute space").
	MaxAttrLen = 512
	// MaxACLEntries bounds the per-object ACL table.
	MaxACLEntries = 32
	// MaxIO bounds a single read/write/append payload.
	MaxIO = 1 << 20
)

// Errors returned across package boundaries. RPC maps these to stable
// wire codes; errors.Is works through the mapping.
//
// Two error classes are retryable: ErrThrottled (the request was
// rejected with an abuse penalty; retry after the penalty elapses) and
// ErrBusy (the drive's worker queue shed the request before executing
// it; retry after a short wait). Both may arrive wrapped in a
// RetryableError carrying the server's suggested wait; every other
// error class is a definitive answer and must not be retried blindly.
var (
	ErrNoObject     = errors.New("s4: no such object")
	ErrExist        = errors.New("s4: object or name already exists")
	ErrPerm         = errors.New("s4: permission denied")
	ErrAdminOnly    = errors.New("s4: administrative access required")
	ErrNoVersion    = errors.New("s4: no version at requested time")
	ErrInval        = errors.New("s4: invalid argument")
	ErrNoSpace      = errors.New("s4: device full")
	ErrHistoryFull  = errors.New("s4: history pool exhausted")
	ErrThrottled    = errors.New("s4: client throttled (history-pool abuse suspected)")
	ErrNameTooLong  = errors.New("s4: name too long")
	ErrNotEmpty     = errors.New("s4: not empty")
	ErrCorrupt      = errors.New("s4: on-disk structure corrupt")
	ErrReadOnly     = errors.New("s4: object is drive-reserved and read-only to clients")
	ErrBadHandle    = errors.New("s4: stale or malformed handle")
	ErrAuthFailed   = errors.New("s4: authentication failed")
	ErrTooLarge     = errors.New("s4: request exceeds size limit")
	ErrUnimplProto  = errors.New("s4: unimplemented protocol operation")
	ErrDriveStopped = errors.New("s4: drive is shut down")
	ErrBusy         = errors.New("s4: server busy (request shed before execution)")

	// ErrClosed is returned by the RPC client for calls issued — or in
	// flight — after Close. It never crosses the wire.
	ErrClosed = errors.New("s4: client closed")
)

// CorruptError reports a verified-read failure: a media block whose
// contents no longer match the checksum its segment summary recorded
// when the block was written. It wraps ErrCorrupt, so errors.Is sees
// the stable class (and the RPC layer maps it to the ErrCorrupt wire
// code); the fields pinpoint the damage for logs and quarantine.
type CorruptError struct {
	Segment int64  // segment index of the damaged block
	Block   uint64 // absolute log block address
	Want    uint32 // checksum recorded in the segment summary
	Got     uint32 // checksum of the bytes the device returned
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("s4: block %d (segment %d) failed its checksum: want %08x, got %08x",
		e.Block, e.Segment, e.Want, e.Got)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// RetryableError wraps one of the retryable error classes (ErrThrottled,
// ErrBusy) with the server's suggested wait before the next attempt.
// errors.Is sees through it to the underlying class.
type RetryableError struct {
	Err   error
	After time.Duration
}

func (e *RetryableError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *RetryableError) Unwrap() error { return e.Err }

// RetryAfterHint extracts the server's suggested wait from err, if any.
func RetryAfterHint(err error) (time.Duration, bool) {
	var re *RetryableError
	if errors.As(err, &re) {
		return re.After, true
	}
	return 0, false
}

// Retryable reports whether err belongs to one of the two retryable
// classes (ErrThrottled, ErrBusy).
func Retryable(err error) bool {
	return errors.Is(err, ErrThrottled) || errors.Is(err, ErrBusy)
}
