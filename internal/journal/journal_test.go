package journal

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"s4/internal/seglog"
	"s4/internal/types"
)

func sampleEntries() []*Entry {
	return []*Entry{
		{Type: EntCreate, Version: 1, Time: 100, User: 3, Client: 9},
		{Type: EntWrite, Version: 2, Time: 200, User: 3, Client: 9,
			FirstBlock: 4,
			Old:        []seglog.BlockAddr{0, 17},
			New:        []seglog.BlockAddr{901, 902},
			OldSize:    100, NewSize: 24576},
		{Type: EntTruncate, Version: 3, Time: 300, User: 3, Client: 9,
			FirstBlock: 1,
			Old:        []seglog.BlockAddr{801, 802, 803},
			OldSize:    24576, NewSize: 4096},
		{Type: EntSetAttr, Version: 4, Time: 400, User: 1, Client: 2,
			OldAttr: []byte("old attr"), NewAttr: []byte("the new attribute blob")},
		{Type: EntSetACL, Version: 5, Time: 500, User: 0, Client: 1,
			ACLIndex: 3,
			OldACL:   types.ACLEntry{User: 7, Perm: types.PermRead},
			NewACL:   types.ACLEntry{User: 7, Perm: types.PermAll}},
		{Type: EntDelete, Version: 6, Time: 600, User: 3, Client: 9, OldSize: 4096},
		{Type: EntCheckpoint, Version: 6, Time: 700, InodeAddr: 5555},
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	for _, e := range sampleEntries() {
		enc := e.Encode(nil)
		if len(enc) != e.EncodedSize() {
			t.Fatalf("%v: EncodedSize=%d but len=%d", e.Type, e.EncodedSize(), len(enc))
		}
		got, rest, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", e.Type, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d trailing bytes", e.Type, len(rest))
		}
		if !entriesEqual(&got, e) {
			t.Fatalf("%v: round trip mismatch\n got %+v\nwant %+v", e.Type, got, *e)
		}
	}
}

// entriesEqual compares semantically: nil and empty slices are the same.
func entriesEqual(a, b *Entry) bool {
	norm := func(e Entry) Entry {
		if len(e.Old) == 0 {
			e.Old = nil
		}
		if len(e.New) == 0 {
			e.New = nil
		}
		if len(e.OldAttr) == 0 {
			e.OldAttr = nil
		}
		if len(e.NewAttr) == 0 {
			e.NewAttr = nil
		}
		return e
	}
	x, y := norm(*a), norm(*b)
	return reflect.DeepEqual(x, y)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := Decode([]byte{0xFF, 1, 2, 3, 4, 5}); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Truncated write entry.
	e := &Entry{Type: EntWrite, Version: 1, Time: 1, New: []seglog.BlockAddr{1, 2}, Old: []seglog.BlockAddr{0, 0}}
	enc := e.Encode(nil)
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestPropertyWriteEntryRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	f := func(version uint64, ts int64, first uint32, n uint8, oldSize, newSize uint64) bool {
		k := int(n)%MaxBlocksPerEntry + 1
		e := &Entry{
			Type: EntWrite, Version: version, Time: types.Timestamp(ts),
			User: types.UserID(rnd.Uint32()), Client: types.ClientID(rnd.Uint32()),
			FirstBlock: uint64(first), OldSize: oldSize, NewSize: newSize,
			Old: make([]seglog.BlockAddr, k), New: make([]seglog.BlockAddr, k),
		}
		for i := 0; i < k; i++ {
			e.Old[i] = seglog.BlockAddr(rnd.Uint64() >> 8)
			e.New[i] = seglog.BlockAddr(rnd.Uint64() >> 8)
		}
		got, rest, err := Decode(e.Encode(nil))
		return err == nil && len(rest) == 0 && entriesEqual(&got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSectorRoundTrip(t *testing.T) {
	entries := sampleEntries()
	sec, err := EncodeSector(77, 1234, entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(sec) > SectorSize {
		t.Fatalf("sector too large: %d", len(sec))
	}
	obj, prev, got, ok, err := DecodeSector(sec)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if obj != 77 || prev != 1234 {
		t.Fatalf("header: obj=%v prev=%v", obj, prev)
	}
	if len(got) != len(entries) {
		t.Fatalf("entries: %d, want %d", len(got), len(entries))
	}
	for i := range got {
		if !entriesEqual(&got[i], entries[i]) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestSectorLimits(t *testing.T) {
	if _, err := EncodeSector(1, 0, nil); err == nil {
		t.Fatal("empty sector accepted")
	}
	// Overflow: entries with large attrs.
	big := &Entry{Type: EntSetAttr, OldAttr: bytes.Repeat([]byte{1}, 2000), NewAttr: bytes.Repeat([]byte{2}, 2000)}
	if _, err := EncodeSector(1, 0, []*Entry{big, big}); err == nil {
		t.Fatal("overflowing sector accepted")
	}
}

func TestDecodeSectorRejectsCorrupt(t *testing.T) {
	if _, _, _, _, err := DecodeSector(make([]byte, 4)); err == nil {
		t.Fatal("short sector accepted")
	}
	sec, _ := EncodeSector(1, 0, sampleEntries()[:1])
	sec[0] ^= 0xFF
	if _, _, _, ok, err := DecodeSector(sec); err != nil || ok {
		t.Fatalf("bad magic must read as empty slot: ok=%v err=%v", ok, err)
	}
	// A valid header with a truncated entry stream is corrupt.
	sec2, _ := EncodeSector(1, 0, sampleEntries()[:2])
	if _, _, _, _, err := DecodeSector(sec2[:SectorHeaderSize+1]); err == nil {
		t.Fatal("torn sector accepted")
	}
}

// TestSectorChecksumCatchesRot flips every byte of an encoded sector in
// turn and requires the decode to fail, read as empty, or — never —
// return success with different content. Journal sectors are rewritten
// in place until their segment seals, so partial segment summaries
// cannot checksum them; the sector CRC is the only thing standing
// between bit rot and the replay path.
func TestSectorChecksumCatchesRot(t *testing.T) {
	entries := sampleEntries()
	sec, err := EncodeSector(77, 1234, entries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sec {
		rotted := append([]byte(nil), sec...)
		rotted[i] ^= 0x40
		obj, prev, got, ok, err := DecodeSector(rotted)
		if err != nil || !ok {
			continue // detected: that is the contract
		}
		if obj != 77 || prev != 1234 || len(got) != len(entries) {
			t.Fatalf("byte %d: rot decoded cleanly to different header/count", i)
		}
		for j := range got {
			if !entriesEqual(&got[j], entries[j]) {
				t.Fatalf("byte %d: rot decoded cleanly to different entry %d", i, j)
			}
		}
		t.Fatalf("byte %d: rot not detected", i)
	}
}

// TestDecodeSectorV1Compat hand-builds a pre-checksum (v1) sector and
// checks it still decodes, so images written before the format bump
// keep opening.
func TestDecodeSectorV1Compat(t *testing.T) {
	e := &Entry{Type: EntCreate, Version: 1, Time: 42, User: 7}
	buf := make([]byte, sectorHeaderV1)
	binary.LittleEndian.PutUint32(buf[0:], sectorMagic)
	binary.LittleEndian.PutUint64(buf[4:], 9)
	binary.LittleEndian.PutUint64(buf[12:], 333)
	binary.LittleEndian.PutUint16(buf[20:], 1)
	buf = e.Encode(buf)
	obj, prev, got, ok, err := DecodeSector(buf)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if obj != 9 || prev != 333 || len(got) != 1 || !entriesEqual(&got[0], e) {
		t.Fatalf("v1 decode mismatch: obj=%v prev=%v n=%d", obj, prev, len(got))
	}
}

// memReader maps block addresses to 4KB blocks for walk tests.
type memReader map[seglog.BlockAddr][]byte

func (m memReader) Read(addr seglog.BlockAddr, buf []byte) error {
	copy(buf, m[addr])
	return nil
}

// at packs a sector blob into slot 0 of a fresh block.
func blockWith(sec []byte) []byte {
	b := make([]byte, seglog.BlockSize)
	copy(b, sec)
	return b
}

func TestWalkBackward(t *testing.T) {
	// Build a 3-sector chain: versions 1..3 in sector A, 4..5 in B, 6 in C.
	mk := func(obj types.ObjectID, prev SectorAddr, vs ...uint64) []byte {
		var es []*Entry
		for _, v := range vs {
			es = append(es, &Entry{Type: EntWrite, Version: v, Time: types.Timestamp(v * 10)})
		}
		sec, err := EncodeSector(obj, prev, es)
		if err != nil {
			t.Fatal(err)
		}
		return sec
	}
	a := MakeSectorAddr(100, 0)
	b := MakeSectorAddr(200, 0)
	c := MakeSectorAddr(300, 0)
	r := memReader{
		100: blockWith(mk(5, 0, 1, 2, 3)),
		200: blockWith(mk(5, a, 4, 5)),
		300: blockWith(mk(5, b, 6)),
	}
	var versions []uint64
	err := WalkBackward(r, 5, c, func(e *Entry) (bool, error) {
		versions = append(versions, e.Version)
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{6, 5, 4, 3, 2, 1}
	if !reflect.DeepEqual(versions, want) {
		t.Fatalf("walk order %v, want %v", versions, want)
	}

	// Early stop.
	versions = versions[:0]
	err = WalkBackward(r, 5, c, func(e *Entry) (bool, error) {
		versions = append(versions, e.Version)
		return e.Version == 4, nil
	})
	if err != nil || !reflect.DeepEqual(versions, []uint64{6, 5, 4}) {
		t.Fatalf("early stop: %v %v", versions, err)
	}

	// Wrong object detected.
	err = WalkBackward(r, 6, c, func(e *Entry) (bool, error) { return false, nil })
	if err == nil {
		t.Fatal("object mismatch undetected")
	}
}

func TestEntryTypeString(t *testing.T) {
	names := map[EntryType]string{
		EntCreate: "create", EntWrite: "write", EntTruncate: "truncate",
		EntSetAttr: "setattr", EntSetACL: "setacl", EntDelete: "delete",
		EntCheckpoint: "checkpoint", EntryType(42): "entry(42)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q want %q", k, got, want)
		}
	}
}
