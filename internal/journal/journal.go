// Package journal implements S4's journal-based metadata (OSDI '00,
// §4.2.2).
//
// Because clients are never trusted to demarcate versions, every update
// creates a new version. Writing a fresh inode (and its indirect-block
// path) per update would multiply disk usage — the paper observed up to
// 4x growth. Instead, S4 records each modification as a compact journal
// entry carrying both the old and the new state (block pointers, sizes,
// attributes), so that:
//
//   - current metadata can be written lazily (checkpointed on cache
//     eviction), since any version is recreatable from the journal;
//   - any historical version is recovered by walking the object's entry
//     chain backward in time, undoing entries newer than the requested
//     instant;
//   - cross-version differencing knows exactly which blocks changed.
//
// Entries for one object are packed into journal sectors (one log block
// each); sectors chain backward in time via a previous-sector pointer
// recorded in the sector header.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"s4/internal/seglog"
	"s4/internal/types"
)

// EntryType discriminates journal entries.
type EntryType uint8

// Entry types. Every modification RPC maps to exactly one type.
const (
	EntInvalid EntryType = iota
	// EntCreate marks object birth. Versions before it do not exist.
	EntCreate
	// EntWrite replaces the block pointers for a contiguous block range
	// and possibly extends the object.
	EntWrite
	// EntTruncate shrinks or grows the object, recording the block
	// pointers discarded by a shrink so they can be resurrected.
	EntTruncate
	// EntSetAttr replaces the opaque attribute blob.
	EntSetAttr
	// EntSetACL replaces one ACL table slot.
	EntSetACL
	// EntDelete marks object death. The object's blocks live on in the
	// history pool until they age out of the detection window.
	EntDelete
	// EntCheckpoint records that a complete copy of the object's
	// metadata was written to the log at InodeAddr; it is the anchor
	// for crash recovery and the boundary for journal-space pruning.
	EntCheckpoint
	// EntRevive resurrects a deleted object (the copy-forward restore
	// of §3.3 applied to a deleted object). OldSize carries the prior
	// DeadTime so undo can restore the deleted state.
	EntRevive
	// entWrite2 is a WIRE-ONLY discriminator: an EntWrite whose DeltaMask
	// or SkipMask is non-zero encodes with this tag so the three extra
	// fields have somewhere to live without perturbing the layout old
	// images use. Decode normalizes it back to EntWrite — in-memory
	// entries never carry this type.
	entWrite2
)

func (t EntryType) String() string {
	switch t {
	case EntCreate:
		return "create"
	case EntWrite:
		return "write"
	case EntTruncate:
		return "truncate"
	case EntSetAttr:
		return "setattr"
	case EntSetACL:
		return "setacl"
	case EntDelete:
		return "delete"
	case EntCheckpoint:
		return "checkpoint"
	case EntRevive:
		return "revive"
	}
	return fmt.Sprintf("entry(%d)", uint8(t))
}

// MaxBlocksPerEntry bounds the pointer pairs one EntWrite/EntTruncate
// may carry so an entry always fits a 512-byte journal sector; larger
// operations are split by the drive.
const MaxBlocksPerEntry = 24

// Entry is one metadata modification record. Only the fields relevant
// to Type are meaningful.
type Entry struct {
	Type    EntryType
	Version uint64 // object version this entry produced
	Time    types.Timestamp
	User    types.UserID
	Client  types.ClientID

	// EntWrite, EntTruncate: the affected contiguous block range starts
	// at FirstBlock. Old holds the pointers valid before the change
	// (NilAddr for holes or past-EOF); New holds the replacements
	// (empty for truncate).
	FirstBlock uint64
	Old        []seglog.BlockAddr
	New        []seglog.BlockAddr
	OldSize    uint64
	NewSize    uint64

	// EntSetAttr.
	OldAttr []byte
	NewAttr []byte

	// EntSetACL.
	ACLIndex uint8
	OldACL   types.ACLEntry
	NewACL   types.ACLEntry

	// EntCheckpoint.
	InodeAddr seglog.BlockAddr

	// Delta-compressed history (DESIGN.md §16); EntWrite only. DeltaMask
	// bit k means Old[k] is not a plain block address but a packed
	// delta-block reference: packedBlockAddr*DeltaSlotsPerBlock + slot.
	// SkipMask bit k means the outgoing version's block k was dropped by
	// the retention policy: Old[k] is NilAddr and the freed address is
	// recorded in Dropped (one entry per set SkipMask bit, ascending k)
	// solely so indexed crash recovery can settle usage accounting.
	// History walks treat a skipped index as poisoned — the affected
	// versions read as ErrNoVersion, never as manufactured zeros.
	DeltaMask uint32
	SkipMask  uint32
	Dropped   []seglog.BlockAddr
}

// DeltaSlotsPerBlock is the packing factor used by delta-block
// references in DeltaMask'd Old slots (ref = addr*DeltaSlotsPerBlock +
// slot). It must be at least delta.MaxSlots; 32 leaves headroom.
const DeltaSlotsPerBlock = 32

// EncodedSize returns the exact encoded length of e.
func (e *Entry) EncodedSize() int {
	return len(e.Encode(nil))
}

// Encode appends e's encoding to dst and returns the extended slice.
func (e *Entry) Encode(dst []byte) []byte {
	put := func(b ...byte) { dst = append(dst, b...) }
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		m := binary.PutUvarint(tmp[:], v)
		put(tmp[:m]...)
	}
	putBytes := func(b []byte) {
		putU(uint64(len(b)))
		put(b...)
	}

	wireType := e.Type
	if e.Type == EntWrite && (e.DeltaMask != 0 || e.SkipMask != 0) {
		// Masked entries use the v2 wire tag; plain writes keep the
		// original layout so pre-upgrade images decode byte-identically.
		wireType = entWrite2
	}
	put(byte(wireType))
	putU(e.Version)
	putU(uint64(e.Time))
	putU(uint64(e.User))
	putU(uint64(e.Client))
	switch e.Type {
	case EntCreate:
		// marker only
	case EntWrite:
		putU(e.FirstBlock)
		putU(uint64(len(e.New)))
		for _, a := range e.New {
			putU(uint64(a))
		}
		for _, a := range e.Old {
			putU(uint64(a))
		}
		putU(e.OldSize)
		putU(e.NewSize)
		if wireType == entWrite2 {
			putU(uint64(e.DeltaMask))
			putU(uint64(e.SkipMask))
			for _, a := range e.Dropped {
				putU(uint64(a))
			}
		}
	case EntTruncate:
		putU(e.FirstBlock)
		putU(uint64(len(e.Old)))
		for _, a := range e.Old {
			putU(uint64(a))
		}
		putU(e.OldSize)
		putU(e.NewSize)
	case EntSetAttr:
		putBytes(e.OldAttr)
		putBytes(e.NewAttr)
	case EntSetACL:
		put(e.ACLIndex)
		putU(uint64(e.OldACL.User))
		putU(uint64(e.OldACL.Perm))
		putU(uint64(e.NewACL.User))
		putU(uint64(e.NewACL.Perm))
	case EntDelete, EntRevive:
		putU(e.OldSize)
	case EntCheckpoint:
		putU(uint64(e.InodeAddr))
	}
	return dst
}

// Decode parses one entry from data, returning it and the remaining
// bytes.
func Decode(data []byte) (Entry, []byte, error) {
	var e Entry
	if len(data) < 1 {
		return e, nil, fmt.Errorf("journal: short entry: %w", types.ErrCorrupt)
	}
	e.Type = EntryType(data[0])
	data = data[1:]
	wire2 := false
	if e.Type == entWrite2 {
		// Normalize: in-memory entries are always EntWrite; the v2 tag
		// only signals the three extra trailing fields.
		e.Type = EntWrite
		wire2 = true
	}
	getU := func() (uint64, error) {
		v, m := binary.Uvarint(data)
		if m <= 0 {
			return 0, fmt.Errorf("journal: bad varint: %w", types.ErrCorrupt)
		}
		data = data[m:]
		return v, nil
	}
	getBytes := func() ([]byte, error) {
		n, err := getU()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)) {
			return nil, fmt.Errorf("journal: truncated bytes field: %w", types.ErrCorrupt)
		}
		b := append([]byte(nil), data[:n]...)
		data = data[n:]
		return b, nil
	}
	var err error
	var v uint64
	if v, err = getU(); err != nil {
		return e, nil, err
	}
	e.Version = v
	if v, err = getU(); err != nil {
		return e, nil, err
	}
	e.Time = types.Timestamp(v)
	if v, err = getU(); err != nil {
		return e, nil, err
	}
	e.User = types.UserID(v)
	if v, err = getU(); err != nil {
		return e, nil, err
	}
	e.Client = types.ClientID(v)

	switch e.Type {
	case EntCreate:
	case EntWrite:
		if e.FirstBlock, err = getU(); err != nil {
			return e, nil, err
		}
		n, err := getU()
		if err != nil {
			return e, nil, err
		}
		if n > MaxBlocksPerEntry {
			return e, nil, fmt.Errorf("journal: entry spans %d blocks: %w", n, types.ErrCorrupt)
		}
		e.New = make([]seglog.BlockAddr, n)
		e.Old = make([]seglog.BlockAddr, n)
		for i := range e.New {
			if v, err = getU(); err != nil {
				return e, nil, err
			}
			e.New[i] = seglog.BlockAddr(v)
		}
		for i := range e.Old {
			if v, err = getU(); err != nil {
				return e, nil, err
			}
			e.Old[i] = seglog.BlockAddr(v)
		}
		if e.OldSize, err = getU(); err != nil {
			return e, nil, err
		}
		if e.NewSize, err = getU(); err != nil {
			return e, nil, err
		}
		if wire2 {
			if v, err = getU(); err != nil {
				return e, nil, err
			}
			e.DeltaMask = uint32(v)
			if v, err = getU(); err != nil {
				return e, nil, err
			}
			e.SkipMask = uint32(v)
			lim := uint32(1)<<uint(n) - 1
			if e.DeltaMask&^lim != 0 || e.SkipMask&^lim != 0 ||
				e.DeltaMask&e.SkipMask != 0 || e.DeltaMask|e.SkipMask == 0 {
				return e, nil, fmt.Errorf("journal: bad entry masks %#x/%#x over %d blocks: %w",
					e.DeltaMask, e.SkipMask, n, types.ErrCorrupt)
			}
			for m := e.SkipMask; m != 0; m &= m - 1 {
				if v, err = getU(); err != nil {
					return e, nil, err
				}
				e.Dropped = append(e.Dropped, seglog.BlockAddr(v))
			}
		}
	case EntTruncate:
		if e.FirstBlock, err = getU(); err != nil {
			return e, nil, err
		}
		n, err := getU()
		if err != nil {
			return e, nil, err
		}
		if n > MaxBlocksPerEntry {
			return e, nil, fmt.Errorf("journal: entry spans %d blocks: %w", n, types.ErrCorrupt)
		}
		e.Old = make([]seglog.BlockAddr, n)
		for i := range e.Old {
			if v, err = getU(); err != nil {
				return e, nil, err
			}
			e.Old[i] = seglog.BlockAddr(v)
		}
		if e.OldSize, err = getU(); err != nil {
			return e, nil, err
		}
		if e.NewSize, err = getU(); err != nil {
			return e, nil, err
		}
	case EntSetAttr:
		if e.OldAttr, err = getBytes(); err != nil {
			return e, nil, err
		}
		if e.NewAttr, err = getBytes(); err != nil {
			return e, nil, err
		}
	case EntSetACL:
		if len(data) < 1 {
			return e, nil, fmt.Errorf("journal: truncated setacl: %w", types.ErrCorrupt)
		}
		e.ACLIndex = data[0]
		data = data[1:]
		if v, err = getU(); err != nil {
			return e, nil, err
		}
		e.OldACL.User = types.UserID(v)
		if v, err = getU(); err != nil {
			return e, nil, err
		}
		e.OldACL.Perm = types.Perm(v)
		if v, err = getU(); err != nil {
			return e, nil, err
		}
		e.NewACL.User = types.UserID(v)
		if v, err = getU(); err != nil {
			return e, nil, err
		}
		e.NewACL.Perm = types.Perm(v)
	case EntDelete, EntRevive:
		if e.OldSize, err = getU(); err != nil {
			return e, nil, err
		}
	case EntCheckpoint:
		if v, err = getU(); err != nil {
			return e, nil, err
		}
		e.InodeAddr = seglog.BlockAddr(v)
	default:
		return e, nil, fmt.Errorf("journal: unknown entry type %d: %w", e.Type, types.ErrCorrupt)
	}
	return e, data, nil
}

// Journal sectors are 512-byte units — the paper's "journal sectors"
// are literal disk sectors, which is what keeps per-object metadata
// history compact. The drive packs up to SectorsPerBlock of them (from
// different objects) into each 4KB log block and addresses an
// individual sector as blockAddr*SectorsPerBlock + slot.
//
// Sector layout (v2): magic(4) obj(8) prev(8) count(2) crc(4) then
// packed entries. The CRC32 (IEEE) covers the encoded sector — header
// with the crc field zeroed, plus the entry bytes — and is what stands
// between bit rot and the replay path: journal blocks in the open
// segment are rewritten in place on every sync, so partial segment
// summaries cannot pin a block-level checksum for them (see
// seglog.encodeSummaryLocked) and the sector must police its own
// integrity until the seal. v1 sectors (the old magic, no crc field)
// still decode so pre-upgrade images open; every new encode writes v2.
const (
	sectorMagic      = 0x53344A4C // "S4JL" v1: no checksum
	sectorMagic2     = 0x53344A32 // "S4J2" v2: self-checksummed
	sectorHeaderV1   = 4 + 8 + 8 + 2
	SectorHeaderSize = 4 + 8 + 8 + 2 + 4
	// SectorSize is the on-disk size of one journal sector.
	SectorSize = 512
	// SectorsPerBlock is how many sectors one log block holds.
	SectorsPerBlock = seglog.BlockSize / SectorSize
	// SectorCapacity is the payload space for entries in one sector.
	SectorCapacity = SectorSize - SectorHeaderSize
)

// SectorAddr addresses one 512-byte journal sector inside a log block:
// blockAddr*SectorsPerBlock + slot. The zero value is the nil address
// (block 0 holds the superblock, so no real sector maps to 0).
type SectorAddr uint64

// NilSector is the null sector address.
const NilSector SectorAddr = 0

// Block returns the log block containing s.
func (s SectorAddr) Block() seglog.BlockAddr {
	return seglog.BlockAddr(uint64(s) / SectorsPerBlock)
}

// Slot returns s's sector index within its block.
func (s SectorAddr) Slot() int { return int(uint64(s) % SectorsPerBlock) }

// MakeSectorAddr composes a sector address.
func MakeSectorAddr(b seglog.BlockAddr, slot int) SectorAddr {
	return SectorAddr(uint64(b)*SectorsPerBlock + uint64(slot))
}

// EncodeSector packs entries (oldest first) for obj into one journal
// sector whose backward chain pointer is prev. It fails if the entries
// do not fit; callers size batches with EncodedSize.
func EncodeSector(obj types.ObjectID, prev SectorAddr, entries []*Entry) ([]byte, error) {
	if len(entries) == 0 || len(entries) > 0xFFFF {
		return nil, fmt.Errorf("journal: sector with %d entries: %w", len(entries), types.ErrInval)
	}
	buf := make([]byte, SectorHeaderSize, SectorSize)
	binary.LittleEndian.PutUint32(buf[0:], sectorMagic2)
	binary.LittleEndian.PutUint64(buf[4:], uint64(obj))
	binary.LittleEndian.PutUint64(buf[12:], uint64(prev))
	binary.LittleEndian.PutUint16(buf[20:], uint16(len(entries)))
	for _, e := range entries {
		buf = e.Encode(buf)
		if len(buf) > SectorSize {
			return nil, fmt.Errorf("journal: entries overflow sector (%d bytes): %w", len(buf), types.ErrTooLarge)
		}
	}
	// The crc field is still zero here, so checksumming the whole buffer
	// matches the verification in DecodeSector.
	binary.LittleEndian.PutUint32(buf[22:], crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeSector parses a journal sector, returning the owning object,
// the previous-sector pointer, and the entries oldest first. ok is
// false (with no error) for an empty slot.
func DecodeSector(data []byte) (obj types.ObjectID, prev SectorAddr, entries []Entry, ok bool, err error) {
	if len(data) < sectorHeaderV1 {
		return 0, 0, nil, false, fmt.Errorf("journal: short sector: %w", types.ErrCorrupt)
	}
	hdr := SectorHeaderSize
	magic := binary.LittleEndian.Uint32(data[0:])
	switch magic {
	case sectorMagic2:
		if len(data) < SectorHeaderSize {
			return 0, 0, nil, false, fmt.Errorf("journal: short sector: %w", types.ErrCorrupt)
		}
	case sectorMagic:
		hdr = sectorHeaderV1 // pre-checksum image
	default:
		return 0, 0, nil, false, nil
	}
	obj = types.ObjectID(binary.LittleEndian.Uint64(data[4:]))
	prev = SectorAddr(binary.LittleEndian.Uint64(data[12:]))
	count := int(binary.LittleEndian.Uint16(data[20:]))
	rest := data[hdr:]
	entries = make([]Entry, 0, count)
	for i := 0; i < count; i++ {
		var e Entry
		e, rest, err = Decode(rest)
		if err != nil {
			return 0, 0, nil, false, err
		}
		entries = append(entries, e)
	}
	if magic == sectorMagic2 {
		// The checksum covers exactly the bytes the decode consumed;
		// anything beyond is stale residue from a longer prior encoding
		// of this in-place-rewritten sector and is deliberately excluded.
		consumed := len(data) - len(rest)
		var zero [4]byte
		c := crc32.Update(0, crc32.IEEETable, data[:22])
		c = crc32.Update(c, crc32.IEEETable, zero[:])
		c = crc32.Update(c, crc32.IEEETable, data[26:consumed])
		if c != binary.LittleEndian.Uint32(data[22:]) {
			return 0, 0, nil, false, fmt.Errorf("journal: sector checksum mismatch: %w", types.ErrCorrupt)
		}
	}
	return obj, prev, entries, true, nil
}

// SectorReader reads a log block by address; *seglog.Log satisfies it.
type SectorReader interface {
	Read(addr seglog.BlockAddr, buf []byte) error
}

// ReadSector fetches and decodes the journal sector at sa.
func ReadSector(r SectorReader, sa SectorAddr) (obj types.ObjectID, prev SectorAddr, entries []Entry, err error) {
	buf := make([]byte, seglog.BlockSize)
	if err := r.Read(sa.Block(), buf); err != nil {
		return 0, 0, nil, err
	}
	slot := sa.Slot()
	data := buf[slot*SectorSize : (slot+1)*SectorSize]
	obj, prev, entries, ok, err := DecodeSector(data)
	if err != nil {
		return 0, 0, nil, err
	}
	if !ok {
		return 0, 0, nil, fmt.Errorf("journal: empty sector at %d: %w", sa, types.ErrCorrupt)
	}
	return obj, prev, entries, nil
}

// WalkBackward visits an object's journal entries newest-first, starting
// from the sector at head and following previous pointers, until fn
// returns stop or the chain ends. Unflushed in-memory entries must be
// visited by the caller before calling WalkBackward.
func WalkBackward(r SectorReader, obj types.ObjectID, head SectorAddr, fn func(e *Entry) (stop bool, err error)) error {
	for addr := head; addr != NilSector; {
		gotObj, prev, entries, err := ReadSector(r, addr)
		if err != nil {
			return err
		}
		if gotObj != obj {
			return fmt.Errorf("journal: sector at %d belongs to %v, expected %v: %w", addr, gotObj, obj, types.ErrCorrupt)
		}
		for i := len(entries) - 1; i >= 0; i-- {
			stop, err := fn(&entries[i])
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
		addr = prev
	}
	return nil
}
