package journal

import (
	"reflect"
	"testing"

	"s4/internal/seglog"
	"s4/internal/types"
)

// fuzz seeds: one entry of each type, plus a full sector.
func seedEntries() []*Entry {
	return []*Entry{
		{Type: EntCreate, Version: 1, Time: 10, User: 7, Client: 2},
		{Type: EntWrite, Version: 2, Time: 11, User: 7, Client: 2,
			FirstBlock: 3, Old: []seglog.BlockAddr{0, 9}, New: []seglog.BlockAddr{12, 13}, OldSize: 100, NewSize: 8192},
		{Type: EntTruncate, Version: 3, Time: 12, User: 7, Client: 2,
			FirstBlock: 1, Old: []seglog.BlockAddr{12}, OldSize: 8192, NewSize: 4096},
		{Type: EntSetAttr, Version: 4, Time: 13, User: 7, Client: 2, OldAttr: []byte("a"), NewAttr: []byte("bb")},
		{Type: EntSetACL, Version: 5, Time: 14, User: 7, Client: 2, ACLIndex: 1,
			OldACL: types.ACLEntry{User: 1, Perm: 1}, NewACL: types.ACLEntry{User: 2, Perm: 7}},
		{Type: EntDelete, Version: 6, Time: 15, User: 7, Client: 2, OldSize: 4096},
		{Type: EntCheckpoint, Version: 7, Time: 16, User: 7, Client: 2, InodeAddr: 99},
	}
}

// FuzzDecode feeds arbitrary bytes to the entry decoder: it must never
// panic, and anything it accepts must re-encode to a form it decodes
// to the same entry.
func FuzzDecode(f *testing.F) {
	for _, e := range seedEntries() {
		f.Add(e.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, _, err := Decode(data)
		if err != nil {
			return
		}
		again, rest, err := Decode(e.Encode(nil))
		if err != nil {
			t.Fatalf("re-decode of accepted entry failed: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest))
		}
		if !reflect.DeepEqual(e, again) {
			t.Fatalf("round trip changed entry:\n  %+v\n  %+v", e, again)
		}
	})
}

// FuzzDecodeSector does the same at sector granularity — this is what
// recovery feeds raw disk sectors to.
func FuzzDecodeSector(f *testing.F) {
	if sec, err := EncodeSector(42, 7, seedEntries()); err == nil {
		f.Add(sec)
	}
	f.Add(make([]byte, SectorSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		obj, prev, entries, ok, err := DecodeSector(data)
		if err != nil || !ok {
			return
		}
		ptrs := make([]*Entry, len(entries))
		for i := range entries {
			ptrs[i] = &entries[i]
		}
		if len(ptrs) == 0 || len(ptrs) > 0xFFFF {
			return // re-encode rejects these by design
		}
		sec, err := EncodeSector(obj, prev, ptrs)
		if err != nil {
			return // accepted input may exceed SectorSize when re-packed
		}
		obj2, prev2, entries2, ok2, err := DecodeSector(sec)
		if err != nil || !ok2 {
			t.Fatalf("re-decode of accepted sector failed: ok=%v err=%v", ok2, err)
		}
		if obj2 != obj || prev2 != prev || !reflect.DeepEqual(entries, entries2) {
			t.Fatalf("round trip changed sector: obj %v->%v prev %v->%v", obj, obj2, prev, prev2)
		}
	})
}
