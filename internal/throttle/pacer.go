package throttle

import (
	"sync"
	"time"
)

// Pacer is a token-bucket rate limiter for background maintenance work
// (the integrity scrubber, DESIGN.md §15). Tokens accrue at Rate per
// second up to Burst; each unit of work spends one token, and when the
// bucket runs dry the caller is told how long to sleep. The caller
// supplies the clock reading, so virtual-clock tests pace
// deterministically and never sleep for real.
type Pacer struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// NewPacer returns a full bucket accruing rate tokens/second with the
// given capacity. Rate and burst are clamped to at least 1.
func NewPacer(rate, burst float64) *Pacer {
	if rate < 1 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &Pacer{rate: rate, burst: burst, tokens: burst}
}

// Take spends n tokens as of now and returns how long the caller must
// wait before doing the work. The debt is booked immediately — callers
// sleep the returned duration and then proceed without calling again.
func (p *Pacer) Take(now time.Time, n float64) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.last.IsZero() {
		p.last = now
	}
	if dt := now.Sub(p.last); dt > 0 {
		p.tokens += dt.Seconds() * p.rate
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
	}
	p.last = now
	p.tokens -= n
	if p.tokens >= 0 {
		return 0
	}
	return time.Duration(-p.tokens / p.rate * float64(time.Second))
}
