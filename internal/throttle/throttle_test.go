package throttle

import (
	"testing"
	"time"

	"s4/internal/types"
)

func base() (Config, time.Time) {
	cfg := Config{
		PoolBytes:  100 << 20,
		PressureAt: 0.7,
		FairShare:  1 << 20,
		HalfLife:   10 * time.Second,
		MaxDelay:   250 * time.Millisecond,
	}
	return cfg, time.Date(2000, 10, 23, 9, 0, 0, 0, time.UTC)
}

func TestNoDelayWhenPoolUnpressured(t *testing.T) {
	cfg, now := base()
	th := New(cfg)
	th.SetPool(10 << 20) // 10% full
	// Even an abusive rate causes no delay while the pool is healthy.
	for i := 0; i < 100; i++ {
		if d := th.Record(1, 10<<20, now.Add(time.Duration(i)*time.Millisecond)); d != 0 {
			t.Fatalf("delayed %v with unpressured pool", d)
		}
	}
}

func TestAbuserThrottledOthersNot(t *testing.T) {
	cfg, now := base()
	th := New(cfg)
	th.SetPool(90 << 20) // 90% full: pressure zone
	// Client 1 hammers; client 2 trickles.
	var abuserDelay, normalDelay time.Duration
	for i := 0; i < 50; i++ {
		ts := now.Add(time.Duration(i) * 100 * time.Millisecond)
		abuserDelay = th.Record(1, 5<<20, ts)  // ~50 MB/s
		normalDelay = th.Record(2, 10<<10, ts) // ~100 KB/s
	}
	if abuserDelay == 0 {
		t.Fatal("abuser not throttled under pool pressure")
	}
	if normalDelay != 0 {
		t.Fatalf("well-behaved client delayed %v", normalDelay)
	}
	suspects := th.Suspects()
	if len(suspects) != 1 || suspects[0] != types.ClientID(1) {
		t.Fatalf("suspects = %v", suspects)
	}
}

func TestDelayGrowsWithPressure(t *testing.T) {
	cfg, now := base()
	measure := func(pool int64) time.Duration {
		th := New(cfg)
		th.SetPool(pool)
		var d time.Duration
		for i := 0; i < 50; i++ {
			d = th.Record(1, 5<<20, now.Add(time.Duration(i)*100*time.Millisecond))
		}
		return d
	}
	d75, d95 := measure(75<<20), measure(95<<20)
	if d95 <= d75 {
		t.Fatalf("delay must grow with pool pressure: 75%%=%v 95%%=%v", d75, d95)
	}
	if d95 > cfg.MaxDelay {
		t.Fatalf("delay %v exceeds cap %v", d95, cfg.MaxDelay)
	}
}

func TestRateDecays(t *testing.T) {
	cfg, now := base()
	th := New(cfg)
	th.SetPool(95 << 20)
	for i := 0; i < 50; i++ {
		th.Record(1, 5<<20, now.Add(time.Duration(i)*100*time.Millisecond))
	}
	if th.Delay(1) == 0 {
		t.Fatal("abuser should be throttled")
	}
	// After many half-lives of silence the penalty disappears.
	if d := th.Record(1, 0, now.Add(10*time.Minute)); d != 0 {
		t.Fatalf("penalty persisted after decay: %v", d)
	}
}

func TestUnknownClientHasNoDelay(t *testing.T) {
	cfg, _ := base()
	th := New(cfg)
	th.SetPool(99 << 20)
	if th.Delay(99) != 0 {
		t.Fatal("unknown client delayed")
	}
}

func TestTotalCharged(t *testing.T) {
	cfg, now := base()
	th := New(cfg)
	th.Record(5, 100, now)
	th.Record(5, 200, now.Add(time.Second))
	if got := th.TotalCharged(5); got != 300 {
		t.Fatalf("TotalCharged = %d", got)
	}
	if th.TotalCharged(6) != 0 {
		t.Fatal("uncharged client has nonzero total")
	}
}

func TestZeroPoolDisablesThrottle(t *testing.T) {
	_, now := base()
	th := New(Config{PoolBytes: 0, HalfLife: time.Second})
	if d := th.Record(1, 1<<30, now); d != 0 {
		t.Fatal("throttle active with no pool configured")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(1 << 30)
	if cfg.PoolBytes != 1<<30 || cfg.PressureAt <= 0 || cfg.MaxDelay <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
}
