// Package throttle implements the history-pool abuse defense of OSDI '00
// §3.3.
//
// A self-securing drive cannot simply drop old versions when the history
// pool fills (an intruder could then destroy evidence), stop versioning
// (diagnosis becomes impossible), or refuse all writes (denial of
// service for everyone). The paper's hybrid: detect probable abuse and
// selectively slow the offending client so administrators can intervene
// while well-behaved users continue working.
//
// Detector model: each client owns an exponentially decayed counter of
// history-pool bytes it has generated. When the pool's occupancy passes
// a pressure threshold, clients whose consumption rate exceeds their
// fair share are penalized with a per-request delay that grows with both
// pool pressure and the client's excess.
package throttle

import (
	"math"
	"sync"
	"time"

	"s4/internal/types"
)

// Config tunes the detector.
type Config struct {
	// PoolBytes is the history-pool capacity being defended.
	PoolBytes int64
	// PressureAt is the pool fraction (0..1) above which throttling
	// engages. Below it no client is ever delayed.
	PressureAt float64
	// FairShare is the per-client consumption rate (bytes/sec) regarded
	// as legitimate; above it the client is a throttle candidate.
	FairShare float64
	// HalfLife controls the decay of per-client rate estimates.
	HalfLife time.Duration
	// MaxDelay caps the injected per-request delay.
	MaxDelay time.Duration
}

// DefaultConfig sizes the detector for a pool of the given capacity.
func DefaultConfig(poolBytes int64) Config {
	return Config{
		PoolBytes:  poolBytes,
		PressureAt: 0.7,
		FairShare:  1 << 20, // 1 MB/s of history generation
		HalfLife:   10 * time.Second,
		MaxDelay:   250 * time.Millisecond,
	}
}

// Throttle is the per-drive abuse detector. Methods are safe for
// concurrent use.
type Throttle struct {
	cfg Config

	mu      sync.Mutex
	clients map[types.ClientID]*state
	pool    int64 // current history-pool occupancy (set by the drive)
}

type state struct {
	rate     float64 // decayed bytes/sec estimate
	lastSeen time.Time
	total    int64
}

// New creates a Throttle with the given configuration.
func New(cfg Config) *Throttle {
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = 10 * time.Second
	}
	return &Throttle{cfg: cfg, clients: make(map[types.ClientID]*state)}
}

// SetPool informs the detector of the current history-pool occupancy.
func (t *Throttle) SetPool(bytes int64) {
	t.mu.Lock()
	t.pool = bytes
	t.mu.Unlock()
}

// Record charges a client for bytes of history-pool growth at time now
// and returns the delay to inject before serving its next request
// (zero for well-behaved clients or an unpressured pool).
func (t *Throttle) Record(c types.ClientID, bytes int64, now time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.clients[c]
	if s == nil {
		s = &state{lastSeen: now}
		t.clients[c] = s
	}
	// Exponential decay of the rate estimate.
	dt := now.Sub(s.lastSeen)
	if dt > 0 {
		decay := float64(dt) / float64(t.cfg.HalfLife)
		if decay > 30 {
			s.rate = 0
		} else {
			s.rate /= pow2(decay)
		}
		s.lastSeen = now
	}
	// Charge the bytes as an instantaneous rate over the half-life.
	s.rate += float64(bytes) / t.cfg.HalfLife.Seconds()
	s.total += bytes
	return t.delayLocked(s)
}

// Delay returns the current penalty for a client without charging it.
func (t *Throttle) Delay(c types.ClientID) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.clients[c]
	if s == nil {
		return 0
	}
	return t.delayLocked(s)
}

func (t *Throttle) delayLocked(s *state) time.Duration {
	if t.cfg.PoolBytes <= 0 {
		return 0
	}
	pressure := float64(t.pool) / float64(t.cfg.PoolBytes)
	if pressure < t.cfg.PressureAt {
		return 0
	}
	excess := s.rate/t.cfg.FairShare - 1
	if excess <= 0 {
		return 0
	}
	// Delay grows with both the client's excess and how deep into the
	// pressure zone the pool is.
	zone := (pressure - t.cfg.PressureAt) / (1 - t.cfg.PressureAt)
	d := time.Duration(float64(t.cfg.MaxDelay) * zone * min1(excess/4))
	if d > t.cfg.MaxDelay {
		d = t.cfg.MaxDelay
	}
	return d
}

// Suspects returns clients currently subject to a nonzero delay, for
// the administrator's attention.
func (t *Throttle) Suspects() []types.ClientID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []types.ClientID
	for c, s := range t.clients {
		if t.delayLocked(s) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// TotalCharged returns the cumulative history bytes charged to c.
func (t *Throttle) TotalCharged(c types.ClientID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.clients[c]; s != nil {
		return s.total
	}
	return 0
}

func min1(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

func pow2(x float64) float64 { return math.Exp2(x) }
