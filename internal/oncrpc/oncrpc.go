// Package oncrpc implements the ONC RPC v2 message protocol (RFC 1057)
// over UDP — the transport NFSv2 classically rode on (the paper's
// testbed spoke NFSv2/UDP on a 100Mb LAN).
//
// Scope: CALL/REPLY framing, AUTH_NULL and AUTH_UNIX credentials (the
// uid/gid a Linux NFS client sends), accepted/denied replies, and a
// UDP server that dispatches to registered program handlers. Transports
// beyond UDP and the portmapper protocol are out of scope; servers
// listen on fixed ports.
package oncrpc

import (
	"fmt"
	"net"
	"sync"

	"s4/internal/xdr"
)

// Message type discriminants.
const (
	msgCall  = 0
	msgReply = 1
)

// Reply status.
const (
	replyAccepted = 0
	replyDenied   = 1
)

// Accept status.
const (
	AcceptSuccess      = 0
	AcceptProgUnavail  = 1
	AcceptProgMismatch = 2
	AcceptProcUnavail  = 3
	AcceptGarbageArgs  = 4
	AcceptSystemErr    = 5
)

// Auth flavors.
const (
	AuthNull = 0
	AuthUnix = 1
)

// Cred is the caller's identity as presented in the RPC credential.
type Cred struct {
	Flavor  uint32
	UID     uint32
	GID     uint32
	Machine string
}

// Handler serves one program: decode args from d, encode results to e,
// and return an accept status.
type Handler func(proc uint32, cred Cred, d *xdr.Decoder, e *xdr.Encoder) uint32

type progKey struct {
	prog, vers uint32
}

// Server dispatches ONC RPC calls arriving on a UDP socket.
type Server struct {
	mu       sync.Mutex
	programs map[progKey]Handler
	conn     *net.UDPConn
	closed   bool
}

// NewServer returns an empty server.
func NewServer() *Server { return &Server{programs: make(map[progKey]Handler)} }

// Register installs a handler for (prog, vers).
func (s *Server) Register(prog, vers uint32, h Handler) {
	s.mu.Lock()
	s.programs[progKey{prog, vers}] = h
	s.mu.Unlock()
}

// ListenAndServe binds addr (e.g. "127.0.0.1:12049") and serves until
// Close. It blocks.
func (s *Server) ListenAndServe(addr string) error {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	return s.serve(conn)
}

// Addr returns the bound UDP address (nil before ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.conn != nil {
		return s.conn.Close()
	}
	return nil
}

func (s *Server) serve(conn *net.UDPConn) error {
	buf := make([]byte, 65536)
	for {
		n, peer, err := conn.ReadFromUDP(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		reply := s.handle(buf[:n])
		if reply != nil {
			if _, err := conn.WriteToUDP(reply, peer); err != nil && !s.isClosed() {
				return err
			}
		}
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// handle decodes one call and produces the reply datagram (nil to drop).
func (s *Server) handle(pkt []byte) []byte {
	d := xdr.NewDecoder(pkt)
	xid, err := d.Uint32()
	if err != nil {
		return nil
	}
	mtype, err := d.Uint32()
	if err != nil || mtype != msgCall {
		return nil
	}
	rpcvers, _ := d.Uint32()
	prog, _ := d.Uint32()
	vers, _ := d.Uint32()
	proc, err := d.Uint32()
	if err != nil || rpcvers != 2 {
		return denied(xid)
	}
	cred, err := decodeAuth(d)
	if err != nil {
		return denied(xid)
	}
	// Verifier: flavor + opaque, ignored.
	if _, err := d.Uint32(); err != nil {
		return denied(xid)
	}
	if _, err := d.Opaque(400); err != nil {
		return denied(xid)
	}

	s.mu.Lock()
	h := s.programs[progKey{prog, vers}]
	s.mu.Unlock()

	e := xdr.NewEncoder()
	e.Uint32(xid)
	e.Uint32(msgReply)
	e.Uint32(replyAccepted)
	e.Uint32(AuthNull) // verifier
	e.Uint32(0)
	if h == nil {
		e.Uint32(AcceptProgUnavail)
		return e.Bytes()
	}
	body := xdr.NewEncoder()
	stat := h(proc, cred, d, body)
	e.Uint32(stat)
	if stat == AcceptSuccess {
		e.OpaqueFixed(body.Bytes())
	}
	return e.Bytes()
}

func decodeAuth(d *xdr.Decoder) (Cred, error) {
	var c Cred
	flavor, err := d.Uint32()
	if err != nil {
		return c, err
	}
	c.Flavor = flavor
	body, err := d.Opaque(400)
	if err != nil {
		return c, err
	}
	if flavor == AuthUnix {
		ad := xdr.NewDecoder(body)
		if _, err := ad.Uint32(); err != nil { // stamp
			return c, err
		}
		if c.Machine, err = ad.String(255); err != nil {
			return c, err
		}
		if c.UID, err = ad.Uint32(); err != nil {
			return c, err
		}
		if c.GID, err = ad.Uint32(); err != nil {
			return c, err
		}
		// Auxiliary gids ignored.
	}
	return c, nil
}

func denied(xid uint32) []byte {
	e := xdr.NewEncoder()
	e.Uint32(xid)
	e.Uint32(msgReply)
	e.Uint32(replyDenied)
	e.Uint32(0) // RPC_MISMATCH
	e.Uint32(2)
	e.Uint32(2)
	return e.Bytes()
}

// Client issues ONC RPC calls over UDP.
type Client struct {
	mu   sync.Mutex
	conn *net.UDPConn
	xid  uint32
	cred Cred
}

// DialClient connects to a UDP RPC server with the given AUTH_UNIX
// identity.
func DialClient(addr string, uid, gid uint32, machine string) (*Client, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, xid: 1, cred: Cred{Flavor: AuthUnix, UID: uid, GID: gid, Machine: machine}}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Call issues (prog, vers, proc) with pre-encoded args and returns the
// decoded result body.
func (c *Client) Call(prog, vers, proc uint32, args []byte) (*xdr.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.xid++
	e := xdr.NewEncoder()
	e.Uint32(c.xid)
	e.Uint32(msgCall)
	e.Uint32(2)
	e.Uint32(prog)
	e.Uint32(vers)
	e.Uint32(proc)
	// AUTH_UNIX credential.
	e.Uint32(AuthUnix)
	body := xdr.NewEncoder()
	body.Uint32(0) // stamp
	body.String(c.cred.Machine)
	body.Uint32(c.cred.UID)
	body.Uint32(c.cred.GID)
	body.Uint32(0) // no aux gids
	e.Opaque(body.Bytes())
	e.Uint32(AuthNull) // verifier
	e.Uint32(0)
	e.OpaqueFixed(args)
	if _, err := c.conn.Write(e.Bytes()); err != nil {
		return nil, err
	}
	buf := make([]byte, 65536)
	n, err := c.conn.Read(buf)
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(buf[:n])
	xid, err := d.Uint32()
	if err != nil || xid != c.xid {
		return nil, fmt.Errorf("oncrpc: xid mismatch")
	}
	if mt, _ := d.Uint32(); mt != msgReply {
		return nil, fmt.Errorf("oncrpc: not a reply")
	}
	if st, _ := d.Uint32(); st != replyAccepted {
		return nil, fmt.Errorf("oncrpc: call denied")
	}
	if _, err := d.Uint32(); err != nil { // verifier flavor
		return nil, err
	}
	if _, err := d.Opaque(400); err != nil { // verifier body
		return nil, err
	}
	stat, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if stat != AcceptSuccess {
		return nil, fmt.Errorf("oncrpc: accept status %d", stat)
	}
	return d, nil
}
