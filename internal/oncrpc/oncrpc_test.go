package oncrpc

import (
	"testing"
	"time"

	"s4/internal/xdr"
)

const (
	testProg = 200001
	testVers = 1
)

func startEcho(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Register(testProg, testVers, func(proc uint32, cred Cred, d *xdr.Decoder, e *xdr.Encoder) uint32 {
		switch proc {
		case 0:
			return AcceptSuccess
		case 1: // echo string + report uid
			msg, err := d.String(1024)
			if err != nil {
				return AcceptGarbageArgs
			}
			e.String(msg)
			e.Uint32(cred.UID)
			return AcceptSuccess
		}
		return AcceptProcUnavail
	})
	go func() { _ = s.ListenAndServe("127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("bind timeout")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, s.Addr().String()
}

func TestCallEcho(t *testing.T) {
	_, addr := startEcho(t)
	c, err := DialClient(addr, 777, 100, "client.example")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	args := xdr.NewEncoder()
	args.String("ping over ONC RPC")
	d, err := c.Call(testProg, testVers, 1, args.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.String(1024)
	if err != nil || got != "ping over ONC RPC" {
		t.Fatal(got, err)
	}
	uid, err := d.Uint32()
	if err != nil || uid != 777 {
		t.Fatalf("AUTH_UNIX uid did not arrive: %d %v", uid, err)
	}
}

func TestNullProc(t *testing.T) {
	_, addr := startEcho(t)
	c, err := DialClient(addr, 0, 0, "x")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(testProg, testVers, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownProgramAndProc(t *testing.T) {
	_, addr := startEcho(t)
	c, err := DialClient(addr, 0, 0, "x")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(999999, 1, 0, nil); err == nil {
		t.Fatal("unknown program accepted")
	}
	if _, err := c.Call(testProg, testVers, 42, nil); err == nil {
		t.Fatal("unknown procedure accepted")
	}
}
