// Package vclock provides the clock abstraction used throughout S4.
//
// All performance-sensitive components (the disk model, the drive, the
// cleaner, the RPC latency model) take a Clock rather than calling
// time.Now directly. Production daemons use Wall; the benchmark harness
// uses Virtual, a deterministic discrete-event clock that components
// advance by the service time of each simulated operation. Two runs with
// the same seed therefore produce identical timings.
package vclock

import (
	"sync"
	"time"

	"s4/internal/types"
)

// Clock is the time source abstraction.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks (or, for a virtual clock, advances time) for d.
	Sleep(d time.Duration)
}

// Advancer is implemented by clocks whose time is moved explicitly by
// the simulation (the disk model advances the clock by each request's
// service time).
type Advancer interface {
	// Advance moves the clock forward by d. Negative d is ignored.
	Advance(d time.Duration)
}

// Wall is the real-time clock.
type Wall struct{}

// Now returns the wall-clock time.
func (Wall) Now() time.Time { return time.Now() }

// Sleep blocks for d of real time.
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic simulated clock. The zero value starts at
// the Unix epoch; NewVirtual picks a fixed, readable base time.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock starting at a fixed base time.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Date(2000, time.October, 23, 9, 0, 0, 0, time.UTC)}
}

// NewVirtualAt returns a virtual clock starting at t.
func NewVirtualAt(t time.Time) *Virtual { return &Virtual{now: t} }

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the virtual clock by d; it never blocks.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the virtual clock forward by d. Negative durations are
// ignored so callers may pass computed deltas without clamping.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// TS returns the clock's current time as a types.Timestamp.
func TS(c Clock) types.Timestamp { return types.TS(c.Now()) }
