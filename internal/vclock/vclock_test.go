package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	v.Advance(3 * time.Second)
	if got := v.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("advanced %v, want 3s", got)
	}
	v.Advance(-time.Second) // negative ignored
	if got := v.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("negative advance moved clock: %v", got)
	}
}

func TestVirtualSleepDoesNotBlock(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		v.Sleep(24 * time.Hour)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("virtual Sleep blocked")
	}
	if v.Now().Sub(NewVirtual().Now()) != 24*time.Hour {
		t.Fatal("Sleep must advance virtual time")
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := v.Now().Sub(start); got != 8*1000*time.Microsecond {
		t.Fatalf("lost advances: %v", got)
	}
}

func TestWallClock(t *testing.T) {
	var w Wall
	before := time.Now()
	got := w.Now()
	if got.Before(before.Add(-time.Second)) {
		t.Fatal("wall clock is wildly off")
	}
	// Interface compliance.
	var _ Clock = Wall{}
	var _ Clock = NewVirtual()
	var _ Advancer = NewVirtual()
}

func TestNewVirtualAt(t *testing.T) {
	at := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtualAt(at)
	if !v.Now().Equal(at) {
		t.Fatal("NewVirtualAt start time wrong")
	}
}
