// Package workloads reimplements the paper's three benchmark workloads
// against the shared fsys.FileSys interface so that every server
// configuration (S4 object store, S4-NFS, FFS-NFS, ext2-NFS) runs
// byte-identical operation streams:
//
//   - PostMark (Katcher, NetApp TR3022; §5.1.1): small-file create /
//     delete / read / append transactions modeling mail and news
//     servers. Figs. 3 and 5.
//   - SSH-build (§5.1.1): unpack / configure / build phases of a
//     software-development workload. Fig. 4.
//   - Small-file microbenchmark (§5.1.4): 10,000 × 1KB files in 10
//     directories — create, read in creation order, delete. Fig. 6.
//
// All generators are seeded and deterministic.
package workloads

import (
	"fmt"
	"math/rand"

	"s4/internal/fsys"
)

// PostMarkConfig mirrors the original benchmark's knobs. The paper's
// default run: 5,000 files of 512B–9KB and 20,000 transactions with
// equal biases.
type PostMarkConfig struct {
	Files        int
	Transactions int
	MinSize      int
	MaxSize      int
	// Subdirs spreads files over n subdirectories (0 = all in one, the
	// PostMark default).
	Subdirs int
	// ReadBias and CreateBias are percentages (0–100) choosing read vs
	// append and create vs delete inside a transaction; 50/50 is the
	// paper's "equal biases".
	ReadBias   int
	CreateBias int
	Seed       int64
	// OpsBetweenHook, when nonzero, invokes Hook every n transactions
	// (the Fig. 5 harness interleaves cleaner passes this way).
	OpsBetweenHook int
	Hook           func()
}

// DefaultPostMark returns the paper's configuration.
func DefaultPostMark() PostMarkConfig {
	return PostMarkConfig{
		Files: 5000, Transactions: 20000,
		MinSize: 512, MaxSize: 9216,
		ReadBias: 50, CreateBias: 50, Seed: 1,
	}
}

// PostMarkResult reports the benchmark's observable work. Phase timings
// are measured by the harness around the phase calls.
type PostMarkResult struct {
	Created      int
	Deleted      int
	Read         int
	Appended     int
	BytesRead    int64
	BytesWrite   int64
	Transactions int
}

// PostMark is an executable benchmark instance.
type PostMark struct {
	cfg  PostMarkConfig
	fs   fsys.FileSys
	rnd  *rand.Rand
	dirs []fsys.Handle
	// files is the live set; names are dense postmark-style.
	files []pmFile
	next  int
	res   PostMarkResult
	buf   []byte
}

type pmFile struct {
	name string
	dir  int
	h    fsys.Handle
}

// NewPostMark prepares an instance over fs.
func NewPostMark(fs fsys.FileSys, cfg PostMarkConfig) *PostMark {
	if cfg.Files <= 0 || cfg.MaxSize < cfg.MinSize {
		panic("workloads: bad postmark config")
	}
	return &PostMark{
		cfg: cfg, fs: fs,
		rnd: rand.New(rand.NewSource(cfg.Seed)),
		buf: make([]byte, cfg.MaxSize),
	}
}

// Result returns counters accumulated so far.
func (p *PostMark) Result() PostMarkResult { return p.res }

// SetHook replaces the per-transaction hook (every == 0 disables it).
// The Fig. 5 harness uses it to switch cleaner interleaving on or off
// between the setup and measurement phases.
func (p *PostMark) SetHook(every int, fn func()) {
	p.cfg.OpsBetweenHook = every
	p.cfg.Hook = fn
}

func (p *PostMark) size() int {
	if p.cfg.MaxSize == p.cfg.MinSize {
		return p.cfg.MinSize
	}
	return p.cfg.MinSize + p.rnd.Intn(p.cfg.MaxSize-p.cfg.MinSize+1)
}

func (p *PostMark) fill(n int) []byte {
	b := p.buf[:n]
	// Text-like bytes, like the original generator.
	for i := range b {
		b[i] = byte('a' + p.rnd.Intn(26))
	}
	return b
}

// SetupDirs creates the working directories.
func (p *PostMark) SetupDirs() error {
	n := p.cfg.Subdirs
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		h, _, err := p.fs.Mkdir(p.fs.Root(), fmt.Sprintf("s%d", i), 0755)
		if err != nil {
			return err
		}
		p.dirs = append(p.dirs, h)
	}
	return nil
}

func (p *PostMark) createOne() error {
	d := p.rnd.Intn(len(p.dirs))
	name := fmt.Sprintf("pm%d", p.next)
	p.next++
	h, _, err := p.fs.Create(p.dirs[d], name, 0644)
	if err != nil {
		return fmt.Errorf("postmark create %s: %w", name, err)
	}
	data := p.fill(p.size())
	if err := p.fs.Write(h, 0, data); err != nil {
		return err
	}
	p.res.Created++
	p.res.BytesWrite += int64(len(data))
	p.files = append(p.files, pmFile{name: name, dir: d, h: h})
	return nil
}

// CreatePhase builds the initial file set. The per-operation hook (if
// configured) fires here too, so harnesses that interleave cleaning can
// keep the device healthy during setup as well as measurement.
func (p *PostMark) CreatePhase() error {
	if p.dirs == nil {
		if err := p.SetupDirs(); err != nil {
			return err
		}
	}
	for i := 0; i < p.cfg.Files; i++ {
		if err := p.createOne(); err != nil {
			return err
		}
		if p.cfg.OpsBetweenHook > 0 && p.cfg.Hook != nil && (i+1)%p.cfg.OpsBetweenHook == 0 {
			p.cfg.Hook()
		}
	}
	return nil
}

func (p *PostMark) pick() int { return p.rnd.Intn(len(p.files)) }

func (p *PostMark) deleteOne() error {
	i := p.pick()
	f := p.files[i]
	if err := p.fs.Remove(p.dirs[f.dir], f.name); err != nil {
		return fmt.Errorf("postmark delete %s: %w", f.name, err)
	}
	p.files[i] = p.files[len(p.files)-1]
	p.files = p.files[:len(p.files)-1]
	p.res.Deleted++
	return nil
}

func (p *PostMark) readOne() error {
	f := p.files[p.pick()]
	a, err := p.fs.GetAttr(f.h)
	if err != nil {
		return err
	}
	data, err := p.fs.Read(f.h, 0, int(a.Size))
	if err != nil {
		return err
	}
	p.res.Read++
	p.res.BytesRead += int64(len(data))
	return nil
}

func (p *PostMark) appendOne() error {
	f := p.files[p.pick()]
	a, err := p.fs.GetAttr(f.h)
	if err != nil {
		return err
	}
	data := p.fill(p.size() / 4)
	if len(data) == 0 {
		data = p.fill(1)
	}
	if err := p.fs.Write(f.h, a.Size, data); err != nil {
		return err
	}
	p.res.Appended++
	p.res.BytesWrite += int64(len(data))
	return nil
}

// TransactionPhase runs the configured number of transactions. Each
// transaction pairs a create-or-delete with a read-or-append, per the
// original benchmark.
func (p *PostMark) TransactionPhase() error {
	for t := 0; t < p.cfg.Transactions; t++ {
		if len(p.files) == 0 {
			if err := p.createOne(); err != nil {
				return err
			}
		}
		if p.rnd.Intn(100) < p.cfg.CreateBias {
			if err := p.createOne(); err != nil {
				return err
			}
		} else if err := p.deleteOne(); err != nil {
			return err
		}
		if len(p.files) == 0 {
			if err := p.createOne(); err != nil {
				return err
			}
		}
		if p.rnd.Intn(100) < p.cfg.ReadBias {
			if err := p.readOne(); err != nil {
				return err
			}
		} else if err := p.appendOne(); err != nil {
			return err
		}
		p.res.Transactions++
		if p.cfg.OpsBetweenHook > 0 && p.cfg.Hook != nil && (t+1)%p.cfg.OpsBetweenHook == 0 {
			p.cfg.Hook()
		}
	}
	return nil
}

// CleanupPhase removes every remaining file, like the original
// benchmark's final deletion pass.
func (p *PostMark) CleanupPhase() error {
	for len(p.files) > 0 {
		if err := p.deleteOne(); err != nil {
			return err
		}
	}
	return nil
}
