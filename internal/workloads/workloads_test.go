package workloads

import (
	"testing"
	"time"

	"s4/internal/disk"
	"s4/internal/fsys"
	"s4/internal/ufs"
	"s4/internal/vclock"
)

func memFS(t *testing.T) fsys.FileSys {
	t.Helper()
	clk := vclock.NewVirtual()
	dev := disk.New(disk.SmallDisk(256<<20), clk)
	fs, err := ufs.Mkfs(dev, ufs.Options{Policy: ufs.Async, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestPostMarkRuns(t *testing.T) {
	fs := memFS(t)
	cfg := DefaultPostMark()
	cfg.Files = 200
	cfg.Transactions = 500
	p := NewPostMark(fs, cfg)
	if err := p.CreatePhase(); err != nil {
		t.Fatal(err)
	}
	if err := p.TransactionPhase(); err != nil {
		t.Fatal(err)
	}
	r := p.Result()
	if r.Created < 200 || r.Transactions != 500 {
		t.Fatalf("result %+v", r)
	}
	if r.Read == 0 || r.Appended == 0 || r.Deleted == 0 {
		t.Fatalf("unbalanced transaction mix: %+v", r)
	}
	if err := p.CleanupPhase(); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ents {
		sub, err := fs.ReadDir(d.Handle)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) != 0 {
			t.Fatalf("cleanup left %d files in %s", len(sub), d.Name)
		}
	}
}

func TestPostMarkDeterministic(t *testing.T) {
	run := func() PostMarkResult {
		fs := memFS(t)
		cfg := DefaultPostMark()
		cfg.Files = 100
		cfg.Transactions = 300
		p := NewPostMark(fs, cfg)
		if err := p.CreatePhase(); err != nil {
			t.Fatal(err)
		}
		if err := p.TransactionPhase(); err != nil {
			t.Fatal(err)
		}
		return p.Result()
	}
	if run() != run() {
		t.Fatal("postmark is not deterministic for a fixed seed")
	}
}

func TestPostMarkHook(t *testing.T) {
	fs := memFS(t)
	cfg := DefaultPostMark()
	cfg.Files = 50
	cfg.Transactions = 100
	calls := 0
	cfg.OpsBetweenHook = 10
	cfg.Hook = func() { calls++ }
	p := NewPostMark(fs, cfg)
	if err := p.CreatePhase(); err != nil {
		t.Fatal(err)
	}
	if err := p.TransactionPhase(); err != nil {
		t.Fatal(err)
	}
	// 50 creates + 100 transactions at every-10 = 5 + 10 firings.
	if calls != 15 {
		t.Fatalf("hook called %d times, want 15", calls)
	}
}

func TestSSHBuildRuns(t *testing.T) {
	fs := memFS(t)
	cfg := DefaultSSHBuild()
	cfg.SourceFiles = 60
	cfg.ConfigureProbes = 20
	b := NewSSHBuild(fs, cfg)
	if err := b.UnpackPhase(); err != nil {
		t.Fatal(err)
	}
	if err := b.ConfigurePhase(); err != nil {
		t.Fatal(err)
	}
	if err := b.BuildPhase(); err != nil {
		t.Fatal(err)
	}
	// The tree exists with generated artifacts.
	top, _, err := fs.Lookup(fs.Root(), "ssh-1.2.27")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"config.h", "Makefile", "ssh", "sshd", "obj"} {
		if _, _, err := fs.Lookup(top, want); err != nil {
			t.Fatalf("missing %s after build: %v", want, err)
		}
	}
	// conftest dir was cleaned up.
	if _, _, err := fs.Lookup(top, "conftest.dir"); err == nil {
		t.Fatal("conftest.dir not removed")
	}
}

func TestMicroRuns(t *testing.T) {
	fs := memFS(t)
	cfg := MicroConfig{Files: 300, FileSize: 1024, Dirs: 10, Seed: 1}
	m := NewMicro(fs, cfg)
	if err := m.CreatePhase(); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadPhase(); err != nil {
		t.Fatal(err)
	}
	if err := m.DeletePhase(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d, _, err := fs.Lookup(fs.Root(), "dir"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		ents, _ := fs.ReadDir(d)
		if len(ents) != 0 {
			t.Fatalf("dir%d still holds %d files", i, len(ents))
		}
	}
	_ = time.Second
}
