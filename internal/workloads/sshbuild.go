package workloads

import (
	"fmt"
	"math/rand"

	"s4/internal/fsys"
)

// SSHBuild models the paper's SSH-build benchmark (§5.1.1): unpacking,
// configuring, and building SSH v1.2.27. We cannot ship the original
// tarball, so a seeded synthetic source tree with the same character is
// used: ~1MB compressed archive ≈ 3MB of sources in a handful of
// directories, a configure phase that generates and deletes many tiny
// probe programs, and a build phase that reads every source and writes
// object files and executables. What the figures compare is file-system
// write traffic, which this trace reproduces: metadata-heavy unpack,
// small-file-churn configure, and large-write build.
type SSHBuildConfig struct {
	Seed int64
	// SourceFiles and meanSize control tree scale; defaults approximate
	// ssh-1.2.27 (about 270 C files and headers, ~3MB total).
	SourceFiles int
	MeanSize    int
	// ConfigureProbes is the number of feature-test programs the
	// configure phase compiles and removes.
	ConfigureProbes int
}

// DefaultSSHBuild matches the paper's workload scale.
func DefaultSSHBuild() SSHBuildConfig {
	return SSHBuildConfig{Seed: 1, SourceFiles: 270, MeanSize: 11000, ConfigureProbes: 120}
}

// SSHBuild is an executable instance.
type SSHBuild struct {
	cfg SSHBuildConfig
	fs  fsys.FileSys
	rnd *rand.Rand

	srcDirs  []fsys.Handle
	srcFiles []sshFile
	buildDir fsys.Handle
}

type sshFile struct {
	dir  fsys.Handle
	name string
	h    fsys.Handle
	size int
}

// NewSSHBuild prepares an instance over fs.
func NewSSHBuild(fs fsys.FileSys, cfg SSHBuildConfig) *SSHBuild {
	if cfg.SourceFiles == 0 {
		cfg = DefaultSSHBuild()
	}
	return &SSHBuild{cfg: cfg, fs: fs, rnd: rand.New(rand.NewSource(cfg.Seed))}
}

func (s *SSHBuild) fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + s.rnd.Intn(94))
	}
	return b
}

// fileSize draws a source-file size: mostly small, a few large (the
// long-tailed distribution of C sources).
func (s *SSHBuild) fileSize() int {
	base := s.rnd.Intn(s.cfg.MeanSize) + 200
	if s.rnd.Intn(10) == 0 {
		base *= 5 // the occasional big file (e.g. sshd.c)
	}
	return base
}

// UnpackPhase simulates "tar xzf ssh-1.2.27.tar.gz": directory creation
// plus sequential writes of every source file, stressing metadata
// operations on files of varying sizes.
func (s *SSHBuild) UnpackPhase() error {
	top, _, err := s.fs.Mkdir(s.fs.Root(), "ssh-1.2.27", 0755)
	if err != nil {
		return err
	}
	dirNames := []string{".", "lib", "zlib", "gmp", "rsaref", "doc", "config"}
	dirs := []fsys.Handle{top}
	for _, n := range dirNames[1:] {
		d, _, err := s.fs.Mkdir(top, n, 0755)
		if err != nil {
			return err
		}
		dirs = append(dirs, d)
	}
	s.srcDirs = dirs
	for i := 0; i < s.cfg.SourceFiles; i++ {
		d := dirs[s.rnd.Intn(len(dirs))]
		name := fmt.Sprintf("src%03d.c", i)
		if s.rnd.Intn(4) == 0 {
			name = fmt.Sprintf("hdr%03d.h", i)
		}
		h, _, err := s.fs.Create(d, name, 0644)
		if err != nil {
			return err
		}
		size := s.fileSize()
		// Tar writes sequentially in 10KB-ish chunks.
		data := s.fill(size)
		for off := 0; off < size; off += 10240 {
			end := off + 10240
			if end > size {
				end = size
			}
			if err := s.fs.Write(h, uint64(off), data[off:end]); err != nil {
				return err
			}
		}
		s.srcFiles = append(s.srcFiles, sshFile{dir: d, name: name, h: h, size: size})
	}
	return nil
}

// ConfigurePhase simulates ./configure: many small feature probes are
// written, "compiled" (read back, tiny binary written), and removed,
// then config.h and Makefiles are generated.
func (s *SSHBuild) ConfigurePhase() error {
	top := s.srcDirs[0]
	cfgDir, _, err := s.fs.Mkdir(top, "conftest.dir", 0755)
	if err != nil {
		return err
	}
	for i := 0; i < s.cfg.ConfigureProbes; i++ {
		src := fmt.Sprintf("conftest%d.c", i)
		h, _, err := s.fs.Create(cfgDir, src, 0644)
		if err != nil {
			return err
		}
		if err := s.fs.Write(h, 0, s.fill(200+s.rnd.Intn(800))); err != nil {
			return err
		}
		// "Compile": read the probe and a couple of headers, write the
		// test binary, run it, delete both.
		if _, err := s.fs.Read(h, 0, 1024); err != nil {
			return err
		}
		if len(s.srcFiles) > 0 {
			f := s.srcFiles[s.rnd.Intn(len(s.srcFiles))]
			if _, err := s.fs.Read(f.h, 0, 4096); err != nil {
				return err
			}
		}
		bin := fmt.Sprintf("conftest%d", i)
		bh, _, err := s.fs.Create(cfgDir, bin, 0755)
		if err != nil {
			return err
		}
		if err := s.fs.Write(bh, 0, s.fill(3000+s.rnd.Intn(5000))); err != nil {
			return err
		}
		if err := s.fs.Remove(cfgDir, src); err != nil {
			return err
		}
		if err := s.fs.Remove(cfgDir, bin); err != nil {
			return err
		}
	}
	// Generated outputs.
	for _, out := range []struct {
		name string
		size int
	}{{"config.h", 9000}, {"config.status", 25000}, {"Makefile", 30000}, {"config.log", 45000}} {
		h, _, err := s.fs.Create(top, out.name, 0644)
		if err != nil {
			return err
		}
		if err := s.fs.Write(h, 0, s.fill(out.size)); err != nil {
			return err
		}
	}
	return s.fs.Rmdir(top, "conftest.dir")
}

// BuildPhase simulates make: every source is read, an object file is
// written per compilation unit, executables are linked, and temporary
// files are removed. CPU time is not modeled — the figures compare file
// system service time, and the harness adds the network cost.
func (s *SSHBuild) BuildPhase() error {
	top := s.srcDirs[0]
	bd, _, err := s.fs.Mkdir(top, "obj", 0755)
	if err != nil {
		return err
	}
	s.buildDir = bd
	var objs []sshFile
	for i, f := range s.srcFiles {
		// Compile: read the unit (and headers are in cache after the
		// first pass, like a real build).
		if _, err := s.fs.Read(f.h, 0, f.size); err != nil {
			return err
		}
		if f.name[len(f.name)-1] == 'h' {
			continue
		}
		obj := fmt.Sprintf("src%03d.o", i)
		oh, _, err := s.fs.Create(bd, obj, 0644)
		if err != nil {
			return err
		}
		osize := f.size/2 + 512
		if err := s.fs.Write(oh, 0, s.fill(osize)); err != nil {
			return err
		}
		objs = append(objs, sshFile{dir: bd, name: obj, h: oh, size: osize})
	}
	// Link: read all objects, write executables.
	for _, exe := range []struct {
		name string
		size int
	}{{"ssh", 1 << 20}, {"sshd", 1 << 20}, {"scp", 200 << 10}, {"ssh-keygen", 180 << 10}} {
		total := 0
		for _, o := range objs {
			if _, err := s.fs.Read(o.h, 0, o.size); err != nil {
				return err
			}
			total += o.size
		}
		h, _, err := s.fs.Create(top, exe.name, 0755)
		if err != nil {
			return err
		}
		data := s.fill(exe.size)
		for off := 0; off < len(data); off += 64 << 10 {
			end := off + 64<<10
			if end > len(data) {
				end = len(data)
			}
			if err := s.fs.Write(h, uint64(off), data[off:end]); err != nil {
				return err
			}
		}
	}
	// make clean-ish: remove temporaries.
	for _, o := range objs[:len(objs)/4] {
		if err := s.fs.Remove(bd, o.name); err != nil {
			return err
		}
	}
	return nil
}

// Micro is the small-file microbenchmark of §5.1.4 / Fig. 6.
type MicroConfig struct {
	Files    int // default 10,000
	FileSize int // default 1KB
	Dirs     int // default 10
	Seed     int64
}

// DefaultMicro matches the paper.
func DefaultMicro() MicroConfig {
	return MicroConfig{Files: 10000, FileSize: 1024, Dirs: 10, Seed: 1}
}

// Micro runs against fs; phases are separated so the harness can time
// them.
type Micro struct {
	cfg  MicroConfig
	fs   fsys.FileSys
	dirs []fsys.Handle
	hs   []fsys.Handle
	data []byte
}

// NewMicro prepares an instance.
func NewMicro(fs fsys.FileSys, cfg MicroConfig) *Micro {
	if cfg.Files == 0 {
		cfg = DefaultMicro()
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	data := make([]byte, cfg.FileSize)
	rnd.Read(data)
	return &Micro{cfg: cfg, fs: fs, data: data}
}

// CreatePhase creates the files split across the directories.
func (m *Micro) CreatePhase() error {
	for i := 0; i < m.cfg.Dirs; i++ {
		h, _, err := m.fs.Mkdir(m.fs.Root(), fmt.Sprintf("dir%d", i), 0755)
		if err != nil {
			return err
		}
		m.dirs = append(m.dirs, h)
	}
	for i := 0; i < m.cfg.Files; i++ {
		d := m.dirs[i%m.cfg.Dirs]
		h, _, err := m.fs.Create(d, fmt.Sprintf("f%05d", i), 0644)
		if err != nil {
			return err
		}
		if err := m.fs.Write(h, 0, m.data); err != nil {
			return err
		}
		m.hs = append(m.hs, h)
	}
	return nil
}

// ReadPhase reads every file in creation order.
func (m *Micro) ReadPhase() error {
	for _, h := range m.hs {
		if _, err := m.fs.Read(h, 0, m.cfg.FileSize); err != nil {
			return err
		}
	}
	return nil
}

// DeletePhase removes every file in creation order.
func (m *Micro) DeletePhase() error {
	for i := range m.hs {
		d := m.dirs[i%m.cfg.Dirs]
		if err := m.fs.Remove(d, fmt.Sprintf("f%05d", i)); err != nil {
			return err
		}
	}
	return nil
}
