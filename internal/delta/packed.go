// Packed delta blocks (DESIGN.md §16).
//
// The segment log is 4KB-block granular, so storing one per-block
// reverse delta per log block would save no physical space at all — a
// 300-byte delta would still burn a 4KB slot. Instead the drive packs
// several encoded deltas into one KindDelta log block. Each slot is
// addressed as packedBlockAddr*SlotsPerRef + slot by the journal's
// DeltaMask'd Old pointers, carries its own CRC32 (defense in depth
// under the segment summary's whole-block checksum), and records the
// address of the full history block it replaced so indexed crash
// recovery can settle usage accounting without replaying data.
//
// Block layout:
//
//	magic(4) count(1)
//	directory: count × { off(2) len(2) flags(1) crc(4) orig(8) }
//	payloads (byte-packed, in directory order)
package delta

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"s4/internal/types"
)

const (
	packedMagic = 0x53344450 // "S4DP"
	packedHdr   = 5
	slotDirSize = 2 + 2 + 1 + 4 + 8

	// MaxSlots bounds the per-block slot count; references multiply the
	// block address by SlotsPerRef, which must be ≥ MaxSlots.
	MaxSlots = 24
	// SlotsPerRef is the packing factor of slot references
	// (ref = blockAddr*SlotsPerRef + slot). Matches
	// journal.DeltaSlotsPerBlock; asserted in core at init.
	SlotsPerRef = 32

	// slotFlate marks a payload that was DEFLATE-compressed after delta
	// encoding.
	slotFlate = 1 << 0
)

// Slot is one packed delta: the encoded (possibly compressed) payload
// plus the address of the full-size history block it replaced.
type Slot struct {
	Payload []byte
	Flate   bool
	// Orig is the log block address of the full history block this
	// delta replaced; consumed only by indexed crash recovery.
	Orig uint64
}

// PackedBuilder accumulates slots into one block image.
type PackedBuilder struct {
	blockSize int
	slots     []Slot
	payload   int
}

// NewPackedBuilder returns a builder for blocks of blockSize bytes.
func NewPackedBuilder(blockSize int) *PackedBuilder {
	return &PackedBuilder{blockSize: blockSize}
}

// Room reports whether a payload of n bytes would still fit.
func (b *PackedBuilder) Room(n int) bool {
	if len(b.slots) >= MaxSlots {
		return false
	}
	return packedHdr+(len(b.slots)+1)*slotDirSize+b.payload+n <= b.blockSize
}

// Add appends one slot, returning its index. The caller must have
// checked Room.
func (b *PackedBuilder) Add(s Slot) int {
	b.slots = append(b.slots, s)
	b.payload += len(s.Payload)
	return len(b.slots) - 1
}

// Count returns the number of slots staged.
func (b *PackedBuilder) Count() int { return len(b.slots) }

// Finish serializes the staged slots into a block image of exactly the
// payload-bearing prefix (the log pads the rest with zeros).
func (b *PackedBuilder) Finish() []byte {
	out := make([]byte, packedHdr+len(b.slots)*slotDirSize, b.blockSize)
	binary.LittleEndian.PutUint32(out[0:], packedMagic)
	out[4] = byte(len(b.slots))
	off := len(out)
	for i, s := range b.slots {
		p := packedHdr + i*slotDirSize
		binary.LittleEndian.PutUint16(out[p:], uint16(off))
		binary.LittleEndian.PutUint16(out[p+2:], uint16(len(s.Payload)))
		if s.Flate {
			out[p+4] = slotFlate
		}
		binary.LittleEndian.PutUint32(out[p+5:], crc32.ChecksumIEEE(s.Payload))
		binary.LittleEndian.PutUint64(out[p+9:], s.Orig)
		out = append(out, s.Payload...)
		off += len(s.Payload)
	}
	return out
}

// UnpackSlot extracts and CRC-verifies slot i of a packed block.
func UnpackSlot(block []byte, i int) (Slot, error) {
	n, err := packedCount(block)
	if err != nil {
		return Slot{}, err
	}
	if i < 0 || i >= n {
		return Slot{}, fmt.Errorf("delta: packed slot %d of %d: %w", i, n, types.ErrCorrupt)
	}
	p := packedHdr + i*slotDirSize
	off := int(binary.LittleEndian.Uint16(block[p:]))
	plen := int(binary.LittleEndian.Uint16(block[p+2:]))
	if off < packedHdr+n*slotDirSize || off+plen > len(block) {
		return Slot{}, fmt.Errorf("delta: packed slot %d payload out of bounds: %w", i, types.ErrCorrupt)
	}
	s := Slot{
		Payload: block[off : off+plen],
		Flate:   block[p+4]&slotFlate != 0,
		Orig:    binary.LittleEndian.Uint64(block[p+9:]),
	}
	if crc32.ChecksumIEEE(s.Payload) != binary.LittleEndian.Uint32(block[p+5:]) {
		return Slot{}, fmt.Errorf("delta: packed slot %d checksum mismatch: %w", i, types.ErrCorrupt)
	}
	return s, nil
}

// OrigAddrs returns the replaced-block address of every slot. It does
// not verify payloads; recovery accounting needs only the directory.
func OrigAddrs(block []byte) ([]uint64, error) {
	n, err := packedCount(block)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = binary.LittleEndian.Uint64(block[packedHdr+i*slotDirSize+9:])
	}
	return out, nil
}

func packedCount(block []byte) (int, error) {
	if len(block) < packedHdr || binary.LittleEndian.Uint32(block[0:]) != packedMagic {
		return 0, fmt.Errorf("delta: not a packed delta block: %w", types.ErrCorrupt)
	}
	n := int(block[4])
	if n == 0 || n > MaxSlots || packedHdr+n*slotDirSize > len(block) {
		return 0, fmt.Errorf("delta: packed block slot count %d: %w", n, types.ErrCorrupt)
	}
	return n, nil
}

// ApplySlot materializes the older version of a block from packed slot
// i and the newer content the delta was encoded against. Every failure
// wraps types.ErrCorrupt; a rotted delta never yields garbage bytes.
func ApplySlot(block []byte, i int, newer []byte) ([]byte, error) {
	s, err := UnpackSlot(block, i)
	if err != nil {
		return nil, err
	}
	payload := s.Payload
	if s.Flate {
		if payload, err = Decompress(payload); err != nil {
			return nil, err
		}
	}
	return Apply(newer, payload)
}

// EncodeSlot reverse-delta-encodes old against newer, compressing when
// it pays, and reports the resulting slot (without Orig) or ok=false
// when the encoding is no smaller than maxLen.
func EncodeSlot(newer, old []byte, maxLen int) (Slot, bool) {
	enc := Encode(newer, old)
	flate := false
	if c, err := Compress(enc); err == nil && len(c) < len(enc) {
		enc, flate = c, true
	}
	if len(enc) > maxLen {
		return Slot{}, false
	}
	return Slot{Payload: enc, Flate: flate}, true
}
