package delta

import (
	"bytes"
	"errors"
	"testing"

	"s4/internal/types"
)

// FuzzDeltaRoundTrip checks Encode/Apply identity over arbitrary
// (ref, target) pairs: the delta must always reconstruct the target
// exactly, never error, never panic.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), []byte("the quick brown cat jumps over the lazy dog"))
	f.Add([]byte{}, []byte("fresh"))
	f.Add(bytes.Repeat([]byte{0xAB}, 4096), bytes.Repeat([]byte{0xAB}, 4096))
	f.Add(bytes.Repeat([]byte("block"), 900), []byte{})
	f.Fuzz(func(t *testing.T, ref, target []byte) {
		if len(ref) > 1<<16 || len(target) > 1<<16 {
			return
		}
		d := Encode(ref, target)
		got, err := Apply(ref, d)
		if err != nil {
			t.Fatalf("apply of own encoding failed: %v", err)
		}
		if !bytes.Equal(got, target) && !(len(got) == 0 && len(target) == 0) {
			t.Fatalf("round trip reconstructed %d bytes, want %d", len(got), len(target))
		}
	})
}

// FuzzDeltaApplyHostile feeds Apply arbitrary delta bytes: it must
// return data or a typed ErrCorrupt, never panic, and never allocate
// beyond MaxTarget.
func FuzzDeltaApplyHostile(f *testing.F) {
	ref := []byte("reference block content for hostile decoding")
	f.Add(Encode(ref, []byte("reference block content for hostile decoding!!")))
	// Seed the two historical decoder bugs: a copy whose off+n wraps
	// uint64, and a huge declared target length.
	f.Add([]byte{0x08, opCopy, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x05})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, d []byte) {
		out, err := Apply(ref, d)
		if err != nil {
			if !errors.Is(err, types.ErrCorrupt) {
				t.Fatalf("apply error not typed ErrCorrupt: %v", err)
			}
			return
		}
		if len(out) > MaxTarget {
			t.Fatalf("apply produced %d bytes past MaxTarget", len(out))
		}
	})
}

// FuzzPackedDecodeHostile feeds the packed-block reader arbitrary
// bytes: every path must fail typed or succeed, never panic.
func FuzzPackedDecodeHostile(f *testing.F) {
	b := NewPackedBuilder(4096)
	newer := bytes.Repeat([]byte("new content "), 300)
	s, ok := EncodeSlot(newer, bytes.Repeat([]byte("old content "), 300), 2048)
	if !ok {
		f.Fatal("seed slot did not encode")
	}
	s.Orig = 12345
	b.Add(s)
	f.Add(b.Finish(), 0)
	f.Add([]byte{0x50, 0x44, 0x34, 0x53, 0xFF}, 3)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, block []byte, slot int) {
		if _, err := OrigAddrs(block); err != nil && !errors.Is(err, types.ErrCorrupt) {
			t.Fatalf("OrigAddrs error not typed: %v", err)
		}
		if _, err := UnpackSlot(block, slot); err != nil && !errors.Is(err, types.ErrCorrupt) {
			t.Fatalf("UnpackSlot error not typed: %v", err)
		}
		if _, err := ApplySlot(block, slot, newer); err != nil && !errors.Is(err, types.ErrCorrupt) {
			t.Fatalf("ApplySlot error not typed: %v", err)
		}
	})
}

// TestPackedRoundTrip exercises the builder/reader pair over several
// slots, including a bit-flip sweep proving a rotted slot fails typed.
func TestPackedRoundTrip(t *testing.T) {
	newer := make([][]byte, 5)
	older := make([][]byte, 5)
	for i := range newer {
		newer[i] = bytes.Repeat([]byte{byte('A' + i)}, 4096)
		older[i] = append([]byte(nil), newer[i]...)
		copy(older[i][i*100:], "previous-generation bytes")
	}
	b := NewPackedBuilder(4096)
	for i := range newer {
		s, ok := EncodeSlot(newer[i], older[i], 2048)
		if !ok {
			t.Fatalf("slot %d did not fit", i)
		}
		s.Orig = uint64(1000 + i)
		if !b.Room(len(s.Payload)) {
			t.Fatalf("no room for slot %d", i)
		}
		b.Add(s)
	}
	blk := b.Finish()
	if len(blk) > 4096 {
		t.Fatalf("packed block overflows: %d bytes", len(blk))
	}
	origs, err := OrigAddrs(blk)
	if err != nil {
		t.Fatal(err)
	}
	for i := range newer {
		if origs[i] != uint64(1000+i) {
			t.Fatalf("slot %d orig %d", i, origs[i])
		}
		got, err := ApplySlot(blk, i, newer[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, older[i]) {
			t.Fatalf("slot %d did not reconstruct the older version", i)
		}
	}
	// Rot every byte in turn; a corrupted slot must fail typed, and a
	// successful decode must still be the exact older content (flips in
	// unused padding or other slots' payloads are allowed to succeed).
	for pos := 0; pos < len(blk); pos += 7 {
		bad := append([]byte(nil), blk...)
		bad[pos] ^= 0x40
		for i := range newer {
			got, err := ApplySlot(bad, i, newer[i])
			if err == nil && !bytes.Equal(got, older[i]) {
				t.Fatalf("flip at %d slot %d materialized garbage", pos, i)
			}
			if err != nil && !errors.Is(err, types.ErrCorrupt) {
				t.Fatalf("flip at %d slot %d: untyped error %v", pos, i, err)
			}
		}
	}
}
