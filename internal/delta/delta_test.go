package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeApplyIdentity(t *testing.T) {
	ref := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 100)
	target := append([]byte(nil), ref...)
	copy(target[100:], "MUTATION")
	target = append(target[:2000], target[2100:]...) // deletion
	d := Encode(ref, target)
	got, err := Apply(ref, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("apply did not reconstruct target")
	}
	if len(d) >= len(target)/2 {
		t.Fatalf("delta %d bytes for a lightly-edited %d-byte target", len(d), len(target))
	}
}

func TestEmptyCases(t *testing.T) {
	for _, tc := range []struct{ ref, target []byte }{
		{nil, nil},
		{nil, []byte("fresh content")},
		{[]byte("old content"), nil},
		{[]byte("same"), []byte("same")},
	} {
		d := Encode(tc.ref, tc.target)
		got, err := Apply(tc.ref, d)
		if err != nil {
			t.Fatalf("ref=%q target=%q: %v", tc.ref, tc.target, err)
		}
		if !bytes.Equal(got, tc.target) && !(len(got) == 0 && len(tc.target) == 0) {
			t.Fatalf("ref=%q target=%q: got %q", tc.ref, tc.target, got)
		}
	}
}

func TestPropertyRandomEdits(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	f := func(seed int64, nEdits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ref := make([]byte, 1000+r.Intn(20000))
		for i := range ref {
			ref[i] = byte('a' + r.Intn(16))
		}
		target := append([]byte(nil), ref...)
		for e := 0; e < int(nEdits%16); e++ {
			switch r.Intn(3) {
			case 0:
				if len(target) > 10 {
					pos := r.Intn(len(target) - 5)
					copy(target[pos:], "EDIT!")
				}
			case 1:
				pos := r.Intn(len(target))
				ins := make([]byte, r.Intn(100))
				rnd.Read(ins)
				target = append(target[:pos], append(ins, target[pos:]...)...)
			default:
				if len(target) > 200 {
					pos := r.Intn(len(target) - 100)
					target = append(target[:pos], target[pos+r.Intn(100):]...)
				}
			}
		}
		got, err := Apply(ref, Encode(ref, target))
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaIsSmallForSimilarInputs(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	ref := make([]byte, 200000)
	rnd.Read(ref)
	target := append([]byte(nil), ref...)
	for i := 0; i < 20; i++ {
		pos := rnd.Intn(len(target) - 10)
		copy(target[pos:], "0123456789")
	}
	d := Encode(ref, target)
	if float64(len(d)) > 0.05*float64(len(target)) {
		t.Fatalf("delta %.1f%% of target for 20 small edits", 100*float64(len(d))/float64(len(target)))
	}
}

func TestApplyRejectsCorrupt(t *testing.T) {
	ref := []byte("reference data here")
	d := Encode(ref, []byte("reference data here plus more"))
	for cut := 1; cut < len(d)-1; cut += 3 {
		if out, err := Apply(ref, d[:cut]); err == nil && bytes.Equal(out, []byte("reference data here plus more")) {
			t.Fatalf("truncated delta at %d silently reconstructed", cut)
		}
	}
	bad := append([]byte(nil), d...)
	bad[0] = 0xEE
	if _, err := Apply(ref, bad); err == nil {
		t.Fatal("garbage header accepted")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("compressible content with repetition "), 500)
	c, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(data)/2 {
		t.Fatalf("compression achieved only %d -> %d", len(data), len(c))
	}
	got, err := Decompress(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal(err)
	}
}

func TestPropertyCompressRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		c, err := Compress(data)
		if err != nil {
			return false
		}
		got, err := Decompress(c)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
