// Package delta implements cross-version differencing and compression
// for old versions (OSDI '00, §4.2.2 and §5.2).
//
// The paper measured, using Xdelta over a week of daily snapshots of the
// S4 source tree, that differencing old versions against their
// neighbors raises history-pool space efficiency about 3x, and adding
// compression about 5x. This package provides the same two mechanisms:
//
//   - Encode/Apply: a greedy copy/insert binary delta in the Xdelta
//     style — the reference (old) version is indexed by content-defined
//     chunks of a rolling hash; the new version is scanned for matches,
//     which become COPY instructions; unmatched bytes become INSERTs.
//   - Pack/Unpack: DEFLATE (compress/flate) applied to the delta (or to
//     raw data when no reference exists).
//
// The capacity analysis (internal/capacity) and the cleaner's cold-
// version compression use this package.
package delta

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"s4/internal/types"
)

// Instruction opcodes.
const (
	opCopy   = 0x01 // copy (off, len) from the reference
	opInsert = 0x02 // insert literal bytes
)

const (
	// chunk is the granularity of reference indexing.
	chunk = 16
	// minMatch is the smallest run worth a COPY instruction.
	minMatch = 24
	// MaxTarget bounds the reconstructed size Apply (and Decompress)
	// will produce. Hostile length fields beyond it fail typed instead
	// of driving an unbounded allocation.
	MaxTarget = 1 << 24
)

// Encode computes a delta that transforms ref into target. The delta is
// self-contained: Apply(ref, delta) == target. Encoding against an
// empty reference degenerates to one big INSERT.
func Encode(ref, target []byte) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	// Header: target length.
	putU(uint64(len(target)))

	// Index the reference by content chunks.
	index := make(map[uint64][]int)
	if len(ref) >= chunk {
		for i := 0; i+chunk <= len(ref); i += chunk {
			h := hashChunk(ref[i : i+chunk])
			index[h] = append(index[h], i)
		}
	}

	emitInsert := func(lit []byte) {
		for len(lit) > 0 {
			n := len(lit)
			if n > 1<<16 {
				n = 1 << 16
			}
			out = append(out, opInsert)
			putU(uint64(n))
			out = append(out, lit[:n]...)
			lit = lit[n:]
		}
	}

	var lit []byte
	i := 0
	for i+chunk <= len(target) {
		h := hashChunk(target[i : i+chunk])
		best, bestLen := -1, 0
		for _, cand := range index[h] {
			if !bytes.Equal(ref[cand:cand+chunk], target[i:i+chunk]) {
				continue
			}
			// Extend the match forward.
			l := chunk
			for cand+l < len(ref) && i+l < len(target) && ref[cand+l] == target[i+l] {
				l++
			}
			if l > bestLen {
				best, bestLen = cand, l
			}
		}
		if bestLen >= minMatch {
			// Extend backward into pending literals.
			back := 0
			for len(lit) > back && best > back && ref[best-back-1] == target[i-back-1] {
				back++
			}
			lit = lit[:len(lit)-back]
			emitInsert(lit)
			lit = nil
			out = append(out, opCopy)
			putU(uint64(best - back))
			putU(uint64(bestLen + back))
			i += bestLen
			continue
		}
		lit = append(lit, target[i])
		i++
	}
	lit = append(lit, target[i:]...)
	emitInsert(lit)
	return out
}

// Apply reconstructs the target from ref and a delta produced by Encode.
func Apply(ref, delta []byte) ([]byte, error) {
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(delta)
		if n <= 0 {
			return 0, fmt.Errorf("delta: bad varint: %w", types.ErrCorrupt)
		}
		delta = delta[n:]
		return v, nil
	}
	tlen, err := getU()
	if err != nil {
		return nil, err
	}
	if tlen > MaxTarget {
		return nil, fmt.Errorf("delta: target length %d exceeds limit: %w", tlen, types.ErrCorrupt)
	}
	out := make([]byte, 0, tlen)
	for len(delta) > 0 {
		op := delta[0]
		delta = delta[1:]
		switch op {
		case opCopy:
			off, err := getU()
			if err != nil {
				return nil, err
			}
			n, err := getU()
			if err != nil {
				return nil, err
			}
			// Two separate bounds checks: off+n can wrap uint64 on
			// hostile input, turning one comparison into a slice panic.
			if off > uint64(len(ref)) || n > uint64(len(ref))-off {
				return nil, fmt.Errorf("delta: copy beyond reference: %w", types.ErrCorrupt)
			}
			if uint64(len(out))+n > tlen {
				return nil, fmt.Errorf("delta: output exceeds declared length: %w", types.ErrCorrupt)
			}
			out = append(out, ref[off:off+n]...)
		case opInsert:
			n, err := getU()
			if err != nil {
				return nil, err
			}
			if n > uint64(len(delta)) {
				return nil, fmt.Errorf("delta: truncated insert: %w", types.ErrCorrupt)
			}
			if uint64(len(out))+n > tlen {
				return nil, fmt.Errorf("delta: output exceeds declared length: %w", types.ErrCorrupt)
			}
			out = append(out, delta[:n]...)
			delta = delta[n:]
		default:
			return nil, fmt.Errorf("delta: unknown opcode %#x: %w", op, types.ErrCorrupt)
		}
	}
	if uint64(len(out)) != tlen {
		return nil, fmt.Errorf("delta: reconstructed %d bytes, want %d: %w", len(out), tlen, types.ErrCorrupt)
	}
	return out, nil
}

func hashChunk(b []byte) uint64 {
	// FNV-1a over the chunk.
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Compress DEFLATEs data (level 6, gzip's default trade-off).
func Compress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, 6)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress inflates data produced by Compress. Output is bounded by
// MaxTarget so a hostile stream cannot force an unbounded allocation.
func Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, MaxTarget+1))
	if err != nil {
		return nil, fmt.Errorf("delta: inflate: %w", err)
	}
	if len(out) > MaxTarget {
		return nil, fmt.Errorf("delta: inflated output exceeds limit: %w", types.ErrCorrupt)
	}
	return out, nil
}
