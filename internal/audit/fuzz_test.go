package audit

import (
	"encoding/binary"
	"reflect"
	"testing"

	"s4/internal/types"
)

func seedRecords() []Record {
	return []Record{
		{Seq: 1, Time: 100, Client: 2, User: 7, Op: types.OpWrite, Obj: 42,
			Offset: 4096, Length: 8192, Arg: "part0", Raw: []byte{1, 2, 3}, OK: true},
		{Seq: 2, Time: 101, Client: 2, User: 7, Op: types.OpRead, Obj: 42,
			OK: false, Errno: 5},
	}
}

// FuzzDecode feeds arbitrary bytes to the record decoder: no panics,
// and accepted records must survive an encode/decode round trip.
func FuzzDecode(f *testing.F) {
	for _, r := range seedRecords() {
		f.Add(r.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, _, err := Decode(data)
		if err != nil {
			return
		}
		again, rest, err := Decode(r.Encode(nil))
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest))
		}
		if !reflect.DeepEqual(r, again) {
			t.Fatalf("round trip changed record:\n  %+v\n  %+v", r, again)
		}
	})
}

// FuzzDecodeBlock exercises the block framing — recovery hands it raw
// log blocks, so it must reject anything malformed without panicking.
func FuzzDecodeBlock(f *testing.F) {
	if blk, err := EncodeBlock(seedRecords()); err == nil {
		f.Add(blk)
		// A block whose used field lies (smaller than the header, larger
		// than the data) — regression seeds for the bounds check.
		bad := append([]byte(nil), blk...)
		binary.LittleEndian.PutUint16(bad[6:], 3)
		f.Add(bad)
		bad2 := append([]byte(nil), blk...)
		binary.LittleEndian.PutUint16(bad2[6:], 0xFFFF)
		f.Add(bad2)
	}
	f.Add(make([]byte, 4096))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeBlock(data)
		if err != nil || len(recs) == 0 {
			return
		}
		blk, err := EncodeBlock(recs)
		if err != nil {
			return // decoded payload may exceed one block when re-packed
		}
		again, err := DecodeBlock(blk)
		if err != nil {
			t.Fatalf("re-decode of accepted block failed: %v", err)
		}
		if !reflect.DeepEqual(recs, again) {
			t.Fatalf("round trip changed records: %d -> %d", len(recs), len(again))
		}
	})
}
