package audit

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"s4/internal/types"
)

func sampleRecord() Record {
	return Record{
		Seq: 42, Time: 123456789, Client: 7, User: 1001,
		Op: types.OpWrite, Obj: 55, Offset: 8192, Length: 4096,
		Arg: "payload-name", OK: true, Errno: 0,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := sampleRecord()
	enc := r.Encode(nil)
	if len(enc) != r.EncodedSize() {
		t.Fatalf("EncodedSize %d != len %d", r.EncodedSize(), len(enc))
	}
	got, rest, err := Decode(enc)
	if err != nil || len(rest) != 0 {
		t.Fatal(err, len(rest))
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("got %+v want %+v", got, r)
	}
}

func TestRecordFailureRoundTrip(t *testing.T) {
	r := Record{Seq: 1, Op: types.OpDelete, Obj: 9, OK: false, Errno: 13}
	got, _, err := Decode(r.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.OK || got.Errno != 13 {
		t.Fatalf("failure flags lost: %+v", got)
	}
}

func TestPropertyRecordRoundTrip(t *testing.T) {
	f := func(seq uint64, ts int64, client, user uint32, op uint8, obj uint64, off, ln uint64, arg string, ok bool, errno uint8) bool {
		if len(arg) > 1000 {
			arg = arg[:1000]
		}
		r := Record{
			Seq: seq, Time: types.Timestamp(ts), Client: types.ClientID(client),
			User: types.UserID(user), Op: types.Op(op), Obj: types.ObjectID(obj),
			Offset: off, Length: ln, Arg: arg, OK: ok, Errno: errno,
		}
		// Timestamps are encoded as uvarints; negative values are not
		// produced by the drive, so normalize.
		if r.Time < 0 {
			r.Time = -r.Time
		}
		enc := (&r).Encode(nil)
		got, rest, err := Decode(enc)
		return err == nil && len(rest) == 0 && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	r := sampleRecord()
	enc := r.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	var recs []Record
	for i := 0; i < 50; i++ {
		r := sampleRecord()
		r.Seq = uint64(i)
		r.Arg = strings.Repeat("x", i%20)
		recs = append(recs, r)
	}
	blk, err := EncodeBlock(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("block round trip mismatch")
	}
}

func TestBlockLimits(t *testing.T) {
	if _, err := EncodeBlock(nil); err == nil {
		t.Fatal("empty block accepted")
	}
	big := sampleRecord()
	big.Arg = strings.Repeat("a", 3000)
	if _, err := EncodeBlock([]Record{big, big}); err == nil {
		t.Fatal("overflowing block accepted")
	}
}

func TestDecodeBlockRejectsCorrupt(t *testing.T) {
	if _, err := DecodeBlock(make([]byte, 4)); err == nil {
		t.Fatal("short block accepted")
	}
	blk, _ := EncodeBlock([]Record{sampleRecord()})
	blk[0] ^= 0x55
	if _, err := DecodeBlock(blk); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRecordsPackDensely(t *testing.T) {
	// §5.1.4: audit overhead is small because many records fit a block.
	r := Record{Seq: 1000, Time: 1 << 40, Client: 3, User: 500, Op: types.OpRead, Obj: 1 << 20, Offset: 1 << 30, Length: 4096, Arg: "dir0/file17"}
	perBlock := BlockCapacity / r.EncodedSize()
	if perBlock < 80 {
		t.Fatalf("only %d records per block; encoding too fat", perBlock)
	}
}
