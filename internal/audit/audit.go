// Package audit implements the S4 audit log record format (OSDI '00,
// §4.2.3).
//
// The drive appends one record per RPC — read, write, and administrative
// alike — including the command's arguments and the originating client
// and user. Records are packed into 4KB blocks that the drive writes
// through its segment log under the reserved audit object. Because only
// the drive front end can write them, audit blocks are not versioned.
//
// This package is pure encoding: the drive owns block placement, and
// readers stream records back out of a block sequence.
package audit

import (
	"encoding/binary"
	"fmt"

	"s4/internal/seglog"
	"s4/internal/types"
)

// Record is one audited request.
type Record struct {
	Seq    uint64 // drive-assigned, strictly increasing
	Time   types.Timestamp
	Client types.ClientID
	User   types.UserID
	Op     types.Op
	Obj    types.ObjectID // NoObject when not applicable
	// Offset/Length describe the byte range of data operations; for
	// other operations they carry op-specific scalars (e.g. the new
	// window for SetWindow).
	Offset uint64
	Length uint64
	// Arg carries the textual argument (partition names, etc.).
	Arg string
	// Raw is the request image as received at the security perimeter —
	// the paper's audit log records full command arguments (§4.2.3),
	// which is what makes records a few hundred bytes each and gives
	// auditing its measurable (1–3%) cost.
	Raw []byte
	// OK records whether the drive executed the request successfully.
	OK bool
	// Errno is the stable error code for failed requests (0 when OK).
	Errno uint8
	// Shard is the index of the drive that produced this record,
	// tagged by the shard router when it merges per-shard audit
	// streams so diagnosis still answers "which device saw this
	// write". It is deliberately NOT part of the on-disk encoding:
	// a single drive does not know its position in a ring, and
	// adding a field to Encode/Decode would shift every record
	// boundary in existing audit blocks. Zero on a single drive.
	Shard int
}

// Encode appends the record's wire form to dst.
func (r *Record) Encode(dst []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		dst = append(dst, tmp[:n]...)
	}
	putU(r.Seq)
	putU(uint64(r.Time))
	putU(uint64(r.Client))
	putU(uint64(r.User))
	dst = append(dst, byte(r.Op))
	putU(uint64(r.Obj))
	putU(r.Offset)
	putU(r.Length)
	putU(uint64(len(r.Arg)))
	dst = append(dst, r.Arg...)
	putU(uint64(len(r.Raw)))
	dst = append(dst, r.Raw...)
	flags := byte(0)
	if r.OK {
		flags = 1
	}
	dst = append(dst, flags, r.Errno)
	return dst
}

// EncodedSize returns the exact encoded length of r.
func (r *Record) EncodedSize() int { return len(r.Encode(nil)) }

// Decode parses one record from data, returning the remainder.
func Decode(data []byte) (Record, []byte, error) {
	var r Record
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("audit: bad varint: %w", types.ErrCorrupt)
		}
		data = data[n:]
		return v, nil
	}
	var v uint64
	var err error
	if r.Seq, err = getU(); err != nil {
		return r, nil, err
	}
	if v, err = getU(); err != nil {
		return r, nil, err
	}
	r.Time = types.Timestamp(v)
	if v, err = getU(); err != nil {
		return r, nil, err
	}
	r.Client = types.ClientID(v)
	if v, err = getU(); err != nil {
		return r, nil, err
	}
	r.User = types.UserID(v)
	if len(data) < 1 {
		return r, nil, fmt.Errorf("audit: truncated op: %w", types.ErrCorrupt)
	}
	r.Op = types.Op(data[0])
	data = data[1:]
	if v, err = getU(); err != nil {
		return r, nil, err
	}
	r.Obj = types.ObjectID(v)
	if r.Offset, err = getU(); err != nil {
		return r, nil, err
	}
	if r.Length, err = getU(); err != nil {
		return r, nil, err
	}
	if v, err = getU(); err != nil {
		return r, nil, err
	}
	if v > uint64(len(data)) {
		return r, nil, fmt.Errorf("audit: truncated arg: %w", types.ErrCorrupt)
	}
	r.Arg = string(data[:v])
	data = data[v:]
	if v, err = getU(); err != nil {
		return r, nil, err
	}
	if v > uint64(len(data)) {
		return r, nil, fmt.Errorf("audit: truncated raw image: %w", types.ErrCorrupt)
	}
	if v > 0 {
		r.Raw = append([]byte(nil), data[:v]...)
	}
	data = data[v:]
	if len(data) < 2 {
		return r, nil, fmt.Errorf("audit: truncated flags: %w", types.ErrCorrupt)
	}
	r.OK = data[0]&1 != 0
	r.Errno = data[1]
	data = data[2:]
	return r, data, nil
}

// Block layout: magic(4) count(2) used(2) then packed records.
const (
	blockMagic      = 0x53344155 // "S4AU"
	blockHeaderSize = 8
	// BlockCapacity is the payload space of one audit block.
	BlockCapacity = seglog.BlockSize - blockHeaderSize
)

// EncodeBlock packs records into one audit block.
func EncodeBlock(recs []Record) ([]byte, error) {
	if len(recs) == 0 || len(recs) > 0xFFFF {
		return nil, fmt.Errorf("audit: block with %d records: %w", len(recs), types.ErrInval)
	}
	buf := make([]byte, blockHeaderSize, seglog.BlockSize)
	binary.LittleEndian.PutUint32(buf[0:], blockMagic)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(recs)))
	for i := range recs {
		buf = recs[i].Encode(buf)
		if len(buf) > seglog.BlockSize {
			return nil, fmt.Errorf("audit: records overflow block: %w", types.ErrTooLarge)
		}
	}
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(buf)))
	return buf, nil
}

// DecodeBlock unpacks an audit block.
func DecodeBlock(data []byte) ([]Record, error) {
	if len(data) < blockHeaderSize {
		return nil, fmt.Errorf("audit: short block: %w", types.ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(data[0:]) != blockMagic {
		return nil, fmt.Errorf("audit: bad block magic: %w", types.ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint16(data[4:]))
	used := int(binary.LittleEndian.Uint16(data[6:]))
	if used < blockHeaderSize || used > len(data) {
		return nil, fmt.Errorf("audit: block length %d out of range: %w", used, types.ErrCorrupt)
	}
	rest := data[blockHeaderSize:used]
	recs := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		var r Record
		var err error
		r, rest, err = Decode(rest)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}
