package disk

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestFileDiskRoundTripAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drive.img")
	d, err := OpenFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Capacity() != 1<<20 {
		t.Fatalf("capacity %d", d.Capacity())
	}
	data := bytes.Repeat([]byte{0x5C}, 3*SectorSize)
	if err := d.WriteSectors(10, data); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: contents survive, capacity is taken from the file.
	d2, err := OpenFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]byte, len(data))
	if err := d2.ReadSectors(10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contents lost across reopen")
	}
}

func TestFileDiskBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drive.img")
	d, err := OpenFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, SectorSize)
	if err := d.WriteSectors(-1, buf); err == nil {
		t.Fatal("negative sector accepted")
	}
	if err := d.WriteSectors(1<<20/SectorSize, buf); err == nil {
		t.Fatal("past-end write accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "x.img"), 100); err == nil {
		t.Fatal("unaligned capacity accepted")
	}
}
