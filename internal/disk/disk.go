// Package disk provides the sector-addressed storage device under every
// file system in this repository.
//
// The paper's evaluation ran on a 9GB 10,000RPM Seagate Cheetah behind
// an Ultra2 SCSI controller. We substitute a simulated disk: a sparse
// in-memory (or file-backed) sector store plus a mechanical service-time
// model (seek curve, rotational latency, sustained transfer rate). Each
// request advances a vclock by its modeled service time, so benchmarks
// measure deterministic virtual time while data access itself is just
// memory copies. The model captures the effects the paper's figures
// depend on: big sequential segment writes are cheap, scattered small
// synchronous writes are expensive, and cleaner I/O steals device time
// from foreground work.
package disk

import (
	"fmt"
	"math"
	"sync"
	"time"

	"s4/internal/types"
	"s4/internal/vclock"
)

// SectorSize is the unit of addressing and transfer.
const SectorSize = 512

// Geometry describes the mechanical characteristics used by the
// service-time model.
type Geometry struct {
	// NumSectors is the device capacity in sectors.
	NumSectors int64
	// SectorsPerTrack approximates the track length, used to decide
	// when a transfer crosses tracks and to convert sector distance
	// into cylinder distance for the seek curve.
	SectorsPerTrack int64
	// RPM is the spindle speed; rotational latency is half a revolution.
	RPM int
	// TrackToTrack, AvgSeek, FullStroke define the seek curve endpoints.
	TrackToTrack time.Duration
	AvgSeek      time.Duration
	FullStroke   time.Duration
	// TransferRate is the sustained media rate in bytes/second.
	TransferRate int64
}

// Cheetah9 approximates the 9GB 10,000RPM Seagate Cheetah used in the
// paper's testbed.
func Cheetah9() Geometry {
	return Geometry{
		NumSectors:      9 * 1000 * 1000 * 1000 / SectorSize,
		SectorsPerTrack: 300,
		RPM:             10000,
		TrackToTrack:    600 * time.Microsecond,
		AvgSeek:         5200 * time.Microsecond,
		FullStroke:      10500 * time.Microsecond,
		TransferRate:    24 << 20,
	}
}

// SmallDisk returns Cheetah-like mechanics scaled to the given capacity.
// Experiments that sweep space utilization (Fig. 5) use a small device
// so the sweep stays laptop-sized; mechanics per request are unchanged.
func SmallDisk(capacity int64) Geometry {
	g := Cheetah9()
	g.NumSectors = capacity / SectorSize
	return g
}

// Stats counts device activity. Reads are snapshots; use the Stats
// method for a consistent copy.
type Stats struct {
	Reads        int64
	Writes       int64
	SectorsRead  int64
	SectorsWrite int64
	SeekCount    int64 // requests that required a seek (non-sequential)
	BusyTime     time.Duration
}

// Device is the interface file systems build on.
type Device interface {
	// ReadSectors fills buf (a multiple of SectorSize) starting at the
	// given sector.
	ReadSectors(sector int64, buf []byte) error
	// WriteSectors writes buf (a multiple of SectorSize) starting at
	// the given sector.
	WriteSectors(sector int64, buf []byte) error
	// Capacity returns the device size in bytes.
	Capacity() int64
}

// Syncer is implemented by devices whose writes may linger in an OS or
// hardware cache (the file backend). Callers that need a durability
// barrier — the seglog's Sync and checkpoint paths — type-assert for it
// and call Sync; write-through devices (the simulated Disk, FaultDisk)
// simply don't implement it.
type Syncer interface {
	Sync() error
}

// Disk is the simulated device. It is safe for concurrent use; requests
// serialize on the device, as they would on a real spindle.
type Disk struct {
	geo   Geometry
	clock vclock.Clock

	mu      sync.Mutex
	chunks  map[int64][]byte // sparse backing: chunk index -> chunk
	headPos int64            // sector under the head after last request
	stats   Stats
	failAt  int64 // fault injection: fail the Nth next I/O (<0 disabled)
	failErr error
	freeIO  bool // service time not charged (idle-time activity)
}

// chunkSectors is the sparse-allocation granularity (64KB chunks).
const chunkSectors = 128

// New creates a simulated disk with the given geometry, advancing clk by
// each request's modeled service time. A nil clock disables the timing
// model (pure memory store).
func New(geo Geometry, clk vclock.Clock) *Disk {
	if geo.NumSectors <= 0 {
		panic("disk: geometry with no capacity")
	}
	return &Disk{geo: geo, clock: clk, chunks: make(map[int64][]byte), failAt: -1}
}

// Capacity returns the device size in bytes.
func (d *Disk) Capacity() int64 { return d.geo.NumSectors * SectorSize }

// Geometry returns the device geometry.
func (d *Disk) Geometry() Geometry { return d.geo }

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters (used between benchmark phases).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
}

// FailAfter arms fault injection: the n-th subsequent I/O (0 = the very
// next) fails with err without transferring data. Used by crash and
// error-path tests.
func (d *Disk) FailAfter(n int64, err error) {
	d.mu.Lock()
	d.failAt = n
	d.failErr = err
	d.mu.Unlock()
}

func (d *Disk) checkRange(sector int64, n int) error {
	if sector < 0 || n%SectorSize != 0 || sector+int64(n/SectorSize) > d.geo.NumSectors {
		return fmt.Errorf("disk: out-of-range request sector=%d len=%d cap=%d sectors: %w",
			sector, n, d.geo.NumSectors, types.ErrInval)
	}
	return nil
}

// ReadSectors implements Device.
func (d *Disk) ReadSectors(sector int64, buf []byte) error {
	if err := d.checkRange(sector, len(buf)); err != nil {
		return err
	}
	d.mu.Lock()
	if err := d.injectFault(); err != nil {
		d.mu.Unlock()
		return err
	}
	nsec := int64(len(buf) / SectorSize)
	d.copyOut(sector, buf)
	svc := d.serviceTime(sector, nsec)
	d.stats.Reads++
	d.stats.SectorsRead += nsec
	d.advance(svc)
	d.mu.Unlock()
	return nil
}

// WriteSectors implements Device.
func (d *Disk) WriteSectors(sector int64, buf []byte) error {
	if err := d.checkRange(sector, len(buf)); err != nil {
		return err
	}
	d.mu.Lock()
	if err := d.injectFault(); err != nil {
		d.mu.Unlock()
		return err
	}
	nsec := int64(len(buf) / SectorSize)
	d.copyIn(sector, buf)
	svc := d.serviceTime(sector, nsec)
	d.stats.Writes++
	d.stats.SectorsWrite += nsec
	d.advance(svc)
	d.mu.Unlock()
	return nil
}

func (d *Disk) injectFault() error {
	if d.failAt < 0 {
		return nil
	}
	if d.failAt == 0 {
		d.failAt = -1
		err := d.failErr
		if err == nil {
			err = fmt.Errorf("disk: injected fault")
		}
		return err
	}
	d.failAt--
	return nil
}

// SetFreeIO toggles free-I/O mode: requests transfer data and update
// statistics but consume no simulated time. Experiment harnesses use it
// to model background work scheduled into idle periods (e.g. Fig. 5's
// no-cleaning-cost baseline; §5.1.5 notes idle-time and freeblock
// cleaning make this achievable in practice).
func (d *Disk) SetFreeIO(free bool) {
	d.mu.Lock()
	d.freeIO = free
	d.mu.Unlock()
}

func (d *Disk) advance(svc time.Duration) {
	if d.freeIO {
		return
	}
	d.stats.BusyTime += svc
	if adv, ok := d.clock.(vclock.Advancer); ok && d.clock != nil {
		adv.Advance(svc)
	}
}

// serviceTime models one request: seek to the target cylinder (skipped
// for sequential access), half-revolution rotational latency, then media
// transfer. The caller holds d.mu, so headPos updates are ordered.
func (d *Disk) serviceTime(sector, nsec int64) time.Duration {
	if d.clock == nil {
		return 0
	}
	var svc time.Duration
	if sector != d.headPos {
		dist := sector - d.headPos
		if dist < 0 {
			dist = -dist
		}
		cyls := dist / d.geo.SectorsPerTrack
		svc += d.seekTime(cyls)
		// Rotational latency: half a revolution on average. The model
		// is deterministic, so we charge the expectation.
		svc += d.halfRotation()
		d.stats.SeekCount++
	}
	svc += time.Duration(float64(nsec*SectorSize) / float64(d.geo.TransferRate) * float64(time.Second))
	// Crossing tracks during a long transfer costs a head switch per
	// track; approximate with track-to-track time.
	if tracks := nsec / d.geo.SectorsPerTrack; tracks > 0 {
		svc += time.Duration(tracks) * d.geo.TrackToTrack
	}
	d.headPos = sector + nsec
	return svc
}

func (d *Disk) halfRotation() time.Duration {
	if d.geo.RPM <= 0 {
		return 0
	}
	rev := time.Duration(float64(time.Minute) / float64(d.geo.RPM))
	return rev / 2
}

// seekTime interpolates the seek curve: track-to-track for one cylinder,
// rising with the square root of distance through the average seek at
// one-third stroke, to full stroke at maximum distance. This is the
// standard concave disk seek model.
func (d *Disk) seekTime(cyls int64) time.Duration {
	if cyls <= 0 {
		// Same cylinder, different rotational position: no arm motion.
		return 0
	}
	maxCyls := d.geo.NumSectors / d.geo.SectorsPerTrack
	if maxCyls < 1 {
		maxCyls = 1
	}
	frac := float64(cyls) / float64(maxCyls)
	if frac > 1 {
		frac = 1
	}
	t2t := float64(d.geo.TrackToTrack)
	full := float64(d.geo.FullStroke)
	return time.Duration(t2t + (full-t2t)*math.Sqrt(frac))
}

func (d *Disk) copyOut(sector int64, buf []byte) {
	for len(buf) > 0 {
		ci := sector / chunkSectors
		off := (sector % chunkSectors) * SectorSize
		n := int64(chunkSectors*SectorSize) - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if c, ok := d.chunks[ci]; ok {
			copy(buf[:n], c[off:off+n])
		} else {
			for i := range buf[:n] {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		sector += n / SectorSize
	}
}

func (d *Disk) copyIn(sector int64, buf []byte) {
	for len(buf) > 0 {
		ci := sector / chunkSectors
		off := (sector % chunkSectors) * SectorSize
		n := int64(chunkSectors*SectorSize) - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		c, ok := d.chunks[ci]
		if !ok {
			c = make([]byte, chunkSectors*SectorSize)
			d.chunks[ci] = c
		}
		copy(c[off:off+n], buf[:n])
		buf = buf[n:]
		sector += n / SectorSize
	}
}

// AllocatedBytes reports how much backing memory the sparse store has
// materialized; tests use it to confirm large simulated devices stay
// laptop-sized.
func (d *Disk) AllocatedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.chunks)) * chunkSectors * SectorSize
}
