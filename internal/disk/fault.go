// Recording fault device for crash-consistency testing.
//
// FaultDisk is a Device that journals every WriteSectors it acknowledges
// and can later materialize the crash image after any prefix of those
// writes — including a torn prefix of a single multi-sector write. It
// also injects the fault classes a real spindle exhibits: torn writes
// (a partial sector run persists), dropped writes (acknowledged but
// never persisted), bit-rot (reads return flipped bits), and hard I/O
// errors. The torture harness (internal/torture) drives recovery over
// every such image; see DESIGN.md "Crash-consistency testing".
//
// Unlike Disk, FaultDisk has no mechanical timing model: torture runs
// care about write ordering, not service time.
package disk

import (
	"fmt"
	"sync"

	"s4/internal/types"
)

// cowChunk is one sparse chunk of a copy-on-write sector store. A chunk
// is mutable only by the store that owns it; snapshotting clears
// ownership so both sides copy before writing.
type cowChunk struct {
	owner *cowStore // nil once shared between stores
	data  []byte
}

// cowStore is a sparse sector store supporting O(chunks) snapshots.
type cowStore struct {
	chunks map[int64]*cowChunk
}

func newCowStore() *cowStore {
	return &cowStore{chunks: make(map[int64]*cowChunk)}
}

// snapshot returns an independent store sharing all chunk payloads with
// s. Writes on either side copy the affected chunk first.
func (s *cowStore) snapshot() *cowStore {
	n := &cowStore{chunks: make(map[int64]*cowChunk, len(s.chunks))}
	for k, c := range s.chunks {
		c.owner = nil
		n.chunks[k] = c
	}
	return n
}

func (s *cowStore) read(sector int64, buf []byte) {
	for len(buf) > 0 {
		ci := sector / chunkSectors
		off := (sector % chunkSectors) * SectorSize
		n := int64(chunkSectors*SectorSize) - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if c, ok := s.chunks[ci]; ok {
			copy(buf[:n], c.data[off:off+n])
		} else {
			for i := range buf[:n] {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		sector += n / SectorSize
	}
}

func (s *cowStore) write(sector int64, buf []byte) {
	for len(buf) > 0 {
		ci := sector / chunkSectors
		off := (sector % chunkSectors) * SectorSize
		n := int64(chunkSectors*SectorSize) - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		c, ok := s.chunks[ci]
		switch {
		case !ok:
			c = &cowChunk{owner: s, data: make([]byte, chunkSectors*SectorSize)}
			s.chunks[ci] = c
		case c.owner != s:
			// Shared with a snapshot: copy before mutating.
			c = &cowChunk{owner: s, data: append([]byte(nil), c.data...)}
			s.chunks[ci] = c
		}
		copy(c.data[off:off+n], buf[:n])
		buf = buf[n:]
		sector += n / SectorSize
	}
}

// WriteRecord is one acknowledged WriteSectors call. Data holds the
// bytes that actually reached the media — a prefix for a torn write,
// nil for a dropped one — so replaying the journal reproduces the disk
// state exactly.
type WriteRecord struct {
	Sector int64
	Data   []byte
}

// Sectors returns how many sectors of the write were persisted.
func (w WriteRecord) Sectors() int { return len(w.Data) / SectorSize }

// FaultDisk is a recording, fault-injecting Device. It is safe for
// concurrent use.
type FaultDisk struct {
	mu         sync.Mutex
	numSectors int64
	store      *cowStore

	recording bool
	base      *cowStore // state when StartRecording was called
	writes    []WriteRecord
	cursor    *cowStore // base + writes[:cursorK], for ImageAt
	cursorK   int

	failAt   int64 // fail the Nth next I/O (<0 disabled)
	failErr  error
	dropAt   int64 // silently drop the Nth next write (<0 disabled)
	tearAt   int64 // tear the Nth next write (<0 disabled)
	tearKeep int   // sectors of the torn write that persist
	rotMap         // bit-rot in both modes; see rot.go
}

// NewFault creates a FaultDisk with the given capacity in bytes.
func NewFault(capacity int64) *FaultDisk {
	if capacity < SectorSize {
		panic("disk: fault device with no capacity")
	}
	return &FaultDisk{
		numSectors: capacity / SectorSize,
		store:      newCowStore(),
		failAt:     -1,
		dropAt:     -1,
		tearAt:     -1,
	}
}

// Capacity implements Device.
func (f *FaultDisk) Capacity() int64 { return f.numSectors * SectorSize }

func (f *FaultDisk) checkRange(sector int64, n int) error {
	if sector < 0 || n%SectorSize != 0 || sector+int64(n/SectorSize) > f.numSectors {
		return fmt.Errorf("disk: out-of-range request sector=%d len=%d cap=%d sectors: %w",
			sector, n, f.numSectors, types.ErrInval)
	}
	return nil
}

func (f *FaultDisk) injectFault() error {
	if f.failAt < 0 {
		return nil
	}
	if f.failAt == 0 {
		f.failAt = -1
		err := f.failErr
		if err == nil {
			err = fmt.Errorf("disk: injected fault")
		}
		return err
	}
	f.failAt--
	return nil
}

// ReadSectors implements Device.
func (f *FaultDisk) ReadSectors(sector int64, buf []byte) error {
	if err := f.checkRange(sector, len(buf)); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.injectFault(); err != nil {
		return err
	}
	f.store.read(sector, buf)
	f.rotMap.apply(sector, buf)
	return nil
}

// WriteSectors implements Device. Dropped and torn writes still return
// success — the whole point is that the drive believed them durable.
func (f *FaultDisk) WriteSectors(sector int64, buf []byte) error {
	if err := f.checkRange(sector, len(buf)); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.injectFault(); err != nil {
		return err
	}
	persist := buf
	switch {
	case f.dropAt == 0:
		f.dropAt = -1
		persist = nil
	case f.dropAt > 0:
		f.dropAt--
	}
	if persist != nil {
		switch {
		case f.tearAt == 0:
			f.tearAt = -1
			keep := f.tearKeep * SectorSize
			if keep > len(persist) {
				keep = len(persist)
			}
			persist = persist[:keep]
		case f.tearAt > 0:
			f.tearAt--
		}
	}
	if len(persist) > 0 {
		f.store.write(sector, persist)
		f.rotMap.overwrite(sector, int64(len(persist)/SectorSize))
	}
	if f.recording {
		var cp []byte
		if len(persist) > 0 {
			cp = append([]byte(nil), persist...)
		}
		f.writes = append(f.writes, WriteRecord{Sector: sector, Data: cp})
	}
	return nil
}

// FailAfter arms fault injection: the n-th subsequent I/O (0 = the very
// next) fails with err without transferring data. Mirrors Disk.FailAfter;
// pass a negative n to disarm.
func (f *FaultDisk) FailAfter(n int64, err error) {
	f.mu.Lock()
	f.failAt = n
	f.failErr = err
	f.mu.Unlock()
}

// DropAfter arms a dropped write: the n-th subsequent WriteSectors
// (0 = the very next) is acknowledged but nothing reaches the media.
func (f *FaultDisk) DropAfter(n int64) {
	f.mu.Lock()
	f.dropAt = n
	f.mu.Unlock()
}

// TearAfter arms a torn write: the n-th subsequent WriteSectors
// (0 = the very next) persists only its first keepSectors sectors but
// is acknowledged in full.
func (f *FaultDisk) TearAfter(n int64, keepSectors int) {
	f.mu.Lock()
	f.tearAt = n
	f.tearKeep = keepSectors
	f.mu.Unlock()
}

// RotSector arms persistent bit-rot: every subsequent read covering the
// sector sees its bytes XORed with mask until the sector is overwritten
// or the rot is cleared with a zero mask. See rotMap in rot.go for the
// full contract shared with Injector.
func (f *FaultDisk) RotSector(sector int64, mask byte) {
	f.mu.Lock()
	f.rotMap.arm(sector, mask, false)
	f.mu.Unlock()
}

// RotSectorOnce arms one-shot bit-rot: only the next read covering the
// sector sees the corruption, then it self-clears. A zero mask disarms.
func (f *FaultDisk) RotSectorOnce(sector int64, mask byte) {
	f.mu.Lock()
	f.rotMap.arm(sector, mask, true)
	f.mu.Unlock()
}

// ClearFaults disarms every pending fault, including rot in both modes.
func (f *FaultDisk) ClearFaults() {
	f.mu.Lock()
	f.failAt, f.dropAt, f.tearAt = -1, -1, -1
	f.rotMap.clear()
	f.mu.Unlock()
}

// StartRecording snapshots the current contents as the recording base
// and begins journaling every subsequent write. Any prior recording is
// discarded.
func (f *FaultDisk) StartRecording() {
	f.mu.Lock()
	f.base = f.store.snapshot()
	f.cursor = f.base.snapshot()
	f.cursorK = 0
	f.writes = nil
	f.recording = true
	f.mu.Unlock()
}

// Writes returns the number of writes journaled since StartRecording.
func (f *FaultDisk) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.writes)
}

// Record returns the k-th journaled write's metadata.
func (f *FaultDisk) Record(k int) WriteRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes[k]
}

// ImageAt materializes the crash image after exactly the first k
// journaled writes: an independent Device whose contents are the
// recording base plus writes[0:k]. The returned image is mutable (crash
// recovery itself writes) without disturbing the recorder or other
// images. Calling with ascending k is O(delta); going backwards replays
// from the base.
func (f *FaultDisk) ImageAt(k int) (*FaultDisk, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.recording {
		return nil, fmt.Errorf("disk: ImageAt without StartRecording: %w", types.ErrInval)
	}
	if k < 0 || k > len(f.writes) {
		return nil, fmt.Errorf("disk: crash point %d of %d writes: %w", k, len(f.writes), types.ErrInval)
	}
	if k < f.cursorK {
		f.cursor = f.base.snapshot()
		f.cursorK = 0
	}
	for f.cursorK < k {
		w := f.writes[f.cursorK]
		if len(w.Data) > 0 {
			f.cursor.write(w.Sector, w.Data)
		}
		f.cursorK++
	}
	return &FaultDisk{
		numSectors: f.numSectors,
		store:      f.cursor.snapshot(),
		failAt:     -1,
		dropAt:     -1,
		tearAt:     -1,
	}, nil
}

// ImageDropping materializes the image after the first k journaled
// writes with write j silently omitted — the state a lost write leaves
// behind when everything after it still lands. Unlike ImageAt it
// always replays from the recording base, so it costs O(k).
func (f *FaultDisk) ImageDropping(k, j int) (*FaultDisk, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.recording {
		return nil, fmt.Errorf("disk: ImageDropping without StartRecording: %w", types.ErrInval)
	}
	if k < 0 || k > len(f.writes) || j < 0 || j >= k {
		return nil, fmt.Errorf("disk: drop %d within crash point %d of %d writes: %w", j, k, len(f.writes), types.ErrInval)
	}
	st := f.base.snapshot()
	for i := 0; i < k; i++ {
		if i == j {
			continue
		}
		if w := f.writes[i]; len(w.Data) > 0 {
			st.write(w.Sector, w.Data)
		}
	}
	return &FaultDisk{
		numSectors: f.numSectors,
		store:      st,
		failAt:     -1,
		dropAt:     -1,
		tearAt:     -1,
	}, nil
}

// TornImageAt materializes the crash image after the first k writes
// plus a torn prefix (keepSectors sectors) of write k itself — the
// state a power cut mid-transfer leaves behind.
func (f *FaultDisk) TornImageAt(k, keepSectors int) (*FaultDisk, error) {
	img, err := f.ImageAt(k)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if k >= len(f.writes) {
		return nil, fmt.Errorf("disk: torn point %d of %d writes: %w", k, len(f.writes), types.ErrInval)
	}
	w := f.writes[k]
	keep := keepSectors * SectorSize
	if keep > len(w.Data) {
		keep = len(w.Data)
	}
	if keep > 0 {
		img.store.write(w.Sector, w.Data[:keep])
	}
	return img, nil
}
