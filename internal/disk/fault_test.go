package disk

import (
	"bytes"
	"errors"
	"testing"

	"s4/internal/types"
)

func sect(b byte) []byte { return bytes.Repeat([]byte{b}, SectorSize) }

func readSector(t *testing.T, d Device, sector int64) []byte {
	t.Helper()
	buf := make([]byte, SectorSize)
	if err := d.ReadSectors(sector, buf); err != nil {
		t.Fatalf("read sector %d: %v", sector, err)
	}
	return buf
}

func TestFaultDiskBasicReadWrite(t *testing.T) {
	f := NewFault(1 << 20)
	if f.Capacity() != 1<<20 {
		t.Fatalf("capacity = %d", f.Capacity())
	}
	if err := f.WriteSectors(3, sect(0xAB)); err != nil {
		t.Fatal(err)
	}
	if got := readSector(t, f, 3); !bytes.Equal(got, sect(0xAB)) {
		t.Fatal("readback mismatch")
	}
	// Unwritten sectors read as zeros.
	if got := readSector(t, f, 4); !bytes.Equal(got, sect(0)) {
		t.Fatal("unwritten sector not zero")
	}
	// Out-of-range requests are rejected.
	if err := f.WriteSectors(f.Capacity()/SectorSize, sect(1)); !errors.Is(err, types.ErrInval) {
		t.Fatalf("out-of-range write: %v", err)
	}
	if err := f.ReadSectors(0, make([]byte, 100)); !errors.Is(err, types.ErrInval) {
		t.Fatalf("unaligned read: %v", err)
	}
}

func TestFaultDiskImageAt(t *testing.T) {
	f := NewFault(1 << 20)
	if err := f.WriteSectors(0, sect(0x01)); err != nil {
		t.Fatal(err)
	}
	f.StartRecording()
	for i := byte(0); i < 10; i++ {
		if err := f.WriteSectors(int64(i), sect(0x10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Writes() != 10 {
		t.Fatalf("recorded %d writes", f.Writes())
	}
	// Image at 0 is the pre-recording base: sector 0 has the old value.
	img0, err := f.ImageAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := readSector(t, img0, 0); !bytes.Equal(got, sect(0x01)) {
		t.Fatal("image 0 lost base contents")
	}
	// Image at k holds exactly the first k writes.
	img5, err := f.ImageAt(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 5; i++ {
		if got := readSector(t, img5, int64(i)); !bytes.Equal(got, sect(0x10+i)) {
			t.Fatalf("image 5 sector %d wrong", i)
		}
	}
	if got := readSector(t, img5, 5); !bytes.Equal(got, sect(0)) {
		t.Fatal("image 5 leaked write 5")
	}
	// Images are isolated: writing an image touches neither the recorder
	// nor previously returned images.
	if err := img5.WriteSectors(0, sect(0xFF)); err != nil {
		t.Fatal(err)
	}
	if got := readSector(t, f, 0); !bytes.Equal(got, sect(0x10)) {
		t.Fatal("image write leaked into recorder")
	}
	if got := readSector(t, img0, 0); !bytes.Equal(got, sect(0x01)) {
		t.Fatal("image write leaked into sibling image")
	}
	// Going backwards replays from the base.
	img2, err := f.ImageAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := readSector(t, img2, 2); !bytes.Equal(got, sect(0)) {
		t.Fatal("backward image leaked later write")
	}
	if _, err := f.ImageAt(11); !errors.Is(err, types.ErrInval) {
		t.Fatalf("out-of-range crash point: %v", err)
	}
}

func TestFaultDiskTornImage(t *testing.T) {
	f := NewFault(1 << 20)
	f.StartRecording()
	big := append(append([]byte(nil), sect(0xAA)...), sect(0xBB)...)
	if err := f.WriteSectors(10, big); err != nil {
		t.Fatal(err)
	}
	img, err := f.TornImageAt(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := readSector(t, img, 10); !bytes.Equal(got, sect(0xAA)) {
		t.Fatal("torn image lost persisted prefix")
	}
	if got := readSector(t, img, 11); !bytes.Equal(got, sect(0)) {
		t.Fatal("torn image persisted past the tear")
	}
	// The full image still has both sectors.
	full, err := f.ImageAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := readSector(t, full, 11); !bytes.Equal(got, sect(0xBB)) {
		t.Fatal("full image lost data")
	}
}

func TestFaultDiskInjectedFaults(t *testing.T) {
	f := NewFault(1 << 20)
	f.StartRecording()

	// Dropped write: acknowledged, not persisted, journaled as empty.
	f.DropAfter(0)
	if err := f.WriteSectors(0, sect(0x11)); err != nil {
		t.Fatal(err)
	}
	if got := readSector(t, f, 0); !bytes.Equal(got, sect(0)) {
		t.Fatal("dropped write reached media")
	}
	if r := f.Record(0); r.Sectors() != 0 {
		t.Fatalf("dropped write journaled %d sectors", r.Sectors())
	}

	// Torn write: only the prefix persists.
	f.TearAfter(0, 1)
	big := append(append([]byte(nil), sect(0x22)...), sect(0x33)...)
	if err := f.WriteSectors(4, big); err != nil {
		t.Fatal(err)
	}
	if got := readSector(t, f, 4); !bytes.Equal(got, sect(0x22)) {
		t.Fatal("torn write lost prefix")
	}
	if got := readSector(t, f, 5); !bytes.Equal(got, sect(0)) {
		t.Fatal("torn write persisted past the tear")
	}
	if r := f.Record(1); r.Sectors() != 1 {
		t.Fatalf("torn write journaled %d sectors", r.Sectors())
	}

	// Bit-rot: reads see flipped bits until cleared; media is untouched.
	if err := f.WriteSectors(8, sect(0x0F)); err != nil {
		t.Fatal(err)
	}
	f.RotSector(8, 0xF0)
	if got := readSector(t, f, 8); !bytes.Equal(got, sect(0xFF)) {
		t.Fatal("bit-rot not applied on read")
	}
	f.ClearFaults()
	if got := readSector(t, f, 8); !bytes.Equal(got, sect(0x0F)) {
		t.Fatal("bit-rot persisted after ClearFaults")
	}

	// Hard error, one-shot like Disk.FailAfter.
	f.FailAfter(0, types.ErrCorrupt)
	if err := f.ReadSectors(0, make([]byte, SectorSize)); !errors.Is(err, types.ErrCorrupt) {
		t.Fatalf("injected error: %v", err)
	}
	if err := f.ReadSectors(0, make([]byte, SectorSize)); err != nil {
		t.Fatalf("fault not one-shot: %v", err)
	}
}
