// Shared bit-rot model for the fault-injecting wrappers.
package disk

// rotMap models media corruption for the two fault wrappers (FaultDisk
// for the simulated store, Injector for any wrapped Device). Both embed
// it, so the two rot modes behave identically on both:
//
//   - Persistent rot (RotSector): every read covering the sector sees
//     its bytes XORed with the mask — latent media damage. It clears
//     when the sector is overwritten (writing fresh bytes repairs
//     latent rot, the way a real drive's remap/ECC does, which is what
//     lets the log's in-place block repair actually stick) or when the
//     rot is disarmed with mask zero / ClearFaults.
//   - One-shot rot (RotSectorOnce): only the next read covering the
//     sector sees the corruption, then it self-clears — a transient
//     transfer error rather than damaged media. Overwrites clear it
//     too.
//
// The embedding wrapper's mutex guards all methods.
type rotMap struct {
	rot     map[int64]byte // persistent: sector -> XOR mask
	rotOnce map[int64]byte // one-shot: consumed by the first read
}

// arm installs (or, with mask zero, removes) rot for one sector.
func (r *rotMap) arm(sector int64, mask byte, once bool) {
	m := &r.rot
	if once {
		m = &r.rotOnce
	}
	if mask == 0 {
		delete(*m, sector)
		return
	}
	if *m == nil {
		*m = make(map[int64]byte)
	}
	(*m)[sector] = mask
}

// apply corrupts the armed sectors of a read that returned buf for
// [sector, sector+len(buf)/SectorSize), consuming one-shot entries.
func (r *rotMap) apply(sector int64, buf []byte) {
	n := int64(len(buf) / SectorSize)
	xor := func(s int64, mask byte) {
		off := (s - sector) * SectorSize
		for i := int64(0); i < SectorSize; i++ {
			buf[off+i] ^= mask
		}
	}
	for s, mask := range r.rot {
		if s >= sector && s < sector+n {
			xor(s, mask)
		}
	}
	for s, mask := range r.rotOnce {
		if s >= sector && s < sector+n {
			xor(s, mask)
			delete(r.rotOnce, s)
		}
	}
}

// overwrite clears rot (both modes) for sectors a write actually
// persisted: the fresh bytes replace whatever was rotting underneath.
func (r *rotMap) overwrite(sector, nSectors int64) {
	for s := sector; s < sector+nSectors; s++ {
		delete(r.rot, s)
		delete(r.rotOnce, s)
	}
}

// clear disarms all rot in both modes.
func (r *rotMap) clear() {
	r.rot, r.rotOnce = nil, nil
}
